// Testbed assembly (paper §5 "Testbed cluster"): machines with host CPU
// pools and either a FlexTOE SmartNIC or a software stack (Linux / TAS /
// Chelsio personality), connected through a switch. MACs are derived
// from IPs (static ARP); the switch learns locations dynamically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "baseline/personality.hpp"
#include "baseline/sw_tcp.hpp"
#include "host/flextoe_nic.hpp"
#include "net/switch.hpp"
#include "sim/cpu.hpp"
#include "sim/domain.hpp"
#include "sim/rng.hpp"

namespace flextoe::app {

struct NodeParams {
  unsigned cores = 1;
  double nic_gbps = 40.0;
  sim::ClockDomain cpu_clock = sim::kHostClock;
  double serial_fraction = 0.0;  // host-stack lock contention
  // Per-socket buffer size; many-connection experiments shrink this to
  // bound memory, as a tuned deployment would.
  std::size_t sockbuf_bytes = 512 * 1024;
};

class Testbed {
 public:
  struct Node {
    net::Ipv4Addr ip = 0;
    std::unique_ptr<sim::CpuPool> cpu;
    std::unique_ptr<net::Link> uplink;  // node NIC -> switch
    std::unique_ptr<host::FlexToeNic> toe;
    std::unique_ptr<baseline::SwTcpStack> sw;
    tcp::StackIface* stack = nullptr;
    std::string kind;

    core::Datapath* datapath() { return toe ? &toe->datapath() : nullptr; }
  };

  explicit Testbed(std::uint64_t seed = 1, int max_ports = 16,
                   net::SwitchPortParams port_defaults = {})
      : rng_(seed), sw_(ev_, sim::Rng(seed ^ 0x5a5a), max_ports,
                        port_defaults) {}
  // Merges every FlexTOE node's telemetry into the process-wide
  // accumulator so bench reports capture all the data-paths they ran.
  ~Testbed();

  // Adds a machine with a FlexTOE SmartNIC.
  Node& add_flextoe_node(NodeParams np, host::FlexToeNicConfig cfg = {});

  // Adds a machine running a software stack personality.
  Node& add_sw_node(NodeParams np, const baseline::Personality& pers,
                    baseline::SwTcpConfig overrides = {});

  // Adds an "ideal client" machine (zero-cost stack, many cores).
  Node& add_client_node(double nic_gbps = 100.0,
                        std::size_t sockbuf_bytes = 512 * 1024);

  sim::Domain& ev() { return ev_; }
  net::Switch& the_switch() { return sw_; }
  Node& node(std::size_t i) { return *nodes_[i]; }
  std::size_t num_nodes() const { return nodes_.size(); }

  void run_for(sim::TimePs t) { ev_.run_until(ev_.now() + t); }

  // Exports everything the flight recorders currently hold (this testbed
  // and any earlier ones — rings are process-wide) as Chrome trace-event
  // JSON. No-op returning false when tracing is compiled out or was
  // never enabled. The harness --trace flag does this automatically at
  // exit; call directly to capture mid-run state.
  bool dump_trace(const std::string& path) const;

  static net::MacAddr mac_for(net::Ipv4Addr ip) {
    return net::MacAddr::from_u64(0x020000000000ull + ip);
  }

 private:
  Node& finish_node(std::unique_ptr<Node> n, double nic_gbps);
  net::Ipv4Addr next_ip() {
    return net::make_ip(10, 0, 0, static_cast<std::uint8_t>(++last_host_));
  }

  sim::Domain ev_;
  sim::Rng rng_;
  net::Switch sw_;
  std::vector<std::unique_ptr<Node>> nodes_;
  int last_host_ = 0;
  int next_port_ = 0;
};

}  // namespace flextoe::app
