#include "core/batch.hpp"

#include <atomic>

namespace flextoe::core {

namespace {
// Atomic so TSan runs that touch the default from test setup while
// worker domains construct datapaths stay clean.
std::atomic<unsigned> g_default_batch{kDefaultBatchSize};
}  // namespace

unsigned default_batch_size() {
  return g_default_batch.load(std::memory_order_relaxed);
}

void set_default_batch_size(unsigned n) {
  g_default_batch.store(n == 0 ? kDefaultBatchSize : n,
                        std::memory_order_relaxed);
}

unsigned resolve_batch(unsigned cfg_batch) {
  unsigned n = cfg_batch != 0 ? cfg_batch : default_batch_size();
  if (n < 1) n = 1;
  if (n > kMaxBurst) n = kMaxBurst;
  return n;
}

}  // namespace flextoe::core
