#include "host/libtoe.hpp"

#include <algorithm>

#include "host/control_plane.hpp"

namespace flextoe::host {

using tcp::ConnId;

LibToe::LibToe(sim::Domain& ev, core::Datapath& dp, ControlPlane& cp,
               LibToeConfig cfg, sim::CpuPool* cpu)
    : ev_(ev), dp_(dp), cp_(cp), cfg_(cfg), cpu_(cpu) {}

LibToe::Sock* LibToe::sock(ConnId c) {
  if (c >= socks_.size()) return nullptr;
  return socks_[c].get();
}

const LibToe::Sock* LibToe::sock(ConnId c) const {
  if (c >= socks_.size()) return nullptr;
  return socks_[c].get();
}

void LibToe::charge_sockop() {
  if (cpu_ != nullptr) {
    cpu_->run(cfg_.sock_op_cycles, sim::CpuCat::Sockets, nullptr);
    cpu_->account(cfg_.other_op_cycles, sim::CpuCat::Other);
  }
}

void LibToe::post_hc(CtxDescType type, ConnId conn, std::uint32_t a) {
  CtxDesc d;
  d.type = type;
  d.conn = conn;
  d.a = a;
  dp_.hc_queue(cfg_.context_id).push(d);
  ++doorbells_;
  dp_.doorbell(cfg_.context_id);
}

// ------------------------------------------------------------- StackIface

void LibToe::listen(std::uint16_t port) { cp_.listen(port); }

ConnId LibToe::connect(net::Ipv4Addr remote_ip, std::uint16_t remote_port) {
  charge_sockop();
  return cp_.connect(remote_ip, remote_port);
}

std::size_t LibToe::send(ConnId c, std::span<const std::uint8_t> data) {
  Sock* s = sock(c);
  if (s == nullptr || !s->open) return 0;
  charge_sockop();
  const std::size_t n =
      std::min<std::size_t>(data.size(), s->tx_credits);
  if (n == 0) return 0;
  s->bufs.tx->write(s->tx_pos, data.first(n));
  s->tx_pos += n;
  s->tx_credits -= n;
  post_hc(CtxDescType::TxDoorbell, c, static_cast<std::uint32_t>(n));
  return n;
}

std::size_t LibToe::recv(ConnId c, std::span<std::uint8_t> out) {
  Sock* s = sock(c);
  if (s == nullptr) return 0;
  charge_sockop();
  const std::size_t n =
      std::min<std::size_t>(out.size(), s->rx_readable);
  if (n > 0) {
    s->bufs.rx->read(s->rx_pos, out.first(n));
    s->rx_pos += n;
    s->rx_readable -= n;
    s->freed_accum += static_cast<std::uint32_t>(n);
    // Return buffer space to the NIC (batched to amortize doorbells,
    // always when the buffer drains so the window reopens).
    if (s->freed_accum >= cfg_.rx_free_batch || s->rx_readable == 0) {
      post_hc(CtxDescType::RxFreed, c, s->freed_accum);
      s->freed_accum = 0;
    }
  }
  if (s->eof && s->rx_readable == 0 && !s->closed_notified) {
    s->closed_notified = true;
    if (cbs_.on_close) cbs_.on_close(c);
  }
  return n;
}

std::size_t LibToe::rx_available(ConnId c) const {
  const Sock* s = sock(c);
  return s == nullptr ? 0 : s->rx_readable;
}

std::size_t LibToe::tx_space(ConnId c) const {
  const Sock* s = sock(c);
  return s == nullptr ? 0 : s->tx_credits;
}

void LibToe::close(ConnId c) {
  Sock* s = sock(c);
  if (s == nullptr || !s->open) return;
  charge_sockop();
  s->open = false;
  post_hc(CtxDescType::Fin, c, 0);
  cp_.app_close(c);
}

net::Ipv4Addr LibToe::local_ip() const { return cp_.ip(); }

// ------------------------------------------------------ NIC notifications

void LibToe::on_notify(const CtxDesc& desc) {
  Sock* s = sock(desc.conn);
  if (s == nullptr) return;
  switch (desc.type) {
    case CtxDescType::RxNotify:
      s->rx_readable += desc.a;
      if (cbs_.on_data) cbs_.on_data(desc.conn);
      break;
    case CtxDescType::TxFreed:
      s->tx_credits += desc.a;
      if (cbs_.on_sendable) cbs_.on_sendable(desc.conn);
      break;
    case CtxDescType::RxEof:
      s->eof = true;
      if (s->rx_readable == 0 && !s->closed_notified) {
        s->closed_notified = true;
        if (cbs_.on_close) cbs_.on_close(desc.conn);
      } else if (cbs_.on_data && s->rx_readable > 0) {
        cbs_.on_data(desc.conn);  // prompt the app to drain
      }
      break;
    default:
      break;
  }
}

// -------------------------------------------------- control-plane events

LibToe::SockBufs* LibToe::alloc_bufs(ConnId conn) {
  if (socks_.size() <= conn) socks_.resize(conn + 1);
  if (!socks_[conn]) socks_[conn] = std::make_unique<Sock>();
  Sock& s = *socks_[conn];
  s = Sock{};
  s.bufs.rx = std::make_unique<PayloadBuf>(cfg_.sockbuf_bytes);
  s.bufs.tx = std::make_unique<PayloadBuf>(cfg_.sockbuf_bytes);
  s.tx_credits = cfg_.sockbuf_bytes;
  return &s.bufs;
}

void LibToe::on_accepted(ConnId conn) {
  Sock* s = sock(conn);
  if (s != nullptr) s->open = true;
  if (cbs_.on_accept) cbs_.on_accept(conn);
}

void LibToe::on_connected(ConnId conn, bool ok) {
  Sock* s = sock(conn);
  if (s != nullptr) s->open = ok;
  if (cbs_.on_connected) cbs_.on_connected(conn, ok);
}

void LibToe::on_closed(ConnId conn) {
  Sock* s = sock(conn);
  if (s == nullptr) return;
  if (!s->closed_notified) {
    s->closed_notified = true;
    if (cbs_.on_close) cbs_.on_close(conn);
  }
  s->open = false;
}

}  // namespace flextoe::host
