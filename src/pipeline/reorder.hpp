// Sequencing and reordering (paper §3.2) — stage-boundary concerns of
// the pipeline framework.
//
// Parallel pipeline stages (replicated pre/post processors, multi-thread
// FPCs, DMA) can reorder segments. FlexTOE assigns a sequence number to
// every segment entering the pipeline and restores order at the two
// points that require it: admission to the (atomic) protocol stage and
// admission to the NBI for transmission. Segments that leave the pipeline
// early (dropped, filtered to the control plane, XDP_DROP/TX/REDIRECT)
// must signal a skip so the reorder point does not stall.
//
// A reorder point can be built pass-through (`enforce = false`) for the
// no-reorder ablation: items release immediately in arrival order and
// skips are no-ops.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <utility>

namespace flextoe::pipeline {

template <typename T>
class ReorderBuffer {
 public:
  using Release = std::function<void(T)>;

  explicit ReorderBuffer(Release release, bool enforce = true)
      : release_(std::move(release)), enforce_(enforce) {}

  // Inserts item with ordering number `seq`; releases any in-order run.
  void push(std::uint64_t seq, T item) {
    if (!enforce_ || seq == next_) {
      release_(std::move(item));
      if (seq == next_) {
        ++next_;
        drain();
      }
      return;
    }
    pending_.emplace(seq, std::move(item));
  }

  // Marks `seq` as skipped (segment left the pipeline before this point).
  void skip(std::uint64_t seq) {
    if (!enforce_) return;
    if (seq == next_) {
      ++next_;
      drain();
      return;
    }
    skipped_.emplace(seq, true);
  }

  std::uint64_t next_expected() const { return next_; }
  std::size_t pending() const { return pending_.size(); }
  bool enforcing() const { return enforce_; }

 private:
  void drain() {
    while (true) {
      auto it = pending_.find(next_);
      if (it != pending_.end()) {
        T item = std::move(it->second);
        pending_.erase(it);
        release_(std::move(item));
        ++next_;
        continue;
      }
      auto sk = skipped_.find(next_);
      if (sk != skipped_.end()) {
        skipped_.erase(sk);
        ++next_;
        continue;
      }
      break;
    }
  }

  Release release_;
  bool enforce_;
  std::uint64_t next_ = 0;
  std::map<std::uint64_t, T> pending_;
  std::map<std::uint64_t, bool> skipped_;
};

// Per-flow-group ingress sequencer.
class Sequencer {
 public:
  std::uint64_t assign() { return next_++; }
  std::uint64_t issued() const { return next_; }

 private:
  std::uint64_t next_ = 0;
};

}  // namespace flextoe::pipeline
