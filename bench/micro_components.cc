// Microbenchmarks for the hot substrate components: packet
// serialization/parsing, checksums, flow hashing, reorder buffers, OOO
// trackers, byte rings, and the Carousel time wheel. These guard
// simulator performance (host-side, wall-clock) rather than reproducing
// paper rows. One series; rows are components with ns/op statistics over
// `--repeats` timed runs (first run is warmup).
#include <chrono>
#include <cstdint>
#include <vector>

#include "pipeline/reorder.hpp"
#include "harness.hpp"
#include "net/checksum.hpp"
#include "net/packet.hpp"
#include "sched/carousel.hpp"
#include "sim/domain.hpp"
#include "tcp/byte_ring.hpp"
#include "tcp/flow.hpp"
#include "tcp/ooo.hpp"

using namespace flextoe;
using namespace flextoe::benchx;

namespace {

// Keeps the optimizer from discarding a computed value (stand-in for
// benchmark::DoNotOptimize).
template <typename T>
inline void keep(T&& value) {
  asm volatile("" : : "g"(value) : "memory");
}

// Times `iters` iterations of `op(i)` and returns ns per operation.
template <typename Op>
double time_ns_per_op(std::uint64_t iters, Op&& op) {
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) op(i);
  const auto t1 = std::chrono::steady_clock::now();
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
  return static_cast<double>(ns) / static_cast<double>(iters);
}

net::Packet make_packet(std::size_t payload) {
  net::Packet p;
  p.eth.src = net::MacAddr::from_u64(1);
  p.eth.dst = net::MacAddr::from_u64(2);
  p.ip.src = net::make_ip(10, 0, 0, 1);
  p.ip.dst = net::make_ip(10, 0, 0, 2);
  p.tcp.flags = net::tcpflag::kAck | net::tcpflag::kPsh;
  p.tcp.ts = net::TcpTsOpt{1, 2};
  p.payload.assign(payload, 0xAB);
  return p;
}

}  // namespace

BENCH_SCENARIO(micro, "host-side component costs (ns/op)") {
  const std::uint64_t iters = ctx.pick<std::uint64_t>(200000, 5000);
  // Micro timings are noisy: always repeat at least 3 times (beyond any
  // --repeats request) and warm up once.
  const int reps = ctx.opts().repeats > 3 ? ctx.opts().repeats : 3;
  auto& series = ctx.report().series("micro");

  auto record = [&](const char* name,
                    const std::function<double(int)>& run) {
    const RepeatStats st = run_repeated(reps, run, /*warmup=*/1);
    auto& row = series.row(name);
    row.set("ns_op", st.mean);
    row.set("p50", st.p50);
    row.set("p99", st.p99);
  };

  for (std::size_t payload : {std::size_t{64}, std::size_t{1448}}) {
    const std::string tag = "/" + std::to_string(payload);
    record(("packet_serialize" + tag).c_str(), [&](int) {
      net::Packet p = make_packet(payload);
      return time_ns_per_op(iters, [&](std::uint64_t) {
        keep(p.serialize());
      });
    });
    record(("packet_parse" + tag).c_str(), [&](int) {
      net::Packet p = make_packet(payload);
      p.tcp.ts = net::TcpTsOpt{1, 2};
      const auto bytes = p.serialize();
      return time_ns_per_op(iters, [&](std::uint64_t) {
        keep(net::Packet::parse(bytes));
      });
    });
    record(("internet_checksum" + tag).c_str(), [&](int) {
      std::vector<std::uint8_t> data(payload, 0x55);
      return time_ns_per_op(iters, [&](std::uint64_t) {
        keep(net::internet_checksum(data));
      });
    });
  }

  record("crc32_flow_hash", [&](int) {
    tcp::FlowTuple t{net::make_ip(10, 0, 0, 1), net::make_ip(10, 0, 0, 2),
                     12345, 80};
    return time_ns_per_op(iters, [&](std::uint64_t) {
      keep(t.hash());
      t.local_port++;
    });
  });

  record("single_interval_tracker", [&](int) {
    tcp::SingleIntervalTracker t;
    tcp::SeqNum rcv = 0;
    return time_ns_per_op(iters, [&](std::uint64_t) {
      auto r = t.on_segment(rcv, rcv, 1448, 1 << 20);
      rcv += r.advance;
    });
  });

  record("byte_ring_write_read_4k", [&](int) {
    tcp::ByteRing ring(1 << 20);
    std::vector<std::uint8_t> chunk(4096, 0xCD);
    std::vector<std::uint8_t> out(4096);
    return time_ns_per_op(iters, [&](std::uint64_t) {
      ring.write(chunk);
      ring.read(out);
    });
  });

  record("reorder_buffer_in_order", [&](int) {
    std::uint64_t released = 0;
    pipeline::ReorderBuffer<int> rob([&released](int) { ++released; });
    std::uint64_t seq = 0;
    const double ns = time_ns_per_op(iters, [&](std::uint64_t) {
      rob.push(seq++, 1);
    });
    keep(released);
    return ns;
  });

  record("carousel_trigger", [&](int) {
    sim::Domain ev;
    sched::Carousel car(ev);
    std::uint64_t sent = 0;
    car.set_trigger([&sent](std::uint32_t) -> std::uint32_t {
      ++sent;
      return 1448;
    });
    car.set_rate(1, 0);
    car.update_avail(1, 1ull << 40);
    const double ns = time_ns_per_op(iters, [&](std::uint64_t) {
      // Each step services pending scheduler events.
      if (!ev.step()) car.kick(1);
    });
    keep(sent);
    return ns;
  });

  record("event_queue_churn", [&](int) {
    sim::Domain ev;
    int fired = 0;
    const double ns = time_ns_per_op(iters, [&](std::uint64_t) {
      ev.schedule_in(sim::ns(10), [&fired] { ++fired; });
      ev.step();
    });
    keep(fired);
    return ns;
  });

  ctx.report().note(
      "Wall-clock microbenchmarks of the simulator substrate; values are "
      "host-dependent and tracked for trend, not paper comparison.");
}
