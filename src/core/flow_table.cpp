// FlowTable implementation (see flow_table.hpp): linear-probe
// open-addressing per-island shards with backward-shift deletion and a
// ConnId directory; self-auditing memory footprint.
#include "core/flow_table.hpp"

#include <cassert>

namespace flextoe::core {

namespace {

std::uint32_t next_pow2(std::uint32_t v) {
  std::uint32_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

FlowTable::FlowTable(unsigned shards, std::uint32_t expected_conns) {
  if (shards == 0) shards = 1;
  shards_.resize(shards);
  // Size each shard for its share of the expected population at <= 7/8
  // load; clamp the presize so small configs stay small.
  const std::uint32_t per_shard =
      (expected_conns + static_cast<std::uint32_t>(shards) - 1) /
      static_cast<std::uint32_t>(shards);
  const std::uint32_t want = per_shard + per_shard / 7 + 1;  // / (7/8)
  const std::uint32_t cap = next_pow2(want < 64 ? 64 : want);
  for (Shard& sh : shards_) {
    sh.index.assign(cap, Slot{});
    sh.mask = cap - 1;
  }
}

std::uint32_t FlowTable::probe(const Shard& sh, const tcp::FlowKey& key,
                               bool* found) const {
  std::uint32_t pos = key.hash & sh.mask;
  std::uint32_t len = 1;
  for (;;) {
    const Slot& s = sh.index[pos];
    if (s.conn == tcp::kInvalidConn) {
      *found = false;
      last_probe_len_ = len;
      return pos;
    }
    if (s.hash == key.hash && sh.arena[s.arena_slot].fs.tuple == key.tuple) {
      *found = true;
      last_probe_len_ = len;
      return pos;
    }
    pos = (pos + 1) & sh.mask;
    ++len;
    assert(len <= sh.index.size() && "flow-table probe wrapped: full index");
  }
}

ConnRecord* FlowTable::lookup(const tcp::FlowKey& key,
                              tcp::ConnId* conn_out) {
  Shard& sh = shards_[key.shard(shard_count())];
  sh.affinity.check();
  bool found = false;
  const std::uint32_t pos = probe(sh, key, &found);
  // Gauges are levels: refresh on the per-segment path too, so they
  // survive a mid-run Registry::clear() (scenario warm-up reset) even
  // when no insert/erase happens afterwards.
  update_telemetry();
  if (!found) return nullptr;
  const Slot& s = sh.index[pos];
  if (conn_out != nullptr) *conn_out = s.conn;
  return &sh.arena[s.arena_slot];
}

ConnRecord* FlowTable::get(tcp::ConnId conn) {
  if (conn >= directory_.size()) return nullptr;
  const Ref& r = directory_[conn];
  if (r.shard == kNoShard) return nullptr;
  Shard& sh = shards_[r.shard];
  sh.affinity.check();
  return &sh.arena[r.slot];
}

const ConnRecord* FlowTable::get(tcp::ConnId conn) const {
  if (conn >= directory_.size()) return nullptr;
  const Ref& r = directory_[conn];
  if (r.shard == kNoShard) return nullptr;
  const Shard& sh = shards_[r.shard];
  sh.affinity.check();
  return &sh.arena[r.slot];
}

bool FlowTable::valid(tcp::ConnId conn) const {
  return conn < directory_.size() && directory_[conn].shard != kNoShard;
}

void FlowTable::grow(Shard& sh) {
  const std::uint32_t cap =
      next_pow2(static_cast<std::uint32_t>(sh.index.size()) * 2);
  std::vector<Slot> old = std::move(sh.index);
  sh.index.assign(cap, Slot{});
  sh.mask = cap - 1;
  ++rehashes_;
  if (telem_.on()) t_rehashes_->inc();
  // Reinsert by stored hash — no tuple re-hashing, and arena records do
  // not move, so outstanding ConnRecord* stay valid across the rehash.
  for (const Slot& s : old) {
    if (s.conn == tcp::kInvalidConn) continue;
    std::uint32_t pos = s.hash & sh.mask;
    while (sh.index[pos].conn != tcp::kInvalidConn) pos = (pos + 1) & sh.mask;
    sh.index[pos] = s;
  }
}

void FlowTable::index_insert(Shard& sh, const tcp::FlowKey& key,
                             std::uint32_t arena_slot, tcp::ConnId conn) {
  // Keep load factor <= 7/8 so linear-probe chains stay short.
  if ((sh.used + 1) * 8 > sh.index.size() * 7) grow(sh);
  bool found = false;
  const std::uint32_t pos = probe(sh, key, &found);
  Slot& s = sh.index[pos];
  if (found) {
    // Duplicate tuple: repoint the entry at the new connection. The old
    // record stays reachable through the directory only (and its erase
    // will not disturb this entry — erase checks ownership).
    s.arena_slot = arena_slot;
    s.conn = conn;
    return;
  }
  s.hash = key.hash;
  s.arena_slot = arena_slot;
  s.conn = conn;
  ++sh.used;
}

void FlowTable::index_erase_at(Shard& sh, std::uint32_t pos) {
  // Backward-shift deletion: pull every displaced follower one step
  // back toward its ideal bucket; the probe chain closes with no
  // tombstone left behind.
  std::uint32_t hole = pos;
  std::uint32_t cur = pos;
  for (;;) {
    cur = (cur + 1) & sh.mask;
    const Slot& s = sh.index[cur];
    if (s.conn == tcp::kInvalidConn) break;
    const std::uint32_t ideal = s.hash & sh.mask;
    // `cur` may move into the hole only if the hole lies on its probe
    // path: distance(ideal -> hole) < distance(ideal -> cur), both
    // measured forward with wraparound.
    if (((hole - ideal) & sh.mask) < ((cur - ideal) & sh.mask)) {
      sh.index[hole] = s;
      hole = cur;
    }
  }
  sh.index[hole] = Slot{};
  --sh.used;
}

tcp::ConnId FlowTable::insert(const tcp::FlowTuple& tuple,
                              tcp::ConnId desired) {
  const tcp::ConnId conn =
      desired != tcp::kInvalidConn ? desired : next_conn_++;
  if (desired != tcp::kInvalidConn && next_conn_ <= desired) {
    next_conn_ = desired + 1;
  }
  // Re-install over a live id: retire the old incarnation first so its
  // tuple cannot shadow the new one.
  if (valid(conn)) erase(conn);

  const tcp::FlowKey key = tcp::FlowKey::of(tuple);
  Shard& sh = shards_[key.shard(shard_count())];
  sh.affinity.check();

  std::uint32_t slot;
  if (!sh.free_slots.empty()) {
    slot = sh.free_slots.back();
    sh.free_slots.pop_back();
    sh.arena[slot] = ConnRecord{};
  } else {
    slot = static_cast<std::uint32_t>(sh.arena.size());
    sh.arena.emplace_back();
  }
  ConnRecord& rec = sh.arena[slot];
  rec.fs.valid = true;
  rec.fs.tuple = tuple;

  index_insert(sh, key, slot, conn);

  if (directory_.size() <= conn) directory_.resize(conn + 1);
  directory_[conn] =
      Ref{key.shard(shard_count()), slot};
  ++live_;
  update_telemetry();
  return conn;
}

bool FlowTable::erase(tcp::ConnId conn) {
  if (conn >= directory_.size()) return false;
  Ref& r = directory_[conn];
  if (r.shard == kNoShard) return false;
  Shard& sh = shards_[r.shard];
  sh.affinity.check();

  ConnRecord& rec = sh.arena[r.slot];
  const tcp::FlowKey key = tcp::FlowKey::of(rec.fs.tuple);
  bool found = false;
  const std::uint32_t pos = probe(sh, key, &found);
  // Un-index only an entry this connection owns (a duplicate-tuple
  // insert may have repointed the entry at a newer connection).
  if (found && sh.index[pos].conn == conn) index_erase_at(sh, pos);

  rec.fs.valid = false;
  sh.free_slots.push_back(r.slot);
  r = Ref{};
  --live_;
  update_telemetry();
  return true;
}

std::size_t FlowTable::bytes_reserved() const {
  std::size_t bytes = sizeof(FlowTable);
  for (const Shard& sh : shards_) {
    bytes += sizeof(Shard);
    bytes += sh.index.capacity() * sizeof(Slot);
    bytes += sh.arena.size() * sizeof(ConnRecord);
    bytes += sh.free_slots.capacity() * sizeof(std::uint32_t);
  }
  bytes += directory_.capacity() * sizeof(Ref);
  return bytes;
}

double FlowTable::bytes_per_conn() const {
  return live_ == 0
             ? 0.0
             : static_cast<double>(bytes_reserved()) /
                   static_cast<double>(live_);
}

void FlowTable::bind_telemetry(telemetry::Registry& reg,
                               const std::string& prefix) {
  if (!telem_.bind(reg)) return;
  t_conns_ = reg.gauge(prefix + "/conns");
  t_bytes_total_ = reg.gauge(prefix + "/bytes_total");
  t_bytes_per_conn_ = reg.gauge(prefix + "/bytes_per_conn");
  t_rehashes_ = reg.counter(prefix + "/rehashes");
  update_telemetry();
}

void FlowTable::rebind_owner(unsigned shard) {
  if (shard < shards_.size()) shards_[shard].affinity.rebind();
}

void FlowTable::update_telemetry() {
  if (!telem_.on()) return;
  t_conns_->set(static_cast<std::int64_t>(live_));
  t_bytes_total_->set(static_cast<std::int64_t>(bytes_reserved()));
  t_bytes_per_conn_->set(static_cast<std::int64_t>(bytes_per_conn()));
}

}  // namespace flextoe::core
