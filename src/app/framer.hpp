// Length-prefixed message framing over the byte-stream socket API.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace flextoe::app {

// Accumulates stream bytes and yields complete [u32 len][payload] frames.
class FrameReader {
 public:
  void feed(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  // Returns true and fills `frame` if a complete frame is available.
  bool next(std::vector<std::uint8_t>& frame) {
    if (buf_.size() < 4) return false;
    const std::uint32_t len = static_cast<std::uint32_t>(buf_[0]) |
                              (static_cast<std::uint32_t>(buf_[1]) << 8) |
                              (static_cast<std::uint32_t>(buf_[2]) << 16) |
                              (static_cast<std::uint32_t>(buf_[3]) << 24);
    if (buf_.size() < 4 + static_cast<std::size_t>(len)) return false;
    frame.assign(buf_.begin() + 4, buf_.begin() + 4 + len);
    buf_.erase(buf_.begin(), buf_.begin() + 4 + len);
    return true;
  }

  // Consumes exactly `len` frame bytes without copying them out; returns
  // false until the full frame has arrived. For sink servers.
  bool skip_frame(std::uint32_t& len_out) {
    if (buf_.size() < 4) return false;
    const std::uint32_t len = static_cast<std::uint32_t>(buf_[0]) |
                              (static_cast<std::uint32_t>(buf_[1]) << 8) |
                              (static_cast<std::uint32_t>(buf_[2]) << 16) |
                              (static_cast<std::uint32_t>(buf_[3]) << 24);
    if (buf_.size() < 4 + static_cast<std::size_t>(len)) return false;
    buf_.erase(buf_.begin(), buf_.begin() + 4 + len);
    len_out = len;
    return true;
  }

  std::size_t buffered() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

inline std::vector<std::uint8_t> make_frame(std::uint32_t payload_len,
                                            std::uint8_t fill = 0xA5) {
  std::vector<std::uint8_t> f(4 + payload_len, fill);
  f[0] = static_cast<std::uint8_t>(payload_len);
  f[1] = static_cast<std::uint8_t>(payload_len >> 8);
  f[2] = static_cast<std::uint8_t>(payload_len >> 16);
  f[3] = static_cast<std::uint8_t>(payload_len >> 24);
  return f;
}

}  // namespace flextoe::app
