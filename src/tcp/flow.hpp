// Flow identification: 4-tuple, CRC-32 hashing (as the NFP lookup engine
// does), and flow-group assignment (paper §3.1: "each pipeline handles a
// fixed flow-group, determined by a hash on the flow's 4-tuple").
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>

#include "net/addr.hpp"
#include "net/checksum.hpp"

namespace flextoe::tcp {

struct FlowTuple {
  net::Ipv4Addr local_ip = 0;
  net::Ipv4Addr remote_ip = 0;
  std::uint16_t local_port = 0;
  std::uint16_t remote_port = 0;

  bool operator==(const FlowTuple&) const = default;

  FlowTuple reversed() const {
    return FlowTuple{remote_ip, local_ip, remote_port, local_port};
  }

  std::array<std::uint8_t, 12> bytes() const {
    std::array<std::uint8_t, 12> b{};
    auto put32 = [&b](std::size_t off, std::uint32_t v) {
      b[off] = static_cast<std::uint8_t>(v >> 24);
      b[off + 1] = static_cast<std::uint8_t>(v >> 16);
      b[off + 2] = static_cast<std::uint8_t>(v >> 8);
      b[off + 3] = static_cast<std::uint8_t>(v);
    };
    put32(0, local_ip);
    put32(4, remote_ip);
    b[8] = static_cast<std::uint8_t>(local_port >> 8);
    b[9] = static_cast<std::uint8_t>(local_port);
    b[10] = static_cast<std::uint8_t>(remote_port >> 8);
    b[11] = static_cast<std::uint8_t>(remote_port);
    return b;
  }

  std::uint32_t hash() const {
    const auto b = bytes();
    return net::crc32(std::span<const std::uint8_t>(b.data(), b.size()));
  }

  // Flow-group index in [0, num_groups).
  std::uint32_t flow_group(std::uint32_t num_groups) const {
    return num_groups == 0 ? 0 : hash() % num_groups;
  }
};

struct FlowTupleHash {
  std::size_t operator()(const FlowTuple& t) const { return t.hash(); }
};

// A 4-tuple with its CRC-32 precomputed. The sequencer hashes every
// segment exactly once (hardware CRC on the NFP); downstream consumers —
// flow-group steering, the sharded flow table's open-addressing probe —
// reuse the digest instead of rehashing per probe.
struct FlowKey {
  FlowTuple tuple;
  std::uint32_t hash = 0;

  static FlowKey of(const FlowTuple& t) { return FlowKey{t, t.hash()}; }

  // Island / table-shard index in [0, num_shards) — the same mapping as
  // FlowTuple::flow_group, so one shard serves exactly one flow-group
  // island and the table has no cross-island hot state.
  std::uint32_t shard(std::uint32_t num_shards) const {
    return num_shards == 0 ? 0 : hash % num_shards;
  }
};

}  // namespace flextoe::tcp
