#!/usr/bin/env python3
"""Simulator-throughput regression gate for the micro_pipeline bench.

Runs `micro_pipeline --filter <row>` fresh and compares one metric
against the checked-in Release baseline
(bench/results/BENCH_micro_pipeline.json). The default gate is
`micro_pipeline`/`datapath_rx`/`segments_per_sec` — host wall-clock
simulator throughput, the denominator every scenario in the catalog
pays — so a drop means the hot path (SegCtx pooling, burst dispatch,
stage submit) got slower. The default run attaches no monitor taps; a
detached tap port costs one pointer compare per edge crossing, so the
no-tap baseline also gates the tap machinery staying off the hot path.

The gate fails when the fresh rate is below `--min-ratio` (default
0.9) of the baseline. Wall-clock rates are machine-dependent, so the
default ratio is deliberately loose: it catches structural regressions
(a lost batching path, a reintroduced per-segment allocation), not
noise. CI runs it on the same runner class that recorded the baseline.

A fresh rate *above* the baseline prints as a note — refresh the
baseline to bank the win:

    cmake -B build-rel -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build build-rel --target micro_pipeline -j
    build-rel/bench/micro_pipeline --repeats 3 \
        --json bench/results/BENCH_micro_pipeline.json

Usage:
    check_perf.py BASELINE BINARY [--min-ratio 0.9]
                  [--series micro_pipeline] [--row datapath_rx]
                  [--metric segments_per_sec] [extra bench args...]

Exit status: 0 = at or above the gate, 1 = regression/error.
"""

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile


def run_bench(binary, out_path, row, extra):
    cmd = [binary, "--filter", row, "--seed", "0",
           "--json", out_path] + extra
    proc = subprocess.run(
        cmd, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True
    )
    if proc.returncode != 0:
        sys.stderr.write(f"check_perf: {' '.join(cmd)} failed "
                         f"(exit {proc.returncode})\n{proc.stderr}")
        return None
    return json.loads(pathlib.Path(out_path).read_text(encoding="utf-8"))


def gated_rate(doc, series_name, row_label, metric):
    for series in doc.get("series", []):
        if series.get("name") != series_name:
            continue
        for row in series.get("rows", []):
            if row["label"] == row_label:
                return row["values"].get(metric)
    return None


def main():
    ap = argparse.ArgumentParser(add_help=False)
    ap.add_argument("baseline")
    ap.add_argument("binary")
    ap.add_argument("--min-ratio", type=float, default=0.9)
    ap.add_argument("--series", default="micro_pipeline")
    ap.add_argument("--row", default="datapath_rx")
    ap.add_argument("--metric", default="segments_per_sec")
    args, extra = ap.parse_known_args()
    what = f"{args.row} {args.metric}"

    want = gated_rate(
        json.loads(pathlib.Path(args.baseline).read_text(encoding="utf-8")),
        args.series, args.row, args.metric)
    if not want:
        sys.stderr.write(f"check_perf: no {what} in "
                         f"baseline {args.baseline}\n")
        return 1

    with tempfile.TemporaryDirectory() as tmp:
        doc = run_bench(args.binary, str(pathlib.Path(tmp) / "fresh.json"),
                        args.row, extra)
    if doc is None:
        return 1
    got = gated_rate(doc, args.series, args.row, args.metric)
    if not got:
        sys.stderr.write(f"check_perf: fresh run emitted no {what}\n")
        return 1

    ratio = got / want
    if ratio < args.min_ratio:
        sys.stderr.write(
            f"check_perf: REGRESSION — {what} {got:,.0f} "
            f"vs baseline {want:,.0f} ({ratio:.2f}x < "
            f"{args.min_ratio:.2f}x gate)\n"
            f"  If intentional, refresh the baseline (see the module "
            f"docstring or bench/results/README.md).\n")
        return 1
    if ratio > 1.0:
        print(f"check_perf: note — {what} improved to {got:,.0f} "
              f"from {want:,.0f} ({ratio:.2f}x); refresh the "
              f"baseline to bank the win")
    else:
        print(f"check_perf: OK — {what} {got:,.0f} "
              f"(baseline {want:,.0f}, {ratio:.2f}x >= "
              f"{args.min_ratio:.2f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
