// NFP-4000 memory hierarchy cost model (paper §2.3 / §4.1):
//   FPC local memory     — a few cycles
//   CLS (island, 64 KB)  — up to 100 cycles
//   CTM (island, 256 KB) — up to 100 cycles
//   IMEM (4 MB SRAM)     — up to 250 cycles
//   EMEM (2 GB DRAM, 3 MB SRAM front cache) — up to 500 cycles
//
// `StateAccessModel` combines the per-FPC CAM cache, the island CLS
// direct-mapped cache, and the EMEM SRAM cache to answer "how many memory
// cycles does it cost this FPC to touch connection state X?" — exactly
// the mechanism that produces the paper's connection-scalability behaviour
// (Fig 13: fast up to ~2K flows cached in CLS, strained beyond 8K).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "nfp/caches.hpp"

namespace flextoe::nfp {

struct MemLatencies {
  std::uint32_t local = 4;
  std::uint32_t cls = 100;
  std::uint32_t ctm = 100;
  std::uint32_t imem = 250;
  std::uint32_t emem_sram = 500;
  std::uint32_t emem_dram = 900;
};

// Shared per-island / per-NIC cache levels.
struct IslandMemory {
  explicit IslandMemory(std::size_t cls_entries = 512)
      : cls_cache(cls_entries) {}
  DirectMappedCache cls_cache;
};

struct NicMemory {
  explicit NicMemory(std::size_t emem_sram_entries = 8192)
      : emem_cache(emem_sram_entries) {}
  DirectMappedCache emem_cache;
};

// Per-FPC view of the hierarchy for connection-state accesses.
class StateAccessModel {
 public:
  StateAccessModel(MemLatencies lat, IslandMemory* island, NicMemory* nic,
                   std::size_t local_entries = 16)
      : lat_(lat), island_(island), nic_(nic), local_(local_entries) {}

  // Cycles to fetch connection state `conn_id` into local memory,
  // updating all cache levels along the way.
  std::uint32_t access_cycles(std::uint32_t conn_id) {
    if (local_.access(conn_id)) return lat_.local;
    if (island_ != nullptr && island_->cls_cache.access(conn_id)) {
      return lat_.cls;
    }
    if (nic_ != nullptr && nic_->emem_cache.access(conn_id)) {
      return lat_.emem_sram;
    }
    return lat_.emem_dram;
  }

  // Removes a connection from this FPC's local cache (teardown).
  void invalidate(std::uint32_t conn_id) { local_.invalidate(conn_id); }

  const CamCache& local_cache() const { return local_; }
  const MemLatencies& latencies() const { return lat_; }

 private:
  MemLatencies lat_;
  IslandMemory* island_;
  NicMemory* nic_;
  CamCache local_;
};

}  // namespace flextoe::nfp
