// Deterministic discrete-event queue.
//
// Events scheduled for the same timestamp run in schedule order (FIFO),
// which keeps every simulation bit-reproducible for a given seed.
//
// The event representation is pooled and allocation-free at steady
// state: the binary heap orders 24-byte {time, seq, slot} records while
// the callbacks themselves — sim::SmallFn closures, stored inline, no
// per-closure malloc — live in a slab of recycled slots. Heap sifts move
// only the small records; a callback is relocated exactly twice (into
// its slot, out at dispatch) regardless of heap depth.
#pragma once

#include <cstddef>
#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "sim/small_fn.hpp"
#include "sim/time.hpp"

namespace flextoe::sim {

class EventQueue {
 public:
  // Sized for the largest hot closure: a DMA completion carrying a
  // lifetime guard plus an inline done-handler payload — 8 (this) +
  // 16 (guard) + pad-to-16 + 80 (SmallFn<64> done) = 112 bytes.
  using Callback = SmallFn<112>;

  // Schedules `cb` to run at absolute time `t` (>= now()).
  void schedule_at(TimePs t, Callback cb);

  // Schedules `cb` to run `delay` after now().
  void schedule_in(TimePs delay, Callback cb) {
    schedule_at(now_ + delay, std::move(cb));
  }

  // Runs the earliest pending event. Returns false if the queue is empty.
  bool step();

  // Runs all events with timestamp <= t, then advances now() to t.
  void run_until(TimePs t);

  // Runs all events with timestamp strictly below `t` but does NOT
  // advance now() past the last executed event. This is the window
  // primitive of the conservative parallel scheduler (sim/domain.hpp):
  // cross-domain arrivals land at >= t and stay schedulable afterwards.
  void run_before(TimePs t);

  // Drains the queue completely (use only for bounded simulations).
  void run_all();

  // Sentinel returned by next_time() when no events are pending.
  static constexpr TimePs kNoEvent = ~TimePs{0};
  // Timestamp of the earliest pending event (kNoEvent when empty) — the
  // quantity the domain scheduler minimizes over to pick epoch horizons.
  TimePs next_time() const { return heap_.empty() ? kNoEvent : heap_.top().t; }

  TimePs now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }
  std::uint64_t executed() const { return executed_; }

 protected:
  // Clock jump without event execution (epoch alignment in run_until()
  // and the domain scheduler). Never moves the clock backwards.
  void advance_to(TimePs t) {
    if (t > now_) now_ = t;
  }

 private:
  struct Ev {
    TimePs t;
    std::uint64_t seq;   // tie-break: FIFO among same-time events
    std::uint32_t slot;  // index of the callback in the slot pool
  };
  struct Later {
    bool operator()(const Ev& a, const Ev& b) const {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };

  std::priority_queue<Ev, std::vector<Ev>, Later> heap_;
  std::vector<Callback> slots_;          // slab; grows to peak pending
  std::vector<std::uint32_t> free_slots_;  // recycled slot indices
  TimePs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace flextoe::sim
