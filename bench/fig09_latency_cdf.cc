// Figure 9: Memcached operation latency distributions for every
// server-stack x client-stack combination (single-threaded server).
// One series per server stack; rows are client stacks with CDF summary
// points (p25/p50/p75/p90/p99) in us.
#include "common.hpp"

using namespace flextoe;
using namespace flextoe::benchx;

BENCH_SCENARIO(fig09, "latency us by server/client stack combination") {
  const auto& servers =
      ctx.pick<std::vector<Stack>>(all_stacks(), {Stack::Linux,
                                                  Stack::FlexToe});
  const auto& clients = servers;
  const auto warm = ctx.pick(sim::ms(10), sim::ms(3));
  const auto span = ctx.pick(sim::ms(40), sim::ms(6));

  for (Stack server_s : servers) {
    auto& series =
        ctx.report().series(std::string("server/") + stack_name(server_s));
    for (Stack client_s : clients) {
      Testbed tb(ctx.seed(19));
      auto& server = add_server(tb, server_s, 1);
      // Client machine runs the client-side stack personality.
      Testbed::Node* client = nullptr;
      if (client_s == Stack::FlexToe) {
        client = &tb.add_flextoe_node({.cores = 4, .nic_gbps = 40.0});
      } else {
        app::NodeParams np;
        np.cores = 4;
        np.nic_gbps = 100.0;
        const auto pers = personality(client_s);
        np.serial_fraction = pers.serial_fraction;
        client = &tb.add_sw_node(np, pers);
      }

      app::KvServer srv(tb.ev(), *server.stack,
                        {.port = 11211, .app_cycles = app_cycles(server_s)},
                        server.cpu.get());
      app::KvClient::Params cp;
      cp.connections = 4;
      cp.pipeline = 1;
      cp.seed = ctx.seed(42);
      app::KvClient cli(tb.ev(), *client->stack, server.ip, cp);
      cli.start();

      tb.run_for(warm);
      cli.clear_stats();
      tb.run_for(span);

      auto& row = series.row(stack_name(client_s));
      auto& lat = cli.latency();
      row.set("p25", lat.percentile(25));
      row.set("p50", lat.percentile(50));
      row.set("p75", lat.percentile(75));
      row.set("p90", lat.percentile(90));
      row.set("p99", lat.percentile(99));
    }
  }
  ctx.report().note(
      "Paper shape: FlexTOE server gives the lowest median and tail "
      "latency across all client stacks; Linux is ~5x worse.");
}
