// tcpdump on the NIC (paper §5.1): a capture XDP module with header
// filters records traffic of interest to a pcap file while the data-path
// keeps serving — flexibility a fixed-function TOE cannot offer.
#include <cstdio>

#include "app/rpc_app.hpp"
#include "app/testbed.hpp"
#include "xdp/modules.hpp"

using namespace flextoe;

int main() {
  app::Testbed tb(11);
  auto& server = tb.add_flextoe_node({.cores = 2});
  auto& client = tb.add_client_node();

  // Capture only traffic on port 7 that carries PSH data segments.
  xdp::CaptureFilter filter;
  filter.port = 7;
  filter.flags_mask = net::tcpflag::kPsh;
  auto capture = std::make_shared<xdp::CaptureProgram>(filter);
  const char* pcap_path = "flextoe_capture.pcap";
  if (!capture->open_pcap(pcap_path)) {
    std::printf("note: cannot write %s; counting only\n", pcap_path);
  }
  server.toe->datapath().add_xdp_program(capture);

  // Also trace transport events (bpftrace-style counters).
  auto tracer = std::make_shared<xdp::TraceProgram>();
  server.toe->datapath().add_xdp_program(tracer);

  app::EchoServer srv(tb.ev(), *server.stack, {.port = 7});
  app::ClosedLoopClient::Params cp;
  cp.connections = 4;
  cp.pipeline = 2;
  cp.request_size = 256;
  app::ClosedLoopClient cli(tb.ev(), *client.stack, server.ip, cp);
  cli.start();

  tb.run_for(sim::ms(20));

  std::printf("echoed %llu RPCs while capturing\n",
              static_cast<unsigned long long>(cli.completed()));
  std::printf("captured %llu PSH segments on port 7 -> %s\n",
              static_cast<unsigned long long>(capture->captured()),
              pcap_path);
  std::printf("tracepoints: %llu events (SYN %llu, FIN %llu, RST %llu)\n",
              static_cast<unsigned long long>(tracer->events()),
              static_cast<unsigned long long>(tracer->syns()),
              static_cast<unsigned long long>(tracer->fins()),
              static_cast<unsigned long long>(tracer->rsts()));
  return capture->captured() > 0 ? 0 : 1;
}
