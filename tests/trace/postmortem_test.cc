// Drop post-mortems: when the data path drops a traced segment, the
// Tracer freezes the last-K flight-recorder events touching the victim.
// Unit tests pin the exactly-last-K window, the cid/arg matching rule
// and the report cap; the e2e test forces real fpc_queue_full drops
// through a tiny-queue pipeline graph and asserts the frozen slice
// reconstructs the victim's path.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>

#include "core/config.hpp"
#include "core/datapath.hpp"
#include "core/seg_ctx.hpp"
#include "pipeline/graph.hpp"
#include "sim/domain.hpp"
#include "trace/trace.hpp"

namespace flextoe::trace {
namespace {

struct PostMortemTest : ::testing::Test {
  void SetUp() override {
    if (!kCompiledIn) GTEST_SKIP() << "tracing compiled out";
    Tracer::instance().reset();
    set_enabled(false);
  }
  void TearDown() override {
    set_enabled(false);
    Tracer::instance().reset();
  }
};

// --------------------------------------------------------- unit tests

TEST_F(PostMortemTest, CapturesExactlyLastKVictimEvents) {
  Ring ring(3, 9, 64);
  const std::uint64_t victim = ring.make_cid();
  const std::uint64_t bystander = ring.make_cid();
  // Interleave 10 victim events with noise; only the newest 5 victim
  // events may survive in the report.
  for (std::uint64_t i = 0; i < 10; ++i) {
    ring.record(100 * i, Phase::kInstant, 1, 1, victim, i);
    ring.record(100 * i + 1, Phase::kInstant, 2, 1, bystander, i);
    ring.record(100 * i + 2, Phase::kInstant, 3, 1, 0, i);
  }
  Tracer::instance().set_postmortem_depth(5);
  Tracer::instance().report_drop(ring, victim, "unit_reason", 999);

  const auto pms = Tracer::instance().postmortems();
  ASSERT_EQ(pms.size(), 1u);
  const auto& pm = pms[0];
  EXPECT_EQ(pm.reason, "unit_reason");
  EXPECT_EQ(pm.victim, victim);
  EXPECT_EQ(pm.t, 999u);
  EXPECT_EQ(pm.domain_id, 3u);
  EXPECT_EQ(pm.ring_label, 9u);
  ASSERT_EQ(pm.events.size(), 5u);  // exactly last K, not "up to ring size"
  for (std::size_t i = 0; i < pm.events.size(); ++i) {
    EXPECT_EQ(pm.events[i].cid, victim);
    EXPECT_EQ(pm.events[i].arg, 5 + i);  // the NEWEST five, oldest first
  }
}

TEST_F(PostMortemTest, ArgMatchCatchesActorPairedEvents) {
  // DMA/carousel sites key their own span ids in `cid` and carry the
  // segment's causal id in `arg`; the backward scan must match either.
  Ring ring(0, 1, 64);
  const std::uint64_t victim = ring.make_cid();
  const std::uint64_t actor_span = Tracer::instance().next_actor_base() | 7;
  ring.record(10, Phase::kAsyncBegin, 1, 1, victim, 0);       // cid match
  ring.record(20, Phase::kAsyncBegin, 2, 2, actor_span, victim);  // arg match
  ring.record(30, Phase::kInstant, 3, 3, 0, 12345);           // unrelated
  Tracer::instance().report_drop(ring, victim, "r", 40);

  const auto pms = Tracer::instance().postmortems();
  ASSERT_EQ(pms.size(), 1u);
  ASSERT_EQ(pms[0].events.size(), 2u);
  EXPECT_EQ(pms[0].events[0].t, 10u);
  EXPECT_EQ(pms[0].events[1].t, 20u);
}

TEST_F(PostMortemTest, ShorterHistoryYieldsShorterSlice) {
  Ring ring(0, 1, 64);
  const std::uint64_t victim = ring.make_cid();
  ring.record(1, Phase::kInstant, 1, 1, victim, 0);
  ring.record(2, Phase::kInstant, 1, 1, victim, 1);
  Tracer::instance().set_postmortem_depth(16);
  Tracer::instance().report_drop(ring, victim, "r", 3);
  const auto pms = Tracer::instance().postmortems();
  ASSERT_EQ(pms.size(), 1u);
  EXPECT_EQ(pms[0].events.size(), 2u);  // all that exists, no padding
}

TEST_F(PostMortemTest, ReportCountIsBounded) {
  Ring ring(0, 1, 64);
  Tracer::instance().set_postmortem_max_reports(2);
  for (int i = 0; i < 5; ++i) {
    const std::uint64_t victim = ring.make_cid();
    ring.record(static_cast<sim::TimePs>(i), Phase::kInstant, 1, 1, victim,
                0);
    Tracer::instance().report_drop(ring, victim, "r",
                                   static_cast<sim::TimePs>(i));
  }
  // A drop storm must not grow memory without bound: first N kept.
  EXPECT_EQ(Tracer::instance().postmortems().size(), 2u);
}

// ---------------------------------------------------------------- e2e

// Minimal Datapath host so the pipeline graph is fully wired.
struct BuiltGraph {
  sim::Domain ev;
  std::optional<core::Datapath> dp;

  explicit BuiltGraph(const core::DatapathConfig& cfg) {
    core::Datapath::HostIface host;
    host.notify = [](const host::CtxDesc&) {};
    host.to_control = [](const net::PacketPtr&) {};
    host.peer_fin = [](tcp::ConnId) {};
    dp.emplace(ev, cfg, host);
  }
  pipeline::Graph& graph() { return dp->graph(); }
};

// Force real FpcQueueFull drops: a pipelined graph with a 2-deep work
// queue, fed ingress segments without ever running the event queue, so
// the pre-stage FPC saturates (8 hardware threads + 2 queue slots) and
// every further admission drops — exactly the overload path the paper's
// one-shot data path resolves by dropping (§3.2).
TEST_F(PostMortemTest, FpcQueueFullDropProducesPostMortem) {
  set_enabled(true);
  core::DatapathConfig cfg = core::ablation_pipelined();
  cfg.fpc_queue_depth = 2;
  BuiltGraph b(cfg);

  std::uint64_t last_victim = 0;
  for (int i = 0; i < 32; ++i) {
    auto ctx = std::make_shared<core::SegCtx>();
    ctx->kind = core::SegCtx::Kind::Rx;
    ctx->flow_group = 0;
    ctx->lookup_key = 0x1000u + static_cast<std::uint64_t>(i);
    b.graph().stamp_birth(*ctx);
    ASSERT_NE(ctx->trace_id, 0u) << "stamp_birth must mint a causal id";
    last_victim = ctx->trace_id;
    b.graph().ingress_rx(ctx);
  }

  // Queue depth 2 must overflow within 32 segments (8 hardware threads
  // + 2 slots), and each traced drop files a post-mortem.
  const auto pms = Tracer::instance().postmortems();
  ASSERT_FALSE(pms.empty());
  for (const auto& pm : pms) {
    EXPECT_EQ(pm.reason, "fpc_queue_full");
    EXPECT_NE(pm.victim, 0u);
    ASSERT_FALSE(pm.events.empty());
    // Every frozen event touches the victim, and the slice ends with
    // the drop instant count_drop records before freezing.
    for (const Event& e : pm.events) {
      EXPECT_TRUE(e.cid == pm.victim || e.arg == pm.victim);
    }
    const Event& last = pm.events.back();
    EXPECT_EQ(last.cid, pm.victim);
    EXPECT_EQ(Tracer::instance().string(last.name), "fpc_queue_full");
  }
  // The newest victim was one of the dropped ones (everything after the
  // queue filled drops), so its path is reconstructable.
  EXPECT_EQ(pms.back().victim, last_victim);
}

}  // namespace
}  // namespace flextoe::trace
