// scenario_runner: CLI front-end for the workload engine's scenario
// registry. Every registered ScenarioSpec becomes a harness scenario, so
// the standard driver applies:
//
//   scenario_runner --list                      # catalog
//   scenario_runner --filter incast --quick     # one scenario, smoke size
//   scenario_runner --json BENCH_scenario_runner.json --seed 7
//
// Each scenario emits one series named after itself with a single row
// per stack: rps, both byte-rate directions, latency percentiles, JFI,
// and churn/overload counters.
#include <string>
#include <vector>

#include "common.hpp"
#include "workload/scenario.hpp"

namespace flextoe::benchx {
namespace {

void run_one(const std::string& name, ScenarioCtx& ctx) {
  const workload::ScenarioSpec* spec =
      workload::ScenarioRegistry::instance().find(name);
  if (spec == nullptr) return;

  // Every emitted metric is the mean over --repeats seeded runs, not
  // just the throughput scalar. The repetitions are independent whole
  // simulations (run i shifts the seed by i, exactly the seeds the old
  // sequential ctx.measure loop used), so they batch across --threads
  // workers with results identical to a sequential run.
  workload::RunOptions ro;
  ro.quick = ctx.quick();
  ro.seed_offset = ctx.seed(0);
  ro.tap = ctx.opts().tap;
  const std::vector<workload::ScenarioResult> runs =
      workload::run_scenario_batch(*spec, ro, ctx.opts().repeats,
                                   ctx.threads());
  const double n = static_cast<double>(runs.size());
  auto mean = [&](auto field) {
    double sum = 0;
    for (const auto& r : runs) sum += static_cast<double>(field(r));
    return sum / n;
  };
  using R = workload::ScenarioResult;

  auto& row = ctx.report().series(name).row(stack_name(spec->stack));
  row.set("rps", mean([](const R& r) { return r.throughput_rps; }));
  row.set("client_rx_gbps",
          mean([](const R& r) { return r.client_rx_gbps; }));
  if (spec->app == workload::AppKind::RpcEcho) {
    row.set("server_rx_gbps",
            mean([](const R& r) { return r.server_rx_gbps; }));
  }
  if (spec->app != workload::AppKind::Stream) {
    row.set("p50_us", mean([](const R& r) { return r.p50_us; }));
    row.set("p99_us", mean([](const R& r) { return r.p99_us; }));
  }
  row.set("jfi", mean([](const R& r) { return r.jfi; }));
  if (spec->requests_per_conn > 0) {
    row.set("reconnects", mean([](const R& r) { return r.reconnects; }));
  }
  const double drops =
      mean([](const R& r) { return r.overload_drops; });
  if (drops > 0) row.set("overload_drops", drops);
}

// Registers every catalog scenario with the harness before main() runs.
[[maybe_unused]] const bool kRegistered = [] {
  workload::register_builtin_scenarios();
  for (const auto& spec : workload::ScenarioRegistry::instance().all()) {
    const std::string name = spec.name;
    Registry::instance().add(
        {name, spec.description,
         [name](ScenarioCtx& ctx) { run_one(name, ctx); }});
  }
  return true;
}();

}  // namespace
}  // namespace flextoe::benchx
