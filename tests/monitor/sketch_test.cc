// Count-min sketch flow monitor: the one-sided error guarantee
// (estimates never under-count), the bounded-memory claim, telemetry
// binding, and heavy-hitter recovery — the sketch's top-10 must match an
// exact per-flow oracle on a seeded websearch-CDF flow population.
#include "monitor/sketch.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "sim/rng.hpp"
#include "telemetry/registry.hpp"
#include "workload/size_model.hpp"

namespace flextoe::monitor {
namespace {

TEST(CountMinSketch, NeverUnderEstimates) {
  CountMinSketch cms(4, 512, 42);
  sim::Rng rng(7);
  std::map<std::uint64_t, std::uint64_t> truth;
  for (int i = 0; i < 20'000; ++i) {
    const std::uint64_t key = rng.next_u64() % 3000;  // force collisions
    const std::uint64_t delta = 1 + rng.next_u64() % 1000;
    truth[key] += delta;
    cms.update(key, delta);
  }
  for (const auto& [key, total] : truth) {
    EXPECT_GE(cms.estimate(key), total);
  }
}

TEST(CountMinSketch, ExactWithoutCollisions) {
  // Few keys, wide sketch: conservative update returns exact counts.
  CountMinSketch cms(4, 4096, 1);
  for (std::uint64_t k = 1; k <= 8; ++k) {
    for (int i = 0; i < 10; ++i) cms.update(k, k * 100);
  }
  for (std::uint64_t k = 1; k <= 8; ++k) {
    EXPECT_EQ(cms.estimate(k), k * 100 * 10);
  }
  EXPECT_EQ(cms.estimate(999), 0u);  // never-seen key
}

TEST(CountMinSketch, MemoryIsBoundedAndWidthPowerOfTwo) {
  CountMinSketch cms(3, 1000, 9);  // width rounds up to 1024
  EXPECT_EQ(cms.width(), 1024u);
  EXPECT_EQ(cms.depth(), 3u);
  EXPECT_EQ(cms.memory_bytes(), 3u * 1024u * sizeof(std::uint64_t));
}

TEST(CountMinSketch, ClearZeroesEstimates) {
  CountMinSketch cms(4, 256, 3);
  cms.update(17, 1000);
  ASSERT_GE(cms.estimate(17), 1000u);
  cms.clear();
  EXPECT_EQ(cms.estimate(17), 0u);
}

TEST(SketchFlowMonitor, TotalsAndTopOrdering) {
  SketchFlowMonitor mon;
  mon.record(1, 100);
  mon.record(2, 300);
  mon.record(2, 300);
  mon.record(3, 50);

  EXPECT_EQ(mon.events(), 4u);
  EXPECT_EQ(mon.total_bytes(), 750u);
  EXPECT_EQ(mon.estimate_bytes(2), 600u);
  EXPECT_EQ(mon.estimate_segments(2), 2u);

  const auto top = mon.top(10);
  ASSERT_EQ(top.size(), 3u);  // descending bytes
  EXPECT_EQ(top[0].key, 2u);
  EXPECT_EQ(top[1].key, 1u);
  EXPECT_EQ(top[2].key, 3u);
  EXPECT_EQ(mon.top(1).size(), 1u);
}

TEST(SketchFlowMonitor, CandidateTableIsBounded) {
  SketchParams p;
  p.top_k = 4;
  SketchFlowMonitor mon(p);
  // 100 flows, ascending weight: only the heaviest survive eviction.
  for (std::uint64_t k = 1; k <= 100; ++k) mon.record(k, k * 1000);
  const auto top = mon.top(100);
  ASSERT_EQ(top.size(), 4u);  // bounded by top_k
  EXPECT_EQ(top[0].key, 100u);
  EXPECT_EQ(top[3].key, 97u);
}

TEST(SketchFlowMonitor, TelemetryBindsUnderPrefix) {
  telemetry::Registry reg;
  SketchFlowMonitor mon;
  mon.bind_telemetry(reg);
  mon.record(5, 500);
  mon.record(5, 500);

  const auto snap = reg.snapshot();
  ASSERT_NE(snap.counter("tap/sketch/events"), nullptr);
  EXPECT_EQ(*snap.counter("tap/sketch/events"), 2u);
  ASSERT_NE(snap.counter("tap/sketch/bytes"), nullptr);
  EXPECT_EQ(*snap.counter("tap/sketch/bytes"), 1000u);
  ASSERT_NE(snap.gauge("tap/sketch/heavy_flows"), nullptr);
  EXPECT_EQ(*snap.gauge("tap/sketch/heavy_flows"), 1);
  ASSERT_NE(snap.gauge("tap/sketch/top_bytes"), nullptr);
  EXPECT_EQ(*snap.gauge("tap/sketch/top_bytes"), 1000);
}

// Acceptance: on a seeded websearch-CDF flow population the sketch's
// top-10 heavy hitters are exactly the oracle's top-10, with memory far
// below the exact per-flow table.
TEST(SketchFlowMonitor, RecoversWebsearchHeavyHitters) {
  sim::Rng rng(0x5eed);
  auto sizes = workload::empirical_size(workload::websearch_flow_cdf(),
                                        /*cap_bytes=*/0);

  // 2000 flows draw a flow size from the websearch CDF; each flow is
  // fed to the monitor as MSS-sized segments, interleaved round-robin
  // the way a real mix would arrive.
  constexpr std::uint64_t kFlows = 2000;
  constexpr std::uint32_t kMss = 1448;
  std::map<std::uint64_t, std::uint64_t> oracle;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> remaining;
  for (std::uint64_t f = 1; f <= kFlows; ++f) {
    const std::uint64_t key = 0x9e3779b97f4a7c15ull * f;  // spread keys
    const std::uint32_t bytes = sizes->sample(rng);
    oracle[key] = bytes;
    remaining.emplace_back(key, bytes);
  }

  SketchFlowMonitor mon;  // default 4x2048 sketch, top_k 16
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto& [key, left] : remaining) {
      if (left == 0) continue;
      const std::uint64_t seg = std::min<std::uint64_t>(left, kMss);
      mon.record(key, seg);
      left -= seg;
      progressed = true;
    }
  }

  // Oracle top-10 by true bytes.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> exact(oracle.begin(),
                                                             oracle.end());
  std::sort(exact.begin(), exact.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  std::set<std::uint64_t> want;
  for (std::size_t i = 0; i < 10; ++i) want.insert(exact[i].first);

  std::set<std::uint64_t> got;
  for (const auto& hh : mon.top(10)) got.insert(hh.key);
  EXPECT_EQ(got, want);

  // Estimates never under-count the oracle.
  for (const std::uint64_t key : want) {
    EXPECT_GE(mon.estimate_bytes(key), oracle[key]);
  }

  // Bounded memory: two 4x2048 sketches of u64 cells, independent of
  // the 2000-flow population (an exact table needs >= 16 B per flow).
  EXPECT_LE(mon.memory_bytes(), 2u * 4u * 2048u * sizeof(std::uint64_t) +
                                    16u * 64u /* candidate table slack */);
}

}  // namespace
}  // namespace flextoe::monitor
