// Data-path configuration: FPC topology, replication factors, stage
// costs, memory model — the knobs behind the paper's ablation (Table 3)
// and the x86/BlueField ports (Fig 14, Appendix E).
#pragma once

#include <cstddef>
#include <cstdint>

#include "nfp/dma.hpp"
#include "nfp/memory.hpp"
#include "sim/time.hpp"

namespace flextoe::core {

// Compute cycles per stage visit (FPC instruction-path costs; memory
// cycles are added by the cache model on top).
struct StageCosts {
  std::uint32_t seq = 30;        // sequencer / reorder FPCs
  std::uint32_t pre_rx = 260;    // Val + Id + Sum + Steer
  std::uint32_t pre_tx = 110;    // Alloc + Head + Steer
  std::uint32_t pre_hc = 70;     // Steer
  std::uint32_t proto_rx = 200;  // Win/ECN/ooo handling (atomic)
  std::uint32_t proto_tx = 120;  // Seq
  std::uint32_t proto_hc = 80;   // Win / Fin / Reset
  std::uint32_t post_rx = 300;   // Ack + Stamp + Stats + Pos
  std::uint32_t post_tx = 90;    // Pos + FS
  std::uint32_t post_hc = 70;    // FS + Free
  std::uint32_t dma_issue = 60;  // descriptor enqueue to PCIe block
  std::uint32_t ctx_op = 55;     // doorbell poll / notify
};

// Flow-scheduler engine selection (both implement sched::TimerService
// with identical trigger semantics; see src/sched/timer_service.hpp).
enum class TimerImpl {
  kAuto,      // carousel below timer_wheel_threshold conns, wheel above
  kCarousel,  // single-level wheel + unordered_map (low-count sweet spot)
  kWheel,     // hierarchical timing wheel, flat flow storage (1M+ conns)
};

struct DatapathConfig {
  // --- Parallelism (Table 3 ablation knobs) ---
  // false: run the whole data-path to completion on a single FPC.
  bool pipelined = true;
  unsigned threads_per_fpc = 8;
  unsigned pre_replicas = 4;   // per flow-group island
  unsigned post_replicas = 4;  // per flow-group island
  unsigned flow_groups = 4;    // protocol islands
  unsigned proto_fpcs_per_group = 2;  // connections sharded within group
  unsigned dma_fpcs = 4;
  unsigned ctx_fpcs = 4;
  // Replicas per attached XDP stage node (paper §3.3 splicing): each
  // program in the chain becomes its own pipeline::Stage with this many
  // FPCs. Ignored until a program is attached — the default no-XDP
  // graph allocates nothing.
  unsigned xdp_replicas = 2;
  // false: reorder points pass through (no-reorder ablation) — parallel
  // stages may then reorder segments within a flow group.
  bool reorder = true;

  // --- Platform ---
  sim::ClockDomain clock = sim::kFpcClock;
  // true: NFP software-managed caches + CLS/EMEM hierarchy.
  // false: hardware cache hierarchy (x86/BlueField ports) — flat cost.
  bool nfp_memory = true;
  std::uint32_t flat_mem_cycles = 12;  // per state access when !nfp_memory
  nfp::MemLatencies mem;
  nfp::DmaParams dma;
  // x86/BlueField ports use shared memory, not PCIe (Appendix E).
  bool shared_memory_ctx = false;
  // Host notification latency (MSI-X interrupt -> eventfd wakeup), or the
  // polling delay when context queues are shared memory.
  sim::TimePs notify_latency = sim::us(1);
  // Software payload-copy cost charged on the DMA-stage core when context
  // queues are shared memory (x86/BlueField ports copy in software).
  std::uint32_t copy_cycles_per_kb = 400;

  // --- Stage costs ---
  StageCosts costs;

  // --- Protocol ---
  std::uint32_t mss = 1448;
  std::uint32_t max_conns = 64 * 1024;
  std::size_t fpc_queue_depth = 512;
  // Burst size for batched dispatch (FPC work-ring drain harvest and
  // datapath delivery bursts). 0 = use the process default (see
  // core/batch.hpp; the bench harness --batch flag sets it). Purely a
  // host-side dispatch detail — never changes simulated timing or
  // event order.
  unsigned batch_size = 0;

  // --- Flow scheduler (SCH engine) ---
  TimerImpl timer = TimerImpl::kAuto;
  // kAuto crossover: max_conns at or above this selects the wheel. The
  // default keeps every preset (max_conns 64K) on the carousel.
  std::uint32_t timer_wheel_threshold = 100'000;

  // --- Extensions (Table 2) ---
  bool profiling = false;           // 48 tracepoints enabled
  std::uint32_t profile_cycles = 35;  // extra cycles per stage when on

  double mac_gbps = 40.0;  // Agilio CX40 line rate
};

// Presets --------------------------------------------------------------

inline DatapathConfig agilio_cx40_config() { return DatapathConfig{}; }

// Table 3 ablation steps.
inline DatapathConfig ablation_baseline() {
  DatapathConfig c;
  c.pipelined = false;
  c.threads_per_fpc = 1;
  c.pre_replicas = 1;
  c.post_replicas = 1;
  c.flow_groups = 1;
  c.proto_fpcs_per_group = 1;
  c.dma_fpcs = 1;
  c.ctx_fpcs = 1;
  return c;
}

inline DatapathConfig ablation_pipelined() {
  DatapathConfig c = ablation_baseline();
  c.pipelined = true;
  return c;
}

inline DatapathConfig ablation_threads() {
  DatapathConfig c = ablation_pipelined();
  c.threads_per_fpc = 8;
  return c;
}

inline DatapathConfig ablation_replicated() {
  DatapathConfig c = ablation_threads();
  c.pre_replicas = 4;
  c.post_replicas = 4;
  c.dma_fpcs = 4;
  c.ctx_fpcs = 4;
  return c;
}

inline DatapathConfig ablation_flow_groups() {
  DatapathConfig c = ablation_replicated();
  c.flow_groups = 4;
  c.proto_fpcs_per_group = 2;
  return c;
}

// Full parallelism with pass-through reorder points: measures what the
// §3.2 sequencing machinery costs (and what unordered delivery breaks).
inline DatapathConfig ablation_no_reorder() {
  DatapathConfig c = ablation_flow_groups();
  c.reorder = false;
  return c;
}

// x86 port (Appendix E): 2.35 GHz cores, hardware caches, shared-memory
// context queues, one pipeline instance (no flow-group islands).
inline DatapathConfig x86_config(bool replicated = true) {
  DatapathConfig c;
  c.clock = sim::kX86Clock;
  c.nfp_memory = false;
  c.flat_mem_cycles = 10;
  c.shared_memory_ctx = true;
  c.flow_groups = 1;
  c.proto_fpcs_per_group = 1;
  c.pre_replicas = replicated ? 2 : 1;
  c.post_replicas = replicated ? 2 : 1;
  c.dma_fpcs = 1;  // payload copies in software
  c.ctx_fpcs = 1;
  c.threads_per_fpc = 1;  // one module instance per core
  c.fpc_queue_depth = 8192;  // software rings are deep (no NIC SRAM limit)
  c.mac_gbps = 100.0;
  c.notify_latency = sim::ns(300);  // shared-memory polling
  c.dma.gbps = 200.0;               // memory-bandwidth "DMA"
  c.dma.latency = sim::ns(80);
  c.dma.mmio_latency = sim::ns(60);
  return c;
}

// BlueField port: wimpy ARM A72 cores, hardware caches.
inline DatapathConfig bluefield_config(bool replicated = true) {
  DatapathConfig c = x86_config(replicated);
  c.clock = sim::kBlueFieldClock;
  c.flat_mem_cycles = 16;
  c.mac_gbps = 25.0;
  return c;
}

}  // namespace flextoe::core
