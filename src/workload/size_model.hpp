// Message/flow size models for the workload engine (paper §5 spans
// fixed-size RPCs, memcached values, and large transfers; datacenter
// measurement studies add heavy-tailed and empirical distributions).
// A SizeModel turns a deterministic Rng stream into request sizes;
// factories produce fresh instances so a ScenarioSpec can be run many
// times with independent seeds.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/rng.hpp"

namespace flextoe::workload {

class SizeModel {
 public:
  virtual ~SizeModel() = default;

  // Next request size in bytes (>= 1).
  virtual std::uint32_t sample(sim::Rng& rng) = 0;

  // Analytic mean of the distribution (before any cap/clamp), used for
  // offered-load calculations.
  virtual double mean_bytes() const = 0;
};

using SizeModelFactory = std::function<std::unique_ptr<SizeModel>()>;

// Every request the same size.
std::unique_ptr<SizeModel> fixed_size(std::uint32_t bytes);

// Uniform in [lo, hi] inclusive.
std::unique_ptr<SizeModel> uniform_size(std::uint32_t lo, std::uint32_t hi);

// Lognormal with the given log-space parameters, clamped to
// [min_bytes, max_bytes]. mean_bytes() reports the unclamped analytic
// mean exp(mu + sigma^2/2).
std::unique_ptr<SizeModel> lognormal_size(double mu, double sigma,
                                          std::uint32_t min_bytes,
                                          std::uint32_t max_bytes);

// Bounded Pareto on [lo, hi] with shape alpha (> 0, != 1): the classic
// mice-and-elephants heavy tail.
std::unique_ptr<SizeModel> bounded_pareto_size(double alpha,
                                               std::uint32_t lo,
                                               std::uint32_t hi);

// One point of an empirical CDF: P(size <= bytes) = cum_prob.
struct CdfPoint {
  std::uint32_t bytes;
  double cum_prob;
};

// Inverse-transform sampling over a piecewise-linear empirical CDF.
// `cdf` must be strictly increasing in both fields with the final
// cum_prob == 1.0. cap_bytes > 0 clamps samples (keeps heavy-tailed
// tables usable in short simulations); mean_bytes() is cap-aware.
std::unique_ptr<SizeModel> empirical_size(std::vector<CdfPoint> cdf,
                                          std::uint32_t cap_bytes = 0);

// In-tree empirical flow-size tables, approximating the web-search
// (DCTCP) and data-mining (VL2) datacenter distributions commonly used
// to evaluate transport designs.
const std::vector<CdfPoint>& websearch_flow_cdf();
const std::vector<CdfPoint>& datamining_flow_cdf();

}  // namespace flextoe::workload
