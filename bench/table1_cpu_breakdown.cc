// Table 1: Per-request CPU impact of TCP processing.
//
// A single-threaded memcached-like server (32 B keys/values, closed-loop
// clients at saturation) runs over each stack; host CPU cycles are
// accounted by category and divided by completed requests. The
// micro-architectural rows (instructions, IPC, icache) come from the
// personality model (they are hardware-counter measurements in the paper
// and are model inputs here; see EXPERIMENTS.md). One series per stack;
// rows are table rows, all in one "value" column so the text report
// pivots into the paper's layout.
#include "common.hpp"

using namespace flextoe;
using namespace flextoe::benchx;

namespace {

struct Uarch {
  double instructions_k, ipc, icache_kb;
};

Uarch uarch_model(Stack s) {
  switch (s) {
    case Stack::Linux:
      return {16.18, 1.33, 47.50};
    case Stack::Chelsio:
      return {8.14, 0.92, 73.43};
    case Stack::Tas:
      return {6.26, 1.85, 39.75};
    case Stack::FlexToe:
      return {2.93, 1.75, 19.00};
  }
  return {};
}

}  // namespace

BENCH_SCENARIO(table1, "per-request CPU cycles (kc) by component") {
  const auto warm = ctx.pick(sim::ms(20), sim::ms(4));
  const auto span = ctx.pick(sim::ms(60), sim::ms(8));

  for (Stack s : all_stacks()) {
    Testbed tb(ctx.seed(7));
    auto& server = add_server(tb, s, /*cores=*/1);
    auto& client = tb.add_client_node();

    app::KvServer srv(tb.ev(), *server.stack,
                      {.port = 11211, .app_cycles = app_cycles(s)},
                      server.cpu.get());
    app::KvClient::Params cp;
    cp.connections = 8;
    cp.pipeline = 4;
    cp.seed = ctx.seed(42);
    cp.key_size = 32;
    cp.value_size = 32;
    app::KvClient cli(tb.ev(), *client.stack, server.ip, cp);
    cli.start();

    tb.run_for(warm);  // warmup (fill store, ramp cwnd)
    server.cpu->clear_accounting();
    cli.clear_stats();
    tb.run_for(span);

    const auto reqs = cli.completed();
    auto kc = [&](sim::CpuCat c) {
      return reqs == 0 ? 0.0
                       : static_cast<double>(server.cpu->cycles(c)) /
                             static_cast<double>(reqs) / 1000.0;
    };
    auto& series = ctx.report().series(stack_name(s));
    const double driver = kc(sim::CpuCat::Driver);
    const double stack = kc(sim::CpuCat::Stack);
    const double sockets = kc(sim::CpuCat::Sockets);
    const double app = kc(sim::CpuCat::App);
    const double other = kc(sim::CpuCat::Other);
    series.set("NIC driver", "value", driver);
    series.set("TCP/IP stack", "value", stack);
    series.set("POSIX sockets", "value", sockets);
    series.set("Application", "value", app);
    series.set("Other", "value", other);
    series.set("Total", "value", driver + stack + sockets + app + other);
    series.set("requests", "value", static_cast<double>(reqs));

    const Uarch u = uarch_model(s);
    series.set("Instr (k)", "value", u.instructions_k);
    series.set("IPC", "value", u.ipc);
    series.set("Icache (KB)", "value", u.icache_kb);
  }

  ctx.report().note(
      "Instr/IPC/Icache rows are personality-model inputs, not "
      "measurements.\n"
      "Paper (Table 1 totals, kc/req): Linux 12.13, Chelsio 8.89, "
      "TAS 3.34, FlexTOE 1.67");
}
