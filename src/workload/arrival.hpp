// Arrival processes for the workload engine: when the traffic generator
// issues the next request. Closed-loop (issue on completion) matches the
// paper's memtier/RPC clients; open-loop Poisson and bursty ON-OFF
// processes let scenarios offer load independent of service rate, the
// standard split in network-simulator traffic sources.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace flextoe::workload {

class ArrivalModel {
 public:
  virtual ~ArrivalModel() = default;

  // Closed-loop models issue a new request per completed one (windowed
  // by the generator's pipeline depth); next_gap() is never called.
  virtual bool closed_loop() const { return false; }

  // Open-loop models: time until the next request arrival.
  virtual sim::TimePs next_gap(sim::Rng& rng) = 0;

  // Nominal offered request rate (0 when undefined, e.g. closed loop).
  virtual double rate_per_sec() const { return 0.0; }
};

using ArrivalFactory = std::function<std::unique_ptr<ArrivalModel>()>;

// Issue on completion; the generator keeps `pipeline` requests in
// flight per connection.
std::unique_ptr<ArrivalModel> closed_loop_arrival();

// Open-loop Poisson process: exponential inter-arrival gaps with the
// given mean rate (requests/sec across the whole generator).
std::unique_ptr<ArrivalModel> poisson_arrival(double rate_per_sec);

// Open-loop deterministic pacing at a fixed rate (requests/sec).
std::unique_ptr<ArrivalModel> paced_arrival(double rate_per_sec);

// Bursty ON-OFF source: Poisson arrivals at `on_rate_per_sec` during
// exponentially distributed ON periods (mean `mean_on`), separated by
// exponentially distributed silences (mean `mean_off`).
std::unique_ptr<ArrivalModel> on_off_arrival(double on_rate_per_sec,
                                             sim::TimePs mean_on,
                                             sim::TimePs mean_off);

}  // namespace flextoe::workload
