// Scenario registry round-trip and end-to-end runs of the workload
// engine: catalog contents, quick runs across the app kinds, open-loop
// vs closed-loop behavior, churn, and per-seed determinism.
#include "workload/scenario.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace flextoe::workload {
namespace {

class ScenarioCatalog : public ::testing::Test {
 protected:
  void SetUp() override { register_builtin_scenarios(); }
};

TEST_F(ScenarioCatalog, RegistersRequiredScenarios) {
  const auto& all = ScenarioRegistry::instance().all();
  EXPECT_GE(all.size(), 8u);
  // The catalog promises at least one open-loop Poisson, one incast,
  // and one empirical-CDF workload.
  for (const char* required :
       {"rpc_poisson_open", "incast_fanin", "rpc_websearch",
        "rpc_echo_closed", "kv_memtier_closed", "stream_tx_drain"}) {
    EXPECT_NE(ScenarioRegistry::instance().find(required), nullptr)
        << required;
  }
}

TEST_F(ScenarioCatalog, NamesAreUniqueAndFindRoundTrips) {
  std::set<std::string> names;
  for (const auto& s : ScenarioRegistry::instance().all()) {
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate " << s.name;
    const ScenarioSpec* found = ScenarioRegistry::instance().find(s.name);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->name, s.name);
    EXPECT_FALSE(found->description.empty()) << s.name;
  }
  EXPECT_EQ(ScenarioRegistry::instance().find("no_such_scenario"), nullptr);
}

TEST_F(ScenarioCatalog, RegistrationIsIdempotent) {
  const std::size_t before = ScenarioRegistry::instance().all().size();
  register_builtin_scenarios();
  EXPECT_EQ(ScenarioRegistry::instance().all().size(), before);
}

TEST_F(ScenarioCatalog, AddReplacesByName) {
  ScenarioSpec s;
  s.name = "scenario_test_tmp";
  s.description = "v1";
  ScenarioRegistry::instance().add(s);
  const std::size_t n = ScenarioRegistry::instance().all().size();
  s.description = "v2";
  ScenarioRegistry::instance().add(s);
  EXPECT_EQ(ScenarioRegistry::instance().all().size(), n);
  EXPECT_EQ(ScenarioRegistry::instance().find("scenario_test_tmp")
                ->description,
            "v2");
}

RunOptions tiny_run() {
  RunOptions ro;
  ro.warm_override = sim::ms(2);
  ro.span_override = sim::ms(4);
  return ro;
}

TEST_F(ScenarioCatalog, ClosedLoopEchoRuns) {
  const auto* spec = ScenarioRegistry::instance().find("rpc_echo_closed");
  ASSERT_NE(spec, nullptr);
  const ScenarioResult r = run_scenario(*spec, tiny_run());
  EXPECT_GT(r.completed, 1000u);
  EXPECT_GT(r.throughput_rps, 0.0);
  EXPECT_GT(r.server_rx_gbps, 0.0);
  EXPECT_GT(r.p50_us, 0.0);
  EXPECT_GE(r.p99_us, r.p50_us);
  EXPECT_GT(r.jfi, 0.5);
  EXPECT_EQ(r.connected, 32u);  // 2 nodes x 16 conns
  EXPECT_EQ(r.reconnects, 0u);
}

TEST_F(ScenarioCatalog, OpenLoopPoissonTracksOfferedLoad) {
  const auto* spec = ScenarioRegistry::instance().find("rpc_poisson_open");
  ASSERT_NE(spec, nullptr);
  RunOptions ro = tiny_run();
  ro.span_override = sim::ms(10);
  const ScenarioResult r = run_scenario(*spec, ro);
  // 2 nodes x 100k rps offered; completions should be within ~20%.
  EXPECT_NEAR(r.throughput_rps, 200'000.0, 40'000.0);
  EXPECT_GT(r.p50_us, 0.0);
}

TEST_F(ScenarioCatalog, KvScenarioRuns) {
  const auto* spec = ScenarioRegistry::instance().find("kv_memtier_closed");
  ASSERT_NE(spec, nullptr);
  const ScenarioResult r = run_scenario(*spec, tiny_run());
  EXPECT_GT(r.completed, 1000u);
  EXPECT_GT(r.client_rx_gbps, 0.0);
}

TEST_F(ScenarioCatalog, StreamScenarioMovesBytes) {
  const auto* spec = ScenarioRegistry::instance().find("stream_tx_drain");
  ASSERT_NE(spec, nullptr);
  const ScenarioResult r = run_scenario(*spec, tiny_run());
  EXPECT_GT(r.client_rx_gbps, 1.0);
  EXPECT_GT(r.jfi, 0.5);
}

TEST_F(ScenarioCatalog, ChurnScenarioRecyclesConnections) {
  const auto* spec = ScenarioRegistry::instance().find("rpc_conn_churn");
  ASSERT_NE(spec, nullptr);
  const ScenarioResult r = run_scenario(*spec, tiny_run());
  EXPECT_GT(r.completed, 100u);
  EXPECT_GT(r.reconnects, 0u);
  // Churned connections keep completing requests.
  EXPECT_GT(r.connected, 32u);  // initial 2x16 plus reconnects
}

TEST_F(ScenarioCatalog, IncastShapedPortCapsThroughput) {
  const auto* spec = ScenarioRegistry::instance().find("incast_fanin");
  ASSERT_NE(spec, nullptr);
  RunOptions ro;
  ro.quick = true;
  const ScenarioResult r = run_scenario(*spec, ro);
  EXPECT_GT(r.server_rx_gbps, 1.0);
  // Degree-4 incast on a 40G port: shaped to ~10G.
  EXPECT_LT(r.server_rx_gbps, 11.0);
}

TEST_F(ScenarioCatalog, RunsAreDeterministicPerSeed) {
  const auto* spec = ScenarioRegistry::instance().find("rpc_echo_closed");
  ASSERT_NE(spec, nullptr);
  const ScenarioResult a = run_scenario(*spec, tiny_run());
  const ScenarioResult b = run_scenario(*spec, tiny_run());
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.p99_us, b.p99_us);
}

TEST_F(ScenarioCatalog, SeedOffsetPerturbsStochasticScenarios) {
  // rpc_echo_closed is seed-independent (fixed sizes, closed loop, no
  // loss), so seed sensitivity is asserted on a scenario whose behavior
  // actually consumes randomness: uniform switch loss.
  const auto* spec = ScenarioRegistry::instance().find("rpc_lossy");
  ASSERT_NE(spec, nullptr);
  const ScenarioResult a = run_scenario(*spec, tiny_run());
  RunOptions shifted = tiny_run();
  shifted.seed_offset = 1;
  const ScenarioResult c = run_scenario(*spec, shifted);
  EXPECT_TRUE(c.completed != a.completed || c.p99_us != a.p99_us);
}

}  // namespace
}  // namespace flextoe::workload
