// Segment context: the unit of work flowing through the data-path
// pipeline. Modules communicate explicitly by forwarding meta-data in
// this context (paper §3: "state that may be accessed by further pipeline
// stages is forwarded as meta-data").
//
// Layout is split hot/cold for burst dispatch: the fields every stage
// hop touches (ordering number, lookup key, telemetry stamps, steering
// bytes) live in the packed SegHot base at offset 0, so a burst of
// contexts can be walked — and the next one prefetched — at one cache
// line per segment. The cold remainder (packet refs, header summary,
// protocol snapshot, trace state) is only touched by the stages that
// need it.
#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>

#include "net/packet.hpp"
#include "sim/prefetch.hpp"
#include "sim/time.hpp"
#include "tcp/flow.hpp"
#include "tcp/seq.hpp"

namespace flextoe::core {

// Header summary produced by the pre-processor (paper §3.1.3: "including
// only relevant header fields required by later pipeline stages").
struct HeaderSummary {
  tcp::SeqNum seq = 0;
  tcp::SeqNum ack = 0;
  std::uint8_t flags = 0;
  std::uint32_t window = 0;  // descaled to bytes
  std::uint32_t payload_len = 0;
  std::uint32_t ts_val = 0;
  std::uint32_t ts_ecr = 0;
  bool ecn_ce = false;
};

// Snapshot of protocol-stage results forwarded to post-processing.
struct ProtoSnapshot {
  // RX side.
  bool accept_payload = false;
  std::uint64_t rx_write_pos = 0;    // absolute host RX buffer position
  std::uint32_t rx_write_len = 0;
  std::uint32_t rx_advance = 0;      // in-order bytes made available
  std::uint32_t payload_trim = 0;    // bytes trimmed from payload front
  bool send_ack = false;
  tcp::SeqNum ack_seq = 0;           // rcv_nxt to advertise
  std::uint32_t rx_window = 0;       // receive window to advertise
  bool echo_ecn = false;
  std::uint32_t ts_echo = 0;
  bool fin_consumed = false;
  tcp::SeqNum self_seq = 0;          // our snd_nxt (seq field of ACKs)
  // TX-buffer frees from ACK processing.
  std::uint32_t tx_freed = 0;
  bool window_opened = false;        // peer window / inflight drained
  bool fast_retransmit = false;
  std::uint32_t rtt_sample_us = 0;
  std::uint32_t ecn_bytes = 0;       // ECE-covered ACKed bytes
  // TX side.
  bool tx_valid = false;
  tcp::SeqNum tx_seq = 0;
  std::uint64_t tx_read_pos = 0;     // absolute host TX buffer position
  std::uint32_t tx_len = 0;
  bool tx_fin = false;
  std::uint64_t egress_seq = 0;      // per-flow-group NBI ordering
};

// Host-control descriptor operations (paper §3.1.1).
enum class HcOp : std::uint8_t {
  TxDoorbell,   // app appended `len` bytes for transmission
  RxFreed,      // app consumed `len` bytes of RX buffer
  Fin,          // app closed the connection
  Retransmit,   // control plane: reset to last ACKed (go-back-N)
};

// Hot SoA-style block: the per-segment fields the sequencer, replica
// steering, and telemetry stamps touch on *every* stage hop, packed so
// a whole burst's worth streams through one or two cache lines per
// context. Must stay <= 64 bytes (asserted below) — widen a field here
// only with the burst paths in mind.
struct SegHot {
  enum class Kind : std::uint8_t { Rx, Tx, Hc };

  std::uint64_t pipe_seq = 0;   // sequencer-assigned ordering number
  // Flow-tuple hash for the pre-stage lookup front cache (computed by
  // the sequencer alongside the flow-group CRC).
  std::uint64_t lookup_key = 0;

  // Telemetry timestamps (zero simulated cost): pipeline admission and
  // the last stage-entry mark, for end-to-end and per-stage latency
  // histograms. kNoTimestamp = unstamped (telemetry disabled, or the
  // pipe total was already recorded) — a sentinel distinct from 0 so
  // segments admitted at simulated time zero still get samples.
  static constexpr sim::TimePs kNoTimestamp = ~sim::TimePs{0};
  sim::TimePs t_born_ps = kNoTimestamp;
  sim::TimePs t_stage_ps = kNoTimestamp;

  std::uint32_t conn_idx = 0;
  std::uint32_t hc_len = 0;     // HC descriptor length operand

  Kind kind = Kind::Rx;
  std::uint8_t flow_group = 0;
  bool conn_known = false;
  HcOp hc_op = HcOp::TxDoorbell;
};

static_assert(sizeof(SegHot) <= 64,
              "SegHot must fit one cache line for burst dispatch");
static_assert(std::is_standard_layout_v<SegHot>,
              "SegHot layout must be predictable (prefetch target)");

struct SegCtx : SegHot {
  // ---- Cold remainder: touched only by the stages that need it ----

  net::PacketPtr pkt;           // RX: received; TX: under construction
  HeaderSummary sum;            // RX meta-data
  ProtoSnapshot snap;           // protocol -> post meta-data

  // MAC arrival time, read once at delivery and shared by every XDP
  // program in the chain (xdp::XdpMd::rx_timestamp_ps) — the whole
  // chain sees one timestamp regardless of where its stages run.
  sim::TimePs rx_time_ps = 0;

  // Prepared ACK (RX post-processing output, sent after payload DMA).
  net::PacketPtr ack_pkt;
  bool notify_host = false;     // allocate a context-queue notification

  // Causal id for segment-lifecycle tracing (trace/trace.hpp): minted
  // at pipeline admission, copied to spawned contexts (ACKs) and the
  // egress packet so one RPC's segments can be followed across domains
  // and back in through the peer's RX path. 0 = untraced. `trace_open`
  // marks an open end-to-end "pipe" span so its close records exactly
  // once. Both are out-of-band: no simulated cost, and always zero
  // while tracing is disabled.
  std::uint64_t trace_id = 0;
  bool trace_open = false;

  // Run-to-completion mode: releases the single-FPC gate when the
  // context's processing chain fully completes.
  std::shared_ptr<void> rtc_token;
};

using SegCtxPtr = std::shared_ptr<SegCtx>;

// Pulls a context's hot block toward the cache while the previous one
// is being processed (the SegHot base sits at offset 0).
inline void seg_prefetch(const SegCtx* ctx) {
  sim::prefetch(static_cast<const SegHot*>(ctx));
}

}  // namespace flextoe::core
