#include "app/kv.hpp"

#include <cstdio>

namespace flextoe::app {

using tcp::ConnId;

namespace {

void put_u16(std::vector<std::uint8_t>& v, std::uint16_t x) {
  v.push_back(static_cast<std::uint8_t>(x));
  v.push_back(static_cast<std::uint8_t>(x >> 8));
}
void put_u32(std::vector<std::uint8_t>& v, std::uint32_t x) {
  v.push_back(static_cast<std::uint8_t>(x));
  v.push_back(static_cast<std::uint8_t>(x >> 8));
  v.push_back(static_cast<std::uint8_t>(x >> 16));
  v.push_back(static_cast<std::uint8_t>(x >> 24));
}

}  // namespace

// ------------------------------------------------------------ KvServer

KvServer::KvServer(sim::EventQueue& ev, tcp::StackIface& stack, Params p,
                   sim::CpuPool* cpu)
    : ev_(ev), stack_(stack), p_(p), cpu_(cpu) {
  tcp::StackCallbacks cbs;
  cbs.on_accept = [this](ConnId c) { conns_[c]; };
  cbs.on_data = [this](ConnId c) { on_data(c); };
  cbs.on_sendable = [this](ConnId c) { flush(c); };
  cbs.on_close = [this](ConnId c) {
    stack_.close(c);
    conns_.erase(c);
  };
  stack_.set_callbacks(std::move(cbs));
  stack_.listen(p_.port);
}

void KvServer::on_data(ConnId c) {
  auto it = conns_.find(c);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  std::uint8_t buf[16 * 1024];
  std::size_t n;
  while ((n = stack_.recv(c, buf)) > 0) {
    conn.reader.feed(std::span(buf, n));
  }
  std::vector<std::uint8_t> frame;
  while (conn.reader.next(frame)) {
    if (cpu_ != nullptr && p_.app_cycles > 0) {
      conn.chain = cpu_->run(p_.app_cycles, sim::CpuCat::App, conn.chain,
                             [this, c, f = std::move(frame)]() mutable {
                               handle(c, std::move(f));
                             });
      frame = {};
    } else {
      handle(c, std::move(frame));
      frame = {};
    }
  }
}

void KvServer::handle(ConnId c, std::vector<std::uint8_t> req) {
  auto it = conns_.find(c);
  if (it == conns_.end()) return;
  if (req.size() < 7) return;  // malformed

  const std::uint8_t op = req[0];
  const std::uint16_t keylen =
      static_cast<std::uint16_t>(req[1] | (req[2] << 8));
  const std::uint32_t vallen = static_cast<std::uint32_t>(
      req[3] | (req[4] << 8) | (req[5] << 16) |
      (static_cast<std::uint32_t>(req[6]) << 24));
  if (req.size() < 7u + keylen + (op == 1 ? vallen : 0)) return;

  std::string key(reinterpret_cast<const char*>(req.data() + 7), keylen);

  std::vector<std::uint8_t> resp;
  if (op == 1) {  // SET
    ++sets_;
    store_.set(key, std::vector<std::uint8_t>(
                        req.begin() + 7 + keylen,
                        req.begin() + 7 + keylen + vallen));
    resp.reserve(4 + 5);
    put_u32(resp, 5);
    resp.push_back(0);  // OK
    put_u32(resp, 0);
  } else {  // GET
    ++gets_;
    const auto* val = store_.get(key);
    if (val == nullptr) {
      ++misses_;
      put_u32(resp, 5);
      resp.push_back(1);  // MISS
      put_u32(resp, 0);
    } else {
      put_u32(resp, static_cast<std::uint32_t>(5 + val->size()));
      resp.push_back(0);
      put_u32(resp, static_cast<std::uint32_t>(val->size()));
      resp.insert(resp.end(), val->begin(), val->end());
    }
  }
  it->second.out.push_back(std::move(resp));
  flush(c);
}

void KvServer::flush(ConnId c) {
  auto it = conns_.find(c);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  while (!conn.out.empty()) {
    auto& front = conn.out.front();
    const std::size_t n = stack_.send(
        c, std::span(front.data() + conn.out_off,
                     front.size() - conn.out_off));
    conn.out_off += n;
    if (conn.out_off < front.size()) return;
    conn.out.pop_front();
    conn.out_off = 0;
  }
}

// ------------------------------------------------------------ KvClient

KvClient::KvClient(sim::EventQueue& ev, tcp::StackIface& stack,
                   net::Ipv4Addr server_ip, Params p)
    : ev_(ev), stack_(stack), server_ip_(server_ip), p_(p), rng_(p.seed) {
  conns_.resize(p_.connections);
}

std::vector<std::uint8_t> KvClient::make_request() {
  const bool is_get = rng_.next_double() < p_.get_ratio;
  char keybuf[64];
  const auto keyn = static_cast<std::uint32_t>(
      rng_.next_below(p_.key_space));
  std::snprintf(keybuf, sizeof keybuf, "key-%010u", keyn);
  std::string key(keybuf);
  key.resize(p_.key_size, 'k');

  std::vector<std::uint8_t> req;
  const std::uint32_t vallen = is_get ? 0 : p_.value_size;
  const auto payload_len =
      static_cast<std::uint32_t>(7 + key.size() + vallen);
  req.reserve(4 + payload_len);
  put_u32(req, payload_len);
  req.push_back(is_get ? 0 : 1);
  put_u16(req, static_cast<std::uint16_t>(key.size()));
  put_u32(req, vallen);
  req.insert(req.end(), key.begin(), key.end());
  for (std::uint32_t i = 0; i < vallen; ++i) {
    req.push_back(static_cast<std::uint8_t>('v' + (i & 7)));
  }
  return req;
}

void KvClient::start() {
  tcp::StackCallbacks cbs;
  cbs.on_connected = [this](ConnId c, bool ok) {
    auto it = by_id_.find(c);
    if (it == by_id_.end()) return;
    conns_[it->second].up = ok;
    if (!ok) return;
    for (unsigned i = 0; i < p_.pipeline; ++i) issue(it->second);
  };
  cbs.on_data = [this](ConnId c) {
    auto it = by_id_.find(c);
    if (it != by_id_.end()) on_data(it->second);
  };
  cbs.on_sendable = [this](ConnId c) {
    auto it = by_id_.find(c);
    if (it != by_id_.end()) flush(it->second);
  };
  stack_.set_callbacks(std::move(cbs));

  for (std::size_t i = 0; i < conns_.size(); ++i) {
    ev_.schedule_in(sim::us(3) * i, [this, i] {
      conns_[i].id = stack_.connect(server_ip_, p_.port);
      by_id_[conns_[i].id] = i;
    });
  }
}

void KvClient::issue(std::size_t idx) {
  Conn& conn = conns_[idx];
  const auto req = make_request();
  conn.pending_tx.insert(conn.pending_tx.end(), req.begin(), req.end());
  conn.sent_at.push_back(ev_.now());
  flush(idx);
}

void KvClient::flush(std::size_t idx) {
  Conn& conn = conns_[idx];
  if (!conn.up || conn.pending_tx.empty()) return;
  const std::size_t n = stack_.send(
      conn.id, std::span(conn.pending_tx.data() + conn.pending_off,
                         conn.pending_tx.size() - conn.pending_off));
  conn.pending_off += n;
  if (conn.pending_off == conn.pending_tx.size()) {
    conn.pending_tx.clear();
    conn.pending_off = 0;
  }
}

void KvClient::on_data(std::size_t idx) {
  Conn& conn = conns_[idx];
  std::uint8_t buf[16 * 1024];
  std::size_t n;
  while ((n = stack_.recv(conn.id, buf)) > 0) {
    conn.reader.feed(std::span(buf, n));
  }
  std::uint32_t len = 0;
  while (conn.reader.skip_frame(len)) {
    ++completed_;
    if (!conn.sent_at.empty()) {
      latency_.add(sim::to_us(ev_.now() - conn.sent_at.front()));
      conn.sent_at.pop_front();
    }
    issue(idx);
  }
}

}  // namespace flextoe::app
