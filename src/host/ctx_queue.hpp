// Context queues (CTX-Qs, paper Fig 2): descriptor rings connecting
// libTOE, the data-path, and the control plane. Host<->NIC crossings use
// PCIe DMA + MMIO doorbells; intra-host queues use shared memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "tcp/stack_iface.hpp"
#include "telemetry/registry.hpp"

namespace flextoe::host {

enum class CtxDescType : std::uint8_t {
  // Host -> NIC (host control, paper §3.1.1).
  TxDoorbell,  // `a` = bytes appended to the TX payload buffer
  RxFreed,     // `a` = bytes consumed from the RX payload buffer
  Fin,         // application closed the connection
  Retransmit,  // control plane: go-back-N reset

  // NIC -> host (application notifications).
  RxNotify,  // `a` = bytes appended to the RX payload buffer
  TxFreed,   // `a` = TX bytes acknowledged (buffer space reclaimed)
  RxEof,     // peer FIN consumed

  // Control plane -> libTOE events (shared memory).
  AcceptEv,   // new connection on a listening port
  ConnectEv,  // `a` = 1 ok / 0 failed
  CloseEv,    // connection torn down
};

struct CtxDesc {
  CtxDescType type;
  tcp::ConnId conn = 0;
  std::uint32_t a = 0;
  std::uint64_t opaque = 0;
};

// A bounded descriptor ring with an on-demand drain callback. The
// transport delay (DMA/MMIO vs shared memory) is applied by the producer
// before push(); the queue itself is just the ring.
class CtxQueue {
 public:
  explicit CtxQueue(std::size_t capacity = 4096) : capacity_(capacity) {}

  bool push(const CtxDesc& d) {
    if (ring_.size() >= capacity_) {
      ++overflows_;
      if (telem_.on()) t_overflows_->inc();
      return false;
    }
    ring_.push_back(d);
    if (telem_.on()) {
      t_pushes_->inc();
      t_depth_->record(ring_.size());
    }
    return true;
  }

  bool pop(CtxDesc& out) {
    if (ring_.empty()) return false;
    out = ring_.front();
    ring_.pop_front();
    return true;
  }

  std::size_t depth() const { return ring_.size(); }
  bool empty() const { return ring_.empty(); }
  std::uint64_t overflows() const { return overflows_; }

  // Registers push/overflow counters and a ring-depth histogram under
  // `prefix` (e.g. "hostq/hc0").
  void bind_telemetry(telemetry::Registry& reg, const std::string& prefix) {
    if (!telem_.bind(reg)) return;
    t_pushes_ = reg.counter(prefix + "/pushes");
    t_overflows_ = reg.counter(prefix + "/overflows");
    t_depth_ = reg.histogram(prefix + "/depth");
  }

 private:
  std::size_t capacity_;
  std::deque<CtxDesc> ring_;
  std::uint64_t overflows_ = 0;

  telemetry::Binding telem_;
  telemetry::Counter* t_pushes_ = nullptr;
  telemetry::Counter* t_overflows_ = nullptr;
  telemetry::Histogram* t_depth_ = nullptr;
};

}  // namespace flextoe::host
