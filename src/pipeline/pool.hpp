// Recycling allocation for shared_ptr-managed pipeline objects.
//
// Every segment traversing the data-path used to cost one
// make_shared<SegCtx> (control block + ~300 B object) from the global
// heap. SharedPool keeps the combined allocate_shared block on a free
// list instead: acquire() still constructs a fresh object (so no stale
// state survives reuse), but the memory round-trips through the pool.
//
// Lifetime: each control block holds a copy of the recycling allocator,
// which holds a shared_ptr to the pool core. Blocks therefore return to
// a live core even when the pool's owner (e.g. the Datapath) has been
// destroyed while contexts are still referenced from pending event-queue
// callbacks — the core dies only after the last outstanding object does.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <utility>

#include "sim/affinity.hpp"
#include "sim/block_pool.hpp"

namespace flextoe::pipeline {

template <typename T>
class SharedPool {
 public:
  SharedPool() : core_(std::make_shared<Core>()) {}

  // A fresh T, constructed in a pooled block.
  //
  // Domain affinity (sim/affinity.hpp): the free list is unsynchronized
  // — acquire and the final release of every pooled object must happen
  // on the pool's owning domain thread. Pooled objects cross domains
  // only via the epoch mailbox hand-off; a pool migrating wholesale
  // re-binds with rebind_owner().
  template <typename... Args>
  std::shared_ptr<T> acquire(Args&&... args) {
    return std::allocate_shared<T>(Recycler<T>{core_},
                                   std::forward<Args>(args)...);
  }

  // Domain hand-off: re-bind the affinity check to the next thread that
  // uses the pool (both threads must be quiesced — an epoch boundary).
  void rebind_owner() { core_->affinity.rebind(); }

  // Blocks currently parked on the free list (introspection/tests).
  std::size_t free_blocks() const { return core_->blocks.parked(); }

 private:
  struct Core {
    // Combined control-block+object allocations, recycled by learned
    // size (sim::BlockRecycler — shared with net::PacketPool).
    sim::BlockRecycler blocks;
    sim::ThreadAffinity affinity;
  };

  template <typename U>
  struct Recycler {
    using value_type = U;

    std::shared_ptr<Core> core;

    explicit Recycler(std::shared_ptr<Core> c) : core(std::move(c)) {}
    template <typename V>
    explicit Recycler(const Recycler<V>& o) : core(o.core) {}

    U* allocate(std::size_t n) {
      core->affinity.check();
      if (void* p = core->blocks.take(sizeof(U), alignof(U), n)) {
        return static_cast<U*>(p);
      }
      return static_cast<U*>(::operator new(n * sizeof(U)));
    }

    void deallocate(U* p, std::size_t n) {
      core->affinity.check();
      if (core->blocks.give(p, sizeof(U), alignof(U), n)) return;
      ::operator delete(p);
    }

    template <typename V>
    bool operator==(const Recycler<V>& o) const {
      return core == o.core;
    }
    template <typename V>
    bool operator!=(const Recycler<V>& o) const {
      return core != o.core;
    }
  };

  std::shared_ptr<Core> core_;
};

}  // namespace flextoe::pipeline
