// net::PacketPool invariants: recycle reuse, payload-capacity
// retention, in-use accounting, packets outliving a destroyed pool, and
// a churn stress case. The whole battery must stay clean under the
// Sanitize preset — the pool's lifetime discipline (allocator/deleter
// copies keep the core alive) is exactly the kind of claim ASan/UBSan
// can falsify.
#include "net/packet_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <vector>

#include "sim/rng.hpp"
#include "telemetry/registry.hpp"

namespace flextoe::net {
namespace {

TEST(PacketPool, RecycleReusesSlotAndControlBlock) {
  PacketPool pool;
  Packet* first;
  {
    PacketPtr p = pool.acquire();
    first = p.get();
  }
  EXPECT_EQ(pool.free_slots(), 1u);
  EXPECT_EQ(pool.free_blocks(), 1u);

  PacketPtr q = pool.acquire();
  EXPECT_EQ(q.get(), first) << "released slot must be handed out again";
  EXPECT_EQ(pool.fresh(), 1u);
  EXPECT_EQ(pool.recycled(), 1u);
  EXPECT_EQ(pool.free_slots(), 0u);
  EXPECT_EQ(pool.free_blocks(), 0u);
}

TEST(PacketPool, ReleasedPacketIsReset) {
  PacketPool pool;
  {
    PacketPtr p = pool.acquire();
    p->vlan = VlanTag{42};
    p->ip.ttl = 7;
    p->tcp.flags = tcpflag::kSyn;
    p->tcp.mss = 1448;
    p->tcp.ts = TcpTsOpt{1, 2};
    p->payload.assign(1000, 0xAB);
  }
  PacketPtr q = pool.acquire();
  EXPECT_FALSE(q->vlan.has_value());
  EXPECT_EQ(q->ip.ttl, Ipv4Header{}.ttl);
  EXPECT_EQ(q->tcp.flags, 0);
  EXPECT_FALSE(q->tcp.mss.has_value());
  EXPECT_FALSE(q->tcp.ts.has_value());
  EXPECT_TRUE(q->payload.empty());
}

TEST(PacketPool, PayloadCapacityRetainedAcrossRecycle) {
  PacketPool pool;
  {
    PacketPtr p = pool.acquire();
    p->payload.assign(1448, 0x5A);
  }
  PacketPtr q = pool.acquire();
  EXPECT_TRUE(q->payload.empty());
  EXPECT_GE(q->payload.capacity(), 1448u)
      << "reset must clear, not shrink, the payload buffer";
  // An MSS-sized refill must not grow the buffer.
  const auto cap = q->payload.capacity();
  q->payload.resize(1448);
  EXPECT_EQ(q->payload.capacity(), cap);
}

TEST(PacketPool, InUseAccounting) {
  PacketPool pool;
  EXPECT_EQ(pool.in_use(), 0);
  std::vector<PacketPtr> held;
  for (int i = 0; i < 5; ++i) held.push_back(pool.acquire());
  EXPECT_EQ(pool.in_use(), 5);
  EXPECT_EQ(pool.fresh(), 5u);
  held.resize(2);
  EXPECT_EQ(pool.in_use(), 2);
  EXPECT_EQ(pool.free_slots(), 3u);
  held.clear();
  EXPECT_EQ(pool.in_use(), 0);
  EXPECT_EQ(pool.free_slots(), 5u);
}

TEST(PacketPool, SharedPtrCopiesCountOnce) {
  PacketPool pool;
  PacketPtr p = pool.acquire();
  PacketPtr alias = p;  // NOLINT: intentional copy
  EXPECT_EQ(pool.in_use(), 1);
  p.reset();
  EXPECT_EQ(pool.in_use(), 1) << "slot returns only with the last owner";
  alias.reset();
  EXPECT_EQ(pool.in_use(), 0);
}

TEST(PacketPool, PacketsOutliveDestroyedPool) {
  // The data-path pattern: a DMA completion or queued link event still
  // holds the packet after its producer (Datapath, stack, switch) died.
  PacketPtr survivor;
  {
    PacketPool pool;
    survivor = pool.make_tcp(MacAddr::from_u64(1), MacAddr::from_u64(2),
                             make_ip(10, 0, 0, 1), make_ip(10, 0, 0, 2), 80,
                             9999, 1, 2, tcpflag::kAck);
    survivor->payload.assign(64, 0x11);
  }  // pool destroyed; the core lives on through the deleter
  ASSERT_TRUE(survivor);
  EXPECT_EQ(survivor->tcp.sport, 80);
  const auto bytes = survivor->serialize();
  EXPECT_TRUE(Packet::parse(bytes).has_value());
  survivor.reset();  // releases into the orphaned core, which then dies
}

TEST(PacketPool, CloneCopiesAllFieldsIntoPooledSlot) {
  PacketPool pool;
  Packet src;
  src.eth.src = MacAddr::from_u64(0x02AA);
  src.eth.dst = MacAddr::from_u64(0x02BB);
  src.vlan = VlanTag{7};
  src.ip.src = make_ip(10, 0, 0, 1);
  src.ip.dst = make_ip(10, 0, 0, 2);
  src.tcp.sport = 1234;
  src.tcp.ts = TcpTsOpt{5, 6};
  src.payload.assign(99, 0x42);

  // Warm the pool so the clone lands in a recycled slot.
  { auto warm = pool.acquire(); warm->payload.reserve(256); }
  PacketPtr c = pool.clone(src);
  EXPECT_EQ(pool.recycled(), 1u);
  EXPECT_EQ(c->serialize(), src.serialize());
}

TEST(PacketPool, TelemetryGaugesTrackThePool) {
  telemetry::Registry reg;
  if (!telemetry::kCompiledIn) GTEST_SKIP();
  PacketPool pool;
  pool.bind_telemetry(reg, "pool/pkt");
  std::vector<PacketPtr> held;
  for (int i = 0; i < 3; ++i) held.push_back(pool.acquire());
  held.pop_back();
  held.push_back(pool.acquire());

  const auto snap = reg.snapshot();
  const auto* in_use = snap.gauge("pool/pkt/in_use");
  const auto* fresh = snap.counter("pool/pkt/fresh");
  const auto* recycled = snap.counter("pool/pkt/recycled");
  ASSERT_NE(in_use, nullptr);
  ASSERT_NE(fresh, nullptr);
  ASSERT_NE(recycled, nullptr);
  EXPECT_EQ(*in_use, 3);
  EXPECT_EQ(*fresh, 3u);
  EXPECT_EQ(*recycled, 1u);
}

TEST(PacketPool, LateReleaseAfterOwnerDeathSkipsTelemetry) {
  // ~PacketPool unbinds the registry from the core: a packet released
  // after both the pool and the registry are gone must not touch them.
  PacketPtr survivor;
  {
    telemetry::Registry reg;
    {
      PacketPool pool;
      pool.bind_telemetry(reg, "pool/pkt");
      survivor = pool.acquire();
    }
    // Pool gone, registry still alive: releasing here must be silent
    // too (the binding died with the pool).
  }
  survivor.reset();  // registry also gone — ASan proves no UAF
}

TEST(PacketPoolStress, ChurnStaysCleanAndBounded) {
  // Random acquire/clone/release churn with a bounded in-flight window:
  // steady-state must stop allocating (fresh plateaus at the high-water
  // mark) and every slot must be accounted for at the end. Run under
  // the Sanitize preset, this is the pool's memory-safety stress.
  PacketPool pool;
  sim::Rng rng(1234);
  std::vector<PacketPtr> window(64);
  std::uint64_t ops = 0;
  for (int round = 0; round < 20'000; ++round) {
    const auto idx = static_cast<std::size_t>(rng.next_below(64));
    switch (rng.next_below(3)) {
      case 0: {
        auto p = pool.acquire();
        p->payload.resize(64 + rng.next_below(1400));
        window[idx] = std::move(p);
        break;
      }
      case 1:
        if (window[idx]) {
          window[idx] = pool.clone(*window[idx]);
        }
        break;
      default:
        window[idx].reset();
        break;
    }
    ++ops;
  }
  EXPECT_GT(ops, 0u);
  // Fresh allocations are bounded by the window high-water mark (64
  // held + 1 transient clone source), far below the op count.
  EXPECT_LE(pool.fresh(), 65u);
  EXPECT_GT(pool.recycled(), pool.fresh());
  const auto held =
      static_cast<std::int64_t>(std::count_if(window.begin(), window.end(),
                                              [](const PacketPtr& p) {
                                                return p != nullptr;
                                              }));
  EXPECT_EQ(pool.in_use(), held);
  window.clear();
  EXPECT_EQ(pool.in_use(), 0);
  EXPECT_EQ(pool.free_slots(), pool.fresh());
}

}  // namespace
}  // namespace flextoe::net
