#!/usr/bin/env python3
"""Scale-out smoke check for the conn_scale bench scenario.

Two gates, both cheap enough for every CI run:

1. **Determinism across worker threads.** Runs the bench in quick mode
   at each requested --threads value and asserts the per-row
   `fingerprint` (a 48-bit FNV-1a digest of every island's segment /
   ack / drop / table / scheduler counters) is identical across runs.
   Any cross-thread nondeterminism in the sharded flow tables or the
   timing wheel shows up here as a fingerprint mismatch.

2. **bytes_per_conn regression gate.** Compares the fresh
   `bytes_per_conn` of every row against the checked-in baseline
   (bench/results/BENCH_fig13_conn_scalability.json) for the labels
   both sides share, and fails if the footprint grew by more than
   --tolerance (default 10%). bytes_per_conn is structural — flow
   table + scheduler bytes over live connections — so it transfers
   across machines and build types, unlike wall-clock metrics.

Usage:
    check_scale.py BASELINE BINARY [--threads-list 1,2]
                   [--tolerance 0.10] [extra bench args...]

Exit status: 0 = deterministic and within tolerance, 1 = failure.
A fresh bytes_per_conn more than `tolerance` *below* the baseline is
reported as a note (refresh the baseline to bank the win), not a
failure.
"""

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile


def run_bench(binary, out_path, threads, extra):
    cmd = [binary, "--quick", "--seed", "0", "--filter", "conn_scale",
           "--threads", str(threads), "--json", out_path] + extra
    proc = subprocess.run(
        cmd, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True
    )
    if proc.returncode != 0:
        sys.stderr.write(f"check_scale: {' '.join(cmd)} failed "
                         f"(exit {proc.returncode})\n{proc.stderr}")
        return None
    return json.loads(pathlib.Path(out_path).read_text(encoding="utf-8"))


def rows_by_label(doc):
    out = {}
    for series in doc.get("series", []):
        if series.get("name") != "flextoe_sut":
            continue
        for row in series.get("rows", []):
            out[row["label"]] = row["values"]
    return out


def main():
    ap = argparse.ArgumentParser(add_help=False)
    ap.add_argument("baseline")
    ap.add_argument("binary")
    ap.add_argument("--threads-list", default="1,2")
    ap.add_argument("--tolerance", type=float, default=0.10)
    args, extra = ap.parse_known_args()

    threads = [int(t) for t in args.threads_list.split(",") if t]
    runs = {}
    with tempfile.TemporaryDirectory() as tmp:
        for t in threads:
            doc = run_bench(args.binary, str(pathlib.Path(tmp) / f"t{t}.json"),
                            t, extra)
            if doc is None:
                return 1
            runs[t] = rows_by_label(doc)

    failed = False

    # Gate 1: fingerprints must agree across thread counts, row by row.
    ref_t = threads[0]
    for t in threads[1:]:
        for label, vals in runs[ref_t].items():
            got = runs[t].get(label, {}).get("fingerprint")
            want = vals["fingerprint"]
            if got != want:
                sys.stderr.write(
                    f"check_scale: NONDETERMINISTIC — row {label}: "
                    f"fingerprint {want:.0f} at --threads {ref_t} vs "
                    f"{got} at --threads {t}\n")
                failed = True
    if not failed:
        print(f"check_scale: fingerprints identical across "
              f"--threads {{{args.threads_list}}} "
              f"({len(runs[ref_t])} rows)")

    # Gate 2: bytes_per_conn vs the checked-in baseline.
    baseline = rows_by_label(
        json.loads(pathlib.Path(args.baseline).read_text(encoding="utf-8")))
    shared = sorted(set(baseline) & set(runs[ref_t]), key=int)
    if not shared:
        sys.stderr.write("check_scale: no shared row labels between "
                         "baseline and fresh run\n")
        return 1
    for label in shared:
        want = baseline[label]["bytes_per_conn"]
        got = runs[ref_t][label]["bytes_per_conn"]
        ratio = got / want if want else float("inf")
        if ratio > 1.0 + args.tolerance:
            sys.stderr.write(
                f"check_scale: REGRESSION — bytes_per_conn at {label} "
                f"conns: {got:.1f} vs baseline {want:.1f} "
                f"(+{(ratio - 1) * 100:.1f}% > "
                f"{args.tolerance * 100:.0f}%)\n"
                f"  If intentional, refresh the baseline (see "
                f"bench/results/README.md).\n")
            failed = True
        elif ratio < 1.0 - args.tolerance:
            print(f"check_scale: note — bytes_per_conn at {label} conns "
                  f"improved to {got:.1f} from {want:.1f}; refresh the "
                  f"baseline to bank the win")
        else:
            print(f"check_scale: OK — bytes_per_conn at {label} conns: "
                  f"{got:.1f} (baseline {want:.1f})")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
