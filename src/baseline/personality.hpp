// Baseline stack "personalities": per-stack cost and capability models
// calibrated from the paper's Table 1 (per-request CPU cycles) and §5
// behaviour descriptions.
//
//   Linux   — bulky in-kernel stack: high per-packet cost, coarse-grained
//             locking (poor multicore scaling), but SACK-quality recovery
//             (multi-interval reassembly, single-segment retransmit).
//   Chelsio — fixed-function TOE: tiny host TCP cycles but heavy driver +
//             kernel-mediated sockets; no receiver OOO buffering, so loss
//             collapses throughput (Fig 15).
//   TAS     — kernel-bypass fast path: low cost, per-core context queues
//             (linear scaling), single OOO interval + go-back-N.
//   Ideal   — zero-cost stack used for client load generators so that
//             the system under test is the bottleneck.
//
// Cycle calibration: Table 1 reports per-request totals; a memcached
// request-response involves ~2 data segments + ~2 ACKs and 2 socket ops,
// so per-segment costs are the table rows divided accordingly.
#pragma once

#include <cstdint>
#include <string>

#include "baseline/sw_tcp.hpp"

namespace flextoe::baseline {

struct Personality {
  std::string name;
  SwTcpCosts costs;
  tcp::OooMode ooo = tcp::OooMode::Single;
  bool go_back_n = true;
  // Fraction of stack work serialized on a global lock (CpuPool).
  double serial_fraction = 0.0;
  // Application cycles per request (identical binary, but icache/IPC
  // effects make app code slower under bulkier stacks — Table 1 row).
  std::uint32_t app_cycles_per_req = 890;
};

inline Personality linux_personality() {
  Personality p;
  p.name = "Linux";
  p.costs.driver_rx = 180;
  p.costs.driver_tx = 175;
  p.costs.stack_rx = 1065;
  p.costs.stack_tx = 1060;
  p.costs.sock_op = 830;
  p.costs.other_op = 1130;
  p.costs.copy_per_kb = 120;
  p.ooo = tcp::OooMode::Multi;
  p.go_back_n = false;  // SACK-quality recovery
  p.serial_fraction = 0.42;
  p.app_cycles_per_req = 1260;
  return p;
}

inline Personality chelsio_personality() {
  Personality p;
  p.name = "Chelsio";
  p.costs.driver_rx = 320;
  p.costs.driver_tx = 320;
  p.costs.stack_rx = 100;
  p.costs.stack_tx = 100;
  p.costs.sock_op = 870;
  p.costs.other_op = 1090;
  p.costs.copy_per_kb = 60;
  p.ooo = tcp::OooMode::None;  // no receiver OOO buffering
  p.go_back_n = true;
  p.serial_fraction = 0.38;  // kernel-mediated socket interface
  p.app_cycles_per_req = 1310;
  return p;
}

inline Personality tas_personality() {
  Personality p;
  p.name = "TAS";
  p.costs.driver_rx = 45;
  p.costs.driver_tx = 45;
  p.costs.stack_rx = 360;
  p.costs.stack_tx = 360;
  p.costs.sock_op = 265;
  p.costs.other_op = 30;
  p.costs.copy_per_kb = 60;
  p.ooo = tcp::OooMode::Single;
  p.go_back_n = true;
  p.serial_fraction = 0.0;  // per-core context queues
  p.app_cycles_per_req = 850;
  return p;
}

inline Personality ideal_personality() {
  Personality p;
  p.name = "Ideal";
  p.app_cycles_per_req = 0;
  return p;
}

inline SwTcpConfig make_stack_config(const Personality& p, net::MacAddr mac,
                                     net::Ipv4Addr ip) {
  SwTcpConfig cfg;
  cfg.mac = mac;
  cfg.ip = ip;
  cfg.ooo = p.ooo;
  cfg.go_back_n = p.go_back_n;
  cfg.costs = p.costs;
  return cfg;
}

}  // namespace flextoe::baseline
