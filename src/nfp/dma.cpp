#include "nfp/dma.hpp"

#include <utility>

namespace flextoe::nfp {

namespace {
// Layout stand-in for the completion lambda in DmaEngine::start — the
// largest hot closure in the simulator. If this stops fitting inline in
// an EventQueue callback, every DMA completion silently pays a heap
// allocation; fail the build instead.
struct CompletionClosureProbe {
  void* engine;
  std::shared_ptr<bool> alive;
  DmaEngine::DoneFn done;
  void operator()() {}
};
static_assert(
    sim::EventQueue::Callback::fits_inline<CompletionClosureProbe>(),
    "DMA completion closures must stay inline in EventQueue callbacks");
}  // namespace

void DmaEngine::bind_telemetry(telemetry::Registry& reg,
                               const std::string& prefix) {
  if (!telem_.bind(reg)) return;
  t_txn_ = reg.counter(prefix + "/transactions");
  t_bytes_ = reg.counter(prefix + "/bytes");
  t_mmio_ = reg.counter(prefix + "/mmio");
  t_outstanding_ = reg.histogram(prefix + "/outstanding");
  t_wait_depth_ = reg.histogram(prefix + "/wait_depth");
}

void DmaEngine::issue(std::uint32_t bytes, DoneFn done) {
  if (outstanding_ >= params_.max_outstanding) {
    waiting_.push_back(Pending{bytes, std::move(done)});
    if (telem_.on()) t_wait_depth_->record(waiting_.size());
    return;
  }
  start(Pending{bytes, std::move(done)});
}

void DmaEngine::start(Pending p) {
  ++outstanding_;
  ++transactions_;
  bytes_moved_ += p.bytes;
  if (telem_.on()) {
    t_txn_->inc();
    t_bytes_->inc(p.bytes);
    t_outstanding_->record(outstanding_);
  }

  const sim::TimePs begin = std::max(ev_.now(), bus_free_);
  bus_free_ = begin + xfer_time(p.bytes);
  const sim::TimePs completion = bus_free_ + params_.latency;

  ev_.schedule_at(completion, [this, alive = alive_,
                               done = std::move(p.done)]() mutable {
    if (!*alive) return;  // engine destroyed with this DMA in flight
    --outstanding_;
    if (done) done();
    if (!waiting_.empty() && outstanding_ < params_.max_outstanding) {
      Pending next = std::move(waiting_.front());
      waiting_.pop_front();
      start(std::move(next));
    }
  });
}

void DmaEngine::mmio(DoneFn done) {
  if (telem_.on()) t_mmio_->inc();
  ev_.schedule_in(params_.mmio_latency, std::move(done));
}

}  // namespace flextoe::nfp
