// Scenario engine implementation (see scenario.hpp): run_scenario()
// assembles the testbed a spec describes — stack under test, client
// nodes or the inverted incast topology, switch shaping/loss, the
// chosen app, and one generator per client node — then runs warmup and
// measurement and folds the results (throughput, latency percentiles,
// fairness, churn/overload counters, and the stack-under-test telemetry
// snapshot) into a ScenarioResult. The built-in catalog registered by
// register_builtin_scenarios() lives at the bottom.
#include "workload/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <thread>
#include <utility>

#include "app/kv.hpp"
#include "app/rpc_app.hpp"
#include "monitor/sketch.hpp"
#include "sim/domain.hpp"

namespace flextoe::workload {

namespace {

std::uint16_t app_port(AppKind app) {
  switch (app) {
    case AppKind::Kv:
      return 11211;
    case AppKind::Stream:
      return 9;
    case AppKind::RpcEcho:
      break;
  }
  return 7;
}

}  // namespace

ScenarioResult run_scenario(const ScenarioSpec& spec,
                            const RunOptions& opts) {
  const std::uint64_t seed = spec.seed + opts.seed_offset;
  const sim::TimePs warm =
      opts.warm_override ? opts.warm_override
                         : (opts.quick ? spec.quick_warm : spec.warm);
  const sim::TimePs span =
      opts.span_override ? opts.span_override
                         : (opts.quick ? spec.quick_span : spec.span);

  app::Testbed tb(seed);
  const unsigned cores = spec.grant_stack_cores
                             ? with_stack_cores(spec.stack, spec.server_cores)
                             : spec.server_cores;

  // The stack under test is created first (switch port 0). Normally it
  // hosts the app server and ideal client machines drive it; with
  // stack_hosts_clients the roles invert (the stack under test sends
  // toward an ideal server node), the incast/table4 shape.
  app::Testbed::Node* server_node = nullptr;
  std::vector<app::Testbed::Node*> gen_nodes;
  int server_port = 0;
  if (spec.stack_hosts_clients) {
    auto& gen = add_server(tb, spec.stack, cores, {}, spec.nic_gbps);
    gen_nodes.push_back(&gen);
    server_node = &tb.add_client_node();
    server_port = 1;
  } else {
    server_node = &add_server(tb, spec.stack, cores, {}, spec.nic_gbps);
    for (unsigned i = 0; i < std::max(1u, spec.client_nodes); ++i) {
      gen_nodes.push_back(&tb.add_client_node());
    }
    server_port = 0;
  }

  // Stack-under-test knobs (FlexTOE control-plane CC ablation).
  app::Testbed::Node* sut =
      spec.stack_hosts_clients ? gen_nodes.front() : server_node;
  if (sut->toe) sut->toe->control_plane().set_cc_enabled(spec.cc_enabled);

  // Named monitor tap on the SUT's stage graph (RunOptions::tap).
  // Attached before warmup; its telemetry registers now, so the
  // post-warmup clear() zeroes values but keeps the keys — the snapshot
  // covers the measurement window like every other metric.
  std::optional<monitor::SketchFlowMonitor> sketch_tap;
  if (opts.tap == "sketch") {
    if (core::Datapath* dp = sut->datapath()) {
      sketch_tap.emplace();
      sketch_tap->bind_telemetry(dp->telem());
      dp->graph().attach_tap(&*sketch_tap,
                             monitor::SketchFlowMonitor::kEdgeMask);
    }
  }

  if (spec.loss_rate > 0) tb.the_switch().set_drop_prob(spec.loss_rate);
  if (spec.incast_degree > 0) {
    auto& pp = tb.the_switch().port_params(server_port);
    pp.gbps = spec.nic_gbps / spec.incast_degree;
    pp.queue_bytes = 256 * 1024;
    pp.ecn_threshold = 64 * 1024;
  }

  // --- App server ---------------------------------------------------
  const std::uint32_t cycles = spec.server_app_cycles.value_or(
      spec.app == AppKind::Kv ? app_cycles(spec.stack) : 0);
  const std::uint16_t port = app_port(spec.app);
  std::optional<app::KvServer> kv_srv;
  std::optional<app::EchoServer> echo_srv;
  std::optional<app::ProducerServer> producer_srv;
  switch (spec.app) {
    case AppKind::Kv:
      kv_srv.emplace(tb.ev(), *server_node->stack,
                     app::KvServer::Params{.port = port, .app_cycles = cycles},
                     server_node->cpu.get());
      break;
    case AppKind::RpcEcho:
      echo_srv.emplace(tb.ev(), *server_node->stack,
                       app::EchoServer::Params{.port = port,
                                               .app_cycles = cycles,
                                               .response_size =
                                                   spec.response_size},
                       server_node->cpu.get());
      break;
    case AppKind::Stream:
      producer_srv.emplace(
          tb.ev(), *server_node->stack,
          app::ProducerServer::Params{.port = port,
                                      .frame_size = spec.stream_frame,
                                      .app_cycles = cycles},
          server_node->cpu.get());
      break;
  }

  // --- Generators / sinks (one per node; a stack holds one callback
  // set, so each generator gets its own machine) --------------------
  sim::Percentiles latency(1 << 18);
  std::vector<std::unique_ptr<TrafficGen>> gens;
  std::vector<std::unique_ptr<app::DrainClient>> drains;
  for (std::size_t i = 0; i < gen_nodes.size(); ++i) {
    if (spec.app == AppKind::Stream) {
      app::DrainClient::Params dp;
      dp.connections = spec.conns_per_node;
      dp.port = port;
      drains.push_back(std::make_unique<app::DrainClient>(
          tb.ev(), *gen_nodes[i]->stack, server_node->ip, dp));
      drains.back()->start();
      continue;
    }
    TrafficGenParams gp;
    gp.connections = spec.conns_per_node;
    gp.pipeline = spec.pipeline;
    gp.port = port;
    gp.seed = seed * 7919 + i + 1;
    gp.requests_per_conn = spec.requests_per_conn;
    gp.latency_sink = &latency;
    auto arrival = spec.arrival ? spec.arrival() : nullptr;
    auto sizes = spec.request_sizes
                     ? spec.request_sizes()
                     : (spec.app == AppKind::Kv ? fixed_size(32) : nullptr);
    TrafficGen::RequestFactory factory;
    if (spec.app == AppKind::Kv) factory = kv_request_factory(spec.kv);
    gens.push_back(std::make_unique<TrafficGen>(
        tb.ev(), *gen_nodes[i]->stack, server_node->ip, gp,
        std::move(arrival), std::move(sizes), std::move(factory)));
    gens.back()->start();
  }

  // --- Warmup, then measure -----------------------------------------
  tb.run_for(warm);
  for (auto& g : gens) g->clear_stats();
  for (auto& d : drains) d->clear_stats();
  // Telemetry covers the measurement window only, like every other
  // result field (values reset; registrations and bindings stay).
  if (core::Datapath* dp = sut->datapath()) dp->telem().clear();
  const std::uint64_t server_rx_base =
      echo_srv ? echo_srv->bytes_rx() : 0;

  tb.run_for(span);

  ScenarioResult r;
  const double span_sec = sim::to_sec(span);
  std::uint64_t client_rx = 0;
  std::vector<double> per_conn;
  for (auto& g : gens) {
    r.completed += g->completed();
    client_rx += g->bytes_rx();
    r.connected += g->connected();
    r.reconnects += g->reconnects();
    r.overload_drops += g->overload_drops();
    const auto pc = g->per_conn_completed();
    per_conn.insert(per_conn.end(), pc.begin(), pc.end());
  }
  for (auto& d : drains) {
    client_rx += d->bytes_rx();
    const auto pc = d->per_conn_bytes();
    per_conn.insert(per_conn.end(), pc.begin(), pc.end());
  }
  r.throughput_rps = span_sec > 0 ? double(r.completed) / span_sec : 0;
  r.client_rx_gbps = span_sec > 0 ? double(client_rx) * 8.0 / span_sec / 1e9 : 0;
  if (echo_srv) {
    r.server_rx_gbps = span_sec > 0
                           ? double(echo_srv->bytes_rx() - server_rx_base) *
                                 8.0 / span_sec / 1e9
                           : 0;
  }
  if (!latency.empty()) {
    r.p50_us = latency.percentile(50);
    r.p99_us = latency.percentile(99);
    r.p9999_us = latency.percentile(99.99);
  }
  if (!per_conn.empty()) r.jfi = sim::jains_fairness_index(per_conn);
  if (core::Datapath* dp = sut->datapath()) {
    r.telemetry = dp->telem().snapshot();
    // The graph holds a raw observer pointer; the monitor is a local.
    if (sketch_tap) dp->graph().detach_taps();
  }
  return r;
}

// ---------------------------------------------------------------------
// Registry.

ScenarioRegistry& ScenarioRegistry::instance() {
  static ScenarioRegistry r;
  return r;
}

void ScenarioRegistry::add(ScenarioSpec spec) {
  for (auto& s : specs_) {
    if (s.name == spec.name) {
      s = std::move(spec);
      return;
    }
  }
  specs_.push_back(std::move(spec));
}

const ScenarioSpec* ScenarioRegistry::find(const std::string& name) const {
  for (const auto& s : specs_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

// ---------------------------------------------------------------------
// Built-in catalog.

void register_builtin_scenarios() {
  static bool done = false;
  if (done) return;
  done = true;
  auto& reg = ScenarioRegistry::instance();

  {
    ScenarioSpec s;
    s.name = "rpc_echo_closed";
    s.description = "closed-loop 64B echo RPCs, 2x16 conns, FlexTOE";
    s.seed = 11;
    reg.add(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "rpc_poisson_open";
    s.description = "open-loop Poisson 64B RPCs (100k rps/node): latency under offered load";
    s.arrival = [] { return poisson_arrival(100'000.0); };
    s.seed = 13;
    reg.add(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "rpc_onoff_burst";
    s.description = "bursty ON-OFF source (400k rps bursts, ~1ms on/off), 128B RPCs";
    s.arrival = [] { return on_off_arrival(400'000.0, sim::ms(1), sim::ms(1)); };
    s.request_sizes = [] { return fixed_size(128); };
    s.seed = 17;
    reg.add(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "rpc_websearch";
    s.description = "open-loop Poisson with empirical web-search flow sizes (capped 256KB)";
    s.arrival = [] { return poisson_arrival(20'000.0); };
    s.request_sizes = [] {
      return empirical_size(websearch_flow_cdf(), 256 * 1024);
    };
    s.conns_per_node = 8;
    s.seed = 19;
    reg.add(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "rpc_datamining";
    s.description = "closed-loop RPCs with empirical data-mining flow sizes (capped 256KB)";
    s.request_sizes = [] {
      return empirical_size(datamining_flow_cdf(), 256 * 1024);
    };
    s.conns_per_node = 8;
    s.pipeline = 1;
    s.seed = 23;
    reg.add(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "rpc_lognormal";
    s.description = "closed-loop RPCs, lognormal sizes (median 4KB, sigma 1)";
    s.request_sizes = [] {
      return lognormal_size(std::log(4096.0), 1.0, 64, 1024 * 1024);
    };
    s.conns_per_node = 8;
    s.pipeline = 2;
    s.seed = 29;
    reg.add(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "kv_memtier_closed";
    s.description = "memcached GET/SET 90/10, 3 client nodes x 16 conns (fig08 shape)";
    s.app = AppKind::Kv;
    s.client_nodes = 3;
    s.seed = 31;
    reg.add(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "kv_uniform_vals";
    s.description = "memcached 50/50 GET/SET with uniform 64..1024B values";
    s.app = AppKind::Kv;
    s.kv.get_ratio = 0.5;
    s.request_sizes = [] { return uniform_size(64, 1024); };
    s.seed = 37;
    reg.add(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "kv_pareto_vals";
    s.description = "memcached 50/50 with bounded-Pareto values (alpha 1.2, 64B..64KB)";
    s.app = AppKind::Kv;
    s.kv.get_ratio = 0.5;
    s.request_sizes = [] {
      return bounded_pareto_size(1.2, 64, 64 * 1024);
    };
    s.seed = 41;
    reg.add(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "incast_fanin";
    s.description = "incast fan-in: FlexTOE sender, 64KB RPCs into a 1/4-rate shaped port";
    s.stack_hosts_clients = true;
    s.server_cores = 8;
    s.conns_per_node = 64;
    s.pipeline = 1;
    s.request_sizes = [] { return fixed_size(64 * 1024); };
    s.incast_degree = 4;
    s.warm = sim::ms(60);
    s.span = sim::ms(120);
    s.quick_warm = sim::ms(5);
    s.quick_span = sim::ms(10);
    s.seed = 43;
    reg.add(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "stream_tx_drain";
    s.description = "server streams 4KB frames to 2x8 drain connections (TX path)";
    s.app = AppKind::Stream;
    s.stream_frame = 4096;
    s.conns_per_node = 8;
    s.seed = 47;
    reg.add(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "rpc_conn_churn";
    s.description = "closed-loop echo with connection churn (reconnect every 50 requests)";
    s.requests_per_conn = 50;
    s.pipeline = 1;
    s.seed = 53;
    reg.add(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "rpc_lossy";
    s.description = "closed-loop small RPCs under 1% uniform switch loss";
    s.conns_per_node = 32;
    s.pipeline = 8;
    s.loss_rate = 0.01;
    s.seed = 59;
    reg.add(std::move(s));
  }
}

std::vector<ScenarioResult> run_scenario_batch(const ScenarioSpec& spec,
                                               const RunOptions& opts,
                                               int runs, int threads) {
  std::vector<ScenarioResult> results(
      static_cast<std::size_t>(std::max(runs, 0)));
  if (runs <= 0) return results;

  unsigned want = threads > 0 ? static_cast<unsigned>(threads)
                              : sim::default_sim_threads();
  const unsigned workers = static_cast<unsigned>(std::min<std::uint64_t>(
      std::max(1u, want), static_cast<std::uint64_t>(runs)));

  // Fixed run -> worker mapping (i % workers), each run a complete
  // single-threaded simulation with its own seed: the results vector is
  // deterministic and identical to the sequential loop at any worker
  // count.
  auto body = [&](unsigned w) {
    for (int i = static_cast<int>(w); i < runs;
         i += static_cast<int>(workers)) {
      RunOptions ro = opts;
      ro.seed_offset = opts.seed_offset + static_cast<std::uint64_t>(i);
      results[static_cast<std::size_t>(i)] = run_scenario(spec, ro);
    }
  };

  if (workers == 1) {
    body(0);
    return results;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (unsigned w = 1; w < workers; ++w) pool.emplace_back(body, w);
  body(0);
  for (auto& t : pool) t.join();
  return results;
}

}  // namespace flextoe::workload
