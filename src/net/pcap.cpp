#include "net/pcap.hpp"

#include <array>

namespace flextoe::net {

namespace {

void put_u32le(std::FILE* f, std::uint32_t v) {
  std::array<std::uint8_t, 4> b{
      static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8),
      static_cast<std::uint8_t>(v >> 16), static_cast<std::uint8_t>(v >> 24)};
  std::fwrite(b.data(), 1, 4, f);
}

void put_u16le(std::FILE* f, std::uint16_t v) {
  std::array<std::uint8_t, 2> b{static_cast<std::uint8_t>(v),
                                static_cast<std::uint8_t>(v >> 8)};
  std::fwrite(b.data(), 1, 2, f);
}

}  // namespace

PcapWriter::~PcapWriter() { close(); }

bool PcapWriter::open(const std::string& path) {
  close();
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) return false;
  put_u32le(file_, 0xA1B2C3D4);  // magic (microsecond resolution)
  put_u16le(file_, 2);           // version major
  put_u16le(file_, 4);           // version minor
  put_u32le(file_, 0);           // thiszone
  put_u32le(file_, 0);           // sigfigs
  put_u32le(file_, 65535);       // snaplen
  put_u32le(file_, 1);           // LINKTYPE_ETHERNET
  return true;
}

void PcapWriter::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

void PcapWriter::write(const Packet& pkt, sim::TimePs ts) {
  if (file_ == nullptr) return;
  const auto frame = pkt.serialize();
  const std::uint64_t usecs = ts / sim::kPsPerUs;
  put_u32le(file_, static_cast<std::uint32_t>(usecs / 1'000'000));
  put_u32le(file_, static_cast<std::uint32_t>(usecs % 1'000'000));
  put_u32le(file_, static_cast<std::uint32_t>(frame.size()));
  put_u32le(file_, static_cast<std::uint32_t>(frame.size()));
  std::fwrite(frame.data(), 1, frame.size(), file_);
  ++packets_;
}

}  // namespace flextoe::net
