// Hierarchical timing-wheel flow scheduler: the million-connection
// implementation of sched::TimerService (paper §3.4's SCH module, at
// the ROADMAP's north-star scale).
//
// Where sched::Carousel keeps per-flow state in an unordered_map and a
// single-level wheel whose horizon clamps far deadlines, this engine
// keeps flows in a flat vector indexed by FlowId (dense connection
// ids: no hashing, no node allocation) and arms pacing deadlines into
// cascading wheel levels — level k spans slots_per_level^k level-0
// slots, so the horizon grows geometrically while arm and cancel stay
// O(1):
//
//   arm     — index math + intrusive doubly-linked slot push (the
//             per-flow next/prev fields ARE the queue: no allocation)
//   cancel  — unlink from the resident slot in O(1) (the Carousel can
//             only mark dead and wait for the slot to expire)
//   tick    — one event per slot granularity while the wheel is
//             non-empty; a level-k cascade runs every S^k ticks and
//             re-files its slot by remaining delta
//
// Trigger semantics (one trigger per service interval, ready-queue
// round-robin, park until kick, deadline quantization to the slot
// granularity, lazy dead-skip in the ready queue) replicate Carousel
// exactly; tests/sched/timing_wheel_test.cc differential-tests the two
// engines' (time, flow) trigger sequences. The one deliberate
// divergence: cancelling a wheel-resident flow frees it immediately,
// so a later revival re-arms cleanly instead of inheriting the dead
// incarnation's residual slot residency.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sched/timer_service.hpp"
#include "sim/domain.hpp"
#include "sim/time.hpp"
#include "telemetry/registry.hpp"

namespace flextoe::sched {

struct TimingWheelParams {
  sim::TimePs slot_granularity = sim::us(1);
  std::uint32_t slots_per_level = 256;  // power of two
  std::uint32_t levels = 4;  // horizon = g * S^levels (~4.6 ks at defaults)
  // Service interval of the SCH module (one TX trigger per interval).
  sim::TimePs service_interval = sim::ns(45);
  // Rates at or above this (bytes/s) bypass the rate limiter.
  std::uint64_t uncongested_rate = 100'000'000'000ull / 8;
};

class TimingWheel : public TimerService {
 public:
  using FlowId = TimerService::FlowId;
  using TxTrigger = TimerService::TxTrigger;

  TimingWheel(sim::Domain& ev, TimingWheelParams params = {});
  ~TimingWheel() override { *alive_ = false; }
  TimingWheel(const TimingWheel&) = delete;
  TimingWheel& operator=(const TimingWheel&) = delete;

  void set_trigger(TxTrigger t) override { trigger_ = std::move(t); }
  void set_rate(FlowId flow, std::uint64_t bytes_per_sec) override;
  void update_avail(FlowId flow, std::uint64_t avail) override;
  void add_avail(FlowId flow, std::uint64_t delta) override;
  void kick(FlowId flow) override;
  void remove_flow(FlowId flow) override;

  std::uint64_t triggers() const override { return trigger_count_; }
  std::size_t flows_tracked() const override { return tracked_; }
  std::size_t footprint_bytes() const override;
  const char* impl_name() const override { return "wheel"; }
  void bind_telemetry(telemetry::Registry& reg,
                      const std::string& prefix) override;

  // Introspection (tests).
  std::size_t wheel_resident() const { return wheel_count_; }
  std::uint64_t cascades() const { return cascade_count_; }
  const TimingWheelParams& params() const { return params_; }

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFF;

  struct Flow {
    std::uint64_t avail = 0;
    sim::TimePs ps_per_byte = 0;  // 0 = uncongested (round-robin)
    std::uint64_t target = 0;     // absolute due tick; wheel-resident only
    std::uint32_t next = kNil;    // intrusive slot-list links
    std::uint32_t prev = kNil;
    std::uint32_t slot = kNil;    // level * slots_per_level + slot index
    bool touched = false;         // ever referenced (flows_tracked)
    bool in_wheel = false;
    bool queued = false;  // in ready queue or wheel
    bool parked = false;  // blocked (window closed); needs a kick
    bool dead = false;
  };

  struct SlotList {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
  };

  Flow& touch(FlowId flow);
  void enqueue_ready(FlowId flow);
  void enqueue_wheel(FlowId flow, sim::TimePs deadline);
  // Files `flow` `off` level-0 granules ahead of the current tick.
  void file(FlowId flow, std::uint64_t off);
  void unlink(FlowId flow);
  void expire_or_cascade(std::uint32_t level, std::uint32_t slot);
  void wheel_tick();
  void pump();
  void service_one();
  void trace_queued(FlowId flow, std::uint64_t arg);

  sim::Domain& ev_;
  TimingWheelParams params_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  TxTrigger trigger_;

  std::vector<Flow> flows_;     // indexed by FlowId
  std::size_t tracked_ = 0;     // flows ever touched
  std::deque<FlowId> ready_;
  std::vector<SlotList> slots_;      // levels * slots_per_level
  std::vector<std::uint64_t> stride_;  // stride_[k] = S^k (level-0 granules)
  std::uint64_t ticks_ = 0;          // level-0 ticks executed since anchor
  sim::TimePs wheel_time_ = 0;       // time of the last tick (anchor grid)
  std::size_t wheel_count_ = 0;      // wheel-resident flows
  std::uint64_t cascade_count_ = 0;
  bool wheel_tick_scheduled_ = false;
  bool service_scheduled_ = false;
  sim::TimePs next_service_ = 0;
  std::uint64_t trigger_count_ = 0;

  telemetry::Binding telem_;
  telemetry::Counter* t_triggers_ = nullptr;
  telemetry::Counter* t_tx_bytes_ = nullptr;
  telemetry::Counter* t_parked_ = nullptr;
  telemetry::Counter* t_cascades_ = nullptr;
  telemetry::Histogram* t_ready_depth_ = nullptr;
  telemetry::Histogram* t_wheel_flows_ = nullptr;
  telemetry::Gauge* t_flows_ = nullptr;

  // Trace ids (trace/trace.hpp), resolved on first traced event; the
  // queued-residency span pairs by trace_base_ | flow (at most one
  // residency per flow at a time, as in Carousel).
  std::uint64_t trace_base_ = 0;
  std::uint16_t trace_track_ = 0;  // "sched/wheel"
  std::uint16_t trace_name_queued_ = 0;
  std::uint16_t trace_name_trigger_ = 0;
  std::uint16_t trace_name_tick_ = 0;
};

}  // namespace flextoe::sched
