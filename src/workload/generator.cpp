// TrafficGen implementation (see generator.hpp): connection-pool
// lifecycle (staggered connects, churn recycling), request framing and
// flush-on-writable transmission, response reassembly through
// app::FrameReader, latency sampling at completion, and the open-loop
// back-pressure bound that converts excess offered load into counted
// overload drops instead of unbounded queues.
#include "workload/generator.hpp"

#include <cstdio>
#include <string>
#include <utility>

namespace flextoe::workload {

using tcp::ConnId;

TrafficGen::TrafficGen(sim::Domain& ev, tcp::StackIface& stack,
                       net::Ipv4Addr server_ip, TrafficGenParams p,
                       std::unique_ptr<ArrivalModel> arrival,
                       std::unique_ptr<SizeModel> sizes,
                       RequestFactory make_request)
    : ev_(ev),
      stack_(stack),
      server_ip_(server_ip),
      p_(p),
      arrival_(arrival ? std::move(arrival) : closed_loop_arrival()),
      sizes_(sizes ? std::move(sizes) : fixed_size(64)),
      make_request_(std::move(make_request)),
      closed_loop_(arrival_->closed_loop()),
      rng_(p.seed) {
  conns_.resize(p_.connections);
}

void TrafficGen::start() {
  tcp::StackCallbacks cbs;
  cbs.on_connected = [this](ConnId c, bool ok) {
    auto it = by_id_.find(c);
    if (it == by_id_.end()) return;
    Conn& conn = conns_[it->second];
    conn.up = ok;
    if (!ok) return;
    ++connected_;
    if (closed_loop_) {
      for (unsigned i = 0; i < p_.pipeline; ++i) issue(it->second);
    } else {
      // Drain arrivals that queued while the connection was coming up.
      flush(it->second);
    }
  };
  cbs.on_data = [this](ConnId c) {
    auto it = by_id_.find(c);
    if (it != by_id_.end()) on_data(it->second);
  };
  cbs.on_sendable = [this](ConnId c) {
    auto it = by_id_.find(c);
    if (it != by_id_.end()) flush(it->second);
  };
  cbs.on_close = [this](ConnId c) {
    auto it = by_id_.find(c);
    if (it != by_id_.end()) conns_[it->second].up = false;
  };
  stack_.set_callbacks(std::move(cbs));

  for (std::size_t i = 0; i < conns_.size(); ++i) {
    ev_.schedule_in(p_.connect_stagger * i, [this, i] { open_conn(i); });
  }
  if (!closed_loop_) schedule_next_arrival();
}

void TrafficGen::open_conn(std::size_t idx) {
  if (stopped_) return;
  Conn& conn = conns_[idx];
  conn.id = stack_.connect(server_ip_, p_.port);
  by_id_[conn.id] = idx;
}

void TrafficGen::recycle(std::size_t idx) {
  Conn& conn = conns_[idx];
  if (conn.id != tcp::kInvalidConn) {
    by_id_.erase(conn.id);
    stack_.close(conn.id);
  }
  conn.id = tcp::kInvalidConn;
  conn.up = false;
  conn.reader = {};
  conn.pending_tx.clear();
  conn.pending_off = 0;
  conn.sent_at.clear();
  conn.life_completed = 0;
  ++reconnects_;
  if (stopped_) return;
  ev_.schedule_in(p_.reconnect_delay, [this, idx] {
    if (!stopped_) open_conn(idx);
  });
}

void TrafficGen::schedule_next_arrival() {
  if (stopped_) return;
  ev_.schedule_in(arrival_->next_gap(rng_), [this] {
    if (stopped_) return;
    if (!conns_.empty()) {
      issue(arrival_rr_++ % conns_.size());
    }
    schedule_next_arrival();
  });
}

void TrafficGen::issue(std::size_t idx) {
  if (stopped_) return;
  Conn& conn = conns_[idx];
  if (!closed_loop_ && conn.sent_at.size() >= p_.max_outstanding) {
    ++overload_drops_;
    return;
  }
  const std::uint32_t size = sizes_->sample(rng_);
  if (make_request_) {
    const auto req = make_request_(rng_, size);
    conn.pending_tx.insert(conn.pending_tx.end(), req.begin(), req.end());
  } else {
    // Default framing appends in place: pending_tx's capacity is reused
    // across requests, so steady-state issue() allocates nothing.
    app::append_frame(conn.pending_tx, size);
  }
  conn.sent_at.push_back(ev_.now());
  ++issued_;
  flush(idx);
}

void TrafficGen::flush(std::size_t idx) {
  Conn& conn = conns_[idx];
  if (!conn.up || conn.pending_tx.empty()) return;
  const std::size_t n = stack_.send(
      conn.id, std::span(conn.pending_tx.data() + conn.pending_off,
                         conn.pending_tx.size() - conn.pending_off));
  conn.pending_off += n;
  if (conn.pending_off == conn.pending_tx.size()) {
    conn.pending_tx.clear();
    conn.pending_off = 0;
  }
}

void TrafficGen::on_data(std::size_t idx) {
  Conn& conn = conns_[idx];
  std::uint8_t buf[16 * 1024];
  std::size_t n;
  while ((n = stack_.recv(conn.id, buf)) > 0) {
    bytes_rx_ += n;
    conn.reader.feed(std::span(buf, n));
  }
  std::uint32_t len = 0;
  while (conn.reader.skip_frame(len)) {
    ++completed_;
    ++conn.completed;
    ++conn.life_completed;
    if (!conn.sent_at.empty()) {
      latency().add(sim::to_us(ev_.now() - conn.sent_at.front()));
      conn.sent_at.pop_front();
    }
    if (p_.requests_per_conn > 0 &&
        conn.life_completed >= p_.requests_per_conn) {
      // Churn: retire this connection; a fresh one replaces it shortly.
      recycle(idx);
      return;
    }
    if (closed_loop_) issue(idx);
  }
}

std::vector<double> TrafficGen::per_conn_completed() const {
  std::vector<double> v;
  v.reserve(conns_.size());
  for (const auto& c : conns_) v.push_back(static_cast<double>(c.completed));
  return v;
}

void TrafficGen::clear_stats() {
  completed_ = 0;
  issued_ = 0;
  bytes_rx_ = 0;
  overload_drops_ = 0;
  reconnects_ = 0;
  latency().clear();
  for (auto& c : conns_) c.completed = 0;
}

TrafficGen::RequestFactory kv_request_factory(KvMix mix) {
  return [mix](sim::Rng& rng, std::uint32_t size_hint) {
    const bool is_get = rng.next_double() < mix.get_ratio;
    char keybuf[64];
    const auto keyn =
        static_cast<std::uint32_t>(rng.next_below(mix.key_space));
    std::snprintf(keybuf, sizeof keybuf, "key-%010u", keyn);
    std::string key(keybuf);
    key.resize(mix.key_size, 'k');

    const std::uint32_t vallen = is_get ? 0 : size_hint;
    const auto payload_len =
        static_cast<std::uint32_t>(7 + key.size() + vallen);
    std::vector<std::uint8_t> req;
    req.reserve(4 + payload_len);
    auto put_u32 = [&req](std::uint32_t x) {
      req.push_back(static_cast<std::uint8_t>(x));
      req.push_back(static_cast<std::uint8_t>(x >> 8));
      req.push_back(static_cast<std::uint8_t>(x >> 16));
      req.push_back(static_cast<std::uint8_t>(x >> 24));
    };
    put_u32(payload_len);
    req.push_back(is_get ? 0 : 1);  // op
    req.push_back(static_cast<std::uint8_t>(key.size()));
    req.push_back(static_cast<std::uint8_t>(key.size() >> 8));
    put_u32(vallen);
    req.insert(req.end(), key.begin(), key.end());
    for (std::uint32_t i = 0; i < vallen; ++i) {
      req.push_back(static_cast<std::uint8_t>('v' + (i & 7)));
    }
    return req;
  };
}

}  // namespace flextoe::workload
