// Determinism battery for the parallel domain scheduler
// (sim/domain.hpp): single-domain equivalence with the raw EventQueue,
// thread-count independence of multi-island runs, mailbox FIFO
// (including the overflow spill path), the out-of-scheduler post
// fall-through, the parallel scenario batch, and the pool
// domain-affinity contract.
#include "sim/domain.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "net/packet_pool.hpp"
#include "nfp/fpc.hpp"
#include "sim/mailbox.hpp"
#include "workload/scenario.hpp"

namespace flextoe::sim {
namespace {

// One executed event: (domain, time, tag). The trace of a run is the
// determinism fingerprint the battery compares.
struct TraceEvent {
  std::uint32_t domain;
  TimePs t;
  int tag;
  bool operator==(const TraceEvent&) const = default;
};

// ---------------------------------------------------------------------
// (a) A single domain is the EventQueue, event for event.

TEST(Domain, SingleDomainMatchesRawEventQueueTrace) {
  auto drive = [](EventQueue& q, std::vector<TraceEvent>* trace) {
    // Self-rescheduling chains with FIFO ties, like the simulator's
    // stage callbacks.
    for (int c = 0; c < 4; ++c) {
      struct Chain {
        EventQueue* q;
        std::vector<TraceEvent>* trace;
        int tag;
        int left = 25;
        void fire() {
          trace->push_back({0, q->now(), tag});
          if (--left == 0) return;
          q->schedule_in(ns(100) + static_cast<TimePs>(tag),
                         [c = *this]() mutable { c.fire(); });
        }
      };
      q.schedule_at(ns(10), [c = Chain{&q, trace, c}]() mutable { c.fire(); });
    }
    q.run_all();
  };

  std::vector<TraceEvent> raw, dom, sched1;
  {
    EventQueue q;
    drive(q, &raw);
  }
  {
    Domain d;  // stand-alone domain: plain queue semantics
    drive(d, &dom);
  }
  {
    // Under a 1-domain scheduler the epoch machinery is live but the
    // trace must still be identical.
    DomainScheduler s(1, 42);
    drive(s.domain(0), &sched1);
  }
  EXPECT_EQ(raw, dom);
  EXPECT_EQ(raw, sched1);
  EXPECT_EQ(raw.size(), 100u);
}

// ---------------------------------------------------------------------
// (b) Multi-island runs are identical at any thread count and across
// repeats: islands of FPC pipelines cross-posting into an egress
// domain, the parallel_speedup bench in miniature.

std::vector<TraceEvent> run_islands(unsigned threads) {
  DomainScheduler::Params sp;
  sp.threads = threads;
  sp.lookahead = us(5);
  DomainScheduler sched(5, 7, sp);
  Domain& egress = sched.domain(0);

  std::vector<TraceEvent> arrivals;  // egress-domain-only writes
  std::vector<std::unique_ptr<nfp::Fpc>> fpcs;
  struct Seg {
    nfp::Fpc* fpc;
    Domain* dom;
    Domain* egress;
    std::vector<TraceEvent>* arrivals;
    TimePs lookahead;
    int left;
    void fire() {
      if (left-- == 0) return;
      nfp::Work w;
      w.compute_cycles =
          50 + static_cast<std::uint32_t>(dom->rng().next_u64() % 16);
      w.mem_cycles = 10;
      w.done = [s = *this]() mutable {
        const TimePs t = s.dom->now() + s.lookahead;
        auto* out = s.arrivals;
        const std::uint32_t id = s.dom->id();
        s.dom->post(*s.egress, t, [out, id, t] {
          out->push_back({id, t, 0});
        });
        s.fire();
      };
      fpc->submit(std::move(w));
    }
  };
  nfp::FpcParams fp;
  fp.queue_capacity = 64;
  for (std::size_t i = 1; i < sched.size(); ++i) {
    Domain& d = sched.domain(i);
    fpcs.push_back(std::make_unique<nfp::Fpc>(d, fp, "island"));
    Seg seg{fpcs.back().get(), &d, &egress, &arrivals, sp.lookahead, 40};
    seg.fire();
  }
  sched.run_all();

  // Fold scheduler-level invariants into the trace so they are
  // compared too.
  arrivals.push_back({0, egress.now(), static_cast<int>(sched.executed())});
  return arrivals;
}

TEST(DomainScheduler, TraceIdenticalAcrossThreadCounts) {
  const std::vector<TraceEvent> t1 = run_islands(1);
  ASSERT_GT(t1.size(), 160u);  // 4 islands x 40 segments + sentinel
  EXPECT_EQ(t1, run_islands(2));
  EXPECT_EQ(t1, run_islands(4));
  // Repeat at the same thread count: no run-to-run wobble either.
  EXPECT_EQ(run_islands(4), run_islands(4));
}

// ---------------------------------------------------------------------
// (c) Mailbox FIFO, including the overflow spill path.

TEST(Mailbox, PreservesFifoThroughOverflowSpill) {
  Mailbox mb(8);  // ring capacity 8; pushes 9.. spill to overflow
  std::vector<int> order;
  for (int i = 0; i < 30; ++i) {
    mb.push(static_cast<TimePs>(1000), [&order, i] { order.push_back(i); });
  }
  EXPECT_GT(mb.spills(), 0u);
  mb.drain([&](TimePs t, EventQueue::Callback cb) {
    EXPECT_EQ(t, 1000u);
    cb();
  });
  ASSERT_EQ(order.size(), 30u);
  for (int i = 0; i < 30; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
  EXPECT_TRUE(mb.empty());

  // Drained mailbox is reusable and back on the fast (ring) path.
  order.clear();
  mb.push(static_cast<TimePs>(2000), [&order] { order.push_back(99); });
  mb.drain([&](TimePs, EventQueue::Callback cb) { cb(); });
  EXPECT_EQ(order, (std::vector<int>{99}));
}

TEST(DomainScheduler, DrainIsPerSenderFifoInSenderIdOrder) {
  // Two senders each post three same-time events into domain 0 during
  // one epoch window; the drain must schedule sender 1's posts (in
  // order) before sender 2's (in order).
  DomainScheduler::Params sp;
  sp.lookahead = us(1);
  DomainScheduler sched(3, 1, sp);
  std::vector<std::pair<std::uint32_t, int>> order;
  for (std::uint32_t s : {1u, 2u}) {
    Domain& d = sched.domain(s);
    d.schedule_at(ns(10), [&sched, &order, &d, s] {
      for (int i = 0; i < 3; ++i) {
        d.post(sched.domain(0), d.now() + us(1),
               [&order, s, i] { order.emplace_back(s, i); });
      }
    });
  }
  sched.run_all();
  const std::vector<std::pair<std::uint32_t, int>> want{
      {1, 0}, {1, 1}, {1, 2}, {2, 0}, {2, 1}, {2, 2}};
  EXPECT_EQ(order, want);
}

// ---------------------------------------------------------------------
// (d) post() outside a scheduler run falls through to schedule_at.

TEST(Domain, PostOutsideSchedulerIsPlainSchedule) {
  Domain a(Domain::Params{0, 1});
  Domain b(Domain::Params{1, 2});
  int fired = 0;
  a.post(b, ns(5), [&] { ++fired; });  // no scheduler: direct schedule
  a.post(a, ns(5), [&] { ++fired; });  // self-post: always direct
  EXPECT_EQ(b.pending(), 1u);
  a.run_all();
  b.run_all();
  EXPECT_EQ(fired, 2);
}

// ---------------------------------------------------------------------
// (e) Parallel scenario batch == sequential scenario loop.

TEST(ScenarioBatch, ParallelBatchMatchesSequentialFieldForField) {
  workload::register_builtin_scenarios();
  const workload::ScenarioSpec* spec =
      workload::ScenarioRegistry::instance().find("rpc_echo_closed");
  ASSERT_NE(spec, nullptr);

  workload::RunOptions ro;
  ro.quick = true;
  ro.seed_offset = 3;
  ro.warm_override = us(200);
  ro.span_override = us(500);

  std::vector<workload::ScenarioResult> seq;
  for (int i = 0; i < 4; ++i) {
    workload::RunOptions one = ro;
    one.seed_offset = ro.seed_offset + static_cast<std::uint64_t>(i);
    seq.push_back(workload::run_scenario(*spec, one));
  }
  const auto par = workload::run_scenario_batch(*spec, ro, 4, 4);

  ASSERT_EQ(par.size(), seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(par[i].completed, seq[i].completed) << "run " << i;
    EXPECT_EQ(par[i].throughput_rps, seq[i].throughput_rps) << "run " << i;
    EXPECT_EQ(par[i].server_rx_gbps, seq[i].server_rx_gbps) << "run " << i;
    EXPECT_EQ(par[i].client_rx_gbps, seq[i].client_rx_gbps) << "run " << i;
    EXPECT_EQ(par[i].p50_us, seq[i].p50_us) << "run " << i;
    EXPECT_EQ(par[i].p99_us, seq[i].p99_us) << "run " << i;
    EXPECT_EQ(par[i].jfi, seq[i].jfi) << "run " << i;
    EXPECT_EQ(par[i].connected, seq[i].connected) << "run " << i;
  }
}

// ---------------------------------------------------------------------
// (f) Domain-affinity contract for pooled packets (debug builds).

#if FLEXTOE_AFFINITY_CHECKS

// Death tests fork; TSan's runtime does not survive that, so the
// violation check runs in Debug/Sanitize builds only.
#if !defined(__SANITIZE_THREAD__)
using DomainAffinityDeathTest = ::testing::Test;

TEST(DomainAffinityDeathTest, PacketPoolAcquireOffOwnerThreadAsserts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  net::PacketPool pool;
  (void)pool.acquire();  // binds the pool to this thread
  EXPECT_DEATH(
      {
        std::thread t([&] { (void)pool.acquire(); });
        t.join();
      },
      "domain-affinity");
}
#endif  // !__SANITIZE_THREAD__

TEST(DomainAffinity, RebindOwnerAllowsQuiescedHandOff) {
  net::PacketPool pool;
  (void)pool.acquire();
  pool.rebind_owner();  // legitimate hand-off: next thread binds
  std::thread t([&] { (void)pool.acquire(); });
  t.join();
  EXPECT_EQ(pool.recycled(), 1u);
}

#endif  // FLEXTOE_AFFINITY_CHECKS

}  // namespace
}  // namespace flextoe::sim
