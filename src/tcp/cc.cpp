#include "tcp/cc.hpp"

#include <cassert>

namespace flextoe::tcp {

namespace {

std::uint64_t clamp_rate(double r, std::uint64_t lo, std::uint64_t hi) {
  if (r < static_cast<double>(lo)) return lo;
  if (r > static_cast<double>(hi)) return hi;
  return static_cast<std::uint64_t>(r);
}

}  // namespace

Dctcp::Dctcp(DctcpParams p)
    : p_(p),
      cwnd_(p.init_cwnd_bytes),
      ssthresh_(p.max_cwnd_bytes),
      rate_(p.max_rate_bps) {}

std::uint64_t Dctcp::update(const CcInput& in) {
  if (in.timeouts > 0) {
    // Loss with timeout: collapse to one segment (go-back-N recovery).
    ssthresh_ = std::max<std::uint64_t>(cwnd_ / 2, 2 * p_.mss);
    cwnd_ = p_.mss;
    alpha_ = 1.0;
  } else if (in.fast_retx > 0) {
    ssthresh_ = std::max<std::uint64_t>(cwnd_ / 2, 2 * p_.mss);
    cwnd_ = ssthresh_;
  } else if (in.acked_bytes > 0) {
    // Update the ECN fraction estimate.
    const double frac = static_cast<double>(in.ecn_bytes) /
                        static_cast<double>(in.acked_bytes);
    alpha_ = (1.0 - p_.gain) * alpha_ + p_.gain * frac;
    if (in.ecn_bytes > 0) {
      // DCTCP window reduction, proportional to congestion extent.
      const double reduced =
          static_cast<double>(cwnd_) * (1.0 - alpha_ / 2.0);
      cwnd_ = std::max<std::uint64_t>(
          static_cast<std::uint64_t>(reduced), 2 * p_.mss);
    } else if (cwnd_ < ssthresh_) {
      cwnd_ = std::min(cwnd_ + in.acked_bytes, p_.max_cwnd_bytes);
    } else {
      // Congestion avoidance: +MSS per cwnd of ACKed data.
      const double incr = static_cast<double>(p_.mss) *
                          static_cast<double>(in.acked_bytes) /
                          static_cast<double>(std::max<std::uint64_t>(cwnd_, 1));
      cwnd_ = std::min(cwnd_ + static_cast<std::uint64_t>(incr + 1),
                       p_.max_cwnd_bytes);
    }
  }

  // Convert window to pacing rate over the measured RTT.
  const sim::TimePs rtt = in.rtt > 0 ? in.rtt : sim::us(50);
  const double r = static_cast<double>(cwnd_) *
                   static_cast<double>(sim::kPsPerSec) /
                   static_cast<double>(rtt);
  rate_ = clamp_rate(r, p_.min_rate_bps, p_.max_rate_bps);
  return rate_;
}

Timely::Timely(TimelyParams p) : p_(p), rate_(p.max_rate_bps / 10) {}

std::uint64_t Timely::update(const CcInput& in) {
  if (in.timeouts > 0) {
    rate_ = std::max<std::uint64_t>(rate_ / 2, p_.min_rate_bps);
    return rate_;
  }
  if (in.rtt == 0) return rate_;

  const auto rtt = in.rtt;
  double r = static_cast<double>(rate_);

  if (prev_rtt_ == 0) {
    prev_rtt_ = rtt;
    return rate_;
  }
  const double new_diff = static_cast<double>(rtt) -
                          static_cast<double>(prev_rtt_);
  prev_rtt_ = rtt;
  rtt_diff_ = (1.0 - 1.0 / 8.0) * rtt_diff_ + (1.0 / 8.0) * new_diff;
  const double gradient = rtt_diff_ / static_cast<double>(p_.min_rtt);

  if (rtt < p_.t_low) {
    r += p_.add_step;
    neg_gradient_rounds_ = 0;
  } else if (rtt > p_.t_high) {
    r *= 1.0 - p_.beta * (1.0 - static_cast<double>(p_.t_high) /
                                    static_cast<double>(rtt));
    neg_gradient_rounds_ = 0;
  } else if (gradient <= 0) {
    // Hyperactive increase after several decreasing-RTT rounds.
    ++neg_gradient_rounds_;
    const double n = neg_gradient_rounds_ >= p_.hai_threshold ? 5.0 : 1.0;
    r += n * p_.add_step;
  } else {
    neg_gradient_rounds_ = 0;
    r *= 1.0 - p_.beta * std::min(gradient, 1.0);
  }

  rate_ = std::clamp<std::uint64_t>(static_cast<std::uint64_t>(r),
                                    p_.min_rate_bps, p_.max_rate_bps);
  return rate_;
}

std::unique_ptr<CongestionControl> make_cc(const std::string& name) {
  if (name == "timely") return std::make_unique<Timely>();
  return std::make_unique<Dctcp>();
}

}  // namespace flextoe::tcp
