// FlexTOE control plane (paper §3 and Appendix D).
//
// Handles everything that is not per-segment data-path work: connection
// control (handshake, teardown, data-path state installation), the
// congestion-control loop (reads per-flow stats from the data-path,
// programs Carousel rates), and retransmission-timeout monitoring. Runs
// in its own protection domain on the host (or on SmartNIC control
// cores — modeled as a latency difference).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/datapath.hpp"
#include "sim/domain.hpp"
#include "sim/rng.hpp"
#include "tcp/cc.hpp"
#include "tcp/flow.hpp"
#include "tcp/rtt.hpp"

namespace flextoe::host {

class LibToe;

struct ControlPlaneConfig {
  std::string cc_algo = "dctcp";     // dctcp | timely
  bool cc_enabled = true;            // Table 4: control-plane CC on/off
  sim::TimePs cc_interval = sim::us(100);
  sim::TimePs min_rto = sim::ms(1);
  sim::TimePs max_rto = sim::ms(100);
  std::uint32_t mss = 1448;
  std::size_t sockbuf_bytes = 512 * 1024;
  std::uint32_t syn_retries = 6;
  sim::TimePs handshake_rto = sim::ms(5);
  sim::TimePs time_wait = sim::ms(1);
};

class ControlPlane {
 public:
  ControlPlane(sim::Domain& ev, core::Datapath& dp, sim::Rng rng,
               ControlPlaneConfig cfg);

  void set_libtoe(LibToe* lib) { lib_ = lib; }
  void set_identity(net::MacAddr mac, net::Ipv4Addr ip) {
    mac_ = mac;
    ip_ = ip;
  }
  net::Ipv4Addr ip() const { return ip_; }

  // ---- libTOE-facing ----
  void listen(std::uint16_t port);
  tcp::ConnId connect(net::Ipv4Addr remote_ip, std::uint16_t remote_port);
  void app_close(tcp::ConnId conn);

  // ---- Data-path-facing ----
  void on_control_segment(const net::PacketPtr& pkt);
  void on_peer_fin(tcp::ConnId conn);

  // ---- Introspection ----
  std::size_t established() const { return established_; }
  std::uint64_t rto_retransmits() const { return rto_retransmits_; }
  const ControlPlaneConfig& config() const { return cfg_; }
  void set_cc_enabled(bool on) { cfg_.cc_enabled = on; }

 private:
  enum class CState : std::uint8_t {
    SynSent,
    SynRcvd,
    Established,
    Closing,   // FIN exchange in progress
    TimeWait,
    Dead,
  };

  struct ConnCtl {
    CState state = CState::Dead;
    tcp::FlowTuple tuple;
    net::MacAddr peer_mac;
    tcp::SeqNum iss = 0;
    tcp::SeqNum irs = 0;
    std::uint32_t syn_tries = 0;
    std::uint64_t timer_gen = 0;
    std::unique_ptr<tcp::CongestionControl> cc;
    // RTO progress tracking.
    tcp::SeqNum last_una = 0;
    sim::TimePs last_progress = 0;
    std::uint32_t backoff = 1;
    std::uint32_t timeouts_pending = 0;  // reported to CC next iteration
    bool fin_requested = false;
    bool peer_fin = false;
  };

  tcp::ConnId alloc_conn();
  void send_syn(tcp::ConnId conn);
  void send_synack(tcp::ConnId conn);
  void install(tcp::ConnId conn, std::uint32_t remote_win);
  void handshake_timer(tcp::ConnId conn, std::uint64_t gen);
  void cc_tick();
  void maybe_teardown(tcp::ConnId conn);
  net::PacketPtr make_ctrl_packet(const ConnCtl& c, tcp::SeqNum seq,
                                  tcp::SeqNum ack, std::uint8_t flags);
  std::uint32_t now_us() const {
    return static_cast<std::uint32_t>(ev_.now() / sim::kPsPerUs);
  }

  sim::Domain& ev_;
  core::Datapath& dp_;
  sim::Rng rng_;
  ControlPlaneConfig cfg_;
  LibToe* lib_ = nullptr;
  net::MacAddr mac_{};
  net::Ipv4Addr ip_ = 0;

  std::vector<std::unique_ptr<ConnCtl>> conns_;
  std::unordered_map<tcp::FlowTuple, tcp::ConnId, tcp::FlowTupleHash>
      pending_;  // handshakes in flight (not yet in the data-path DB)
  std::vector<bool> listening_ = std::vector<bool>(65536, false);
  std::uint16_t next_ephemeral_ = 30000;
  std::size_t established_ = 0;
  std::uint64_t rto_retransmits_ = 0;
  bool cc_timer_running_ = false;
};

}  // namespace flextoe::host
