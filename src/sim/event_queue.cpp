#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace flextoe::sim {

void EventQueue::schedule_at(TimePs t, Callback cb) {
  assert(t >= now_ && "cannot schedule into the past");
  heap_.push(Ev{t, next_seq_++, std::move(cb)});
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top() returns const&; move via const_cast is safe here
  // because we pop immediately after.
  Ev ev = std::move(const_cast<Ev&>(heap_.top()));
  heap_.pop();
  now_ = ev.t;
  ++executed_;
  ev.cb();
  return true;
}

void EventQueue::run_until(TimePs t) {
  while (!heap_.empty() && heap_.top().t <= t) step();
  if (now_ < t) now_ = t;
}

void EventQueue::run_all() {
  while (step()) {
  }
}

}  // namespace flextoe::sim
