#include "sim/stats.hpp"

#include <cmath>
#include <cstdio>

namespace flextoe::sim {

Percentiles::Percentiles(std::size_t max_samples, std::uint64_t seed)
    : max_samples_(max_samples), rng_state_(seed) {
  samples_.reserve(std::min<std::size_t>(max_samples_, 4096));
}

std::uint64_t Percentiles::next_u64() {
  std::uint64_t z = (rng_state_ += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

void Percentiles::add(double v) {
  ++n_;
  sum_ += v;
  if (samples_.size() < max_samples_) {
    samples_.push_back(v);
    sorted_ = false;
    return;
  }
  // Reservoir sampling: replace a random slot with probability k/n.
  std::uint64_t idx = next_u64() % n_;
  if (idx < samples_.size()) {
    samples_[idx] = v;
    sorted_ = false;
  }
}

double Percentiles::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  double rank = (p / 100.0) * static_cast<double>(samples_.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double Percentiles::min() const { return percentile(0.0); }
double Percentiles::max() const { return percentile(100.0); }

double Percentiles::mean() const {
  return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_);
}

void Percentiles::clear() {
  samples_.clear();
  sorted_ = true;
  n_ = 0;
  sum_ = 0;
}

double jains_fairness_index(const std::vector<double>& xs) {
  if (xs.empty()) return 1.0;
  double s = 0, s2 = 0;
  for (double x : xs) {
    s += x;
    s2 += x * x;
  }
  if (s2 == 0) return 1.0;
  return (s * s) / (static_cast<double>(xs.size()) * s2);
}

std::string fmt(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

}  // namespace flextoe::sim
