// Point-to-point unidirectional link: serialization at a configured
// bandwidth, propagation delay, and optional seeded random loss.
#pragma once

#include <cstdint>
#include <deque>

#include "net/packet.hpp"
#include "sim/domain.hpp"
#include "sim/rng.hpp"

namespace flextoe::net {

// Anything that can accept a packet (a NIC, a switch port, a stack).
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void deliver(const PacketPtr& pkt) = 0;
};

struct LinkParams {
  double gbps = 40.0;
  sim::TimePs prop_delay = sim::ns(500);
  double loss_rate = 0.0;  // per-packet drop probability
};

class Link : public PacketSink {
 public:
  Link(sim::Domain& ev, sim::Rng rng, LinkParams params)
      : ev_(ev), rng_(rng), params_(params) {}

  // PacketSink: sending into the link == transmitting over it.
  void deliver(const PacketPtr& pkt) override { send(pkt); }

  void set_sink(PacketSink* sink) { sink_ = sink; }
  void set_loss_rate(double p) { params_.loss_rate = p; }
  void set_gbps(double g) { params_.gbps = g; }
  const LinkParams& params() const { return params_; }

  // Serializes the packet onto the link; delivery is scheduled after
  // serialization + propagation. FIFO order is preserved.
  void send(const PacketPtr& pkt);

  std::uint64_t tx_packets() const { return tx_packets_; }
  std::uint64_t tx_bytes() const { return tx_bytes_; }
  std::uint64_t dropped() const { return dropped_; }

  // Time to serialize `bytes` at the link rate.
  sim::TimePs tx_time(std::uint32_t bytes) const {
    const double bits = static_cast<double>(bytes) * 8.0;
    return static_cast<sim::TimePs>(bits * 1000.0 / params_.gbps);
  }

 private:
  sim::Domain& ev_;
  sim::Rng rng_;
  LinkParams params_;
  PacketSink* sink_ = nullptr;
  sim::TimePs next_free_ = 0;
  std::uint64_t tx_packets_ = 0;
  std::uint64_t tx_bytes_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace flextoe::net
