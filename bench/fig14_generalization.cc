// Figure 14: does FlexTOE's data-path parallelism generalize? Single
// connection throughput of pipelined RPCs vs MSS on the BlueField and x86
// ports: TAS (core-per-connection), TAS-nocopy, FlexTOE (2x replicated
// pre/post, 9 cores), FlexTOE-scalar (no replication, 7 cores). One
// series per platform/design; rows are MSS values.
#include "common.hpp"

using namespace flextoe;
using namespace flextoe::benchx;

namespace {

struct Spans {
  sim::TimePs warm, span;
};

double run_flextoe(const core::DatapathConfig& dp_cfg, std::uint32_t mss,
                   std::uint64_t seed, Spans t) {
  Testbed tb(seed);
  host::FlexToeNicConfig cfg;
  cfg.datapath = dp_cfg;
  cfg.datapath.mss = mss;
  cfg.control.mss = mss;
  auto& server = tb.add_flextoe_node(
      {.cores = 2, .nic_gbps = cfg.datapath.mac_gbps}, cfg);
  auto& client = tb.add_client_node();

  // RPC sink: client streams, server consumes (no per-request response —
  // a large pipelined transfer measures the data-path, not the app).
  app::EchoServer srv(tb.ev(), *server.stack,
                      {.port = 7, .response_size = 32});
  app::ClosedLoopClient::Params cp;
  cp.connections = 1;
  cp.pipeline = 16;  // deep pipelining on one connection
  cp.request_size = 16 * 1024;
  cp.response_size = 32;
  app::ClosedLoopClient cli(tb.ev(), *client.stack, server.ip, cp);
  cli.start();

  tb.run_for(t.warm);
  const std::uint64_t base = srv.bytes_rx();
  tb.run_for(t.span);
  return static_cast<double>(srv.bytes_rx() - base) * 8.0 /
         sim::to_sec(t.span) / 1e9;
}

double run_tas(sim::ClockDomain clock, std::uint32_t mss, bool nocopy,
               std::uint64_t seed, Spans t) {
  Testbed tb(seed);
  auto pers = baseline::tas_personality();
  if (nocopy) pers.costs.copy_per_kb = 0;
  app::NodeParams np;
  np.cores = 1;  // core-per-connection: one connection -> one core
  np.cpu_clock = clock;
  baseline::SwTcpConfig overrides;
  overrides.mss = mss;
  auto& server = tb.add_sw_node(np, pers, overrides);
  auto& client = tb.add_client_node();

  app::EchoServer srv(tb.ev(), *server.stack,
                      {.port = 7, .response_size = 32});
  app::ClosedLoopClient::Params cp;
  cp.connections = 1;
  cp.pipeline = 16;
  cp.request_size = 16 * 1024;
  cp.response_size = 32;
  app::ClosedLoopClient cli(tb.ev(), *client.stack, server.ip, cp);
  cli.start();

  tb.run_for(t.warm);
  const std::uint64_t base = srv.bytes_rx();
  tb.run_for(t.span);
  return static_cast<double>(srv.bytes_rx() - base) * 8.0 /
         sim::to_sec(t.span) / 1e9;
}

void platform(ScenarioCtx& ctx, const char* name, sim::ClockDomain clock,
              const core::DatapathConfig& repl,
              const core::DatapathConfig& scalar) {
  const auto mss_list = ctx.pick<std::vector<std::uint32_t>>(
      {1448, 1024, 512, 256, 128, 64}, {1448, 256});
  const Spans t{ctx.pick(sim::ms(10), sim::ms(3)),
                ctx.pick(sim::ms(30), sim::ms(5))};
  const std::string prefix = std::string(name) + "/";
  for (std::uint32_t mss : mss_list) {
    const std::string label = std::to_string(mss);
    ctx.report().series(prefix + "TAS").set(
        label, "gbps", run_tas(clock, mss, false, ctx.seed(47), t));
    ctx.report().series(prefix + "TAS-nocopy")
        .set(label, "gbps", run_tas(clock, mss, true, ctx.seed(47), t));
    ctx.report().series(prefix + "FlexTOE-scalar")
        .set(label, "gbps", run_flextoe(scalar, mss, ctx.seed(43), t));
    ctx.report().series(prefix + "FlexTOE").set(
        label, "gbps", run_flextoe(repl, mss, ctx.seed(43), t));
  }
  // Attached per platform so each scenario carries it under --filter;
  // Report::note dedups when both run.
  ctx.report().note(
      "Paper shape: FlexTOE up to 4x TAS on BlueField (2.4x on x86); "
      "TAS-nocopy closes much of the gap at large MSS (copy-bound),\n"
      "less at small MSS (packet-rate-bound); FlexTOE-scalar captures only "
      "part of the win (pipelining without replication).");
}

}  // namespace

BENCH_SCENARIO(fig14_bluefield,
               "single-conn throughput (Gbps) vs MSS, BlueField port") {
  platform(ctx, "BlueField", sim::kBlueFieldClock,
           core::bluefield_config(true), core::bluefield_config(false));
}

BENCH_SCENARIO(fig14_x86,
               "single-conn throughput (Gbps) vs MSS, x86 port") {
  platform(ctx, "x86", sim::kX86Clock, core::x86_config(true),
           core::x86_config(false));
}
