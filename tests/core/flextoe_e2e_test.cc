// End-to-end FlexTOE tests: handshake through the control plane, data
// transfer through the offloaded pipeline, interop with the software
// stack, loss recovery, OOO handling, FIN teardown, XDP hooks.
#include <gtest/gtest.h>

#include <numeric>

#include "baseline/sw_tcp.hpp"
#include "host/flextoe_nic.hpp"
#include "net/switch.hpp"
#include "sim/domain.hpp"
#include "xdp/modules.hpp"

namespace flextoe {
namespace {

using tcp::ConnId;

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t seed = 9) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>(i * 37 + seed);
  }
  return v;
}

// FlexTOE server + SwTcp client over a 2-port switch.
struct Rig {
  sim::Domain ev;
  net::Switch sw;
  net::Link toe_link, cli_link;
  host::FlexToeNic toe;
  baseline::SwTcpStack cli;

  explicit Rig(host::FlexToeNicConfig cfg = {}, double loss = 0.0,
               baseline::SwTcpConfig cli_cfg_in = {})
      : sw(ev, sim::Rng(11), 2),
        toe_link(ev, sim::Rng(12), {40.0, sim::ns(500), loss}),
        cli_link(ev, sim::Rng(13), {40.0, sim::ns(500), loss}),
        toe(ev, sim::Rng(14), net::MacAddr::from_u64(0x020000000000ull +
                                                     net::make_ip(10, 0, 0, 1)),
            net::make_ip(10, 0, 0, 1), cfg),
        cli(ev, sim::Rng(15), cli_cfg(cli_cfg_in)) {
    toe_link.set_sink(sw.ingress_sink(0));
    cli_link.set_sink(sw.ingress_sink(1));
    toe.set_mac_tx(&toe_link);
    cli.set_tx_sink(&cli_link);
    sw.attach(0, &toe.mac_rx());
    sw.attach(1, &cli);
    cli.set_gateway_mac(net::MacAddr::from_u64(0x020000000000ull +
                                               net::make_ip(10, 0, 0, 1)));
  }

  static baseline::SwTcpConfig cli_cfg(baseline::SwTcpConfig c) {
    c.mac = net::MacAddr::from_u64(0x020000000000ull +
                                   net::make_ip(10, 0, 0, 2));
    c.ip = net::make_ip(10, 0, 0, 2);
    return c;
  }

  void run_for(sim::TimePs t) { ev.run_until(ev.now() + t); }
};

TEST(FlexToeE2E, HandshakeInstallsFlow) {
  Rig r;
  bool accepted = false, connected = false;
  ConnId server_conn = tcp::kInvalidConn;

  tcp::StackCallbacks scb;
  scb.on_accept = [&](ConnId c) {
    accepted = true;
    server_conn = c;
  };
  r.toe.stack().set_callbacks(scb);
  r.toe.stack().listen(80);

  tcp::StackCallbacks ccb;
  ccb.on_connected = [&](ConnId, bool ok) { connected = ok; };
  r.cli.set_callbacks(ccb);
  r.cli.connect(net::make_ip(10, 0, 0, 1), 80);

  r.run_for(sim::ms(20));
  EXPECT_TRUE(connected);
  EXPECT_TRUE(accepted);
  ASSERT_NE(server_conn, tcp::kInvalidConn);
  EXPECT_TRUE(r.toe.datapath().flow_valid(server_conn));
  EXPECT_EQ(r.toe.control_plane().established(), 1u);
}

TEST(FlexToeE2E, ClientToServerTransfer) {
  Rig r;
  const auto data = pattern(50 * 1024);
  std::vector<std::uint8_t> rxed;

  tcp::StackCallbacks scb;
  scb.on_data = [&](ConnId c) {
    std::uint8_t buf[16384];
    std::size_t n;
    while ((n = r.toe.stack().recv(c, buf)) > 0) {
      rxed.insert(rxed.end(), buf, buf + n);
    }
  };
  r.toe.stack().set_callbacks(scb);
  r.toe.stack().listen(80);

  ConnId cc = tcp::kInvalidConn;
  std::size_t sent = 0;
  tcp::StackCallbacks ccb;
  auto push = [&] {
    if (sent < data.size()) {
      sent += r.cli.send(cc, std::span(data.data() + sent,
                                       data.size() - sent));
    }
  };
  ccb.on_connected = [&](ConnId c, bool) {
    cc = c;
    push();
  };
  ccb.on_sendable = [&](ConnId) { push(); };
  r.cli.set_callbacks(ccb);
  r.cli.connect(net::make_ip(10, 0, 0, 1), 80);

  for (int i = 0; i < 100 && rxed.size() < data.size(); ++i) {
    r.run_for(sim::ms(5));
  }
  ASSERT_EQ(rxed.size(), data.size());
  EXPECT_EQ(rxed, data);
  EXPECT_GT(r.toe.datapath().rx_segments(), 30u);
  EXPECT_GT(r.toe.datapath().acks_sent(), 30u);
}

TEST(FlexToeE2E, ServerToClientTransfer) {
  Rig r;
  const auto data = pattern(50 * 1024, 3);
  std::vector<std::uint8_t> rxed;

  ConnId server_conn = tcp::kInvalidConn;
  std::size_t sent = 0;
  tcp::StackCallbacks scb;
  auto push = [&] {
    if (server_conn != tcp::kInvalidConn && sent < data.size()) {
      sent += r.toe.stack().send(
          server_conn, std::span(data.data() + sent, data.size() - sent));
    }
  };
  scb.on_accept = [&](ConnId c) {
    server_conn = c;
    push();
  };
  scb.on_sendable = [&](ConnId) { push(); };
  r.toe.stack().set_callbacks(scb);
  r.toe.stack().listen(80);

  tcp::StackCallbacks ccb;
  ccb.on_data = [&](ConnId c) {
    std::uint8_t buf[16384];
    std::size_t n;
    while ((n = r.cli.recv(c, buf)) > 0) {
      rxed.insert(rxed.end(), buf, buf + n);
    }
  };
  r.cli.set_callbacks(ccb);
  r.cli.connect(net::make_ip(10, 0, 0, 1), 80);

  for (int i = 0; i < 200 && rxed.size() < data.size(); ++i) {
    r.run_for(sim::ms(5));
  }
  ASSERT_EQ(rxed.size(), data.size());
  EXPECT_EQ(rxed, data);
  EXPECT_GT(r.toe.datapath().tx_segments(), 30u);
}

TEST(FlexToeE2E, EchoRpcRoundTrips) {
  Rig r;
  // Server echoes; client sends 20 sequential 2 KB RPCs.
  tcp::StackCallbacks scb;
  scb.on_data = [&](ConnId c) {
    std::uint8_t buf[8192];
    std::size_t n;
    while ((n = r.toe.stack().recv(c, buf)) > 0) {
      r.toe.stack().send(c, std::span(buf, n));
    }
  };
  r.toe.stack().set_callbacks(scb);
  r.toe.stack().listen(7);

  const auto rpc = pattern(2048, 5);
  int completed = 0;
  std::size_t got = 0;
  ConnId cc = tcp::kInvalidConn;
  tcp::StackCallbacks ccb;
  ccb.on_connected = [&](ConnId c, bool ok) {
    ASSERT_TRUE(ok);
    cc = c;
    r.cli.send(cc, rpc);
  };
  ccb.on_data = [&](ConnId c) {
    std::uint8_t buf[8192];
    std::size_t n;
    while ((n = r.cli.recv(c, buf)) > 0) got += n;
    while (got >= rpc.size()) {
      got -= rpc.size();
      ++completed;
      r.cli.send(cc, rpc);  // next RPC
    }
  };
  r.cli.set_callbacks(ccb);
  r.cli.connect(net::make_ip(10, 0, 0, 1), 7);

  for (int i = 0; i < 300 && completed < 20; ++i) r.run_for(sim::ms(2));
  EXPECT_GE(completed, 20);
}

TEST(FlexToeE2E, SurvivesPacketLoss) {
  Rig r({}, /*loss=*/0.02);
  const auto data = pattern(80 * 1024, 7);
  std::vector<std::uint8_t> rxed;

  tcp::StackCallbacks scb;
  scb.on_data = [&](ConnId c) {
    std::uint8_t buf[16384];
    std::size_t n;
    while ((n = r.toe.stack().recv(c, buf)) > 0) {
      rxed.insert(rxed.end(), buf, buf + n);
    }
  };
  r.toe.stack().set_callbacks(scb);
  r.toe.stack().listen(80);

  ConnId cc = tcp::kInvalidConn;
  std::size_t sent = 0;
  tcp::StackCallbacks ccb;
  auto push = [&] {
    if (sent < data.size()) {
      sent += r.cli.send(cc, std::span(data.data() + sent,
                                       data.size() - sent));
    }
  };
  ccb.on_connected = [&](ConnId c, bool) {
    cc = c;
    push();
  };
  ccb.on_sendable = [&](ConnId) { push(); };
  r.cli.set_callbacks(ccb);
  r.cli.connect(net::make_ip(10, 0, 0, 1), 80);

  for (int i = 0; i < 1000 && rxed.size() < data.size(); ++i) {
    r.run_for(sim::ms(5));
  }
  ASSERT_EQ(rxed.size(), data.size());
  EXPECT_EQ(rxed, data);
}

TEST(FlexToeE2E, ServerSendSurvivesLossViaControlPlaneRto) {
  Rig r({}, /*loss=*/0.02);
  const auto data = pattern(80 * 1024, 8);
  std::vector<std::uint8_t> rxed;

  ConnId server_conn = tcp::kInvalidConn;
  std::size_t sent = 0;
  tcp::StackCallbacks scb;
  auto push = [&] {
    if (server_conn != tcp::kInvalidConn && sent < data.size()) {
      sent += r.toe.stack().send(
          server_conn, std::span(data.data() + sent, data.size() - sent));
    }
  };
  scb.on_accept = [&](ConnId c) {
    server_conn = c;
    push();
  };
  scb.on_sendable = [&](ConnId) { push(); };
  r.toe.stack().set_callbacks(scb);
  r.toe.stack().listen(80);

  tcp::StackCallbacks ccb;
  ccb.on_data = [&](ConnId c) {
    std::uint8_t buf[16384];
    std::size_t n;
    while ((n = r.cli.recv(c, buf)) > 0) {
      rxed.insert(rxed.end(), buf, buf + n);
    }
  };
  r.cli.set_callbacks(ccb);
  r.cli.connect(net::make_ip(10, 0, 0, 1), 80);

  for (int i = 0; i < 1000 && rxed.size() < data.size(); ++i) {
    r.run_for(sim::ms(5));
  }
  ASSERT_EQ(rxed.size(), data.size());
  EXPECT_EQ(rxed, data);
}

TEST(FlexToeE2E, FinTeardownNotifiesBothSides) {
  Rig r;
  bool server_saw_close = false, client_saw_close = false;
  ConnId server_conn = tcp::kInvalidConn;

  tcp::StackCallbacks scb;
  scb.on_accept = [&](ConnId c) { server_conn = c; };
  scb.on_close = [&](ConnId c) {
    server_saw_close = true;
    r.toe.stack().close(c);  // passive close
  };
  r.toe.stack().set_callbacks(scb);
  r.toe.stack().listen(80);

  tcp::StackCallbacks ccb;
  ccb.on_connected = [&](ConnId c, bool) { r.cli.close(c); };
  ccb.on_close = [&](ConnId) { client_saw_close = true; };
  r.cli.set_callbacks(ccb);
  r.cli.connect(net::make_ip(10, 0, 0, 1), 80);

  r.run_for(sim::ms(100));
  EXPECT_TRUE(server_saw_close);
  // Data-path flow eventually uninstalled.
  EXPECT_FALSE(r.toe.datapath().flow_valid(server_conn));
}

TEST(FlexToeE2E, XdpFirewallDropsBlacklistedTraffic) {
  Rig r;
  auto fw = std::make_shared<xdp::FirewallProgram>();
  fw->block(net::make_ip(10, 0, 0, 2));  // blacklist the client
  r.toe.datapath().add_xdp_program(fw);

  bool connected = false, failed = false;
  tcp::StackCallbacks ccb;
  ccb.on_connected = [&](ConnId, bool ok) {
    connected = ok;
    failed = !ok;
  };
  r.cli.set_callbacks(ccb);
  r.toe.stack().listen(80);
  r.cli.connect(net::make_ip(10, 0, 0, 1), 80);

  r.run_for(sim::ms(50));
  EXPECT_FALSE(connected);
  EXPECT_GT(fw->dropped(), 0u);
}

TEST(FlexToeE2E, XdpVlanStripRemovesTags) {
  // VLAN strip is exercised via direct program invocation plus a pipeline
  // pass-through check (clients here don't tag, so craft a packet).
  xdp::VlanStripProgram strip;
  net::Packet p;
  p.vlan = net::VlanTag{42};
  xdp::XdpMd md{p, 0};
  EXPECT_EQ(strip.run(md), xdp::XdpAction::Pass);
  EXPECT_FALSE(p.vlan.has_value());
  EXPECT_EQ(strip.stripped(), 1u);
}

TEST(FlexToeE2E, RunToCompletionConfigStillCorrect) {
  host::FlexToeNicConfig cfg;
  cfg.datapath = core::ablation_baseline();
  Rig r(cfg);
  const auto data = pattern(20 * 1024, 2);
  std::vector<std::uint8_t> rxed;

  tcp::StackCallbacks scb;
  scb.on_data = [&](ConnId c) {
    std::uint8_t buf[16384];
    std::size_t n;
    while ((n = r.toe.stack().recv(c, buf)) > 0) {
      rxed.insert(rxed.end(), buf, buf + n);
    }
  };
  r.toe.stack().set_callbacks(scb);
  r.toe.stack().listen(80);

  ConnId cc = tcp::kInvalidConn;
  std::size_t sent = 0;
  tcp::StackCallbacks ccb;
  auto push = [&] {
    if (sent < data.size()) {
      sent += r.cli.send(cc, std::span(data.data() + sent,
                                       data.size() - sent));
    }
  };
  ccb.on_connected = [&](ConnId c, bool) {
    cc = c;
    push();
  };
  ccb.on_sendable = [&](ConnId) { push(); };
  r.cli.set_callbacks(ccb);
  r.cli.connect(net::make_ip(10, 0, 0, 1), 80);

  for (int i = 0; i < 400 && rxed.size() < data.size(); ++i) {
    r.run_for(sim::ms(5));
  }
  ASSERT_EQ(rxed.size(), data.size());
  EXPECT_EQ(rxed, data);
}

TEST(FlexToeE2E, X86PortConfigTransfers) {
  host::FlexToeNicConfig cfg;
  cfg.datapath = core::x86_config();
  Rig r(cfg);
  const auto data = pattern(40 * 1024, 4);
  std::vector<std::uint8_t> rxed;

  tcp::StackCallbacks scb;
  scb.on_data = [&](ConnId c) {
    std::uint8_t buf[16384];
    std::size_t n;
    while ((n = r.toe.stack().recv(c, buf)) > 0) {
      rxed.insert(rxed.end(), buf, buf + n);
    }
  };
  r.toe.stack().set_callbacks(scb);
  r.toe.stack().listen(80);

  ConnId cc = tcp::kInvalidConn;
  std::size_t sent = 0;
  tcp::StackCallbacks ccb;
  auto push = [&] {
    if (sent < data.size()) {
      sent += r.cli.send(cc, std::span(data.data() + sent,
                                       data.size() - sent));
    }
  };
  ccb.on_connected = [&](ConnId c, bool) {
    cc = c;
    push();
  };
  ccb.on_sendable = [&](ConnId) { push(); };
  r.cli.set_callbacks(ccb);
  r.cli.connect(net::make_ip(10, 0, 0, 1), 80);

  for (int i = 0; i < 200 && rxed.size() < data.size(); ++i) {
    r.run_for(sim::ms(5));
  }
  ASSERT_EQ(rxed.size(), data.size());
  EXPECT_EQ(rxed, data);
}

}  // namespace
}  // namespace flextoe
