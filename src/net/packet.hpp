// A TCP/IPv4 packet with byte-exact serialization and parsing.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "net/headers.hpp"

namespace flextoe::net {

struct Packet {
  EthHeader eth;
  std::optional<VlanTag> vlan;
  Ipv4Header ip;
  TcpHeader tcp;
  std::vector<std::uint8_t> payload;

  // Segment-lifecycle causal id (trace/trace.hpp): stamped from the
  // emitting SegCtx at egress and adopted by the receiving pipeline, so
  // a trace follows a segment NIC-to-NIC through the simulated fabric.
  // Not wire data — never serialized, 0 when tracing is off.
  std::uint64_t trace_id = 0;

  // Bytes on the wire (L2 frame without preamble/FCS/IFG).
  std::uint32_t frame_size() const {
    return 14u + (vlan ? 4u : 0u) + 20u + tcp.header_len() +
           static_cast<std::uint32_t>(payload.size());
  }

  // Bytes occupied on the link including preamble, SFD, FCS and IFG —
  // used for bandwidth/serialization math. Frames below the 60-byte
  // minimum are padded.
  std::uint32_t wire_size() const {
    std::uint32_t f = frame_size();
    if (f < 60) f = 60;
    return f + 24;  // 7 preamble + 1 SFD + 4 FCS + 12 IFG
  }

  std::uint32_t payload_len() const {
    return static_cast<std::uint32_t>(payload.size());
  }

  // Serializes to an L2 frame with valid IPv4 and TCP checksums.
  std::vector<std::uint8_t> serialize() const;

  // Parses an L2 frame. Returns nullopt on malformed input. If
  // `verify_checksums` is set, bad IPv4/TCP checksums also fail the parse.
  static std::optional<Packet> parse(std::span<const std::uint8_t> frame,
                                     bool verify_checksums = true);

  // Returns every field to its default-constructed value but keeps
  // payload.capacity(): a net::PacketPool slot is reset on release, so
  // reuse never sees stale headers yet never reallocates the payload
  // buffer for same-sized segments. Written as whole-object assignment
  // (with the payload buffer parked aside) so fields added to Packet
  // later are reset automatically instead of leaking across recycles.
  void reset() {
    auto buf = std::move(payload);
    *this = Packet{};
    payload = std::move(buf);
    payload.clear();
  }
};

using PacketPtr = std::shared_ptr<Packet>;

// Heap clone (cold paths: tests, captures). Hot paths clone through a
// net::PacketPool (packet_pool.hpp), which reuses recycled slots.
inline PacketPtr clone(const Packet& p) { return std::make_shared<Packet>(p); }

// Shared field initialization behind make_tcp_packet and
// PacketPool::make_tcp — one place defines what a "convenience TCP
// segment" looks like, so the heap and pooled variants cannot drift.
inline void init_tcp_packet(Packet& p, const MacAddr& src_mac,
                            const MacAddr& dst_mac, Ipv4Addr src_ip,
                            Ipv4Addr dst_ip, std::uint16_t sport,
                            std::uint16_t dport, std::uint32_t seq,
                            std::uint32_t ack, std::uint8_t flags) {
  p.eth.src = src_mac;
  p.eth.dst = dst_mac;
  p.ip.src = src_ip;
  p.ip.dst = dst_ip;
  p.tcp.sport = sport;
  p.tcp.dport = dport;
  p.tcp.seq = seq;
  p.tcp.ack = ack;
  p.tcp.flags = flags;
}

// Convenience constructor for a TCP segment (heap-allocating; the
// pooled equivalent is PacketPool::make_tcp).
PacketPtr make_tcp_packet(const MacAddr& src_mac, const MacAddr& dst_mac,
                          Ipv4Addr src_ip, Ipv4Addr dst_ip,
                          std::uint16_t sport, std::uint16_t dport,
                          std::uint32_t seq, std::uint32_t ack,
                          std::uint8_t flags,
                          std::vector<std::uint8_t> payload = {});

}  // namespace flextoe::net
