#!/usr/bin/env python3
"""Simulator-throughput regression gate for the micro_pipeline bench.

Runs `micro_pipeline --filter datapath_rx` fresh and compares its
`segments_per_sec` against the checked-in Release baseline
(bench/results/BENCH_micro_pipeline.json). The metric is host
wall-clock simulator throughput — the denominator every scenario in the
catalog pays — so a drop means the hot path (SegCtx pooling, burst
dispatch, stage submit) got slower.

The gate fails when the fresh rate is below `--min-ratio` (default
0.9) of the baseline. Wall-clock rates are machine-dependent, so the
default ratio is deliberately loose: it catches structural regressions
(a lost batching path, a reintroduced per-segment allocation), not
noise. CI runs it on the same runner class that recorded the baseline.

A fresh rate *above* the baseline prints as a note — refresh the
baseline to bank the win:

    cmake -B build-rel -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build build-rel --target micro_pipeline -j
    build-rel/bench/micro_pipeline --repeats 3 \
        --json bench/results/BENCH_micro_pipeline.json

Usage:
    check_perf.py BASELINE BINARY [--min-ratio 0.9]
                  [extra bench args...]

Exit status: 0 = at or above the gate, 1 = regression/error.
"""

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile


def run_bench(binary, out_path, extra):
    cmd = [binary, "--filter", "datapath_rx", "--seed", "0",
           "--json", out_path] + extra
    proc = subprocess.run(
        cmd, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True
    )
    if proc.returncode != 0:
        sys.stderr.write(f"check_perf: {' '.join(cmd)} failed "
                         f"(exit {proc.returncode})\n{proc.stderr}")
        return None
    return json.loads(pathlib.Path(out_path).read_text(encoding="utf-8"))


def datapath_rx_rate(doc):
    for series in doc.get("series", []):
        if series.get("name") != "micro_pipeline":
            continue
        for row in series.get("rows", []):
            if row["label"] == "datapath_rx":
                return row["values"].get("segments_per_sec")
    return None


def main():
    ap = argparse.ArgumentParser(add_help=False)
    ap.add_argument("baseline")
    ap.add_argument("binary")
    ap.add_argument("--min-ratio", type=float, default=0.9)
    args, extra = ap.parse_known_args()

    want = datapath_rx_rate(
        json.loads(pathlib.Path(args.baseline).read_text(encoding="utf-8")))
    if not want:
        sys.stderr.write(f"check_perf: no datapath_rx segments_per_sec in "
                         f"baseline {args.baseline}\n")
        return 1

    with tempfile.TemporaryDirectory() as tmp:
        doc = run_bench(args.binary, str(pathlib.Path(tmp) / "fresh.json"),
                        extra)
    if doc is None:
        return 1
    got = datapath_rx_rate(doc)
    if not got:
        sys.stderr.write("check_perf: fresh run emitted no datapath_rx "
                         "segments_per_sec\n")
        return 1

    ratio = got / want
    if ratio < args.min_ratio:
        sys.stderr.write(
            f"check_perf: REGRESSION — datapath_rx {got:,.0f} segments/s "
            f"vs baseline {want:,.0f} ({ratio:.2f}x < "
            f"{args.min_ratio:.2f}x gate)\n"
            f"  If intentional, refresh the baseline (see the module "
            f"docstring or bench/results/README.md).\n")
        return 1
    if ratio > 1.0:
        print(f"check_perf: note — datapath_rx improved to {got:,.0f} "
              f"segments/s from {want:,.0f} ({ratio:.2f}x); refresh the "
              f"baseline to bank the win")
    else:
        print(f"check_perf: OK — datapath_rx {got:,.0f} segments/s "
              f"(baseline {want:,.0f}, {ratio:.2f}x >= "
              f"{args.min_ratio:.2f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
