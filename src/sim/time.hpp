// Simulated time: 64-bit picoseconds since simulation start.
//
// Picosecond resolution lets us convert cycle counts of arbitrary clock
// rates (800 MHz FPCs = 1250 ps/cycle, 2 GHz Xeon = 500 ps/cycle) to time
// without rounding drift, while still covering ~213 days of simulated time.
#pragma once

#include <cstdint>

namespace flextoe::sim {

using TimePs = std::uint64_t;

inline constexpr TimePs kPsPerNs = 1'000;
inline constexpr TimePs kPsPerUs = 1'000'000;
inline constexpr TimePs kPsPerMs = 1'000'000'000;
inline constexpr TimePs kPsPerSec = 1'000'000'000'000;

constexpr TimePs ns(std::uint64_t v) { return v * kPsPerNs; }
constexpr TimePs us(std::uint64_t v) { return v * kPsPerUs; }
constexpr TimePs ms(std::uint64_t v) { return v * kPsPerMs; }
constexpr TimePs sec(std::uint64_t v) { return v * kPsPerSec; }

constexpr double to_us(TimePs t) { return static_cast<double>(t) / kPsPerUs; }
constexpr double to_ms(TimePs t) { return static_cast<double>(t) / kPsPerMs; }
constexpr double to_sec(TimePs t) { return static_cast<double>(t) / kPsPerSec; }

// A clock domain converts cycle counts to simulated time.
struct ClockDomain {
  TimePs ps_per_cycle;

  constexpr TimePs cycles(std::uint64_t n) const { return n * ps_per_cycle; }
  constexpr std::uint64_t to_cycles(TimePs t) const {
    return t / ps_per_cycle;
  }
  constexpr double mhz() const {
    return 1e12 / static_cast<double>(ps_per_cycle) / 1e6;
  }
};

// Clock domains used throughout the reproduction (paper §2.3, §5).
inline constexpr ClockDomain kFpcClock{1250};        // NFP-4000 FPC, 800 MHz
inline constexpr ClockDomain kHostClock{500};        // Xeon Gold 6138, 2 GHz
inline constexpr ClockDomain kX86Clock{425};         // AMD 7452, ~2.35 GHz
inline constexpr ClockDomain kBlueFieldClock{1250};  // BlueField A72, 800 MHz

}  // namespace flextoe::sim
