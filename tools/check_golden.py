#!/usr/bin/env python3
"""Golden-output regression check for the paper benches.

Runs a bench binary in deterministic quick mode (`--quick --seed 0
--json`) and compares the emitted JSON byte-for-byte against the
checked-in reference under tests/golden/. This automates the
"byte-identical pre/post" verification earlier PRs did by hand: any
refactor of the data path that changes a simulated result — or even
serialization order — fails the diff.

Usage:
    check_golden.py GOLDEN BINARY [extra-args...]      # verify
    check_golden.py --update GOLDEN BINARY [args...]   # regenerate

Exit status: 0 = identical (or golden updated), 1 = mismatch/error.

Degradation: when the fresh run's telemetry is disabled (a
-DFLEXTOE_TELEMETRY=OFF build or --no-telemetry) but the golden's was
enabled, the `telemetry` section is excluded and everything else must
still match byte-equivalently — simulated results are telemetry-
independent by design, and that property stays enforced.

The `config` reproducibility header (git SHA, build type, compiled-in
instrumentation) is always excised from both sides before comparing —
it varies by construction, and goldens must not pin it.
"""

import difflib
import json
import pathlib
import subprocess
import sys
import tempfile


def run_bench(binary, out_path, extra):
    cmd = [binary, "--quick", "--seed", "0", "--json", out_path] + extra
    proc = subprocess.run(
        cmd, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True
    )
    if proc.returncode != 0:
        sys.stderr.write(f"check_golden: {' '.join(cmd)} failed "
                         f"(exit {proc.returncode})\n{proc.stderr}")
        return False
    return True


def without_section(text, key):
    """Excises a `"<key>": {...}` value textually (brace-matched), so
    the rest of the document is still compared byte-for-byte — no JSON
    re-serialization that would mask ordering/formatting drift."""
    i = text.find(f'"{key}":')
    if i < 0:
        return text
    j = text.index("{", i)
    depth = 0
    k = j
    while k < len(text):
        if text[k] == "{":
            depth += 1
        elif text[k] == "}":
            depth -= 1
            if depth == 0:
                break
        k += 1
    end = k + 1
    if end < len(text) and text[end] == ",":
        end += 1
    line_start = text.rfind("\n", 0, i) + 1
    return text[:line_start] + text[end:].lstrip("\n")


def without_telemetry(text):
    return without_section(text, "telemetry")


def without_config(text):
    """Drops the reproducibility header: its git SHA and build type vary
    run-to-run and build-to-build by design."""
    return without_section(text, "config")


def main():
    args = sys.argv[1:]
    update = False
    if args and args[0] == "--update":
        update = True
        args = args[1:]
    if len(args) < 2:
        sys.stderr.write(__doc__)
        return 1
    golden = pathlib.Path(args[0])
    binary = args[1]
    extra = args[2:]

    with tempfile.TemporaryDirectory() as tmp:
        fresh_path = str(pathlib.Path(tmp) / "fresh.json")
        if not run_bench(binary, fresh_path, extra):
            return 1
        fresh = pathlib.Path(fresh_path).read_text(encoding="utf-8")

    if update:
        golden.parent.mkdir(parents=True, exist_ok=True)
        golden.write_text(fresh, encoding="utf-8")
        print(f"check_golden: updated {golden}")
        return 0

    if not golden.exists():
        sys.stderr.write(
            f"check_golden: missing golden {golden}\n"
            f"  generate it: tools/check_golden.py --update {golden} "
            f"{binary}\n")
        return 1

    want = golden.read_text(encoding="utf-8")
    fresh = without_config(fresh)
    want = without_config(want)
    if fresh == want:
        print(f"check_golden: OK ({golden.name} byte-identical)")
        return 0

    # Telemetry-off builds legitimately empty the telemetry section; the
    # simulated results must still match byte-for-byte. A golden that is
    # not valid JSON falls through to the mismatch report.
    try:
        fresh_doc = json.loads(fresh)
        json.loads(want)
        telem_off = not fresh_doc.get("telemetry", {}).get("enabled", False)
    except (json.JSONDecodeError, AttributeError):
        telem_off = False
    if telem_off and without_telemetry(fresh) == without_telemetry(want):
        print(f"check_golden: OK ({golden.name} matches; telemetry "
              f"section skipped — disabled in this build)")
        return 0

    sys.stderr.write(f"check_golden: {golden.name} MISMATCH\n")
    diff = difflib.unified_diff(
        want.splitlines(keepends=True), fresh.splitlines(keepends=True),
        fromfile=f"golden/{golden.name}", tofile="fresh", n=2)
    for i, line in enumerate(diff):
        if i >= 200:
            sys.stderr.write("... (diff truncated)\n")
            break
        sys.stderr.write(line)
    sys.stderr.write(
        "\nIf the change is intentional, regenerate:\n"
        f"  python3 tools/check_golden.py --update {golden} {binary}\n")
    return 1


if __name__ == "__main__":
    sys.exit(main())
