// Stock XDP modules (paper §2.1/§3.3/§5.1): null, VLAN stripping,
// firewalling, tcpdump-style capture with header filters, TCP tracing,
// and AccelTCP-style connection splicing (Listing 1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "net/pcap.hpp"
#include "sim/time.hpp"
#include "tcp/flow.hpp"
#include "xdp/maps.hpp"
#include "xdp/xdp.hpp"

namespace flextoe::xdp {

// Passes every packet unmodified (Table 2: "XDP (null)").
class NullProgram final : public XdpProgram {
 public:
  XdpAction run(XdpMd&) override { return XdpAction::Pass; }
  std::string name() const override { return "null"; }
  std::uint32_t cycles_per_packet() const override { return 18; }
};

// Strips 802.1Q tags on ingress (Table 2: "XDP (vlan-strip)").
class VlanStripProgram final : public XdpProgram {
 public:
  XdpAction run(XdpMd& md) override {
    if (md.pkt.vlan) {
      md.pkt.vlan.reset();
      ++stripped_;
    }
    return XdpAction::Pass;
  }
  std::string name() const override { return "vlan-strip"; }
  std::uint32_t cycles_per_packet() const override { return 22; }
  std::uint64_t stripped() const { return stripped_; }

 private:
  std::uint64_t stripped_ = 0;
};

// Drops packets from blacklisted source IPs; the control plane updates
// the BPF hash map dynamically (paper §3.3 firewall example).
class FirewallProgram final : public XdpProgram {
 public:
  explicit FirewallProgram(std::size_t max_entries = 4096)
      : blacklist_(max_entries) {}

  XdpAction run(XdpMd& md) override {
    if (blacklist_.lookup(md.pkt.ip.src).has_value()) {
      ++dropped_;
      return XdpAction::Drop;
    }
    return XdpAction::Pass;
  }
  std::string name() const override { return "firewall"; }
  std::uint32_t cycles_per_packet() const override { return 45; }

  // Control-plane API.
  bool block(net::Ipv4Addr ip) { return blacklist_.update(ip, 1); }
  void unblock(net::Ipv4Addr ip) { blacklist_.erase(ip); }
  std::uint64_t dropped() const { return dropped_; }

 private:
  BpfHashMap<net::Ipv4Addr, int> blacklist_;
  std::uint64_t dropped_ = 0;
};

// Header-field packet filter for capture (tcpdump-style expressions are
// composed from these predicates).
struct CaptureFilter {
  std::optional<net::Ipv4Addr> src_ip;
  std::optional<net::Ipv4Addr> dst_ip;
  std::optional<std::uint16_t> port;       // matches either direction
  std::optional<std::uint8_t> flags_mask;  // any of these TCP flags set

  bool matches(const net::Packet& p) const {
    if (src_ip && p.ip.src != *src_ip) return false;
    if (dst_ip && p.ip.dst != *dst_ip) return false;
    if (port && p.tcp.sport != *port && p.tcp.dport != *port) return false;
    if (flags_mask && (p.tcp.flags & *flags_mask) == 0) return false;
    return true;
  }
};

// tcpdump-style traffic logging with optional PCAP output (Table 2 rows
// "tcpdump"). Logging all packets is expensive — that is the point.
class CaptureProgram final : public XdpProgram {
 public:
  explicit CaptureProgram(CaptureFilter filter = {}) : filter_(filter) {}

  // Optional: write matched packets to a pcap file.
  bool open_pcap(const std::string& path) { return pcap_.open(path); }

  XdpAction run(XdpMd& md) override {
    if (filter_.matches(md.pkt)) {
      ++captured_;
      if (pcap_.is_open()) pcap_.write(md.pkt, md.rx_timestamp_ps);
    }
    return XdpAction::Pass;
  }
  std::string name() const override { return "tcpdump"; }
  // Logging copies every packet through an EMEM journal: expensive by
  // design (Table 2: "logging naturally has high overhead").
  std::uint32_t cycles_per_packet() const override { return 1100; }
  std::uint64_t captured() const { return captured_; }

 private:
  CaptureFilter filter_;
  net::PcapWriter pcap_;
  std::uint64_t captured_ = 0;
};

// Per-event transport tracing (bpftrace-style, paper §5.1): counts
// SYN/FIN/RST and payload segments per source.
class TraceProgram final : public XdpProgram {
 public:
  XdpAction run(XdpMd& md) override {
    ++events_;
    if (md.pkt.tcp.has(net::tcpflag::kSyn)) ++syns_;
    if (md.pkt.tcp.has(net::tcpflag::kFin)) ++fins_;
    if (md.pkt.tcp.has(net::tcpflag::kRst)) ++rsts_;
    return XdpAction::Pass;
  }
  std::string name() const override { return "trace"; }
  std::uint32_t cycles_per_packet() const override { return 60; }
  std::uint64_t events() const { return events_; }
  std::uint64_t syns() const { return syns_; }
  std::uint64_t fins() const { return fins_; }
  std::uint64_t rsts() const { return rsts_; }

 private:
  std::uint64_t events_ = 0, syns_ = 0, fins_ = 0, rsts_ = 0;
};

// AccelTCP-style connection splicing (paper Listing 1): a proxy NIC
// rewrites headers and forwards segments entirely on the NIC, never
// touching the host. The control plane installs splice state per flow.
struct TcpSplice {
  net::MacAddr remote_mac;
  net::Ipv4Addr remote_ip = 0;
  std::uint16_t local_port = 0;   // rewritten source port
  std::uint16_t remote_port = 0;  // rewritten destination port
  std::uint32_t seq_delta = 0;
  std::uint32_t ack_delta = 0;
};

class SpliceProgram final : public XdpProgram {
 public:
  explicit SpliceProgram(std::size_t max_flows = 8192)
      : splice_tbl_(max_flows) {}

  XdpAction run(XdpMd& md) override;
  std::string name() const override { return "splice"; }
  std::uint32_t cycles_per_packet() const override { return 55; }

  // Control-plane API (paper: offsets configured from the connections'
  // initial sequence numbers).
  bool add(const tcp::FlowTuple& key, const TcpSplice& state) {
    return splice_tbl_.update(key, state);
  }
  void remove(const tcp::FlowTuple& key) { splice_tbl_.erase(key); }
  std::uint64_t spliced() const { return spliced_; }
  std::size_t flows() const { return splice_tbl_.size(); }
  void set_local_mac(net::MacAddr m) { local_mac_ = m; }

 private:
  BpfHashMap<tcp::FlowTuple, TcpSplice, tcp::FlowTupleHash> splice_tbl_;
  net::MacAddr local_mac_{};
  std::uint64_t spliced_ = 0;
};

}  // namespace flextoe::xdp
