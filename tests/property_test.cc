// Property-based tests: randomized sweeps over the invariants the system
// must preserve regardless of segmentation, ordering, loss, or stack
// pairing.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "baseline/sw_tcp.hpp"
#include "host/flextoe_nic.hpp"
#include "net/switch.hpp"
#include "sim/domain.hpp"
#include "sim/rng.hpp"
#include "tcp/byte_ring.hpp"
#include "tcp/ooo.hpp"

namespace flextoe {
namespace {

using tcp::ConnId;

// --- Property: the single-interval tracker never advances past data the
// receiver does not hold, and always converges when the sender eventually
// retransmits everything in order (go-back-N contract). ---

class OooPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(OooPropertyTest, RandomSegmentArrivalsConverge) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()));
  tcp::SingleIntervalTracker tracker;

  const std::uint32_t total = 64 * 1024;
  const std::uint32_t window = 256 * 1024;
  std::vector<bool> received(total, false);
  tcp::SeqNum rcv_nxt = 0;

  // Phase 1: a random mix of in-order, out-of-order, duplicate and
  // overlapping segments.
  for (int iter = 0; iter < 3000 && rcv_nxt < total; ++iter) {
    std::uint32_t base;
    if (rng.chance(0.6)) {
      base = rcv_nxt;  // in-order
    } else {
      base = rcv_nxt + static_cast<std::uint32_t>(rng.next_below(8000));
    }
    if (rng.chance(0.2) && rcv_nxt > 2000) {
      base = rcv_nxt - static_cast<std::uint32_t>(rng.next_below(2000));
    }
    const auto len = static_cast<std::uint32_t>(rng.next_range(1, 1448));
    const auto r = tracker.on_segment(rcv_nxt, base, len, window);

    if (r.accept) {
      // Mark the accepted byte range as held.
      const std::uint32_t start =
          base < rcv_nxt ? rcv_nxt : base;  // front trim
      for (std::uint32_t i = 0; i < r.accept_len; ++i) {
        if (start + i < total) received[start + i] = true;
      }
    }
    if (r.advance > 0) {
      // INVARIANT: everything rcv_nxt advances over was received.
      for (std::uint32_t i = 0; i < r.advance; ++i) {
        ASSERT_TRUE(rcv_nxt + i >= total || received[rcv_nxt + i])
            << "advanced over missing byte " << rcv_nxt + i;
      }
      rcv_nxt += r.advance;
    }
  }

  // Phase 2: go-back-N — deliver everything in order from rcv_nxt.
  while (rcv_nxt < total) {
    const std::uint32_t len =
        std::min<std::uint32_t>(1448, total - rcv_nxt);
    const auto r = tracker.on_segment(rcv_nxt, rcv_nxt, len, window);
    ASSERT_TRUE(r.accept);
    for (std::uint32_t i = 0; i < r.accept_len; ++i) {
      received[rcv_nxt + i] = true;
    }
    ASSERT_GT(r.advance, 0u);
    rcv_nxt += r.advance;
  }
  // Random phase-1 segments may legitimately extend past `total`
  // (buffered future bytes merge on the final advance), so converge-at-
  // or-beyond is the invariant.
  EXPECT_GE(rcv_nxt, total);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OooPropertyTest,
                         ::testing::Range(1, 13));

// --- Property: ByteRing preserves content across arbitrary interleaved
// reads/writes at any capacity/offset combination. ---

class ByteRingPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ByteRingPropertyTest, FifoIntegrityUnderRandomOps) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 77);
  const std::size_t cap = 256 + rng.next_below(2048);
  tcp::ByteRing ring(cap);
  std::deque<std::uint8_t> model;
  std::uint8_t next = 0;

  for (int op = 0; op < 5000; ++op) {
    if (rng.chance(0.55)) {
      std::vector<std::uint8_t> data(rng.next_range(1, 300));
      for (auto& b : data) b = next++;
      const std::size_t n = ring.write(data);
      ASSERT_LE(n, data.size());
      for (std::size_t i = 0; i < n; ++i) model.push_back(data[i]);
      // write() accepts exactly min(len, free).
      if (n < data.size()) {
        EXPECT_EQ(ring.free_space(), 0u);
      }
    } else {
      std::vector<std::uint8_t> out(rng.next_range(1, 300));
      const std::size_t n = ring.read(out);
      ASSERT_EQ(n, std::min(out.size(), model.size()));
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(out[i], model.front());
        model.pop_front();
      }
    }
    ASSERT_EQ(ring.used(), model.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ByteRingPropertyTest,
                         ::testing::Range(1, 9));

// --- Property: any pairing of FlexTOE and software-stack endpoints
// transfers data intact in both directions under loss (interop). ---

struct InteropCase {
  bool server_flextoe;
  bool client_flextoe;
  double loss;
  int seed;
};

class InteropTest : public ::testing::TestWithParam<InteropCase> {};

TEST_P(InteropTest, BidirectionalIntegrity) {
  const auto pc = GetParam();
  sim::Domain ev;
  net::Switch sw(ev, sim::Rng(1), 2);
  net::Link l0(ev, sim::Rng(2), {40.0, sim::ns(500), pc.loss});
  net::Link l1(ev, sim::Rng(3), {40.0, sim::ns(500), pc.loss});
  l0.set_sink(sw.ingress_sink(0));
  l1.set_sink(sw.ingress_sink(1));

  const auto ip0 = net::make_ip(10, 0, 0, 1);
  const auto ip1 = net::make_ip(10, 0, 0, 2);
  auto mac = [](net::Ipv4Addr ip) {
    return net::MacAddr::from_u64(0x020000000000ull + ip);
  };

  std::unique_ptr<host::FlexToeNic> toe0, toe1;
  std::unique_ptr<baseline::SwTcpStack> sws0, sws1;
  tcp::StackIface* s0;
  tcp::StackIface* s1;
  auto build = [&](bool flextoe, net::Ipv4Addr ip, net::Link& link,
                   int port, std::unique_ptr<host::FlexToeNic>& toe,
                   std::unique_ptr<baseline::SwTcpStack>& sws,
                   std::uint64_t seed) -> tcp::StackIface* {
    if (flextoe) {
      toe = std::make_unique<host::FlexToeNic>(ev, sim::Rng(seed), mac(ip),
                                               ip);
      toe->set_mac_tx(&link);
      sw.attach(port, &toe->mac_rx());
      return &toe->stack();
    }
    baseline::SwTcpConfig cfg;
    cfg.mac = mac(ip);
    cfg.ip = ip;
    sws = std::make_unique<baseline::SwTcpStack>(ev, sim::Rng(seed), cfg);
    sws->set_tx_sink(&link);
    sw.attach(port, sws.get());
    return sws.get();
  };
  s0 = build(pc.server_flextoe, ip0, l0, 0, toe0, sws0, 11);
  s1 = build(pc.client_flextoe, ip1, l1, 1, toe1, sws1, 13);

  // Server echoes; client sends a seeded pattern and checks the echo.
  std::vector<std::uint8_t> data(40 * 1024);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 131 + pc.seed);
  }
  std::vector<std::uint8_t> echoed;
  std::size_t sent = 0;
  ConnId cc = tcp::kInvalidConn;

  tcp::StackCallbacks scb;
  scb.on_data = [&](ConnId c) {
    std::uint8_t buf[8192];
    std::size_t n;
    while ((n = s0->recv(c, buf)) > 0) s0->send(c, std::span(buf, n));
  };
  s0->set_callbacks(scb);
  s0->listen(80);

  tcp::StackCallbacks ccb;
  auto push = [&] {
    if (sent < data.size()) {
      sent += s1->send(cc, std::span(data.data() + sent,
                                     data.size() - sent));
    }
  };
  ccb.on_connected = [&](ConnId c, bool ok) {
    ASSERT_TRUE(ok);
    cc = c;
    push();
  };
  ccb.on_sendable = [&](ConnId) { push(); };
  ccb.on_data = [&](ConnId c) {
    std::uint8_t buf[8192];
    std::size_t n;
    while ((n = s1->recv(c, buf)) > 0) {
      echoed.insert(echoed.end(), buf, buf + n);
    }
    push();
  };
  s1->set_callbacks(ccb);
  s1->connect(ip0, 80);

  for (int i = 0; i < 800 && echoed.size() < data.size(); ++i) {
    ev.run_until(ev.now() + sim::ms(5));
  }
  ASSERT_EQ(echoed.size(), data.size());
  EXPECT_EQ(echoed, data);
}

INSTANTIATE_TEST_SUITE_P(
    Pairings, InteropTest,
    ::testing::Values(InteropCase{true, false, 0.0, 1},
                      InteropCase{false, true, 0.0, 2},
                      InteropCase{true, true, 0.0, 3},
                      InteropCase{true, false, 0.01, 4},
                      InteropCase{false, true, 0.01, 5},
                      InteropCase{true, true, 0.01, 6}));

// --- Property: the data-path delivers identical bytes under every
// pipeline topology (correctness is configuration-independent). ---

class TopologyTest : public ::testing::TestWithParam<int> {};

TEST_P(TopologyTest, TransferIntactUnderAnyTopology) {
  core::DatapathConfig cfgs[] = {
      core::ablation_baseline(),   core::ablation_pipelined(),
      core::ablation_threads(),    core::ablation_replicated(),
      core::ablation_flow_groups(), core::x86_config(),
      core::bluefield_config(),
  };
  const auto& dp_cfg = cfgs[GetParam()];

  sim::Domain ev;
  net::Switch sw(ev, sim::Rng(1), 2);
  net::Link l0(ev, sim::Rng(2), {40.0, sim::ns(500), 0.002});
  net::Link l1(ev, sim::Rng(3), {40.0, sim::ns(500), 0.002});
  l0.set_sink(sw.ingress_sink(0));
  l1.set_sink(sw.ingress_sink(1));

  const auto ip0 = net::make_ip(10, 0, 0, 1);
  const auto ip1 = net::make_ip(10, 0, 0, 2);
  host::FlexToeNicConfig cfg;
  cfg.datapath = dp_cfg;
  host::FlexToeNic toe(ev, sim::Rng(4),
                       net::MacAddr::from_u64(0x020000000000ull + ip0), ip0,
                       cfg);
  toe.set_mac_tx(&l0);
  sw.attach(0, &toe.mac_rx());

  baseline::SwTcpConfig ccfg;
  ccfg.mac = net::MacAddr::from_u64(0x020000000000ull + ip1);
  ccfg.ip = ip1;
  baseline::SwTcpStack cli(ev, sim::Rng(5), ccfg);
  cli.set_tx_sink(&l1);
  sw.attach(1, &cli);

  std::vector<std::uint8_t> data(24 * 1024);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 17 + 3);
  }
  std::vector<std::uint8_t> rxed;
  std::size_t sent = 0;
  ConnId cc = tcp::kInvalidConn;

  tcp::StackCallbacks scb;
  scb.on_data = [&](ConnId c) {
    std::uint8_t buf[8192];
    std::size_t n;
    while ((n = toe.stack().recv(c, buf)) > 0) {
      rxed.insert(rxed.end(), buf, buf + n);
    }
  };
  toe.stack().set_callbacks(scb);
  toe.stack().listen(80);

  tcp::StackCallbacks ccb;
  auto push = [&] {
    if (sent < data.size()) {
      sent += cli.send(cc, std::span(data.data() + sent,
                                     data.size() - sent));
    }
  };
  ccb.on_connected = [&](ConnId c, bool) {
    cc = c;
    push();
  };
  ccb.on_sendable = [&](ConnId) { push(); };
  cli.set_callbacks(ccb);
  cli.connect(ip0, 80);

  for (int i = 0; i < 600 && rxed.size() < data.size(); ++i) {
    ev.run_until(ev.now() + sim::ms(5));
  }
  ASSERT_EQ(rxed.size(), data.size());
  EXPECT_EQ(rxed, data);
}

INSTANTIATE_TEST_SUITE_P(Topologies, TopologyTest, ::testing::Range(0, 7));

// --- Property: packets survive serialize->parse for arbitrary field
// combinations (wire-format fuzz). ---

class WireFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(WireFuzzTest, SerializeParseIdentity) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 1337);
  for (int i = 0; i < 300; ++i) {
    net::Packet p;
    p.eth.src = net::MacAddr::from_u64(rng.next_u64() & 0xFFFFFFFFFFFF);
    p.eth.dst = net::MacAddr::from_u64(rng.next_u64() & 0xFFFFFFFFFFFF);
    p.ip.src = static_cast<net::Ipv4Addr>(rng.next_u64());
    p.ip.dst = static_cast<net::Ipv4Addr>(rng.next_u64());
    p.ip.ttl = static_cast<std::uint8_t>(rng.next_range(1, 255));
    p.ip.ecn = static_cast<net::Ecn>(rng.next_below(4));
    p.tcp.sport = static_cast<std::uint16_t>(rng.next_u64());
    p.tcp.dport = static_cast<std::uint16_t>(rng.next_u64());
    p.tcp.seq = static_cast<std::uint32_t>(rng.next_u64());
    p.tcp.ack = static_cast<std::uint32_t>(rng.next_u64());
    p.tcp.flags = static_cast<std::uint8_t>(rng.next_u64());
    p.tcp.window = static_cast<std::uint16_t>(rng.next_u64());
    if (rng.chance(0.5)) {
      p.tcp.ts = net::TcpTsOpt{static_cast<std::uint32_t>(rng.next_u64()),
                               static_cast<std::uint32_t>(rng.next_u64())};
    }
    if (rng.chance(0.3)) {
      p.tcp.mss = static_cast<std::uint16_t>(rng.next_range(500, 9000));
    }
    if (rng.chance(0.2)) {
      p.vlan = net::VlanTag{static_cast<std::uint16_t>(rng.next_u64())};
    }
    p.payload.resize(rng.next_below(2000));
    for (auto& b : p.payload) b = static_cast<std::uint8_t>(rng.next_u64());

    const auto parsed = net::Packet::parse(p.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->tcp.seq, p.tcp.seq);
    EXPECT_EQ(parsed->tcp.ack, p.tcp.ack);
    EXPECT_EQ(parsed->tcp.flags, p.tcp.flags);
    EXPECT_EQ(parsed->payload, p.payload);
    EXPECT_EQ(parsed->ip.ecn, p.ip.ecn);
    EXPECT_EQ(parsed->vlan.has_value(), p.vlan.has_value());
    EXPECT_EQ(parsed->tcp.ts.has_value(), p.tcp.ts.has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzzTest, ::testing::Range(1, 5));

}  // namespace
}  // namespace flextoe
