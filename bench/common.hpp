// Shared scaffolding for the paper-reproduction benches. Stack selection
// and server construction moved into src/workload/stacks.hpp (the
// scenario engine binds stacks to workloads there); this header re-
// exports them into benchx so bench files keep reading naturally. Each
// bench binary regenerates one table or figure from the paper's
// evaluation (§5) through the harness driver (harness.hpp); absolute
// numbers are simulator-scale, EXPERIMENTS.md compares shapes against
// the paper.
#pragma once

#include "app/kv.hpp"
#include "app/rpc_app.hpp"
#include "app/testbed.hpp"
#include "baseline/personality.hpp"
#include "harness.hpp"
#include "workload/scenario.hpp"
#include "workload/stacks.hpp"

namespace flextoe::benchx {

using app::Testbed;

using workload::Stack;
using workload::add_server;
using workload::all_stacks;
using workload::app_cycles;
using workload::personality;
using workload::stack_name;
using workload::with_stack_cores;

}  // namespace flextoe::benchx
