// Hierarchical timing-wheel battery (ISSUE: million-connection
// scale-out). Two layers:
//
//  1. Differential: the wheel and the Carousel implement the same
//     sched::TimerService contract; under any op script whose pacing
//     deadlines stay inside the wheel's level-0 horizon (256 granules =
//     256 us at defaults — no cascades), the two engines must produce
//     byte-identical (time, flow, sent) trigger sequences. Seeded random
//     arm/cancel/rearm scripts, same-tick ties, park/kick races and
//     cancel-while-queued all run through both engines and diff.
//
//     Scripts never re-arm a cancelled flow: that is the one documented
//     divergence (the wheel's O(1) cancel frees slot residency eagerly,
//     the Carousel leaves a dead entry to expire lazily), covered by
//     wheel-only tests below instead.
//
//  2. Wheel-only: cascade boundaries at every level (small-geometry
//     wheel so level strides are cheap to cross), far-deadline clamp,
//     eager-cancel residency release and post-cancel revival, and the
//     flat-storage footprint audit.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "core/config.hpp"
#include "core/datapath.hpp"
#include "sched/carousel.hpp"
#include "sched/timing_wheel.hpp"
#include "sim/domain.hpp"
#include "sim/time.hpp"

namespace flextoe::sched {
namespace {

using FlowId = TimerService::FlowId;

// One recorded TX trigger: when, which flow, what the data-path
// reported sent. Differential tests compare full vectors of these.
struct Trig {
  sim::TimePs t;
  FlowId flow;
  std::uint32_t sent;

  bool operator==(const Trig&) const = default;
};

struct Op {
  enum Kind { kRate, kUpdate, kAdd, kKick, kRemove } kind;
  sim::TimePs at;
  FlowId flow;
  std::uint64_t arg;
};

// Deterministic data-path stand-in: the reported `sent` depends only on
// (flow, per-flow call number), so two engines producing the same call
// sequence see the same responses — and a divergence shows up as a
// sequence mismatch, never as harness noise. Roughly one call in 16
// reports blocked (sent == 0), exercising the park/kick machinery.
std::uint32_t scripted_sent(FlowId flow, std::uint32_t call) {
  const std::uint32_t h = (flow * 2654435761u) ^ (call * 40503u + 1);
  if (h % 16 == 0) return 0;
  return 200 + h % 1249;  // 200..1448 bytes
}

std::vector<Trig> run_script(TimerService& svc, sim::Domain& ev,
                             const std::vector<Op>& ops, sim::TimePs end) {
  std::vector<Trig> out;
  std::vector<std::uint32_t> calls;
  svc.set_trigger([&](FlowId flow) {
    if (calls.size() <= flow) calls.resize(flow + 1, 0);
    const std::uint32_t sent = scripted_sent(flow, calls[flow]++);
    out.push_back({ev.now(), flow, sent});
    return sent;
  });
  for (const Op& op : ops) {
    ev.schedule_at(op.at, [&svc, op] {
      switch (op.kind) {
        case Op::kRate: svc.set_rate(op.flow, op.arg); break;
        case Op::kUpdate: svc.update_avail(op.flow, op.arg); break;
        case Op::kAdd: svc.add_avail(op.flow, op.arg); break;
        case Op::kKick: svc.kick(op.flow); break;
        case Op::kRemove: svc.remove_flow(op.flow); break;
      }
    });
  }
  ev.run_until(end);
  return out;
}

// Runs `ops` through a default-parameter Carousel and TimingWheel (their
// granularity, service interval and uncongested threshold already agree)
// and requires identical trigger sequences.
void expect_equivalent(const std::vector<Op>& ops, sim::TimePs end) {
  sim::Domain ev_car, ev_whl;
  Carousel car(ev_car);
  TimingWheel whl(ev_whl);
  const std::vector<Trig> a = run_script(car, ev_car, ops, end);
  const std::vector<Trig> b = run_script(whl, ev_whl, ops, end);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].t, b[i].t) << "trigger " << i;
    EXPECT_EQ(a[i].flow, b[i].flow) << "trigger " << i;
    EXPECT_EQ(a[i].sent, b[i].sent) << "trigger " << i;
  }
}

// Seeded random op script. Pacing rates stay >= 10 MB/s so every
// re-arm deadline (ps_per_byte * sent <= 1e5 * 1448 ps ~ 145 us) sits
// inside the wheel's 256-granule level-0 horizon: the equivalence
// window. Cancelled flows are retired — never referenced again.
std::vector<Op> random_script(std::uint64_t seed, std::size_t num_flows,
                              std::size_t num_ops, sim::TimePs span) {
  std::mt19937_64 rng(seed);
  std::vector<Op> ops;
  std::vector<FlowId> live;
  for (FlowId f = 0; f < num_flows; ++f) {
    live.push_back(f);
    // 1 in 4 uncongested (round-robin bypass), the rest paced in
    // [10 MB/s, 1 GB/s].
    const std::uint64_t rate =
        rng() % 4 == 0 ? 0 : 10'000'000 + rng() % 990'000'000;
    ops.push_back({Op::kRate, 0, f, rate});
  }
  sim::TimePs t = 0;
  for (std::size_t i = 0; i < num_ops && !live.empty(); ++i) {
    t += rng() % (span / num_ops);
    const FlowId f = live[rng() % live.size()];
    switch (rng() % 8) {
      case 0:  // retire (cancel): no later op may touch this flow
        ops.push_back({Op::kRemove, t, f, 0});
        live.erase(std::find(live.begin(), live.end(), f));
        break;
      case 1:
      case 2:
        ops.push_back({Op::kAdd, t, f, 1 + rng() % 5000});
        break;
      case 3:
        ops.push_back({Op::kKick, t, f, 0});
        break;
      default:
        ops.push_back({Op::kUpdate, t, f, 1 + rng() % 20000});
        break;
    }
  }
  return ops;
}

// ------------------------------------------------ differential battery

TEST(TimingWheelDifferential, SeededRandomArmCancelRearm) {
  for (std::uint64_t seed : {1ull, 42ull, 20260809ull}) {
    SCOPED_TRACE(seed);
    expect_equivalent(random_script(seed, 32, 400, sim::ms(20)),
                      sim::ms(40));
  }
}

TEST(TimingWheelDifferential, ManyFlowsShortScript) {
  expect_equivalent(random_script(7, 256, 1500, sim::ms(10)), sim::ms(25));
}

TEST(TimingWheelDifferential, SameTickTies) {
  // Two flows paced identically, armed back-to-back at the same instant:
  // their deadlines quantize to the same slot and must pop in the same
  // (insertion) order from both engines, tick after tick.
  std::vector<Op> ops;
  ops.push_back({Op::kRate, 0, 1, 100'000'000});
  ops.push_back({Op::kRate, 0, 2, 100'000'000});
  ops.push_back({Op::kUpdate, sim::us(3), 1, 8000});
  ops.push_back({Op::kUpdate, sim::us(3), 2, 8000});
  expect_equivalent(ops, sim::ms(5));
}

TEST(TimingWheelDifferential, CancelWhileQueuedIsLazySkipped) {
  // The flow is cancelled right after arming, while it sits in the
  // ready queue: both engines skip it lazily at the next service.
  std::vector<Op> ops;
  ops.push_back({Op::kRate, 0, 3, 50'000'000});
  ops.push_back({Op::kUpdate, sim::us(1), 3, 6000});
  ops.push_back({Op::kRemove, sim::us(1), 3, 0});
  // A live companion keeps the service loop observable.
  ops.push_back({Op::kRate, 0, 4, 50'000'000});
  ops.push_back({Op::kUpdate, sim::us(2), 4, 6000});
  expect_equivalent(ops, sim::ms(2));
}

TEST(TimingWheelDifferential, ParkAndKickRevival) {
  // scripted_sent reports blocked (~1/16 of calls) at deterministic
  // points; periodic kicks then revive every parked flow. Park points
  // and revival order must line up exactly across both engines.
  std::vector<Op> ops;
  for (FlowId f = 0; f < 8; ++f) {
    ops.push_back({Op::kRate, 0, f, 20'000'000 + f * 10'000'000});
    ops.push_back({Op::kUpdate, sim::us(1 + f), f, 50'000});
  }
  for (int k = 1; k <= 20; ++k) {
    for (FlowId f = 0; f < 8; ++f) {
      ops.push_back({Op::kKick, sim::us(100) * k, f, 0});
    }
  }
  expect_equivalent(ops, sim::ms(10));
}

// --------------------------------------------------- wheel-only tests

TEST(TimingWheel, RateLimitedPacing) {
  // Mirror of Carousel.RateLimitedPacing: 100 MB/s and 1000-byte sends
  // pace triggers ~10 us apart on the 1 us slot grid.
  sim::Domain ev;
  TimingWheel whl(ev);
  std::vector<sim::TimePs> at;
  whl.set_trigger([&](FlowId) {
    at.push_back(ev.now());
    return 1000u;
  });
  whl.set_rate(7, 100'000'000);
  whl.update_avail(7, 5000);
  ev.run_until(sim::ms(1));
  ASSERT_EQ(at.size(), 5u);
  for (std::size_t i = 1; i < at.size(); ++i) {
    EXPECT_GE(at[i] - at[i - 1], sim::us(9));
    EXPECT_LE(at[i] - at[i - 1], sim::us(12));
  }
}

// Small-geometry wheel for cascade tests: 8 slots/level, 3 levels.
// Level strides are 1, 8, 64 granules; horizon 512 granules (512 us).
TimingWheelParams small_geometry() {
  TimingWheelParams p;
  p.slots_per_level = 8;
  p.levels = 3;
  return p;
}

// Paces one flow so each re-arm deadline is `off_us` granules out, runs
// three triggers, and returns the observed inter-trigger spacings.
std::vector<sim::TimePs> pacing_gaps(TimingWheel& whl, sim::Domain& ev,
                                     std::uint64_t off_us) {
  std::vector<sim::TimePs> at;
  whl.set_trigger([&](FlowId) {
    at.push_back(ev.now());
    return 1000u;
  });
  // set_rate divides: ps_per_byte = 1e12 / bps; with 1000-byte sends the
  // deadline offset is ps_per_byte * 1000 ps = off_us us.
  whl.set_rate(1, 1'000'000'000ull / off_us);
  whl.update_avail(1, 3000);
  ev.run_until(sim::us(1) * (4 * off_us + 100));
  EXPECT_EQ(at.size(), 3u);
  std::vector<sim::TimePs> gaps;
  for (std::size_t i = 1; i < at.size(); ++i) gaps.push_back(at[i] - at[i - 1]);
  return gaps;
}

TEST(TimingWheelCascade, Level0NoCascade) {
  sim::Domain ev;
  TimingWheel whl(ev, small_geometry());
  for (sim::TimePs gap : pacing_gaps(whl, ev, 5)) {
    EXPECT_GE(gap, sim::us(4));
    EXPECT_LE(gap, sim::us(7));
  }
  EXPECT_EQ(whl.cascades(), 0u);
}

TEST(TimingWheelCascade, Level1CascadesOnce) {
  sim::Domain ev;
  TimingWheel whl(ev, small_geometry());
  // 20 granules: files at level 1 (stride 8), cascades back into level 0.
  for (sim::TimePs gap : pacing_gaps(whl, ev, 20)) {
    EXPECT_GE(gap, sim::us(19));
    EXPECT_LE(gap, sim::us(22));
  }
  EXPECT_GT(whl.cascades(), 0u);
}

TEST(TimingWheelCascade, Level2CascadesTwice) {
  sim::Domain ev;
  TimingWheel whl(ev, small_geometry());
  // 100 granules: level 2 (stride 64) -> level 1 -> level 0. The due
  // tick is stored once at arm time, so two cascades add no drift.
  for (sim::TimePs gap : pacing_gaps(whl, ev, 100)) {
    EXPECT_GE(gap, sim::us(99));
    EXPECT_LE(gap, sim::us(102));
  }
  EXPECT_GE(whl.cascades(), 2u);
}

TEST(TimingWheelCascade, ExactStrideBoundaryOffsets) {
  // Offsets exactly at S and S^2 land on the first slot of the next
  // level; the fire tick must still be exact.
  for (std::uint64_t off : {8ull, 64ull}) {
    SCOPED_TRACE(off);
    sim::Domain ev;
    TimingWheel whl(ev, small_geometry());
    for (sim::TimePs gap : pacing_gaps(whl, ev, off)) {
      EXPECT_GE(gap, sim::us(1) * (off - 1));
      EXPECT_LE(gap, sim::us(1) * (off + 2));
    }
  }
}

TEST(TimingWheelCascade, BeyondHorizonFiresAtTrueDeadline) {
  sim::Domain ev;
  TimingWheel whl(ev, small_geometry());
  // 600 granules exceeds the 512-granule horizon: the flow parks in the
  // top level and re-files by its stored due tick at each cascade, so
  // it fires at the true deadline — not clamped early like Carousel's
  // single-level wheel would.
  for (sim::TimePs gap : pacing_gaps(whl, ev, 600)) {
    EXPECT_GE(gap, sim::us(599));
    EXPECT_LE(gap, sim::us(602));
  }
  EXPECT_GT(whl.cascades(), 0u);
}

TEST(TimingWheel, EagerCancelReleasesWheelResidency) {
  sim::Domain ev;
  TimingWheel whl(ev);
  int calls = 0;
  whl.set_trigger([&](FlowId) {
    ++calls;
    return 1000u;
  });
  whl.set_rate(9, 1'000'000);  // 1 MB/s -> 1 ms between sends
  whl.update_avail(9, 5000);
  ev.run_until(sim::us(100));  // first trigger done, re-armed 1 ms out
  EXPECT_EQ(calls, 1);
  ASSERT_EQ(whl.wheel_resident(), 1u);
  // O(1) cancel: residency drops immediately (the Carousel would keep a
  // dead entry in the slot until it expires).
  whl.remove_flow(9);
  EXPECT_EQ(whl.wheel_resident(), 0u);
  ev.run_until(sim::ms(5));
  EXPECT_EQ(calls, 1);  // never fires again
}

TEST(TimingWheel, RevivalAfterEagerCancelReArmsCleanly) {
  sim::Domain ev;
  TimingWheel whl(ev);
  int calls = 0;
  whl.set_trigger([&](FlowId) {
    ++calls;
    return 1000u;
  });
  whl.set_rate(9, 1'000'000);
  whl.update_avail(9, 5000);
  ev.run_until(sim::us(100));
  whl.remove_flow(9);  // cancelled while wheel-resident
  ev.run_until(sim::us(200));
  // Revive the id (new connection incarnation): no residual slot
  // residency blocks the re-arm — it fires immediately.
  whl.set_rate(9, 1'000'000);
  whl.update_avail(9, 2000);
  ev.run_until(sim::us(300));
  EXPECT_EQ(calls, 2);
}

TEST(TimingWheel, CancelAfterFireIsIdempotent) {
  sim::Domain ev;
  TimingWheel whl(ev);
  int calls = 0;
  whl.set_trigger([&](FlowId) {
    ++calls;
    return 5000u;  // drains avail in one shot: flow leaves the wheel
  });
  whl.set_rate(2, 100'000'000);
  whl.update_avail(2, 4000);
  ev.run_until(sim::ms(1));
  EXPECT_EQ(calls, 1);
  whl.remove_flow(2);  // after the flow already fired and drained
  whl.remove_flow(2);  // double-cancel
  ev.run_until(sim::ms(2));
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(whl.wheel_resident(), 0u);
}

TEST(TimingWheel, FootprintIsFlatPerFlow) {
  sim::Domain ev;
  TimingWheel whl(ev);
  const std::size_t empty = whl.footprint_bytes();
  const std::size_t n = 10'000;
  for (FlowId f = 0; f < n; ++f) whl.set_rate(f, 0);
  EXPECT_EQ(whl.flows_tracked(), n);
  const std::size_t full = whl.footprint_bytes();
  // Flat vector storage: the marginal cost per tracked flow is one Flow
  // entry (intrusive links included), not a hash node + chain pointers.
  EXPECT_GE(full, empty + n * sizeof(std::uint64_t));
  EXPECT_LE((full - empty) / n, 128u);
}

// ------------------------------------------- engine selection (kAuto)

core::Datapath::HostIface null_host() {
  core::Datapath::HostIface host;
  host.notify = [](const host::CtxDesc&) {};
  host.to_control = [](const net::PacketPtr&) {};
  host.peer_fin = [](tcp::ConnId) {};
  return host;
}

TEST(TimerImplSelection, DefaultConfigKeepsCarousel) {
  sim::Domain ev;
  core::Datapath dp(ev, core::agilio_cx40_config(), null_host());
  EXPECT_STREQ(dp.scheduler().impl_name(), "carousel");
}

TEST(TimerImplSelection, AutoPicksWheelAtScale) {
  sim::Domain ev;
  core::DatapathConfig cfg;
  cfg.max_conns = 1'000'000;
  core::Datapath dp(ev, cfg, null_host());
  EXPECT_STREQ(dp.scheduler().impl_name(), "wheel");
}

TEST(TimerImplSelection, ExplicitOverridesBeatAuto) {
  sim::Domain ev;
  core::DatapathConfig cfg;
  cfg.max_conns = 1'000'000;
  cfg.timer = core::TimerImpl::kCarousel;
  core::Datapath a(ev, cfg, null_host());
  EXPECT_STREQ(a.scheduler().impl_name(), "carousel");
  cfg.max_conns = 1024;
  cfg.timer = core::TimerImpl::kWheel;
  core::Datapath b(ev, cfg, null_host());
  EXPECT_STREQ(b.scheduler().impl_name(), "wheel");
}

}  // namespace
}  // namespace flextoe::sched
