// Event domains: the unit of parallelism in the simulator.
//
// A Domain is an EventQueue plus the per-island simulation context that
// must never be shared across threads: a deterministic Rng stream and
// the inbound mailboxes other domains post events through. Every
// simulated component (switch, links, FPCs, DMA, scheduler, stacks,
// apps) takes a `sim::Domain&` where it used to take a
// `sim::EventQueue&`; a stand-alone Domain behaves exactly like the
// queue it derives from, so the default single-domain simulation is
// byte-identical to the pre-domain simulator.
//
// DomainScheduler runs N domains under conservative time-window
// synchronization (the classic CMB-style parallel-DES discipline, cf.
// SimGrid's kernel/actor split):
//
//   epoch:  next    = min over domains of earliest pending event
//           horizon = next + lookahead
//           parallel: each domain runs all events with t < horizon
//           barrier;  each domain drains its inbound mailboxes
//           barrier;  repeat until no events remain
//
// Safety: a domain executing an event at time t may affect another
// domain no earlier than t + lookahead >= horizon, so every event below
// the horizon is causally independent across domains. Cross-domain
// posts (Domain::post) are therefore required to carry at least
// `lookahead` of delay — the minimum cross-island latency at the
// sequencer/reorder/egress boundary nodes — and land in the receiver's
// mailbox, drained only at epoch boundaries.
//
// Determinism: the island->thread mapping is fixed (domain id modulo
// thread count), windows are computed from event times only (never from
// wall-clock), every domain's own execution is sequential, and mailbox
// drain order is fixed (senders in id order, per-sender FIFO). The
// result: a given seed produces the same simulation event-for-event at
// any thread count, including 1.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/mailbox.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "trace/trace.hpp"

namespace flextoe::sim {

class DomainScheduler;

// Process-wide default worker-thread budget for DomainScheduler and the
// scenario batch runner (workload::run_scenario_batch). Set once from
// the CLI (bench harness --threads) before any simulation starts;
// defaults to 1 (fully sequential, the deterministic baseline).
unsigned default_sim_threads();
void set_default_sim_threads(unsigned n);

class Domain : public EventQueue {
 public:
  struct Params {
    std::uint32_t id = 0;
    std::uint64_t seed = 1;
  };

  Domain() : Domain(Params{}) {}
  explicit Domain(Params p) : id_(p.id), rng_(p.seed) {}

  std::uint32_t id() const { return id_; }
  // The domain-local random stream. Components fork sub-streams off it
  // so results stay independent of event interleaving elsewhere.
  Rng& rng() { return rng_; }

  // Cross-domain post: run `cb` at absolute time `t` on `to`'s queue.
  // Outside a DomainScheduler run (or to == this) this is a plain
  // schedule_at. Under a scheduler it lands in `to`'s mailbox from this
  // domain, drained at the next epoch boundary; `t` must then be at
  // least lookahead past now() (debug-checked) — the conservative-sync
  // safety condition.
  void post(Domain& to, TimePs t, EventQueue::Callback cb);

  // This domain's flight recorder (trace/trace.hpp). Non-null only
  // while tracing is compiled in AND runtime-enabled; every record site
  // hangs off it:
  //   if (trace::Ring* r = dom.trace_ring()) r->record(...);
  // so when tracing is off a site costs one relaxed load + branch, and
  // a `-DFLEXTOE_TRACE=OFF` build folds it away entirely.
  trace::Ring* trace_ring() {
    if (!trace::enabled()) return nullptr;
    if (!trace_ring_) attach_trace_ring();
    return trace_ring_.get();
  }

 private:
  friend class DomainScheduler;

  // Epoch-boundary mailbox drain: senders in id order, per-sender FIFO.
  // Arrivals get fresh FIFO sequence numbers in the local queue, after
  // everything this domain scheduled during its own window — an order
  // that depends only on simulated time, never on thread interleaving.
  void drain_inboxes();
  void advance_clock(TimePs t) { advance_to(t); }

  void attach_trace_ring();  // cold path: registers with trace::Tracer

  std::uint32_t id_;
  Rng rng_;
  // Set while attached to a running DomainScheduler.
  bool scheduled_ = false;
  TimePs min_post_delay_ = 0;  // scheduler lookahead (debug check)
  std::vector<std::unique_ptr<Mailbox>> inboxes_;  // by sender id
  std::shared_ptr<trace::Ring> trace_ring_;
};

class DomainScheduler {
 public:
  struct Params {
    // Worker threads; 0 = default_sim_threads(). Clamped to the domain
    // count. The domain->thread mapping is id % threads — fixed, so a
    // run is reproducible for a given (seed, domain count) at any
    // thread setting.
    unsigned threads = 0;
    // Conservative epoch lookahead: the minimum delay every cross-
    // domain post carries (= min cross-island latency at the boundary
    // nodes). Larger lookahead -> wider epochs -> fewer barriers.
    TimePs lookahead = us(1);
    std::size_t mailbox_capacity = 1024;
  };

  // Creates `domains` event domains with ids 0..domains-1 and
  // independent seed-derived Rng streams, fully meshed with mailboxes.
  DomainScheduler(std::size_t domains, std::uint64_t seed);
  DomainScheduler(std::size_t domains, std::uint64_t seed, Params p);
  ~DomainScheduler();
  DomainScheduler(const DomainScheduler&) = delete;
  DomainScheduler& operator=(const DomainScheduler&) = delete;

  Domain& domain(std::size_t i) { return *domains_[i]; }
  std::size_t size() const { return domains_.size(); }

  // Runs epochs until every domain queue and mailbox is empty.
  void run_all();
  // Runs all events with timestamp <= t, then advances every domain's
  // clock to t (the multi-domain analogue of EventQueue::run_until).
  void run_until(TimePs t);

  // ---- Introspection ----
  std::uint64_t epochs() const { return epochs_; }
  unsigned threads_used() const { return threads_used_; }
  TimePs lookahead() const { return params_.lookahead; }
  std::uint64_t executed() const;
  std::uint64_t mailbox_spills() const;

 private:
  void run_epochs(TimePs limit);
  void run_window(unsigned worker, TimePs horizon);
  void drain_phase(unsigned worker);
  TimePs global_next() const;
  TimePs horizon_for(TimePs next, TimePs limit) const;

  Params params_;
  std::vector<std::unique_ptr<Domain>> domains_;
  std::uint64_t epochs_ = 0;
  unsigned threads_used_ = 0;
};

}  // namespace flextoe::sim
