// Figure 13: connection scalability — throughput vs number of
// connections (64 B echo, one RPC in flight per connection). Stresses the
// NIC memory hierarchy: per-connection batching vanishes, so every
// pipeline stage misses its caches. One series per stack; rows are
// connection counts.
#include "common.hpp"

using namespace flextoe;
using namespace flextoe::benchx;

namespace {

double run_point(Stack s, unsigned conns, std::uint64_t seed, sim::TimePs warm,
                 sim::TimePs span) {
  Testbed tb(seed);
  // 64 B RPCs need tiny buffers; shrink to bound testbed memory.
  host::FlexToeNicConfig toe_cfg;
  app::NodeParams np;
  np.cores = 8;
  // 100G MAC isolates NIC compute/memory scaling from line rate
  // (64 B echo wire overhead saturates 40G before the caches bind).
  np.nic_gbps = 100.0;
  np.sockbuf_bytes = 8 * 1024;
  Testbed::Node* server_ptr = nullptr;
  if (s == Stack::FlexToe) {
    server_ptr = &tb.add_flextoe_node(np, toe_cfg);
  } else {
    auto pers = personality(s);
    np.serial_fraction = pers.serial_fraction;
    server_ptr = &tb.add_sw_node(np, pers);
  }
  auto& server = *server_ptr;
  app::EchoServer srv(tb.ev(), *server.stack, {.port = 7},
                      server.cpu.get());

  // Five client machines, as in the paper.
  std::vector<std::unique_ptr<app::ClosedLoopClient>> clients;
  const unsigned nclients = 5;
  for (unsigned i = 0; i < nclients; ++i) {
    auto& cn = tb.add_client_node(100.0, /*sockbuf=*/8 * 1024);
    app::ClosedLoopClient::Params cp;
    cp.connections = conns / nclients;
    cp.pipeline = 1;  // a single 64 B RPC in flight per connection
    cp.request_size = 64;
    cp.connect_stagger = sim::us(2);
    clients.push_back(std::make_unique<app::ClosedLoopClient>(
        tb.ev(), *cn.stack, server.ip, cp));
    clients.back()->start();
  }

  // Allow all handshakes to complete.
  tb.run_for(warm);
  std::uint64_t base = 0;
  for (auto& c : clients) base += c->completed();
  tb.run_for(span);
  std::uint64_t done = 0;
  for (auto& c : clients) done += c->completed();
  done -= base;
  return static_cast<double>(done) / sim::to_sec(span) / 1e6;
}

}  // namespace

BENCH_SCENARIO(fig13, "throughput (MOps) vs connections (64B echo)") {
  const auto conn_counts = ctx.pick<std::vector<unsigned>>(
      {1024, 2048, 8192, 16384}, {256});
  const auto warm = ctx.pick(sim::ms(40), sim::ms(10));
  const auto span = ctx.pick(sim::ms(20), sim::ms(4));

  for (unsigned conns : conn_counts) {
    for (Stack s : all_stacks()) {
      const double mops = ctx.measure([&](int rep) {
        return run_point(s, conns, ctx.seed(41 + static_cast<unsigned>(rep)), warm,
                         span);
      });
      ctx.report().series(stack_name(s)).set(std::to_string(conns), "mops",
                                             mops);
    }
  }
  ctx.report().note(
      "Paper shape: FlexTOE ~3.3x Linux up to 2K conns (CLS-cached), "
      "declines ~24% by 8K (EMEM cache strained) then plateaus;\n"
      "TAS ~1.5x FlexTOE at scale (big host LLC); Linux declines sharply; "
      "Chelsio worst (epoll overhead).");
}
