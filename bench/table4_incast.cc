// Table 4: FlexTOE congestion control under incast. A FlexTOE machine
// sends 64 KB RPCs over many connections toward a server behind a shaped
// switch port (incast degree d -> 40/d Gbps) with WRED tail drops and ECN
// marking. Control-plane-driven DCTCP paces the offloaded flows through
// Carousel; the ablation turns that off (scheduler runs unpaced).
#include <algorithm>

#include "common.hpp"

using namespace flextoe;
using namespace flextoe::benchx;

namespace {

struct Res {
  double gbps;
  double p9999_ms;
  double jfi;
};

Res run_case(unsigned degree, unsigned conns, bool cc_on) {
  Testbed tb(73);
  // Node 0: FlexTOE sender (the system under test).
  auto& sender = tb.add_flextoe_node({.cores = 8});
  sender.toe->control_plane().set_cc_enabled(cc_on);
  // Node 1: receiver running a 32 B-response echo service.
  auto& receiver = tb.add_client_node();
  app::EchoServer srv(tb.ev(), *receiver.stack,
                      {.port = 7, .response_size = 32});

  // Shaped port toward the receiver: incast degree d -> 40/d Gbps, with
  // a shallow WRED buffer.
  tb.the_switch().port_params(1).gbps = 40.0 / degree;
  tb.the_switch().port_params(1).queue_bytes = 256 * 1024;
  tb.the_switch().port_params(1).ecn_threshold = 64 * 1024;

  app::ClosedLoopClient::Params cp;
  cp.connections = conns;
  cp.pipeline = 1;
  cp.request_size = 64 * 1024;
  cp.response_size = 32;
  app::ClosedLoopClient cli(tb.ev(), *sender.stack, receiver.ip, cp);
  cli.start();

  tb.run_for(sim::ms(60));
  cli.clear_stats();
  const std::uint64_t base = srv.bytes_rx();
  const sim::TimePs span = sim::ms(250);
  tb.run_for(span);

  Res r;
  r.gbps = static_cast<double>(srv.bytes_rx() - base) * 8.0 /
           sim::to_sec(span) / 1e9;
  r.p9999_ms = cli.latency().percentile(99.99) / 1000.0;
  r.jfi = sim::jains_fairness_index(cli.per_conn_completed());
  return r;
}

}  // namespace

int main() {
  print_header("Table 4: congestion control under incast",
               {"deg", "conns", "Tpt on", "Tpt off", "99.99p on(ms)",
                "99.99p off", "JFI on", "JFI off"});

  struct Case {
    unsigned deg, conns;
  };
  for (Case c : {Case{4, 16}, Case{4, 64}, Case{4, 128}, Case{10, 10},
                 Case{20, 20}}) {
    const Res on = run_case(c.deg, c.conns, true);
    const Res off = run_case(c.deg, c.conns, false);
    print_cell(static_cast<double>(c.deg), 0);
    print_cell(static_cast<double>(c.conns), 0);
    print_cell(on.gbps, 2);
    print_cell(off.gbps, 2);
    print_cell(on.p9999_ms, 2);
    print_cell(off.p9999_ms, 2);
    print_cell(on.jfi, 2);
    print_cell(off.jfi, 2);
    end_row();
  }
  std::printf(
      "\nPaper shape: CC achieves the shaped line rate with low tail and "
      "high JFI; disabling it causes excessive drops — tail latency\n"
      "inflated up to ~18x and fairness skewed (JFI down to ~0.46), worst "
      "at higher incast degrees.\n");
  return 0;
}
