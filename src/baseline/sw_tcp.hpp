// A complete software TCP endpoint for the simulated fabric.
//
// This one engine plays several roles in the reproduction:
//  * the client-side stack driving load at FlexTOE servers,
//  * the Linux / TAS / Chelsio baseline stacks (via cost/feature
//    "personalities", see personality.hpp),
//  * the interoperability peer for FlexTOE (§5: "FlexTOE maintains high
//    performance when interoperating with other network stacks").
//
// It implements the full TCP state machine over the byte-exact packet
// substrate: 3-way handshake, data transfer with flow control, DCTCP
// congestion control with ECN echo, timestamp-based RTT estimation,
// duplicate-ACK fast retransmit, RTO with exponential backoff, go-back-N
// or SACK-quality recovery (per personality), and FIN/RST teardown.
// Host processing costs are charged to a CpuPool per packet/operation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "net/packet_pool.hpp"
#include "sim/cpu.hpp"
#include "sim/domain.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "tcp/byte_ring.hpp"
#include "tcp/flow.hpp"
#include "tcp/ooo.hpp"
#include "tcp/rtt.hpp"
#include "tcp/seq.hpp"
#include "tcp/stack_iface.hpp"

namespace flextoe::baseline {

// Host cycles charged per operation; defaults are zero (ideal stack).
struct SwTcpCosts {
  std::uint32_t driver_rx = 0;   // NIC driver, per received segment
  std::uint32_t driver_tx = 0;   // NIC driver, per transmitted segment
  std::uint32_t stack_rx = 0;    // TCP/IP processing, per received segment
  std::uint32_t stack_tx = 0;    // TCP/IP processing, per transmitted segment
  std::uint32_t sock_op = 0;     // sockets layer, per send()/recv() call
  std::uint32_t other_op = 0;    // kernel crossings etc., per send()/recv()
  std::uint32_t copy_per_kb = 0; // payload copy cost per KiB (0 = free)
};

struct SwTcpConfig {
  net::MacAddr mac;
  net::Ipv4Addr ip = 0;
  std::uint32_t mss = tcp::kDefaultMss;
  std::size_t sockbuf_bytes = 512 * 1024;
  tcp::OooMode ooo = tcp::OooMode::Single;
  bool go_back_n = true;     // false: SACK-quality single-segment rtx (Linux)
  bool ecn = true;           // DCTCP ECT marking + ECE echo
  bool delayed_ack = false;  // coalesce ACKs (off: ack every segment)
  SwTcpCosts costs;
  std::uint64_t init_cwnd_segments = 10;
  std::uint64_t max_cwnd_bytes = 2 * 1024 * 1024;
  sim::TimePs min_rto = sim::ms(1);
  sim::TimePs max_rto = sim::ms(200);
  sim::TimePs time_wait = sim::ms(1);
};

class SwTcpStack final : public tcp::StackIface, public net::PacketSink {
 public:
  SwTcpStack(sim::Domain& ev, sim::Rng rng, SwTcpConfig cfg);
  ~SwTcpStack() override;

  // Wiring.
  void set_tx_sink(net::PacketSink* sink) { tx_sink_ = sink; }
  void set_cpu(sim::CpuPool* cpu) { cpu_ = cpu; }
  void set_gateway_mac(net::MacAddr mac) { gateway_mac_ = mac; }

  // StackIface.
  void set_callbacks(tcp::StackCallbacks cbs) override { cbs_ = std::move(cbs); }
  void listen(std::uint16_t port) override;
  tcp::ConnId connect(net::Ipv4Addr remote_ip,
                      std::uint16_t remote_port) override;
  std::size_t send(tcp::ConnId c, std::span<const std::uint8_t> data) override;
  std::size_t recv(tcp::ConnId c, std::span<std::uint8_t> out) override;
  std::size_t rx_available(tcp::ConnId c) const override;
  std::size_t tx_space(tcp::ConnId c) const override;
  void close(tcp::ConnId c) override;
  net::Ipv4Addr local_ip() const override { return cfg_.ip; }

  // PacketSink (NIC RX).
  void deliver(const net::PacketPtr& pkt) override;

  // Introspection for tests and benches.
  enum class State : std::uint8_t {
    Closed,
    Listen,
    SynSent,
    SynRcvd,
    Established,
    FinWait1,
    FinWait2,
    CloseWait,
    LastAck,
    Closing,
    TimeWait,
  };
  State conn_state(tcp::ConnId c) const;
  std::uint64_t retransmits() const { return retransmits_; }
  std::uint64_t fast_retransmits() const { return fast_retransmits_; }
  std::uint64_t timeouts() const { return timeouts_; }
  std::uint64_t segs_rx() const { return segs_rx_; }
  std::uint64_t segs_tx() const { return segs_tx_; }
  std::uint64_t bytes_delivered() const { return bytes_delivered_; }
  std::uint64_t cwnd_bytes(tcp::ConnId c) const;
  const net::MacAddr& mac() const { return cfg_.mac; }
  // Recycled allocator behind every segment this stack emits (client
  // stacks are segment producers on the data path too).
  const net::PacketPool& pkt_pool() const { return pool_; }

  // Debug/diagnostic snapshot of one connection's sequence state.
  struct ConnDebug {
    tcp::SeqNum snd_una = 0;
    tcp::SeqNum snd_nxt = 0;
    tcp::SeqNum rcv_nxt = 0;
    std::uint32_t snd_wnd = 0;
    std::size_t tx_used = 0;
    std::size_t rx_used = 0;
  };
  ConnDebug conn_debug(tcp::ConnId c) const;

 private:
  struct Conn {
    tcp::FlowTuple tuple;
    State state = State::Closed;
    net::MacAddr peer_mac;

    // Send side.
    tcp::SeqNum iss = 0;
    tcp::SeqNum snd_una = 0;
    tcp::SeqNum snd_nxt = 0;
    tcp::SeqNum snd_max = 0;  // highest seq ever sent (go-back-N rewinds
                              // snd_nxt; ACKs up to snd_max remain valid)
    std::uint32_t snd_wnd = 0;   // peer-advertised window
    std::uint32_t peer_mss = tcp::kDefaultMss;
    tcp::ByteRing tx;
    bool fin_pending = false;    // app closed; FIN after tx drains
    bool fin_sent = false;
    tcp::SeqNum fin_seq = 0;

    // DCTCP window state.
    std::uint64_t cwnd = 0;
    std::uint64_t ssthresh = 0;
    double alpha = 0.0;
    std::uint64_t acked_win = 0;   // bytes ACKed in current observation wnd
    std::uint64_t ecn_win = 0;     // of which ECN-echoed
    tcp::SeqNum alpha_seq = 0;     // window boundary for alpha update

    // Receive side.
    tcp::SeqNum irs = 0;
    tcp::SeqNum rcv_nxt = 0;
    tcp::ByteRing rx;
    tcp::OooTracker ooo;
    bool peer_fin = false;      // FIN consumed (rcv side finished)
    bool rx_win_closed = false; // advertised zero window at some point
    bool cbs_closed = false;    // on_close already delivered

    // Loss recovery.
    std::uint32_t dupacks = 0;
    std::uint64_t rto_gen = 0;  // invalidates stale timer events
    tcp::RttEstimator rtt;
    tcp::SeqNum high_rtx = 0;   // fast-rtx dedup within one window

    // ECN echo state.
    bool ece_pending = false;

    // Timestamps.
    std::uint32_t ts_recent = 0;

    // Per-conn processing serialization on the CPU pool.
    sim::TimePs cpu_chain = 0;

    std::uint64_t bytes_rxed = 0;
    std::uint64_t bytes_acked = 0;

    Conn(std::size_t bufsz, tcp::OooMode mode)
        : tx(bufsz), rx(bufsz), ooo(mode) {}
  };

  Conn* get(tcp::ConnId c) const;
  tcp::ConnId alloc_conn(const tcp::FlowTuple& t, net::MacAddr peer_mac);
  void free_conn(tcp::ConnId c);

  // RX path (after CPU charge).
  void process_segment(const net::PacketPtr& pkt);
  void handle_listen_syn(const net::PacketPtr& pkt);
  void handle_conn_segment(tcp::ConnId cid, const net::PacketPtr& pkt);
  void process_ack(tcp::ConnId cid, Conn& c, const net::Packet& pkt);
  void process_payload(tcp::ConnId cid, Conn& c, const net::Packet& pkt);

  // TX path.
  void try_transmit(tcp::ConnId cid);
  void emit_segment(tcp::ConnId cid, Conn& c, tcp::SeqNum seq,
                    std::uint32_t len, std::uint8_t extra_flags);
  void send_ack(tcp::ConnId cid, Conn& c);
  void send_ctrl(const tcp::FlowTuple& t, net::MacAddr peer_mac,
                 tcp::SeqNum seq, tcp::SeqNum ack, std::uint8_t flags,
                 std::optional<std::uint16_t> mss_opt,
                 std::uint32_t ts_ecr);
  void xmit(const net::PacketPtr& pkt);

  // DCTCP helpers.
  void cc_on_ack(Conn& c, std::uint32_t acked, bool ece);
  void cc_on_fast_rtx(Conn& c);
  void cc_on_timeout(Conn& c);
  std::uint64_t effective_window(const Conn& c) const;

  // Timers.
  void arm_rto(tcp::ConnId cid, Conn& c);
  void on_rto(tcp::ConnId cid, std::uint64_t gen);

  std::uint32_t now_ts() const {
    return static_cast<std::uint32_t>(ev_.now() / sim::kPsPerUs);
  }
  std::uint16_t adv_window(const Conn& c) const;
  void notify_data(tcp::ConnId cid, Conn& c);
  void maybe_close_notify(tcp::ConnId cid, Conn& c);
  net::MacAddr resolve_mac(const Conn& c) const;

  sim::Domain& ev_;
  sim::Rng rng_;
  SwTcpConfig cfg_;
  // Pooled Packet slots for emit_segment/send_ack/send_ctrl; packets
  // already serialized onto links safely outlive a destroyed stack.
  net::PacketPool pool_;
  net::PacketSink* tx_sink_ = nullptr;
  sim::CpuPool* cpu_ = nullptr;
  net::MacAddr gateway_mac_{};  // dst MAC fallback (switch learns anyway)
  tcp::StackCallbacks cbs_;

  std::vector<std::unique_ptr<Conn>> conns_;
  std::unordered_map<tcp::FlowTuple, tcp::ConnId, tcp::FlowTupleHash>
      by_tuple_;
  std::vector<bool> listening_ = std::vector<bool>(65536, false);
  std::uint16_t next_ephemeral_ = 20000;

  std::uint64_t retransmits_ = 0;
  std::uint64_t fast_retransmits_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t segs_rx_ = 0;
  std::uint64_t segs_tx_ = 0;
  std::uint64_t bytes_delivered_ = 0;
};

}  // namespace flextoe::baseline
