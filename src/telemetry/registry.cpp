#include "telemetry/registry.hpp"

#include <algorithm>
#include <bit>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <mutex>

namespace flextoe::telemetry {

// ---------------------------------------------------------------------
// Histogram buckets.

std::size_t Histogram::bucket_of(std::uint64_t v) {
  if (v == 0) return 0;
  const std::size_t b = static_cast<std::size_t>(std::bit_width(v));
  return b < kBuckets ? b : kBuckets - 1;
}

std::uint64_t Histogram::bucket_floor(std::size_t b) {
  if (b == 0) return 0;
  return 1ull << (b - 1);
}

std::uint64_t HistogramData::quantile(double q) const {
  if (count == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  const double target = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    cum += buckets[b];
    if (static_cast<double>(cum) >= target && buckets[b] > 0) {
      // Upper bound of bucket b (bucket 0 holds only zeros).
      const std::uint64_t hi =
          b == 0 ? 0 : (Histogram::bucket_floor(b + 1) - 1);
      return std::min(hi, max);
    }
  }
  return max;
}

// ---------------------------------------------------------------------
// Snapshot lookup and merge.

namespace {

template <typename Vec, typename Value>
const Value* find_in(const Vec& v, std::string_view path) {
  for (const auto& kv : v) {
    if (kv.first == path) return &kv.second;
  }
  return nullptr;
}

template <typename Vec>
void sort_by_path(Vec& v) {
  std::sort(v.begin(), v.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

}  // namespace

const std::uint64_t* Snapshot::counter(std::string_view path) const {
  return find_in<decltype(counters), std::uint64_t>(counters, path);
}

const std::int64_t* Snapshot::gauge(std::string_view path) const {
  return find_in<decltype(gauges), std::int64_t>(gauges, path);
}

const HistogramData* Snapshot::histogram(std::string_view path) const {
  return find_in<decltype(histograms), HistogramData>(histograms, path);
}

namespace {

// Two-pointer merge of path-sorted entry vectors (the invariant every
// Snapshot producer maintains): O(N+M) instead of a lookup per entry.
template <typename Vec, typename Combine>
void merge_sorted(Vec& dst, const Vec& src, Combine combine) {
  Vec out;
  out.reserve(dst.size() + src.size());
  auto a = dst.begin();
  auto b = src.begin();
  while (a != dst.end() && b != src.end()) {
    if (a->first < b->first) {
      out.push_back(std::move(*a++));
    } else if (b->first < a->first) {
      out.push_back(*b++);
    } else {
      combine(a->second, b->second);
      out.push_back(std::move(*a++));
      ++b;
    }
  }
  out.insert(out.end(), std::make_move_iterator(a),
             std::make_move_iterator(dst.end()));
  out.insert(out.end(), b, src.end());
  dst = std::move(out);
}

}  // namespace

void Snapshot::merge(const Snapshot& other) {
  enabled = enabled || other.enabled;
  merge_sorted(counters, other.counters,
               [](std::uint64_t& d, const std::uint64_t& s) { d += s; });
  merge_sorted(gauges, other.gauges,
               [](std::int64_t& d, const std::int64_t& s) {
                 d = std::max(d, s);  // gauges are levels, not totals
               });
  merge_sorted(histograms, other.histograms,
               [](HistogramData& d, const HistogramData& h) {
                 d.count += h.count;
                 d.sum += h.sum;
                 d.max = std::max(d.max, h.max);
                 if (d.buckets.size() < h.buckets.size()) {
                   d.buckets.resize(h.buckets.size(), 0);
                 }
                 for (std::size_t i = 0; i < h.buckets.size(); ++i) {
                   d.buckets[i] += h.buckets[i];
                 }
               });
}

// ---------------------------------------------------------------------
// JSON emission. Paths are plain identifiers but escape defensively so
// the document stays valid whatever a caller registers.

void json_escape(std::string_view s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string Snapshot::to_json() const {
  std::string out = "{\n    \"enabled\": ";
  out += enabled ? "true" : "false";
  out += ",\n    \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out += i ? ",\n      " : "\n      ";
    json_escape(counters[i].first, &out);
    out += ": " + std::to_string(counters[i].second);
  }
  out += counters.empty() ? "}" : "\n    }";
  out += ",\n    \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    out += i ? ",\n      " : "\n      ";
    json_escape(gauges[i].first, &out);
    out += ": " + std::to_string(gauges[i].second);
  }
  out += gauges.empty() ? "}" : "\n    }";
  out += ",\n    \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    out += i ? ",\n      " : "\n      ";
    json_escape(histograms[i].first, &out);
    const HistogramData& h = histograms[i].second;
    out += ": {\"count\": " + std::to_string(h.count);
    out += ", \"sum\": " + std::to_string(h.sum);
    out += ", \"max\": " + std::to_string(h.max);
    out += ", \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b) out += ", ";
      out += std::to_string(h.buckets[b]);
    }
    out += "]}";
  }
  out += histograms.empty() ? "}" : "\n    }";
  out += "\n  }";
  return out;
}

// ---------------------------------------------------------------------
// JSON parsing: a minimal recursive-descent reader for exactly the
// object shape to_json() produces (any key order, any whitespace).

namespace {

struct Parser {
  std::string_view s;
  std::size_t pos = 0;
  std::string err;

  bool fail(const std::string& why) {
    if (err.empty()) err = why + " at offset " + std::to_string(pos);
    pos = s.size();
    return false;
  }
  void ws() {
    while (pos < s.size() &&
           (s[pos] == ' ' || s[pos] == '\n' || s[pos] == '\t' ||
            s[pos] == '\r')) {
      ++pos;
    }
  }
  bool consume(char c) {
    ws();
    if (pos < s.size() && s[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  bool expect(char c) {
    if (consume(c)) return true;
    return fail(std::string("expected '") + c + "'");
  }

  bool string(std::string* out) {
    out->clear();
    if (!consume('"')) return fail("expected string");
    while (pos < s.size() && s[pos] != '"') {
      char c = s[pos++];
      if (c == '\\') {
        if (pos >= s.size()) return fail("bad escape");
        const char e = s[pos++];
        switch (e) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 't': *out += '\t'; break;
          case 'r': *out += '\r'; break;
          case 'u': {
            if (pos + 4 > s.size()) return fail("bad \\u escape");
            unsigned code = 0;
            auto [p, ec] = std::from_chars(s.data() + pos,
                                           s.data() + pos + 4, code, 16);
            if (ec != std::errc() || p != s.data() + pos + 4) {
              return fail("bad \\u escape");
            }
            pos += 4;
            // Paths only ever carry control chars here; store as byte.
            *out += static_cast<char>(code & 0xFF);
            break;
          }
          default:
            return fail("bad escape");
        }
      } else {
        *out += c;
      }
    }
    if (!consume('"')) return fail("unterminated string");
    return true;
  }

  bool uint64(std::uint64_t* out) {
    ws();
    const std::size_t start = pos;
    while (pos < s.size() &&
           std::isdigit(static_cast<unsigned char>(s[pos]))) {
      ++pos;
    }
    if (pos == start) return fail("expected integer");
    auto [p, ec] = std::from_chars(s.data() + start, s.data() + pos, *out);
    if (ec != std::errc() || p != s.data() + pos) return fail("bad integer");
    return true;
  }

  bool int64(std::int64_t* out) {
    ws();
    const std::size_t start = pos;
    if (pos < s.size() && s[pos] == '-') ++pos;
    while (pos < s.size() &&
           std::isdigit(static_cast<unsigned char>(s[pos]))) {
      ++pos;
    }
    if (pos == start || (pos == start + 1 && s[start] == '-')) {
      return fail("expected integer");
    }
    auto [p, ec] = std::from_chars(s.data() + start, s.data() + pos, *out);
    if (ec != std::errc() || p != s.data() + pos) return fail("bad integer");
    return true;
  }

  bool boolean(bool* out) {
    ws();
    if (s.compare(pos, 4, "true") == 0) {
      *out = true;
      pos += 4;
      return true;
    }
    if (s.compare(pos, 5, "false") == 0) {
      *out = false;
      pos += 5;
      return true;
    }
    return fail("expected boolean");
  }

  bool hist(HistogramData* out) {
    if (!expect('{')) return false;
    if (consume('}')) return true;
    while (true) {
      std::string key;
      if (!string(&key) || !expect(':')) return false;
      if (key == "count") {
        if (!uint64(&out->count)) return false;
      } else if (key == "sum") {
        if (!uint64(&out->sum)) return false;
      } else if (key == "max") {
        if (!uint64(&out->max)) return false;
      } else if (key == "buckets") {
        if (!expect('[')) return false;
        if (!consume(']')) {
          while (true) {
            std::uint64_t v = 0;
            if (!uint64(&v)) return false;
            out->buckets.push_back(v);
            if (consume(',')) continue;
            if (consume(']')) break;
            return fail("expected ',' or ']'");
          }
        }
      } else {
        return fail("unknown histogram key '" + key + "'");
      }
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}'");
    }
  }
};

}  // namespace

bool Snapshot::from_json(std::string_view text, Snapshot* out,
                         std::string* err) {
  *out = Snapshot{};
  Parser p{text, 0, {}};
  auto done = [&](bool ok) {
    if (!ok && err != nullptr) *err = p.err;
    return ok;
  };

  if (!p.expect('{')) return done(false);
  if (!p.consume('}')) {
  while (true) {
    std::string key;
    if (!p.string(&key) || !p.expect(':')) return done(false);
    if (key == "enabled") {
      if (!p.boolean(&out->enabled)) return done(false);
    } else if (key == "counters") {
      if (!p.expect('{')) return done(false);
      if (!p.consume('}')) {
        while (true) {
          std::string path;
          std::uint64_t v = 0;
          if (!p.string(&path) || !p.expect(':') || !p.uint64(&v)) {
            return done(false);
          }
          out->counters.emplace_back(std::move(path), v);
          if (p.consume(',')) continue;
          if (p.consume('}')) break;
          return done(p.fail("expected ',' or '}'"));
        }
      }
    } else if (key == "gauges") {
      if (!p.expect('{')) return done(false);
      if (!p.consume('}')) {
        while (true) {
          std::string path;
          std::int64_t v = 0;
          if (!p.string(&path) || !p.expect(':') || !p.int64(&v)) {
            return done(false);
          }
          out->gauges.emplace_back(std::move(path), v);
          if (p.consume(',')) continue;
          if (p.consume('}')) break;
          return done(p.fail("expected ',' or '}'"));
        }
      }
    } else if (key == "histograms") {
      if (!p.expect('{')) return done(false);
      if (!p.consume('}')) {
        while (true) {
          std::string path;
          HistogramData h;
          if (!p.string(&path) || !p.expect(':') || !p.hist(&h)) {
            return done(false);
          }
          out->histograms.emplace_back(std::move(path), std::move(h));
          if (p.consume(',')) continue;
          if (p.consume('}')) break;
          return done(p.fail("expected ',' or '}'"));
        }
      }
    } else {
      return done(p.fail("unknown key '" + key + "'"));
    }
    if (p.consume(',')) continue;
    if (p.consume('}')) break;
    return done(p.fail("expected ',' or '}'"));
  }
  }
  p.ws();
  if (p.pos != p.s.size()) return done(p.fail("trailing characters"));
  sort_by_path(out->counters);
  sort_by_path(out->gauges);
  sort_by_path(out->histograms);
  return done(true);
}

// ---------------------------------------------------------------------
// Registry.

Registry::Registry() : enabled_(default_enabled()) {}

Counter* Registry::counter(std::string_view path) {
  auto it = counter_by_name_.find(std::string(path));
  if (it != counter_by_name_.end()) return it->second;
  counters_.push_back({std::string(path), Counter{}});
  Counter* c = &counters_.back().metric;
  counter_by_name_.emplace(counters_.back().path, c);
  return c;
}

Gauge* Registry::gauge(std::string_view path) {
  auto it = gauge_by_name_.find(std::string(path));
  if (it != gauge_by_name_.end()) return it->second;
  gauges_.push_back({std::string(path), Gauge{}});
  Gauge* g = &gauges_.back().metric;
  gauge_by_name_.emplace(gauges_.back().path, g);
  return g;
}

Histogram* Registry::histogram(std::string_view path) {
  auto it = histogram_by_name_.find(std::string(path));
  if (it != histogram_by_name_.end()) return it->second;
  histograms_.push_back({std::string(path), Histogram{}});
  Histogram* h = &histograms_.back().metric;
  histogram_by_name_.emplace(histograms_.back().path, h);
  return h;
}

void Registry::clear() {
  for (auto& e : counters_) e.metric.reset();
  for (auto& e : gauges_) e.metric.reset();
  for (auto& e : histograms_) e.metric.reset();
}

Snapshot Registry::snapshot() const {
  Snapshot s;
#ifdef FLEXTOE_TELEMETRY_DISABLED
  s.enabled = false;
#else
  s.enabled = enabled_;
#endif
  // A silent registry exports nothing: --no-telemetry and compiled-out
  // builds produce genuinely empty sections, not trees of zeros.
  if (!s.enabled) return s;
  for (const auto& e : counters_) {
    s.counters.emplace_back(e.path, e.metric.value());
  }
  for (const auto& e : gauges_) {
    s.gauges.emplace_back(e.path, e.metric.value());
    // High-water companion: the level at snapshot time under-reports
    // bursty occupancy (queue depths, ROB residency); the peak doesn't.
    s.gauges.emplace_back(e.path + "_peak", e.metric.peak());
  }
  for (const auto& e : histograms_) {
    HistogramData d;
    d.count = e.metric.count();
    d.sum = e.metric.sum();
    d.max = e.metric.max();
    const auto& b = e.metric.buckets();
    std::size_t last = b.size();
    while (last > 0 && b[last - 1] == 0) --last;
    d.buckets.assign(b.begin(), b.begin() + last);
    s.histograms.emplace_back(e.path, std::move(d));
  }
  sort_by_path(s.counters);
  sort_by_path(s.gauges);
  sort_by_path(s.histograms);
  return s;
}

// ---------------------------------------------------------------------
// Process-wide plumbing.

namespace {

bool g_default_enabled = true;
// The accumulator is the one telemetry structure shared across parallel
// scenario runs (workload::run_scenario_batch): each worker merges its
// finished testbed's snapshot here. Snapshot::merge is an additive
// two-pointer merge of path-sorted vectors — commutative — so guarding
// it with a mutex keeps batched results identical to sequential runs
// regardless of worker interleaving.
std::mutex g_accumulator_mu;
Snapshot g_accumulator;

}  // namespace

bool default_enabled() { return g_default_enabled; }
void set_default_enabled(bool on) { g_default_enabled = on; }

const Snapshot& accumulator() { return g_accumulator; }
void accumulate(const Snapshot& s) {
  std::lock_guard<std::mutex> lk(g_accumulator_mu);
  g_accumulator.merge(s);
}
void reset_accumulator() {
  std::lock_guard<std::mutex> lk(g_accumulator_mu);
  g_accumulator = Snapshot{};
}

}  // namespace flextoe::telemetry
