#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"

namespace flextoe::sim {
namespace {

TEST(Percentiles, EmptyReturnsZero) {
  Percentiles p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.percentile(50), 0.0);
}

TEST(Percentiles, SingleSample) {
  Percentiles p;
  p.add(42.0);
  EXPECT_EQ(p.median(), 42.0);
  EXPECT_EQ(p.percentile(99.99), 42.0);
  EXPECT_EQ(p.min(), 42.0);
  EXPECT_EQ(p.max(), 42.0);
}

TEST(Percentiles, ExactQuartilesOnUniformRange) {
  Percentiles p;
  for (int i = 1; i <= 101; ++i) p.add(i);
  EXPECT_DOUBLE_EQ(p.median(), 51.0);
  EXPECT_DOUBLE_EQ(p.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(p.percentile(100), 101.0);
  EXPECT_DOUBLE_EQ(p.percentile(25), 26.0);
}

TEST(Percentiles, MeanTracksAllSamplesEvenPastReservoir) {
  Percentiles p(/*max_samples=*/128);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    p.add(i);
    sum += i;
  }
  EXPECT_EQ(p.count(), 10000u);
  EXPECT_DOUBLE_EQ(p.mean(), sum / 10000.0);
}

TEST(Percentiles, ReservoirStaysRepresentative) {
  Percentiles p(/*max_samples=*/1024);
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) p.add(rng.next_double());
  // Uniform [0,1): median should be close to 0.5.
  EXPECT_NEAR(p.median(), 0.5, 0.06);
}

TEST(Percentiles, ClearResets) {
  Percentiles p;
  p.add(1);
  p.clear();
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.median(), 0.0);
}

TEST(Meter, RatePerSecond) {
  Meter m;
  m.add(500);
  m.add(500);
  EXPECT_EQ(m.total(), 1000u);
  EXPECT_DOUBLE_EQ(m.rate_per_sec(sec(2)), 500.0);
  EXPECT_DOUBLE_EQ(m.rate_per_sec(0), 0.0);
}

TEST(Jfi, PerfectlyFair) {
  EXPECT_DOUBLE_EQ(jains_fairness_index({5, 5, 5, 5}), 1.0);
}

TEST(Jfi, TotallyUnfair) {
  // One flow hogs everything among n flows -> JFI = 1/n.
  EXPECT_NEAR(jains_fairness_index({10, 0, 0, 0}), 0.25, 1e-12);
}

TEST(Jfi, EmptyAndZeroInputs) {
  EXPECT_DOUBLE_EQ(jains_fairness_index({}), 1.0);
  EXPECT_DOUBLE_EQ(jains_fairness_index({0, 0}), 1.0);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, RangeBounds) {
  Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.next_range(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng r(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ExponentialMean) {
  Rng r(3);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.next_exp(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

}  // namespace
}  // namespace flextoe::sim
