// Destruction-ordering regression tests: a Datapath destroyed while the
// EventQueue still holds its events (FPC work completions, DMA
// completions, scheduler ticks, host notifications, RTC gate
// continuations) must never fire callbacks into freed state. Draining
// the queue after destruction must be a sequence of no-ops.
//
// Run under the Sanitize preset these tests are use-after-free
// detectors; in a plain build they still catch crashes and assert that
// no host-interface callback fires after the NIC is gone.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "core/config.hpp"
#include "core/datapath.hpp"
#include "host/payload_buf.hpp"
#include "net/packet.hpp"
#include "sim/domain.hpp"

namespace flextoe::core {
namespace {

struct Rig {
  sim::Domain ev;
  host::PayloadBuf rx{1 << 16}, tx{1 << 16};
  std::optional<Datapath> dp;
  int notifies = 0;
  int to_controls = 0;
  tcp::ConnId conn = tcp::kInvalidConn;

  explicit Rig(DatapathConfig cfg) {
    Datapath::HostIface host;
    host.notify = [this](const host::CtxDesc&) { ++notifies; };
    host.to_control = [this](const net::PacketPtr&) { ++to_controls; };
    host.peer_fin = [](tcp::ConnId) {};
    dp.emplace(ev, cfg, host);
    dp->set_local(net::MacAddr::from_u64(0x02AA), net::make_ip(10, 0, 0, 1));

    FlowInstall ins;
    ins.tuple = {net::make_ip(10, 0, 0, 1), net::make_ip(10, 0, 0, 2), 80,
                 9999};
    ins.local_mac = net::MacAddr::from_u64(0x02AA);
    ins.peer_mac = net::MacAddr::from_u64(0x02BB);
    ins.iss = 1000;
    ins.irs = 2000;
    ins.rx_buf = &rx;
    ins.tx_buf = &tx;
    conn = dp->install_flow(ins);
  }

  // One in-order data segment for the installed flow.
  net::PacketPtr data_segment(std::uint32_t seq_off, std::uint32_t len) {
    return net::make_tcp_packet(
        net::MacAddr::from_u64(0x02BB), net::MacAddr::from_u64(0x02AA),
        net::make_ip(10, 0, 0, 2), net::make_ip(10, 0, 0, 1), 9999, 80,
        2001 + seq_off, 1001, net::tcpflag::kAck | net::tcpflag::kPsh,
        std::vector<std::uint8_t>(len, 0x42));
  }

  void push_hc(host::CtxDescType type, std::uint32_t a) {
    host::CtxDesc d;
    d.type = type;
    d.conn = conn;
    d.a = a;
    dp->hc_queue(0).push(d);
    dp->doorbell(0);
  }
};

// Destroy mid-pipeline: segments in flight through pre/proto/post/DMA
// stages, then the Datapath dies and the queue drains.
TEST(DatapathLifetime, DestroyWithSegmentsInFlight) {
  Rig r(agilio_cx40_config());
  for (std::uint32_t i = 0; i < 8; ++i) {
    r.dp->deliver(r.data_segment(i * 100, 100));
  }
  // Advance part-way: work completions and DMA events remain pending.
  for (int i = 0; i < 5 && !r.ev.empty(); ++i) r.ev.step();
  ASSERT_FALSE(r.ev.empty());
  r.dp.reset();
  r.ev.run_all();  // must not touch freed state (ASan-verified)
}

// Destroy with a doorbell MMIO and HC descriptors pending.
TEST(DatapathLifetime, DestroyWithDoorbellPending) {
  Rig r(agilio_cx40_config());
  r.push_hc(host::CtxDescType::TxDoorbell, 4096);
  ASSERT_FALSE(r.ev.empty());  // MMIO latency event is in flight
  r.dp.reset();
  r.ev.run_all();
}

// Destroy with host notifications in flight: a received segment has
// landed and the notify DMA + interrupt delay are scheduled. After
// destruction the host must observe no further callbacks.
TEST(DatapathLifetime, NoHostCallbacksAfterDestruction) {
  Rig r(agilio_cx40_config());
  r.dp->deliver(r.data_segment(0, 256));
  // Run until at least the payload DMA is done but events still pend.
  r.ev.run_until(sim::us(2));
  const int seen = r.notifies;
  if (r.ev.empty()) GTEST_SKIP() << "pipeline drained too fast";
  r.dp.reset();
  r.ev.run_all();
  EXPECT_EQ(r.notifies, seen);  // nothing fired into the dead NIC's host
}

// Run-to-completion mode: the admission gate holds deferred work and the
// gate token deleters run during/after destruction. Both the deferred
// continuations and the tokens must be inert once the graph is gone.
TEST(DatapathLifetime, RtcGateDestroyedWithBacklog) {
  Rig r(ablation_baseline());
  for (std::uint32_t i = 0; i < 16; ++i) {
    r.dp->deliver(r.data_segment(i * 64, 64));
  }
  for (int i = 0; i < 3 && !r.ev.empty(); ++i) r.ev.step();
  EXPECT_GT(r.dp->graph().gate_backlog(), 0u);
  r.dp.reset();
  r.ev.run_all();
}

// Immediate destruction: nothing ran at all.
TEST(DatapathLifetime, DestroyBeforeAnyEvent) {
  Rig r(agilio_cx40_config());
  r.dp->deliver(r.data_segment(0, 128));
  r.dp.reset();
  r.ev.run_all();
  EXPECT_EQ(r.notifies, 0);
}

// Segment contexts (pooled) may outlive the Datapath inside the queue;
// the pool core must stay alive until the last context dies (freed-block
// teardown is ASan-verified when the Rig, and with it the EventQueue
// holding the last context references, dies at scope exit).
TEST(DatapathLifetime, PooledContextsOutliveDatapath) {
  Rig r(agilio_cx40_config());
  for (std::uint32_t i = 0; i < 4; ++i) {
    r.dp->deliver(r.data_segment(i * 100, 100));
  }
  r.ev.step();
  r.dp.reset();
  ASSERT_FALSE(r.ev.empty());  // contexts still referenced from events
  r.ev.run_all();
}

}  // namespace
}  // namespace flextoe::core
