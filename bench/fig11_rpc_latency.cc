// Figure 11: single-connection RPC RTT — median, 99p and 99.99p across
// message sizes for every stack.
#include "common.hpp"

using namespace flextoe;
using namespace flextoe::benchx;

int main() {
  const std::vector<std::uint32_t> sizes = {32, 64, 128, 256, 512, 1024,
                                            2048};
  print_header("Figure 11: RPC RTT us (p50 / p99 / p99.99)",
               {"MsgSize", "Stack", "p50", "p99", "p99.99"});

  for (std::uint32_t msg : sizes) {
    for (Stack s : all_stacks()) {
      Testbed tb(31);
      auto& server = add_server(tb, s, with_stack_cores(s, 1));
      auto& client = tb.add_client_node();

      app::EchoServer srv(tb.ev(), *server.stack, {.port = 7},
                          server.cpu.get());
      app::ClosedLoopClient::Params cp;
      cp.connections = 1;
      cp.pipeline = 1;
      cp.request_size = msg;
      app::ClosedLoopClient cli(tb.ev(), *client.stack, server.ip, cp);
      cli.start();

      tb.run_for(sim::ms(5));
      cli.clear_stats();
      tb.run_for(sim::ms(60));

      print_cell(static_cast<double>(msg), 0);
      print_cell(stack_name(s));
      print_cell(cli.latency().percentile(50), 1);
      print_cell(cli.latency().percentile(99), 1);
      print_cell(cli.latency().percentile(99.99), 1);
      end_row();
    }
  }
  std::printf(
      "\nPaper shape: Linux median >=5x the others; FlexTOE median ~1.3x "
      "Chelsio/TAS (pipeline depth) but tail up to 3.2x smaller than\n"
      "Chelsio; FlexTOE nearly flat as size grows past one MSS.\n");
  return 0;
}
