#include "host/control_plane.hpp"

#include <algorithm>

#include "host/libtoe.hpp"

namespace flextoe::host {

using tcp::ConnId;
using tcp::SeqNum;
namespace flag = net::tcpflag;

ControlPlane::ControlPlane(sim::Domain& ev, core::Datapath& dp,
                           sim::Rng rng, ControlPlaneConfig cfg)
    : ev_(ev), dp_(dp), rng_(rng), cfg_(cfg) {}

ConnId ControlPlane::alloc_conn() {
  const auto cid = static_cast<ConnId>(conns_.size());
  conns_.push_back(std::make_unique<ConnCtl>());
  return cid;
}

void ControlPlane::listen(std::uint16_t port) { listening_[port] = true; }

net::PacketPtr ControlPlane::make_ctrl_packet(const ConnCtl& c, SeqNum seq,
                                              SeqNum ack,
                                              std::uint8_t flags) {
  // Handshake segments share the data-path's recycled Packet slots.
  auto pkt = dp_.pkt_pool().acquire();
  pkt->eth.src = mac_;
  pkt->eth.dst = c.peer_mac;
  pkt->ip.src = c.tuple.local_ip;
  pkt->ip.dst = c.tuple.remote_ip;
  pkt->tcp.sport = c.tuple.local_port;
  pkt->tcp.dport = c.tuple.remote_port;
  pkt->tcp.seq = seq;
  pkt->tcp.ack = ack;
  pkt->tcp.flags = flags;
  pkt->tcp.window = static_cast<std::uint16_t>(std::min<std::size_t>(
      cfg_.sockbuf_bytes >> tcp::kWindowShift, 0xFFFF));
  if (flags & flag::kSyn) pkt->tcp.mss = static_cast<std::uint16_t>(cfg_.mss);
  pkt->tcp.ts = net::TcpTsOpt{now_us(), 0};
  return pkt;
}

void ControlPlane::send_syn(ConnId conn) {
  ConnCtl& c = *conns_[conn];
  dp_.control_tx(make_ctrl_packet(c, c.iss, 0, flag::kSyn));
  const std::uint64_t gen = ++c.timer_gen;
  ev_.schedule_in(cfg_.handshake_rto * c.syn_tries,
                  [this, conn, gen] { handshake_timer(conn, gen); });
}

void ControlPlane::send_synack(ConnId conn) {
  ConnCtl& c = *conns_[conn];
  dp_.control_tx(
      make_ctrl_packet(c, c.iss, c.irs + 1, flag::kSyn | flag::kAck));
  const std::uint64_t gen = ++c.timer_gen;
  ev_.schedule_in(cfg_.handshake_rto * c.syn_tries,
                  [this, conn, gen] { handshake_timer(conn, gen); });
}

void ControlPlane::handshake_timer(ConnId conn, std::uint64_t gen) {
  if (conn >= conns_.size()) return;
  ConnCtl& c = *conns_[conn];
  if (c.timer_gen != gen) return;
  if (c.state == CState::SynSent) {
    if (++c.syn_tries > cfg_.syn_retries) {
      pending_.erase(c.tuple);
      c.state = CState::Dead;
      if (lib_ != nullptr) lib_->on_connected(conn, false);
      return;
    }
    send_syn(conn);
  } else if (c.state == CState::SynRcvd) {
    if (++c.syn_tries > cfg_.syn_retries) {
      pending_.erase(c.tuple);
      c.state = CState::Dead;
      return;
    }
    send_synack(conn);
  }
}

ConnId ControlPlane::connect(net::Ipv4Addr remote_ip,
                             std::uint16_t remote_port) {
  const ConnId conn = alloc_conn();
  ConnCtl& c = *conns_[conn];
  c.tuple.local_ip = ip_;
  c.tuple.remote_ip = remote_ip;
  c.tuple.remote_port = remote_port;
  for (int tries = 0; tries < 35000; ++tries) {
    c.tuple.local_port = next_ephemeral_;
    next_ephemeral_ = next_ephemeral_ == 65535 ? 30000 : next_ephemeral_ + 1;
    if (pending_.find(c.tuple) == pending_.end()) break;
  }
  // Static "ARP": MACs are derived from IPs in the testbed; the switch
  // learns real locations, so any well-formed MAC works.
  c.peer_mac = net::MacAddr::from_u64(0x020000000000ull + remote_ip);
  c.state = CState::SynSent;
  c.iss = static_cast<SeqNum>(rng_.next_u64() & 0xFFFFFF);
  c.syn_tries = 1;
  c.cc = tcp::make_cc(cfg_.cc_algo);
  pending_[c.tuple] = conn;
  if (lib_ != nullptr) lib_->alloc_bufs(conn);
  send_syn(conn);
  return conn;
}

void ControlPlane::install(ConnId conn, std::uint32_t remote_win) {
  ConnCtl& c = *conns_[conn];
  core::FlowInstall ins;
  ins.conn_id = conn;
  ins.tuple = c.tuple;
  ins.local_mac = mac_;
  ins.peer_mac = c.peer_mac;
  ins.iss = c.iss;
  ins.irs = c.irs;
  ins.remote_win = remote_win;
  ins.mss = cfg_.mss;
  if (lib_ != nullptr) {
    LibToe::SockBufs* bufs = lib_->alloc_bufs(conn);
    ins.rx_buf = bufs->rx.get();
    ins.tx_buf = bufs->tx.get();
    ins.context_id = lib_->context_id();
  }
  ins.opaque = conn;
  dp_.install_flow(ins);
  pending_.erase(c.tuple);
  c.state = CState::Established;
  c.last_progress = ev_.now();
  ++established_;
  if (!cc_timer_running_) {
    cc_timer_running_ = true;
    ev_.schedule_in(cfg_.cc_interval, [this] { cc_tick(); });
  }
}

void ControlPlane::on_control_segment(const net::PacketPtr& pkt) {
  tcp::FlowTuple t{pkt->ip.dst, pkt->ip.src, pkt->tcp.dport,
                   pkt->tcp.sport};
  auto it = pending_.find(t);
  const net::TcpHeader& h = pkt->tcp;

  if (it != pending_.end()) {
    const ConnId conn = it->second;
    ConnCtl& c = *conns_[conn];
    if (h.has(flag::kRst)) {
      pending_.erase(it);
      c.state = CState::Dead;
      if (lib_ != nullptr) lib_->on_connected(conn, false);
      return;
    }
    if (c.state == CState::SynSent && h.has(flag::kSyn) &&
        h.has(flag::kAck) && h.ack == c.iss + 1) {
      c.irs = h.seq;
      ++c.timer_gen;
      // Complete the handshake and install the data path.
      install(conn, static_cast<std::uint32_t>(h.window)
                        << tcp::kWindowShift);
      dp_.control_tx(make_ctrl_packet(c, c.iss + 1, c.irs + 1, flag::kAck));
      if (lib_ != nullptr) lib_->on_connected(conn, true);
      return;
    }
    if (c.state == CState::SynRcvd && h.has(flag::kAck) &&
        !h.has(flag::kSyn) && h.ack == c.iss + 1) {
      ++c.timer_gen;
      install(conn, static_cast<std::uint32_t>(h.window)
                        << tcp::kWindowShift);
      if (lib_ != nullptr) lib_->on_accepted(conn);
      // The final ACK may carry data (or the client may already be
      // streaming): re-inject so the data-path processes the payload.
      if (!pkt->payload.empty()) dp_.deliver(pkt);
      return;
    }
    if (c.state == CState::SynRcvd && h.has(flag::kSyn) &&
        !h.has(flag::kAck)) {
      send_synack(conn);  // duplicate SYN
      return;
    }
    return;
  }

  // New inbound connection?
  if (h.has(flag::kSyn) && !h.has(flag::kAck) && listening_[h.dport]) {
    const ConnId conn = alloc_conn();
    ConnCtl& c = *conns_[conn];
    c.tuple = t;
    c.peer_mac = pkt->eth.src;
    c.state = CState::SynRcvd;
    c.iss = static_cast<SeqNum>(rng_.next_u64() & 0xFFFFFF);
    c.irs = h.seq;
    c.syn_tries = 1;
    c.cc = tcp::make_cc(cfg_.cc_algo);
    pending_[t] = conn;
    if (lib_ != nullptr) lib_->alloc_bufs(conn);
    send_synack(conn);
    return;
  }

  if (h.has(flag::kRst)) {
    // RST for an established flow: tear down.
    // (Datapath forwarded it because RSTs are not data-path segments.)
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      ConnCtl& c = *conns_[i];
      if (c.state != CState::Dead && c.tuple == t) {
        dp_.remove_flow(static_cast<ConnId>(i));
        c.state = CState::Dead;
        if (lib_ != nullptr) lib_->on_closed(static_cast<ConnId>(i));
        return;
      }
    }
    return;
  }

  // Unknown segment: reset the sender (unless it is itself a RST).
  if (!h.has(flag::kRst)) {
    ConnCtl tmp;
    tmp.tuple = t;
    tmp.peer_mac = pkt->eth.src;
    dp_.control_tx(make_ctrl_packet(tmp, h.ack, h.seq + pkt->payload_len() + 1,
                                    flag::kRst | flag::kAck));
  }
}

void ControlPlane::app_close(ConnId conn) {
  if (conn >= conns_.size()) return;
  ConnCtl& c = *conns_[conn];
  if (c.state == CState::Established) c.state = CState::Closing;
  c.fin_requested = true;
  maybe_teardown(conn);
}

void ControlPlane::on_peer_fin(ConnId conn) {
  if (conn >= conns_.size()) return;
  ConnCtl& c = *conns_[conn];
  c.peer_fin = true;
  if (c.state == CState::Established) {
    // Passive close: wait for the app to close() too.
  }
  maybe_teardown(conn);
}

void ControlPlane::maybe_teardown(ConnId conn) {
  ConnCtl& c = *conns_[conn];
  if (!(c.fin_requested && c.peer_fin)) return;
  const core::ProtoState* p = dp_.proto_state(conn);
  if (p == nullptr) return;
  if (p->tx_sent > 0 || p->tx_avail > 0 || !p->fin_sent) {
    // Our FIN (or data) still in flight; the CC/RTO loop re-checks.
    return;
  }
  if (c.state == CState::TimeWait || c.state == CState::Dead) return;
  c.state = CState::TimeWait;
  const std::uint64_t gen = ++c.timer_gen;
  ev_.schedule_in(cfg_.time_wait, [this, conn, gen] {
    ConnCtl& cc = *conns_[conn];
    if (cc.timer_gen != gen || cc.state != CState::TimeWait) return;
    dp_.remove_flow(conn);
    cc.state = CState::Dead;
    if (established_ > 0) --established_;
    if (lib_ != nullptr) lib_->on_closed(conn);
  });
}

// The control loop: congestion control + RTO monitoring (Appendix D).
void ControlPlane::cc_tick() {
  bool any_active = false;
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    ConnCtl& c = *conns_[i];
    if (c.state != CState::Established && c.state != CState::Closing) {
      continue;
    }
    const auto conn = static_cast<ConnId>(i);
    if (!dp_.flow_valid(conn)) continue;
    any_active = true;

    auto stats = dp_.read_cc_stats(conn, /*clear=*/true);

    // ---- RTO monitoring ----
    if (stats.tx_sent > 0) {
      if (stats.snd_una != c.last_una || stats.acked_bytes > 0) {
        c.last_una = stats.snd_una;
        c.last_progress = ev_.now();
        c.backoff = 1;
      } else {
        const sim::TimePs rtt =
            stats.rtt_us > 0 ? sim::us(stats.rtt_us) : sim::us(100);
        sim::TimePs rto = std::clamp<sim::TimePs>(3 * rtt, cfg_.min_rto,
                                                  cfg_.max_rto);
        rto = std::min<sim::TimePs>(rto * c.backoff, cfg_.max_rto);
        if (ev_.now() - c.last_progress > rto) {
          // Trigger a go-back-N retransmission through the HC pipeline.
          CtxDesc d;
          d.type = CtxDescType::Retransmit;
          d.conn = conn;
          dp_.hc_queue(0).push(d);
          dp_.doorbell(0);
          ++rto_retransmits_;
          ++c.timeouts_pending;
          c.backoff = std::min(c.backoff * 2, 32u);
          c.last_progress = ev_.now();
        }
      }
    } else {
      c.last_progress = ev_.now();
      c.backoff = 1;
    }

    // ---- Congestion control ----
    if (cfg_.cc_enabled && c.cc) {
      tcp::CcInput in;
      in.acked_bytes = stats.acked_bytes;
      in.ecn_bytes = stats.ecn_bytes;
      in.fast_retx = stats.fast_retx;
      in.timeouts = c.timeouts_pending;
      in.rtt = stats.rtt_us > 0 ? sim::us(stats.rtt_us) : 0;
      c.timeouts_pending = 0;
      const std::uint64_t rate = c.cc->update(in);
      dp_.set_rate(conn, rate);
    }

    if (c.state == CState::Closing) maybe_teardown(conn);
  }

  if (any_active || established_ > 0) {
    ev_.schedule_in(cfg_.cc_interval, [this] { cc_tick(); });
  } else {
    cc_timer_running_ = false;
  }
}

}  // namespace flextoe::host
