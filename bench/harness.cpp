#include "harness.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/batch.hpp"
#include "sim/domain.hpp"
#include "sim/stats.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"

namespace flextoe::benchx {

// ---------------------------------------------------------------------
// Command line.

std::string usage(const std::string& prog) {
  return "usage: " + prog +
         " [--list] [--filter <substr>] [--quick] [--repeats N]"
         " [--seed S] [--threads N] [--batch N] [--tap NAME]"
         " [--json <path>] [--no-telemetry] [--trace <path>]\n"
         "  --list          print scenario ids and exit\n"
         "  --filter S      run only scenarios whose id contains S\n"
         "  --quick         shrink sweeps and simulated spans (smoke mode)\n"
         "  --repeats N     repeat scalar measurements N times, report "
         "means\n"
         "                  (distribution/table scenarios are single-run)\n"
         "  --seed S        shift every scenario's simulation seeds by S\n"
         "                  (default 0: the reproducible baseline run)\n"
         "  --threads N     worker threads for parallel simulation\n"
         "                  (default 1; results identical at any N)\n"
         "  --batch N       dispatch burst size for the stage graph\n"
         "                  (default 32; results identical at any N)\n"
         "  --tap NAME      attach a monitor tap to scenario SUTs\n"
         "                  (NAME: sketch — count-min flow monitor)\n"
         "  --json PATH     also write the report as JSON to PATH\n"
         "  --no-telemetry  disable data-path introspection counters\n"
         "                  (the report's telemetry section comes out "
         "empty)\n"
         "  --trace PATH    record segment-lifecycle flight recorders and\n"
         "                  write the merged Chrome/Perfetto trace JSON\n"
         "                  to PATH (load it at ui.perfetto.dev)\n";
}

bool parse_args(int argc, const char* const* argv, Options* opts,
                std::string* err) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        *err = std::string(flag) + " requires an argument";
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--quick") {
      opts->quick = true;
    } else if (a == "--no-telemetry") {
      opts->telemetry = false;
    } else if (a == "--list") {
      opts->list_only = true;
    } else if (a == "--filter") {
      const char* v = value("--filter");
      if (!v) return false;
      opts->filter = v;
    } else if (a == "--json") {
      const char* v = value("--json");
      if (!v) return false;
      opts->json_path = v;
    } else if (a == "--trace") {
      const char* v = value("--trace");
      if (!v) return false;
      opts->trace_path = v;
    } else if (a == "--repeats") {
      const char* v = value("--repeats");
      if (!v) return false;
      char* end = nullptr;
      const long n = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || n < 1 || n > 1000000) {
        *err = "--repeats expects a positive integer, got '" +
               std::string(v) + "'";
        return false;
      }
      opts->repeats = static_cast<int>(n);
    } else if (a == "--seed") {
      const char* v = value("--seed");
      if (!v) return false;
      char* end = nullptr;
      const unsigned long long n = std::strtoull(v, &end, 10);
      if (end == v || *end != '\0' || *v == '-') {
        *err = "--seed expects a non-negative integer, got '" +
               std::string(v) + "'";
        return false;
      }
      opts->seed = static_cast<std::uint64_t>(n);
    } else if (a == "--threads") {
      const char* v = value("--threads");
      if (!v) return false;
      char* end = nullptr;
      const long n = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || n < 1 || n > 1024) {
        *err = "--threads expects a positive integer, got '" +
               std::string(v) + "'";
        return false;
      }
      opts->threads = static_cast<int>(n);
    } else if (a == "--batch") {
      const char* v = value("--batch");
      if (!v) return false;
      char* end = nullptr;
      const long n = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || n < 1 ||
          n > static_cast<long>(core::kMaxBurst)) {
        *err = "--batch expects an integer in [1, " +
               std::to_string(core::kMaxBurst) + "], got '" +
               std::string(v) + "'";
        return false;
      }
      opts->batch = static_cast<int>(n);
    } else if (a == "--tap") {
      const char* v = value("--tap");
      if (!v) return false;
      if (std::string(v) != "sketch") {
        *err = "--tap expects a known tap name (sketch), got '" +
               std::string(v) + "'";
        return false;
      }
      opts->tap = v;
    } else if (a == "--help" || a == "-h") {
      *err = "";
      return false;
    } else {
      *err = "unknown flag '" + a + "'";
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------
// Repeat/percentile helpers.

RepeatStats run_repeated(int repeats, const std::function<double(int)>& fn,
                         int warmup) {
  for (int i = 0; i < warmup; ++i) (void)fn(i);
  sim::Percentiles acc;
  for (int i = 0; i < repeats; ++i) acc.add(fn(warmup + i));
  RepeatStats st;
  st.n = acc.count();
  if (st.n == 0) return st;
  st.mean = acc.mean();
  st.p50 = acc.percentile(50);
  st.p99 = acc.percentile(99);
  st.min = acc.min();
  st.max = acc.max();
  return st;
}

double percentile(const std::vector<double>& xs, double p) {
  sim::Percentiles acc;
  for (double x : xs) acc.add(x);
  return acc.percentile(p);
}

// ---------------------------------------------------------------------
// Results model.

void Row::set(const std::string& key, double v) {
  for (auto& kv : values) {
    if (kv.first == key) {
      kv.second = v;
      return;
    }
  }
  values.emplace_back(key, v);
}

const double* Row::find(const std::string& key) const {
  for (const auto& kv : values) {
    if (kv.first == key) return &kv.second;
  }
  return nullptr;
}

Row& Series::row(const std::string& label) {
  for (auto& r : rows_) {
    if (r.label == label) return r;
  }
  rows_.push_back(Row{label, {}});
  return rows_.back();
}

void Series::set(const std::string& label, const std::string& key,
                 double v) {
  row(label).set(key, v);
}

Series& Report::series(const std::string& name) {
  for (auto& s : series_) {
    if (s.name() == name) return s;
  }
  series_.emplace_back(name);
  return series_.back();
}

const Series* Report::find_series(const std::string& name) const {
  for (const auto& s : series_) {
    if (s.name() == name) return &s;
  }
  return nullptr;
}

void Report::note(std::string text) {
  for (const auto& n : notes_) {
    if (n == text) return;
  }
  notes_.push_back(std::move(text));
}

namespace {

constexpr int kCellWidth = 14;

void print_rule(std::size_t cols) {
  for (std::size_t i = 0; i < cols; ++i) std::printf("%*s", kCellWidth, "------");
  std::printf("\n");
}

void print_cell_str(const std::string& v) {
  std::printf("%*s", kCellWidth, v.c_str());
}

void print_cell_num(double v) {
  // Enough precision for Gbps/us/ratios without drowning small values.
  const double a = std::fabs(v);
  const int prec = (a != 0 && a < 0.1) ? 4 : (a < 100 ? 3 : (a < 10000 ? 1 : 0));
  std::printf("%*.*f", kCellWidth, prec, v);
}

// True when the report can print as one rows x series pivot table: every
// series has single-valued rows, all with the same value key, and shares
// the label sequence of the first series.
bool pivotable(const std::deque<Series>& series) {
  if (series.size() < 2) return false;
  const auto& ref = series.front().rows();
  if (ref.empty()) return false;
  std::string key;
  for (const auto& s : series) {
    const auto& rows = s.rows();
    if (rows.size() != ref.size()) return false;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (rows[i].label != ref[i].label) return false;
      if (rows[i].values.size() != 1) return false;
      if (key.empty()) key = rows[i].values[0].first;
      if (rows[i].values[0].first != key) return false;
    }
  }
  return true;
}

}  // namespace

void Report::print_text() const {
  if (pivotable(series_)) {
    const std::string key = series_.front().rows()[0].values[0].first;
    std::printf("\n=== %s (%s) ===\n", bench_.c_str(), key.c_str());
    print_cell_str("");
    for (const auto& s : series_) print_cell_str(s.name());
    std::printf("\n");
    print_rule(series_.size() + 1);
    for (std::size_t i = 0; i < series_.front().rows().size(); ++i) {
      print_cell_str(series_.front().rows()[i].label);
      for (const auto& s : series_) print_cell_num(s.rows()[i].values[0].second);
      std::printf("\n");
    }
  } else {
    for (const auto& s : series_) {
      // Column set: union of value keys in first-seen order.
      std::vector<std::string> keys;
      for (const auto& r : s.rows()) {
        for (const auto& kv : r.values) {
          if (std::find(keys.begin(), keys.end(), kv.first) == keys.end()) {
            keys.push_back(kv.first);
          }
        }
      }
      std::printf("\n=== %s ===\n", s.name().c_str());
      print_cell_str("");
      for (const auto& k : keys) print_cell_str(k);
      std::printf("\n");
      print_rule(keys.size() + 1);
      for (const auto& r : s.rows()) {
        print_cell_str(r.label);
        for (const auto& k : keys) {
          const double* v = r.find(k);
          if (v) {
            print_cell_num(*v);
          } else {
            print_cell_str("-");
          }
        }
        std::printf("\n");
      }
    }
  }
  for (const auto& n : notes_) std::printf("\n%s\n", n.c_str());
}

namespace {

// String escaping is shared with the telemetry snapshot serializer so
// the two JSON emitters in one document cannot drift.
using telemetry::json_escape;

void json_number(double v, std::string* out) {
  if (!std::isfinite(v)) {
    *out += "null";  // JSON has no NaN/Inf
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  *out += buf;
}

}  // namespace

std::string Report::to_json() const {
  std::string out;
  out += "{\n  \"bench\": ";
  json_escape(bench_, &out);
  out += ",\n  \"quick\": ";
  out += opts_.quick ? "true" : "false";
  out += ",\n  \"repeats\": " + std::to_string(opts_.repeats);
  out += ",\n  \"seed\": " + std::to_string(opts_.seed);
  out += ",\n  \"threads\": " + std::to_string(opts_.threads);
  // Reproducibility header: what produced this document. Golden diffs
  // excise this block (check_golden.py), so it can vary freely.
#ifndef FLEXTOE_GIT_SHA
#define FLEXTOE_GIT_SHA "unknown"
#endif
#ifndef FLEXTOE_BUILD_TYPE
#define FLEXTOE_BUILD_TYPE "unknown"
#endif
  out += ",\n  \"config\": {\"git_sha\": ";
  json_escape(FLEXTOE_GIT_SHA, &out);
  out += ", \"build_type\": ";
  json_escape(FLEXTOE_BUILD_TYPE, &out);
  out += ", \"telemetry_compiled\": ";
  out += telemetry::kCompiledIn ? "true" : "false";
  out += ", \"trace_compiled\": ";
  out += trace::kCompiledIn ? "true" : "false";
  // Effective dispatch burst size (--batch). Lives in the excised
  // config block: batching never changes results, so it must never
  // break golden comparisons either.
  out += ", \"batch\": " +
         std::to_string(core::resolve_batch(
             opts_.batch > 0 ? static_cast<unsigned>(opts_.batch) : 0));
  out += "}";
  out += ",\n  \"series\": [";
  for (std::size_t si = 0; si < series_.size(); ++si) {
    const auto& s = series_[si];
    out += si ? ",\n    {" : "\n    {";
    out += "\"name\": ";
    json_escape(s.name(), &out);
    out += ", \"rows\": [";
    const auto& rows = s.rows();
    for (std::size_t ri = 0; ri < rows.size(); ++ri) {
      out += ri ? ",\n      {" : "\n      {";
      out += "\"label\": ";
      json_escape(rows[ri].label, &out);
      out += ", \"values\": {";
      for (std::size_t vi = 0; vi < rows[ri].values.size(); ++vi) {
        if (vi) out += ", ";
        json_escape(rows[ri].values[vi].first, &out);
        out += ": ";
        json_number(rows[ri].values[vi].second, &out);
      }
      out += "}}";
    }
    out += rows.empty() ? "]}" : "\n    ]}";
  }
  out += series_.empty() ? "]" : "\n  ]";
  out += ",\n  \"telemetry\": " + telem_.to_json();
  out += ",\n  \"notes\": [";
  for (std::size_t i = 0; i < notes_.size(); ++i) {
    if (i) out += ", ";
    json_escape(notes_[i], &out);
  }
  out += "]\n}\n";
  return out;
}

bool Report::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string doc = to_json();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return std::fclose(f) == 0 && ok;
}

// ---------------------------------------------------------------------
// Registry and driver.

unsigned ScenarioCtx::batch() const {
  return core::resolve_batch(
      opts_.batch > 0 ? static_cast<unsigned>(opts_.batch) : 0);
}

Registry& Registry::instance() {
  static Registry r;
  return r;
}

int run_scenarios(const Options& opts, Report& report) {
  int run = 0;
  for (const auto& sc : Registry::instance().scenarios()) {
    if (!opts.filter.empty() &&
        sc.id.find(opts.filter) == std::string::npos) {
      continue;
    }
    ScenarioCtx ctx(opts, report);
    sc.fn(ctx);
    ++run;
  }
  return run;
}

namespace {

std::string basename_stem(const std::string& path) {
  const std::size_t slash = path.find_last_of("/\\");
  std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = base.rfind('.');
  if (dot != std::string::npos && dot > 0) base = base.substr(0, dot);
  return base.empty() ? "bench" : base;
}

}  // namespace

int bench_main(int argc, const char* const* argv) {
  const std::string prog = argc > 0 ? argv[0] : "bench";
  const std::string name = basename_stem(prog);

  Options opts;
  std::string err;
  if (!parse_args(argc, argv, &opts, &err)) {
    if (!err.empty()) std::fprintf(stderr, "%s: %s\n", name.c_str(), err.c_str());
    std::fputs(usage(name).c_str(), err.empty() ? stdout : stderr);
    return err.empty() ? 0 : 2;
  }

  if (opts.list_only) {
    for (const auto& sc : Registry::instance().scenarios()) {
      std::printf("%-24s %s\n", sc.id.c_str(), sc.title.c_str());
    }
    return 0;
  }

  // Runtime telemetry default for every registry the scenarios create;
  // the accumulator gathers each testbed's snapshot on teardown.
  telemetry::set_default_enabled(opts.telemetry);
  telemetry::reset_accumulator();
  if (!opts.trace_path.empty()) {
    if (!trace::kCompiledIn) {
      std::fprintf(stderr,
                   "%s: --trace ignored: tracing compiled out "
                   "(FLEXTOE_TRACE=OFF)\n",
                   name.c_str());
    }
    trace::set_enabled(true);
  }
  // Worker budget for DomainScheduler / run_scenario_batch users.
  sim::set_default_sim_threads(static_cast<unsigned>(opts.threads));
  // Dispatch burst size for every datapath the scenarios build.
  core::set_default_batch_size(
      opts.batch > 0 ? static_cast<unsigned>(opts.batch) : 0);

  Report report(name, opts);
  const int n = run_scenarios(opts, report);
  if (n == 0) {
    std::fprintf(stderr, "%s: no scenario matches --filter '%s'\n",
                 name.c_str(), opts.filter.c_str());
    return 2;
  }
  report.merge_telemetry(telemetry::accumulator());
  report.print_text();

  if (!opts.json_path.empty()) {
    if (!report.write_json(opts.json_path)) {
      std::fprintf(stderr, "%s: cannot write JSON to %s\n", name.c_str(),
                   opts.json_path.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", opts.json_path.c_str());
  }

  if (!opts.trace_path.empty() && trace::kCompiledIn) {
    if (!trace::write_chrome_trace(opts.trace_path)) {
      std::fprintf(stderr, "%s: cannot write trace to %s\n", name.c_str(),
                   opts.trace_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", opts.trace_path.c_str());
  }
  return 0;
}

}  // namespace flextoe::benchx
