#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace flextoe::sim {

void EventQueue::schedule_at(TimePs t, Callback cb) {
  assert(t >= now_ && "cannot schedule into the past");
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(cb);
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(std::move(cb));
  }
  heap_.push(Ev{t, next_seq_++, slot});
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  const Ev ev = heap_.top();
  heap_.pop();
  // Move the callback out before invoking: the callback may schedule new
  // events, which may recycle the slot or grow the slab.
  Callback cb = std::move(slots_[ev.slot]);
  free_slots_.push_back(ev.slot);
  now_ = ev.t;
  ++executed_;
  cb();
  return true;
}

void EventQueue::run_until(TimePs t) {
  while (!heap_.empty() && heap_.top().t <= t) step();
  advance_to(t);
}

void EventQueue::run_before(TimePs t) {
  while (!heap_.empty() && heap_.top().t < t) step();
}

void EventQueue::run_all() {
  while (step()) {
  }
}

}  // namespace flextoe::sim
