// Burst dispatch must be a pure host-side optimization: every burst
// entry point (ReplicaPicker::next_burst, Stage::pick_burst,
// Fpc::submit_burst, Datapath::deliver_burst, the batched doorbell
// drain) has to make the exact same simulated decisions — replica
// steering, schedule order, drop attribution, sequencer output — as its
// per-item twin. These tests run both forms side by side and demand
// bit-equal results, including full telemetry snapshots.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <random>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/batch.hpp"
#include "core/config.hpp"
#include "core/datapath.hpp"
#include "host/ctx_queue.hpp"
#include "host/payload_buf.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "nfp/fpc.hpp"
#include "pipeline/replica.hpp"
#include "pipeline/stage.hpp"
#include "sim/domain.hpp"

namespace flextoe {
namespace {

// ------------------------------------------------------------- picker

// next_burst(n, R) striped as (base + i) % R must land every item on
// the same replica as n sequential next(R) calls, for any mix of burst
// sizes, and leave the rotation in the same place.
TEST(ReplicaPickerBurst, StripeMatchesSequentialNext) {
  std::mt19937 rng(7);
  for (std::size_t R : {1u, 2u, 3u, 4u, 7u, 8u}) {
    pipeline::ReplicaPicker burst, seq;
    for (int round = 0; round < 200; ++round) {
      const std::size_t n = 1 + rng() % 64;
      const std::size_t base = burst.next_burst(n, R);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ((base + i) % R, seq.next(R))
            << "R=" << R << " round=" << round << " i=" << i;
      }
      ASSERT_EQ(burst.issued(), seq.issued());
    }
  }
}

// Burst arbitration keeps the distribution even: any run of whole
// rotations spreads items uniformly regardless of burst boundaries.
TEST(ReplicaPickerBurst, EvenDistributionUnderBursts) {
  std::mt19937 rng(11);
  for (std::size_t R : {2u, 3u, 8u}) {
    pipeline::ReplicaPicker p;
    std::vector<std::uint64_t> hits(R, 0);
    std::uint64_t total = 0;
    while (total < 64 * 1000) {
      const std::size_t n = 1 + rng() % 64;
      const std::size_t base = p.next_burst(n, R);
      for (std::size_t i = 0; i < n; ++i) ++hits[(base + i) % R];
      total += n;
    }
    for (std::size_t i = 0; i < R; ++i) {
      // Each replica within one rotation (< 1 burst's worth of slack).
      EXPECT_NEAR(static_cast<double>(hits[i]),
                  static_cast<double>(total) / R, 64.0)
          << "replica " << i << " of " << R;
    }
  }
}

// Stage::pick_burst goes through the same picker state as pick().
TEST(StagePickBurst, MatchesSequentialPick) {
  pipeline::Stage burst("post0", pipeline::StageRole::Post,
                        pipeline::PickPolicy::RoundRobin,
                        pipeline::StateAccess::Read, pipeline::StageTraits{});
  pipeline::Stage seq("post1", pipeline::StageRole::Post,
                      pipeline::PickPolicy::RoundRobin,
                      pipeline::StateAccess::Read, pipeline::StageTraits{});
  for (int i = 0; i < 3; ++i) {
    burst.add_replica(nullptr);
    seq.add_replica(nullptr);
  }
  std::mt19937 rng(3);
  for (int round = 0; round < 100; ++round) {
    const std::size_t n = 1 + rng() % 8;
    const std::size_t base = burst.pick_burst(n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ((base + i) % 3, seq.pick());
    }
  }
}

// ---------------------------------------------------------------- fpc

// Per-completion log: (item id, completion time) in dispatch order.
// Equal logs mean equal schedule decisions, not just equal totals.
using DoneLog = std::vector<std::pair<std::uint32_t, sim::TimePs>>;

nfp::Work make_work(std::uint32_t id, std::uint32_t compute,
                    std::uint32_t mem, sim::Domain* ev, DoneLog* log) {
  nfp::Work w;
  w.compute_cycles = compute;
  w.mem_cycles = mem;
  w.done = [id, ev, log] { log->emplace_back(id, ev->now()); };
  return w;
}

// submit_burst must complete the same items at the same times in the
// same order as per-item submit, across partial bursts, capacity drops,
// and ring churn from interleaved draining.
TEST(FpcBurst, DifferentialAgainstSequentialSubmit) {
  for (std::size_t chunk : {1u, 3u, 8u, 32u, 64u}) {
    sim::Domain ev_a, ev_b;
    nfp::FpcParams fp;
    fp.queue_capacity = 16;
    fp.threads = 4;
    nfp::Fpc a(ev_a, fp, "burst"), b(ev_b, fp, "seq");
    DoneLog log_a, log_b;

    std::mt19937 rng(21);  // same stream for both arms
    std::uint32_t id = 0;
    std::array<nfp::Work, 64> ws;
    for (int round = 0; round < 40; ++round) {
      const std::size_t n = 1 + rng() % chunk;
      std::vector<std::pair<std::uint32_t, std::uint32_t>> costs(n);
      for (auto& c : costs) {
        c = {40 + rng() % 100, 10 + rng() % 40};
      }
      for (std::size_t i = 0; i < n; ++i) {
        ws[i] = make_work(id + static_cast<std::uint32_t>(i),
                          costs[i].first, costs[i].second, &ev_a, &log_a);
      }
      const std::size_t accepted = a.submit_burst(ws.data(), n);
      std::size_t accepted_seq = 0;
      for (std::size_t i = 0; i < n; ++i) {
        accepted_seq += b.submit(make_work(
            id + static_cast<std::uint32_t>(i), costs[i].first,
            costs[i].second, &ev_b, &log_b));
      }
      ASSERT_EQ(accepted, accepted_seq) << "chunk=" << chunk;
      id += static_cast<std::uint32_t>(n);
      // Churn: sometimes let the ring drain a little (or fully), so
      // later bursts hit every queue state — empty, partial, full.
      if (round % 3 == 0) {
        const sim::TimePs dt = sim::ns(50 + rng() % 3000);
        ev_a.run_until(ev_a.now() + dt);
        ev_b.run_until(ev_b.now() + dt);
      }
    }
    ev_a.run_all();
    ev_b.run_all();

    EXPECT_EQ(a.items_done(), b.items_done()) << "chunk=" << chunk;
    EXPECT_EQ(a.items_dropped(), b.items_dropped()) << "chunk=" << chunk;
    EXPECT_EQ(ev_a.now(), ev_b.now()) << "chunk=" << chunk;
    EXPECT_EQ(log_a, log_b) << "chunk=" << chunk;
  }
}

// Over-capacity burst: the prefix that fits is accepted (first item
// dispatches immediately, the ring holds queue_capacity more), the
// suffix is dropped — exactly what n rejected submit() calls would do.
TEST(FpcBurst, PartialBurstDropsSuffixAtCapacity) {
  sim::Domain ev;
  nfp::FpcParams fp;
  fp.queue_capacity = 4;
  fp.threads = 1;
  nfp::Fpc fpc(ev, fp, "tiny");
  DoneLog log;

  std::array<nfp::Work, 16> ws;
  for (std::uint32_t i = 0; i < 16; ++i) {
    ws[i] = make_work(i, 50, 10, &ev, &log);
  }
  // 1 in flight + 4 queued = 5 accepted; 11 dropped, counted.
  EXPECT_EQ(fpc.submit_burst(ws.data(), 16), 5u);
  EXPECT_EQ(fpc.items_dropped(), 11u);
  ev.run_all();
  EXPECT_EQ(fpc.items_done(), 5u);
  ASSERT_EQ(log.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(log[i].first, i);  // accepted prefix, in order
  }
}

// ----------------------------------------------------------- datapath

// Egress/notify capture: order- and time-sensitive fingerprints of
// everything the datapath emits.
struct FingerprintSink : net::PacketSink {
  sim::Domain* ev;
  std::uint64_t hash = 1469598103934665603ULL;
  std::uint64_t count = 0;

  explicit FingerprintSink(sim::Domain* d) : ev(d) {}
  void mix(std::uint64_t v) { hash = (hash ^ v) * 1099511628211ULL; }
  void deliver(const net::PacketPtr& p) override {
    ++count;
    mix(static_cast<std::uint64_t>(ev->now()));
    mix(p->tcp.seq);
    mix(p->tcp.ack);
    mix(p->tcp.flags);
    mix(p->payload.size());
  }
};

struct RunResult {
  std::uint64_t rx = 0, acks = 0, drops = 0, tx = 0, ooo = 0;
  std::uint64_t egress_hash = 0, egress_count = 0, notify_hash = 0;
  sim::TimePs final_now = 0;
  std::string telemetry_json;

  bool operator==(const RunResult&) const = default;
};

// Drives one seeded stream of randomized traffic (variable segment
// sizes, duplicates, adjacent reorders — enough to exercise the OOO and
// drop paths) into a fresh Datapath. `chunk` packets are admitted per
// simulated step; `use_burst` picks deliver_burst vs a deliver() loop
// at the same timestamps (the per-item reference). `cfg_batch` is the
// DatapathConfig::batch_size knob under test.
// `threads` > 0 hosts the datapath's domain inside a DomainScheduler
// with that worker budget (the --threads path); 0 uses a plain Domain.
RunResult run_traffic(bool use_burst, unsigned chunk, unsigned cfg_batch,
                      unsigned threads = 0) {
  const std::uint32_t mss = 1448;
  const std::uint32_t total = 800;
  std::unique_ptr<sim::DomainScheduler> sched;
  std::unique_ptr<sim::Domain> own;
  if (threads > 0) {
    sim::DomainScheduler::Params sp;
    sp.threads = threads;
    sched = std::make_unique<sim::DomainScheduler>(2, 5, sp);
  } else {
    own = std::make_unique<sim::Domain>();
  }
  sim::Domain& ev = sched ? sched->domain(1) : *own;
  FingerprintSink egress(&ev);
  RunResult res;

  core::Datapath::HostIface host;
  std::uint64_t notify_hash = 1469598103934665603ULL;
  host.notify = [&notify_hash, &ev](const host::CtxDesc& d) {
    auto mix = [&notify_hash](std::uint64_t v) {
      notify_hash = (notify_hash ^ v) * 1099511628211ULL;
    };
    mix(static_cast<std::uint64_t>(ev.now()));
    mix(static_cast<std::uint64_t>(d.type));
    mix(d.conn);
    mix(d.a);
  };
  host.to_control = [](const net::PacketPtr&) {};
  host.peer_fin = [](tcp::ConnId) {};

  core::DatapathConfig cfg = core::agilio_cx40_config();
  cfg.batch_size = cfg_batch;
  core::Datapath dp(ev, cfg, host);
  const auto local_mac = net::MacAddr::from_u64(0x02AA);
  const auto peer_mac = net::MacAddr::from_u64(0x02BB);
  const auto local_ip = net::make_ip(10, 0, 0, 1);
  const auto peer_ip = net::make_ip(10, 0, 0, 2);
  dp.set_local(local_mac, local_ip);
  dp.set_mac_sink(&egress);

  host::PayloadBuf rx_buf(1 << 20), tx_buf(1 << 20);

  // Seeded traffic, pre-generated: both arms get the identical packet
  // stream (no pools touched — plain make_tcp_packet allocations).
  struct Chunk {
    std::vector<net::PacketPtr> pkts;
    std::uint32_t freed = 0;  // in-order bytes to hand back via doorbell
  };
  std::mt19937 rng(1234);
  std::uint32_t seq = 2001;
  std::vector<Chunk> chunks;
  for (std::uint32_t made = 0; made < total;) {
    Chunk c;
    const std::uint32_t n = std::min<std::uint32_t>(
        std::min<unsigned>(chunk, core::kMaxBurst), total - made);
    for (std::uint32_t j = 0; j < n; ++j) {
      const std::uint32_t len = 1 + rng() % mss;
      std::uint32_t s = seq;
      const std::uint32_t r = rng() % 16;
      if (r == 0 && seq > 2001 + len) {
        s = seq - len;  // duplicate/overlap: revisits covered sequence
      } else if (r == 1) {
        s = seq + len;  // gap: arrives early, lands in the OOO path
      } else {
        seq += len;
        c.freed += len;
      }
      c.pkts.push_back(net::make_tcp_packet(
          peer_mac, local_mac, peer_ip, local_ip, 9999, 80, s, 1001,
          net::tcpflag::kAck | net::tcpflag::kPsh,
          std::vector<std::uint8_t>(len, 0x5A)));
    }
    made += n;
    chunks.push_back(std::move(c));
  }

  // Drive the datapath entirely through its own domain's events — the
  // pool/flow-table affinity contract (sim/affinity.hpp) requires every
  // datapath touch to happen on the thread that owns its domain, which
  // under a threaded DomainScheduler is a worker, not this thread.
  tcp::ConnId conn = tcp::kInvalidConn;
  ev.schedule_at(0, [&] {
    core::FlowInstall ins;
    ins.tuple = {local_ip, peer_ip, 80, 9999};
    ins.local_mac = local_mac;
    ins.peer_mac = peer_mac;
    ins.iss = 1000;
    ins.irs = 2000;
    ins.rx_buf = &rx_buf;
    ins.tx_buf = &tx_buf;
    conn = dp.install_flow(ins);
  });
  sim::TimePs t = sim::us(1);
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    ev.schedule_at(t, [&, i] {
      Chunk& c = chunks[i];
      if (use_burst) {
        dp.deliver_burst(
            std::span<const net::PacketPtr>(c.pkts.data(), c.pkts.size()));
      } else {
        for (const auto& p : c.pkts) dp.deliver(p);
      }
      c.pkts.clear();
    });
    // 2us of pipeline-settling per segment before the doorbell hands
    // freed receive window back; the next chunk lands at the same time
    // but was scheduled later, so the doorbell always drains first.
    t += sim::us(2) * chunks[i].pkts.size();
    if (chunks[i].freed > 0) {
      ev.schedule_at(t, [&, i] {
        host::CtxDesc d;
        d.type = host::CtxDescType::RxFreed;
        d.conn = conn;
        d.a = chunks[i].freed;
        dp.hc_queue(0).push(d);
        dp.doorbell(0);
      });
    }
  }
  if (sched) {
    sched->run_all();
  } else {
    ev.run_all();
  }

  res.rx = dp.rx_segments();
  res.acks = dp.acks_sent();
  res.drops = dp.drops();
  res.tx = dp.tx_segments();
  res.ooo = dp.ooo_segments();
  res.egress_hash = egress.hash;
  res.egress_count = egress.count;
  res.notify_hash = notify_hash;
  res.final_now = ev.now();
  res.telemetry_json = dp.telem().snapshot().to_json();
  return res;
}

// The tentpole differential: deliver_burst at batch 1/8/32/64 against a
// deliver() loop admitting the identical stream at the identical
// timestamps. Egress packet sequence, drop attribution, host notify
// order, and the full telemetry snapshot (stage visits, latency
// histograms, ring depths, sequencer/reorder counters) must be equal.
TEST(DatapathBatch, BurstMatchesSingleSegmentDelivery) {
  for (unsigned chunk : {1u, 8u, 32u, 64u}) {
    const RunResult burst = run_traffic(true, chunk, chunk);
    const RunResult single = run_traffic(false, chunk, chunk);
    EXPECT_GT(burst.rx, 0u);
    EXPECT_GT(burst.egress_count, 0u);
    EXPECT_EQ(burst, single) << "chunk=" << chunk;
  }
}

// The internal burst machinery (Fpc burst drain, batched doorbell,
// burst replica arbitration) must not leak into simulated results:
// with a fixed per-packet delivery pattern, any cfg.batch_size yields
// byte-identical outcomes.
TEST(DatapathBatch, BatchSizeIsSimulationInvariant) {
  const RunResult b1 = run_traffic(false, 1, 1);
  ASSERT_GT(b1.rx, 0u);
  for (unsigned cfg_batch : {8u, 32u, 64u}) {
    const RunResult bn = run_traffic(false, 1, cfg_batch);
    EXPECT_EQ(b1, bn) << "cfg_batch=" << cfg_batch;
  }
  // Some randomized traffic actually exercised the interesting paths.
  EXPECT_GT(b1.ooo, 0u);
}

// The burst differential holds under the threaded domain scheduler too:
// same-seed runs at 1 and 2 worker threads produce identical results
// (conservative-sync determinism), and burst delivery stays equal to
// per-packet delivery with workers active.
TEST(DatapathBatch, BurstDifferentialHoldsUnderWorkerThreads) {
  const RunResult t1 = run_traffic(true, 32, 32, /*threads=*/1);
  const RunResult t2 = run_traffic(true, 32, 32, /*threads=*/2);
  EXPECT_GT(t1.rx, 0u);
  EXPECT_EQ(t1, t2);
  const RunResult t2_single = run_traffic(false, 32, 32, /*threads=*/2);
  EXPECT_EQ(t2, t2_single);
}

}  // namespace
}  // namespace flextoe
