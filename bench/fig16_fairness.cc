// Figure 16: throughput distribution across bulk connections at line
// rate — median and 1st-percentile of per-connection goodput normalized
// to fair share, plus Jain's fairness index, FlexTOE vs Linux. One
// series per stack; rows are connection counts.
#include <algorithm>

#include "common.hpp"

using namespace flextoe;
using namespace flextoe::benchx;

namespace {

struct FairRes {
  double p50_norm, p1_norm, jfi;
};

FairRes run_case(Stack s, unsigned conns, std::uint64_t seed,
                 sim::TimePs warm, sim::TimePs span) {
  Testbed tb(seed);
  app::NodeParams np;
  np.cores = 8;
  np.sockbuf_bytes = 64 * 1024;
  Testbed::Node* sp = nullptr;
  if (s == Stack::FlexToe) {
    sp = &tb.add_flextoe_node(np);
  } else {
    auto pers = personality(s);
    np.serial_fraction = pers.serial_fraction;
    sp = &tb.add_sw_node(np, pers);
  }
  auto& server = *sp;
  app::ProducerServer srv(tb.ev(), *server.stack,
                          {.port = 9, .frame_size = 8192},
                          nullptr /* NIC-paced, not app-limited */);

  // Spread the connections over several client machines.
  std::vector<std::unique_ptr<app::DrainClient>> clients;
  const unsigned nclients = 4;
  for (unsigned i = 0; i < nclients; ++i) {
    auto& cn = tb.add_client_node(100.0, /*sockbuf=*/64 * 1024);
    app::DrainClient::Params dp;
    dp.connections = conns / nclients;
    dp.port = 9;
    clients.push_back(std::make_unique<app::DrainClient>(
        tb.ev(), *cn.stack, server.ip, dp));
    clients.back()->start();
  }

  // Deep-buffered egress with ECN marking (datacenter ToR defaults).
  tb.the_switch().port_params(0).queue_bytes = 2 * 1024 * 1024;
  tb.the_switch().port_params(0).ecn_threshold = 300 * 1024;
  tb.run_for(warm);  // connect + ramp
  for (auto& c : clients) c->clear_stats();
  // Long window: per-flow fairness at thousands of flows needs many
  // pacing rounds to average (the paper measures 60 s).
  tb.run_for(span);

  std::vector<double> per_conn;
  double total = 0;
  for (auto& c : clients) {
    for (double b : c->per_conn_bytes()) {
      per_conn.push_back(b);
      total += b;
    }
  }
  std::sort(per_conn.begin(), per_conn.end());
  const double fair = total / static_cast<double>(per_conn.size());
  FairRes r;
  r.jfi = sim::jains_fairness_index(per_conn);
  r.p50_norm = fair > 0 ? per_conn[per_conn.size() / 2] / fair : 0;
  r.p1_norm = fair > 0 ? per_conn[per_conn.size() / 100] / fair : 0;
  return r;
}

}  // namespace

BENCH_SCENARIO(fig16, "goodput/fair-share at line rate") {
  const auto conn_counts =
      ctx.pick<std::vector<unsigned>>({64, 256, 1024, 2048}, {64});
  const auto warm = ctx.pick(sim::ms(80), sim::ms(20));
  const auto span = ctx.pick(sim::ms(400), sim::ms(40));

  for (unsigned conns : conn_counts) {
    for (Stack s : {Stack::Linux, Stack::FlexToe}) {
      const auto r = run_case(s, conns, ctx.seed(61), warm, span);
      auto& row = ctx.report().series(stack_name(s)).row(
          std::to_string(conns));
      row.set("p50/fair", r.p50_norm);
      row.set("p1/fair", r.p1_norm);
      row.set("jfi", r.jfi);
    }
  }
  ctx.report().note(
      "Paper shape: FlexTOE median tracks fair share with 1p >= 0.67x "
      "and JFI ~0.98 even at 2K conns (Carousel pacing); Linux fairness\n"
      "collapses past 256 conns (JFI ~0.36 at 2K).");
}
