#include "nfp/fpc.hpp"

#include <utility>

namespace flextoe::nfp {

void Fpc::bind_telemetry(telemetry::Registry& reg,
                         const std::string& prefix) {
  if (!telem_.bind(reg)) return;  // shared core (RTC mode): bind once
  t_done_ = reg.counter(prefix + "/done");
  t_dropped_ = reg.counter(prefix + "/dropped");
  t_depth_ = reg.histogram(prefix + "/queue_depth");
}

bool Fpc::submit(Work w) {
  if (queue_.size() >= params_.queue_capacity) {
    ++items_dropped_;
    if (telem_.on()) t_dropped_->inc();
    return false;
  }
  queue_.push_back(std::move(w));
  if (telem_.on()) t_depth_->record(queue_.size());
  try_dispatch();
  return true;
}

void Fpc::try_dispatch() {
  while (inflight_ < params_.threads && !queue_.empty()) {
    Work w = std::move(queue_.front());
    queue_.pop_front();
    ++inflight_;

    const sim::TimePs compute = params_.clock.cycles(w.compute_cycles);
    const sim::TimePs mem = params_.clock.cycles(w.mem_cycles);

    // Compute serializes on the core; memory waits overlap across threads.
    const sim::TimePs start = std::max(ev_.now(), core_free_);
    core_free_ = start + compute;
    busy_time_ += compute;
    const sim::TimePs completion = core_free_ + mem;

    ev_.schedule_at(completion, [this, alive = alive_,
                                 done = std::move(w.done)]() mutable {
      if (!*alive) return;  // core destroyed with this completion pending
      --inflight_;
      ++items_done_;
      if (telem_.on()) t_done_->inc();
      if (done) done();
      try_dispatch();
    });
  }
}

}  // namespace flextoe::nfp
