// pipeline::Stage — one node of the data-path stage graph.
//
// A stage is a named set of replica FPCs plus everything the framework
// needs to dispatch work onto it uniformly: a replica-selection policy,
// per-replica connection-state access models (the software-managed NFP
// cache hierarchy is per core), per-kind compute costs, traits
// (sequenced / droppable), and typed output ports giving the wiring to
// its successors. The graph (graph.hpp) builds stages from
// `core::DatapathConfig` and owns all dispatch; stage *bodies* (protocol
// logic) stay with the graph's client, bound in as handlers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/seg_ctx.hpp"
#include "nfp/fpc.hpp"
#include "nfp/memory.hpp"
#include "pipeline/replica.hpp"

namespace flextoe::pipeline {

// Instrumented points of the pipeline, in traversal order: the sequencer
// plus every stage body a segment context can visit. Telemetry taxonomy
// `stage/<name>/{visits,lat_ns}` is keyed by these.
enum class StageId : std::size_t {
  Seq,
  Xdp,  // attached XDP program chain (paper §3.3); absent by default
  PreRx,
  PreTx,
  PreHc,
  ProtoRx,
  ProtoTx,
  ProtoHc,
  Post,
  Dma,
  CtxNotify,
  Count,
};
inline constexpr std::size_t kStageCount =
    static_cast<std::size_t>(StageId::Count);

const char* stage_name(StageId s);

// Drop-reason taxonomy: every shed segment is attributed to exactly one
// reason (their telemetry counters sum to the legacy drops() total).
enum class DropReason : std::uint8_t {
  RtcOverload,   // run-to-completion admission gate full (Table 3 baseline)
  FpcQueueFull,  // an inter-stage FPC work ring rejected the item
  XdpDrop,       // an XDP program returned XDP_DROP
};
inline constexpr std::size_t kDropReasons = 3;
const char* drop_reason_name(DropReason r);

// The structural roles a stage can play in the FlexTOE graph (Fig 4).
enum class StageRole : std::uint8_t { Pre, Proto, Post, Dma, CtxQueue };

// How work is mapped onto a stage's replicas.
enum class PickPolicy : std::uint8_t {
  RoundRobin,  // stateless stages: fan out evenly
  ConnShard,   // stateful stages: conn -> fixed replica (atomicity)
};

// What a stage visit pays for connection state under the NFP memory
// model (ignored on flat-memory platforms).
enum class StateAccess : std::uint8_t {
  None,             // no per-connection state
  LookupCache,      // pre: flow-lookup front cache over the IMEM engine
  Read,             // post: one state fetch
  ReadModifyWrite,  // proto: fetch + write-back (2x the hierarchy)
};

struct StageTraits {
  // Sequenced stages feed a reorder point: work shed before reaching it
  // must skip its ordering number so the point does not stall.
  bool sequenced = false;
  // Droppable stages may shed work under overload (RX only — the
  // one-shot data-path never buffers segments; HC/TX work is never lost).
  bool droppable = false;
};

// A typed output port: an explicit stage-to-stage edge. Binding happens
// once at graph wiring time; sending is one indirect call. The target
// name makes the wiring introspectable (construction tests assert it).
template <typename T>
class Port {
 public:
  using Send = std::function<void(const T&)>;

  void bind(std::string target, Send send) {
    target_ = std::move(target);
    send_ = std::move(send);
  }

  void operator()(const T& item) const { send_(item); }
  const std::string& target() const { return target_; }
  explicit operator bool() const { return static_cast<bool>(send_); }

 private:
  std::string target_;
  Send send_;
};

using SegPort = Port<core::SegCtxPtr>;

class Stage {
 public:
  Stage(std::string name, StageRole role, PickPolicy policy,
        StateAccess state, StageTraits traits)
      : name_(std::move(name)),
        role_(role),
        policy_(policy),
        state_(state),
        traits_(traits) {}

  const std::string& name() const { return name_; }
  StageRole role() const { return role_; }
  PickPolicy policy() const { return policy_; }
  StateAccess state_access() const { return state_; }
  const StageTraits& traits() const { return traits_; }

  // ---- Replicas ----
  void add_replica(std::shared_ptr<nfp::Fpc> fpc) {
    fpcs_.push_back(std::move(fpc));
  }
  std::size_t replicas() const { return fpcs_.size(); }
  nfp::Fpc& fpc(std::size_t i) { return *fpcs_[i]; }
  const nfp::Fpc& fpc(std::size_t i) const { return *fpcs_[i]; }
  const std::vector<std::shared_ptr<nfp::Fpc>>& all_fpcs() const {
    return fpcs_;
  }

  // Next replica under this stage's policy. `key` is the connection
  // index for ConnShard stages and unused for RoundRobin ones.
  std::size_t pick(std::uint64_t key = 0) {
    return policy_ == PickPolicy::ConnShard
               ? static_cast<std::size_t>(key % fpcs_.size())
               : picker_.next(fpcs_.size());
  }

  // Burst pick for RoundRobin stages: one arbitration for `n_items`
  // grants; item i goes to `(base + i) % replicas()`. ConnShard stages
  // have no burst form — their mapping is per-key, not per-arrival.
  std::size_t pick_burst(std::size_t n_items) {
    return picker_.next_burst(n_items, fpcs_.size());
  }

  ReplicaPicker& picker() { return picker_; }

  // ---- Per-replica connection-state models ----
  std::vector<std::unique_ptr<nfp::StateAccessModel>>& mem() { return mem_; }
  std::vector<std::unique_ptr<nfp::DirectMappedCache>>& lookup() {
    return lookup_;
  }

  // ---- Typed output ports ----
  SegPort& out(std::string_view port_name) {
    for (auto& [n, p] : ports_) {
      if (n == port_name) return p;
    }
    ports_.emplace_back(std::string(port_name), SegPort{});
    return ports_.back().second;
  }
  const std::vector<std::pair<std::string, SegPort>>& ports() const {
    return ports_;
  }

 private:
  std::string name_;
  StageRole role_;
  PickPolicy policy_;
  StateAccess state_;
  StageTraits traits_;
  std::vector<std::shared_ptr<nfp::Fpc>> fpcs_;
  ReplicaPicker picker_;
  std::vector<std::unique_ptr<nfp::StateAccessModel>> mem_;
  std::vector<std::unique_ptr<nfp::DirectMappedCache>> lookup_;
  std::vector<std::pair<std::string, SegPort>> ports_;
};

}  // namespace flextoe::pipeline
