// Table 5 (Appendix A): connection state partitioning across pipeline
// stages — 15 B pre / 43 B protocol / 51 B post, 108 B total. Also checks
// the footprint claims built on it (connections per protocol FPC cache,
// per flow-group, per EMEM cache).
#include "core/flow_state.hpp"

#include <gtest/gtest.h>

#include "core/config.hpp"
#include "core/datapath.hpp"
#include "sim/domain.hpp"

namespace flextoe::core {
namespace {

TEST(StatePartition, PaperBitBudgets) {
  // Pre-processor: peer MAC 48 + peer IP 32 + ports 32 + flow group 2.
  EXPECT_EQ(kPreStateBits, 114u);
  EXPECT_EQ((kPreStateBits + 7) / 8, 15u);  // Table 5: 15 B

  // Protocol: rx|tx_pos 64, tx_avail 32, rx_avail 32, remote_win 16,
  // tx_sent 32, seq 32, ack 32, ooo 64, dupack 4, next_ts 32.
  EXPECT_EQ(kProtoStateBits, 340u);
  EXPECT_EQ((kProtoStateBits + 7) / 8, 43u);  // Table 5: 43 B

  // Post: opaque 64, ctx 16, bases 128, sizes 64, cnt 64+8, rtt 32,
  // rate 32.
  EXPECT_EQ(kPostStateBits, 408u);
  EXPECT_EQ((kPostStateBits + 7) / 8, 51u);  // Table 5: 51 B

  // Total: 108 B per connection.
  EXPECT_EQ((kPreStateBits + kProtoStateBits + kPostStateBits + 7) / 8,
            108u);
}

TEST(StatePartition, FootprintClaims) {
  // Paper: "16 connections per protocol FPC [local CAM], 512 per
  // flow-group [CLS], 16K in the EMEM cache".
  const DatapathConfig cfg;
  nfp::IslandMemory island(512);
  EXPECT_EQ(island.cls_cache.capacity(), 512u);
  nfp::NicMemory nic;
  EXPECT_GE(nic.emem_cache.capacity() * cfg.flow_groups /
                std::max(1u, cfg.flow_groups),
            8192u);
  // 2 GB EMEM / 108 B -> millions of connections are addressable.
  EXPECT_GT((2ull << 30) / 108, 8'000'000u);
}

TEST(StatePartition, StagesOwnDisjointState) {
  // Structural: installing a flow populates each partition with its own
  // fields; protocol state never aliases pre/post fields.
  sim::Domain ev;
  Datapath::HostIface host;
  host.notify = [](const host::CtxDesc&) {};
  host.to_control = [](const net::PacketPtr&) {};
  host.peer_fin = [](tcp::ConnId) {};
  Datapath dp(ev, agilio_cx40_config(), host);

  host::PayloadBuf rx(4096), tx(4096);
  FlowInstall ins;
  ins.tuple = {net::make_ip(10, 0, 0, 1), net::make_ip(10, 0, 0, 2), 80,
               9999};
  ins.peer_mac = net::MacAddr::from_u64(0xBB);
  ins.iss = 1000;
  ins.irs = 2000;
  ins.remote_win = 32 * 1024;
  ins.rx_buf = &rx;
  ins.tx_buf = &tx;
  ins.context_id = 3;
  ins.opaque = 0xDEADBEEF;
  const auto conn = dp.install_flow(ins);

  const ProtoState* p = dp.proto_state(conn);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->seq, 1001u);  // iss + 1 (SYN consumed)
  EXPECT_EQ(p->ack, 2001u);
  EXPECT_EQ(p->remote_win, 32u * 1024);
  EXPECT_EQ(p->rx_avail, 4096u);
  EXPECT_EQ(p->tx_avail, 0u);
  EXPECT_EQ(p->tx_sent, 0u);
  EXPECT_FALSE(p->ooo.has_interval());

  dp.remove_flow(conn);
  EXPECT_FALSE(dp.flow_valid(conn));
  EXPECT_EQ(dp.proto_state(conn), nullptr);
}

}  // namespace
}  // namespace flextoe::core
