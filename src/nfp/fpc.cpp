#include "nfp/fpc.hpp"

#include <utility>

#include "trace/trace.hpp"

namespace flextoe::nfp {

void Fpc::bind_telemetry(telemetry::Registry& reg,
                         const std::string& prefix) {
  if (!telem_.bind(reg)) return;  // shared core (RTC mode): bind once
  t_done_ = reg.counter(prefix + "/done");
  t_dropped_ = reg.counter(prefix + "/dropped");
  t_depth_ = reg.histogram(prefix + "/queue_depth");
  // Gauge twin of the depth histogram: its high-water mark surfaces as
  // `<prefix>/queue_depth_peak`, catching transient ring saturation the
  // sampled histogram can miss.
  t_depth_now_ = reg.gauge(prefix + "/queue_depth");
}

bool Fpc::submit(Work w) {
  if (queue_.size() >= params_.queue_capacity) {
    ++items_dropped_;
    if (telem_.on()) t_dropped_->inc();
    return false;
  }
  const std::uint64_t cid = w.trace_cid;
  queue_.push_back(std::move(w));
  if (telem_.on()) {
    t_depth_->record(queue_.size());
    t_depth_now_->set(static_cast<std::int64_t>(queue_.size()));
  }
  if (cid != 0) {
    if (trace::Ring* r = ev_.trace_ring()) {
      if (trace_track_ == 0) {
        trace_track_ = trace::Tracer::instance().intern("fpc/" + name_);
        trace_name_ = trace::Tracer::instance().intern("work");
      }
      // Ring-residency span: open at enqueue, closed when dispatched.
      r->record(ev_.now(), trace::Phase::kAsyncBegin, trace_name_,
                trace_track_, cid, queue_.size());
    }
  }
  try_dispatch();
  return true;
}

void Fpc::try_dispatch() {
  while (inflight_ < params_.threads && !queue_.empty()) {
    Work w = std::move(queue_.front());
    queue_.pop_front();
    ++inflight_;
    if (telem_.on()) {
      t_depth_now_->set(static_cast<std::int64_t>(queue_.size()));
    }
    if (w.trace_cid != 0) {
      if (trace::Ring* r = ev_.trace_ring()) {
        r->record(ev_.now(), trace::Phase::kAsyncEnd, trace_name_,
                  trace_track_, w.trace_cid, queue_.size());
      }
    }

    const sim::TimePs compute = params_.clock.cycles(w.compute_cycles);
    const sim::TimePs mem = params_.clock.cycles(w.mem_cycles);

    // Compute serializes on the core; memory waits overlap across threads.
    const sim::TimePs start = std::max(ev_.now(), core_free_);
    core_free_ = start + compute;
    busy_time_ += compute;
    const sim::TimePs completion = core_free_ + mem;

    ev_.schedule_at(completion, [this, alive = alive_,
                                 done = std::move(w.done)]() mutable {
      if (!*alive) return;  // core destroyed with this completion pending
      --inflight_;
      ++items_done_;
      if (telem_.on()) t_done_->inc();
      if (done) done();
      try_dispatch();
    });
  }
}

}  // namespace flextoe::nfp
