#include "nfp/fpc.hpp"

#include <utility>

#include "sim/prefetch.hpp"
#include "trace/trace.hpp"

namespace flextoe::nfp {

void Fpc::bind_telemetry(telemetry::Registry& reg,
                         const std::string& prefix) {
  if (!telem_.bind(reg)) return;  // shared core (RTC mode): bind once
  t_done_ = reg.counter(prefix + "/done");
  t_dropped_ = reg.counter(prefix + "/dropped");
  t_depth_ = reg.histogram(prefix + "/queue_depth");
  // Gauge twin of the depth histogram: its high-water mark surfaces as
  // `<prefix>/queue_depth_peak`, catching transient ring saturation the
  // sampled histogram can miss.
  t_depth_now_ = reg.gauge(prefix + "/queue_depth");
}

void Fpc::trace_enqueue(std::uint64_t cid) {
  if (trace::Ring* r = ev_.trace_ring()) {
    if (trace_track_ == 0) {
      trace_track_ = trace::Tracer::instance().intern("fpc/" + name_);
      trace_name_ = trace::Tracer::instance().intern("work");
    }
    // Ring-residency span: open at enqueue, closed when dispatched.
    r->record(ev_.now(), trace::Phase::kAsyncBegin, trace_name_,
              trace_track_, cid, queue_.size());
  }
}

bool Fpc::submit(Work w) {
  if (queue_.size() >= params_.queue_capacity) {
    ++items_dropped_;
    if (telem_.on()) t_dropped_->inc();
    return false;
  }
  const std::uint64_t cid = w.trace_cid;
  queue_.push_back(std::move(w));
  if (telem_.on()) {
    t_depth_->record(queue_.size());
    t_depth_now_->set(static_cast<std::int64_t>(queue_.size()));
  }
  if (cid != 0) trace_enqueue(cid);
  drain();
  return true;
}

std::size_t Fpc::submit_burst(Work* ws, std::size_t n) {
  const bool telem_on = telem_.on();
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) sim::prefetch(&ws[i + 1]);
    Work& w = ws[i];
    if (queue_.size() >= params_.queue_capacity) {
      ++items_dropped_;
      if (telem_on) t_dropped_->inc();
      continue;
    }
    const std::uint64_t cid = w.trace_cid;
    queue_.push_back(std::move(w));
    if (telem_on) {
      t_depth_->record(queue_.size());
      t_depth_now_->set(static_cast<std::int64_t>(queue_.size()));
    }
    if (cid != 0) trace_enqueue(cid);
    ++accepted;
    // Drain between items, exactly like n x submit() would: the depth
    // histogram and dispatch order must not depend on burst boundaries.
    drain();
  }
  return accepted;
}

void Fpc::drain() {
  if (inflight_ >= params_.threads || queue_.empty()) return;
  // No events run during this call, so the clock is constant: read it
  // once for the whole harvest instead of once per item.
  const sim::TimePs now = ev_.now();
  trace::Ring* ring = ev_.trace_ring();
  std::size_t popped = 0;
  while (inflight_ < params_.threads && !queue_.empty()) {
    unsigned harvest = 0;
    while (harvest < params_.burst && inflight_ < params_.threads &&
           !queue_.empty()) {
      Work w = std::move(queue_.front());
      queue_.pop_front();
      if (!queue_.empty()) sim::prefetch(&queue_.front());
      ++inflight_;
      ++harvest;
      if (w.trace_cid != 0 && ring != nullptr) {
        ring->record(now, trace::Phase::kAsyncEnd, trace_name_, trace_track_,
                     w.trace_cid, queue_.size());
      }

      const sim::TimePs compute = params_.clock.cycles(w.compute_cycles);
      const sim::TimePs mem = params_.clock.cycles(w.mem_cycles);

      // Compute serializes on the core; memory waits overlap across
      // threads.
      const sim::TimePs start = std::max(now, core_free_);
      core_free_ = start + compute;
      busy_time_ += compute;
      const sim::TimePs completion = core_free_ + mem;

      ev_.schedule_at(completion, [this, alive = alive_,
                                   done = std::move(w.done)]() mutable {
        if (!*alive) return;  // core destroyed with this completion pending
        --inflight_;
        ++items_done_;
        if (telem_.on()) t_done_->inc();
        if (done) done();
        drain();
      });
    }
    popped += harvest;
  }
  // One gauge set per drain pass: the submit-side set that preceded any
  // pop is always the larger value, so value and high-water mark match
  // the old per-pop updates exactly.
  if (popped != 0 && telem_.on()) {
    t_depth_now_->set(static_cast<std::int64_t>(queue_.size()));
  }
}

}  // namespace flextoe::nfp
