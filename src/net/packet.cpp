#include "net/packet.hpp"

#include <cstring>

#include "net/checksum.hpp"

namespace flextoe::net {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint16_t get_u16(std::span<const std::uint8_t> b, std::size_t off) {
  return static_cast<std::uint16_t>((b[off] << 8) | b[off + 1]);
}

std::uint32_t get_u32(std::span<const std::uint8_t> b, std::size_t off) {
  return (static_cast<std::uint32_t>(b[off]) << 24) |
         (static_cast<std::uint32_t>(b[off + 1]) << 16) |
         (static_cast<std::uint32_t>(b[off + 2]) << 8) | b[off + 3];
}

}  // namespace

std::vector<std::uint8_t> Packet::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(frame_size());

  // Ethernet.
  out.insert(out.end(), eth.dst.bytes.begin(), eth.dst.bytes.end());
  out.insert(out.end(), eth.src.bytes.begin(), eth.src.bytes.end());
  if (vlan) {
    put_u16(out, kEtherTypeVlan);
    put_u16(out, vlan->tci);
  }
  put_u16(out, eth.ethertype);

  // IPv4.
  const std::size_t ip_off = out.size();
  const std::uint16_t ip_total =
      static_cast<std::uint16_t>(20 + tcp.header_len() + payload.size());
  out.push_back(0x45);  // version 4, IHL 5
  out.push_back(static_cast<std::uint8_t>((ip.dscp << 2) |
                                          static_cast<std::uint8_t>(ip.ecn)));
  put_u16(out, ip_total);
  put_u16(out, ip.id);
  put_u16(out, 0x4000);  // flags: DF, fragment offset 0
  out.push_back(ip.ttl);
  out.push_back(ip.proto);
  put_u16(out, 0);  // checksum placeholder
  put_u32(out, ip.src);
  put_u32(out, ip.dst);
  const std::uint16_t ip_csum = internet_checksum(
      std::span<const std::uint8_t>(out.data() + ip_off, 20));
  out[ip_off + 10] = static_cast<std::uint8_t>(ip_csum >> 8);
  out[ip_off + 11] = static_cast<std::uint8_t>(ip_csum);

  // TCP.
  const std::size_t tcp_off = out.size();
  put_u16(out, tcp.sport);
  put_u16(out, tcp.dport);
  put_u32(out, tcp.seq);
  put_u32(out, tcp.ack);
  out.push_back(static_cast<std::uint8_t>((tcp.header_len() / 4) << 4));
  out.push_back(tcp.flags);
  put_u16(out, tcp.window);
  put_u16(out, 0);  // checksum placeholder
  put_u16(out, tcp.urgent);
  if (tcp.mss) {
    out.push_back(2);  // kind: MSS
    out.push_back(4);  // length
    put_u16(out, *tcp.mss);
  }
  if (tcp.ts) {
    out.push_back(1);   // NOP
    out.push_back(1);   // NOP
    out.push_back(8);   // kind: timestamps
    out.push_back(10);  // length
    put_u32(out, tcp.ts->val);
    put_u32(out, tcp.ts->ecr);
  }
  out.insert(out.end(), payload.begin(), payload.end());

  // TCP checksum over pseudo-header + TCP header + payload.
  const std::uint16_t tcp_len =
      static_cast<std::uint16_t>(tcp.header_len() + payload.size());
  std::vector<std::uint8_t> pseudo;
  pseudo.reserve(12);
  put_u32(pseudo, ip.src);
  put_u32(pseudo, ip.dst);
  pseudo.push_back(0);
  pseudo.push_back(ip.proto);
  put_u16(pseudo, tcp_len);
  std::uint32_t sum = checksum_partial(pseudo);
  sum = checksum_partial(
      std::span<const std::uint8_t>(out.data() + tcp_off, tcp_len), sum);
  const std::uint16_t tcp_csum = checksum_finish(sum);
  out[tcp_off + 16] = static_cast<std::uint8_t>(tcp_csum >> 8);
  out[tcp_off + 17] = static_cast<std::uint8_t>(tcp_csum);

  return out;
}

std::optional<Packet> Packet::parse(std::span<const std::uint8_t> frame,
                                    bool verify_checksums) {
  Packet p;
  std::size_t off = 0;
  if (frame.size() < 14) return std::nullopt;
  std::memcpy(p.eth.dst.bytes.data(), frame.data(), 6);
  std::memcpy(p.eth.src.bytes.data(), frame.data() + 6, 6);
  std::uint16_t ethertype = get_u16(frame, 12);
  off = 14;
  if (ethertype == kEtherTypeVlan) {
    if (frame.size() < 18) return std::nullopt;
    p.vlan = VlanTag{get_u16(frame, 14)};
    ethertype = get_u16(frame, 16);
    off = 18;
  }
  p.eth.ethertype = ethertype;
  if (ethertype != kEtherTypeIpv4) return std::nullopt;

  if (frame.size() < off + 20) return std::nullopt;
  const std::size_t ip_off = off;
  if ((frame[ip_off] >> 4) != 4) return std::nullopt;
  const std::size_t ihl = static_cast<std::size_t>(frame[ip_off] & 0x0F) * 4;
  if (ihl < 20 || frame.size() < ip_off + ihl) return std::nullopt;
  p.ip.dscp = frame[ip_off + 1] >> 2;
  p.ip.ecn = static_cast<Ecn>(frame[ip_off + 1] & 0x03);
  const std::uint16_t ip_total = get_u16(frame, ip_off + 2);
  p.ip.id = get_u16(frame, ip_off + 4);
  p.ip.ttl = frame[ip_off + 8];
  p.ip.proto = frame[ip_off + 9];
  p.ip.src = get_u32(frame, ip_off + 12);
  p.ip.dst = get_u32(frame, ip_off + 16);
  if (p.ip.proto != kProtoTcp) return std::nullopt;
  if (ip_total < ihl || frame.size() < ip_off + ip_total) return std::nullopt;
  if (verify_checksums &&
      internet_checksum(frame.subspan(ip_off, ihl)) != 0) {
    return std::nullopt;
  }

  const std::size_t tcp_off = ip_off + ihl;
  const std::size_t tcp_total = ip_total - ihl;
  if (tcp_total < 20) return std::nullopt;
  p.tcp.sport = get_u16(frame, tcp_off);
  p.tcp.dport = get_u16(frame, tcp_off + 2);
  p.tcp.seq = get_u32(frame, tcp_off + 4);
  p.tcp.ack = get_u32(frame, tcp_off + 8);
  const std::size_t doff = static_cast<std::size_t>(frame[tcp_off + 12] >> 4) * 4;
  if (doff < 20 || doff > tcp_total) return std::nullopt;
  p.tcp.flags = frame[tcp_off + 13];
  p.tcp.window = get_u16(frame, tcp_off + 14);
  p.tcp.urgent = get_u16(frame, tcp_off + 18);

  // Options.
  std::size_t opt = tcp_off + 20;
  const std::size_t opt_end = tcp_off + doff;
  while (opt < opt_end) {
    const std::uint8_t kind = frame[opt];
    if (kind == 0) break;  // end of options
    if (kind == 1) {       // NOP
      ++opt;
      continue;
    }
    if (opt + 1 >= opt_end) return std::nullopt;
    const std::uint8_t len = frame[opt + 1];
    if (len < 2 || opt + len > opt_end) return std::nullopt;
    if (kind == 2 && len == 4) {
      p.tcp.mss = get_u16(frame, opt + 2);
    } else if (kind == 8 && len == 10) {
      p.tcp.ts = TcpTsOpt{get_u32(frame, opt + 2), get_u32(frame, opt + 6)};
    }
    opt += len;
  }

  if (verify_checksums) {
    std::vector<std::uint8_t> pseudo;
    pseudo.reserve(12);
    put_u32(pseudo, p.ip.src);
    put_u32(pseudo, p.ip.dst);
    pseudo.push_back(0);
    pseudo.push_back(p.ip.proto);
    put_u16(pseudo, static_cast<std::uint16_t>(tcp_total));
    std::uint32_t sum = checksum_partial(pseudo);
    sum = checksum_partial(frame.subspan(tcp_off, tcp_total), sum);
    if (checksum_finish(sum) != 0) return std::nullopt;
  }

  p.payload.assign(frame.begin() + static_cast<std::ptrdiff_t>(tcp_off + doff),
                   frame.begin() + static_cast<std::ptrdiff_t>(ip_off + ip_total));
  return p;
}

PacketPtr make_tcp_packet(const MacAddr& src_mac, const MacAddr& dst_mac,
                          Ipv4Addr src_ip, Ipv4Addr dst_ip,
                          std::uint16_t sport, std::uint16_t dport,
                          std::uint32_t seq, std::uint32_t ack,
                          std::uint8_t flags,
                          std::vector<std::uint8_t> payload) {
  auto p = std::make_shared<Packet>();
  init_tcp_packet(*p, src_mac, dst_mac, src_ip, dst_ip, sport, dport, seq,
                  ack, flags);
  p->payload = std::move(payload);
  return p;
}

}  // namespace flextoe::net
