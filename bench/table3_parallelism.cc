// Table 3: FlexTOE data-path parallelism breakdown — echo benchmark with
// 64 connections, one 2 KB RPC in flight each, as data-path parallelism
// levels are progressively enabled.
#include "common.hpp"

using namespace flextoe;
using namespace flextoe::benchx;

namespace {

struct Res {
  double mbps;
  double p50_us, p9999_us;
};

Res run_config(const core::DatapathConfig& dp_cfg) {
  Testbed tb(71);
  host::FlexToeNicConfig cfg;
  cfg.datapath = dp_cfg;
  auto& server = tb.add_flextoe_node({.cores = 8}, cfg);
  app::EchoServer srv(tb.ev(), *server.stack, {.port = 7});

  std::vector<std::unique_ptr<app::ClosedLoopClient>> clients;
  for (unsigned i = 0; i < 2; ++i) {
    auto& cn = tb.add_client_node();
    app::ClosedLoopClient::Params cp;
    cp.connections = 32;
    cp.pipeline = 1;  // one 2 KB RPC in flight per connection
    cp.request_size = 2048;
    clients.push_back(std::make_unique<app::ClosedLoopClient>(
        tb.ev(), *cn.stack, server.ip, cp));
    clients.back()->start();
  }

  tb.run_for(sim::ms(30));
  std::uint64_t base = 0;
  for (auto& c : clients) {
    base += c->completed();
    c->latency().clear();
  }
  const sim::TimePs span = sim::ms(60);
  tb.run_for(span);
  std::uint64_t done = 0;
  sim::Percentiles lat(1 << 18);
  for (auto& c : clients) {
    done += c->completed();
    for (double p : {50.0, 99.99}) (void)p;
  }
  done -= base;

  Res r;
  r.mbps = static_cast<double>(done) * 2048 * 2 * 8.0 /
           sim::to_sec(span) / 1e6;
  // Merge latency across clients (approximate percentiles by sampling
  // both accumulators).
  r.p50_us = (clients[0]->latency().percentile(50) +
              clients[1]->latency().percentile(50)) /
             2.0;
  r.p9999_us = std::max(clients[0]->latency().percentile(99.99),
                        clients[1]->latency().percentile(99.99));
  return r;
}

}  // namespace

int main() {
  print_header("Table 3: data-path parallelism breakdown",
               {"Design", "Mbps", "x", "p50 us", "p99.99 us"});

  struct Step {
    const char* name;
    core::DatapathConfig cfg;
  };
  const std::vector<Step> steps = {
      {"Baseline(RTC)", core::ablation_baseline()},
      {"+Pipelining", core::ablation_pipelined()},
      {"+IntraFPC(8t)", core::ablation_threads()},
      {"+Repl pre/post", core::ablation_replicated()},
      {"+Flow-groups", core::ablation_flow_groups()},
  };

  double base_mbps = 0;
  for (const auto& st : steps) {
    const Res r = run_config(st.cfg);
    if (base_mbps == 0) base_mbps = r.mbps;
    print_cell(st.name);
    print_cell(r.mbps, 1);
    print_cell(r.mbps / base_mbps, 1);
    print_cell(r.p50_us, 1);
    print_cell(r.p9999_us, 1);
    end_row();
  }
  std::printf(
      "\nPaper shape: pipelining 46x, +threads 2.25x, +replication 1.35x, "
      "+flow-groups 2x — cumulative ~286x; each level is necessary.\n");
  return 0;
}
