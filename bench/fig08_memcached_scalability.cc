// Figure 8: Memcached throughput scalability — MOps vs server cores for
// Linux, Chelsio, TAS, FlexTOE.
#include "common.hpp"

using namespace flextoe;
using namespace flextoe::benchx;

int main() {
  const std::vector<unsigned> cores = {1, 2, 4, 6, 8, 10, 12, 14, 16};
  print_header("Figure 8: memcached throughput (MOps) vs server cores",
               {"Cores", "Linux", "Chelsio", "TAS", "FlexTOE"});

  for (unsigned nc : cores) {
    print_cell(static_cast<double>(nc), 0);
    for (Stack s : all_stacks()) {
      Testbed tb(17);
      auto& server = add_server(tb, s, nc);
      // Several client machines, as in the paper's testbed.
      std::vector<std::unique_ptr<app::KvClient>> clients;
      const unsigned nclients = 3;
      for (unsigned i = 0; i < nclients; ++i) {
        auto& cn = tb.add_client_node();
        app::KvClient::Params cp;
        cp.connections = 8 + 4 * nc;  // enough load to saturate
        cp.pipeline = 4;
        cp.seed = 100 + i;
        clients.push_back(std::make_unique<app::KvClient>(
            tb.ev(), *cn.stack, server.ip, cp));
      }
      app::KvServer srv(tb.ev(), *server.stack,
                        {.port = 11211, .app_cycles = app_cycles(s)},
                        server.cpu.get());
      for (auto& c : clients) c->start();

      tb.run_for(sim::ms(15));  // warmup
      std::uint64_t base = 0;
      for (auto& c : clients) base += c->completed();
      const sim::TimePs span = sim::ms(30);
      tb.run_for(span);
      std::uint64_t done = 0;
      for (auto& c : clients) done += c->completed();
      done -= base;
      print_cell(static_cast<double>(done) / sim::to_sec(span) / 1e6, 3);
    }
    end_row();
  }
  std::printf(
      "\nPaper shape: FlexTOE ~1.6x TAS, ~4.9x Chelsio, ~5.5x Linux at "
      "saturation; FlexTOE NIC compute-bound around 12 cores;\n"
      "Linux/Chelsio plateau early (in-kernel locking).\n");
  return 0;
}
