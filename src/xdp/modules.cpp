#include "xdp/modules.hpp"

namespace flextoe::xdp {

// Line-by-line port of the paper's Listing 1 (bpf_xdp_prog +
// patch_headers), with BPF map calls replaced by the map classes.
XdpAction SpliceProgram::run(XdpMd& md) {
  net::Packet& hdr = md.pkt;

  // Filter non-IPv4/TCP segments to control-plane.
  if (hdr.ip.proto != net::kProtoTcp) return XdpAction::Redirect;

  const tcp::FlowTuple key{hdr.ip.dst, hdr.ip.src, hdr.tcp.dport,
                           hdr.tcp.sport};

  // Connection Control: Segments with SYN, FIN, RST —
  // atomically remove map entry and forward to control-plane.
  if (hdr.tcp.has(net::tcpflag::kSyn) || hdr.tcp.has(net::tcpflag::kFin) ||
      hdr.tcp.has(net::tcpflag::kRst)) {
    splice_tbl_.erase(key);
    return XdpAction::Redirect;
  }

  const auto state = splice_tbl_.lookup(key);
  if (!state.has_value()) return XdpAction::Pass;  // send to data-plane

  // patch_headers()
  hdr.eth.src = local_mac_.to_u64() != 0 ? local_mac_ : hdr.eth.dst;
  hdr.eth.dst = state->remote_mac;
  hdr.ip.src = hdr.ip.dst;
  hdr.ip.dst = state->remote_ip;
  hdr.tcp.sport = state->local_port;
  hdr.tcp.dport = state->remote_port;
  hdr.tcp.seq += state->seq_delta;
  hdr.tcp.ack += state->ack_delta;
  // FlexTOE handles sequencing and updating the checksum of the segment
  // (checksums are recomputed at serialization in this substrate).

  ++spliced_;
  return XdpAction::Tx;  // send out the MAC
}

}  // namespace flextoe::xdp
