// Table 1: Per-request CPU impact of TCP processing.
//
// A single-threaded memcached-like server (32 B keys/values, closed-loop
// clients at saturation) runs over each stack; host CPU cycles are
// accounted by category and divided by completed requests. The
// micro-architectural rows (instructions, IPC, icache) come from the
// personality model (they are hardware-counter measurements in the paper
// and are model inputs here; see EXPERIMENTS.md).
#include "common.hpp"

using namespace flextoe;
using namespace flextoe::benchx;

namespace {

struct Uarch {
  double instructions_k, ipc, icache_kb;
};

Uarch uarch_model(Stack s) {
  switch (s) {
    case Stack::Linux:
      return {16.18, 1.33, 47.50};
    case Stack::Chelsio:
      return {8.14, 0.92, 73.43};
    case Stack::Tas:
      return {6.26, 1.85, 39.75};
    case Stack::FlexToe:
      return {2.93, 1.75, 19.00};
  }
  return {};
}

}  // namespace

int main() {
  print_header("Table 1: per-request CPU cycles (kc) by component",
               {"Module", "Linux", "Chelsio", "TAS", "FlexTOE"});

  struct Row {
    double driver, stack, sockets, app, other, total;
    std::uint64_t reqs;
  };
  std::vector<Row> rows;

  for (Stack s : all_stacks()) {
    Testbed tb(7);
    auto& server = add_server(tb, s, /*cores=*/1);
    auto& client = tb.add_client_node();

    app::KvServer srv(tb.ev(), *server.stack,
                      {.port = 11211, .app_cycles = app_cycles(s)},
                      server.cpu.get());
    app::KvClient::Params cp;
    cp.connections = 8;
    cp.pipeline = 4;
    cp.key_size = 32;
    cp.value_size = 32;
    app::KvClient cli(tb.ev(), *client.stack, server.ip, cp);
    cli.start();

    tb.run_for(sim::ms(20));  // warmup (fill store, ramp cwnd)
    server.cpu->clear_accounting();
    cli.clear_stats();
    tb.run_for(sim::ms(60));

    const auto reqs = cli.completed();
    auto kc = [&](sim::CpuCat c) {
      return reqs == 0 ? 0.0
                       : static_cast<double>(server.cpu->cycles(c)) /
                             static_cast<double>(reqs) / 1000.0;
    };
    Row r;
    r.driver = kc(sim::CpuCat::Driver);
    r.stack = kc(sim::CpuCat::Stack);
    r.sockets = kc(sim::CpuCat::Sockets);
    r.app = kc(sim::CpuCat::App);
    r.other = kc(sim::CpuCat::Other);
    r.total = r.driver + r.stack + r.sockets + r.app + r.other;
    r.reqs = reqs;
    rows.push_back(r);
  }

  auto print_metric = [&](const char* name, double Row::*field, int prec) {
    print_cell(name);
    for (const auto& r : rows) print_cell(r.*field, prec);
    end_row();
  };
  print_metric("NIC driver", &Row::driver, 2);
  print_metric("TCP/IP stack", &Row::stack, 2);
  print_metric("POSIX sockets", &Row::sockets, 2);
  print_metric("Application", &Row::app, 2);
  print_metric("Other", &Row::other, 2);
  print_metric("Total", &Row::total, 2);

  print_cell("requests");
  for (const auto& r : rows) {
    print_cell(static_cast<double>(r.reqs), 0);
  }
  end_row();

  std::printf("\n-- micro-architecture rows (personality model inputs) --\n");
  print_header("Table 1 (cont.)",
               {"Metric", "Linux", "Chelsio", "TAS", "FlexTOE"});
  print_cell("Instr (k)");
  for (Stack s : all_stacks()) print_cell(uarch_model(s).instructions_k, 2);
  end_row();
  print_cell("IPC");
  for (Stack s : all_stacks()) print_cell(uarch_model(s).ipc, 2);
  end_row();
  print_cell("Icache (KB)");
  for (Stack s : all_stacks()) print_cell(uarch_model(s).icache_kb, 2);
  end_row();

  std::printf(
      "\nPaper (Table 1 totals, kc/req): Linux 12.13, Chelsio 8.89, "
      "TAS 3.34, FlexTOE 1.67\n");
  return 0;
}
