// libTOE (paper §3, Fig 2): the application library. Interposes on the
// POSIX socket API (here: tcp::StackIface), keeps per-socket payload
// buffers in host memory, and communicates with the offloaded data-path
// through context queues and MMIO doorbells — the host never touches TCP
// processing for established connections.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/datapath.hpp"
#include "host/ctx_queue.hpp"
#include "host/payload_buf.hpp"
#include "sim/cpu.hpp"
#include "sim/domain.hpp"
#include "tcp/stack_iface.hpp"

namespace flextoe::host {

class ControlPlane;

struct LibToeConfig {
  std::size_t sockbuf_bytes = 512 * 1024;
  std::uint16_t context_id = 1;  // context 0 belongs to the control plane
  // Host cycles per socket API call (Table 1, FlexTOE column: 0.74 kc
  // sockets + 0.04 kc other per request across two calls).
  std::uint32_t sock_op_cycles = 250;
  std::uint32_t other_op_cycles = 12;
  // RX buffer space is returned to the NIC in batches to amortize
  // doorbells; always returned when the buffer drains.
  std::uint32_t rx_free_batch = 8 * 1024;
};

class LibToe final : public tcp::StackIface {
 public:
  LibToe(sim::Domain& ev, core::Datapath& dp, ControlPlane& cp,
         LibToeConfig cfg, sim::CpuPool* cpu = nullptr);

  // ---- StackIface ----
  void set_callbacks(tcp::StackCallbacks cbs) override { cbs_ = std::move(cbs); }
  void listen(std::uint16_t port) override;
  tcp::ConnId connect(net::Ipv4Addr remote_ip,
                      std::uint16_t remote_port) override;
  std::size_t send(tcp::ConnId c, std::span<const std::uint8_t> data) override;
  std::size_t recv(tcp::ConnId c, std::span<std::uint8_t> out) override;
  std::size_t rx_available(tcp::ConnId c) const override;
  std::size_t tx_space(tcp::ConnId c) const override;
  void close(tcp::ConnId c) override;
  net::Ipv4Addr local_ip() const override;

  // ---- Data-path notifications (wired by FlexToeNic) ----
  void on_notify(const CtxDesc& desc);

  // ---- Control-plane callbacks ----
  struct SockBufs {
    std::unique_ptr<PayloadBuf> rx;
    std::unique_ptr<PayloadBuf> tx;
  };
  // Allocates socket buffers for a connection being established.
  SockBufs* alloc_bufs(tcp::ConnId conn);
  void on_accepted(tcp::ConnId conn);
  void on_connected(tcp::ConnId conn, bool ok);
  void on_closed(tcp::ConnId conn);

  std::uint16_t context_id() const { return cfg_.context_id; }
  std::uint64_t doorbells() const { return doorbells_; }

 private:
  struct Sock {
    SockBufs bufs;
    // RX: absolute read position and readable byte count.
    std::uint64_t rx_pos = 0;
    std::uint64_t rx_readable = 0;
    std::uint32_t freed_accum = 0;
    // TX: absolute append position and free credits.
    std::uint64_t tx_pos = 0;
    std::uint64_t tx_credits = 0;
    bool open = false;
    bool eof = false;
    bool closed_notified = false;
  };

  Sock* sock(tcp::ConnId c);
  const Sock* sock(tcp::ConnId c) const;
  void post_hc(CtxDescType type, tcp::ConnId conn, std::uint32_t a);
  void charge_sockop();

  sim::Domain& ev_;
  core::Datapath& dp_;
  ControlPlane& cp_;
  LibToeConfig cfg_;
  sim::CpuPool* cpu_;
  tcp::StackCallbacks cbs_;
  std::vector<std::unique_ptr<Sock>> socks_;
  std::uint64_t doorbells_ = 0;
};

}  // namespace flextoe::host
