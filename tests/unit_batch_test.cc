// Unit tests for substrate components: FPC model, caches and memory
// hierarchy, DMA engine, CPU pool, Carousel, reorder buffers, byte rings,
// payload buffers, framing, CC algorithms, RTT estimation, tracing.
#include <gtest/gtest.h>

#include "app/framer.hpp"
#include "pipeline/reorder.hpp"
#include "host/payload_buf.hpp"
#include "nfp/caches.hpp"
#include "nfp/dma.hpp"
#include "nfp/fpc.hpp"
#include "nfp/memory.hpp"
#include "sched/carousel.hpp"
#include "sim/domain.hpp"
#include "sim/cpu.hpp"
#include "sim/trace.hpp"
#include "tcp/byte_ring.hpp"
#include "tcp/cc.hpp"
#include "tcp/rtt.hpp"

namespace flextoe {
namespace {

// ----------------------------------------------------------------- FPC

TEST(Fpc, SingleThreadSerializesCompute) {
  sim::Domain ev;
  nfp::Fpc fpc(ev, {.threads = 1}, "t");
  int done = 0;
  // Two items of 800 cycles (1 us each at 800 MHz) serialize.
  for (int i = 0; i < 2; ++i) {
    fpc.submit({800, 0, [&] { ++done; }});
  }
  ev.run_until(sim::us(1));
  EXPECT_EQ(done, 1);
  ev.run_until(sim::us(2));
  EXPECT_EQ(done, 2);
}

TEST(Fpc, ThreadsHideMemoryLatency) {
  sim::Domain ev;
  nfp::Fpc fast(ev, {.threads = 8}, "fast");
  // 8 items: 80 compute + 720 memory cycles each. With 8 threads the
  // memory waits overlap: total ~ 8*80 compute + 720 tail.
  int done = 0;
  for (int i = 0; i < 8; ++i) fast.submit({80, 720, [&] { ++done; }});
  ev.run_all();
  EXPECT_EQ(done, 8);
  // 8*80 + 720 = 1360 cycles = 1.7us (vs 8us if fully serialized).
  EXPECT_LE(ev.now(), sim::kFpcClock.cycles(1400));
}

TEST(Fpc, QueueFullDropsWork) {
  sim::Domain ev;
  nfp::Fpc fpc(ev, {.threads = 1, .queue_capacity = 4}, "q");
  int accepted = 0;
  for (int i = 0; i < 20; ++i) {
    if (fpc.submit({100, 0, nullptr})) ++accepted;
  }
  EXPECT_LT(accepted, 20);
  EXPECT_GT(fpc.items_dropped(), 0u);
  ev.run_all();
  EXPECT_EQ(fpc.items_done(), static_cast<std::uint64_t>(accepted));
}

// --------------------------------------------------------------- caches

TEST(CamCache, LruEviction) {
  nfp::CamCache cam(4);
  for (std::uint32_t k = 0; k < 4; ++k) EXPECT_FALSE(cam.access(k));
  for (std::uint32_t k = 0; k < 4; ++k) EXPECT_TRUE(cam.access(k));
  cam.access(99);                  // evicts LRU (key 0)
  EXPECT_FALSE(cam.contains(0));
  EXPECT_TRUE(cam.contains(99));
  EXPECT_TRUE(cam.contains(1));
}

TEST(CamCache, AccessRefreshesLru) {
  nfp::CamCache cam(2);
  cam.access(1);
  cam.access(2);
  cam.access(1);   // 2 becomes LRU
  cam.access(3);   // evicts 2
  EXPECT_TRUE(cam.contains(1));
  EXPECT_FALSE(cam.contains(2));
}

TEST(DirectMapped, IndexCollisions) {
  nfp::DirectMappedCache dm(8);
  EXPECT_FALSE(dm.access(3));
  EXPECT_TRUE(dm.access(3));
  EXPECT_FALSE(dm.access(11));  // 11 % 8 == 3: collision evicts
  EXPECT_FALSE(dm.access(3));
}

TEST(StateAccess, HierarchyCosts) {
  nfp::MemLatencies lat;
  nfp::IslandMemory island(8);
  nfp::NicMemory nic(16);
  nfp::StateAccessModel m(lat, &island, &nic, 2);
  // Cold: misses all the way to EMEM DRAM.
  EXPECT_EQ(m.access_cycles(1), lat.emem_dram);
  // Hot in local CAM.
  EXPECT_EQ(m.access_cycles(1), lat.local);
  // Another key evicts nothing yet (local holds 2).
  EXPECT_EQ(m.access_cycles(2), lat.emem_dram);
  EXPECT_EQ(m.access_cycles(1), lat.local);
  // Third key evicts key 2 from local; 2 still hits CLS.
  m.access_cycles(3);
  EXPECT_EQ(m.access_cycles(2), lat.cls);
}

TEST(StateAccess, EmemSramCapacityCliff) {
  nfp::MemLatencies lat;
  nfp::IslandMemory island(4);
  nfp::NicMemory nic(8);
  nfp::StateAccessModel m(lat, &island, &nic, 1);
  // Sweep 32 connections round-robin: island (4) and EMEM cache (8)
  // thrash, so steady-state accesses pay DRAM.
  for (int round = 0; round < 3; ++round) {
    for (std::uint32_t c = 0; c < 32; ++c) m.access_cycles(c);
  }
  EXPECT_EQ(m.access_cycles(0), lat.emem_dram);
}

// ------------------------------------------------------------------ DMA

TEST(Dma, CompletionAfterLatencyAndBandwidth) {
  sim::Domain ev;
  nfp::DmaParams p;
  p.gbps = 8.0;  // 1 byte/ns
  p.latency = sim::ns(500);
  nfp::DmaEngine dma(ev, p);
  sim::TimePs done_at = 0;
  dma.issue(1000, [&] { done_at = ev.now(); });
  ev.run_all();
  EXPECT_EQ(done_at, sim::ns(1000) + sim::ns(500));
}

TEST(Dma, OutstandingLimitQueues) {
  sim::Domain ev;
  nfp::DmaParams p;
  p.max_outstanding = 2;
  nfp::DmaEngine dma(ev, p);
  int done = 0;
  for (int i = 0; i < 5; ++i) dma.issue(64, [&] { ++done; });
  EXPECT_EQ(dma.outstanding(), 2u);
  ev.run_all();
  EXPECT_EQ(done, 5);
  EXPECT_EQ(dma.transactions(), 5u);
}

// -------------------------------------------------------------- CpuPool

TEST(CpuPool, ParallelAcrossCores) {
  sim::Domain ev;
  sim::CpuPool cpu(ev, 4, sim::kHostClock);
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    cpu.run(2000, sim::CpuCat::App, [&] { ++done; });  // 1 us each
  }
  ev.run_until(sim::us(1));
  EXPECT_EQ(done, 4);  // all four finish together on four cores
}

TEST(CpuPool, SerialFractionLimitsScaling) {
  sim::Domain ev;
  sim::CpuPool cpu(ev, 8, sim::kHostClock);
  cpu.set_serial_fraction(1.0);  // everything under one lock
  int done = 0;
  for (int i = 0; i < 8; ++i) cpu.run(2000, sim::CpuCat::App, [&] { ++done; });
  ev.run_until(sim::us(1));
  EXPECT_LT(done, 8);  // lock serializes: not all done after 1 us
  ev.run_until(sim::us(9));
  EXPECT_EQ(done, 8);
}

TEST(CpuPool, CategoryAccounting) {
  sim::Domain ev;
  sim::CpuPool cpu(ev, 1);
  cpu.run(100, sim::CpuCat::Stack, nullptr);
  cpu.reattribute(sim::CpuCat::Stack, sim::CpuCat::Driver, 40);
  EXPECT_EQ(cpu.cycles(sim::CpuCat::Stack), 60u);
  EXPECT_EQ(cpu.cycles(sim::CpuCat::Driver), 40u);
  EXPECT_EQ(cpu.total_cycles(), 100u);
}

// ------------------------------------------------------------- Carousel

TEST(Carousel, UncongestedRoundRobin) {
  sim::Domain ev;
  sched::Carousel car(ev);
  std::vector<std::uint32_t> order;
  car.set_trigger([&](std::uint32_t f) {
    order.push_back(f);
    return 100u;
  });
  car.set_rate(1, 0);
  car.set_rate(2, 0);
  car.update_avail(1, 300);
  car.update_avail(2, 300);
  ev.run_until(sim::us(50));
  // Both flows fully drained, interleaved.
  ASSERT_GE(order.size(), 6u);
  EXPECT_NE(order[0], order[1]);
}

TEST(Carousel, RateLimitedPacing) {
  sim::Domain ev;
  sched::Carousel car(ev);
  std::vector<sim::TimePs> at;
  car.set_trigger([&](std::uint32_t) {
    at.push_back(ev.now());
    return 1000u;
  });
  car.set_rate(7, 100'000'000);  // 100 MB/s -> 10 us per 1000 B
  car.update_avail(7, 5000);
  ev.run_until(sim::ms(1));
  ASSERT_EQ(at.size(), 5u);
  // Spacing ~10 us (quantized by 1 us slots).
  for (std::size_t i = 1; i < at.size(); ++i) {
    EXPECT_GE(at[i] - at[i - 1], sim::us(9));
    EXPECT_LE(at[i] - at[i - 1], sim::us(12));
  }
}

TEST(Carousel, BlockedFlowParksUntilKick) {
  sim::Domain ev;
  sched::Carousel car(ev);
  int calls = 0;
  bool blocked = true;
  car.set_trigger([&](std::uint32_t) -> std::uint32_t {
    ++calls;
    return blocked ? 0 : 500;
  });
  car.set_rate(1, 0);
  car.update_avail(1, 500);
  ev.run_until(sim::us(100));
  EXPECT_EQ(calls, 1);  // parked after the first blocked trigger
  blocked = false;
  car.kick(1);
  ev.run_until(sim::us(200));
  EXPECT_EQ(calls, 2);  // resumed and drained
}

TEST(Carousel, RemoveFlowStopsService) {
  sim::Domain ev;
  sched::Carousel car(ev);
  int calls = 0;
  car.set_trigger([&](std::uint32_t) {
    ++calls;
    return 100u;
  });
  car.set_rate(3, 1'000'000);
  car.update_avail(3, 10'000);
  ev.run_until(sim::us(150));
  const int before = calls;
  car.remove_flow(3);
  ev.run_until(sim::ms(2));
  EXPECT_LE(calls, before + 1);
}

// ------------------------------------------------------- reorder buffer

TEST(Reorder, ReleasesInOrder) {
  std::vector<int> out;
  pipeline::ReorderBuffer<int> rob([&](int v) { out.push_back(v); });
  rob.push(2, 102);
  rob.push(0, 100);
  EXPECT_EQ(out, (std::vector<int>{100}));
  rob.push(1, 101);
  EXPECT_EQ(out, (std::vector<int>{100, 101, 102}));
}

TEST(Reorder, SkipUnblocks) {
  std::vector<int> out;
  pipeline::ReorderBuffer<int> rob([&](int v) { out.push_back(v); });
  rob.push(1, 101);
  rob.push(3, 103);
  EXPECT_TRUE(out.empty());
  rob.skip(0);
  EXPECT_EQ(out, (std::vector<int>{101}));
  rob.skip(2);
  EXPECT_EQ(out, (std::vector<int>{101, 103}));
  EXPECT_EQ(rob.pending(), 0u);
}

TEST(Reorder, SkipAheadOfTime) {
  std::vector<int> out;
  pipeline::ReorderBuffer<int> rob([&](int v) { out.push_back(v); });
  rob.skip(1);  // future skip arrives before item 0
  rob.push(0, 100);
  rob.push(2, 102);
  EXPECT_EQ(out, (std::vector<int>{100, 102}));
}

// ------------------------------------------------------------ byte ring

TEST(ByteRing, WrapAroundReadWrite) {
  tcp::ByteRing ring(16);
  std::vector<std::uint8_t> a{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_EQ(ring.write(a), 10u);
  std::uint8_t out[6];
  EXPECT_EQ(ring.read(out), 6u);
  // Now head=6; write 10 more wraps around the 16-byte buffer.
  std::vector<std::uint8_t> b{11, 12, 13, 14, 15, 16, 17, 18, 19, 20};
  EXPECT_EQ(ring.write(b), 10u);
  std::vector<std::uint8_t> all(14);
  EXPECT_EQ(ring.read(all), 14u);
  EXPECT_EQ(all[0], 7);
  EXPECT_EQ(all[13], 20);
}

TEST(ByteRing, WriteAtAndAdvance) {
  tcp::ByteRing ring(32);
  std::vector<std::uint8_t> hole{9, 9, 9};
  ring.write_at(4, hole);  // OOO placement 4 bytes past tail
  std::vector<std::uint8_t> head{1, 2, 3, 4};
  ring.write(head);
  ring.advance_tail(3);  // the OOO bytes become valid
  std::vector<std::uint8_t> out(7);
  EXPECT_EQ(ring.read(out), 7u);
  EXPECT_EQ(out[3], 4);
  EXPECT_EQ(out[4], 9);
}

TEST(ByteRing, PeekDoesNotConsume) {
  tcp::ByteRing ring(16);
  std::vector<std::uint8_t> d{5, 6, 7, 8};
  ring.write(d);
  std::uint8_t out[2];
  EXPECT_EQ(ring.peek(1, out), 2u);
  EXPECT_EQ(out[0], 6);
  EXPECT_EQ(ring.used(), 4u);
}

// ---------------------------------------------------------- payload buf

TEST(PayloadBuf, AbsolutePositionsWrap) {
  host::PayloadBuf buf(64);
  std::vector<std::uint8_t> d(10, 0xAB);
  buf.write(60, d);  // wraps: 4 at end, 6 at start
  std::vector<std::uint8_t> out(10);
  buf.read(60, out);
  EXPECT_EQ(out, d);
  // Same physical bytes visible at pos 60 + k*64.
  buf.read(60 + 64 * 3, out);
  EXPECT_EQ(out, d);
}

// -------------------------------------------------------------- framing

TEST(Framer, SplitAcrossFeeds) {
  app::FrameReader r;
  const auto f = app::make_frame(10, 0x7E);
  r.feed(std::span(f.data(), 5));
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(r.next(out));
  r.feed(std::span(f.data() + 5, f.size() - 5));
  ASSERT_TRUE(r.next(out));
  EXPECT_EQ(out.size(), 10u);
  EXPECT_EQ(out[0], 0x7E);
}

TEST(Framer, MultipleFramesBackToBack) {
  app::FrameReader r;
  auto a = app::make_frame(3, 1);
  auto b = app::make_frame(5, 2);
  a.insert(a.end(), b.begin(), b.end());
  r.feed(a);
  std::uint32_t len;
  ASSERT_TRUE(r.skip_frame(len));
  EXPECT_EQ(len, 3u);
  ASSERT_TRUE(r.skip_frame(len));
  EXPECT_EQ(len, 5u);
  EXPECT_FALSE(r.skip_frame(len));
}

// ---------------------------------------------------------- CC and RTT

TEST(Dctcp, GrowsWithoutEcn) {
  tcp::Dctcp cc;
  const auto w0 = cc.cwnd();
  tcp::CcInput in;
  in.acked_bytes = 20000;
  in.rtt = sim::us(50);
  cc.update(in);
  EXPECT_GT(cc.cwnd(), w0);
  EXPECT_DOUBLE_EQ(cc.alpha(), 0.0);
}

TEST(Dctcp, EcnShrinksProportionally) {
  tcp::Dctcp cc;
  tcp::CcInput in;
  in.acked_bytes = 100000;
  in.rtt = sim::us(50);
  for (int i = 0; i < 5; ++i) cc.update(in);  // grow
  const auto grown = cc.cwnd();
  in.ecn_bytes = 50000;  // 50% marked
  cc.update(in);
  EXPECT_GT(cc.alpha(), 0.0);
  EXPECT_LT(cc.cwnd(), grown);
}

TEST(Dctcp, TimeoutCollapsesToOneMss) {
  tcp::Dctcp cc;
  tcp::CcInput in;
  in.timeouts = 1;
  in.rtt = sim::us(50);
  cc.update(in);
  EXPECT_EQ(cc.cwnd(), tcp::kDefaultMss);
}

TEST(Timely, RttAboveThighDecreasesRate) {
  tcp::Timely cc;
  tcp::CcInput in;
  in.rtt = sim::us(40);
  cc.update(in);  // prime prev_rtt
  const auto r0 = cc.rate();
  in.rtt = sim::us(900);  // way above t_high
  cc.update(in);
  EXPECT_LT(cc.rate(), r0);
}

TEST(Timely, LowRttIncreasesRate) {
  tcp::Timely cc;
  tcp::CcInput in;
  in.rtt = sim::us(30);
  cc.update(in);
  const auto r0 = cc.rate();
  cc.update(in);
  EXPECT_GT(cc.rate(), r0);
}

TEST(Rtt, Rfc6298Smoothing) {
  tcp::RttEstimator est;
  est.on_sample(sim::us(100));
  EXPECT_EQ(est.srtt(), sim::us(100));
  est.on_sample(sim::us(200));
  EXPECT_GT(est.srtt(), sim::us(100));
  EXPECT_LT(est.srtt(), sim::us(200));
  EXPECT_GE(est.rto(), sim::ms(1));  // min RTO clamp
}

TEST(Rtt, BackoffDoublesAndResets) {
  tcp::RttEstimator est(sim::us(100), sim::sec(1));
  est.on_sample(sim::ms(10));
  const auto r = est.rto_backed_off();
  est.backoff();
  EXPECT_EQ(est.rto_backed_off(), std::min(r * 2, sim::sec(1)));
  est.reset_backoff();
  EXPECT_EQ(est.rto_backed_off(), r);
}

// ---------------------------------------------------------------- trace

TEST(Trace, DisabledCostsNothingAndCountsNothing) {
  sim::TraceRegistry t;
  const auto id = t.register_point("event/test");
  t.hit(id);
  EXPECT_EQ(t.hits(id), 0u);
  EXPECT_EQ(t.per_hit_cycles(), 0u);
}

TEST(Trace, EnabledCountsAndCharges) {
  sim::TraceRegistry t;
  const auto id = t.register_point("event/test");
  t.set_enabled(true);
  t.hit(id, 5);
  t.hit(id, 7);
  EXPECT_EQ(t.hits(id), 2u);
  EXPECT_EQ(t.accumulated(id), 12u);
  EXPECT_GT(t.per_hit_cycles(), 0u);
  EXPECT_EQ(t.hits("event/test"), 2u);
}

TEST(Trace, RegistrationIsIdempotent) {
  sim::TraceRegistry t;
  const auto a = t.register_point("x");
  const auto b = t.register_point("x");
  EXPECT_EQ(a, b);
  EXPECT_EQ(t.num_points(), 1u);
}

}  // namespace
}  // namespace flextoe
