// Figure 12: large-RPC goodput vs message size; (a) unidirectional
// (32 B response), (b) bidirectional (echo). One series per stack; rows
// are "<uni|bidir>/<msg-size>".
#include <cstdio>

#include "common.hpp"

using namespace flextoe;
using namespace flextoe::benchx;

namespace {

double run_case(Stack s, std::uint32_t msg, bool echo, unsigned seed,
                sim::TimePs warm, sim::TimePs span) {
  Testbed tb(seed);
  auto& server = add_server(tb, s, with_stack_cores(s, 2));
  auto& client = tb.add_client_node();

  app::EchoServer srv(
      tb.ev(), *server.stack,
      {.port = 7, .response_size = echo ? 0u : 32u}, server.cpu.get());
  app::ClosedLoopClient::Params cp;
  cp.connections = 1;
  cp.pipeline = 1;
  cp.request_size = msg;
  cp.response_size = echo ? 0 : 32;
  app::ClosedLoopClient cli(tb.ev(), *client.stack, server.ip, cp);
  cli.start();

  // Warm up at least one full RPC, then measure several.
  tb.run_for(warm);
  const std::uint64_t base = cli.completed();
  tb.run_for(span);
  const double rpcs = static_cast<double>(cli.completed() - base);
  const double dir_bytes = echo ? 2.0 * msg : 1.0 * msg;
  return rpcs * dir_bytes * 8.0 / sim::to_sec(span) / 1e9;
}

}  // namespace

BENCH_SCENARIO(fig12, "large-RPC goodput (Gbps), uni- and bidirectional") {
  const auto sizes = ctx.pick<std::vector<std::uint32_t>>(
      {128 * 1024, 512 * 1024, 2 * 1024 * 1024, 8 * 1024 * 1024,
       32 * 1024 * 1024},
      {128 * 1024, 2 * 1024 * 1024});
  const auto warm = ctx.pick(sim::ms(30), sim::ms(8));
  const auto span = ctx.pick(sim::ms(120), sim::ms(20));

  for (bool echo : {false, true}) {
    for (std::uint32_t msg : sizes) {
      char label[48];
      std::snprintf(label, sizeof label, "%s/%u", echo ? "bidir" : "uni",
                    msg);
      for (Stack s : all_stacks()) {
        const double gbps = ctx.measure([&](int rep) {
          return run_case(s, msg, echo, 37 + static_cast<unsigned>(rep),
                          warm, span);
        });
        ctx.report().series(stack_name(s)).set(label, "gbps", gbps);
      }
    }
  }
  ctx.report().note(
      "Paper shape: (a) all within ~20%, Chelsio slightly ahead "
      "(streaming ASIC); (b) FlexTOE ~27% above Chelsio — per-connection\n"
      "pipeline parallelism pays off for bidirectional flows.");
}
