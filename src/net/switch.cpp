#include "net/switch.hpp"

#include <cassert>

namespace flextoe::net {

Switch::Switch(sim::Domain& ev, sim::Rng rng, int num_ports,
               SwitchPortParams defaults)
    : ev_(ev), rng_(rng) {
  ports_.resize(static_cast<std::size_t>(num_ports));
  for (auto& p : ports_) p.params = defaults;
  ingress_sinks_.reserve(static_cast<std::size_t>(num_ports));
  for (int i = 0; i < num_ports; ++i) {
    ingress_sinks_.push_back(std::make_unique<IngressSink>(*this, i));
  }
}

void Switch::attach(int port, PacketSink* device) {
  ports_.at(static_cast<std::size_t>(port)).device = device;
}

PacketSink* Switch::ingress_sink(int port) {
  return ingress_sinks_.at(static_cast<std::size_t>(port)).get();
}

SwitchPortParams& Switch::port_params(int port) {
  return ports_.at(static_cast<std::size_t>(port)).params;
}

std::uint32_t Switch::queue_depth(int port) const {
  return ports_.at(static_cast<std::size_t>(port)).queued_bytes;
}

void Switch::ingress(int port, const PacketPtr& pkt) {
  // Learn the source MAC.
  mac_table_[pkt->eth.src.to_u64()] = port;

  if (drop_prob_ > 0.0 && rng_.chance(drop_prob_)) {
    ++dropped_random_;
    return;
  }

  auto it = mac_table_.find(pkt->eth.dst.to_u64());
  if (it != mac_table_.end()) {
    if (it->second != port) enqueue(it->second, pkt);
    return;
  }
  // Unknown destination: flood all other ports.
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    if (static_cast<int>(i) != port && ports_[i].device != nullptr) {
      enqueue(static_cast<int>(i), pkt);
    }
  }
}

void Switch::enqueue(int port_idx, PacketPtr pkt) {
  Port& port = ports_.at(static_cast<std::size_t>(port_idx));
  const std::uint32_t sz = pkt->wire_size();

  if (port.queued_bytes + sz > port.params.queue_bytes) {
    ++dropped_queue_;
    return;  // tail drop
  }
  // WRED/DCTCP-style ECN marking: mark CE once the queue exceeds the
  // threshold, if the packet is ECN-capable.
  if (port.params.ecn_marking && port.queued_bytes >= port.params.ecn_threshold &&
      pkt->ip.ecn != Ecn::NotEct && pkt->ip.ecn != Ecn::Ce) {
    pkt = pool_.clone(*pkt);  // copy-on-write: other recipients see the
                              // original; the copy reuses a pooled slot
    pkt->ip.ecn = Ecn::Ce;
    ++ecn_marked_;
  }

  port.queued_bytes += sz;
  port.queue.push_back(std::move(pkt));
  if (!port.busy) start_tx(port_idx);
}

void Switch::start_tx(int port_idx) {
  Port& port = ports_.at(static_cast<std::size_t>(port_idx));
  if (port.queue.empty()) {
    port.busy = false;
    return;
  }
  port.busy = true;
  PacketPtr pkt = std::move(port.queue.front());
  port.queue.pop_front();
  port.queued_bytes -= pkt->wire_size();

  const double bits = static_cast<double>(pkt->wire_size()) * 8.0;
  const auto ser = static_cast<sim::TimePs>(bits * 1000.0 / port.params.gbps);
  PacketSink* device = port.device;
  const sim::TimePs prop = port.params.prop_delay;

  ev_.schedule_in(ser, [this, port_idx, device, prop, pkt] {
    ++forwarded_;
    if (device != nullptr) {
      ev_.schedule_in(prop, [device, pkt] { device->deliver(pkt); });
    }
    start_tx(port_idx);
  });
}

}  // namespace flextoe::net
