// Figure 15: robustness under packet loss — (a) 100 connections of 64 B
// echo with 8 pipelined requests each; (b) 8 unidirectional large flows.
// The switch drops packets uniformly at random.
#include "common.hpp"

using namespace flextoe;
using namespace flextoe::benchx;

namespace {

double run_small(Stack s, double loss) {
  Testbed tb(53);
  tb.the_switch().set_drop_prob(loss);
  auto& server = add_server(tb, s, 16);  // multi-threaded echo server
  app::EchoServer srv(tb.ev(), *server.stack, {.port = 7},
                      server.cpu.get());

  std::vector<std::unique_ptr<app::ClosedLoopClient>> clients;
  for (unsigned i = 0; i < 2; ++i) {
    auto& cn = tb.add_client_node();
    app::ClosedLoopClient::Params cp;
    cp.connections = 50;
    cp.pipeline = 8;
    cp.request_size = 64;
    clients.push_back(std::make_unique<app::ClosedLoopClient>(
        tb.ev(), *cn.stack, server.ip, cp));
    clients.back()->start();
  }

  tb.run_for(sim::ms(20));
  std::uint64_t base = 0;
  for (auto& c : clients) base += c->completed();
  const sim::TimePs span = sim::ms(60);
  tb.run_for(span);
  std::uint64_t done = 0;
  for (auto& c : clients) done += c->completed();
  done -= base;
  // Goodput counts request+response payload bytes.
  return static_cast<double>(done) * (64.0 * 2) * 8.0 /
         sim::to_sec(span) / 1e9;
}

double run_large(Stack s, double loss) {
  Testbed tb(59);
  tb.the_switch().set_drop_prob(loss);
  auto& server = add_server(tb, s, 4);
  // 8 unidirectional bulk flows toward the server.
  app::EchoServer srv(tb.ev(), *server.stack,
                      {.port = 7, .response_size = 32},
                      server.cpu.get());
  auto& cn = tb.add_client_node();
  app::ClosedLoopClient::Params cp;
  cp.connections = 8;
  cp.pipeline = 2;
  cp.request_size = 512 * 1024;
  cp.response_size = 32;
  app::ClosedLoopClient cli(tb.ev(), *cn.stack, server.ip, cp);
  cli.start();

  tb.run_for(sim::ms(30));
  const std::uint64_t base = srv.bytes_rx();
  const sim::TimePs span = sim::ms(100);
  tb.run_for(span);
  return static_cast<double>(srv.bytes_rx() - base) * 8.0 /
         sim::to_sec(span) / 1e9;
}

}  // namespace

int main() {
  const std::vector<std::pair<const char*, double>> losses = {
      {"0", 0.0},        {"1e-4%", 1e-6}, {"1e-3%", 1e-5},
      {"1e-2%", 1e-4},   {"1e-1%", 1e-3}, {"2%", 0.02},
  };

  print_header("Figure 15a: small-RPC goodput (Gbps) vs loss",
               {"Loss", "Linux", "Chelsio", "TAS", "FlexTOE"});
  for (auto [name, p] : losses) {
    print_cell(name);
    for (Stack s : all_stacks()) print_cell(run_small(s, p), 4);
    end_row();
  }

  print_header("Figure 15b: large-flow goodput (Gbps) vs loss",
               {"Loss", "Linux", "Chelsio", "TAS", "FlexTOE"});
  for (auto [name, p] : losses) {
    print_cell(name);
    for (Stack s : all_stacks()) print_cell(run_large(s, p), 3);
    end_row();
  }

  std::printf(
      "\nPaper shape: at 2%% loss FlexTOE >=2x TAS and ~10x the rest on "
      "small RPCs; Chelsio collapses on large flows even at 1e-4%% loss\n"
      "(no receiver OOO buffering); Linux most robust per-flow (SACK) but "
      "lower absolute goodput.\n");
  return 0;
}
