// Sharded NIC flow-state table: one open-addressing shard per
// flow-group island, no cross-island hot state (the DAOS per-target
// idiom applied to the paper's flow-group partitioning, §3.1).
//
// Layout per shard:
//   index  — open-addressing (linear probe) hash index over live
//            connections, power-of-two sized, erased by backward-shift
//            (Knuth 6.4 / robin-hood style): no tombstones, so probe
//            lengths never degrade as churn accumulates.
//   arena  — stable ConnRecord storage (deque: grows without moving
//            existing records, so ConnRecord* survives rehash and
//            unrelated insert/erase — only erase(conn) invalidates that
//            conn's record).
// A global directory maps ConnId -> {shard, arena slot} for the
// control-plane / stage-body access path; the RX hot path never touches
// it (lookup() probes the owning island's shard directly with the
// sequencer's precomputed CRC, tcp::FlowKey).
//
// Concurrency: shards follow the domain-affinity contract
// (`src/sim/affinity.hpp`) — each shard binds to the thread of the
// island that first touches it and asserts on cross-thread access in
// !NDEBUG builds. There are no locks anywhere; cross-island hand-off
// must go through the epoch mailbox machinery and rebind_owner().
//
// Footprint: the table audits its own memory (index + arena + directory
// + free lists) and reports bytes_per_conn through bind_telemetry —
// the paper's "millions of connections fit in EMEM" claim as a
// measured, regression-gated quantity (fig13_conn_scalability).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "core/flow_state.hpp"
#include "sim/affinity.hpp"
#include "tcp/flow.hpp"
#include "tcp/stack_iface.hpp"
#include "telemetry/registry.hpp"

namespace flextoe::host {
class PayloadBuf;
}

namespace flextoe::core {

// Congestion-control statistic accumulator (cleared by control-plane
// reads, paper §3.1.3).
struct CcAccum {
  std::uint64_t acked = 0;
  std::uint64_t ecn = 0;
  std::uint32_t fretx = 0;
};

// Everything the data path keeps per established connection: the
// Table 5 state partitions plus the simulation-side sidecars that used
// to live in parallel vectors in core::Datapath. One record, one cache
// neighbourhood, one line in the bytes-per-conn audit.
struct ConnRecord {
  FlowState fs;
  host::PayloadBuf* rx_buf = nullptr;
  host::PayloadBuf* tx_buf = nullptr;
  tcp::SeqNum snd_max = 0;                // GBN recovery bookkeeping
  tcp::SeqNum high_rtx = 0;               // fast-rtx dedup
  std::uint32_t pending_planned = 0;      // triggered, pre-protocol
  CcAccum cc;
};

class FlowTable {
 public:
  // `shards` = flow-group island count (>= 1). `expected_conns` sizes
  // the per-shard indexes up front (DatapathConfig::max_conns) so the
  // steady state never rehashes; growth beyond the hint still works.
  FlowTable(unsigned shards, std::uint32_t expected_conns);

  FlowTable(const FlowTable&) = delete;
  FlowTable& operator=(const FlowTable&) = delete;

  // ---- Hot path (island-local) ----
  // Probes the key's shard; returns the live record whose tuple matches,
  // or nullptr. No directory access, no allocation.
  ConnRecord* lookup(const tcp::FlowKey& key, tcp::ConnId* conn_out);

  // ---- Directory path (control plane, stage bodies) ----
  ConnRecord* get(tcp::ConnId conn);
  const ConnRecord* get(tcp::ConnId conn) const;
  bool valid(tcp::ConnId conn) const;

  // Installs `tuple` under `desired` (kInvalidConn = pick the next free
  // id). If the tuple is already indexed, the index entry is repointed
  // to the new connection (the old record stays reachable by id only).
  // Returns the connection id; the record is default-initialized.
  tcp::ConnId insert(const tcp::FlowTuple& tuple,
                     tcp::ConnId desired = tcp::kInvalidConn);

  // Removes `conn`: un-indexes its tuple (backward-shift, tombstone-
  // free) and recycles the arena slot. Returns false if not live.
  bool erase(tcp::ConnId conn);

  std::size_t size() const { return live_; }
  unsigned shard_count() const {
    return static_cast<unsigned>(shards_.size());
  }
  std::uint64_t rehashes() const { return rehashes_; }

  // Probe length of the last successful lookup/insert (test hook for
  // the backward-shift invariant: probe chains stay intact after
  // arbitrary churn).
  std::uint32_t last_probe_len() const { return last_probe_len_; }

  // ---- Footprint audit ----
  // All memory reserved by the table (indexes at capacity, arena
  // records, directory, free lists, the shard structs themselves).
  std::size_t bytes_reserved() const;
  // bytes_reserved() / live connections (0 when empty).
  double bytes_per_conn() const;

  // Registers gauges under `prefix`: <prefix>/conns,
  // <prefix>/bytes_total, <prefix>/bytes_per_conn (updated on every
  // insert/erase), plus a <prefix>/rehashes counter.
  void bind_telemetry(telemetry::Registry& reg, const std::string& prefix);

  // Quiesced ownership hand-off of one shard to another thread (epoch
  // mailbox migration; see sim/affinity.hpp).
  void rebind_owner(unsigned shard);

  // Iterates live connections in id order: f(ConnId, const ConnRecord&).
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t id = 0; id < directory_.size(); ++id) {
      const Ref& r = directory_[id];
      if (r.shard == kNoShard) continue;
      f(static_cast<tcp::ConnId>(id), shards_[r.shard].arena[r.slot]);
    }
  }

 private:
  // Index entry: precomputed CRC + arena slot + owning conn. 12 bytes;
  // conn == kInvalidConn marks an empty bucket.
  struct Slot {
    std::uint32_t hash = 0;
    std::uint32_t arena_slot = 0;
    tcp::ConnId conn = tcp::kInvalidConn;
  };

  struct Shard {
    std::vector<Slot> index;  // power-of-two
    std::uint32_t mask = 0;
    std::size_t used = 0;  // live entries (no tombstones exist)
    std::deque<ConnRecord> arena;
    std::vector<std::uint32_t> free_slots;
    mutable sim::ThreadAffinity affinity;
  };

  static constexpr std::uint32_t kNoShard = 0xFFFFFFFF;
  struct Ref {
    std::uint32_t shard = kNoShard;
    std::uint32_t slot = 0;
  };

  // Finds the bucket holding `key` (tuple-compared) or the first empty
  // bucket on its probe path. Returns the bucket position.
  std::uint32_t probe(const Shard& sh, const tcp::FlowKey& key,
                      bool* found) const;
  void grow(Shard& sh);
  void index_insert(Shard& sh, const tcp::FlowKey& key,
                    std::uint32_t arena_slot, tcp::ConnId conn);
  void index_erase_at(Shard& sh, std::uint32_t pos);
  void update_telemetry();

  std::vector<Shard> shards_;
  std::vector<Ref> directory_;  // by ConnId
  tcp::ConnId next_conn_ = 0;
  std::size_t live_ = 0;
  std::uint64_t rehashes_ = 0;
  mutable std::uint32_t last_probe_len_ = 0;

  telemetry::Binding telem_;
  telemetry::Gauge* t_conns_ = nullptr;
  telemetry::Gauge* t_bytes_total_ = nullptr;
  telemetry::Gauge* t_bytes_per_conn_ = nullptr;
  telemetry::Counter* t_rehashes_ = nullptr;
};

}  // namespace flextoe::core
