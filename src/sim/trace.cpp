#include "sim/trace.hpp"

namespace flextoe::sim {

std::uint32_t TraceRegistry::register_point(std::string_view name) {
  auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) return it->second;
  auto id = static_cast<std::uint32_t>(points_.size());
  points_.push_back(Point{std::string(name), 0, 0});
  by_name_.emplace(std::string(name), id);
  return id;
}

void TraceRegistry::hit(std::uint32_t id, std::uint64_t value) {
  if (!enabled_) return;
  if (id >= points_.size()) return;
  points_[id].hits++;
  points_[id].accum += value;
}

std::uint64_t TraceRegistry::hits(std::uint32_t id) const {
  return id < points_.size() ? points_[id].hits : 0;
}

std::uint64_t TraceRegistry::hits(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? 0 : hits(it->second);
}

std::uint64_t TraceRegistry::accumulated(std::uint32_t id) const {
  return id < points_.size() ? points_[id].accum : 0;
}

std::vector<std::string> TraceRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(points_.size());
  for (const auto& p : points_) out.push_back(p.name);
  return out;
}

void TraceRegistry::clear_counts() {
  for (auto& p : points_) {
    p.hits = 0;
    p.accum = 0;
  }
}

}  // namespace flextoe::sim
