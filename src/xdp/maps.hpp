// BPF map equivalents (paper §3.3): hash and array maps with atomic
// update semantics, shared between XDP modules and the control plane.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

namespace flextoe::xdp {

// BPF_MAP_TYPE_HASH with a bounded capacity.
template <typename K, typename V, typename Hash = std::hash<K>>
class BpfHashMap {
 public:
  explicit BpfHashMap(std::size_t max_entries) : max_entries_(max_entries) {}

  // Returns false if the map is full (matches bpf_map_update_elem E2BIG).
  bool update(const K& key, const V& value) {
    auto it = map_.find(key);
    if (it != map_.end()) {
      it->second = value;
      return true;
    }
    if (map_.size() >= max_entries_) return false;
    map_.emplace(key, value);
    return true;
  }

  std::optional<V> lookup(const K& key) const {
    auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }

  bool erase(const K& key) { return map_.erase(key) > 0; }

  std::size_t size() const { return map_.size(); }
  std::size_t max_entries() const { return max_entries_; }

 private:
  std::size_t max_entries_;
  std::unordered_map<K, V, Hash> map_;
};

// BPF_MAP_TYPE_ARRAY: fixed-size, zero-initialized.
template <typename V>
class BpfArrayMap {
 public:
  explicit BpfArrayMap(std::size_t entries) : values_(entries, V{}) {}

  V* lookup(std::size_t idx) {
    return idx < values_.size() ? &values_[idx] : nullptr;
  }
  const V* lookup(std::size_t idx) const {
    return idx < values_.size() ? &values_[idx] : nullptr;
  }

  std::size_t size() const { return values_.size(); }

 private:
  std::vector<V> values_;
};

}  // namespace flextoe::xdp
