#include "baseline/sw_tcp.hpp"

#include <algorithm>
#include <cassert>

namespace flextoe::baseline {

using tcp::ConnId;
using tcp::SeqNum;
using tcp::seq_diff;
using tcp::seq_ge;
using tcp::seq_gt;
using tcp::seq_le;
using tcp::seq_lt;
namespace flag = net::tcpflag;

using tcp::kWindowShift;

SwTcpStack::SwTcpStack(sim::Domain& ev, sim::Rng rng, SwTcpConfig cfg)
    : ev_(ev), rng_(rng), cfg_(cfg) {}

SwTcpStack::~SwTcpStack() = default;

SwTcpStack::Conn* SwTcpStack::get(ConnId c) const {
  if (c >= conns_.size()) return nullptr;
  return conns_[c].get();
}

ConnId SwTcpStack::alloc_conn(const tcp::FlowTuple& t, net::MacAddr peer_mac) {
  auto conn = std::make_unique<Conn>(cfg_.sockbuf_bytes, cfg_.ooo);
  conn->tuple = t;
  conn->peer_mac = peer_mac;
  conn->cwnd = cfg_.init_cwnd_segments * cfg_.mss;
  conn->ssthresh = cfg_.max_cwnd_bytes;
  conn->rtt = tcp::RttEstimator(cfg_.min_rto, cfg_.max_rto);
  const auto cid = static_cast<ConnId>(conns_.size());
  conns_.push_back(std::move(conn));
  by_tuple_[t] = cid;
  return cid;
}

void SwTcpStack::free_conn(ConnId cid) {
  Conn* c = get(cid);
  if (c == nullptr) return;
  ++c->rto_gen;  // cancel timers
  by_tuple_.erase(c->tuple);
  conns_[cid].reset();
}

void SwTcpStack::listen(std::uint16_t port) { listening_[port] = true; }

ConnId SwTcpStack::connect(net::Ipv4Addr remote_ip,
                           std::uint16_t remote_port) {
  tcp::FlowTuple t;
  t.local_ip = cfg_.ip;
  t.remote_ip = remote_ip;
  t.remote_port = remote_port;
  // Ephemeral port allocation.
  for (int tries = 0; tries < 40000; ++tries) {
    t.local_port = next_ephemeral_;
    next_ephemeral_ =
        next_ephemeral_ == 65535 ? 20000 : next_ephemeral_ + 1;
    if (by_tuple_.find(t) == by_tuple_.end()) break;
  }
  // Testbed "ARP": when no gateway is configured, derive the peer MAC
  // from the IP (all testbed nodes use MAC 02:…:<ip>); the switch learns
  // real locations either way.
  net::MacAddr peer = gateway_mac_;
  if (peer.to_u64() == 0) {
    peer = net::MacAddr::from_u64(0x020000000000ull + remote_ip);
  }
  const ConnId cid = alloc_conn(t, peer);
  Conn& c = *get(cid);
  c.state = State::SynSent;
  c.iss = static_cast<SeqNum>(rng_.next_u64() & 0xFFFFFF);
  c.snd_una = c.iss;
  c.snd_nxt = c.iss + 1;
  c.snd_max = c.snd_nxt;
  send_ctrl(t, c.peer_mac, c.iss, 0, flag::kSyn, cfg_.mss, 0);
  arm_rto(cid, c);
  return cid;
}

std::size_t SwTcpStack::send(ConnId cid, std::span<const std::uint8_t> data) {
  Conn* c = get(cid);
  if (c == nullptr) return 0;
  if (c->state != State::Established && c->state != State::CloseWait) {
    return 0;
  }
  if (cpu_ != nullptr) {
    const auto& k = cfg_.costs;
    const std::uint64_t cyc =
        k.sock_op + k.other_op +
        k.copy_per_kb * (static_cast<std::uint64_t>(data.size()) / 1024);
    cpu_->run(cyc, sim::CpuCat::Sockets, nullptr);
    cpu_->reattribute(sim::CpuCat::Sockets, sim::CpuCat::Other, k.other_op);
  }
  const std::size_t n = c->tx.write(data);
  if (n > 0) try_transmit(cid);
  return n;
}

std::size_t SwTcpStack::recv(ConnId cid, std::span<std::uint8_t> out) {
  Conn* c = get(cid);
  if (c == nullptr) return 0;
  if (cpu_ != nullptr) {
    cpu_->run(cfg_.costs.sock_op + cfg_.costs.other_op,
              sim::CpuCat::Sockets, nullptr);
    cpu_->reattribute(sim::CpuCat::Sockets, sim::CpuCat::Other,
                      cfg_.costs.other_op);
  }
  const std::size_t before_free = c->rx.free_space();
  const std::size_t n = c->rx.read(out);
  // Window update if we crossed from nearly-closed to open.
  if (n > 0 && before_free < cfg_.mss &&
      c->rx.free_space() >= cfg_.mss &&
      (c->state == State::Established || c->state == State::FinWait1 ||
       c->state == State::FinWait2)) {
    send_ack(cid, *c);
  }
  maybe_close_notify(cid, *c);
  return n;
}

std::size_t SwTcpStack::rx_available(ConnId cid) const {
  const Conn* c = get(cid);
  return c == nullptr ? 0 : c->rx.used();
}

std::size_t SwTcpStack::tx_space(ConnId cid) const {
  const Conn* c = get(cid);
  return c == nullptr ? 0 : c->tx.free_space();
}

void SwTcpStack::close(ConnId cid) {
  Conn* c = get(cid);
  if (c == nullptr) return;
  switch (c->state) {
    case State::SynSent:
    case State::Listen:
      free_conn(cid);
      break;
    case State::SynRcvd:
    case State::Established:
    case State::CloseWait:
      c->fin_pending = true;
      try_transmit(cid);
      break;
    default:
      break;  // already closing
  }
}

SwTcpStack::State SwTcpStack::conn_state(ConnId cid) const {
  const Conn* c = get(cid);
  return c == nullptr ? State::Closed : c->state;
}

std::uint64_t SwTcpStack::cwnd_bytes(ConnId cid) const {
  const Conn* c = get(cid);
  return c == nullptr ? 0 : c->cwnd;
}

SwTcpStack::ConnDebug SwTcpStack::conn_debug(ConnId cid) const {
  ConnDebug d;
  const Conn* c = get(cid);
  if (c == nullptr) return d;
  d.snd_una = c->snd_una;
  d.snd_nxt = c->snd_nxt;
  d.rcv_nxt = c->rcv_nxt;
  d.snd_wnd = c->snd_wnd;
  d.tx_used = c->tx.used();
  d.rx_used = c->rx.used();
  return d;
}

// ---------------------------------------------------------------- RX path

void SwTcpStack::deliver(const net::PacketPtr& pkt) {
  if (pkt->ip.dst != cfg_.ip || pkt->ip.proto != net::kProtoTcp) return;
  ++segs_rx_;

  if (cpu_ == nullptr) {
    process_segment(pkt);
    return;
  }
  const auto& k = cfg_.costs;
  std::uint64_t cyc = k.driver_rx + k.stack_rx +
                      k.copy_per_kb * (pkt->payload.size() / 1024);
  // Per-connection serialization: a connection's segments process in
  // order, mirroring per-flow critical sections in host stacks.
  tcp::FlowTuple t{pkt->ip.dst, pkt->ip.src, pkt->tcp.dport, pkt->tcp.sport};
  auto it = by_tuple_.find(t);
  sim::TimePs not_before = 0;
  Conn* c = it != by_tuple_.end() ? get(it->second) : nullptr;
  if (c != nullptr) not_before = c->cpu_chain;
  const sim::TimePs done = cpu_->run(
      cyc, sim::CpuCat::Stack, not_before,
      [this, pkt] { process_segment(pkt); });
  if (c != nullptr) c->cpu_chain = done;
  cpu_->reattribute(sim::CpuCat::Stack, sim::CpuCat::Driver, k.driver_rx);
}

void SwTcpStack::process_segment(const net::PacketPtr& pkt) {
  tcp::FlowTuple t{pkt->ip.dst, pkt->ip.src, pkt->tcp.dport, pkt->tcp.sport};
  auto it = by_tuple_.find(t);
  if (it != by_tuple_.end()) {
    handle_conn_segment(it->second, pkt);
    return;
  }
  if (pkt->tcp.has(flag::kSyn) && !pkt->tcp.has(flag::kAck) &&
      listening_[pkt->tcp.dport]) {
    handle_listen_syn(pkt);
    return;
  }
  // No matching connection: reset (unless this is itself a reset).
  if (!pkt->tcp.has(flag::kRst)) {
    send_ctrl(t, pkt->eth.src, pkt->tcp.ack,
              pkt->tcp.seq + pkt->payload_len() + 1, flag::kRst | flag::kAck,
              std::nullopt, 0);
  }
}

void SwTcpStack::handle_listen_syn(const net::PacketPtr& pkt) {
  tcp::FlowTuple t{pkt->ip.dst, pkt->ip.src, pkt->tcp.dport, pkt->tcp.sport};
  const ConnId cid = alloc_conn(t, pkt->eth.src);
  Conn& c = *get(cid);
  c.state = State::SynRcvd;
  c.irs = pkt->tcp.seq;
  c.rcv_nxt = c.irs + 1;
  c.iss = static_cast<SeqNum>(rng_.next_u64() & 0xFFFFFF);
  c.snd_una = c.iss;
  c.snd_nxt = c.iss + 1;
  c.snd_max = c.snd_nxt;
  if (pkt->tcp.mss) c.peer_mss = std::min<std::uint32_t>(*pkt->tcp.mss, cfg_.mss);
  if (pkt->tcp.ts) c.ts_recent = pkt->tcp.ts->val;
  send_ctrl(t, c.peer_mac, c.iss, c.rcv_nxt, flag::kSyn | flag::kAck,
            cfg_.mss, c.ts_recent);
  arm_rto(cid, c);
}

void SwTcpStack::handle_conn_segment(ConnId cid, const net::PacketPtr& pkt) {
  Conn* cp = get(cid);
  if (cp == nullptr) return;
  Conn& c = *cp;
  const net::TcpHeader& h = pkt->tcp;

  if (h.has(flag::kRst)) {
    // Abort.
    const State old = c.state;
    if (old == State::SynSent && cbs_.on_connected) {
      cbs_.on_connected(cid, false);
    } else if (cbs_.on_close && !c.cbs_closed && old != State::Closed) {
      c.cbs_closed = true;
      cbs_.on_close(cid);
    }
    free_conn(cid);
    return;
  }

  switch (c.state) {
    case State::SynSent: {
      if (h.has(flag::kSyn) && h.has(flag::kAck) && h.ack == c.iss + 1) {
        c.irs = h.seq;
        c.rcv_nxt = c.irs + 1;
        c.snd_una = h.ack;
        c.snd_wnd = static_cast<std::uint32_t>(h.window) << kWindowShift;
        if (h.mss) c.peer_mss = std::min<std::uint32_t>(*h.mss, cfg_.mss);
        if (h.ts) c.ts_recent = h.ts->val;
        c.state = State::Established;
        ++c.rto_gen;  // cancel SYN timer
        c.rtt.reset_backoff();
        send_ack(cid, c);
        if (cbs_.on_connected) cbs_.on_connected(cid, true);
        try_transmit(cid);
      }
      return;
    }
    case State::SynRcvd: {
      if (h.has(flag::kAck) && h.ack == c.snd_una + 1) {
        c.snd_una = h.ack;
        c.snd_wnd = static_cast<std::uint32_t>(h.window) << kWindowShift;
        c.state = State::Established;
        ++c.rto_gen;
        c.rtt.reset_backoff();
        if (cbs_.on_accept) cbs_.on_accept(cid);
        // continue processing payload below if present
        break;
      }
      if (h.has(flag::kSyn)) {
        // Duplicate SYN: re-send SYN-ACK.
        send_ctrl(c.tuple, c.peer_mac, c.iss, c.rcv_nxt,
                  flag::kSyn | flag::kAck, cfg_.mss, c.ts_recent);
      }
      return;
    }
    case State::Closed:
    case State::Listen:
      return;
    default:
      break;
  }

  if (h.has(flag::kAck)) process_ack(cid, c, *pkt);
  if (get(cid) == nullptr) return;  // ack processing may free (LastAck)

  bool ack_needed = false;
  if (!pkt->payload.empty()) {
    process_payload(cid, c, *pkt);
    ack_needed = true;
  }

  if (h.has(flag::kFin)) {
    const SeqNum fin_seq = h.seq + pkt->payload_len();
    if (fin_seq == c.rcv_nxt && !c.peer_fin) {
      c.rcv_nxt = fin_seq + 1;
      c.peer_fin = true;
      switch (c.state) {
        case State::Established:
          c.state = State::CloseWait;
          break;
        case State::FinWait1:
          c.state = State::Closing;
          break;
        case State::FinWait2: {
          c.state = State::TimeWait;
          const std::uint64_t gen = ++c.rto_gen;
          ev_.schedule_in(cfg_.time_wait, [this, cid, gen] {
            Conn* cc = get(cid);
            if (cc != nullptr && cc->rto_gen == gen) free_conn(cid);
          });
          break;
        }
        default:
          break;
      }
      maybe_close_notify(cid, c);
    }
    ack_needed = true;
  }

  if (ack_needed) send_ack(cid, c);
  if (get(cid) != nullptr) try_transmit(cid);
}

void SwTcpStack::process_ack(ConnId cid, Conn& c, const net::Packet& pkt) {
  const net::TcpHeader& h = pkt.tcp;
  const SeqNum ack = h.ack;
  const bool ece = h.has(flag::kEce);

  // RTT sample from the timestamp echo.
  if (h.ts && h.ts->ecr != 0 && seq_gt(ack, c.snd_una)) {
    const std::uint32_t now_us32 = now_ts();
    const std::uint32_t rtt_us = now_us32 - h.ts->ecr;
    if (rtt_us < 10'000'000) {
      c.rtt.on_sample(sim::us(rtt_us == 0 ? 1 : rtt_us));
    }
  }

  if (seq_gt(ack, c.snd_una) && seq_le(ack, c.snd_max)) {
    const std::uint32_t acked = seq_diff(ack, c.snd_una);
    const std::size_t data_acked =
        std::min<std::size_t>(acked, c.tx.used());
    c.tx.discard(data_acked);
    c.bytes_acked += data_acked;
    c.snd_una = ack;
    // After a go-back-N rewind, the receiver may ACK past snd_nxt by
    // merging its buffered out-of-order interval: skip ahead.
    if (seq_gt(c.snd_una, c.snd_nxt)) c.snd_nxt = c.snd_una;
    c.snd_wnd = static_cast<std::uint32_t>(h.window) << kWindowShift;
    c.dupacks = 0;
    c.rtt.reset_backoff();
    cc_on_ack(c, acked, ece);

    if (c.fin_sent && seq_ge(ack, c.fin_seq + 1)) {
      switch (c.state) {
        case State::FinWait1:
          c.state = State::FinWait2;
          break;
        case State::Closing: {
          c.state = State::TimeWait;
          const std::uint64_t gen = ++c.rto_gen;
          ev_.schedule_in(cfg_.time_wait, [this, cid, gen] {
            Conn* cc = get(cid);
            if (cc != nullptr && cc->rto_gen == gen) free_conn(cid);
          });
          break;
        }
        case State::LastAck:
          free_conn(cid);
          return;
        default:
          break;
      }
    }

    if (c.snd_nxt == c.snd_una) {
      ++c.rto_gen;  // everything acked: cancel RTO
    } else {
      arm_rto(cid, c);
    }
    if (data_acked > 0 && cbs_.on_sendable) cbs_.on_sendable(cid);
  } else if (ack == c.snd_una && seq_gt(c.snd_max, c.snd_una) &&
             pkt.payload.empty() && !h.has(flag::kFin)) {
    // Duplicate ACK.
    c.snd_wnd = static_cast<std::uint32_t>(h.window) << kWindowShift;
    if (++c.dupacks == 3 && seq_ge(c.snd_una, c.high_rtx)) {
      ++fast_retransmits_;
      cc_on_fast_rtx(c);
      c.high_rtx = c.snd_max;
      if (cfg_.go_back_n) {
        c.snd_nxt = c.snd_una;  // resend everything outstanding
        c.fin_sent = false;
        try_transmit(cid);
      } else {
        // SACK-quality: retransmit only the first missing segment.
        const std::uint32_t len = std::min<std::uint32_t>(
            {cfg_.mss, c.peer_mss,
             static_cast<std::uint32_t>(c.tx.used())});
        if (len > 0) {
          ++retransmits_;
          emit_segment(cid, c, c.snd_una, len, 0);
        }
      }
    }
  } else {
    // Window update or stale ACK.
    c.snd_wnd = static_cast<std::uint32_t>(h.window) << kWindowShift;
  }
}

void SwTcpStack::process_payload(ConnId cid, Conn& c, const net::Packet& pkt) {
  const net::TcpHeader& h = pkt.tcp;
  const auto window = static_cast<std::uint32_t>(c.rx.free_space());
  const auto r = c.ooo.on_segment(c.rcv_nxt, h.seq,
                                  pkt.payload_len(), window);
  if (pkt.ip.ecn == net::Ecn::Ce) c.ece_pending = true;
  if (h.ts) c.ts_recent = h.ts->val;

  if (r.accept && r.accept_len > 0) {
    const std::uint32_t front_trim =
        seq_lt(h.seq, c.rcv_nxt) ? seq_diff(c.rcv_nxt, h.seq) : 0;
    std::span<const std::uint8_t> slice(pkt.payload.data() + front_trim,
                                        r.accept_len);
    c.rx.write_at(r.buf_offset, slice);
  }
  if (r.advance > 0) {
    c.rx.advance_tail(r.advance);
    c.rcv_nxt += r.advance;
    c.bytes_rxed += r.advance;
    bytes_delivered_ += r.advance;
    notify_data(cid, c);
  }
}

void SwTcpStack::notify_data(ConnId cid, Conn& c) {
  if (cbs_.on_data && c.rx.used() > 0) cbs_.on_data(cid);
}

void SwTcpStack::maybe_close_notify(ConnId cid, Conn& c) {
  if (c.peer_fin && c.rx.empty() && !c.cbs_closed) {
    c.cbs_closed = true;
    if (cbs_.on_close) cbs_.on_close(cid);
  }
}

// ---------------------------------------------------------------- TX path

std::uint64_t SwTcpStack::effective_window(const Conn& c) const {
  return std::min<std::uint64_t>(c.cwnd, c.snd_wnd);
}

void SwTcpStack::try_transmit(ConnId cid) {
  Conn* cp = get(cid);
  if (cp == nullptr) return;
  Conn& c = *cp;
  if (c.state != State::Established && c.state != State::CloseWait &&
      c.state != State::FinWait1 && c.state != State::Closing &&
      c.state != State::LastAck) {
    return;
  }

  while (true) {
    const std::uint32_t inflight = seq_diff(c.snd_nxt, c.snd_una);
    const std::uint64_t wnd = effective_window(c);
    const std::uint32_t sent_off = inflight;  // ring offset of snd_nxt
    const std::size_t unsent =
        c.tx.used() > sent_off ? c.tx.used() - sent_off : 0;
    std::uint32_t len = static_cast<std::uint32_t>(
        std::min<std::uint64_t>({cfg_.mss, c.peer_mss, unsent}));
    if (wnd <= inflight) len = 0;
    if (len > 0) {
      len = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(len, wnd - inflight));
    }
    if (len == 0) {
      // Maybe emit FIN once all data is sent and acknowledged space allows.
      if (c.fin_pending && !c.fin_sent && unsent == 0) {
        c.fin_seq = c.snd_nxt;
        emit_segment(cid, c, c.snd_nxt, 0, flag::kFin);
        c.snd_nxt += 1;
        c.snd_max = tcp::seq_max(c.snd_max, c.snd_nxt);
        c.fin_sent = true;
        switch (c.state) {
          case State::Established:
            c.state = State::FinWait1;
            break;
          case State::CloseWait:
            c.state = State::LastAck;
            break;
          default:
            break;
        }
        arm_rto(cid, c);
      }
      return;
    }
    const bool retx = seq_lt(c.snd_nxt, c.snd_max);
    if (retx) ++retransmits_;
    emit_segment(cid, c, c.snd_nxt, len, 0);
    c.snd_nxt += len;
    c.snd_max = tcp::seq_max(c.snd_max, c.snd_nxt);
    arm_rto(cid, c);
  }
}

void SwTcpStack::emit_segment(ConnId cid, Conn& c, SeqNum seq,
                              std::uint32_t len, std::uint8_t extra_flags) {
  (void)cid;
  auto pkt = pool_.acquire();
  pkt->eth.src = cfg_.mac;
  pkt->eth.dst = resolve_mac(c);
  pkt->ip.src = c.tuple.local_ip;
  pkt->ip.dst = c.tuple.remote_ip;
  pkt->ip.ecn = cfg_.ecn ? net::Ecn::Ect0 : net::Ecn::NotEct;
  pkt->tcp.sport = c.tuple.local_port;
  pkt->tcp.dport = c.tuple.remote_port;
  pkt->tcp.seq = seq;
  pkt->tcp.ack = c.rcv_nxt;
  pkt->tcp.flags =
      static_cast<std::uint8_t>(flag::kAck | extra_flags |
                                (len > 0 ? flag::kPsh : 0) |
                                (c.ece_pending ? flag::kEce : 0));
  c.ece_pending = false;
  pkt->tcp.window = adv_window(c);
  pkt->tcp.ts = net::TcpTsOpt{now_ts(), c.ts_recent};

  if (len > 0) {
    pkt->payload.resize(len);
    const std::uint32_t off = seq_diff(seq, c.snd_una);
    const std::size_t got = c.tx.peek(off, pkt->payload);
    assert(got == len);
    (void)got;
  }

  if (cpu_ != nullptr) {
    const auto& k = cfg_.costs;
    const std::uint64_t cyc =
        k.driver_tx + k.stack_tx + k.copy_per_kb * (len / 1024);
    c.cpu_chain = cpu_->run(cyc, sim::CpuCat::Stack, c.cpu_chain,
                            [this, pkt] { xmit(pkt); });
    cpu_->reattribute(sim::CpuCat::Stack, sim::CpuCat::Driver, k.driver_tx);
  } else {
    xmit(pkt);
  }
}

void SwTcpStack::send_ack(ConnId cid, Conn& c) {
  (void)cid;
  auto pkt = pool_.acquire();
  pkt->eth.src = cfg_.mac;
  pkt->eth.dst = resolve_mac(c);
  pkt->ip.src = c.tuple.local_ip;
  pkt->ip.dst = c.tuple.remote_ip;
  pkt->tcp.sport = c.tuple.local_port;
  pkt->tcp.dport = c.tuple.remote_port;
  pkt->tcp.seq = c.snd_nxt;
  pkt->tcp.ack = c.rcv_nxt;
  pkt->tcp.flags = static_cast<std::uint8_t>(
      flag::kAck | (c.ece_pending ? flag::kEce : 0));
  c.ece_pending = false;
  pkt->tcp.window = adv_window(c);
  pkt->tcp.ts = net::TcpTsOpt{now_ts(), c.ts_recent};

  if (cpu_ != nullptr) {
    const auto& k = cfg_.costs;
    c.cpu_chain = cpu_->run(k.driver_tx + k.stack_tx, sim::CpuCat::Stack,
                            c.cpu_chain, [this, pkt] { xmit(pkt); });
    cpu_->reattribute(sim::CpuCat::Stack, sim::CpuCat::Driver, k.driver_tx);
  } else {
    xmit(pkt);
  }
}

void SwTcpStack::send_ctrl(const tcp::FlowTuple& t, net::MacAddr peer_mac,
                           SeqNum seq, SeqNum ack, std::uint8_t flags,
                           std::optional<std::uint16_t> mss_opt,
                           std::uint32_t ts_ecr) {
  auto pkt = pool_.acquire();
  pkt->eth.src = cfg_.mac;
  pkt->eth.dst = peer_mac;
  pkt->ip.src = t.local_ip;
  pkt->ip.dst = t.remote_ip;
  pkt->tcp.sport = t.local_port;
  pkt->tcp.dport = t.remote_port;
  pkt->tcp.seq = seq;
  pkt->tcp.ack = ack;
  pkt->tcp.flags = flags;
  pkt->tcp.window = static_cast<std::uint16_t>(
      std::min<std::size_t>(cfg_.sockbuf_bytes >> kWindowShift, 0xFFFF));
  pkt->tcp.mss = mss_opt;
  pkt->tcp.ts = net::TcpTsOpt{now_ts(), ts_ecr};
  xmit(pkt);
}

void SwTcpStack::xmit(const net::PacketPtr& pkt) {
  ++segs_tx_;
  if (tx_sink_ != nullptr) tx_sink_->deliver(pkt);
}

net::MacAddr SwTcpStack::resolve_mac(const Conn& c) const {
  return c.peer_mac;
}

std::uint16_t SwTcpStack::adv_window(const Conn& c) const {
  const std::size_t units = c.rx.free_space() >> kWindowShift;
  return static_cast<std::uint16_t>(std::min<std::size_t>(units, 0xFFFF));
}

// ------------------------------------------------------------------ DCTCP

void SwTcpStack::cc_on_ack(Conn& c, std::uint32_t acked, bool ece) {
  c.acked_win += acked;
  if (ece) c.ecn_win += acked;

  // Once per observation window (~cwnd of ACKed data): update alpha.
  if (seq_ge(c.snd_una, c.alpha_seq)) {
    if (c.acked_win > 0) {
      const double frac = static_cast<double>(c.ecn_win) /
                          static_cast<double>(c.acked_win);
      c.alpha = (1.0 - 1.0 / 16.0) * c.alpha + (1.0 / 16.0) * frac;
      if (c.ecn_win > 0) {
        const auto reduced = static_cast<std::uint64_t>(
            static_cast<double>(c.cwnd) * (1.0 - c.alpha / 2.0));
        c.cwnd = std::max<std::uint64_t>(reduced, 2 * cfg_.mss);
      }
    }
    c.acked_win = 0;
    c.ecn_win = 0;
    c.alpha_seq = c.snd_nxt;
  }

  if (!ece) {
    if (c.cwnd < c.ssthresh) {
      c.cwnd = std::min<std::uint64_t>(c.cwnd + acked, cfg_.max_cwnd_bytes);
    } else {
      const std::uint64_t incr =
          std::max<std::uint64_t>(1, static_cast<std::uint64_t>(cfg_.mss) *
                                         acked / std::max<std::uint64_t>(c.cwnd, 1));
      c.cwnd = std::min<std::uint64_t>(c.cwnd + incr, cfg_.max_cwnd_bytes);
    }
  }
}

void SwTcpStack::cc_on_fast_rtx(Conn& c) {
  c.ssthresh = std::max<std::uint64_t>(c.cwnd / 2, 2 * cfg_.mss);
  c.cwnd = c.ssthresh;
}

void SwTcpStack::cc_on_timeout(Conn& c) {
  c.ssthresh = std::max<std::uint64_t>(c.cwnd / 2, 2 * cfg_.mss);
  c.cwnd = cfg_.mss;
}

// ------------------------------------------------------------------ timers

void SwTcpStack::arm_rto(ConnId cid, Conn& c) {
  const std::uint64_t gen = ++c.rto_gen;
  ev_.schedule_in(c.rtt.rto_backed_off(),
                  [this, cid, gen] { on_rto(cid, gen); });
}

void SwTcpStack::on_rto(ConnId cid, std::uint64_t gen) {
  Conn* cp = get(cid);
  if (cp == nullptr || cp->rto_gen != gen) return;
  Conn& c = *cp;

  switch (c.state) {
    case State::SynSent:
      ++timeouts_;
      c.rtt.backoff();
      send_ctrl(c.tuple, c.peer_mac, c.iss, 0, flag::kSyn, cfg_.mss, 0);
      arm_rto(cid, c);
      return;
    case State::SynRcvd:
      ++timeouts_;
      c.rtt.backoff();
      send_ctrl(c.tuple, c.peer_mac, c.iss, c.rcv_nxt,
                flag::kSyn | flag::kAck, cfg_.mss, c.ts_recent);
      arm_rto(cid, c);
      return;
    case State::TimeWait:
    case State::Closed:
      return;
    default:
      break;
  }

  if (seq_ge(c.snd_una, c.snd_max)) return;  // nothing outstanding

  ++timeouts_;
  cc_on_timeout(c);
  c.rtt.backoff();
  c.dupacks = 0;
  c.high_rtx = c.snd_max;
  // Go-back-N from the last acknowledged byte.
  c.snd_nxt = c.snd_una;
  if (c.fin_sent) c.fin_sent = false;  // FIN will be re-emitted
  try_transmit(cid);
  Conn* again = get(cid);
  if (again != nullptr && again->snd_nxt != again->snd_una) {
    arm_rto(cid, *again);
  }
}

}  // namespace flextoe::baseline
