#include "net/packet.hpp"

#include <gtest/gtest.h>

#include "net/checksum.hpp"

namespace flextoe::net {
namespace {

Packet sample_packet() {
  Packet p;
  p.eth.src = MacAddr::from_u64(0x020000000001);
  p.eth.dst = MacAddr::from_u64(0x020000000002);
  p.ip.src = make_ip(10, 0, 0, 1);
  p.ip.dst = make_ip(10, 0, 0, 2);
  p.ip.ttl = 61;
  p.ip.ecn = Ecn::Ect0;
  p.tcp.sport = 12345;
  p.tcp.dport = 80;
  p.tcp.seq = 0xDEADBEEF;
  p.tcp.ack = 0x01020304;
  p.tcp.flags = tcpflag::kAck | tcpflag::kPsh;
  p.tcp.window = 0xFFFF;
  p.tcp.ts = TcpTsOpt{111111, 222222};
  p.payload = {'h', 'e', 'l', 'l', 'o'};
  return p;
}

TEST(Packet, SerializeParseRoundTrip) {
  const Packet p = sample_packet();
  const auto bytes = p.serialize();
  const auto parsed = Packet::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->eth.src, p.eth.src);
  EXPECT_EQ(parsed->eth.dst, p.eth.dst);
  EXPECT_EQ(parsed->ip.src, p.ip.src);
  EXPECT_EQ(parsed->ip.dst, p.ip.dst);
  EXPECT_EQ(parsed->ip.ttl, p.ip.ttl);
  EXPECT_EQ(parsed->ip.ecn, Ecn::Ect0);
  EXPECT_EQ(parsed->tcp.sport, p.tcp.sport);
  EXPECT_EQ(parsed->tcp.dport, p.tcp.dport);
  EXPECT_EQ(parsed->tcp.seq, p.tcp.seq);
  EXPECT_EQ(parsed->tcp.ack, p.tcp.ack);
  EXPECT_EQ(parsed->tcp.flags, p.tcp.flags);
  EXPECT_EQ(parsed->tcp.window, p.tcp.window);
  ASSERT_TRUE(parsed->tcp.ts.has_value());
  EXPECT_EQ(parsed->tcp.ts->val, 111111u);
  EXPECT_EQ(parsed->tcp.ts->ecr, 222222u);
  EXPECT_EQ(parsed->payload, p.payload);
}

TEST(Packet, SynWithMssOption) {
  Packet p = sample_packet();
  p.tcp.flags = tcpflag::kSyn;
  p.tcp.ts.reset();
  p.tcp.mss = 1448;
  p.payload.clear();
  const auto parsed = Packet::parse(p.serialize());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->tcp.mss.has_value());
  EXPECT_EQ(*parsed->tcp.mss, 1448);
  EXPECT_FALSE(parsed->tcp.ts.has_value());
}

TEST(Packet, VlanTagRoundTrip) {
  Packet p = sample_packet();
  p.vlan = VlanTag{static_cast<std::uint16_t>((3u << 13) | 42u)};
  const auto parsed = Packet::parse(p.serialize());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->vlan.has_value());
  EXPECT_EQ(parsed->vlan->vid(), 42);
  EXPECT_EQ(parsed->payload, p.payload);
}

TEST(Packet, CorruptedPayloadFailsChecksum) {
  auto bytes = sample_packet().serialize();
  bytes.back() ^= 0xFF;  // flip payload bits
  EXPECT_FALSE(Packet::parse(bytes).has_value());
  EXPECT_TRUE(Packet::parse(bytes, /*verify_checksums=*/false).has_value());
}

TEST(Packet, CorruptedIpHeaderFailsChecksum) {
  auto bytes = sample_packet().serialize();
  bytes[14 + 8] ^= 0x01;  // TTL byte inside IP header
  EXPECT_FALSE(Packet::parse(bytes).has_value());
}

TEST(Packet, TruncatedFrameFailsParse) {
  const auto bytes = sample_packet().serialize();
  for (std::size_t len : {0u, 10u, 20u, 40u}) {
    EXPECT_FALSE(
        Packet::parse(std::span(bytes.data(), len)).has_value())
        << "len=" << len;
  }
}

TEST(Packet, NonTcpProtocolRejected) {
  auto bytes = sample_packet().serialize();
  bytes[14 + 9] = 17;  // UDP
  EXPECT_FALSE(Packet::parse(bytes, false).has_value());
}

TEST(Packet, WireSizeIncludesOverheadAndMinFrame) {
  Packet p = sample_packet();
  p.payload.clear();
  p.tcp.ts.reset();
  // 14 eth + 20 ip + 20 tcp = 54 -> padded to 60, +24 overhead.
  EXPECT_EQ(p.frame_size(), 54u);
  EXPECT_EQ(p.wire_size(), 84u);
  p.payload.assign(1448, 0xAB);
  EXPECT_EQ(p.wire_size(), 14u + 20u + 20u + 1448u + 24u);
}

TEST(Packet, DatapathSegmentClassification) {
  TcpHeader h;
  h.flags = tcpflag::kAck;
  EXPECT_TRUE(h.is_datapath_segment());
  h.flags = tcpflag::kAck | tcpflag::kPsh;
  EXPECT_TRUE(h.is_datapath_segment());
  h.flags = tcpflag::kSyn;
  EXPECT_FALSE(h.is_datapath_segment());
  h.flags = tcpflag::kSyn | tcpflag::kAck;
  EXPECT_FALSE(h.is_datapath_segment());
  h.flags = tcpflag::kRst;
  EXPECT_FALSE(h.is_datapath_segment());
  h.flags = tcpflag::kFin | tcpflag::kAck;
  EXPECT_TRUE(h.is_datapath_segment());
}

TEST(Checksum, Rfc1071Example) {
  // Classic example: bytes 00 01 f2 03 f4 f5 f6 f7 -> sum 0xddf2, csum 0x220d.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(Checksum, OddLengthHandled) {
  const std::uint8_t data[] = {0x01, 0x02, 0x03};
  // Manually: 0x0102 + 0x0300 = 0x0402 -> ~ = 0xFBFD.
  EXPECT_EQ(internet_checksum(data), 0xFBFD);
}

TEST(Checksum, Crc32KnownVector) {
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

TEST(Addr, MacRoundTripAndFormat) {
  const auto m = MacAddr::from_u64(0x0123456789AB);
  EXPECT_EQ(m.to_u64(), 0x0123456789ABull);
  EXPECT_EQ(m.str(), "01:23:45:67:89:ab");
}

TEST(Addr, IpFormat) {
  EXPECT_EQ(ip_str(make_ip(192, 168, 1, 42)), "192.168.1.42");
}

}  // namespace
}  // namespace flextoe::net
