// Table 6 (Appendix C): breakdown of per-packet TCP/IP processing in TAS
// for the memcached benchmark. The functional split is a model input (the
// paper measured it with perf); the bench validates that the measured
// total per-packet stack cost in simulation matches the modeled total.
#include "common.hpp"

using namespace flextoe;
using namespace flextoe::benchx;

BENCH_SCENARIO(table6, "TAS TCP/IP per-packet cycle breakdown") {
  const auto warm = ctx.pick(sim::ms(20), sim::ms(4));
  const auto span = ctx.pick(sim::ms(60), sim::ms(8));

  // Run the Table-1 memcached workload on TAS and measure per-packet
  // stack cycles.
  Testbed tb(ctx.seed(79));
  auto& server = add_server(tb, Stack::Tas, 1);
  auto& client = tb.add_client_node();
  app::KvServer srv(tb.ev(), *server.stack,
                    {.port = 11211, .app_cycles = app_cycles(Stack::Tas)},
                    server.cpu.get());
  app::KvClient::Params cp;
  cp.connections = 8;
  cp.pipeline = 4;
  cp.seed = ctx.seed(42);
  app::KvClient cli(tb.ev(), *client.stack, server.ip, cp);
  cli.start();

  tb.run_for(warm);
  server.cpu->clear_accounting();
  const std::uint64_t base_segs = server.sw->segs_rx() + server.sw->segs_tx();
  tb.run_for(span);
  const std::uint64_t segs =
      server.sw->segs_rx() + server.sw->segs_tx() - base_segs;
  const double per_pkt =
      segs > 0 ? static_cast<double>(server.cpu->cycles(sim::CpuCat::Stack)) /
                     static_cast<double>(segs)
               : 0;

  // Functional decomposition of TAS fast-path work (model inputs,
  // fractions from the paper's Table 6).
  struct FnRow {
    const char* name;
    double paper_cycles;
  };
  const FnRow fn_rows[] = {
      {"Segment generation", 130}, {"Loss detection/recovery", 606},
      {"Payload transfer", 10},    {"Application notification", 381},
      {"Flow scheduling", 172},    {"Miscellaneous", 141},
  };
  const double paper_total = 1440;

  auto& series = ctx.report().series("breakdown");
  for (const auto& r : fn_rows) {
    auto& row = series.row(r.name);
    row.set("cycles", r.paper_cycles * (per_pkt * 2 / paper_total));
    row.set("pct", 100.0 * r.paper_cycles / paper_total);
  }
  auto& total = series.row("Total (per req-resp pair)");
  total.set("cycles", per_pkt * 2);
  total.set("pct", 100.0);

  auto& model = ctx.report().series("model");
  model.set("stack cycles per segment", "measured", per_pkt);
  model.set("stack rx cost", "measured",
            baseline::tas_personality().costs.stack_rx);
  model.set("stack tx cost", "measured",
            baseline::tas_personality().costs.stack_tx);
  ctx.report().note(
      "Paper: 1440 cycles per request-response pair of stack processing.");
}
