// Segment-lifecycle tracing: per-domain flight recorders.
//
// Each sim::Domain owns one trace::Ring — a bounded, overwrite-oldest
// event buffer written only by the domain's executing thread (domains
// are single-threaded within an epoch, so rings need no atomics on the
// record path). The global Tracer registers rings, interns the string
// table, hands out causal-id namespaces, and collects drop post-mortems.
// tools/check_trace.py validates the merged Chrome-trace export
// (trace/export.hpp).
//
// Contract (mirrors telemetry/registry.hpp):
//   - `-DFLEXTOE_TRACE=OFF` compiles every record site away: enabled()
//     is constexpr false, Domain::trace_ring() folds to nullptr, and the
//     Tracer below collapses to inline no-op stubs (no trace/*.cpp is
//     built, and a symbol check in CI asserts the library stays clean).
//   - Runtime-disabled by default (the opposite of telemetry): goldens
//     stay byte-identical, and a cold record site costs one relaxed
//     atomic load + branch.
//   - Recording is out-of-band: it must never change simulated behavior,
//     only observe it. Record sites take the domain clock as an
//     argument; they never advance it.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace flextoe::trace {

#ifdef FLEXTOE_TRACE_DISABLED
inline constexpr bool kCompiledIn = false;
// constexpr: `if (trace::enabled())` record sites are dead code the
// optimizer removes entirely.
constexpr bool enabled() { return false; }
inline void set_enabled(bool) {}
#else
inline constexpr bool kCompiledIn = true;
namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail
// The one-branch runtime gate every record site goes through (via
// sim::Domain::trace_ring()).
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);
#endif

// Chrome trace-event phases we emit. Sync Begin/End nest and are used
// only for per-domain epoch windows (which cannot overlap within a
// domain); per-segment spans overlap freely so they use async
// begin/end pairs keyed by (category, causal id); flows draw the
// cross-domain hand-off arrows.
enum class Phase : std::uint8_t {
  kBegin,        // "B"  sync span open (epoch windows)
  kEnd,          // "E"  sync span close
  kAsyncBegin,   // "b"  async span open, paired by (cat, id)
  kAsyncEnd,     // "e"  async span close
  kInstant,      // "i"
  kFlowBegin,    // "s"  flow arrow tail (sending domain)
  kFlowEnd,      // "f"  flow arrow head (receiving domain)
};

// One recorded event. 32 bytes so a default ring (1<<15 slots) is 1 MiB
// per domain and a record is two cache lines touched at most.
struct Event {
  sim::TimePs t = 0;         // domain-local clock at the record site
  std::uint64_t cid = 0;     // causal / span-pairing id (0 = none)
  std::uint64_t arg = 0;     // site-specific payload (depth, bytes, ...)
  std::uint16_t name = 0;    // interned via Tracer::intern
  std::uint16_t track = 0;   // interned track ("stage/pre_rx", ...)
  Phase phase = Phase::kInstant;
  std::uint8_t pad_[3] = {};
};
static_assert(sizeof(Event) == 32, "Event must stay two per cache line");

// Flight-recorder ring: bounded, overwrite-oldest, single writer (the
// owning domain's thread). Readers (export, post-mortem) only run when
// the writer is quiesced: post-mortems on the writer thread itself,
// export after the scheduler joins its workers.
//
// Defined fully inline in BOTH build modes so guarded-but-dead record
// sites still compile at -O0 when tracing is compiled out.
class Ring {
 public:
  // `label` is the Tracer-assigned actor number: it keys the causal-id
  // namespace (make_cid) and the export pid, so ids stay unique across
  // concurrently simulated testbeds that reuse domain id 0.
  Ring(std::uint32_t domain_id, std::uint32_t label, std::size_t capacity)
      : domain_id_(domain_id),
        label_(label),
        actor_base_(static_cast<std::uint64_t>(label) << kSeqBits) {
    std::size_t cap = 8;
    while (cap < capacity) cap <<= 1;
    buf_.resize(cap);
    mask_ = cap - 1;
  }

  void record(sim::TimePs t, Phase phase, std::uint16_t name,
              std::uint16_t track, std::uint64_t cid, std::uint64_t arg) {
    Event& e = buf_[head_++ & mask_];
    e.t = t;
    e.cid = cid;
    e.arg = arg;
    e.name = name;
    e.track = track;
    e.phase = phase;
  }

  // A fresh causal id in this ring's namespace: never 0, never collides
  // with another ring's ids or with Tracer::next_actor_base() ids.
  std::uint64_t make_cid() { return actor_base_ | ++cid_seq_; }

  std::size_t capacity() const { return buf_.size(); }
  std::size_t size() const {
    return head_ < buf_.size() ? static_cast<std::size_t>(head_)
                               : buf_.size();
  }
  // Events lost to overwrite (flight-recorder semantics).
  std::uint64_t overwritten() const {
    return head_ < buf_.size() ? 0 : head_ - buf_.size();
  }
  // i-th retained event, oldest first (0 <= i < size()).
  const Event& at(std::size_t i) const {
    return buf_[(head_ - size() + i) & mask_];
  }

  std::uint32_t domain_id() const { return domain_id_; }
  std::uint32_t label() const { return label_; }

  // Low 40 bits of a causal id are the per-actor sequence number; the
  // high bits are the actor label, so ids partition by minting ring.
  static constexpr unsigned kSeqBits = 40;

 private:
  std::vector<Event> buf_;
  std::uint64_t mask_ = 0;
  std::uint64_t head_ = 0;    // total events ever recorded
  std::uint64_t cid_seq_ = 0;
  std::uint32_t domain_id_;
  std::uint32_t label_;
  std::uint64_t actor_base_;
};

#ifndef FLEXTOE_TRACE_DISABLED

// Process-wide registrar: rings, the interned string table, actor-id
// namespaces and drop post-mortems. Mutex-guarded — it is touched on
// ring attach, string intern (cached by record sites), and drops, never
// on the per-event record path.
class Tracer {
 public:
  static Tracer& instance();

  // Create + retain a ring for a domain. The shared_ptr keeps the ring
  // alive for export even after the owning Domain (e.g. a destroyed
  // Testbed) is gone.
  std::shared_ptr<Ring> attach_ring(std::uint32_t domain_id);

  // Intern a string, returning its stable 16-bit id (0 = ""). The table
  // survives reset() because record sites cache ids for the process
  // lifetime. Returns 0 if the table is (implausibly) full.
  std::uint16_t intern(std::string_view s);
  std::string string(std::uint16_t id) const;
  std::vector<std::string> strings() const;

  // A causal-id namespace for non-domain actors (DMA engines, carousel)
  // that pair their own begin/end events: base | local_seq is unique
  // process-wide for local_seq < 2^40.
  std::uint64_t next_actor_base();

  // Capacity (in events, rounded up to a power of two) for rings
  // attached after this call.
  void set_ring_capacity(std::size_t events);
  std::size_t ring_capacity() const;

  // Drop post-mortem: capture the last-K retained events touching
  // `victim` (cid match, or arg match for actor-paired sites) from the
  // dropping domain's own ring. Called on the ring's writer thread.
  struct PostMortem {
    std::string reason;        // drop-reason taxonomy name
    std::uint64_t victim = 0;  // causal id of the dropped segment
    sim::TimePs t = 0;         // drop time (domain-local)
    std::uint32_t domain_id = 0;
    std::uint32_t ring_label = 0;
    std::vector<Event> events;  // oldest first, at most postmortem_depth
  };
  void report_drop(const Ring& ring, std::uint64_t victim,
                   std::string_view reason, sim::TimePs t);
  void set_postmortem_depth(std::size_t k);
  std::size_t postmortem_depth() const;
  void set_postmortem_max_reports(std::size_t n);
  std::vector<PostMortem> postmortems() const;

  std::vector<std::shared_ptr<Ring>> rings() const;

  // Drop all rings, post-mortems and actor labels, and restore the
  // default post-mortem depth/cap (test isolation / a fresh capture).
  // Keeps the interned string table — record sites cache those ids.
  void reset();

 private:
  Tracer();

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<Ring>> rings_;
  std::vector<std::string> strings_;
  std::unordered_map<std::string, std::uint16_t> index_;
  std::uint32_t next_label_ = 0;
  std::size_t ring_capacity_ = std::size_t{1} << 15;
  std::size_t pm_depth_ = 16;
  std::size_t pm_max_reports_ = 64;
  std::vector<PostMortem> pms_;
};

#else  // FLEXTOE_TRACE_DISABLED

// Compiled-out stub: same API, all inline no-ops, so call sites need no
// #ifdefs and the library links with zero trace object files.
class Tracer {
 public:
  static Tracer& instance() {
    static Tracer t;
    return t;
  }
  std::shared_ptr<Ring> attach_ring(std::uint32_t) { return nullptr; }
  std::uint16_t intern(std::string_view) { return 0; }
  std::string string(std::uint16_t) const { return {}; }
  std::vector<std::string> strings() const { return {}; }
  std::uint64_t next_actor_base() { return 0; }
  void set_ring_capacity(std::size_t) {}
  std::size_t ring_capacity() const { return 0; }
  struct PostMortem {
    std::string reason;
    std::uint64_t victim = 0;
    sim::TimePs t = 0;
    std::uint32_t domain_id = 0;
    std::uint32_t ring_label = 0;
    std::vector<Event> events;
  };
  void report_drop(const Ring&, std::uint64_t, std::string_view,
                   sim::TimePs) {}
  void set_postmortem_depth(std::size_t) {}
  std::size_t postmortem_depth() const { return 0; }
  void set_postmortem_max_reports(std::size_t) {}
  std::vector<PostMortem> postmortems() const { return {}; }
  std::vector<std::shared_ptr<Ring>> rings() const { return {}; }
  void reset() {}
};

#endif  // FLEXTOE_TRACE_DISABLED

}  // namespace flextoe::trace
