// Link- and network-layer addresses.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace flextoe::net {

struct MacAddr {
  std::array<std::uint8_t, 6> bytes{};

  static MacAddr from_u64(std::uint64_t v) {
    MacAddr m;
    for (int i = 5; i >= 0; --i) {
      m.bytes[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v);
      v >>= 8;
    }
    return m;
  }
  std::uint64_t to_u64() const {
    std::uint64_t v = 0;
    for (auto b : bytes) v = (v << 8) | b;
    return v;
  }
  bool operator==(const MacAddr&) const = default;
  std::string str() const;
};

// IPv4 address in host byte order.
using Ipv4Addr = std::uint32_t;

constexpr Ipv4Addr make_ip(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                           std::uint8_t d) {
  return (static_cast<Ipv4Addr>(a) << 24) | (static_cast<Ipv4Addr>(b) << 16) |
         (static_cast<Ipv4Addr>(c) << 8) | d;
}

std::string ip_str(Ipv4Addr ip);

}  // namespace flextoe::net
