// Common interface over the flow-scheduler implementations (the SCH
// module, paper §3.4): the data path speaks TimerService; which engine
// sits behind it is a DatapathConfig choice.
//
//   sched::Carousel    — deque + single-level time wheel keyed by flow
//                        id in an unordered_map. Ideal at low
//                        connection counts (tiny footprint, trivial
//                        constants); per-flow map lookups and the
//                        fixed wheel horizon degrade as populations
//                        reach hundreds of thousands.
//   sched::TimingWheel — hierarchical (cascading) timing wheel with
//                        flat per-flow storage and intrusive slot
//                        lists: O(1) arm, O(1) cancel, horizon grows
//                        geometrically per level. The million-
//                        connection engine.
//
// Both implementations preserve identical trigger semantics (one
// trigger per service interval, ready-queue round-robin, park/kick,
// pacing deadlines quantized to the slot granularity), differential-
// tested by tests/sched/timing_wheel_test.cc.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "telemetry/registry.hpp"

namespace flextoe::sched {

class TimerService {
 public:
  using FlowId = std::uint32_t;
  // Asks the data-path to transmit one segment for `flow`; returns the
  // number of payload bytes queued for transmission (0 = blocked).
  using TxTrigger = std::function<std::uint32_t(FlowId)>;

  virtual ~TimerService() = default;

  virtual void set_trigger(TxTrigger t) = 0;

  // Programs the pacing interval for a flow (control-plane division:
  // 0 or >= the uncongested threshold selects the round-robin bypass).
  virtual void set_rate(FlowId flow, std::uint64_t bytes_per_sec) = 0;

  // Data-path FS updates: flow has (at least) `avail` bytes to send.
  virtual void update_avail(FlowId flow, std::uint64_t avail) = 0;
  virtual void add_avail(FlowId flow, std::uint64_t delta) = 0;

  // Re-arms a flow that previously reported blocked (window opened).
  virtual void kick(FlowId flow) = 0;

  virtual void remove_flow(FlowId flow) = 0;

  virtual std::uint64_t triggers() const = 0;
  virtual std::size_t flows_tracked() const = 0;

  // Memory the scheduler holds for its per-flow state (bytes), for the
  // bytes-per-conn audit alongside core::FlowTable::bytes_reserved().
  virtual std::size_t footprint_bytes() const = 0;

  // Implementation tag ("carousel" / "wheel") for reports and tests.
  virtual const char* impl_name() const = 0;

  virtual void bind_telemetry(telemetry::Registry& reg,
                              const std::string& prefix) = 0;
};

}  // namespace flextoe::sched
