// Per-socket payload buffer (PAYLOAD-BUF, paper §3 / Fig 2).
//
// Lives in host memory (1G hugepages in the real system); the NIC DMA
// stage reads TX payload from and writes RX payload into it directly at
// absolute positions. Positions are monotonically increasing 64-bit
// counters; modulo the buffer size gives the physical offset, so the
// protocol stage needs no head/tail coordination with the host.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace flextoe::host {

class PayloadBuf {
 public:
  explicit PayloadBuf(std::size_t size) : buf_(size) {}

  std::size_t size() const { return buf_.size(); }

  void write(std::uint64_t pos, std::span<const std::uint8_t> data) {
    std::size_t off = pos % buf_.size();
    const std::size_t first = std::min(data.size(), buf_.size() - off);
    std::memcpy(buf_.data() + off, data.data(), first);
    if (first < data.size()) {
      std::memcpy(buf_.data(), data.data() + first, data.size() - first);
    }
  }

  void read(std::uint64_t pos, std::span<std::uint8_t> out) const {
    std::size_t off = pos % buf_.size();
    const std::size_t first = std::min(out.size(), buf_.size() - off);
    std::memcpy(out.data(), buf_.data() + off, first);
    if (first < out.size()) {
      std::memcpy(out.data() + first, buf_.data(), out.size() - first);
    }
  }

 private:
  std::vector<std::uint8_t> buf_;
};

}  // namespace flextoe::host
