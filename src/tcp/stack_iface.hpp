// Stack-neutral application interface.
//
// Applications (KV store, RPC echo, workload generators) are written
// against this interface so the same binary logic runs unmodified over
// libTOE (FlexTOE offload) and the software baseline stacks — mirroring
// the paper's "identical application binaries across all baselines" (§5).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>

#include "net/addr.hpp"

namespace flextoe::tcp {

using ConnId = std::uint32_t;
inline constexpr ConnId kInvalidConn = 0xFFFFFFFF;

struct StackCallbacks {
  // New inbound connection accepted on a listening port.
  std::function<void(ConnId)> on_accept;
  // Outbound connect completed (ok=false: refused / failed).
  std::function<void(ConnId, bool ok)> on_connected;
  // New in-order payload is readable.
  std::function<void(ConnId)> on_data;
  // Transmit buffer space freed (previously blocked send may proceed).
  std::function<void(ConnId)> on_sendable;
  // Peer closed or connection aborted.
  std::function<void(ConnId)> on_close;
};

class StackIface {
 public:
  virtual ~StackIface() = default;

  virtual void set_callbacks(StackCallbacks cbs) = 0;

  virtual void listen(std::uint16_t port) = 0;
  virtual ConnId connect(net::Ipv4Addr remote_ip, std::uint16_t remote_port) = 0;

  // Non-blocking: returns bytes queued/copied (0 = would block).
  virtual std::size_t send(ConnId c, std::span<const std::uint8_t> data) = 0;
  virtual std::size_t recv(ConnId c, std::span<std::uint8_t> out) = 0;

  // Readable bytes currently buffered for this connection.
  virtual std::size_t rx_available(ConnId c) const = 0;
  // Free transmit-buffer space.
  virtual std::size_t tx_space(ConnId c) const = 0;

  virtual void close(ConnId c) = 0;

  virtual net::Ipv4Addr local_ip() const = 0;
};

}  // namespace flextoe::tcp
