// Table 6 (Appendix C): breakdown of per-packet TCP/IP processing in TAS
// for the memcached benchmark. The functional split is a model input (the
// paper measured it with perf); the bench validates that the measured
// total per-packet stack cost in simulation matches the modeled total.
#include "common.hpp"

using namespace flextoe;
using namespace flextoe::benchx;

int main() {
  // Run the Table-1 memcached workload on TAS and measure per-packet
  // stack cycles.
  Testbed tb(79);
  auto& server = add_server(tb, Stack::Tas, 1);
  auto& client = tb.add_client_node();
  app::KvServer srv(tb.ev(), *server.stack,
                    {.port = 11211, .app_cycles = app_cycles(Stack::Tas)},
                    server.cpu.get());
  app::KvClient::Params cp;
  cp.connections = 8;
  cp.pipeline = 4;
  app::KvClient cli(tb.ev(), *client.stack, server.ip, cp);
  cli.start();

  tb.run_for(sim::ms(20));
  server.cpu->clear_accounting();
  const std::uint64_t base_segs = server.sw->segs_rx() + server.sw->segs_tx();
  tb.run_for(sim::ms(60));
  const std::uint64_t segs =
      server.sw->segs_rx() + server.sw->segs_tx() - base_segs;
  const double per_pkt =
      segs > 0 ? static_cast<double>(server.cpu->cycles(sim::CpuCat::Stack)) /
                     static_cast<double>(segs)
               : 0;

  // Functional decomposition of TAS fast-path work (model inputs,
  // fractions from the paper's Table 6).
  struct Row {
    const char* name;
    double paper_cycles;
  };
  const Row rows[] = {
      {"Segment generation", 130}, {"Loss detection/recovery", 606},
      {"Payload transfer", 10},    {"Application notification", 381},
      {"Flow scheduling", 172},    {"Miscellaneous", 141},
  };
  const double paper_total = 1440;

  print_header("Table 6: TAS TCP/IP per-packet cycle breakdown",
               {"Function", "cycles", "%"});
  for (const auto& r : rows) {
    print_cell(r.name);
    print_cell(r.paper_cycles * (per_pkt * 2 / paper_total), 0);
    print_cell(100.0 * r.paper_cycles / paper_total, 0);
    end_row();
  }
  print_cell("Total (per req-resp pair)");
  print_cell(per_pkt * 2, 0);
  print_cell(100.0, 0);
  end_row();

  std::printf(
      "\nMeasured TAS stack cycles per segment: %.0f (model: rx %u / tx "
      "%u)\nPaper: 1440 cycles per request-response pair of stack "
      "processing.\n",
      per_pkt, baseline::tas_personality().costs.stack_rx,
      baseline::tas_personality().costs.stack_tx);
  return 0;
}
