#include "sim/domain.hpp"

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

namespace flextoe::sim {

namespace {

unsigned g_default_threads = 1;

// Reusable N-party rendezvous. Condvar-based on purpose: oversubscribed
// runs (more workers than host cores — this container has one) must
// block, not spin, or every epoch costs a scheduling quantum. The
// mutex/condvar pair also gives the happens-before edge the mailbox
// spill path and the coordinator's horizon writes rely on.
class EpochBarrier {
 public:
  explicit EpochBarrier(unsigned parties) : parties_(parties) {}

  void arrive_and_wait() {
    std::unique_lock<std::mutex> lk(m_);
    const std::uint64_t gen = gen_;
    if (++waiting_ == parties_) {
      waiting_ = 0;
      ++gen_;
      cv_.notify_all();
    } else {
      cv_.wait(lk, [&] { return gen_ != gen; });
    }
  }

 private:
  std::mutex m_;
  std::condition_variable cv_;
  const unsigned parties_;
  unsigned waiting_ = 0;
  std::uint64_t gen_ = 0;
};

// Interned trace names for the domain layer, resolved once per process
// (record sites cache ids; the Tracer keeps its string table across
// reset()). With tracing compiled out these intern to 0 and the guarded
// call sites are dead code anyway.
struct DomainTraceIds {
  std::uint16_t post_name;
  std::uint16_t post_track;
  std::uint16_t epoch_name;
  std::uint16_t epoch_track;
  std::uint16_t drain_name;
};

const DomainTraceIds& domain_trace_ids() {
  static const DomainTraceIds ids = {
      trace::Tracer::instance().intern("post"),
      trace::Tracer::instance().intern("xdomain/post"),
      trace::Tracer::instance().intern("epoch"),
      trace::Tracer::instance().intern("epoch/window"),
      trace::Tracer::instance().intern("drain"),
  };
  return ids;
}

}  // namespace

unsigned default_sim_threads() { return g_default_threads; }

void set_default_sim_threads(unsigned n) {
  g_default_threads = n == 0 ? 1 : n;
}

// ---------------------------------------------------------------------
// Domain

void Domain::post(Domain& to, TimePs t, EventQueue::Callback cb) {
  if (&to == this || !to.scheduled_) {
    to.schedule_at(t, std::move(cb));
    return;
  }
  // Conservative-sync safety: the receiver may already be executing up
  // to now() + lookahead; a nearer post would arrive in its past.
  assert(t >= now() + min_post_delay_ &&
         "cross-domain post inside the lookahead window");
  assert(id_ < to.inboxes_.size() && to.inboxes_[id_] != nullptr &&
         "posting to a domain of a different scheduler");
  // Cross-domain hand-off flow arrow: tail here, head on the receiver
  // when the posted callback actually runs. The wrap is out-of-band —
  // it never changes when/where `cb` executes — and only happens while
  // tracing is runtime-enabled.
  if (trace::Ring* r = trace_ring()) {
    const DomainTraceIds& ids = domain_trace_ids();
    const std::uint64_t fid = r->make_cid();
    r->record(now(), trace::Phase::kFlowBegin, ids.post_name,
              ids.post_track, fid, to.id());
    Domain* dest = &to;
    cb = [dest, fid, inner = std::move(cb)]() mutable {
      if (trace::Ring* rr = dest->trace_ring()) {
        const DomainTraceIds& dids = domain_trace_ids();
        rr->record(dest->now(), trace::Phase::kFlowEnd, dids.post_name,
                   dids.post_track, fid, dest->id());
      }
      inner();
    };
  }
  to.inboxes_[id_]->push(t, std::move(cb));
}

void Domain::attach_trace_ring() {
  trace_ring_ = trace::Tracer::instance().attach_ring(id_);
}

void Domain::drain_inboxes() {
  for (auto& mb : inboxes_) {
    if (!mb) continue;
    mb->drain([this](TimePs t, EventQueue::Callback cb) {
      schedule_at(t, std::move(cb));
    });
  }
}

// ---------------------------------------------------------------------
// DomainScheduler

DomainScheduler::DomainScheduler(std::size_t domains, std::uint64_t seed)
    : DomainScheduler(domains, seed, Params{}) {}

DomainScheduler::DomainScheduler(std::size_t domains, std::uint64_t seed,
                                 Params p)
    : params_(p) {
  if (params_.lookahead == 0) params_.lookahead = 1;
  Rng seeder(seed);
  domains_.reserve(domains);
  for (std::size_t i = 0; i < domains; ++i) {
    domains_.push_back(std::make_unique<Domain>(
        Domain::Params{static_cast<std::uint32_t>(i), seeder.next_u64()}));
  }
  for (auto& d : domains_) {
    d->inboxes_.resize(domains);
    for (std::size_t s = 0; s < domains; ++s) {
      if (s == d->id_) continue;
      d->inboxes_[s] = std::make_unique<Mailbox>(params_.mailbox_capacity);
    }
  }
}

DomainScheduler::~DomainScheduler() = default;

TimePs DomainScheduler::global_next() const {
  TimePs next = EventQueue::kNoEvent;
  for (const auto& d : domains_) next = std::min(next, d->next_time());
  return next;
}

TimePs DomainScheduler::horizon_for(TimePs next, TimePs limit) const {
  // Exclusive upper bound of the epoch window, saturating, and capped so
  // run_until(limit) still executes events at exactly `limit`.
  TimePs horizon = next > EventQueue::kNoEvent - params_.lookahead
                       ? EventQueue::kNoEvent
                       : next + params_.lookahead;
  if (limit != EventQueue::kNoEvent && horizon > limit) horizon = limit + 1;
  return horizon;
}

void DomainScheduler::run_window(unsigned worker, TimePs horizon) {
  for (std::size_t i = worker; i < domains_.size(); i += threads_used_) {
    Domain& d = *domains_[i];
    // Epoch window as a sync span on the domain's own track: windows
    // never overlap within a domain, and both timestamps come from the
    // domain-local clock, so per-ring monotonicity holds.
    if (trace::Ring* r = d.trace_ring()) {
      const DomainTraceIds& ids = domain_trace_ids();
      r->record(d.now(), trace::Phase::kBegin, ids.epoch_name,
                ids.epoch_track, 0, horizon);
      d.run_before(horizon);
      r->record(d.now(), trace::Phase::kEnd, ids.epoch_name,
                ids.epoch_track, 0, horizon);
    } else {
      d.run_before(horizon);
    }
  }
}

void DomainScheduler::drain_phase(unsigned worker) {
  for (std::size_t i = worker; i < domains_.size(); i += threads_used_) {
    Domain& d = *domains_[i];
    d.drain_inboxes();
    // Barrier marker: the epoch's mailbox-drain point on this domain.
    if (trace::Ring* r = d.trace_ring()) {
      const DomainTraceIds& ids = domain_trace_ids();
      r->record(d.now(), trace::Phase::kInstant, ids.drain_name,
                ids.epoch_track, 0, d.id());
    }
  }
}

void DomainScheduler::run_epochs(TimePs limit) {
  const unsigned want = params_.threads ? params_.threads
                                        : default_sim_threads();
  threads_used_ = static_cast<unsigned>(std::min<std::size_t>(
      std::max(1u, want), domains_.size()));

  // Mailbox routing is armed for the whole run regardless of the thread
  // count, so a 1-thread run replays the exact epoch/drain sequence of
  // an N-thread run (determinism across thread counts).
  for (auto& d : domains_) {
    d->scheduled_ = true;
    d->min_post_delay_ = params_.lookahead;
  }

  if (threads_used_ == 1) {
    for (;;) {
      const TimePs next = global_next();
      if (next == EventQueue::kNoEvent || next > limit) break;
      const TimePs horizon = horizon_for(next, limit);
      ++epochs_;
      run_window(0, horizon);
      drain_phase(0);
    }
  } else {
    // The calling thread doubles as worker 0 and coordinates: it
    // publishes the next horizon (or done), then everyone runs the
    // window phase, a barrier, the drain phase, a barrier, and the
    // coordinator recomputes. All cross-thread state (horizon, done,
    // mailbox spill lists) is ordered by the barrier's mutex.
    EpochBarrier barrier(threads_used_);
    TimePs horizon = 0;
    bool done = false;

    auto body = [&](unsigned w) {
      for (;;) {
        barrier.arrive_and_wait();  // A: horizon/done published
        if (done) return;
        run_window(w, horizon);
        barrier.arrive_and_wait();  // B: every producer quiesced
        drain_phase(w);
        barrier.arrive_and_wait();  // C: every mailbox drained
      }
    };

    std::vector<std::thread> pool;
    pool.reserve(threads_used_ - 1);
    for (unsigned w = 1; w < threads_used_; ++w) {
      pool.emplace_back(body, w);
    }
    for (;;) {
      const TimePs next = global_next();
      if (next == EventQueue::kNoEvent || next > limit) {
        done = true;
        barrier.arrive_and_wait();  // release workers into exit
        break;
      }
      horizon = horizon_for(next, limit);
      ++epochs_;
      barrier.arrive_and_wait();  // A
      run_window(0, horizon);
      barrier.arrive_and_wait();  // B
      drain_phase(0);
      barrier.arrive_and_wait();  // C
    }
    for (auto& t : pool) t.join();
  }

  for (auto& d : domains_) {
    d->scheduled_ = false;
    d->min_post_delay_ = 0;
  }
}

void DomainScheduler::run_all() { run_epochs(EventQueue::kNoEvent); }

void DomainScheduler::run_until(TimePs t) {
  run_epochs(t);
  for (auto& d : domains_) d->advance_clock(t);
}

std::uint64_t DomainScheduler::executed() const {
  std::uint64_t n = 0;
  for (const auto& d : domains_) n += d->executed();
  return n;
}

std::uint64_t DomainScheduler::mailbox_spills() const {
  std::uint64_t n = 0;
  for (const auto& d : domains_) {
    for (const auto& mb : d->inboxes_) {
      if (mb) n += mb->spills();
    }
  }
  return n;
}

}  // namespace flextoe::sim
