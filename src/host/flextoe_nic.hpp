// FlexToeNic: a fully assembled FlexTOE endpoint — SmartNIC data-path,
// control plane, and libTOE, wired together with identity and the MAC.
// This is the object a "machine" in the testbed instantiates; its
// StackIface (libTOE) is what applications program against.
#pragma once

#include <memory>

#include "core/datapath.hpp"
#include "host/control_plane.hpp"
#include "host/libtoe.hpp"

namespace flextoe::host {

struct FlexToeNicConfig {
  core::DatapathConfig datapath;
  ControlPlaneConfig control;
  LibToeConfig libtoe;
};

class FlexToeNic {
 public:
  FlexToeNic(sim::Domain& ev, sim::Rng rng, net::MacAddr mac,
             net::Ipv4Addr ip, FlexToeNicConfig cfg = {},
             sim::CpuPool* host_cpu = nullptr)
      : dp_(ev, cfg.datapath,
            core::Datapath::HostIface{
                [this](const CtxDesc& d) { lib_->on_notify(d); },
                [this](const net::PacketPtr& p) {
                  cp_->on_control_segment(p);
                },
                [this](tcp::ConnId c) { cp_->on_peer_fin(c); }}),
        cp_(std::make_unique<ControlPlane>(ev, dp_, rng.fork(),
                                           cfg.control)),
        lib_(std::make_unique<LibToe>(ev, dp_, *cp_, cfg.libtoe,
                                      host_cpu)) {
    dp_.set_local(mac, ip);
    cp_->set_identity(mac, ip);
    cp_->set_libtoe(lib_.get());
  }

  // Wire side: give this to the switch; give the switch's ingress to us.
  net::PacketSink& mac_rx() { return dp_; }
  void set_mac_tx(net::PacketSink* sink) { dp_.set_mac_sink(sink); }

  // Application side.
  tcp::StackIface& stack() { return *lib_; }
  LibToe& libtoe() { return *lib_; }
  ControlPlane& control_plane() { return *cp_; }
  core::Datapath& datapath() { return dp_; }

 private:
  core::Datapath dp_;
  std::unique_ptr<ControlPlane> cp_;
  std::unique_ptr<LibToe> lib_;
};

}  // namespace flextoe::host
