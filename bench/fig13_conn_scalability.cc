// Figure 13: connection scalability — throughput vs number of
// connections (64 B echo, one RPC in flight per connection). Stresses the
// NIC memory hierarchy: per-connection batching vanishes, so every
// pipeline stage misses its caches. One series per stack; rows are
// connection counts.
//
// A second scenario (conn_scale) pushes the simulated SUT itself to a
// million concurrent connections: per-island Datapaths with sharded
// flow tables and the hierarchical timing wheel, driven by the in-tree
// web-search/data-mining flow-size CDFs plus install/remove churn. Its
// rows report bytes_per_conn (the paper's "millions of connections fit
// in NIC memory" claim as a measured quantity) and a determinism
// fingerprint that must not move across --threads settings
// (tools/check_scale.py gates both in CI).
#include <chrono>
#include <memory>

#include "common.hpp"
#include "workload/size_model.hpp"

using namespace flextoe;
using namespace flextoe::benchx;

namespace {

double run_point(Stack s, unsigned conns, std::uint64_t seed, sim::TimePs warm,
                 sim::TimePs span) {
  Testbed tb(seed);
  // 64 B RPCs need tiny buffers; shrink to bound testbed memory.
  host::FlexToeNicConfig toe_cfg;
  app::NodeParams np;
  np.cores = 8;
  // 100G MAC isolates NIC compute/memory scaling from line rate
  // (64 B echo wire overhead saturates 40G before the caches bind).
  np.nic_gbps = 100.0;
  np.sockbuf_bytes = 8 * 1024;
  Testbed::Node* server_ptr = nullptr;
  if (s == Stack::FlexToe) {
    server_ptr = &tb.add_flextoe_node(np, toe_cfg);
  } else {
    auto pers = personality(s);
    np.serial_fraction = pers.serial_fraction;
    server_ptr = &tb.add_sw_node(np, pers);
  }
  auto& server = *server_ptr;
  app::EchoServer srv(tb.ev(), *server.stack, {.port = 7},
                      server.cpu.get());

  // Five client machines, as in the paper.
  std::vector<std::unique_ptr<app::ClosedLoopClient>> clients;
  const unsigned nclients = 5;
  for (unsigned i = 0; i < nclients; ++i) {
    auto& cn = tb.add_client_node(100.0, /*sockbuf=*/8 * 1024);
    app::ClosedLoopClient::Params cp;
    cp.connections = conns / nclients;
    cp.pipeline = 1;  // a single 64 B RPC in flight per connection
    cp.request_size = 64;
    cp.connect_stagger = sim::us(2);
    clients.push_back(std::make_unique<app::ClosedLoopClient>(
        tb.ev(), *cn.stack, server.ip, cp));
    clients.back()->start();
  }

  // Allow all handshakes to complete.
  tb.run_for(warm);
  std::uint64_t base = 0;
  for (auto& c : clients) base += c->completed();
  tb.run_for(span);
  std::uint64_t done = 0;
  for (auto& c : clients) done += c->completed();
  done -= base;
  return static_cast<double>(done) / sim::to_sec(span) / 1e6;
}

}  // namespace

BENCH_SCENARIO(fig13, "throughput (MOps) vs connections (64B echo)") {
  const auto conn_counts = ctx.pick<std::vector<unsigned>>(
      {1024, 2048, 8192, 16384}, {256});
  const auto warm = ctx.pick(sim::ms(40), sim::ms(10));
  const auto span = ctx.pick(sim::ms(20), sim::ms(4));

  for (unsigned conns : conn_counts) {
    for (Stack s : all_stacks()) {
      const double mops = ctx.measure([&](int rep) {
        return run_point(s, conns, ctx.seed(41 + static_cast<unsigned>(rep)), warm,
                         span);
      });
      ctx.report().series(stack_name(s)).set(std::to_string(conns), "mops",
                                             mops);
    }
  }
  ctx.report().note(
      "Paper shape: FlexTOE ~3.3x Linux up to 2K conns (CLS-cached), "
      "declines ~24% by 8K (EMEM cache strained) then plateaus;\n"
      "TAS ~1.5x FlexTOE at scale (big host LLC); Linux declines sharply; "
      "Chelsio worst (epoll overhead).");
}

// ---------------------------------------------------------------------
// conn_scale: million-connection scale-out of the SUT itself.

namespace {

constexpr unsigned kIslands = 4;
constexpr std::uint32_t kMss = 1448;
constexpr tcp::SeqNum kIss = 1000, kIrs = 2000;
// Flow-size samples capped so one message fits the 64 KB windows
// without ACK clocking or RX frees (no peer exists in this rig).
constexpr std::uint32_t kSizeCap = 32 * 1024;

// One flow-group island: a Datapath in its own event domain, a slice of
// the total connection population, and self-driving generator events
// (install, per-segment RX injection, doorbell-driven TX, churn) that
// all run INSIDE the domain — so the island's flow-table shards bind to
// the worker thread that owns the domain (sim/affinity.hpp) and a
// --threads N run stays event-identical to the sequential one.
class ScaleIsland {
 public:
  ScaleIsland(sim::Domain& dom, unsigned id, std::uint32_t conns,
              std::uint32_t active, std::uint32_t churn)
      : dom_(dom),
        id_(id),
        conns_target_(conns),
        active_(std::min(active, conns)),
        churn_target_(churn),
        rng_(dom.rng().fork()),
        // Alternate the two in-tree datacenter distributions across
        // islands; both are heavy-tailed, data-mining more so.
        sizes_(workload::empirical_size(id % 2 == 0
                                            ? workload::websearch_flow_cdf()
                                            : workload::datamining_flow_cdf(),
                                        kSizeCap)),
        rx_buf_(64 * 1024),
        tx_buf_(64 * 1024),
        dp_(dom, scale_config(conns), null_host()) {
    dp_.set_local(mac(0xA0), net::make_ip(10, 0, id_ + 1, 1));
  }

  // Everything runs as domain events: arm() only schedules the seed.
  void arm() {
    dom_.schedule_at(0, [this] { setup(); });
  }

  core::Datapath& dp() { return dp_; }
  std::uint64_t churned() const { return churned_; }
  sim::TimePs now() const { return dom_.now(); }

 private:
  static core::DatapathConfig scale_config(std::uint32_t conns) {
    core::DatapathConfig cfg;
    cfg.max_conns = conns;
    // The scale-out engine under test; kAuto would pick it anyway at
    // >= 100k conns per island, but the curve should exercise one
    // engine across all population sizes.
    cfg.timer = core::TimerImpl::kWheel;
    return cfg;
  }

  static core::Datapath::HostIface null_host() {
    core::Datapath::HostIface host;
    host.notify = [](const host::CtxDesc&) {};
    host.to_control = [](const net::PacketPtr&) {};
    host.peer_fin = [](tcp::ConnId) {};
    return host;
  }

  net::MacAddr mac(std::uint8_t kind) const {
    return net::MacAddr::from_u64(0x020000000000ull | (kind << 8) | id_);
  }

  tcp::FlowTuple fresh_tuple() {
    const std::uint32_t n = next_tuple_++;
    tcp::FlowTuple t;
    t.local_ip = net::make_ip(10, 0, id_ + 1, 1);
    t.local_port = 80;
    t.remote_ip = net::make_ip(11, id_ + 1, 0, 0) + (n >> 16);
    t.remote_port = static_cast<std::uint16_t>(n);
    return t;
  }

  tcp::ConnId install_one() {
    core::FlowInstall ins;
    ins.tuple = fresh_tuple();
    ins.local_mac = mac(0xA0);
    ins.peer_mac = mac(0xB0);
    ins.iss = kIss;
    ins.irs = kIrs;
    ins.rx_buf = &rx_buf_;  // shared ring: positions may overlap, the
    ins.tx_buf = &tx_buf_;  // rig never reads payload back
    return dp_.install_flow(ins);
  }

  void setup() {
    conns_.reserve(conns_target_);
    for (std::uint32_t i = 0; i < conns_target_; ++i) {
      conns_.push_back(install_one());
    }
    // Even active slots receive a CDF-sized message as in-order MSS
    // segments; odd slots transmit one (doorbell -> wheel-paced TX).
    rx_msg_.assign(active_, 0);
    rx_seen_.assign(active_, 0);
    rx_stall_.assign(active_, 0);
    const sim::TimePs t0 = dom_.now() + sim::us(5);
    for (std::uint32_t a = 0; a < active_; ++a) {
      const sim::TimePs at = t0 + sim::ns(200) * a;  // staggered starts
      if (a % 2 == 0) {
        rx_msg_[a] = sizes_->sample(rng_);
        dom_.schedule_at(at, [this, a] { deliver_next(a); });
      } else {
        dom_.schedule_at(at, [this, a] { start_tx(a); });
      }
    }
    if (churn_target_ > 0 && conns_target_ > active_) {
      dom_.schedule_at(t0 + sim::us(1), [this] { churn_one(); });
    }
  }

  void start_tx(std::uint32_t a) {
    const tcp::ConnId conn = conns_[a];
    // Paced below the uncongested threshold so every re-arm goes
    // through the wheel: 0.25..2 GB/s.
    dp_.set_rate(conn, 250'000'000 + rng_.next_below(1'750'000'000));
    const std::uint32_t bytes = sizes_->sample(rng_);
    dp_.hc_queue(0).push({host::CtxDescType::TxDoorbell, conn, bytes, 0});
    dp_.doorbell(0);
  }

  void deliver_next(std::uint32_t a) {
    const tcp::ConnId conn = conns_[a];
    const core::ProtoState* ps = dp_.proto_state(conn);
    if (ps == nullptr) return;
    // Ack-clocked, one segment in flight per flow: the next in-order
    // sequence position comes straight from the SUT's own cumulative
    // ack. Inject only when the ack moved since the last poll (the
    // previous segment landed) or after an 8-poll stall (retransmit
    // after a shed segment) — never blind re-offers, which would melt
    // the pipeline in duplicates at this flow count.
    const std::uint32_t delivered = ps->ack - (kIrs + 1);
    if (delivered >= rx_msg_[a]) return;  // message fully consumed
    const bool progressed = delivered != rx_seen_[a] || rx_stall_[a] == 0;
    rx_seen_[a] = delivered;
    if (progressed || ++rx_stall_[a] >= 8) {
      rx_stall_[a] = 1;
      const std::uint32_t len = std::min(rx_msg_[a] - delivered, kMss);
      const tcp::FlowTuple& t = dp_.flow_table().get(conn)->fs.tuple;
      dp_.deliver(net::make_tcp_packet(
          mac(0xB0), mac(0xA0), t.remote_ip, t.local_ip, t.remote_port,
          t.local_port, ps->ack, kIss + 1,
          net::tcpflag::kAck | net::tcpflag::kPsh,
          std::vector<std::uint8_t>(len, 0x5A)));
    }
    dom_.schedule_at(dom_.now() + sim::us(1), [this, a] { deliver_next(a); });
  }

  void churn_one() {
    // Victims cycle through the passive population (never an active
    // slot): remove, then immediately install a fresh tuple — the
    // backward-shift erase and re-insert path at full population.
    const std::uint32_t v =
        active_ + static_cast<std::uint32_t>(
                      churned_ % (conns_.size() - active_));
    dp_.remove_flow(conns_[v]);
    conns_[v] = install_one();
    ++churned_;
    if (churned_ < churn_target_) {
      dom_.schedule_at(dom_.now() + sim::us(2), [this] { churn_one(); });
    }
  }

  sim::Domain& dom_;
  unsigned id_;
  std::uint32_t conns_target_;
  std::uint32_t active_;
  std::uint32_t churn_target_;
  sim::Rng rng_;
  std::unique_ptr<workload::SizeModel> sizes_;
  host::PayloadBuf rx_buf_, tx_buf_;
  core::Datapath dp_;
  std::vector<tcp::ConnId> conns_;
  std::vector<std::uint32_t> rx_msg_;    // per active slot: message bytes
  std::vector<std::uint32_t> rx_seen_;   // delivered bytes at last poll
  std::vector<std::uint32_t> rx_stall_;  // polls since last injection
  std::uint32_t next_tuple_ = 0;
  std::uint64_t churned_ = 0;
};

struct ScalePoint {
  double segments = 0;       // RX + TX segments processed
  double sim_sec = 0;        // simulated span (quiesce time)
  double wall_us = 0;        // host wall-clock for the whole point
  double bytes_per_conn = 0; // flow table + scheduler, per live conn
  double conns_live = 0;
  double churn = 0;
  std::uint64_t fingerprint = 0;
};

ScalePoint run_scale_point(std::uint32_t total_conns, std::uint64_t seed,
                           int threads) {
  const std::uint32_t per_island = total_conns / kIslands;
  const std::uint32_t active = std::min<std::uint32_t>(per_island, 2048);
  const std::uint32_t churn = std::min<std::uint32_t>(per_island / 10, 1000);

  sim::DomainScheduler::Params sp;
  sp.threads = static_cast<unsigned>(threads);
  sim::DomainScheduler sched(kIslands, seed, sp);
  std::vector<std::unique_ptr<ScaleIsland>> islands;
  for (unsigned i = 0; i < kIslands; ++i) {
    islands.push_back(std::make_unique<ScaleIsland>(
        sched.domain(i), i, per_island, active, churn));
  }
  for (auto& is : islands) is->arm();

  const auto wall0 = std::chrono::steady_clock::now();
  sched.run_all();
  const auto wall1 = std::chrono::steady_clock::now();

  ScalePoint pt;
  pt.wall_us = std::chrono::duration<double, std::micro>(wall1 - wall0).count();
  std::uint64_t fp = 0xcbf29ce484222325ull;  // FNV-1a over island state
  auto mix = [&fp](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      fp ^= (v >> (8 * i)) & 0xFF;
      fp *= 0x100000001b3ull;
    }
  };
  double bytes = 0;
  sim::TimePs end = 0;
  for (const auto& is : islands) {
    core::Datapath& dp = is->dp();
    pt.segments += static_cast<double>(dp.rx_segments() + dp.tx_segments());
    pt.conns_live += static_cast<double>(dp.flow_table().size());
    pt.churn += static_cast<double>(is->churned());
    bytes += static_cast<double>(dp.conn_bytes_reserved());
    end = std::max(end, is->now());
    mix(dp.rx_segments());
    mix(dp.tx_segments());
    mix(dp.acks_sent());
    mix(dp.drops());
    mix(dp.flow_table().size());
    mix(dp.flow_table().rehashes());
    mix(dp.scheduler().triggers());
    mix(dp.conn_bytes_reserved());
  }
  pt.sim_sec = sim::to_sec(end);
  pt.bytes_per_conn = pt.conns_live > 0 ? bytes / pt.conns_live : 0;
  // Truncate to 48 bits so the value is exactly representable as the
  // JSON double every other row metric already is.
  pt.fingerprint = fp & 0xFFFFFFFFFFFFull;
  return pt;
}

}  // namespace

BENCH_SCENARIO(conn_scale,
               "SUT scale-out: sharded tables + timing wheel to 1M conns") {
  const auto conn_counts = ctx.pick<std::vector<std::uint32_t>>(
      {10'000, 100'000, 1'000'000}, {10'000, 100'000});

  auto& series = ctx.report().series("flextoe_sut");
  for (std::uint32_t conns : conn_counts) {
    // One deterministic run per point: wall time is reported, so
    // repeats would only average noise into an otherwise reproducible
    // row — variance belongs to --seed sweeps.
    const ScalePoint pt =
        run_scale_point(conns, ctx.seed(1300 + conns), ctx.threads());
    const std::string label = std::to_string(conns);
    series.set(label, "segments_per_sec",
               pt.sim_sec > 0 ? pt.segments / pt.sim_sec : 0);
    series.set(label, "host_us_per_seg",
               pt.segments > 0 ? pt.wall_us / pt.segments : 0);
    series.set(label, "bytes_per_conn", pt.bytes_per_conn);
    series.set(label, "conns_live", pt.conns_live);
    series.set(label, "churn_ops", pt.churn);
    series.set(label, "fingerprint", static_cast<double>(pt.fingerprint));
  }
  ctx.report().note(
      "conn_scale drives the simulated SUT itself (4 island datapaths, "
      "web-search/data-mining flow CDFs, install/remove churn);\n"
      "bytes_per_conn = (flow table + scheduler) / live conns — the "
      "paper's EMEM-capacity claim as a regression-gated number.\n"
      "fingerprint is invariant across --threads (tools/check_scale.py).");
}
