// pipeline::Graph — the explicit stage graph of the FlexTOE data path.
//
//   MAC RX -> [gate] -> seq -> pre ==steer==> (proto ROB) -> proto
//        -> post ==dma/notify==> dma -> (NBI ROB) -> MAC TX
//                                 \-> ctx-queue -> host notify
//
// The graph owns everything *structural* about the pipeline: stage nodes
// with their replica FPCs and selection policy (pipeline/stage.hpp),
// per-flow-group islands (sequencer, reorder points, egress numbering,
// island memory), the service stages (DMA issue, context queue), the
// run-to-completion admission gate, the drop taxonomy, and per-stage
// telemetry. Stage *bodies* — the TCP protocol logic — are bound in as
// handlers by the owner (core::Datapath), which no longer contains any
// dispatch or replica-selection code.
//
// Run-to-completion (Table 3 baseline) is a graph configuration, not a
// parallel code path: `cfg.pipelined = false` builds every stage on one
// shared FPC and arms the admission gate that serializes whole segments.
// Likewise `cfg.reorder = false` builds pass-through reorder points (the
// no-reorder ablation) — new topologies are configs, not code.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/seg_ctx.hpp"
#include "net/packet.hpp"
#include "nfp/dma.hpp"
#include "nfp/fpc.hpp"
#include "nfp/memory.hpp"
#include "pipeline/reorder.hpp"
#include "pipeline/stage.hpp"
#include "pipeline/tap.hpp"
#include "sim/domain.hpp"
#include "sim/small_fn.hpp"
#include "telemetry/registry.hpp"

namespace flextoe::pipeline {

// Verdict an attached XDP stage body returns for a segment. Mirrors the
// xdp::XdpAction taxonomy without a layering inversion: pipeline/ stays
// ignorant of src/xdp — the owner (core::Datapath) adapts its programs
// into XdpStageDesc bodies returning this enum.
enum class XdpVerdict : std::uint8_t {
  Pass,      // continue down the chain / into pre-processing
  Drop,      // shed (attributed to DropReason::XdpDrop)
  Tx,        // reflect out the MAC (handlers.nbi_tx)
  Redirect,  // divert to the control path (handlers.redirect)
};

// One XDP program splice (paper §3.3) as a stage description: the graph
// builds a first-class Stage node per attached program, with its own
// replica FPCs, and chains them ahead of pre-processing.
struct XdpStageDesc {
  std::string name;          // stage is named "xdp<i>.<name>"
  std::uint32_t cycles = 0;  // compute cost per segment on the hosting FPC
  std::function<XdpVerdict(const core::SegCtxPtr&)> run;
};

class Graph {
 public:
  using SegHandler = std::function<void(const core::SegCtxPtr&)>;

  // Stage bodies and callbacks supplied by the graph's owner. All are
  // bound once at construction; the framework never outlives them.
  struct Handlers {
    SegHandler pre_rx;       // Val/Id/Sum (header summary, flow lookup)
    SegHandler pre_tx;       // Alloc/Head
    SegHandler proto;        // atomic per-connection protocol step
    SegHandler post;         // Ack/Stamp/Stats/Pos
    SegHandler dma;          // payload DMA issue
    SegHandler ctx_notify;   // host context-queue notification
    // Is the context's connection still installed? (guards dispatch into
    // the stateful stages).
    std::function<bool(const core::SegCtxPtr&)> conn_valid;
    // In-order egress sink (NBI -> MAC).
    std::function<void(const net::PacketPtr&)> nbi_tx;
    // XDP Redirect verdict: divert the segment to the control path.
    SegHandler redirect;
    // Legacy drop accounting (aggregate counter + tracepoint).
    std::function<void(DropReason)> on_drop;
  };

  Graph(sim::Domain& ev, const core::DatapathConfig& cfg,
        nfp::DmaEngine& dma, Handlers handlers);
  ~Graph();
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  // ---- Ingress (pipeline admission) ----
  // Telemetry admission stamp (end-to-end latency base).
  void stamp_birth(core::SegCtx& ctx);
  // Burst form with a caller-captured clock value: valid only while no
  // events can run between the capture and the stamp (one burst, one
  // event turn).
  void stamp_birth_at(core::SegCtx& ctx, sim::TimePs now);
  // MAC RX: gate-admitted (droppable under RTC overload), sequenced,
  // then dispatched into the XDP chain when one is attached, else
  // straight to the flow group's pre stage.
  void ingress_rx(const core::SegCtxPtr& ctx);
  // Burst MAC RX admission: semantically n x ingress_rx in span order
  // (same sequencer numbers, replica stripe, submit order, drop
  // attribution — burst boundaries are a dispatch detail), with the
  // clock read, replica arbitration, and telemetry stamping amortized
  // per contiguous same-flow-group run and the next context's hot line
  // prefetched. Under the RTC gate it degenerates to the per-item path.
  void ingress_rx_burst(const core::SegCtxPtr* ctxs, std::size_t n);
  // Scheduler-triggered TX: consumes a pre-replica grant; returns false
  // when that replica's work ring exerts back-pressure.
  bool ingress_tx(const core::SegCtxPtr& ctx);
  // Host-control descriptor: context-queue FPC poll + descriptor DMA
  // fetch, then sequenced into the flow group's pre stage.
  void ingress_hc(const core::SegCtxPtr& ctx);
  // Burst HC admission: n x ingress_hc in span order with one
  // context-stage arbitration for the whole span.
  void ingress_hc_burst(const core::SegCtxPtr* ctxs, std::size_t n);
  // In-pipeline spawn (e.g. FIN flush from the protocol stage): enters
  // at the sequencer, bypassing gate and back-pressure checks.
  void spawn_tx(const core::SegCtxPtr& ctx);

  // ---- Stage-boundary routing (called from stage bodies) ----
  void to_proto(const core::SegCtxPtr& ctx);  // in-order protocol entry
  void skip_proto(const core::SegCtxPtr& ctx);  // left pipeline early
  // Releases the NBI egress slot of a context that dies after the
  // protocol stage assigned it one (flow removed mid-flight, or its
  // post/DMA work was shed) so the egress reorder point cannot stall.
  void skip_nbi(const core::SegCtxPtr& ctx);
  // True when the protocol stage reserved an NBI egress slot for this
  // context (the exact conditions under which next_egress() was called).
  static bool holds_egress_slot(const core::SegCtx& ctx) {
    return ctx.snap.send_ack || ctx.snap.tx_valid || ctx.snap.tx_fin;
  }
  void to_post(const core::SegCtxPtr& ctx);
  void to_dma(const core::SegCtxPtr& ctx);
  void to_ctx_notify(const core::SegCtxPtr& ctx);
  // In-order egress: hand a materialized segment to the NBI reorder
  // point of `group` at position `egress_seq`.
  void to_nbi(std::uint8_t group, std::uint64_t egress_seq,
              core::SegCtxPtr ctx);
  // Software payload-copy cost on a DMA-stage core (shared-memory ports).
  void charge_dma_copy(std::uint32_t cycles);
  std::uint64_t next_egress(std::uint8_t group) {
    return islands_[group]->egress_next++;
  }

  // ---- Extensions: XDP stage chain (paper §3.3) ----
  // Appends one XDP program as a first-class Stage node ahead of
  // pre-processing. The node gets cfg.xdp_replicas FPCs (the shared RTC
  // core when !pipelined), RoundRobin selection, burst-pick support, and
  // per-stage cost/drop accounting; its cycles are charged only when the
  // segment actually reaches it (earlier terminal verdicts end billing).
  Stage& attach_xdp_stage(XdpStageDesc desc);
  void clear_xdp_stages();
  std::size_t xdp_stage_count() const { return xdp_chain_.size(); }
  Stage& xdp_stage(std::size_t i) { return *xdp_chain_[i].stage; }

  // ---- Extensions: tap ports ----
  // Registers a monitor fan-out on the typed stage-graph edges selected
  // by `mask` (tap_bit() combinations). Out-of-band like tracing: no
  // simulated cost, no routing changes; one pointer compare per edge
  // crossing while detached.
  void attach_tap(TapObserver* tap, std::uint32_t mask = kTapAll) {
    tap_ = tap;
    tap_mask_ = mask;
  }
  void detach_taps() {
    tap_ = nullptr;
    tap_mask_ = 0;
  }
  bool tap_attached() const { return tap_ != nullptr; }

  // ---- Telemetry / accounting ----
  void bind_telemetry(telemetry::Registry& reg);
  // Counts a stage visit and records the inter-stage latency.
  void mark(StageId s, core::SegCtx& ctx);
  // Same, with a caller-captured clock value (one read per burst).
  void mark(StageId s, core::SegCtx& ctx, sim::TimePs now);
  // Burst mark: one visit-counter add for the span, per-segment latency
  // preserved via the contexts' own timestamp fields. Snapshot-identical
  // to n x mark() at the same instant.
  void mark_burst(StageId s, const core::SegCtxPtr* ctxs, std::size_t n,
                  sim::TimePs now);
  // Records the admission->completion latency once per context.
  void record_pipe_total(core::SegCtx& ctx);
  // Attributes a shed segment to exactly one taxonomy reason. When
  // tracing is live and the victim has a causal id, this also fires the
  // drop post-mortem: the last-K flight-recorder events touching the
  // victim are captured into trace::Tracer::postmortems().
  void count_drop(DropReason r, std::uint64_t trace_cid = 0);

  // ---- Introspection ----
  std::size_t group_count() const { return islands_.size(); }
  Stage& pre(std::size_t g) { return islands_[g]->pre; }
  Stage& proto(std::size_t g) { return islands_[g]->proto; }
  Stage& post(std::size_t g) { return islands_[g]->post; }
  Stage& dma_stage() { return dma_stage_; }
  Stage& ctx_stage() { return ctx_stage_; }
  const ReorderBuffer<core::SegCtxPtr>& proto_rob(std::size_t g) const {
    return *islands_[g]->proto_rob;
  }
  const ReorderBuffer<core::SegCtxPtr>& nbi_rob(std::size_t g) const {
    return *islands_[g]->nbi_rob;
  }
  // True when the graph runs in run-to-completion mode (gate armed).
  bool run_to_completion() const { return gate_ != nullptr; }
  std::size_t gate_backlog() const {
    return gate_ ? gate_->pending.size() : 0;
  }
  // FPC slots as configured (shared RTC cores count once per role, like
  // the utilization accounting always has).
  unsigned total_fpcs() const;
  sim::TimePs total_busy() const;

 private:
  // Work the admission gate defers: small closures over {graph, ctx}.
  using GateTask = sim::SmallFn<48>;

  // Run-to-completion gate: one segment occupies the whole pipeline;
  // completion is signalled by the context's token dying. Kept behind a
  // shared_ptr so tokens and deferred continuations can outlive the
  // graph safely (they no-op once the state is gone).
  struct GateState {
    sim::EventQueue& ev;
    std::size_t limit;  // pending-queue depth before RX work is shed
    bool busy = false;
    std::deque<GateTask> pending;
    GateState(sim::EventQueue& e, std::size_t l) : ev(e), limit(l) {}
  };

  struct Island {
    Stage pre;
    Stage proto;
    Stage post;
    std::unique_ptr<nfp::IslandMemory> mem;
    Sequencer sequencer;
    std::unique_ptr<ReorderBuffer<core::SegCtxPtr>> proto_rob;
    std::unique_ptr<ReorderBuffer<core::SegCtxPtr>> nbi_rob;
    std::uint64_t egress_next = 0;

    explicit Island(std::size_t g);
  };

  // Admits `fn` through the RTC gate (runs immediately when pipelined).
  // Droppable work is shed when the gate backlog is full; `trace_cid`
  // attributes such a shed to the victim segment's trace.
  bool admit(GateTask fn, bool droppable, std::uint64_t trace_cid = 0);
  // Completion token tied to the gate (nullptr when pipelined).
  std::shared_ptr<void> gate_token();
  static void gate_done(const std::shared_ptr<GateState>& g);

  // Uniform dispatch: enqueue stage work, charging profiling overhead,
  // attributing ring-full drops, and skipping the ordering number of
  // sequenced work so reorder points don't stall. Returns false when the
  // ring rejected the work. `sid`/`trace_cid` identify the stage span
  // recorded against the segment's flight-recorder trace (submit ->
  // handler completion); cid 0 = untraced work.
  bool submit(StageId sid, std::uint64_t trace_cid, nfp::Fpc& fpc,
              std::uint32_t compute, std::uint32_t mem,
              nfp::Work::DoneFn fn, std::uint64_t skip_seq,
              std::uint8_t group, bool sequenced);
  void dispatch_proto(const core::SegCtxPtr& ctx);
  // Post-descriptor-fetch half of HC ingress (sequencer -> pre stage),
  // shared by the single and burst forms.
  void hc_after_fetch(const core::SegCtxPtr& ctx);
  // Connection-state cycles for a visit to `st`'s replica under the
  // stage's declared StateAccess (read-modify-write pays the hierarchy
  // twice; flat-memory platforms pay a constant).
  std::uint32_t state_cycles(Stage& st, std::size_t replica,
                             std::uint32_t conn) const;
  std::uint32_t profile_overhead() const {
    return cfg_->profiling ? cfg_->profile_cycles : 0;
  }
  void wire_ports();

  // ---- XDP chain internals ----
  struct XdpNode {
    std::unique_ptr<Stage> stage;
    std::uint32_t cycles = 0;
    std::function<XdpVerdict(const core::SegCtxPtr&)> run;
  };
  // Submits `ctx` to replica `idx` of chain node `node`. The chain head
  // also carries the sequencer cost (it is the first work after
  // admission, like pre-RX is on the no-XDP path).
  void xdp_dispatch(const core::SegCtxPtr& ctx, std::size_t node,
                    std::size_t idx);
  // Stage body wrapper: runs the program, routes by verdict.
  void xdp_run(const core::SegCtxPtr& ctx, std::size_t node);
  // Chain exit on Pass: dispatch into the flow group's pre stage.
  void xdp_to_pre(const core::SegCtxPtr& ctx);

  // ---- Tap internals ----
  // Hot-path guard inlined to one pointer compare when detached.
  void tap_emit(TapEdge e, const core::SegCtx& ctx) {
    if (tap_ == nullptr) return;
    tap_emit_slow(e, ctx);
  }
  void tap_emit_slow(TapEdge e, const core::SegCtx& ctx);

  sim::Domain& ev_;
  const core::DatapathConfig* cfg_;  // owner's live config (profiling)
  nfp::DmaEngine* dma_;
  Handlers handlers_;

  std::vector<std::unique_ptr<Island>> islands_;
  Stage dma_stage_;
  Stage ctx_stage_;
  nfp::NicMemory nic_mem_;
  std::shared_ptr<GateState> gate_;  // null when pipelined

  // FPC build parameters, kept for late stage attachment (XDP splices
  // allocate replicas after construction); rtc_fpc_ is the single shared
  // core in run-to-completion mode (null when pipelined).
  nfp::FpcParams fp_;
  std::shared_ptr<nfp::Fpc> rtc_fpc_;

  // Attached XDP program chain (empty by default; paper §3.3).
  std::vector<XdpNode> xdp_chain_;

  // Registered tap observer + enabled-edge mask (null/0 by default).
  TapObserver* tap_ = nullptr;
  std::uint32_t tap_mask_ = 0;

  // Telemetry handles (stable pointers, bound once; every hit is a
  // pointer bump behind one enabled branch).
  telemetry::Registry* reg_ = nullptr;
  struct StageTelem {
    telemetry::Counter* visits = nullptr;
    telemetry::Histogram* lat_ns = nullptr;
  };
  std::array<StageTelem, kStageCount> stage_telem_{};
  std::array<telemetry::Counter*, kDropReasons> drop_telem_{};
  std::array<telemetry::Histogram*, 3> pipe_total_ns_{};  // by SegCtx::Kind
  struct GroupTelem {
    telemetry::Counter* rx = nullptr;
    telemetry::Counter* tx = nullptr;
    telemetry::Counter* hc = nullptr;
    telemetry::Histogram* rob_depth = nullptr;
    // Gauge twin: surfaces the ROB high-water mark as rob_depth_peak.
    telemetry::Gauge* rob_depth_now = nullptr;
  };
  std::vector<GroupTelem> group_telem_;

  // Interned trace names (trace/trace.hpp), resolved lazily on the
  // first traced event and cached for the graph's lifetime.
  struct TraceIds {
    bool ready = false;
    std::array<std::uint16_t, kStageCount> stage_name{};
    std::array<std::uint16_t, kStageCount> stage_track{};  // "stage/<s>"
    std::array<std::uint16_t, 3> pipe_name{};  // by SegCtx::Kind
    std::uint16_t pipe_track = 0;              // "pipe/segments"
    std::uint16_t rob_name = 0;                // proto-ROB residency
    std::uint16_t rob_track = 0;               // "rob/proto"
    std::uint16_t nbi_name = 0;                // NBI-ROB residency
    std::uint16_t nbi_track = 0;               // "rob/nbi"
    std::uint16_t skip_name = 0;
    std::array<std::uint16_t, kDropReasons> drop_name{};
    std::uint16_t drop_track = 0;              // "drop/pipeline"
  };
  const TraceIds& trace_ids();
  TraceIds trace_ids_;
};

}  // namespace flextoe::pipeline
