// Unit tests for the bench harness: flag parsing, repeat/percentile
// math, JSON emission (validated with a real recursive-descent parser),
// and the fig10 quick-mode contract — one series per stack with the
// expected row count (linked in-process from bench/fig10_*.cc).
#include "harness.hpp"

#include <gtest/gtest.h>

#include "trace/trace.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace flextoe::benchx {
namespace {

// ---------------------------------------------------------------------
// Minimal strict JSON parser (objects, arrays, strings, numbers,
// booleans, null). Fails the test on any malformed input.

struct JsonValue {
  enum class Kind { Object, Array, String, Number, Bool, Null } kind;
  std::map<std::string, std::shared_ptr<JsonValue>> object;
  std::vector<std::shared_ptr<JsonValue>> array;
  std::string string;
  double number = 0;
  bool boolean = false;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  std::shared_ptr<JsonValue> parse() {
    auto v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

 private:
  void fail(const std::string& why) {
    if (error_.empty()) {
      error_ = why + " at offset " + std::to_string(pos_);
    }
    pos_ = s_.size();  // stop consuming
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::shared_ptr<JsonValue> parse_value() {
    skip_ws();
    auto v = std::make_shared<JsonValue>();
    if (pos_ >= s_.size()) {
      fail("unexpected end of input");
      return v;
    }
    const char c = s_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      v->kind = JsonValue::Kind::String;
      v->string = parse_string();
      return v;
    }
    if (s_.compare(pos_, 4, "true") == 0) {
      v->kind = JsonValue::Kind::Bool;
      v->boolean = true;
      pos_ += 4;
      return v;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      v->kind = JsonValue::Kind::Bool;
      v->boolean = false;
      pos_ += 5;
      return v;
    }
    if (s_.compare(pos_, 4, "null") == 0) {
      v->kind = JsonValue::Kind::Null;
      pos_ += 4;
      return v;
    }
    // number
    std::size_t end = pos_;
    while (end < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[end])) ||
            s_[end] == '-' || s_[end] == '+' || s_[end] == '.' ||
            s_[end] == 'e' || s_[end] == 'E')) {
      ++end;
    }
    if (end == pos_) {
      fail("unexpected character");
      return v;
    }
    char* num_end = nullptr;
    const std::string num = s_.substr(pos_, end - pos_);
    v->kind = JsonValue::Kind::Number;
    v->number = std::strtod(num.c_str(), &num_end);
    if (num_end != num.c_str() + num.size()) fail("bad number");
    pos_ = end;
    return v;
  }

  std::string parse_string() {
    std::string out;
    if (!consume('"')) {
      fail("expected string");
      return out;
    }
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) {
          fail("bad escape");
          return out;
        }
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u':
            if (pos_ + 4 > s_.size()) {
              fail("bad \\u escape");
              return out;
            }
            pos_ += 4;  // decoded value not needed by these tests
            out += '?';
            break;
          default:
            fail("bad escape");
            return out;
        }
      } else {
        out += c;
      }
    }
    if (!consume('"')) fail("unterminated string");
    return out;
  }

  std::shared_ptr<JsonValue> parse_object() {
    auto v = std::make_shared<JsonValue>();
    v->kind = JsonValue::Kind::Object;
    consume('{');
    skip_ws();
    if (consume('}')) return v;
    while (true) {
      skip_ws();
      const std::string key = parse_string();
      if (!consume(':')) {
        fail("expected ':'");
        return v;
      }
      v->object[key] = parse_value();
      if (consume(',')) continue;
      if (consume('}')) return v;
      fail("expected ',' or '}'");
      return v;
    }
  }

  std::shared_ptr<JsonValue> parse_array() {
    auto v = std::make_shared<JsonValue>();
    v->kind = JsonValue::Kind::Array;
    consume('[');
    skip_ws();
    if (consume(']')) return v;
    while (true) {
      v->array.push_back(parse_value());
      if (consume(',')) continue;
      if (consume(']')) return v;
      fail("expected ',' or ']'");
      return v;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::string error_;
};

std::shared_ptr<JsonValue> parse_json_or_die(const std::string& text) {
  JsonParser p(text);
  auto v = p.parse();
  EXPECT_TRUE(p.ok()) << "JSON parse error: " << p.error() << "\n" << text;
  return v;
}

// ---------------------------------------------------------------------
// Flag parsing.

TEST(ParseArgs, Defaults) {
  const char* argv[] = {"bench"};
  Options o;
  std::string err;
  ASSERT_TRUE(parse_args(1, argv, &o, &err)) << err;
  EXPECT_FALSE(o.quick);
  EXPECT_EQ(o.repeats, 1);
  EXPECT_TRUE(o.filter.empty());
  EXPECT_TRUE(o.json_path.empty());
  EXPECT_FALSE(o.list_only);
}

TEST(ParseArgs, AllFlags) {
  const char* argv[] = {"bench",     "--quick", "--repeats", "5",
                        "--filter",  "fig10",   "--json",    "/tmp/x.json",
                        "--seed",    "99",      "--list"};
  Options o;
  std::string err;
  ASSERT_TRUE(parse_args(11, argv, &o, &err)) << err;
  EXPECT_TRUE(o.quick);
  EXPECT_EQ(o.repeats, 5);
  EXPECT_EQ(o.filter, "fig10");
  EXPECT_EQ(o.json_path, "/tmp/x.json");
  EXPECT_EQ(o.seed, 99u);
  EXPECT_TRUE(o.list_only);
}

TEST(ParseArgs, SeedDefaultsToZeroAndRejectsGarbage) {
  {
    const char* argv[] = {"bench"};
    Options o;
    std::string err;
    ASSERT_TRUE(parse_args(1, argv, &o, &err)) << err;
    EXPECT_EQ(o.seed, 0u);
  }
  for (const char* bad : {"abc", "1x", "-4", ""}) {
    const char* argv[] = {"bench", "--seed", bad};
    Options o;
    std::string err;
    EXPECT_FALSE(parse_args(3, argv, &o, &err)) << bad;
    EXPECT_FALSE(err.empty());
  }
}

TEST(ScenarioCtxSeed, ShiftsBaseByHarnessSeed) {
  Options opts;
  Report rep("seed_bench", opts);
  {
    ScenarioCtx ctx(opts, rep);
    EXPECT_EQ(ctx.seed(17), 17u);  // default --seed 0: reproducible base
  }
  opts.seed = 1000;
  {
    ScenarioCtx ctx(opts, rep);
    EXPECT_EQ(ctx.seed(17), 1017u);
  }
}

TEST(ParseArgs, RejectsBadRepeats) {
  for (const char* bad : {"0", "-3", "abc", "2x"}) {
    const char* argv[] = {"bench", "--repeats", bad};
    Options o;
    std::string err;
    EXPECT_FALSE(parse_args(3, argv, &o, &err)) << bad;
    EXPECT_FALSE(err.empty());
  }
}

TEST(ParseArgs, RejectsUnknownFlagAndMissingValue) {
  {
    const char* argv[] = {"bench", "--frobnicate"};
    Options o;
    std::string err;
    EXPECT_FALSE(parse_args(2, argv, &o, &err));
  }
  {
    const char* argv[] = {"bench", "--json"};
    Options o;
    std::string err;
    EXPECT_FALSE(parse_args(2, argv, &o, &err));
  }
}

// ---------------------------------------------------------------------
// Percentile / repeat math.

TEST(Percentile, ExactOnUniformRange) {
  std::vector<double> xs;
  for (int i = 1; i <= 101; ++i) xs.push_back(i);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 51.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 101.0);
  EXPECT_TRUE(percentile({}, 50) == 0.0);
}

TEST(RunRepeated, MeanAndPercentiles) {
  // fn returns 1..10 over the measured reps.
  const RepeatStats st =
      run_repeated(10, [](int rep) { return static_cast<double>(rep + 1); });
  EXPECT_EQ(st.n, 10u);
  EXPECT_DOUBLE_EQ(st.mean, 5.5);
  EXPECT_DOUBLE_EQ(st.min, 1.0);
  EXPECT_DOUBLE_EQ(st.max, 10.0);
  EXPECT_GE(st.p50, 5.0);
  EXPECT_LE(st.p50, 6.0);
  // Exact accumulators interpolate between order statistics.
  EXPECT_GE(st.p99, 9.0);
  EXPECT_LE(st.p99, 10.0);
}

TEST(RunRepeated, WarmupIsDiscardedButCounted) {
  std::vector<int> seen;
  const RepeatStats st = run_repeated(
      2,
      [&](int rep) {
        seen.push_back(rep);
        return static_cast<double>(rep);
      },
      /*warmup=*/3);
  // 3 warmup calls (reps 0..2) then 2 measured (reps 3..4).
  ASSERT_EQ(seen.size(), 5u);
  EXPECT_EQ(seen[0], 0);
  EXPECT_EQ(seen[3], 3);
  EXPECT_DOUBLE_EQ(st.mean, 3.5);
}

// ---------------------------------------------------------------------
// Report model and JSON shape.

TEST(Report, SeriesAndRowsFindOrCreate) {
  Report rep("unit", Options{});
  rep.series("a").set("r1", "v", 1.0);
  rep.series("a").set("r1", "v", 2.0);  // overwrite
  rep.series("a").set("r2", "v", 3.0);
  rep.series("b").set("r1", "w", 4.0);
  ASSERT_EQ(rep.all_series().size(), 2u);
  EXPECT_EQ(rep.all_series()[0].rows().size(), 2u);
  const double* v = rep.all_series()[0].rows()[0].find("v");
  ASSERT_NE(v, nullptr);
  EXPECT_DOUBLE_EQ(*v, 2.0);
  EXPECT_EQ(rep.find_series("b")->rows()[0].values[0].first, "w");
  EXPECT_EQ(rep.find_series("missing"), nullptr);
}

TEST(Report, JsonShape) {
  Options opts;
  opts.quick = true;
  opts.repeats = 7;
  Report rep("shape_bench", opts);
  rep.series("s1").set("row \"x\"\n", "gbps", 1.25);
  rep.series("s1").set("r2", "gbps", -0.5);
  rep.series("s2").row("only");  // a row with no values yet
  rep.series("s3");              // a series with no rows
  rep.note("a note with \\ and \"quotes\"");

  auto doc = parse_json_or_die(rep.to_json());
  ASSERT_EQ(doc->kind, JsonValue::Kind::Object);
  EXPECT_EQ(doc->object.at("bench")->string, "shape_bench");
  EXPECT_TRUE(doc->object.at("quick")->boolean);
  EXPECT_DOUBLE_EQ(doc->object.at("repeats")->number, 7.0);

  const auto& series = doc->object.at("series");
  ASSERT_EQ(series->kind, JsonValue::Kind::Array);
  ASSERT_EQ(series->array.size(), 3u);
  const auto& s1 = series->array[0];
  EXPECT_EQ(s1->object.at("name")->string, "s1");
  const auto& rows = s1->object.at("rows");
  ASSERT_EQ(rows->array.size(), 2u);
  EXPECT_EQ(rows->array[0]->object.at("label")->string, "row \"x\"\n");
  EXPECT_DOUBLE_EQ(
      rows->array[0]->object.at("values")->object.at("gbps")->number, 1.25);
  EXPECT_DOUBLE_EQ(
      rows->array[1]->object.at("values")->object.at("gbps")->number, -0.5);
  // A value-less row and a row-less series stay well-formed.
  const auto& s2_rows = series->array[1]->object.at("rows")->array;
  ASSERT_EQ(s2_rows.size(), 1u);
  EXPECT_TRUE(s2_rows[0]->object.at("values")->object.empty());
  EXPECT_TRUE(series->array[2]->object.at("rows")->array.empty());

  const auto& notes = doc->object.at("notes");
  ASSERT_EQ(notes->array.size(), 1u);
  EXPECT_EQ(notes->array[0]->string, "a note with \\ and \"quotes\"");

  // Reproducibility header: always present, with the build facts the
  // golden checker excises before diffing.
  const auto& config = doc->object.at("config");
  ASSERT_EQ(config->kind, JsonValue::Kind::Object);
  EXPECT_FALSE(config->object.at("git_sha")->string.empty());
  EXPECT_FALSE(config->object.at("build_type")->string.empty());
  EXPECT_EQ(config->object.at("telemetry_compiled")->boolean,
            flextoe::telemetry::kCompiledIn);
  EXPECT_EQ(config->object.at("trace_compiled")->boolean,
            flextoe::trace::kCompiledIn);
}

TEST(Report, TelemetrySectionMergesAndRoundTrips) {
  Report rep("telem_bench", Options{});
  telemetry::Snapshot snap;
  snap.enabled = true;
  snap.counters = {{"stage/pre_rx/visits", 7}};
  rep.merge_telemetry(snap);
  rep.merge_telemetry(snap);  // additive across testbeds/repeats
  ASSERT_NE(rep.telemetry().counter("stage/pre_rx/visits"), nullptr);
  EXPECT_EQ(*rep.telemetry().counter("stage/pre_rx/visits"), 14u);

  // The emitted document carries the section, parseable both by a
  // generic JSON parser and by the snapshot's own reader.
  const std::string doc_text = rep.to_json();
  auto doc = parse_json_or_die(doc_text);
  const auto& t = doc->object.at("telemetry");
  ASSERT_EQ(t->kind, JsonValue::Kind::Object);
  EXPECT_TRUE(t->object.at("enabled")->boolean);
  EXPECT_DOUBLE_EQ(
      t->object.at("counters")->object.at("stage/pre_rx/visits")->number,
      14.0);
  telemetry::Snapshot back;
  std::string err;
  ASSERT_TRUE(telemetry::Snapshot::from_json(
      rep.telemetry().to_json(), &back, &err))
      << err;
  EXPECT_EQ(*back.counter("stage/pre_rx/visits"), 14u);
}

TEST(Report, NonFiniteValuesBecomeNull) {
  Report rep("nanbench", Options{});
  rep.series("s").set("r", "v", std::nan(""));
  auto doc = parse_json_or_die(rep.to_json());
  const auto& v = doc->object.at("series")
                      ->array[0]
                      ->object.at("rows")
                      ->array[0]
                      ->object.at("values")
                      ->object.at("v");
  EXPECT_EQ(v->kind, JsonValue::Kind::Null);
}

// ---------------------------------------------------------------------
// fig10 quick-mode contract: one series per stack, expected row count,
// well-formed JSON on disk.

class Fig10Quick : public ::testing::Test {
 protected:
  static const Report& report() {
    // The simulation behind fig10 is the expensive part; run it once
    // and share across assertions.
    static Report* rep = [] {
      Options opts;
      opts.quick = true;
      auto* r = new Report("fig10_rpc_throughput", opts);
      EXPECT_EQ(run_scenarios(opts, *r), 1);
      return r;
    }();
    return *rep;
  }
};

TEST_F(Fig10Quick, OneSeriesPerStack) {
  ASSERT_EQ(report().all_series().size(), 4u);
  for (const char* stack : {"Linux", "Chelsio", "TAS", "FlexTOE"}) {
    ASSERT_NE(report().find_series(stack), nullptr) << stack;
  }
}

TEST_F(Fig10Quick, QuickRowCounts) {
  // Quick mode: 2 message sizes x {rx, tx} x 1 app-delay = 4 rows per
  // stack series, each a single labeled "gbps" double.
  for (const auto& s : report().all_series()) {
    ASSERT_EQ(s.rows().size(), 4u) << s.name();
    for (const auto& row : s.rows()) {
      ASSERT_EQ(row.values.size(), 1u) << s.name() << "/" << row.label;
      EXPECT_EQ(row.values[0].first, "gbps");
      EXPECT_TRUE(std::isfinite(row.values[0].second));
      EXPECT_GE(row.values[0].second, 0.0);
    }
  }
}

TEST_F(Fig10Quick, JsonRoundTripsThroughDisk) {
  const std::string path =
      ::testing::TempDir() + "/BENCH_fig10_rpc_throughput.json";
  ASSERT_TRUE(report().write_json(path));

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());

  auto doc = parse_json_or_die(text);
  EXPECT_EQ(doc->object.at("bench")->string, "fig10_rpc_throughput");
  EXPECT_TRUE(doc->object.at("quick")->boolean);
  const auto& series = doc->object.at("series")->array;
  ASSERT_EQ(series.size(), 4u);
  std::vector<std::string> names;
  for (const auto& s : series) names.push_back(s->object.at("name")->string);
  for (const char* stack : {"Linux", "Chelsio", "TAS", "FlexTOE"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), stack), names.end())
        << stack;
  }
}

}  // namespace
}  // namespace flextoe::benchx
