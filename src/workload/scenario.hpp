// Scenario engine: a ScenarioSpec binds {stack, node topology, app,
// arrival process, size model, duration, seed} into a named, runnable
// experiment. The registry holds the built-in scenario catalog that
// bench/scenario_runner.cc exposes on the CLI; benches reproduce paper
// figures by constructing specs inline with their exact parameters.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "telemetry/registry.hpp"
#include "workload/arrival.hpp"
#include "workload/generator.hpp"
#include "workload/size_model.hpp"
#include "workload/stacks.hpp"

namespace flextoe::workload {

enum class AppKind {
  Kv,       // KvServer + memtier-style GET/SET generators
  RpcEcho,  // EchoServer + request/response generators
  Stream,   // ProducerServer + drain sinks (TX throughput)
};

struct ScenarioSpec {
  std::string name;         // registry key, CLI-selectable
  std::string description;  // one-line summary for --list

  // Topology: one server node (the stack under test) plus ideal client
  // machines. stack_hosts_clients inverts that — the stack under test
  // drives traffic toward an ideal server node (incast/table4 shape).
  Stack stack = Stack::FlexToe;
  unsigned server_cores = 4;
  // Grant TAS its dedicated fast-path cores on top of server_cores.
  bool grant_stack_cores = false;
  bool stack_hosts_clients = false;
  unsigned client_nodes = 2;
  unsigned conns_per_node = 16;
  double nic_gbps = 40.0;

  AppKind app = AppKind::RpcEcho;
  unsigned pipeline = 4;           // closed-loop window per connection
  std::uint32_t response_size = 32;  // RpcEcho: 0 = echo the request
  std::uint32_t stream_frame = 2048;  // Stream: produced frame payload
  // Server app cycles per request; unset = per-stack default for Kv
  // (Table 1 application row), 0 for other apps.
  std::optional<std::uint32_t> server_app_cycles;
  KvMix kv;  // Kv app: GET/SET mix and key shape

  // Workload: null arrival = closed loop; null sizes = fixed 64 B.
  ArrivalFactory arrival;
  SizeModelFactory request_sizes;

  // Connection churn (per-connection request budget; 0 = persistent).
  std::uint64_t requests_per_conn = 0;

  // Incast fan-in: shape the switch port toward the app server to
  // nic_gbps / incast_degree with a shallow WRED/ECN buffer (0 = off).
  unsigned incast_degree = 0;
  // FlexTOE control-plane congestion control (incast ablation).
  bool cc_enabled = true;
  // Uniform per-packet drop probability at the switch (0 = lossless).
  double loss_rate = 0.0;

  // Durations: measurement span after warmup, full and quick variants.
  sim::TimePs warm = sim::ms(10);
  sim::TimePs span = sim::ms(25);
  sim::TimePs quick_warm = sim::ms(2);
  sim::TimePs quick_span = sim::ms(4);

  std::uint64_t seed = 1;
};

struct ScenarioResult {
  std::uint64_t completed = 0;    // requests finished in the span
  double throughput_rps = 0;      // completed / span
  double server_rx_gbps = 0;      // bytes into the app server
  double client_rx_gbps = 0;      // bytes into the generators/sinks
  double p50_us = 0, p99_us = 0, p9999_us = 0;
  double jfi = 1.0;               // fairness across all connections
  unsigned connected = 0;
  std::uint64_t reconnects = 0;   // churn recycles
  std::uint64_t overload_drops = 0;  // open-loop back-pressure drops
  // Data-path introspection snapshot of the stack under test (empty for
  // software-stack scenarios — only the FlexTOE datapath is telemetered).
  telemetry::Snapshot telemetry;
};

struct RunOptions {
  bool quick = false;             // use the spec's quick durations
  std::uint64_t seed_offset = 0;  // added to spec.seed (repeats, --seed)
  // Non-zero: override the spec's durations (benches pass their exact
  // paper-figure spans here).
  sim::TimePs warm_override = 0;
  sim::TimePs span_override = 0;
  // Named monitor tap attached to the SUT datapath's stage graph for
  // the run ("sketch" = monitor::SketchFlowMonitor on the Steer edge;
  // empty = none). Out-of-band: results are identical either way; the
  // tap's own metrics land in the scenario telemetry snapshot.
  std::string tap;
};

// Builds the testbed described by `spec`, runs warmup + measurement,
// and returns the measured result.
ScenarioResult run_scenario(const ScenarioSpec& spec,
                            const RunOptions& opts = {});

// Runs `runs` independent repetitions of `spec` — run i uses
// `opts.seed_offset + i` — and returns the results in run order.
// `threads` worker threads execute the runs on a fixed i % threads
// mapping (0 = sim::default_sim_threads(), clamped to `runs`); each run
// is a whole single-threaded simulation, so the result vector is
// field-for-field identical to running the loop sequentially. The only
// cross-run shared state, the process-wide telemetry accumulator, is
// merged under a lock (and commutatively), so batched telemetry matches
// sequential telemetry too.
std::vector<ScenarioResult> run_scenario_batch(const ScenarioSpec& spec,
                                               const RunOptions& opts,
                                               int runs, int threads = 0);

class ScenarioRegistry {
 public:
  static ScenarioRegistry& instance();

  // Replaces any existing scenario with the same name.
  void add(ScenarioSpec spec);
  const ScenarioSpec* find(const std::string& name) const;
  const std::deque<ScenarioSpec>& all() const { return specs_; }

 private:
  std::deque<ScenarioSpec> specs_;
};

// Registers the built-in scenario catalog (idempotent). Guarantees at
// least: one open-loop Poisson, one incast fan-in, one empirical-CDF
// workload, plus KV/RPC/stream/churn/loss variants.
void register_builtin_scenarios();

}  // namespace flextoe::workload
