// Wire header definitions: Ethernet II, 802.1Q VLAN, IPv4, TCP.
//
// Headers are kept as typed structs for processing and serialized
// byte-exactly (network byte order, real checksums) when crossing links,
// so captures are valid pcap and parsing is an honest code path.
#pragma once

#include <cstdint>
#include <optional>

#include "net/addr.hpp"

namespace flextoe::net {

inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr std::uint16_t kEtherTypeVlan = 0x8100;

struct EthHeader {
  MacAddr dst;
  MacAddr src;
  std::uint16_t ethertype = kEtherTypeIpv4;
};

struct VlanTag {
  std::uint16_t tci = 0;  // PCP(3) | DEI(1) | VID(12)
  std::uint16_t vid() const { return tci & 0x0FFF; }
};

// ECN codepoints (RFC 3168).
enum class Ecn : std::uint8_t {
  NotEct = 0b00,
  Ect1 = 0b01,
  Ect0 = 0b10,
  Ce = 0b11,
};

inline constexpr std::uint8_t kProtoTcp = 6;

struct Ipv4Header {
  std::uint8_t dscp = 0;
  Ecn ecn = Ecn::NotEct;
  std::uint16_t id = 0;
  std::uint8_t ttl = 64;
  std::uint8_t proto = kProtoTcp;
  Ipv4Addr src = 0;
  Ipv4Addr dst = 0;
  // total_length and header checksum are computed during serialization.
};

// TCP flag bits (matching the wire encoding of the flags byte).
namespace tcpflag {
inline constexpr std::uint8_t kFin = 0x01;
inline constexpr std::uint8_t kSyn = 0x02;
inline constexpr std::uint8_t kRst = 0x04;
inline constexpr std::uint8_t kPsh = 0x08;
inline constexpr std::uint8_t kAck = 0x10;
inline constexpr std::uint8_t kUrg = 0x20;
inline constexpr std::uint8_t kEce = 0x40;
inline constexpr std::uint8_t kCwr = 0x80;
}  // namespace tcpflag

// TCP timestamp option (RFC 7323), used for RTT estimation (paper §3.1.3).
struct TcpTsOpt {
  std::uint32_t val = 0;
  std::uint32_t ecr = 0;
};

struct TcpHeader {
  std::uint16_t sport = 0;
  std::uint16_t dport = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 0;
  std::uint16_t urgent = 0;
  std::optional<std::uint16_t> mss;  // SYN-only option
  std::optional<TcpTsOpt> ts;

  bool has(std::uint8_t f) const { return (flags & f) != 0; }

  // Header length including options, padded to 4-byte multiple.
  std::uint8_t header_len() const {
    std::uint8_t len = 20;
    if (mss) len += 4;
    if (ts) len += 12;  // NOP NOP + 10-byte option
    return len;
  }

  // Data-path segments have any of ACK, FIN, PSH, ECE, CWR and no SYN/RST
  // (paper §3.1.3, footnote 2). Everything else goes to the control plane.
  bool is_datapath_segment() const {
    if (has(tcpflag::kSyn) || has(tcpflag::kRst)) return false;
    return (flags & (tcpflag::kAck | tcpflag::kFin | tcpflag::kPsh |
                     tcpflag::kEce | tcpflag::kCwr)) != 0;
  }
};

}  // namespace flextoe::net
