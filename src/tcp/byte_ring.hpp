// Fixed-capacity circular byte buffer used for per-socket payload
// buffers (PAYLOAD-BUFs). Supports out-of-place writes at an offset
// beyond the valid region — this is how FlexTOE merges out-of-order
// segments directly in the host receive buffer (paper §3.1.3).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace flextoe::tcp {

class ByteRing {
 public:
  explicit ByteRing(std::size_t capacity) : buf_(capacity) {}

  std::size_t capacity() const { return buf_.size(); }
  std::size_t used() const { return used_; }
  std::size_t free_space() const { return buf_.size() - used_; }
  bool empty() const { return used_ == 0; }

  // Appends data at the tail (valid region grows). Returns bytes written.
  std::size_t write(std::span<const std::uint8_t> data);

  // Copies data into the ring at `offset` bytes past the current tail
  // without growing the valid region (for OOO placement). The caller must
  // ensure offset + data.size() <= free_space().
  void write_at(std::size_t offset, std::span<const std::uint8_t> data);

  // Grows the valid region by n bytes (previously placed via write_at).
  void advance_tail(std::size_t n);

  // Consumes up to out.size() bytes from the head. Returns bytes read.
  std::size_t read(std::span<std::uint8_t> out);

  // Copies up to out.size() bytes starting `offset` past the head,
  // without consuming. Returns bytes copied.
  std::size_t peek(std::size_t offset, std::span<std::uint8_t> out) const;

  // Drops n bytes from the head (e.g. ACKed transmit data).
  void discard(std::size_t n);

  void clear() {
    head_ = 0;
    used_ = 0;
  }

 private:
  void copy_in(std::size_t pos, std::span<const std::uint8_t> data);
  void copy_out(std::size_t pos, std::span<std::uint8_t> out) const;

  std::vector<std::uint8_t> buf_;
  std::size_t head_ = 0;  // index of first valid byte
  std::size_t used_ = 0;  // valid bytes
};

}  // namespace flextoe::tcp
