// Figure 10: RPC throughput for a saturated single-threaded server,
// RX and TX separately, 250 and 1000 cycles of per-message application
// processing, across message sizes. One series per stack; rows are
// labeled "<rx|tx>/<app-cycles>/<msg-size>" (harness_test pins this
// contract: quick mode emits 4 rows in each of the 4 stack series).
// Both directions run on the shared workload engine: RX is the RpcEcho
// app driven by closed-loop generators, TX the Stream app into drains.
#include <cstdio>

#include "common.hpp"

using namespace flextoe;
using namespace flextoe::benchx;

namespace {

struct Spans {
  sim::TimePs warm, span;
};

workload::ScenarioSpec base_spec(Stack s, std::uint32_t delay_cycles,
                                 std::uint64_t seed) {
  workload::ScenarioSpec spec;
  spec.stack = s;
  spec.server_cores = 1;
  spec.grant_stack_cores = true;  // TAS fast path on dedicated cores
  spec.client_nodes = 4;
  spec.conns_per_node = 32;  // 128 connections total, as in the paper
  spec.server_app_cycles = delay_cycles;
  spec.seed = seed;
  return spec;
}

double run_rx(Stack s, std::uint32_t msg, std::uint32_t delay_cycles,
              std::uint64_t seed, Spans t) {
  // Clients produce RPCs of `msg` bytes; server consumes each after an
  // artificial delay and replies 32 B.
  auto spec = base_spec(s, delay_cycles, seed);
  spec.app = workload::AppKind::RpcEcho;
  spec.pipeline = 4;  // multiple pipelined RPCs per connection
  spec.response_size = 32;
  spec.request_sizes = [msg] { return workload::fixed_size(msg); };
  workload::RunOptions ro;
  ro.warm_override = t.warm;
  ro.span_override = t.span;
  return workload::run_scenario(spec, ro).server_rx_gbps;
}

double run_tx(Stack s, std::uint32_t msg, std::uint32_t delay_cycles,
              std::uint64_t seed, Spans t) {
  // Server produces messages; clients consume.
  auto spec = base_spec(s, delay_cycles, seed);
  spec.app = workload::AppKind::Stream;
  spec.stream_frame = msg;
  workload::RunOptions ro;
  ro.warm_override = t.warm;
  ro.span_override = t.span;
  return workload::run_scenario(spec, ro).client_rx_gbps;
}

}  // namespace

BENCH_SCENARIO(fig10, "RPC goodput Gbps, RX and TX, vs message size") {
  const auto sizes = ctx.pick<std::vector<std::uint32_t>>(
      {32, 128, 512, 2048}, {32, 2048});
  const auto delays =
      ctx.pick<std::vector<std::uint32_t>>({250, 1000}, {250});
  const Spans t{ctx.pick(sim::ms(10), sim::ms(2)),
                ctx.pick(sim::ms(25), sim::ms(4))};

  for (std::uint32_t delay : delays) {
    for (const bool rx : {true, false}) {
      for (std::uint32_t msg : sizes) {
        char label[48];
        std::snprintf(label, sizeof label, "%s/%u/%u", rx ? "rx" : "tx",
                      delay, msg);
        for (Stack s : all_stacks()) {
          const double gbps = ctx.measure([&](int rep) {
            const std::uint64_t seed =
                ctx.seed((rx ? 23u : 29u) + static_cast<unsigned>(rep));
            return rx ? run_rx(s, msg, delay, seed, t)
                      : run_tx(s, msg, delay, seed, t);
          });
          ctx.report().series(stack_name(s)).set(label, "gbps", gbps);
        }
      }
    }
  }
  ctx.report().note(
      "Paper shape: FlexTOE/TAS track closely (app core saturated) and "
      "reach line rate at 2KB; Linux/Chelsio are several x lower,\n"
      "gap larger on TX; gains shrink at 1000 cycles/message.");
}
