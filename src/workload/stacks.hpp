// Stack selection shared by scenarios and the paper benches: the four
// evaluated stacks (§5) and helpers to build a server node of each kind.
// Moved here from bench/common.hpp so the scenario engine in src/ can
// bind {stack, topology, app, workload} without depending on bench/.
#pragma once

#include <cstdint>
#include <vector>

#include "app/testbed.hpp"
#include "baseline/personality.hpp"

namespace flextoe::workload {

enum class Stack { Linux, Chelsio, Tas, FlexToe };

inline const char* stack_name(Stack s) {
  switch (s) {
    case Stack::Linux:
      return "Linux";
    case Stack::Chelsio:
      return "Chelsio";
    case Stack::Tas:
      return "TAS";
    case Stack::FlexToe:
      return "FlexTOE";
  }
  return "?";
}

inline const std::vector<Stack>& all_stacks() {
  static const std::vector<Stack> v{Stack::Linux, Stack::Chelsio,
                                    Stack::Tas, Stack::FlexToe};
  return v;
}

inline baseline::Personality personality(Stack s) {
  switch (s) {
    case Stack::Linux:
      return baseline::linux_personality();
    case Stack::Chelsio:
      return baseline::chelsio_personality();
    case Stack::Tas:
      return baseline::tas_personality();
    default:
      return baseline::ideal_personality();
  }
}

// Adds a server node of the given stack kind.
inline app::Testbed::Node& add_server(app::Testbed& tb, Stack s,
                                      unsigned cores,
                                      host::FlexToeNicConfig toe_cfg = {},
                                      double nic_gbps = 40.0) {
  app::NodeParams np;
  np.cores = cores;
  np.nic_gbps = nic_gbps;
  if (s == Stack::FlexToe) {
    return tb.add_flextoe_node(np, toe_cfg);
  }
  const auto pers = personality(s);
  np.serial_fraction = pers.serial_fraction;
  return tb.add_sw_node(np, pers);
}

// TAS runs its fast path on dedicated cores separate from application
// cores (TAS paper / §2.1). Single-app-core scenarios grant it those.
inline unsigned with_stack_cores(Stack s, unsigned app_cores) {
  return s == Stack::Tas ? app_cores + 2 : app_cores;
}

inline std::uint32_t app_cycles(Stack s) {
  // Table 1 "Application" row: the identical binary costs more cycles
  // under bulkier stacks (icache/IPC effects).
  if (s == Stack::FlexToe) return 890;
  return personality(s).app_cycles_per_req;
}

}  // namespace flextoe::workload
