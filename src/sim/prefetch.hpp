// Software prefetch for the simulator's own hot paths (host-side only:
// prefetching never costs simulated time). Burst dispatch walks arrays
// of segment contexts and work items whose next element is known while
// the current one executes — touching its cache line early hides the
// miss behind real work, the same trick DPDK-style rx/tx burst loops
// use on descriptor rings.
#pragma once

namespace flextoe::sim {

// Hints the cache hierarchy to pull `p`'s line for reading. No-op on
// compilers without the builtin; never changes observable behavior.
inline void prefetch(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

}  // namespace flextoe::sim
