#include "net/addr.hpp"

#include <cstdio>

namespace flextoe::net {

std::string MacAddr::str() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", bytes[0],
                bytes[1], bytes[2], bytes[3], bytes[4], bytes[5]);
  return buf;
}

std::string ip_str(Ipv4Addr ip) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (ip >> 24) & 0xFF,
                (ip >> 16) & 0xFF, (ip >> 8) & 0xFF, ip & 0xFF);
  return buf;
}

}  // namespace flextoe::net
