// Connection splicing on the NIC (paper §3.3, Listing 1; AccelTCP-style):
// a FlexTOE proxy rewrites headers of spliced flows entirely in the
// XDP stage — segments never touch the proxy host.
//
// The demo installs splice state for a flow pair, injects segments as the
// MAC would deliver them, and shows the rewritten segments leaving the
// NIC, plus the control-plane redirect on FIN.
#include <cstdio>

#include "core/datapath.hpp"
#include "sim/domain.hpp"
#include "xdp/modules.hpp"

using namespace flextoe;

namespace {

class PrintSink : public net::PacketSink {
 public:
  void deliver(const net::PacketPtr& pkt) override {
    ++count;
    if (count <= 3) {
      std::printf(
          "  [wire] %s:%u -> %s:%u seq=%u ack=%u len=%u (dst mac %s)\n",
          net::ip_str(pkt->ip.src).c_str(), pkt->tcp.sport,
          net::ip_str(pkt->ip.dst).c_str(), pkt->tcp.dport, pkt->tcp.seq,
          pkt->tcp.ack, pkt->payload_len(), pkt->eth.dst.str().c_str());
    }
  }
  std::uint64_t count = 0;
};

}  // namespace

int main() {
  sim::Domain ev;
  core::Datapath::HostIface host;
  std::uint64_t redirected = 0;
  host.notify = [](const host::CtxDesc&) {};
  host.to_control = [&redirected](const net::PacketPtr& p) {
    ++redirected;
    std::printf("  [control-plane] got %s segment (flags 0x%02x)\n",
                p->tcp.has(net::tcpflag::kFin) ? "FIN" : "control",
                p->tcp.flags);
  };
  host.peer_fin = [](tcp::ConnId) {};

  core::Datapath dp(ev, core::agilio_cx40_config(), host);
  const auto proxy_mac = net::MacAddr::from_u64(0x02000000AA00);
  const auto proxy_ip = net::make_ip(10, 0, 0, 100);
  dp.set_local(proxy_mac, proxy_ip);
  PrintSink wire;
  dp.set_mac_sink(&wire);

  // Control plane installs the splice: client(10.0.0.1:5555 -> proxy:80)
  // is forwarded to backend 10.0.0.2:8080 with seq/ack translation.
  auto splice = std::make_shared<xdp::SpliceProgram>();
  splice->set_local_mac(proxy_mac);
  tcp::FlowTuple key{proxy_ip, net::make_ip(10, 0, 0, 1), 80, 5555};
  xdp::TcpSplice st;
  st.remote_mac = net::MacAddr::from_u64(0x02000000BB00);
  st.remote_ip = net::make_ip(10, 0, 0, 2);
  st.local_port = 31337;
  st.remote_port = 8080;
  st.seq_delta = 5000;  // difference of the two connections' ISNs
  st.ack_delta = 9000;
  splice->add(key, st);
  dp.add_xdp_program(splice);

  std::printf("injecting 1000 segments of the spliced flow...\n");
  for (int i = 0; i < 1000; ++i) {
    ev.schedule_in(sim::us(1) * i, [&dp, i] {
      auto pkt = net::make_tcp_packet(
          net::MacAddr::from_u64(0x02000000CC00),
          net::MacAddr::from_u64(0x02000000AA00), net::make_ip(10, 0, 0, 1),
          net::make_ip(10, 0, 0, 100), 5555, 80,
          1000 + static_cast<std::uint32_t>(i) * 1448, 777,
          net::tcpflag::kAck | net::tcpflag::kPsh,
          std::vector<std::uint8_t>(1448, 0x42));
      dp.deliver(pkt);
    });
  }
  ev.run_until(sim::ms(2));
  std::printf("  ... %llu segments spliced out the MAC\n",
              static_cast<unsigned long long>(wire.count));

  // Connection close: FIN atomically removes the splice entry and goes to
  // the control plane (Listing 1's SYN/FIN/RST branch).
  std::printf("\ninjecting FIN of the spliced flow...\n");
  auto fin = net::make_tcp_packet(
      net::MacAddr::from_u64(0x02000000CC00),
      net::MacAddr::from_u64(0x02000000AA00), net::make_ip(10, 0, 0, 1),
      net::make_ip(10, 0, 0, 100), 5555, 80, 2000000, 777,
      net::tcpflag::kFin | net::tcpflag::kAck, {});
  dp.deliver(fin);
  ev.run_until(sim::ms(3));

  std::printf("\nsplice table now holds %zu flows (entry removed on FIN)\n",
              splice->flows());
  std::printf("result: %s\n",
              wire.count == 1000 && splice->flows() == 0 && redirected == 1
                  ? "OK"
                  : "FAILED");
  return 0;
}
