// Figure 8: Memcached throughput scalability — MOps vs server cores for
// Linux, Chelsio, TAS, FlexTOE. One series per stack; rows are core
// counts. Runs on the shared workload engine: the spec binds the KV app
// to 3 client machines of closed-loop memtier-style generators.
#include "common.hpp"

using namespace flextoe;
using namespace flextoe::benchx;

namespace {

double run_point(Stack s, unsigned nc, std::uint64_t seed, sim::TimePs warm,
                 sim::TimePs span) {
  workload::ScenarioSpec spec;
  spec.app = workload::AppKind::Kv;
  spec.stack = s;
  spec.server_cores = nc;
  // Several client machines with enough load to saturate, as in the
  // paper's testbed.
  spec.client_nodes = 3;
  spec.conns_per_node = 8 + 4 * nc;
  spec.pipeline = 4;
  spec.seed = seed;
  workload::RunOptions ro;
  ro.warm_override = warm;
  ro.span_override = span;
  return workload::run_scenario(spec, ro).throughput_rps / 1e6;
}

}  // namespace

BENCH_SCENARIO(fig08, "memcached throughput (MOps) vs server cores") {
  const auto cores = ctx.pick<std::vector<unsigned>>(
      {1, 2, 4, 6, 8, 10, 12, 14, 16}, {1, 4});
  const auto warm = ctx.pick(sim::ms(15), sim::ms(3));
  const auto span = ctx.pick(sim::ms(30), sim::ms(5));
  for (unsigned nc : cores) {
    for (Stack s : all_stacks()) {
      const double mops = ctx.measure([&](int rep) {
        return run_point(s, nc, ctx.seed(17 + static_cast<unsigned>(rep)),
                         warm, span);
      });
      ctx.report().series(stack_name(s)).set(std::to_string(nc), "mops",
                                             mops);
    }
  }
  ctx.report().note(
      "Paper shape: FlexTOE ~1.6x TAS, ~4.9x Chelsio, ~5.5x Linux at "
      "saturation; FlexTOE NIC compute-bound around 12 cores;\n"
      "Linux/Chelsio plateau early (in-kernel locking).");
}
