// Figure 9: Memcached operation latency distributions for every
// server-stack x client-stack combination (single-threaded server).
// Prints CDF summary points (p25/p50/p75/p90/p99).
#include "common.hpp"

using namespace flextoe;
using namespace flextoe::benchx;

int main() {
  print_header("Figure 9: latency us by server/client stack combination",
               {"Server", "Client", "p25", "p50", "p75", "p90", "p99"});

  for (Stack server_s : all_stacks()) {
    for (Stack client_s : all_stacks()) {
      Testbed tb(19);
      auto& server = add_server(tb, server_s, 1);
      // Client machine runs the client-side stack personality.
      Testbed::Node* client = nullptr;
      if (client_s == Stack::FlexToe) {
        client = &tb.add_flextoe_node({.cores = 4, .nic_gbps = 40.0});
      } else {
        app::NodeParams np;
        np.cores = 4;
        np.nic_gbps = 100.0;
        const auto pers = personality(client_s);
        np.serial_fraction = pers.serial_fraction;
        client = &tb.add_sw_node(np, pers);
      }

      app::KvServer srv(tb.ev(), *server.stack,
                        {.port = 11211, .app_cycles = app_cycles(server_s)},
                        server.cpu.get());
      app::KvClient::Params cp;
      cp.connections = 4;
      cp.pipeline = 1;
      app::KvClient cli(tb.ev(), *client->stack, server.ip, cp);
      cli.start();

      tb.run_for(sim::ms(10));
      cli.clear_stats();
      tb.run_for(sim::ms(40));

      print_cell(stack_name(server_s));
      print_cell(stack_name(client_s));
      auto& lat = cli.latency();
      for (double p : {25.0, 50.0, 75.0, 90.0, 99.0}) {
        print_cell(lat.percentile(p), 1);
      }
      end_row();
    }
  }
  std::printf(
      "\nPaper shape: FlexTOE server gives the lowest median and tail "
      "latency across all client stacks; Linux is ~5x worse.\n");
  return 0;
}
