// Move-only type-erased `void()` callable with inline small-buffer
// storage — the event representation of the simulator hot path.
//
// Every simulated action (event-queue callbacks, FPC work completions,
// DMA done handlers) is a closure over a handful of pointers: a
// component `this`, a shared segment context, a few integers. With
// std::function each such closure exceeds the libstdc++ 16-byte inline
// buffer and pays one heap allocation + free per event — the single
// largest constant cost of the simulator (see bench/micro_pipeline).
// SmallFn stores closures up to `Capacity` bytes inline; larger or
// throwing-move callables fall back to the heap transparently, so
// correctness never depends on the capacity choice, only speed.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace flextoe::sim {

template <std::size_t Capacity>
class SmallFn {
 public:
  SmallFn() noexcept = default;
  SmallFn(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, SmallFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  SmallFn(F&& f) {  // NOLINT(runtime/explicit)
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &InlineOps<D>::ops;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &HeapOps<D>::ops;
    }
  }

  SmallFn(SmallFn&& o) noexcept : ops_(o.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(o.buf_, buf_);
      o.ops_ = nullptr;
    }
  }

  SmallFn& operator=(SmallFn&& o) noexcept {
    if (this != &o) {
      reset();
      if (o.ops_ != nullptr) {
        ops_ = o.ops_;
        o.ops_->relocate(o.buf_, buf_);
        o.ops_ = nullptr;
      }
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  void operator()() { ops_->invoke(buf_); }
  explicit operator bool() const noexcept { return ops_ != nullptr; }

  // True when a callable of type D is stored without a heap allocation.
  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= Capacity && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-constructs dst from src and destroys src (trivial relocation).
    void (*relocate)(void* src, void* dst);
    void (*destroy)(void*);
  };

  template <typename D>
  struct InlineOps {
    static void invoke(void* p) { (*static_cast<D*>(p))(); }
    static void relocate(void* src, void* dst) {
      D* f = static_cast<D*>(src);
      ::new (dst) D(std::move(*f));
      f->~D();
    }
    static void destroy(void* p) { static_cast<D*>(p)->~D(); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  template <typename D>
  struct HeapOps {
    static D*& slot(void* p) { return *static_cast<D**>(p); }
    static void invoke(void* p) { (*slot(p))(); }
    static void relocate(void* src, void* dst) {
      ::new (dst) D*(slot(src));
    }
    static void destroy(void* p) { delete slot(p); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace flextoe::sim
