#include "app/rpc_app.hpp"

#include <algorithm>

namespace flextoe::app {

using tcp::ConnId;

// ---------------------------------------------------------- EchoServer

EchoServer::EchoServer(sim::EventQueue& ev, tcp::StackIface& stack,
                       Params p, sim::CpuPool* cpu)
    : ev_(ev), stack_(stack), p_(p), cpu_(cpu) {
  tcp::StackCallbacks cbs;
  cbs.on_accept = [this](ConnId c) { conns_[c]; };
  cbs.on_data = [this](ConnId c) { on_data(c); };
  cbs.on_sendable = [this](ConnId c) { flush(c); };
  cbs.on_close = [this](ConnId c) {
    if (p_.close_on_peer_close) stack_.close(c);
    conns_.erase(c);
  };
  stack_.set_callbacks(std::move(cbs));
  stack_.listen(p_.port);
}

void EchoServer::on_data(ConnId c) {
  Conn& conn = conns_[c];
  std::uint8_t buf[16 * 1024];
  std::size_t n;
  while ((n = stack_.recv(c, buf)) > 0) {
    bytes_rx_ += n;
    conn.reader.feed(std::span(buf, n));
  }
  if (p_.response_size == 0) {
    // Echo mode: responses carry the request payload back.
    std::vector<std::uint8_t> frame;
    while (conn.reader.next(frame)) {
      ++requests_;
      respond(c, static_cast<std::uint32_t>(frame.size()));
    }
  } else {
    std::uint32_t len = 0;
    while (conn.reader.skip_frame(len)) {
      ++requests_;
      respond(c, len);
    }
  }
}

void EchoServer::respond(ConnId c, std::uint32_t request_len) {
  const std::uint32_t resp =
      p_.response_size == 0 ? request_len : p_.response_size;
  auto do_send = [this, c, resp] {
    auto it = conns_.find(c);
    if (it == conns_.end()) return;
    it->second.out.push_back(make_frame(resp));
    flush(c);
  };
  if (cpu_ != nullptr && p_.app_cycles > 0) {
    Conn& conn = conns_[c];
    conn.chain =
        cpu_->run(p_.app_cycles, sim::CpuCat::App, conn.chain, do_send);
  } else {
    do_send();
  }
}

void EchoServer::flush(ConnId c) {
  auto it = conns_.find(c);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  while (!conn.out.empty()) {
    auto& front = conn.out.front();
    const std::size_t n = stack_.send(
        c, std::span(front.data() + conn.out_off,
                     front.size() - conn.out_off));
    conn.out_off += n;
    if (conn.out_off < front.size()) return;  // tx buffer full
    conn.out.pop_front();
    conn.out_off = 0;
  }
}

// ------------------------------------------------------ ProducerServer

ProducerServer::ProducerServer(sim::EventQueue& ev, tcp::StackIface& stack,
                               Params p, sim::CpuPool* cpu)
    : ev_(ev), stack_(stack), p_(p), cpu_(cpu) {
  tcp::StackCallbacks cbs;
  cbs.on_accept = [this](ConnId c) {
    conns_[c].frame = make_frame(p_.frame_size);
    pump(c);
  };
  cbs.on_data = [this](ConnId c) {  // drain the kick request
    std::uint8_t buf[4096];
    while (stack_.recv(c, buf) > 0) {
    }
    pump(c);
  };
  cbs.on_sendable = [this](ConnId c) { pump(c); };
  cbs.on_close = [this](ConnId c) {
    stack_.close(c);
    conns_.erase(c);
  };
  stack_.set_callbacks(std::move(cbs));
  stack_.listen(p_.port);
}

void ProducerServer::pump(ConnId c) {
  auto it = conns_.find(c);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  while (true) {
    const std::size_t n =
        stack_.send(c, std::span(conn.frame.data() + conn.off,
                                 conn.frame.size() - conn.off));
    conn.off += n;
    if (conn.off < conn.frame.size()) return;  // blocked
    conn.off = 0;
    ++frames_;
    if (cpu_ != nullptr && p_.app_cycles > 0) {
      conn.chain = cpu_->run(p_.app_cycles, sim::CpuCat::App, conn.chain,
                             nullptr);
    }
  }
}

// --------------------------------------------------- ClosedLoopClient

ClosedLoopClient::ClosedLoopClient(sim::EventQueue& ev,
                                   tcp::StackIface& stack,
                                   net::Ipv4Addr server_ip, Params p)
    : ev_(ev), stack_(stack), server_ip_(server_ip), p_(p) {
  conns_.resize(p_.connections);
}

void ClosedLoopClient::start() {
  tcp::StackCallbacks cbs;
  cbs.on_connected = [this](ConnId c, bool ok) {
    auto it = by_id_.find(c);
    if (it == by_id_.end()) return;
    Conn& conn = conns_[it->second];
    conn.up = ok;
    if (!ok) return;
    ++connected_;
    for (unsigned i = 0; i < p_.pipeline; ++i) issue(it->second);
  };
  cbs.on_data = [this](ConnId c) {
    auto it = by_id_.find(c);
    if (it != by_id_.end()) on_data(it->second);
  };
  cbs.on_sendable = [this](ConnId c) {
    auto it = by_id_.find(c);
    if (it != by_id_.end()) flush(it->second);
  };
  cbs.on_close = [this](ConnId c) {
    auto it = by_id_.find(c);
    if (it != by_id_.end()) conns_[it->second].up = false;
  };
  stack_.set_callbacks(std::move(cbs));

  for (std::size_t i = 0; i < conns_.size(); ++i) {
    ev_.schedule_in(p_.connect_stagger * i, [this, i] {
      conns_[i].id = stack_.connect(server_ip_, p_.port);
      by_id_[conns_[i].id] = i;
    });
  }
}

void ClosedLoopClient::issue(std::size_t idx) {
  if (stopped_) return;
  Conn& conn = conns_[idx];
  const auto frame = make_frame(p_.request_size);
  conn.pending_tx.insert(conn.pending_tx.end(), frame.begin(), frame.end());
  conn.sent_at.push_back(ev_.now());
  flush(idx);
}

void ClosedLoopClient::flush(std::size_t idx) {
  Conn& conn = conns_[idx];
  if (!conn.up || conn.pending_tx.empty()) return;
  const std::size_t n = stack_.send(
      conn.id, std::span(conn.pending_tx.data() + conn.pending_off,
                         conn.pending_tx.size() - conn.pending_off));
  conn.pending_off += n;
  if (conn.pending_off == conn.pending_tx.size()) {
    conn.pending_tx.clear();
    conn.pending_off = 0;
  }
}

void ClosedLoopClient::on_data(std::size_t idx) {
  Conn& conn = conns_[idx];
  std::uint8_t buf[16 * 1024];
  std::size_t n;
  while ((n = stack_.recv(conn.id, buf)) > 0) {
    bytes_rx_ += n;
    conn.reader.feed(std::span(buf, n));
  }
  std::uint32_t len = 0;
  while (conn.reader.skip_frame(len)) {
    ++completed_;
    ++conn.completed;
    if (!conn.sent_at.empty()) {
      latency_.add(sim::to_us(ev_.now() - conn.sent_at.front()));
      conn.sent_at.pop_front();
    }
    issue(idx);  // closed loop: next request
  }
}

std::vector<double> ClosedLoopClient::per_conn_completed() const {
  std::vector<double> v;
  v.reserve(conns_.size());
  for (const auto& c : conns_) v.push_back(static_cast<double>(c.completed));
  return v;
}

void ClosedLoopClient::clear_stats() {
  completed_ = 0;
  bytes_rx_ = 0;
  latency_.clear();
  for (auto& c : conns_) c.completed = 0;
}

// -------------------------------------------------------- DrainClient

DrainClient::DrainClient(sim::EventQueue& ev, tcp::StackIface& stack,
                         net::Ipv4Addr server_ip, Params p)
    : ev_(ev), stack_(stack), server_ip_(server_ip), p_(p) {
  per_conn_.resize(p_.connections, 0);
}

void DrainClient::start() {
  tcp::StackCallbacks cbs;
  cbs.on_connected = [this](ConnId c, bool ok) {
    if (!ok) return;
    // Kick the producer.
    const auto kick = make_frame(p_.kick_size);
    stack_.send(c, kick);
  };
  cbs.on_data = [this](ConnId c) {
    std::uint8_t buf[16 * 1024];
    std::size_t n;
    while ((n = stack_.recv(c, buf)) > 0) {
      bytes_rx_ += n;
      auto it = by_id_.find(c);
      if (it != by_id_.end()) per_conn_[it->second] += n;
    }
  };
  stack_.set_callbacks(std::move(cbs));

  for (std::size_t i = 0; i < p_.connections; ++i) {
    ev_.schedule_in(sim::us(5) * i, [this, i] {
      const ConnId c = stack_.connect(server_ip_, p_.port);
      by_id_[c] = i;
    });
  }
}

void DrainClient::clear_stats() {
  bytes_rx_ = 0;
  std::fill(per_conn_.begin(), per_conn_.end(), 0);
}

}  // namespace flextoe::app
