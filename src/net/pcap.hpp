// Minimal pcap (libpcap classic format) file writer, used by the
// tcpdump-style capture module (paper §5.1).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace flextoe::net {

class PcapWriter {
 public:
  PcapWriter() = default;
  ~PcapWriter();

  PcapWriter(const PcapWriter&) = delete;
  PcapWriter& operator=(const PcapWriter&) = delete;

  // Opens `path` and writes the global header. Returns false on failure.
  bool open(const std::string& path);
  void close();
  bool is_open() const { return file_ != nullptr; }

  // Writes one packet with the given simulated timestamp.
  void write(const Packet& pkt, sim::TimePs ts);

  std::uint64_t packets_written() const { return packets_; }

 private:
  std::FILE* file_ = nullptr;
  std::uint64_t packets_ = 0;
};

}  // namespace flextoe::net
