#include "net/link.hpp"

namespace flextoe::net {

void Link::send(const PacketPtr& pkt) {
  const sim::TimePs start = std::max(ev_.now(), next_free_);
  const sim::TimePs ser = tx_time(pkt->wire_size());
  next_free_ = start + ser;
  ++tx_packets_;
  tx_bytes_ += pkt->wire_size();

  if (params_.loss_rate > 0.0 && rng_.chance(params_.loss_rate)) {
    ++dropped_;
    return;  // serialization time is still consumed
  }
  PacketSink* sink = sink_;
  if (sink == nullptr) return;
  ev_.schedule_at(next_free_ + params_.prop_delay,
                  [sink, pkt] { sink->deliver(pkt); });
}

}  // namespace flextoe::net
