#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace flextoe::sim {
namespace {

TEST(EventQueue, StartsAtTimeZeroEmpty) {
  EventQueue q;
  EXPECT_EQ(q.now(), 0u);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.step());
}

TEST(EventQueue, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(ns(30), [&] { order.push_back(3); });
  q.schedule_at(ns(10), [&] { order.push_back(1); });
  q.schedule_at(ns(20), [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), ns(30));
}

TEST(EventQueue, SameTimestampRunsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(ns(5), [&order, i] { order.push_back(i); });
  }
  q.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, ScheduleInIsRelativeToNow) {
  EventQueue q;
  TimePs fired = 0;
  q.schedule_at(ns(100), [&] {
    q.schedule_in(ns(50), [&] { fired = q.now(); });
  });
  q.run_all();
  EXPECT_EQ(fired, ns(150));
}

TEST(EventQueue, RunUntilAdvancesClockEvenWithoutEvents) {
  EventQueue q;
  q.run_until(us(7));
  EXPECT_EQ(q.now(), us(7));
}

TEST(EventQueue, RunUntilDoesNotRunLaterEvents) {
  EventQueue q;
  bool early = false, late = false;
  q.schedule_at(ns(10), [&] { early = true; });
  q.schedule_at(ns(1000), [&] { late = true; });
  q.run_until(ns(100));
  EXPECT_TRUE(early);
  EXPECT_FALSE(late);
  EXPECT_EQ(q.now(), ns(100));
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 100) q.schedule_in(ns(1), chain);
  };
  q.schedule_at(0, chain);
  q.run_all();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(q.executed(), 100u);
}

TEST(EventQueue, NextTimeReportsEarliestPendingEvent) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), EventQueue::kNoEvent);
  q.schedule_at(ns(30), [] {});
  q.schedule_at(ns(10), [] {});
  EXPECT_EQ(q.next_time(), ns(10));
  q.run_all();
  EXPECT_EQ(q.next_time(), EventQueue::kNoEvent);
}

TEST(EventQueue, RunBeforeIsExclusiveAndKeepsClock) {
  // The epoch-window primitive: strictly-before-horizon execution that
  // leaves now() at the last executed event, not at the horizon.
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(ns(10), [&] { order.push_back(1); });
  q.schedule_at(ns(20), [&] { order.push_back(2); });
  q.schedule_at(ns(30), [&] { order.push_back(3); });
  q.run_before(ns(30));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.now(), ns(20));
  EXPECT_EQ(q.next_time(), ns(30));
  q.run_before(EventQueue::kNoEvent);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(ClockDomain, CycleConversions) {
  EXPECT_EQ(kFpcClock.cycles(800), ns(1000));  // 800 cycles @800MHz = 1us
  EXPECT_EQ(kHostClock.cycles(2000), ns(1000));
  EXPECT_EQ(kFpcClock.to_cycles(us(1)), 800u);
  EXPECT_NEAR(kFpcClock.mhz(), 800.0, 0.01);
}

}  // namespace
}  // namespace flextoe::sim
