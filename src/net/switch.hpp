// Output-queued Ethernet switch with MAC learning, per-port rate
// shaping, tail-drop queues, WRED-style ECN marking, and a switch-wide
// random drop knob (used for the loss experiments, Fig 15, and incast,
// Table 4).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "net/packet_pool.hpp"
#include "sim/domain.hpp"
#include "sim/rng.hpp"

namespace flextoe::net {

struct SwitchPortParams {
  double gbps = 100.0;                       // egress serialization rate
  sim::TimePs prop_delay = sim::ns(500);     // cable to the attached device
  std::uint32_t queue_bytes = 512 * 1024;    // tail-drop capacity
  std::uint32_t ecn_threshold = 80 * 1024;   // mark CE above this depth
  bool ecn_marking = true;
};

class Switch {
 public:
  Switch(sim::Domain& ev, sim::Rng rng, int num_ports,
         SwitchPortParams defaults = {});

  // Attaches a device sink to `port` (egress side).
  void attach(int port, PacketSink* device);

  // Returns a sink that feeds this port's ingress (give it to the device).
  PacketSink* ingress_sink(int port);

  // Devices may also call ingress directly.
  void ingress(int port, const PacketPtr& pkt);

  SwitchPortParams& port_params(int port);

  // Switch-wide uniform random drop probability (loss experiments).
  void set_drop_prob(double p) { drop_prob_ = p; }

  std::uint64_t forwarded() const { return forwarded_; }
  std::uint64_t dropped_queue() const { return dropped_queue_; }
  std::uint64_t dropped_random() const { return dropped_random_; }
  std::uint64_t ecn_marked() const { return ecn_marked_; }
  std::uint32_t queue_depth(int port) const;

 private:
  struct Port {
    SwitchPortParams params;
    PacketSink* device = nullptr;
    std::deque<PacketPtr> queue;
    std::uint32_t queued_bytes = 0;
    bool busy = false;
  };

  class IngressSink : public PacketSink {
   public:
    IngressSink(Switch& sw, int port) : sw_(sw), port_(port) {}
    void deliver(const PacketPtr& pkt) override { sw_.ingress(port_, pkt); }

   private:
    Switch& sw_;
    int port_;
  };

  void enqueue(int port, PacketPtr pkt);
  void start_tx(int port);

  sim::Domain& ev_;
  sim::Rng rng_;
  // Recycled slots for the ECN-mark copy-on-write clones (frames are
  // otherwise forwarded by shared ownership, never copied).
  PacketPool pool_;
  std::vector<Port> ports_;
  std::vector<std::unique_ptr<IngressSink>> ingress_sinks_;
  std::unordered_map<std::uint64_t, int> mac_table_;
  double drop_prob_ = 0.0;
  std::uint64_t forwarded_ = 0;
  std::uint64_t dropped_queue_ = 0;
  std::uint64_t dropped_random_ = 0;
  std::uint64_t ecn_marked_ = 0;
};

}  // namespace flextoe::net
