// RPC applications used throughout the evaluation (paper §5.2):
//  - EchoServer: replies to each request frame (echo or fixed-size
//    response), charging configurable per-request application cycles.
//  - ProducerServer: streams frames to every accepted connection (TX
//    throughput tests).
//  - ClosedLoopClient: N connections × P pipelined requests, measures
//    per-request latency and throughput.
//  - DrainClient: consumes a server's stream (TX tests).
// All are written against tcp::StackIface, so the same application code
// runs over FlexTOE/libTOE and every baseline stack.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "app/framer.hpp"
#include "sim/cpu.hpp"
#include "sim/domain.hpp"
#include "sim/stats.hpp"
#include "tcp/stack_iface.hpp"
#include "workload/generator.hpp"

namespace flextoe::app {

class EchoServer {
 public:
  struct Params {
    std::uint16_t port = 7;
    std::uint32_t app_cycles = 0;     // artificial per-RPC app processing
    std::uint32_t response_size = 0;  // 0: echo the request payload
    bool close_on_peer_close = true;
  };

  EchoServer(sim::Domain& ev, tcp::StackIface& stack, Params p,
             sim::CpuPool* cpu = nullptr);

  std::uint64_t requests() const { return requests_; }
  std::uint64_t bytes_rx() const { return bytes_rx_; }

 private:
  struct Conn {
    FrameReader reader;
    std::deque<std::vector<std::uint8_t>> out;
    std::size_t out_off = 0;
    sim::TimePs chain = 0;  // per-conn app-work serialization
  };

  void on_data(tcp::ConnId c);
  void respond(tcp::ConnId c, std::uint32_t request_len);
  void flush(tcp::ConnId c);

  sim::Domain& ev_;
  tcp::StackIface& stack_;
  Params p_;
  sim::CpuPool* cpu_;
  std::unordered_map<tcp::ConnId, Conn> conns_;
  std::uint64_t requests_ = 0;
  std::uint64_t bytes_rx_ = 0;
};

class ProducerServer {
 public:
  struct Params {
    std::uint16_t port = 7;
    std::uint32_t frame_size = 2048;  // payload bytes per frame
    std::uint32_t app_cycles = 0;     // per produced frame
  };

  ProducerServer(sim::Domain& ev, tcp::StackIface& stack, Params p,
                 sim::CpuPool* cpu = nullptr);

  std::uint64_t frames_sent() const { return frames_; }

 private:
  struct Conn {
    std::vector<std::uint8_t> frame;
    std::size_t off = 0;
    sim::TimePs chain = 0;
  };
  void pump(tcp::ConnId c);

  sim::Domain& ev_;
  tcp::StackIface& stack_;
  Params p_;
  sim::CpuPool* cpu_;
  std::unordered_map<tcp::ConnId, Conn> conns_;
  std::uint64_t frames_ = 0;
};

// Closed-loop request/response client; a thin binding of the shared
// workload::TrafficGen to fixed-size frames.
class ClosedLoopClient {
 public:
  struct Params {
    unsigned connections = 1;
    unsigned pipeline = 1;            // outstanding requests per conn
    std::uint32_t request_size = 64;  // frame payload bytes
    std::uint32_t response_size = 0;  // 0: echo (response == request)
    std::uint16_t port = 7;
    sim::TimePs connect_stagger = sim::us(5);
  };

  ClosedLoopClient(sim::Domain& ev, tcp::StackIface& stack,
                   net::Ipv4Addr server_ip, Params p);

  void start() { gen_.start(); }
  // Stops issuing new requests (outstanding ones may still complete).
  void stop() { gen_.stop(); }

  std::uint64_t completed() const { return gen_.completed(); }
  std::uint64_t bytes_rx() const { return gen_.bytes_rx(); }
  unsigned connected() const { return gen_.connected(); }
  sim::Percentiles& latency() { return gen_.latency(); }
  // Per-connection completion counts (fairness analysis).
  std::vector<double> per_conn_completed() const {
    return gen_.per_conn_completed();
  }
  void clear_stats() { gen_.clear_stats(); }

 private:
  workload::TrafficGen gen_;
};

class DrainClient {
 public:
  struct Params {
    unsigned connections = 1;
    std::uint16_t port = 7;
    std::uint32_t kick_size = 1;  // first request to start the producer
  };

  DrainClient(sim::Domain& ev, tcp::StackIface& stack,
              net::Ipv4Addr server_ip, Params p);

  void start();
  std::uint64_t bytes_rx() const { return bytes_rx_; }
  std::vector<double> per_conn_bytes() const {
    return std::vector<double>(per_conn_.begin(), per_conn_.end());
  }
  void clear_stats();

 private:
  sim::Domain& ev_;
  tcp::StackIface& stack_;
  net::Ipv4Addr server_ip_;
  Params p_;
  std::unordered_map<tcp::ConnId, std::size_t> by_id_;
  std::vector<std::uint64_t> per_conn_;
  std::uint64_t bytes_rx_ = 0;
};

}  // namespace flextoe::app
