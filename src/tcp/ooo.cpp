#include "tcp/ooo.hpp"

namespace flextoe::tcp {

namespace {

// Common front/tail trimming against [rcv_nxt, rcv_nxt + window).
// Returns false if nothing of the segment fits in the window.
bool trim_to_window(SeqNum rcv_nxt, std::uint32_t window, SeqNum& seq,
                    std::uint32_t& len, RxResult& r) {
  if (len == 0) return false;
  SeqNum seg_end = seq + len;
  if (seq_le(seg_end, rcv_nxt)) {
    r.duplicate = true;
    return false;  // entirely stale
  }
  if (seq_lt(seq, rcv_nxt)) {
    const std::uint32_t trim = seq_diff(rcv_nxt, seq);
    seq = rcv_nxt;
    len -= trim;
  }
  const SeqNum win_end = rcv_nxt + window;
  if (seq_ge(seq, win_end)) {
    r.duplicate = true;
    return false;  // beyond the receive window
  }
  if (seq_gt(seq + len, win_end)) {
    len = seq_diff(win_end, seq);
  }
  return len > 0;
}

}  // namespace

RxResult SingleIntervalTracker::on_segment(SeqNum rcv_nxt, SeqNum seq,
                                           std::uint32_t len,
                                           std::uint32_t window) {
  RxResult r;
  if (!trim_to_window(rcv_nxt, window, seq, len, r)) return r;

  if (seq == rcv_nxt) {
    // In-order: accept and possibly merge the tracked interval.
    r.accept = true;
    r.buf_offset = 0;
    r.accept_len = len;
    r.advance = len;
    if (ooo_len_ > 0) {
      const SeqNum new_nxt = rcv_nxt + r.advance;
      const SeqNum ooo_end = ooo_start_ + ooo_len_;
      if (seq_le(ooo_start_, new_nxt)) {
        if (seq_gt(ooo_end, new_nxt)) {
          r.advance += seq_diff(ooo_end, new_nxt);
        }
        ooo_len_ = 0;  // interval consumed (or fully below new_nxt)
      }
    }
    return r;
  }

  // Hole ahead of us: out-of-order arrival.
  if (ooo_len_ == 0) {
    ooo_start_ = seq;
    ooo_len_ = len;
    r.accept = true;
    r.buf_offset = seq_diff(seq, rcv_nxt);
    r.accept_len = len;
    r.duplicate = true;  // triggers an ACK carrying the expected seq
    return r;
  }

  const SeqNum ooo_end = ooo_start_ + ooo_len_;
  const SeqNum seg_end = seq + len;
  // Mergeable iff overlapping or adjacent to the tracked interval.
  if (seq_le(seq, ooo_end) && seq_le(ooo_start_, seg_end)) {
    const SeqNum new_start = seq_min(ooo_start_, seq);
    const SeqNum new_end = seq_max(ooo_end, seg_end);
    ooo_start_ = new_start;
    ooo_len_ = seq_diff(new_end, new_start);
    r.accept = true;
    r.buf_offset = seq_diff(seq, rcv_nxt);
    r.accept_len = len;
    r.duplicate = true;
    return r;
  }

  // Outside the tracked interval: drop, re-ACK expected (paper §3.1.3).
  r.duplicate = true;
  return r;
}

RxResult MultiIntervalTracker::on_segment(SeqNum rcv_nxt, SeqNum seq,
                                          std::uint32_t len,
                                          std::uint32_t window) {
  RxResult r;
  if (!trim_to_window(rcv_nxt, window, seq, len, r)) return r;

  r.accept = true;
  r.buf_offset = seq_diff(seq, rcv_nxt);
  r.accept_len = len;
  r.duplicate = seq != rcv_nxt;

  // Insert [seq, seq+len) merging any overlapping/adjacent intervals.
  SeqNum start = seq;
  SeqNum end = seq + len;
  auto it = intervals_.begin();
  while (it != intervals_.end()) {
    const SeqNum a = it->first;
    const SeqNum b = it->second;
    if (seq_le(a, end) && seq_le(start, b)) {
      start = seq_min(start, a);
      end = seq_max(end, b);
      it = intervals_.erase(it);
    } else {
      ++it;
    }
  }
  intervals_[start] = end;

  // Advance rcv_nxt through any contiguous prefix.
  auto first = intervals_.begin();
  if (first != intervals_.end() && seq_le(first->first, rcv_nxt) &&
      seq_gt(first->second, rcv_nxt)) {
    r.advance = seq_diff(first->second, rcv_nxt);
    intervals_.erase(first);
  } else {
    r.advance = 0;
  }
  return r;
}

RxResult NoOooTracker::on_segment(SeqNum rcv_nxt, SeqNum seq,
                                  std::uint32_t len, std::uint32_t window) {
  RxResult r;
  if (!trim_to_window(rcv_nxt, window, seq, len, r)) return r;
  if (seq != rcv_nxt) {
    r.duplicate = true;  // hole: drop everything out of order
    return r;
  }
  r.accept = true;
  r.accept_len = len;
  r.advance = len;
  return r;
}

}  // namespace flextoe::tcp
