#include "app/rpc_app.hpp"

#include <algorithm>

namespace flextoe::app {

using tcp::ConnId;

// ---------------------------------------------------------- EchoServer

EchoServer::EchoServer(sim::Domain& ev, tcp::StackIface& stack,
                       Params p, sim::CpuPool* cpu)
    : ev_(ev), stack_(stack), p_(p), cpu_(cpu) {
  tcp::StackCallbacks cbs;
  cbs.on_accept = [this](ConnId c) { conns_[c]; };
  cbs.on_data = [this](ConnId c) { on_data(c); };
  cbs.on_sendable = [this](ConnId c) { flush(c); };
  cbs.on_close = [this](ConnId c) {
    if (p_.close_on_peer_close) stack_.close(c);
    conns_.erase(c);
  };
  stack_.set_callbacks(std::move(cbs));
  stack_.listen(p_.port);
}

void EchoServer::on_data(ConnId c) {
  Conn& conn = conns_[c];
  std::uint8_t buf[16 * 1024];
  std::size_t n;
  while ((n = stack_.recv(c, buf)) > 0) {
    bytes_rx_ += n;
    conn.reader.feed(std::span(buf, n));
  }
  if (p_.response_size == 0) {
    // Echo mode: responses carry the request payload back.
    std::vector<std::uint8_t> frame;
    while (conn.reader.next(frame)) {
      ++requests_;
      respond(c, static_cast<std::uint32_t>(frame.size()));
    }
  } else {
    std::uint32_t len = 0;
    while (conn.reader.skip_frame(len)) {
      ++requests_;
      respond(c, len);
    }
  }
}

void EchoServer::respond(ConnId c, std::uint32_t request_len) {
  const std::uint32_t resp =
      p_.response_size == 0 ? request_len : p_.response_size;
  auto do_send = [this, c, resp] {
    auto it = conns_.find(c);
    if (it == conns_.end()) return;
    it->second.out.push_back(make_frame(resp));
    flush(c);
  };
  if (cpu_ != nullptr && p_.app_cycles > 0) {
    Conn& conn = conns_[c];
    conn.chain =
        cpu_->run(p_.app_cycles, sim::CpuCat::App, conn.chain, do_send);
  } else {
    do_send();
  }
}

void EchoServer::flush(ConnId c) {
  auto it = conns_.find(c);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  while (!conn.out.empty()) {
    auto& front = conn.out.front();
    const std::size_t n = stack_.send(
        c, std::span(front.data() + conn.out_off,
                     front.size() - conn.out_off));
    conn.out_off += n;
    if (conn.out_off < front.size()) return;  // tx buffer full
    conn.out.pop_front();
    conn.out_off = 0;
  }
}

// ------------------------------------------------------ ProducerServer

ProducerServer::ProducerServer(sim::Domain& ev, tcp::StackIface& stack,
                               Params p, sim::CpuPool* cpu)
    : ev_(ev), stack_(stack), p_(p), cpu_(cpu) {
  tcp::StackCallbacks cbs;
  cbs.on_accept = [this](ConnId c) {
    conns_[c].frame = make_frame(p_.frame_size);
    pump(c);
  };
  cbs.on_data = [this](ConnId c) {  // drain the kick request
    std::uint8_t buf[4096];
    while (stack_.recv(c, buf) > 0) {
    }
    pump(c);
  };
  cbs.on_sendable = [this](ConnId c) { pump(c); };
  cbs.on_close = [this](ConnId c) {
    stack_.close(c);
    conns_.erase(c);
  };
  stack_.set_callbacks(std::move(cbs));
  stack_.listen(p_.port);
}

void ProducerServer::pump(ConnId c) {
  auto it = conns_.find(c);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  while (true) {
    const std::size_t n =
        stack_.send(c, std::span(conn.frame.data() + conn.off,
                                 conn.frame.size() - conn.off));
    conn.off += n;
    if (conn.off < conn.frame.size()) return;  // blocked
    conn.off = 0;
    ++frames_;
    if (cpu_ != nullptr && p_.app_cycles > 0) {
      conn.chain = cpu_->run(p_.app_cycles, sim::CpuCat::App, conn.chain,
                             nullptr);
    }
  }
}

// --------------------------------------------------- ClosedLoopClient

namespace {

workload::TrafficGenParams closed_loop_gen_params(
    const ClosedLoopClient::Params& p) {
  workload::TrafficGenParams gp;
  gp.connections = p.connections;
  gp.pipeline = p.pipeline;
  gp.port = p.port;
  gp.connect_stagger = p.connect_stagger;
  return gp;
}

}  // namespace

ClosedLoopClient::ClosedLoopClient(sim::Domain& ev,
                                   tcp::StackIface& stack,
                                   net::Ipv4Addr server_ip, Params p)
    : gen_(ev, stack, server_ip, closed_loop_gen_params(p),
           workload::closed_loop_arrival(),
           workload::fixed_size(p.request_size)) {}

// -------------------------------------------------------- DrainClient

DrainClient::DrainClient(sim::Domain& ev, tcp::StackIface& stack,
                         net::Ipv4Addr server_ip, Params p)
    : ev_(ev), stack_(stack), server_ip_(server_ip), p_(p) {
  per_conn_.resize(p_.connections, 0);
}

void DrainClient::start() {
  tcp::StackCallbacks cbs;
  cbs.on_connected = [this](ConnId c, bool ok) {
    if (!ok) return;
    // Kick the producer.
    const auto kick = make_frame(p_.kick_size);
    stack_.send(c, kick);
  };
  cbs.on_data = [this](ConnId c) {
    std::uint8_t buf[16 * 1024];
    std::size_t n;
    while ((n = stack_.recv(c, buf)) > 0) {
      bytes_rx_ += n;
      auto it = by_id_.find(c);
      if (it != by_id_.end()) per_conn_[it->second] += n;
    }
  };
  stack_.set_callbacks(std::move(cbs));

  for (std::size_t i = 0; i < p_.connections; ++i) {
    ev_.schedule_in(sim::us(5) * i, [this, i] {
      const ConnId c = stack_.connect(server_ip_, p_.port);
      by_id_[c] = i;
    });
  }
}

void DrainClient::clear_stats() {
  bytes_rx_ = 0;
  std::fill(per_conn_.begin(), per_conn_.end(), 0);
}

}  // namespace flextoe::app
