// Figure 16: throughput distribution across bulk connections at line
// rate — median and 1st-percentile of per-connection goodput normalized
// to fair share, plus Jain's fairness index, FlexTOE vs Linux.
#include <algorithm>

#include "common.hpp"

using namespace flextoe;
using namespace flextoe::benchx;

namespace {

struct FairRes {
  double p50_norm, p1_norm, jfi;
};

FairRes run_case(Stack s, unsigned conns) {
  Testbed tb(61);
  app::NodeParams np;
  np.cores = 8;
  np.sockbuf_bytes = 64 * 1024;
  Testbed::Node* sp = nullptr;
  if (s == Stack::FlexToe) {
    sp = &tb.add_flextoe_node(np);
  } else {
    auto pers = personality(s);
    np.serial_fraction = pers.serial_fraction;
    sp = &tb.add_sw_node(np, pers);
  }
  auto& server = *sp;
  app::ProducerServer srv(tb.ev(), *server.stack,
                          {.port = 9, .frame_size = 8192},
                          nullptr /* NIC-paced, not app-limited */);

  // Spread the connections over several client machines.
  std::vector<std::unique_ptr<app::DrainClient>> clients;
  const unsigned nclients = 4;
  for (unsigned i = 0; i < nclients; ++i) {
    auto& cn = tb.add_client_node(100.0, /*sockbuf=*/64 * 1024);
    app::DrainClient::Params dp;
    dp.connections = conns / nclients;
    dp.port = 9;
    clients.push_back(std::make_unique<app::DrainClient>(
        tb.ev(), *cn.stack, server.ip, dp));
    clients.back()->start();
  }

  // Deep-buffered egress with ECN marking (datacenter ToR defaults).
  tb.the_switch().port_params(0).queue_bytes = 2 * 1024 * 1024;
  tb.the_switch().port_params(0).ecn_threshold = 300 * 1024;
  tb.run_for(sim::ms(80));  // connect + ramp
  for (auto& c : clients) c->clear_stats();
  // Long window: per-flow fairness at thousands of flows needs many
  // pacing rounds to average (the paper measures 60 s).
  const sim::TimePs span = sim::ms(400);
  tb.run_for(span);

  std::vector<double> per_conn;
  double total = 0;
  for (auto& c : clients) {
    for (double b : c->per_conn_bytes()) {
      per_conn.push_back(b);
      total += b;
    }
  }
  std::sort(per_conn.begin(), per_conn.end());
  const double fair = total / static_cast<double>(per_conn.size());
  FairRes r;
  r.jfi = sim::jains_fairness_index(per_conn);
  r.p50_norm = fair > 0 ? per_conn[per_conn.size() / 2] / fair : 0;
  r.p1_norm = fair > 0 ? per_conn[per_conn.size() / 100] / fair : 0;
  return r;
}

}  // namespace

int main() {
  print_header("Figure 16: goodput/fair-share at line rate",
               {"Conns", "Stack", "p50/fair", "p1/fair", "JFI"});
  for (unsigned conns : {64u, 256u, 1024u, 2048u}) {
    for (Stack s : {Stack::Linux, Stack::FlexToe}) {
      const auto r = run_case(s, conns);
      print_cell(static_cast<double>(conns), 0);
      print_cell(stack_name(s));
      print_cell(r.p50_norm, 3);
      print_cell(r.p1_norm, 3);
      print_cell(r.jfi, 3);
      end_row();
    }
  }
  std::printf(
      "\nPaper shape: FlexTOE median tracks fair share with 1p >= 0.67x "
      "and JFI ~0.98 even at 2K conns (Carousel pacing); Linux fairness\n"
      "collapses past 256 conns (JFI ~0.36 at 2K).\n");
  return 0;
}
