// Table 4: FlexTOE congestion control under incast. A FlexTOE machine
// sends 64 KB RPCs over many connections toward a server behind a shaped
// switch port (incast degree d -> 40/d Gbps) with WRED tail drops and ECN
// marking. Control-plane-driven DCTCP paces the offloaded flows through
// Carousel; the ablation turns that off (scheduler runs unpaced). Two
// series (cc_on / cc_off); rows are "<degree>/<conns>" cases. The
// inverted topology (stack under test on the sender side) comes from the
// workload engine's stack_hosts_clients mode.
#include <cstdio>

#include "common.hpp"

using namespace flextoe;
using namespace flextoe::benchx;

namespace {

workload::ScenarioResult run_case(unsigned degree, unsigned conns,
                                  bool cc_on, std::uint64_t seed,
                                  sim::TimePs warm, sim::TimePs span) {
  workload::ScenarioSpec spec;
  spec.app = workload::AppKind::RpcEcho;
  spec.stack = Stack::FlexToe;
  spec.stack_hosts_clients = true;  // FlexTOE sender is the system under test
  spec.server_cores = 8;
  spec.conns_per_node = conns;
  spec.pipeline = 1;
  spec.response_size = 32;
  spec.request_sizes = [] { return workload::fixed_size(64 * 1024); };
  spec.incast_degree = degree;
  spec.cc_enabled = cc_on;
  spec.seed = seed;
  workload::RunOptions ro;
  ro.warm_override = warm;
  ro.span_override = span;
  return workload::run_scenario(spec, ro);
}

}  // namespace

BENCH_SCENARIO(table4, "congestion control under incast") {
  const auto warm = ctx.pick(sim::ms(60), sim::ms(10));
  const auto span = ctx.pick(sim::ms(250), sim::ms(30));

  struct Case {
    unsigned deg, conns;
  };
  const auto cases = ctx.pick<std::vector<Case>>(
      {{4, 16}, {4, 64}, {4, 128}, {10, 10}, {20, 20}}, {{4, 16}});

  for (Case c : cases) {
    char label[32];
    std::snprintf(label, sizeof label, "%u/%u", c.deg, c.conns);
    for (bool cc_on : {true, false}) {
      const auto res =
          run_case(c.deg, c.conns, cc_on, ctx.seed(73), warm, span);
      auto& row =
          ctx.report().series(cc_on ? "cc_on" : "cc_off").row(label);
      row.set("gbps", res.server_rx_gbps);
      row.set("p99.99_ms", res.p9999_us / 1000.0);
      row.set("jfi", res.jfi);
    }
  }
  ctx.report().note(
      "Paper shape: CC achieves the shaped line rate with low tail and "
      "high JFI; disabling it causes excessive drops — tail latency\n"
      "inflated up to ~18x and fairness skewed (JFI down to ~0.46), worst "
      "at higher incast degrees.");
}
