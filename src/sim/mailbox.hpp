// Bounded SPSC mailbox for cross-domain event posts.
//
// Each ordered (sender, receiver) domain pair owns one Mailbox. The
// sender's worker thread pushes during its epoch window; the receiver's
// worker thread drains at the epoch boundary, after the scheduler
// barrier has stopped every producer. The ring is a classic
// single-producer/single-consumer circular buffer (acquire/release
// indices, no locks); posts that arrive while the ring is full spill to
// an overflow list that is touched by the producer only inside windows
// and by the consumer only at boundaries — the scheduler barrier
// sequences the two, so the spill path needs no atomics.
//
// Per-sender FIFO is part of the contract (tests/sim/domain_test.cc):
// once one post spills, younger posts follow it into the overflow list
// until the consumer empties it, so drain order is always push order.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace flextoe::sim {

class Mailbox {
 public:
  struct Post {
    TimePs t = 0;
    EventQueue::Callback cb;
  };

  explicit Mailbox(std::size_t capacity = 1024) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    ring_.resize(cap);
  }

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  // Producer side: enqueue a callback to run at absolute time `t` in the
  // receiving domain. Never blocks and never drops — a full ring spills.
  void push(TimePs t, EventQueue::Callback cb) {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (spilled_ || tail - head == ring_.size()) {
      spilled_ = true;
      ++spill_count_;
      overflow_.push_back(Post{t, std::move(cb)});
      return;
    }
    ring_[tail & (ring_.size() - 1)] = Post{t, std::move(cb)};
    tail_.store(tail + 1, std::memory_order_release);
  }

  // Consumer side: pop every pending post, oldest first, into
  // `f(time, callback)`. Only call from the receiver's thread at an
  // epoch boundary (producers quiesced by the scheduler barrier).
  template <typename F>
  void drain(F&& f) {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    std::size_t head = head_.load(std::memory_order_relaxed);
    while (head != tail) {
      Post& p = ring_[head & (ring_.size() - 1)];
      f(p.t, std::move(p.cb));
      ++head;
    }
    head_.store(head, std::memory_order_release);
    if (spilled_) {
      for (auto& p : overflow_) f(p.t, std::move(p.cb));
      overflow_.clear();
      spilled_ = false;
    }
  }

  bool empty() const {
    return head_.load(std::memory_order_acquire) ==
               tail_.load(std::memory_order_acquire) &&
           !spilled_;
  }
  std::size_t capacity() const { return ring_.size(); }
  // Posts that missed the ring and took the overflow path (bench/tests:
  // a healthy configuration keeps this near zero).
  std::uint64_t spills() const { return spill_count_; }

 private:
  std::vector<Post> ring_;
  std::atomic<std::size_t> head_{0};  // consumer cursor
  std::atomic<std::size_t> tail_{0};  // producer cursor
  // Producer-written inside windows, consumer-cleared at boundaries;
  // the scheduler barrier orders the two phases.
  bool spilled_ = false;
  std::deque<Post> overflow_;
  std::uint64_t spill_count_ = 0;
};

}  // namespace flextoe::sim
