// Figure 10: RPC throughput for a saturated single-threaded server,
// RX and TX separately, 250 and 1000 cycles of per-message application
// processing, across message sizes. One series per stack; rows are
// labeled "<rx|tx>/<app-cycles>/<msg-size>" (harness_test pins this
// contract: quick mode emits 4 rows in each of the 4 stack series).
#include <cstdio>

#include "common.hpp"

using namespace flextoe;
using namespace flextoe::benchx;

namespace {

struct Spans {
  sim::TimePs warm, span;
};

double run_rx(Stack s, std::uint32_t msg, std::uint32_t delay_cycles,
              unsigned seed, Spans t) {
  Testbed tb(seed);
  auto& server = add_server(tb, s, with_stack_cores(s, 1));
  // Clients produce RPCs of `msg` bytes; server consumes each after an
  // artificial delay and replies 32 B.
  app::EchoServer srv(tb.ev(), *server.stack,
                      {.port = 7, .app_cycles = delay_cycles,
                       .response_size = 32},
                      server.cpu.get());
  std::vector<std::unique_ptr<app::ClosedLoopClient>> clients;
  for (unsigned i = 0; i < 4; ++i) {
    auto& cn = tb.add_client_node();
    app::ClosedLoopClient::Params cp;
    cp.connections = 32;  // 128 connections total, as in the paper
    cp.pipeline = 4;      // multiple pipelined RPCs per connection
    cp.request_size = msg;
    cp.response_size = 32;
    clients.push_back(std::make_unique<app::ClosedLoopClient>(
        tb.ev(), *cn.stack, server.ip, cp));
    clients.back()->start();
  }

  tb.run_for(t.warm);
  std::uint64_t base = srv.bytes_rx();
  tb.run_for(t.span);
  const double bytes = static_cast<double>(srv.bytes_rx() - base);
  return bytes * 8.0 / sim::to_sec(t.span) / 1e9;  // Gbps
}

double run_tx(Stack s, std::uint32_t msg, std::uint32_t delay_cycles,
              unsigned seed, Spans t) {
  Testbed tb(seed);
  auto& server = add_server(tb, s, with_stack_cores(s, 1));
  // Server produces messages; clients consume.
  app::ProducerServer srv(tb.ev(), *server.stack,
                          {.port = 9, .frame_size = msg,
                           .app_cycles = delay_cycles},
                          server.cpu.get());
  std::vector<std::unique_ptr<app::DrainClient>> clients;
  for (unsigned i = 0; i < 4; ++i) {
    auto& cn = tb.add_client_node();
    app::DrainClient::Params dp;
    dp.connections = 32;
    dp.port = 9;
    clients.push_back(std::make_unique<app::DrainClient>(
        tb.ev(), *cn.stack, server.ip, dp));
    clients.back()->start();
  }

  tb.run_for(t.warm);
  std::uint64_t base = 0;
  for (auto& c : clients) base += c->bytes_rx();
  tb.run_for(t.span);
  std::uint64_t bytes = 0;
  for (auto& c : clients) bytes += c->bytes_rx();
  bytes -= base;
  return static_cast<double>(bytes) * 8.0 / sim::to_sec(t.span) / 1e9;
}

}  // namespace

BENCH_SCENARIO(fig10, "RPC goodput Gbps, RX and TX, vs message size") {
  const auto sizes = ctx.pick<std::vector<std::uint32_t>>(
      {32, 128, 512, 2048}, {32, 2048});
  const auto delays =
      ctx.pick<std::vector<std::uint32_t>>({250, 1000}, {250});
  const Spans t{ctx.pick(sim::ms(10), sim::ms(2)),
                ctx.pick(sim::ms(25), sim::ms(4))};

  for (std::uint32_t delay : delays) {
    for (const bool rx : {true, false}) {
      for (std::uint32_t msg : sizes) {
        char label[48];
        std::snprintf(label, sizeof label, "%s/%u/%u", rx ? "rx" : "tx",
                      delay, msg);
        for (Stack s : all_stacks()) {
          const double gbps = ctx.measure([&](int rep) {
            const unsigned seed = (rx ? 23u : 29u) + static_cast<unsigned>(rep);
            return rx ? run_rx(s, msg, delay, seed, t)
                      : run_tx(s, msg, delay, seed, t);
          });
          ctx.report().series(stack_name(s)).set(label, "gbps", gbps);
        }
      }
    }
  }
  ctx.report().note(
      "Paper shape: FlexTOE/TAS track closely (app core saturated) and "
      "reach line rate at 2KB; Linux/Chelsio are several x lower,\n"
      "gap larger on TX; gains shrink at 1000 cycles/message.");
}
