// Tap ports: monitor fan-out at the stage-graph edges. An attached
// observer sees every enabled edge crossing; attachment never perturbs
// simulated outcomes (taps are out-of-band); edge masks filter; detach
// fully silences. Includes the sketch monitor riding the Steer edge.
#include "pipeline/tap.hpp"

#include <gtest/gtest.h>

#include <array>
#include <optional>
#include <vector>

#include "core/config.hpp"
#include "core/datapath.hpp"
#include "host/payload_buf.hpp"
#include "monitor/sketch.hpp"
#include "net/packet.hpp"
#include "pipeline/graph.hpp"
#include "sim/domain.hpp"

namespace flextoe::pipeline {
namespace {

class RecordingTap : public TapObserver {
 public:
  void on_tap(const TapEvent& ev) override {
    ++counts_[static_cast<std::size_t>(ev.edge)];
    ++total_;
    last_now_ = ev.now;
  }
  std::uint64_t count(TapEdge e) const {
    return counts_[static_cast<std::size_t>(e)];
  }
  std::uint64_t total() const { return total_; }
  sim::TimePs last_now() const { return last_now_; }

 private:
  std::array<std::uint64_t, kTapEdgeCount> counts_{};
  std::uint64_t total_ = 0;
  sim::TimePs last_now_ = 0;
};

struct Rig {
  sim::Domain ev;
  host::PayloadBuf rx{1 << 16}, tx{1 << 16};
  std::optional<core::Datapath> dp;
  int notifies = 0;

  Rig() {
    core::Datapath::HostIface host;
    host.notify = [this](const host::CtxDesc&) { ++notifies; };
    host.to_control = [](const net::PacketPtr&) {};
    host.peer_fin = [](tcp::ConnId) {};
    dp.emplace(ev, core::agilio_cx40_config(), host);
    dp->set_local(net::MacAddr::from_u64(0x02AA), net::make_ip(10, 0, 0, 1));

    core::FlowInstall ins;
    ins.tuple = {net::make_ip(10, 0, 0, 1), net::make_ip(10, 0, 0, 2), 80,
                 9999};
    ins.local_mac = net::MacAddr::from_u64(0x02AA);
    ins.peer_mac = net::MacAddr::from_u64(0x02BB);
    ins.iss = 1000;
    ins.irs = 2000;
    ins.rx_buf = &rx;
    ins.tx_buf = &tx;
    dp->install_flow(ins);
  }

  void deliver_segments(std::uint32_t n, std::uint32_t len = 256) {
    for (std::uint32_t i = 0; i < n; ++i) {
      dp->deliver(net::make_tcp_packet(
          net::MacAddr::from_u64(0x02BB), net::MacAddr::from_u64(0x02AA),
          net::make_ip(10, 0, 0, 2), net::make_ip(10, 0, 0, 1), 9999, 80,
          2001 + i * len, 1001, net::tcpflag::kAck | net::tcpflag::kPsh,
          std::vector<std::uint8_t>(len, 0x42)));
    }
  }
};

// Attaching a tap changes nothing the simulation can observe: same
// segment/ACK/drop counts and a byte-equal telemetry snapshot.
TEST(Tap, AttachDoesNotPerturbOutcomes) {
  Rig plain;
  Rig tapped;
  RecordingTap tap;
  tapped.dp->graph().attach_tap(&tap, kTapAll);

  plain.deliver_segments(8);
  tapped.deliver_segments(8);
  plain.ev.run_all();
  tapped.ev.run_all();

  EXPECT_GT(tap.total(), 0u);  // the tap did observe traffic
  EXPECT_EQ(plain.dp->rx_segments(), tapped.dp->rx_segments());
  EXPECT_EQ(plain.dp->acks_sent(), tapped.dp->acks_sent());
  EXPECT_EQ(plain.dp->drops(), tapped.dp->drops());
  EXPECT_EQ(plain.notifies, tapped.notifies);
  EXPECT_EQ(plain.dp->telem().snapshot().to_json(),
            tapped.dp->telem().snapshot().to_json());
}

// With the full mask, a data segment's life crosses every edge at least
// once: admission, steer, post, DMA, notification, and the ACK's egress.
TEST(Tap, FullMaskSeesEveryEdge) {
  Rig r;
  RecordingTap tap;
  r.dp->graph().attach_tap(&tap, kTapAll);
  ASSERT_TRUE(r.dp->graph().tap_attached());

  r.deliver_segments(4);
  r.ev.run_all();

  EXPECT_GE(tap.count(TapEdge::Admit), 4u);
  EXPECT_GE(tap.count(TapEdge::Steer), 4u);
  EXPECT_GE(tap.count(TapEdge::Post), 4u);
  EXPECT_GE(tap.count(TapEdge::Dma), 4u);
  EXPECT_GE(tap.count(TapEdge::Notify), 1u);
  EXPECT_GE(tap.count(TapEdge::Egress), 4u);  // the ACKs
}

// The mask filters edges: a Steer-only tap sees Steer crossings and
// nothing else.
TEST(Tap, EdgeMaskFilters) {
  Rig r;
  RecordingTap tap;
  r.dp->graph().attach_tap(&tap, tap_bit(TapEdge::Steer));

  r.deliver_segments(4);
  r.ev.run_all();

  EXPECT_EQ(tap.count(TapEdge::Steer), 4u);
  EXPECT_EQ(tap.total(), tap.count(TapEdge::Steer));
  EXPECT_EQ(tap.count(TapEdge::Admit), 0u);
  EXPECT_EQ(tap.count(TapEdge::Egress), 0u);
}

// Detaching fully silences the fan-out.
TEST(Tap, DetachStopsEvents) {
  Rig r;
  RecordingTap tap;
  r.dp->graph().attach_tap(&tap, kTapAll);
  r.deliver_segments(4);
  r.ev.run_all();
  const std::uint64_t seen = tap.total();
  ASSERT_GT(seen, 0u);

  r.dp->graph().detach_taps();
  EXPECT_FALSE(r.dp->graph().tap_attached());
  r.deliver_segments(4);
  r.ev.run_all();
  EXPECT_EQ(tap.total(), seen);
}

// The sketch monitor on its Steer-edge mask counts exactly the delivered
// RX data segments (ACK contexts bypass the steer edge), keyed by the
// sequencer's flow-tuple hash.
TEST(Tap, SketchMonitorCountsSteeredSegments) {
  Rig r;
  monitor::SketchFlowMonitor mon;
  r.dp->graph().attach_tap(&mon, monitor::SketchFlowMonitor::kEdgeMask);

  const std::uint32_t kSegs = 12, kLen = 256;
  r.deliver_segments(kSegs, kLen);
  r.ev.run_all();

  EXPECT_EQ(mon.events(), kSegs);
  EXPECT_EQ(mon.total_bytes(), static_cast<std::uint64_t>(kSegs) * kLen);
  const auto top = mon.top(4);
  ASSERT_EQ(top.size(), 1u);  // one flow installed
  EXPECT_EQ(top[0].segments, kSegs);
  EXPECT_EQ(top[0].bytes, static_cast<std::uint64_t>(kSegs) * kLen);
}

}  // namespace
}  // namespace flextoe::pipeline
