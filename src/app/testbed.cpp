#include "app/testbed.hpp"

#include "telemetry/registry.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"

namespace flextoe::app {

Testbed::~Testbed() {
  for (auto& n : nodes_) {
    if (n->toe) {
      telemetry::accumulate(n->toe->datapath().telem().snapshot());
    }
  }
}

bool Testbed::dump_trace(const std::string& path) const {
  if (!trace::kCompiledIn || !trace::enabled()) return false;
  return trace::write_chrome_trace(path);
}

Testbed::Node& Testbed::finish_node(std::unique_ptr<Node> n,
                                    double nic_gbps) {
  const int port = next_port_++;
  n->uplink = std::make_unique<net::Link>(
      ev_, rng_.fork(), net::LinkParams{nic_gbps, sim::ns(500), 0.0});
  n->uplink->set_sink(sw_.ingress_sink(port));
  // Egress serialization toward this node happens at its NIC's rate.
  sw_.port_params(port).gbps = nic_gbps;

  if (n->toe) {
    n->toe->set_mac_tx(n->uplink.get());
    sw_.attach(port, &n->toe->mac_rx());
  } else {
    n->sw->set_tx_sink(n->uplink.get());
    sw_.attach(port, n->sw.get());
  }
  nodes_.push_back(std::move(n));
  return *nodes_.back();
}

Testbed::Node& Testbed::add_flextoe_node(NodeParams np,
                                         host::FlexToeNicConfig cfg) {
  auto n = std::make_unique<Node>();
  n->ip = next_ip();
  n->kind = "FlexTOE";
  n->cpu = std::make_unique<sim::CpuPool>(ev_, np.cores, np.cpu_clock);
  cfg.datapath.mac_gbps = np.nic_gbps;
  cfg.libtoe.sockbuf_bytes = np.sockbuf_bytes;
  cfg.control.sockbuf_bytes = np.sockbuf_bytes;
  n->toe = std::make_unique<host::FlexToeNic>(ev_, rng_.fork(),
                                              mac_for(n->ip), n->ip, cfg,
                                              n->cpu.get());
  n->stack = &n->toe->stack();
  return finish_node(std::move(n), np.nic_gbps);
}

Testbed::Node& Testbed::add_sw_node(NodeParams np,
                                    const baseline::Personality& pers,
                                    baseline::SwTcpConfig overrides) {
  auto n = std::make_unique<Node>();
  n->ip = next_ip();
  n->kind = pers.name;
  n->cpu = std::make_unique<sim::CpuPool>(ev_, np.cores, np.cpu_clock);
  n->cpu->set_serial_fraction(pers.serial_fraction);

  baseline::SwTcpConfig cfg = overrides;
  cfg.mac = mac_for(n->ip);
  cfg.ip = n->ip;
  cfg.sockbuf_bytes = np.sockbuf_bytes;
  cfg.ooo = pers.ooo;
  cfg.go_back_n = pers.go_back_n;
  cfg.costs = pers.costs;
  n->sw = std::make_unique<baseline::SwTcpStack>(ev_, rng_.fork(), cfg);
  n->sw->set_cpu(n->cpu.get());
  n->stack = n->sw.get();
  return finish_node(std::move(n), np.nic_gbps);
}

Testbed::Node& Testbed::add_client_node(double nic_gbps,
                                        std::size_t sockbuf_bytes) {
  auto n = std::make_unique<Node>();
  n->ip = next_ip();
  n->kind = "client";
  baseline::SwTcpConfig cfg;
  cfg.mac = mac_for(n->ip);
  cfg.ip = n->ip;
  cfg.sockbuf_bytes = sockbuf_bytes;
  n->sw = std::make_unique<baseline::SwTcpStack>(ev_, rng_.fork(), cfg);
  n->stack = n->sw.get();
  return finish_node(std::move(n), nic_gbps);
}

}  // namespace flextoe::app
