// Quickstart: bring up a FlexTOE-offloaded server and a client, run an
// echo round trip, and print the journey of the bytes.
//
// This shows the essential public API:
//   Testbed        — simulated machines + switch
//   FlexToeNic     — SmartNIC data-path + control plane + libTOE
//   tcp::StackIface— POSIX-like sockets (listen/connect/send/recv/close)
#include <cstdio>
#include <cstring>

#include "app/testbed.hpp"

using namespace flextoe;

int main() {
  // A testbed with one FlexTOE server machine and one client machine.
  app::Testbed tb(/*seed=*/42);
  auto& server = tb.add_flextoe_node({.cores = 2});
  auto& client = tb.add_client_node();

  // --- Server: listen and echo whatever arrives ---
  tcp::StackCallbacks scb;
  scb.on_data = [&](tcp::ConnId c) {
    std::uint8_t buf[4096];
    std::size_t n;
    while ((n = server.stack->recv(c, buf)) > 0) {
      std::printf("[server] received %zu bytes: \"%.*s\" — echoing back\n",
                  n, static_cast<int>(n), buf);
      server.stack->send(c, std::span(buf, n));
    }
  };
  server.stack->set_callbacks(scb);
  server.stack->listen(7);

  // --- Client: connect, send a message, await the echo ---
  const char msg[] = "hello, FlexTOE!";
  bool done = false;
  tcp::StackCallbacks ccb;
  ccb.on_connected = [&](tcp::ConnId c, bool ok) {
    std::printf("[client] connected: %s\n", ok ? "yes" : "no");
    if (ok) {
      client.stack->send(
          c, std::span(reinterpret_cast<const std::uint8_t*>(msg),
                       sizeof msg - 1));
    }
  };
  ccb.on_data = [&](tcp::ConnId c) {
    std::uint8_t buf[4096];
    std::size_t n;
    while ((n = client.stack->recv(c, buf)) > 0) {
      std::printf("[client] echo received: \"%.*s\"\n",
                  static_cast<int>(n), buf);
      done = true;
      client.stack->close(c);
    }
  };
  client.stack->set_callbacks(ccb);
  client.stack->connect(server.ip, 7);

  tb.run_for(sim::ms(50));

  auto& dp = server.toe->datapath();
  std::printf(
      "\n[datapath] rx segments: %llu, tx segments: %llu, ACKs: %llu, "
      "forwarded to control plane: %llu\n",
      static_cast<unsigned long long>(dp.rx_segments()),
      static_cast<unsigned long long>(dp.tx_segments()),
      static_cast<unsigned long long>(dp.acks_sent()),
      static_cast<unsigned long long>(dp.to_control_count()));
  std::printf("[result] %s\n", done ? "echo round trip OK" : "FAILED");
  return done ? 0 : 1;
}
