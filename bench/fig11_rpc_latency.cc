// Figure 11: single-connection RPC RTT — median, 99p and 99.99p across
// message sizes for every stack. One series per stack; rows are message
// sizes.
#include "common.hpp"

using namespace flextoe;
using namespace flextoe::benchx;

BENCH_SCENARIO(fig11, "RPC RTT us (p50 / p99 / p99.99) vs message size") {
  const auto sizes = ctx.pick<std::vector<std::uint32_t>>(
      {32, 64, 128, 256, 512, 1024, 2048}, {32, 1024});
  const auto warm = ctx.pick(sim::ms(5), sim::ms(2));
  const auto span = ctx.pick(sim::ms(60), sim::ms(8));

  for (std::uint32_t msg : sizes) {
    for (Stack s : all_stacks()) {
      Testbed tb(ctx.seed(31));
      auto& server = add_server(tb, s, with_stack_cores(s, 1));
      auto& client = tb.add_client_node();

      app::EchoServer srv(tb.ev(), *server.stack, {.port = 7},
                          server.cpu.get());
      app::ClosedLoopClient::Params cp;
      cp.connections = 1;
      cp.pipeline = 1;
      cp.request_size = msg;
      app::ClosedLoopClient cli(tb.ev(), *client.stack, server.ip, cp);
      cli.start();

      tb.run_for(warm);
      cli.clear_stats();
      tb.run_for(span);

      auto& row = ctx.report().series(stack_name(s)).row(
          std::to_string(msg));
      row.set("p50", cli.latency().percentile(50));
      row.set("p99", cli.latency().percentile(99));
      row.set("p99.99", cli.latency().percentile(99.99));
    }
  }
  ctx.report().note(
      "Paper shape: Linux median >=5x the others; FlexTOE median ~1.3x "
      "Chelsio/TAS (pipeline depth) but tail up to 3.2x smaller than\n"
      "Chelsio; FlexTOE nearly flat as size grows past one MSS.");
}
