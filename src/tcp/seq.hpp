// TCP sequence number arithmetic (mod 2^32, RFC 793 style).
#pragma once

#include <cstdint>

namespace flextoe::tcp {

using SeqNum = std::uint32_t;

// Comparisons are valid when |a - b| < 2^31.
constexpr bool seq_lt(SeqNum a, SeqNum b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
constexpr bool seq_le(SeqNum a, SeqNum b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}
constexpr bool seq_gt(SeqNum a, SeqNum b) { return seq_lt(b, a); }
constexpr bool seq_ge(SeqNum a, SeqNum b) { return seq_le(b, a); }

// a - b, valid when a is "ahead of or equal to" b.
constexpr std::uint32_t seq_diff(SeqNum a, SeqNum b) { return a - b; }

constexpr SeqNum seq_max(SeqNum a, SeqNum b) { return seq_ge(a, b) ? a : b; }
constexpr SeqNum seq_min(SeqNum a, SeqNum b) { return seq_le(a, b) ? a : b; }

// Default maximum segment size: 1500 MTU - 20 IPv4 - 32 TCP (w/ timestamps).
inline constexpr std::uint32_t kDefaultMss = 1448;

// All stacks in this ecosystem use a fixed window scale: the 16-bit TCP
// window field advertises 256-byte units (negotiated WScale elided; both
// endpoints are ours — documented in DESIGN.md).
inline constexpr unsigned kWindowShift = 8;

}  // namespace flextoe::tcp
