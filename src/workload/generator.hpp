// Composable traffic generator: one pool of persistent (or churning)
// connections against a tcp::StackIface, driven by a pluggable
// ArrivalModel (closed loop / Poisson / ON-OFF) and SizeModel. This is
// the single client-pool implementation behind app::KvClient,
// app::ClosedLoopClient, and every registered scenario — the per-bench
// hand-rolled loops the paper-repro started with are gone.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "app/framer.hpp"
#include "sim/domain.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"
#include "tcp/stack_iface.hpp"
#include "workload/arrival.hpp"
#include "workload/size_model.hpp"

namespace flextoe::workload {

struct TrafficGenParams {
  unsigned connections = 1;
  // Closed loop: requests kept in flight per connection.
  unsigned pipeline = 1;
  std::uint16_t port = 7;
  sim::TimePs connect_stagger = sim::us(5);
  std::uint64_t seed = 42;
  // Open loop: arrivals beyond this many outstanding requests on the
  // chosen connection are dropped (generator back-pressure bound).
  unsigned max_outstanding = 4096;
  // Connection churn: recycle (close + reconnect) a connection after
  // this many completed requests. 0 = persistent connections.
  std::uint64_t requests_per_conn = 0;
  sim::TimePs reconnect_delay = sim::us(5);
  // Optional shared latency sink (merges several generators' samples,
  // e.g. one per client node in a scenario). Null: private accumulator.
  sim::Percentiles* latency_sink = nullptr;
};

class TrafficGen {
 public:
  // Builds the full wire bytes of one request (including framing) of
  // roughly `size_hint` payload bytes. Default: a length-prefixed
  // frame of exactly size_hint payload bytes.
  using RequestFactory =
      std::function<std::vector<std::uint8_t>(sim::Rng&, std::uint32_t)>;

  TrafficGen(sim::Domain& ev, tcp::StackIface& stack,
             net::Ipv4Addr server_ip, TrafficGenParams p,
             std::unique_ptr<ArrivalModel> arrival = nullptr,  // null: closed
             std::unique_ptr<SizeModel> sizes = nullptr,  // null: fixed 64 B
             RequestFactory make_request = nullptr);

  void start();
  // Stops issuing new requests (outstanding ones may still complete).
  void stop() { stopped_ = true; }

  std::uint64_t completed() const { return completed_; }
  std::uint64_t issued() const { return issued_; }
  std::uint64_t bytes_rx() const { return bytes_rx_; }
  // Open-loop arrivals dropped because the target connection already
  // had max_outstanding requests queued.
  std::uint64_t overload_drops() const { return overload_drops_; }
  // Connections recycled by churn (since clear_stats()).
  std::uint64_t reconnects() const { return reconnects_; }
  // Successful connects (cumulative; grows under churn).
  unsigned connected() const { return connected_; }

  sim::Percentiles& latency() {
    return p_.latency_sink != nullptr ? *p_.latency_sink : latency_;
  }
  std::vector<double> per_conn_completed() const;
  void clear_stats();

 private:
  struct Conn {
    tcp::ConnId id = tcp::kInvalidConn;
    app::FrameReader reader;
    std::deque<sim::TimePs> sent_at;
    std::vector<std::uint8_t> pending_tx;
    std::size_t pending_off = 0;
    std::uint64_t completed = 0;       // since clear_stats()
    std::uint64_t life_completed = 0;  // since (re)connect, for churn
    bool up = false;
  };

  void open_conn(std::size_t idx);
  void recycle(std::size_t idx);
  void issue(std::size_t idx);
  void flush(std::size_t idx);
  void on_data(std::size_t idx);
  void schedule_next_arrival();

  sim::Domain& ev_;
  tcp::StackIface& stack_;
  net::Ipv4Addr server_ip_;
  TrafficGenParams p_;
  std::unique_ptr<ArrivalModel> arrival_;
  std::unique_ptr<SizeModel> sizes_;
  RequestFactory make_request_;
  bool closed_loop_ = true;

  sim::Rng rng_;
  std::vector<Conn> conns_;
  std::unordered_map<tcp::ConnId, std::size_t> by_id_;
  std::size_t arrival_rr_ = 0;  // round-robin cursor for open-loop issue
  std::uint64_t completed_ = 0;
  std::uint64_t issued_ = 0;
  std::uint64_t bytes_rx_ = 0;
  std::uint64_t overload_drops_ = 0;
  std::uint64_t reconnects_ = 0;
  unsigned connected_ = 0;
  bool stopped_ = false;
  sim::Percentiles latency_{1 << 18};
};

// Request factory for the memcached-style KV protocol (app/kv.hpp):
// GET/SET mix over a bounded key space. The SizeModel drives the SET
// value length (size_hint); GETs ignore it.
struct KvMix {
  std::uint32_t key_size = 32;
  std::uint32_t key_space = 10'000;
  double get_ratio = 0.9;
};
TrafficGen::RequestFactory kv_request_factory(KvMix mix);

}  // namespace flextoe::workload
