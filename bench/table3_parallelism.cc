// Table 3: FlexTOE data-path parallelism breakdown — echo benchmark with
// 64 connections, one 2 KB RPC in flight each, as data-path parallelism
// levels are progressively enabled. One series; rows are ablation steps
// with throughput, speedup over baseline, and latency percentiles.
#include <algorithm>

#include "common.hpp"

using namespace flextoe;
using namespace flextoe::benchx;

namespace {

struct Res {
  double mbps;
  double p50_us, p9999_us;
};

Res run_config(const core::DatapathConfig& dp_cfg, std::uint64_t seed,
               sim::TimePs warm, sim::TimePs span) {
  Testbed tb(seed);
  host::FlexToeNicConfig cfg;
  cfg.datapath = dp_cfg;
  auto& server = tb.add_flextoe_node({.cores = 8}, cfg);
  app::EchoServer srv(tb.ev(), *server.stack, {.port = 7});

  std::vector<std::unique_ptr<app::ClosedLoopClient>> clients;
  for (unsigned i = 0; i < 2; ++i) {
    auto& cn = tb.add_client_node();
    app::ClosedLoopClient::Params cp;
    cp.connections = 32;
    cp.pipeline = 1;  // one 2 KB RPC in flight per connection
    cp.request_size = 2048;
    clients.push_back(std::make_unique<app::ClosedLoopClient>(
        tb.ev(), *cn.stack, server.ip, cp));
    clients.back()->start();
  }

  tb.run_for(warm);
  std::uint64_t base = 0;
  for (auto& c : clients) {
    base += c->completed();
    c->latency().clear();
  }
  tb.run_for(span);
  std::uint64_t done = 0;
  for (auto& c : clients) done += c->completed();
  done -= base;

  Res r;
  r.mbps = static_cast<double>(done) * 2048 * 2 * 8.0 /
           sim::to_sec(span) / 1e6;
  // Merge latency across clients (approximate percentiles by averaging
  // medians; take the worst tail).
  r.p50_us = (clients[0]->latency().percentile(50) +
              clients[1]->latency().percentile(50)) /
             2.0;
  r.p9999_us = std::max(clients[0]->latency().percentile(99.99),
                        clients[1]->latency().percentile(99.99));
  return r;
}

}  // namespace

BENCH_SCENARIO(table3, "data-path parallelism breakdown") {
  const auto warm = ctx.pick(sim::ms(30), sim::ms(6));
  const auto span = ctx.pick(sim::ms(60), sim::ms(10));

  struct Step {
    const char* name;
    core::DatapathConfig cfg;
    // Marks the two rows the reorder-cost series is derived from (by
    // flag, not by label string, so renaming a row cannot silently
    // zero the series).
    bool full_config = false;
    bool no_reorder = false;
  };
  const std::vector<Step> steps = {
      {"Baseline(RTC)", core::ablation_baseline()},
      {"+Pipelining", core::ablation_pipelined()},
      {"+IntraFPC(8t)", core::ablation_threads()},
      {"+Repl pre/post", core::ablation_replicated()},
      {"+Flow-groups", core::ablation_flow_groups(), /*full_config=*/true},
      // Sequencing ablation (§3.2): the full configuration with both
      // reorder points in pass-through. The delta against +Flow-groups
      // prices the paper's per-flow-group ordering machinery.
      {"-Reordering", core::ablation_no_reorder(), false,
       /*no_reorder=*/true},
  };

  auto& series = ctx.report().series("parallelism");
  double base_mbps = 0;
  Res full{}, no_reorder{};
  for (const auto& st : steps) {
    const Res r = run_config(st.cfg, ctx.seed(71), warm, span);
    if (base_mbps == 0) base_mbps = r.mbps;
    if (st.full_config) full = r;
    if (st.no_reorder) no_reorder = r;
    auto& row = series.row(st.name);
    row.set("mbps", r.mbps);
    row.set("x", base_mbps > 0 ? r.mbps / base_mbps : 0);
    row.set("p50_us", r.p50_us);
    row.set("p99.99_us", r.p9999_us);
  }

  // The reorder cost as a reported number: what keeping segments in
  // per-flow-group order costs (or saves — reordering also prevents
  // spurious dupACK fast-retransmits) relative to the full data-path.
  auto& cost = ctx.report().series("reorder_cost").row("full_vs_no_reorder");
  cost.set("with_mbps", full.mbps);
  cost.set("without_mbps", no_reorder.mbps);
  cost.set("cost_pct", no_reorder.mbps > 0
                           ? (no_reorder.mbps - full.mbps) * 100.0 /
                                 no_reorder.mbps
                           : 0);
  cost.set("p9999_delta_us", full.p9999_us - no_reorder.p9999_us);

  ctx.report().note(
      "Paper shape: pipelining 46x, +threads 2.25x, +replication 1.35x, "
      "+flow-groups 2x — cumulative ~286x; each level is necessary.");
  ctx.report().note(
      "-Reordering prices the §3.2 sequencing machinery: reorder points "
      "in pass-through, parallel stages may reorder within a flow group.");
}
