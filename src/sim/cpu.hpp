// Host CPU model: a pool of cores that execute cycle-charged work items.
//
// Used to model host-side processing costs (driver, TCP stack, sockets,
// application) calibrated from the paper's Table 1. A configurable
// serial fraction models coarse-grained locking (Linux in-kernel stack):
// that share of every work item must hold a global lock, which caps
// multicore scalability (Amdahl).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/domain.hpp"
#include "sim/time.hpp"

namespace flextoe::sim {

// Cycle accounting categories (rows of Table 1).
enum class CpuCat : std::uint8_t {
  Driver = 0,
  Stack,
  Sockets,
  App,
  Other,
  kCount,
};

class CpuPool {
 public:
  CpuPool(Domain& ev, unsigned cores, ClockDomain clock = kHostClock)
      : ev_(ev), clock_(clock), core_free_(cores, 0) {}

  // Fraction of each work item that serializes on a global lock.
  void set_serial_fraction(double f) { serial_frac_ = f; }

  // Executes `cycles` of work on the earliest-available core, starting no
  // earlier than `not_before` (used to serialize per-connection work),
  // then invokes `cb`. Returns the completion time.
  TimePs run(std::uint64_t cycles, CpuCat cat, TimePs not_before,
             std::function<void()> cb);

  TimePs run(std::uint64_t cycles, CpuCat cat, std::function<void()> cb) {
    return run(cycles, cat, 0, std::move(cb));
  }

  // Pure accounting (no scheduling delay) — for costs that are charged
  // but never block forward progress.
  void account(std::uint64_t cycles, CpuCat cat) {
    cycles_[static_cast<std::size_t>(cat)] += cycles;
  }

  // Moves already-charged cycles between accounting categories (work that
  // ran as one item but spans Table-1 rows, e.g. driver + stack).
  void reattribute(CpuCat from, CpuCat to, std::uint64_t cycles) {
    cycles_[static_cast<std::size_t>(from)] -= cycles;
    cycles_[static_cast<std::size_t>(to)] += cycles;
  }

  unsigned cores() const { return static_cast<unsigned>(core_free_.size()); }
  const ClockDomain& clock() const { return clock_; }

  std::uint64_t cycles(CpuCat cat) const {
    return cycles_[static_cast<std::size_t>(cat)];
  }
  std::uint64_t total_cycles() const {
    std::uint64_t t = 0;
    for (auto c : cycles_) t += c;
    return t;
  }
  void clear_accounting() { cycles_.fill(0); }

  // Aggregate core-busy fraction over `elapsed`.
  double utilization(TimePs elapsed) const {
    if (elapsed == 0) return 0;
    return static_cast<double>(busy_) /
           (static_cast<double>(elapsed) * cores());
  }

 private:
  Domain& ev_;
  ClockDomain clock_;
  std::vector<TimePs> core_free_;
  TimePs lock_free_ = 0;
  double serial_frac_ = 0.0;
  std::array<std::uint64_t, static_cast<std::size_t>(CpuCat::kCount)>
      cycles_{};
  TimePs busy_ = 0;
};

}  // namespace flextoe::sim
