#include "tcp/ooo.hpp"

#include <gtest/gtest.h>

namespace flextoe::tcp {
namespace {

constexpr std::uint32_t kWin = 64 * 1024;

TEST(SingleInterval, InOrderAdvances) {
  SingleIntervalTracker t;
  auto r = t.on_segment(/*rcv_nxt=*/1000, /*seq=*/1000, /*len=*/100, kWin);
  EXPECT_TRUE(r.accept);
  EXPECT_EQ(r.buf_offset, 0u);
  EXPECT_EQ(r.advance, 100u);
  EXPECT_FALSE(r.duplicate);
}

TEST(SingleInterval, StaleSegmentIsDuplicate) {
  SingleIntervalTracker t;
  auto r = t.on_segment(1000, 500, 100, kWin);
  EXPECT_FALSE(r.accept);
  EXPECT_TRUE(r.duplicate);
  EXPECT_EQ(r.advance, 0u);
}

TEST(SingleInterval, PartialOverlapTrimsFront) {
  SingleIntervalTracker t;
  auto r = t.on_segment(1000, 950, 100, kWin);
  EXPECT_TRUE(r.accept);
  EXPECT_EQ(r.buf_offset, 0u);
  EXPECT_EQ(r.accept_len, 50u);
  EXPECT_EQ(r.advance, 50u);
}

TEST(SingleInterval, HoleCreatesInterval) {
  SingleIntervalTracker t;
  auto r = t.on_segment(1000, 1200, 100, kWin);
  EXPECT_TRUE(r.accept);
  EXPECT_EQ(r.buf_offset, 200u);
  EXPECT_EQ(r.advance, 0u);
  EXPECT_TRUE(r.duplicate);  // triggers dup-ACK with expected seq
  EXPECT_TRUE(t.has_interval());
  EXPECT_EQ(t.ooo_start(), 1200u);
  EXPECT_EQ(t.ooo_len(), 100u);
}

TEST(SingleInterval, FillingHoleMergesInterval) {
  SingleIntervalTracker t;
  t.on_segment(1000, 1200, 100, kWin);  // interval [1200, 1300)
  auto r = t.on_segment(1000, 1000, 200, kWin);  // fills hole exactly
  EXPECT_TRUE(r.accept);
  EXPECT_EQ(r.advance, 300u);  // 200 in-order + 100 merged
  EXPECT_FALSE(t.has_interval());
}

TEST(SingleInterval, AdjacentSegmentExtendsInterval) {
  SingleIntervalTracker t;
  t.on_segment(1000, 1200, 100, kWin);
  auto r = t.on_segment(1000, 1300, 100, kWin);  // adjacent after
  EXPECT_TRUE(r.accept);
  EXPECT_EQ(t.ooo_len(), 200u);
  r = t.on_segment(1000, 1100, 100, kWin);  // adjacent before
  EXPECT_TRUE(r.accept);
  EXPECT_EQ(t.ooo_start(), 1100u);
  EXPECT_EQ(t.ooo_len(), 300u);
}

TEST(SingleInterval, DisjointSecondHoleDropped) {
  SingleIntervalTracker t;
  t.on_segment(1000, 1200, 100, kWin);
  // A second hole that doesn't touch [1200,1300): dropped (paper §3.1.3).
  auto r = t.on_segment(1000, 2000, 100, kWin);
  EXPECT_FALSE(r.accept);
  EXPECT_TRUE(r.duplicate);
  EXPECT_EQ(t.ooo_len(), 100u);
}

TEST(SingleInterval, InOrderPartiallyIntoInterval) {
  SingleIntervalTracker t;
  t.on_segment(1000, 1200, 100, kWin);
  // In-order chunk that overlaps the interval start.
  auto r = t.on_segment(1000, 1000, 250, kWin);
  EXPECT_TRUE(r.accept);
  EXPECT_EQ(r.advance, 300u);  // through end of merged interval
  EXPECT_FALSE(t.has_interval());
}

TEST(SingleInterval, BeyondWindowRejected) {
  SingleIntervalTracker t;
  auto r = t.on_segment(1000, 1000 + kWin, 100, kWin);
  EXPECT_FALSE(r.accept);
  EXPECT_TRUE(r.duplicate);
}

TEST(SingleInterval, TailTrimmedToWindow) {
  SingleIntervalTracker t;
  auto r = t.on_segment(1000, 1000 + kWin - 50, 100, kWin);
  EXPECT_TRUE(r.accept);
  EXPECT_EQ(r.accept_len, 50u);
}

TEST(SingleInterval, SequenceWraparound) {
  SingleIntervalTracker t;
  const SeqNum near_wrap = 0xFFFFFFF0u;
  auto r = t.on_segment(near_wrap, near_wrap, 0x20, kWin);  // wraps past 0
  EXPECT_TRUE(r.accept);
  EXPECT_EQ(r.advance, 0x20u);
  // Now rcv_nxt = 0x10 after wrap; in-order continues.
  r = t.on_segment(0x10, 0x10, 10, kWin);
  EXPECT_TRUE(r.accept);
}

TEST(SingleInterval, ZeroLengthIgnored) {
  SingleIntervalTracker t;
  auto r = t.on_segment(1000, 1000, 0, kWin);
  EXPECT_FALSE(r.accept);
  EXPECT_FALSE(r.duplicate);
}

TEST(MultiInterval, TwoDisjointHolesBothBuffered) {
  MultiIntervalTracker t;
  auto r1 = t.on_segment(1000, 1200, 100, kWin);
  EXPECT_TRUE(r1.accept);
  auto r2 = t.on_segment(1000, 2000, 100, kWin);
  EXPECT_TRUE(r2.accept);
  EXPECT_EQ(t.num_intervals(), 2u);
  // Fill first hole: advance through first interval only.
  auto r3 = t.on_segment(1000, 1000, 200, kWin);
  EXPECT_EQ(r3.advance, 300u);
  EXPECT_EQ(t.num_intervals(), 1u);
  // Fill second hole.
  auto r4 = t.on_segment(1300, 1300, 700, kWin);
  EXPECT_EQ(r4.advance, 800u);  // 700 + merged 100
  EXPECT_EQ(t.num_intervals(), 0u);
}

TEST(MultiInterval, OverlappingInsertsMerge) {
  MultiIntervalTracker t;
  t.on_segment(0, 100, 50, kWin);
  t.on_segment(0, 140, 60, kWin);  // overlaps [100,150)
  EXPECT_EQ(t.num_intervals(), 1u);
  auto r = t.on_segment(0, 0, 100, kWin);
  EXPECT_EQ(r.advance, 200u);
}

TEST(NoOoo, HoleDropsEverything) {
  NoOooTracker t;
  auto r = t.on_segment(1000, 1200, 100, kWin);
  EXPECT_FALSE(r.accept);
  EXPECT_TRUE(r.duplicate);
  r = t.on_segment(1000, 1000, 100, kWin);
  EXPECT_TRUE(r.accept);
  EXPECT_EQ(r.advance, 100u);
}

TEST(SeqMath, ComparisonsAcrossWrap) {
  EXPECT_TRUE(seq_lt(0xFFFFFFF0u, 0x10u));
  EXPECT_TRUE(seq_gt(0x10u, 0xFFFFFFF0u));
  EXPECT_TRUE(seq_le(5u, 5u));
  EXPECT_EQ(seq_diff(0x10u, 0xFFFFFFF0u), 0x20u);
  EXPECT_EQ(seq_max(0xFFFFFFF0u, 0x10u), 0x10u);
  EXPECT_EQ(seq_min(0xFFFFFFF0u, 0x10u), 0xFFFFFFF0u);
}

}  // namespace
}  // namespace flextoe::tcp
