// Tap ports: a monitor fan-out attachable at the stage-graph edges
// without touching stage bodies. A registered TapObserver sees a
// TapEvent — edge id, simulated timestamp, the segment's hot block, and
// the packet when one is attached — every time a segment crosses an
// enabled edge. Taps are out-of-band like tracing: they charge no
// simulated cycles, never change routing, and cost one pointer compare
// per edge crossing while detached.
#pragma once

#include <cstdint>

#include "core/seg_ctx.hpp"
#include "net/packet.hpp"
#include "sim/time.hpp"

namespace flextoe::pipeline {

// The spliceable edges of the stage graph (the typed Port boundaries).
enum class TapEdge : std::uint8_t {
  Admit,   // sequencer admission (RX/TX/HC ingress)
  Steer,   // pre -> protocol reorder point
  Post,    // protocol -> post
  Dma,     // post -> DMA engine
  Notify,  // post/DMA -> context-queue notification
  Egress,  // DMA -> NBI reorder point (MAC TX)
};
inline constexpr std::size_t kTapEdgeCount = 6;

constexpr std::uint32_t tap_bit(TapEdge e) {
  return 1u << static_cast<std::uint8_t>(e);
}
inline constexpr std::uint32_t kTapAll = (1u << kTapEdgeCount) - 1;

inline const char* tap_edge_name(TapEdge e) {
  switch (e) {
    case TapEdge::Admit:
      return "admit";
    case TapEdge::Steer:
      return "steer";
    case TapEdge::Post:
      return "post";
    case TapEdge::Dma:
      return "dma";
    case TapEdge::Notify:
      return "notify";
    case TapEdge::Egress:
      return "egress";
  }
  return "?";
}

struct TapEvent {
  TapEdge edge;
  sim::TimePs now;            // simulated time of the crossing
  const core::SegHot& hot;    // the segment's hot block (steering/keys)
  const net::Packet* pkt;     // attached packet, nullptr when none
};

class TapObserver {
 public:
  virtual ~TapObserver() = default;
  virtual void on_tap(const TapEvent& ev) = 0;
};

}  // namespace flextoe::pipeline
