// Burst-size policy for batched stage dispatch.
//
// One process-wide default (settable by the bench harness via --batch)
// plus a per-config override (`DatapathConfig::batch_size`). Burst size
// is a host-side dispatch detail: it bounds how many ready items an FPC
// work ring harvests per drain pass and how many segment contexts the
// datapath hands the graph per burst call. It never changes simulated
// timing or event order — golden outputs are byte-identical at any
// batch size.
#pragma once

namespace flextoe::core {

// Default burst size (DPDK-style rx/tx bursts and the source paper's
// work-ring drain loop both sit in the 16-64 range).
inline constexpr unsigned kDefaultBatchSize = 32;

// Upper bound on one burst: lets burst paths use fixed stack arrays
// instead of heap scratch.
inline constexpr unsigned kMaxBurst = 64;

// Process-wide default used when a config leaves batch_size at 0.
unsigned default_batch_size();

// Sets the process default (bench harness --batch). 0 restores
// kDefaultBatchSize.
void set_default_batch_size(unsigned n);

// Effective burst size for a config value: the config override when
// non-zero, else the process default, clamped to [1, kMaxBurst].
unsigned resolve_batch(unsigned cfg_batch);

}  // namespace flextoe::core
