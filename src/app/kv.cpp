#include "app/kv.hpp"

#include <cstdio>

namespace flextoe::app {

using tcp::ConnId;

namespace {

void put_u32(std::vector<std::uint8_t>& v, std::uint32_t x) {
  v.push_back(static_cast<std::uint8_t>(x));
  v.push_back(static_cast<std::uint8_t>(x >> 8));
  v.push_back(static_cast<std::uint8_t>(x >> 16));
  v.push_back(static_cast<std::uint8_t>(x >> 24));
}

}  // namespace

// ------------------------------------------------------------ KvServer

KvServer::KvServer(sim::Domain& ev, tcp::StackIface& stack, Params p,
                   sim::CpuPool* cpu)
    : ev_(ev), stack_(stack), p_(p), cpu_(cpu) {
  tcp::StackCallbacks cbs;
  cbs.on_accept = [this](ConnId c) { conns_[c]; };
  cbs.on_data = [this](ConnId c) { on_data(c); };
  cbs.on_sendable = [this](ConnId c) { flush(c); };
  cbs.on_close = [this](ConnId c) {
    stack_.close(c);
    conns_.erase(c);
  };
  stack_.set_callbacks(std::move(cbs));
  stack_.listen(p_.port);
}

void KvServer::on_data(ConnId c) {
  auto it = conns_.find(c);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  std::uint8_t buf[16 * 1024];
  std::size_t n;
  while ((n = stack_.recv(c, buf)) > 0) {
    conn.reader.feed(std::span(buf, n));
  }
  std::vector<std::uint8_t> frame;
  while (conn.reader.next(frame)) {
    if (cpu_ != nullptr && p_.app_cycles > 0) {
      conn.chain = cpu_->run(p_.app_cycles, sim::CpuCat::App, conn.chain,
                             [this, c, f = std::move(frame)]() mutable {
                               handle(c, std::move(f));
                             });
      frame = {};
    } else {
      handle(c, std::move(frame));
      frame = {};
    }
  }
}

void KvServer::handle(ConnId c, std::vector<std::uint8_t> req) {
  auto it = conns_.find(c);
  if (it == conns_.end()) return;
  if (req.size() < 7) return;  // malformed

  const std::uint8_t op = req[0];
  const std::uint16_t keylen =
      static_cast<std::uint16_t>(req[1] | (req[2] << 8));
  const std::uint32_t vallen = static_cast<std::uint32_t>(
      req[3] | (req[4] << 8) | (req[5] << 16) |
      (static_cast<std::uint32_t>(req[6]) << 24));
  if (req.size() < 7u + keylen + (op == 1 ? vallen : 0)) return;

  std::string key(reinterpret_cast<const char*>(req.data() + 7), keylen);

  std::vector<std::uint8_t> resp;
  if (op == 1) {  // SET
    ++sets_;
    store_.set(key, std::vector<std::uint8_t>(
                        req.begin() + 7 + keylen,
                        req.begin() + 7 + keylen + vallen));
    resp.reserve(4 + 5);
    put_u32(resp, 5);
    resp.push_back(0);  // OK
    put_u32(resp, 0);
  } else {  // GET
    ++gets_;
    const auto* val = store_.get(key);
    if (val == nullptr) {
      ++misses_;
      put_u32(resp, 5);
      resp.push_back(1);  // MISS
      put_u32(resp, 0);
    } else {
      put_u32(resp, static_cast<std::uint32_t>(5 + val->size()));
      resp.push_back(0);
      put_u32(resp, static_cast<std::uint32_t>(val->size()));
      resp.insert(resp.end(), val->begin(), val->end());
    }
  }
  it->second.out.push_back(std::move(resp));
  flush(c);
}

void KvServer::flush(ConnId c) {
  auto it = conns_.find(c);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  while (!conn.out.empty()) {
    auto& front = conn.out.front();
    const std::size_t n = stack_.send(
        c, std::span(front.data() + conn.out_off,
                     front.size() - conn.out_off));
    conn.out_off += n;
    if (conn.out_off < front.size()) return;
    conn.out.pop_front();
    conn.out_off = 0;
  }
}

// ------------------------------------------------------------ KvClient

namespace {

workload::TrafficGenParams kv_gen_params(const KvClient::Params& p) {
  workload::TrafficGenParams gp;
  gp.connections = p.connections;
  gp.pipeline = p.pipeline;
  gp.port = p.port;
  gp.connect_stagger = sim::us(3);
  gp.seed = p.seed;
  return gp;
}

}  // namespace

KvClient::KvClient(sim::Domain& ev, tcp::StackIface& stack,
                   net::Ipv4Addr server_ip, Params p)
    : gen_(ev, stack, server_ip, kv_gen_params(p),
           workload::closed_loop_arrival(),
           workload::fixed_size(p.value_size),
           workload::kv_request_factory(workload::KvMix{
               .key_size = p.key_size,
               .key_space = p.key_space,
               .get_ratio = p.get_ratio,
           })) {}

}  // namespace flextoe::app
