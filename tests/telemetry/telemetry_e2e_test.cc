// End-to-end telemetry tests: a scenario run populates the per-stage /
// per-FPC / per-flow-group / host-queue taxonomies with non-zero counts,
// drops are attributed to exactly one taxonomy reason, the runtime
// toggle stops recording, and instrumentation never perturbs simulated
// results (out-of-band guarantee).
#include <gtest/gtest.h>

#include <numeric>

#include "baseline/sw_tcp.hpp"
#include "host/flextoe_nic.hpp"
#include "net/switch.hpp"
#include "sim/domain.hpp"
#include "telemetry/registry.hpp"
#include "workload/scenario.hpp"
#include "xdp/modules.hpp"

namespace flextoe {
namespace {

using telemetry::Snapshot;

std::uint64_t counter_or_zero(const Snapshot& s, const char* path) {
  const std::uint64_t* v = s.counter(path);
  return v != nullptr ? *v : 0;
}

std::uint64_t drop_reason_sum(const Snapshot& s) {
  std::uint64_t sum = 0;
  for (const auto& [path, v] : s.counters) {
    if (path.rfind("drop/", 0) == 0) sum += v;
  }
  return sum;
}

workload::ScenarioSpec small_echo_spec() {
  workload::ScenarioSpec spec;
  spec.name = "telemetry_probe";
  spec.client_nodes = 1;
  spec.conns_per_node = 4;
  spec.warm = sim::ms(1);
  spec.span = sim::ms(2);
  spec.seed = 5;
  return spec;
}

TEST(TelemetryE2E, ScenarioRunPopulatesEveryTaxonomy) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  const workload::ScenarioResult r =
      workload::run_scenario(small_echo_spec());
  ASSERT_GT(r.completed, 0u);
  const Snapshot& t = r.telemetry;
  EXPECT_TRUE(t.enabled);

  // Every pipeline stage a closed-loop echo workload exercises.
  for (const char* stage : {"seq", "pre_rx", "pre_hc", "proto_rx",
                            "proto_tx", "proto_hc", "post", "dma",
                            "ctx_notify"}) {
    const std::string path = std::string("stage/") + stage + "/visits";
    EXPECT_GT(counter_or_zero(t, path.c_str()), 0u) << path;
    const auto* lat =
        t.histogram(std::string("stage/") + stage + "/lat_ns");
    ASSERT_NE(lat, nullptr) << stage;
    EXPECT_GT(lat->count, 0u) << stage;
  }

  // Inter-stage rings: at least one FPC of each role did work.
  std::uint64_t fpc_done = 0;
  for (const auto& [path, v] : t.counters) {
    if (path.rfind("fpc/", 0) == 0 && path.size() > 5 &&
        path.compare(path.size() - 5, 5, "/done") == 0) {
      fpc_done += v;
    }
  }
  EXPECT_GT(fpc_done, 0u);

  // Flow groups saw RX and HC traffic (4 conns spread over 4 groups;
  // at least the total across groups must move).
  std::uint64_t group_rx = 0, group_hc = 0;
  for (const auto& [path, v] : t.counters) {
    if (path.rfind("group/", 0) != 0) continue;
    if (path.compare(path.size() - 3, 3, "/rx") == 0) group_rx += v;
    if (path.compare(path.size() - 3, 3, "/hc") == 0) group_hc += v;
  }
  EXPECT_GT(group_rx, 0u);
  EXPECT_GT(group_hc, 0u);

  // DMA, scheduler, and host context queues.
  EXPECT_GT(counter_or_zero(t, "dma/transactions"), 0u);
  EXPECT_GT(counter_or_zero(t, "sched/triggers"), 0u);
  EXPECT_GT(counter_or_zero(t, "hostq/notify"), 0u);
  std::uint64_t hostq_pushes = 0;
  for (const auto& [path, v] : t.counters) {
    if (path.rfind("hostq/hc", 0) == 0 &&
        path.compare(path.size() - 7, 7, "/pushes") == 0) {
      hostq_pushes += v;
    }
  }
  EXPECT_GT(hostq_pushes, 0u);

  // End-to-end pipeline latency histograms.
  ASSERT_NE(t.histogram("pipe/rx_total_ns"), nullptr);
  EXPECT_GT(t.histogram("pipe/rx_total_ns")->count, 0u);
  EXPECT_GT(t.histogram("pipe/tx_total_ns")->count, 0u);

  // A clean closed-loop run sheds nothing, and the taxonomy agrees.
  EXPECT_EQ(drop_reason_sum(t), 0u);
}

// FlexTOE server + SwTcp client over a 2-port switch (the core e2e rig),
// used to exercise drop attribution and the runtime toggle directly.
struct Rig {
  sim::Domain ev;
  net::Switch sw;
  net::Link toe_link, cli_link;
  host::FlexToeNic toe;
  baseline::SwTcpStack cli;

  Rig()
      : sw(ev, sim::Rng(11), 2),
        toe_link(ev, sim::Rng(12), {40.0, sim::ns(500), 0.0}),
        cli_link(ev, sim::Rng(13), {40.0, sim::ns(500), 0.0}),
        toe(ev, sim::Rng(14),
            net::MacAddr::from_u64(0x020000000000ull +
                                   net::make_ip(10, 0, 0, 1)),
            net::make_ip(10, 0, 0, 1)),
        cli(ev, sim::Rng(15), cli_cfg()) {
    toe_link.set_sink(sw.ingress_sink(0));
    cli_link.set_sink(sw.ingress_sink(1));
    toe.set_mac_tx(&toe_link);
    cli.set_tx_sink(&cli_link);
    sw.attach(0, &toe.mac_rx());
    sw.attach(1, &cli);
    cli.set_gateway_mac(net::MacAddr::from_u64(0x020000000000ull +
                                               net::make_ip(10, 0, 0, 1)));
  }

  static baseline::SwTcpConfig cli_cfg() {
    baseline::SwTcpConfig c;
    c.mac = net::MacAddr::from_u64(0x020000000000ull +
                                   net::make_ip(10, 0, 0, 2));
    c.ip = net::make_ip(10, 0, 0, 2);
    return c;
  }

  void run_for(sim::TimePs t) { ev.run_until(ev.now() + t); }
};

TEST(TelemetryE2E, DropsAttributedToExactlyOneReason) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  Rig r;
  auto fw = std::make_shared<xdp::FirewallProgram>();
  fw->block(net::make_ip(10, 0, 0, 2));  // blacklist the client
  r.toe.datapath().add_xdp_program(fw);
  r.toe.stack().listen(80);
  r.cli.connect(net::make_ip(10, 0, 0, 1), 80);
  r.run_for(sim::ms(50));

  core::Datapath& dp = r.toe.datapath();
  ASSERT_GT(dp.drops(), 0u);
  const Snapshot t = dp.telem().snapshot();
  // Partition invariant: every shed segment carries exactly one reason,
  // so the taxonomy counters sum to the aggregate drop count.
  EXPECT_EQ(drop_reason_sum(t), dp.drops());
  EXPECT_EQ(counter_or_zero(t, "drop/xdp_drop"), dp.drops());
}

TEST(TelemetryE2E, RuntimeToggleStopsRecordingButNotCounting) {
  Rig r;
  r.toe.datapath().telem().set_enabled(false);
  auto fw = std::make_shared<xdp::FirewallProgram>();
  fw->block(net::make_ip(10, 0, 0, 2));
  r.toe.datapath().add_xdp_program(fw);
  r.toe.stack().listen(80);
  r.cli.connect(net::make_ip(10, 0, 0, 1), 80);
  r.run_for(sim::ms(50));

  core::Datapath& dp = r.toe.datapath();
  EXPECT_GT(dp.drops(), 0u);  // aggregate introspection keeps working
  // A disabled registry exports an empty snapshot...
  const Snapshot while_off = dp.telem().snapshot();
  EXPECT_FALSE(while_off.enabled);
  EXPECT_TRUE(while_off.empty());
  // ...and re-enabling after the run proves nothing was recorded while
  // it was off: every counter the run would have moved reads zero.
  dp.telem().set_enabled(true);
  const Snapshot t = dp.telem().snapshot();
  std::uint64_t total = 0;
  for (const auto& [path, v] : t.counters) total += v;
  if (telemetry::kCompiledIn) {
    EXPECT_GT(t.counters.size(), 0u);  // registrations exist regardless
  }
  EXPECT_EQ(total, 0u);
  EXPECT_EQ(drop_reason_sum(t), 0u);
}

TEST(TelemetryE2E, RecordingIsInvisibleToSimulatedResults) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  // Same spec, telemetry on vs off: simulated outcomes must be
  // bit-identical (telemetry is out-of-band by construction).
  const workload::ScenarioSpec spec = small_echo_spec();
  const workload::ScenarioResult on = workload::run_scenario(spec);
  telemetry::set_default_enabled(false);
  const workload::ScenarioResult off = workload::run_scenario(spec);
  telemetry::set_default_enabled(true);

  EXPECT_TRUE(on.telemetry.enabled);
  EXPECT_FALSE(off.telemetry.enabled);
  EXPECT_EQ(on.completed, off.completed);
  EXPECT_DOUBLE_EQ(on.throughput_rps, off.throughput_rps);
  EXPECT_DOUBLE_EQ(on.p99_us, off.p99_us);
  EXPECT_DOUBLE_EQ(on.client_rx_gbps, off.client_rx_gbps);
}

}  // namespace
}  // namespace flextoe
