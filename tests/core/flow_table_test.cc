// Sharded flow-table oracle battery (ISSUE: million-connection
// scale-out). The table's contract — open-addressing per-island shards,
// backward-shift (tombstone-free) erase, rehash-stable ConnRecord
// pointers, duplicate-tuple repointing with ownership-checked erase,
// and the domain-affinity contract — is locked in by:
//
//   - a seeded 100k-op insert/erase/lookup churn differential against
//     a std::unordered_map oracle,
//   - probe-length invariants at high load factor (churn must not
//     degrade chains, because erase leaves no tombstones),
//   - pointer/iterator safety across in-flight rehashes,
//   - affinity death tests (debug builds) for cross-thread shard use.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/flow_table.hpp"
#include "net/addr.hpp"
#include "sim/affinity.hpp"
#include "tcp/flow.hpp"

namespace flextoe::core {
namespace {

// Distinct 4-tuples from a counter: 2^32 unique combinations, all with
// a fixed local endpoint (the NIC's), like real accepted connections.
tcp::FlowTuple tuple_n(std::uint32_t n) {
  tcp::FlowTuple t;
  t.local_ip = net::make_ip(10, 0, 0, 1);
  t.local_port = 80;
  t.remote_ip = net::make_ip(11, 0, 0, 0) + (n >> 16);
  t.remote_port = static_cast<std::uint16_t>(n);
  return t;
}

tcp::ConnId lookup_conn(FlowTable& tab, const tcp::FlowTuple& t) {
  tcp::ConnId conn = tcp::kInvalidConn;
  ConnRecord* rec = tab.lookup(tcp::FlowKey::of(t), &conn);
  return rec == nullptr ? tcp::kInvalidConn : conn;
}

TEST(FlowTable, InsertLookupGetRoundTrip) {
  FlowTable tab(4, 64);
  const tcp::ConnId a = tab.insert(tuple_n(1));
  const tcp::ConnId b = tab.insert(tuple_n(2));
  EXPECT_NE(a, b);
  EXPECT_EQ(tab.size(), 2u);

  tcp::ConnId via_lookup = tcp::kInvalidConn;
  ConnRecord* rec = tab.lookup(tcp::FlowKey::of(tuple_n(1)), &via_lookup);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(via_lookup, a);
  EXPECT_EQ(rec, tab.get(a));
  EXPECT_TRUE(rec->fs.valid);
  EXPECT_EQ(rec->fs.tuple, tuple_n(1));

  EXPECT_TRUE(tab.erase(a));
  EXPECT_FALSE(tab.erase(a));  // already gone
  EXPECT_EQ(tab.get(a), nullptr);
  EXPECT_EQ(tab.lookup(tcp::FlowKey::of(tuple_n(1)), nullptr), nullptr);
  EXPECT_EQ(tab.size(), 1u);
}

// ------------------------------------------------ oracle differential

TEST(FlowTable, DifferentialChurnVsUnorderedMap) {
  // 100k seeded ops against a std::unordered_map oracle, across 4
  // shards, starting from a deliberately small presize so rehashes
  // happen mid-churn.
  FlowTable tab(4, 256);
  std::unordered_map<tcp::ConnId, tcp::FlowTuple> oracle;
  std::vector<tcp::ConnId> live;          // for random picks
  std::vector<tcp::FlowTuple> retired;    // erased tuples, for misses
  std::mt19937_64 rng(0xF10Fu);
  std::uint32_t next_tuple = 0;

  for (int op = 0; op < 100'000; ++op) {
    const std::uint64_t r = rng();
    if (live.empty() || r % 10 < 4) {  // insert a fresh tuple
      const tcp::FlowTuple t = tuple_n(next_tuple++);
      const tcp::ConnId conn = tab.insert(t);
      ASSERT_TRUE(oracle.emplace(conn, t).second)
          << "table returned a live id twice";
      live.push_back(conn);
    } else if (r % 10 < 7) {  // erase a random live connection
      const std::size_t i = r / 16 % live.size();
      const tcp::ConnId conn = live[i];
      retired.push_back(oracle.at(conn));
      ASSERT_TRUE(tab.erase(conn));
      oracle.erase(conn);
      live[i] = live.back();
      live.pop_back();
    } else if (r % 10 < 9) {  // lookup a random live tuple
      const tcp::ConnId conn = live[r / 16 % live.size()];
      const tcp::FlowTuple& t = oracle.at(conn);
      ASSERT_EQ(lookup_conn(tab, t), conn);
      ASSERT_EQ(tab.get(conn)->fs.tuple, t);
    } else if (!retired.empty()) {  // lookup a retired tuple: must miss
      const tcp::FlowTuple& t = retired[r / 16 % retired.size()];
      ASSERT_EQ(tab.lookup(tcp::FlowKey::of(t), nullptr), nullptr);
    }
    ASSERT_EQ(tab.size(), oracle.size());
  }

  EXPECT_GT(tab.rehashes(), 0u) << "churn never outgrew the presize";

  // Full sweep: every oracle entry reachable by id and by tuple, and
  // for_each visits exactly the live population.
  std::size_t visited = 0;
  tab.for_each([&](tcp::ConnId conn, const ConnRecord& rec) {
    ++visited;
    ASSERT_EQ(oracle.at(conn), rec.fs.tuple);
  });
  EXPECT_EQ(visited, oracle.size());
  for (const auto& [conn, t] : oracle) {
    ASSERT_EQ(lookup_conn(tab, t), conn);
  }
}

// ------------------------------------- backward-shift erase invariants

TEST(FlowTable, HighLoadChurnKeepsProbeChainsIntact) {
  // One shard presized to 890 expected conns -> 1024-slot index; 890
  // live entries put the load factor at ~87% (just under the 7/8 grow
  // threshold). Heavy erase/insert churn at that load must leave every
  // chain reachable WITHOUT growing the index: tombstone schemes decay
  // here, backward-shift must not.
  const std::uint32_t kLive = 890;
  FlowTable tab(1, kLive);
  std::vector<tcp::FlowTuple> tuples;
  std::vector<tcp::ConnId> conns;
  std::uint32_t next_tuple = 0;
  for (std::uint32_t i = 0; i < kLive; ++i) {
    tuples.push_back(tuple_n(next_tuple++));
    conns.push_back(tab.insert(tuples.back()));
  }
  ASSERT_EQ(tab.rehashes(), 0u);

  std::mt19937_64 rng(7);
  for (int churn = 0; churn < 5000; ++churn) {
    const std::size_t i = rng() % conns.size();
    ASSERT_TRUE(tab.erase(conns[i]));
    tuples[i] = tuple_n(next_tuple++);
    conns[i] = tab.insert(tuples[i]);
  }
  // The index never grew: same capacity, same (maximum) load factor.
  EXPECT_EQ(tab.rehashes(), 0u);

  // Every key still resolves, and the chains have not decayed: compare
  // the churned table's mean probe length against a fresh table built
  // from the same final key set.
  std::uint64_t churned_probes = 0;
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    ASSERT_EQ(lookup_conn(tab, tuples[i]), conns[i]);
    churned_probes += tab.last_probe_len();
  }
  FlowTable fresh(1, kLive);
  std::uint64_t fresh_probes = 0;
  for (const tcp::FlowTuple& t : tuples) fresh.insert(t);
  for (const tcp::FlowTuple& t : tuples) {
    ASSERT_NE(fresh.lookup(tcp::FlowKey::of(t), nullptr), nullptr);
    fresh_probes += fresh.last_probe_len();
  }
  // Backward-shift restores the no-deletions layout up to insertion
  // order, so churn costs at most a small constant factor (tombstones
  // would send this toward the full table scan).
  EXPECT_LE(churned_probes, 3 * fresh_probes + tuples.size());
}

TEST(FlowTable, RehashKeepsConnRecordPointersStable) {
  // Presize for 16 conns, insert 4096: multiple in-flight rehashes.
  // ConnRecord pointers handed out before any rehash must stay valid
  // and keep their contents (arena is a deque; only the index moves).
  FlowTable tab(2, 16);
  std::vector<std::pair<tcp::ConnId, ConnRecord*>> early;
  for (std::uint32_t i = 0; i < 32; ++i) {
    const tcp::ConnId conn = tab.insert(tuple_n(i));
    ConnRecord* rec = tab.get(conn);
    rec->snd_max = conn * 7 + 1;  // sentinel written through the pointer
    early.emplace_back(conn, rec);
  }
  ASSERT_EQ(tab.rehashes(), 0u);
  for (std::uint32_t i = 32; i < 4096; ++i) tab.insert(tuple_n(i));
  EXPECT_GT(tab.rehashes(), 2u);
  for (const auto& [conn, rec] : early) {
    ASSERT_EQ(tab.get(conn), rec) << "record moved across rehash";
    EXPECT_EQ(rec->snd_max, conn * 7 + 1);
    EXPECT_EQ(rec->fs.tuple, tuple_n(conn));
  }
}

// ------------------------------- duplicate tuples & id reuse semantics

TEST(FlowTable, DuplicateTupleRepointsAndEraseChecksOwnership) {
  FlowTable tab(1, 64);
  const tcp::FlowTuple t = tuple_n(5);
  const tcp::ConnId old_conn = tab.insert(t);
  const tcp::ConnId new_conn = tab.insert(t);  // same tuple, new conn
  ASSERT_NE(old_conn, new_conn);
  // The index follows the newest incarnation; the old record remains
  // reachable by id only.
  EXPECT_EQ(lookup_conn(tab, t), new_conn);
  ASSERT_NE(tab.get(old_conn), nullptr);

  // Erasing the OLD conn must not disturb the index entry it no longer
  // owns.
  EXPECT_TRUE(tab.erase(old_conn));
  EXPECT_EQ(lookup_conn(tab, t), new_conn);

  // Erasing the owner un-indexes the tuple.
  EXPECT_TRUE(tab.erase(new_conn));
  EXPECT_EQ(tab.lookup(tcp::FlowKey::of(t), nullptr), nullptr);
  EXPECT_EQ(tab.size(), 0u);
}

TEST(FlowTable, ReinstallOverLiveIdRetiresOldTuple) {
  FlowTable tab(2, 64);
  const tcp::ConnId conn = tab.insert(tuple_n(1), 5);
  EXPECT_EQ(conn, 5u);
  // Re-install the same id under a different tuple (connection reuse):
  // the old tuple must stop resolving.
  EXPECT_EQ(tab.insert(tuple_n(2), 5), 5u);
  EXPECT_EQ(tab.size(), 1u);
  EXPECT_EQ(tab.lookup(tcp::FlowKey::of(tuple_n(1)), nullptr), nullptr);
  EXPECT_EQ(lookup_conn(tab, tuple_n(2)), 5u);
  // Auto-assigned ids never collide with the explicit one.
  EXPECT_GT(tab.insert(tuple_n(3)), 5u);
}

// ------------------------------------------------------ footprint audit

TEST(FlowTable, FootprintAuditTracksPopulation) {
  FlowTable tab(4, 1024);
  EXPECT_EQ(tab.bytes_per_conn(), 0.0);  // empty: no division by zero
  const std::size_t empty = tab.bytes_reserved();
  EXPECT_GT(empty, 0u);
  for (std::uint32_t i = 0; i < 1024; ++i) tab.insert(tuple_n(i));
  const std::size_t full = tab.bytes_reserved();
  EXPECT_GE(full, empty + 1024 * sizeof(ConnRecord));
  // At the sized-for population the amortized index/directory overhead
  // is bounded: within 2x of the record payload itself.
  EXPECT_LT(tab.bytes_per_conn(), 2.0 * sizeof(ConnRecord));
  EXPECT_GE(tab.bytes_per_conn(),
            static_cast<double>(full) / 1024.0 - 1.0);
}

// ------------------------------------------- domain-affinity contract

#if FLEXTOE_AFFINITY_CHECKS

// Death tests fork; TSan's runtime does not survive that, so the
// violation checks run in Debug/Sanitize builds only.
#if !defined(__SANITIZE_THREAD__)
using FlowTableAffinityDeathTest = ::testing::Test;

TEST(FlowTableAffinityDeathTest, LookupOffOwnerThreadAsserts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  FlowTable tab(1, 64);
  tab.insert(tuple_n(1));  // binds the only shard to this thread
  EXPECT_DEATH(
      {
        std::thread t(
            [&] { tab.lookup(tcp::FlowKey::of(tuple_n(1)), nullptr); });
        t.join();
      },
      "domain-affinity");
}

TEST(FlowTableAffinityDeathTest, InsertOffOwnerThreadAsserts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  FlowTable tab(1, 64);
  tab.insert(tuple_n(1));
  EXPECT_DEATH(
      {
        std::thread t([&] { tab.insert(tuple_n(2)); });
        t.join();
      },
      "domain-affinity");
}
#endif  // !__SANITIZE_THREAD__

TEST(FlowTableAffinity, RebindOwnerAllowsQuiescedHandOff) {
  FlowTable tab(1, 64);
  const tcp::ConnId conn = tab.insert(tuple_n(1));
  tab.rebind_owner(0);  // legitimate hand-off: next thread binds
  tcp::ConnId found = tcp::kInvalidConn;
  std::thread t([&] {
    ConnRecord* rec = tab.lookup(tcp::FlowKey::of(tuple_n(1)), &found);
    ASSERT_NE(rec, nullptr);
  });
  t.join();
  EXPECT_EQ(found, conn);
}

TEST(FlowTableAffinity, ShardsBindIndependently) {
  // With many shards, each island touches only its own shard; a second
  // thread may own a different shard concurrently. Find two tuples on
  // different shards and drive them from different threads.
  FlowTable tab(4, 64);
  std::uint32_t n_a = 0, n_b = 1;
  while (tcp::FlowKey::of(tuple_n(n_b)).shard(4) ==
         tcp::FlowKey::of(tuple_n(n_a)).shard(4)) {
    ++n_b;
  }
  tab.insert(tuple_n(n_a));  // binds shard A to this thread
  std::thread t([&] { tab.insert(tuple_n(n_b)); });  // binds shard B
  t.join();
  EXPECT_EQ(tab.size(), 2u);
}

#endif  // FLEXTOE_AFFINITY_CHECKS

}  // namespace
}  // namespace flextoe::core
