// Per-connection data-path state, partitioned across pipeline stages
// exactly as in the paper's Table 5 (Appendix A). Each stage owns its
// partition; state needed by later stages travels as segment meta-data.
//
//   Pre-processor  (connection identification) — 15 B
//   Protocol       (TCP state machine)         — 43 B
//   Post-processor (ctx queue, cong. control)  — 51 B
//   Total: ~108 B per connection -> millions of connections fit in EMEM.
#pragma once

#include <cstdint>

#include "net/addr.hpp"
#include "tcp/flow.hpp"
#include "tcp/ooo.hpp"
#include "tcp/seq.hpp"

namespace flextoe::core {

// --- Pre-processor partition (Table 5: 15 B) -----------------------------
struct PreState {
  net::MacAddr peer_mac;          // 48 bits
  net::Ipv4Addr peer_ip = 0;      // 32 bits
  std::uint16_t local_port = 0;   // 16 bits
  std::uint16_t remote_port = 0;  // 16 bits
  std::uint8_t flow_group = 0;    // 2 bits: hash(4-tuple) % 4
};
inline constexpr std::uint32_t kPreStateBits = 48 + 32 + 16 + 16 + 2;

// --- Protocol partition (Table 5: 43 B) ----------------------------------
struct ProtoState {
  // Payload buffer head positions (absolute, monotonically increasing;
  // modulo buffer size gives the physical offset — 1G hugepage backing).
  std::uint64_t rx_pos = 0;   // where rcv_nxt lands in the RX buffer
  std::uint64_t tx_pos = 0;   // where snd_nxt reads from the TX buffer
  std::uint32_t tx_avail = 0;  // bytes appended by libTOE, not yet sent
  std::uint32_t rx_avail = 0;  // free RX buffer space from rcv_nxt
  std::uint32_t remote_win = 0;  // peer receive window (bytes)
  std::uint32_t tx_sent = 0;     // sent but unacknowledged bytes
  tcp::SeqNum seq = 0;           // next TX sequence number (snd_nxt)
  tcp::SeqNum ack = 0;           // next expected RX sequence (rcv_nxt)
  tcp::SingleIntervalTracker ooo;  // ooo_start|len (64 bits)
  std::uint8_t dupack_cnt = 0;     // 4 bits
  std::uint32_t next_ts = 0;       // peer timestamp to echo

  // Data-path connection flags (fin handling; fits Table 5 slack).
  bool fin_pending = false;  // host requested close
  bool fin_sent = false;
  bool peer_fin = false;
  tcp::SeqNum fin_seq = 0;
};
// Wire packing per Table 5: rx|tx_pos share a 64-bit field (32b each,
// buffer-relative); our in-memory struct widens them for simulation
// convenience but the architectural footprint is the paper's.
inline constexpr std::uint32_t kProtoStateBits =
    64 + 32 + 32 + 16 + 32 + 32 + 32 + 64 + 4 + 32;

// --- Post-processor partition (Table 5: 51 B) -----------------------------
struct PostState {
  std::uint64_t opaque = 0;        // app connection id
  std::uint16_t context_id = 0;    // context-queue id (per app thread)
  std::uint64_t rx_base = 0;       // RX buffer base (host phys addr)
  std::uint64_t tx_base = 0;
  std::uint32_t rx_size = 0;
  std::uint32_t tx_size = 0;
  std::uint64_t cnt_ackb = 0;      // ACKed bytes (CC stats)
  std::uint64_t cnt_ecnb = 0;      // ECN-marked bytes
  std::uint8_t cnt_fretx = 0;      // fast retransmits
  std::uint32_t rtt_est = 0;       // us
  std::uint32_t rate = 0;          // programmed TX rate
};
inline constexpr std::uint32_t kPostStateBits =
    64 + 16 + 64 + 64 + 32 + 32 + 64 + 8 + 32 + 32;

// Paper: "each TCP connection has 108 bytes of state".
static_assert((kPreStateBits + kProtoStateBits + kPostStateBits + 7) / 8 ==
              108);

// A connection slot in the NIC flow-state table.
struct FlowState {
  bool valid = false;
  tcp::FlowTuple tuple;
  PreState pre;
  ProtoState proto;
  PostState post;
};

}  // namespace flextoe::core
