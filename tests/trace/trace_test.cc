// Flight-recorder tests: ring wraparound semantics, causal-id
// namespaces, the runtime/compile-time gates, per-domain timestamp
// monotonicity under the parallel DomainScheduler, merged-export global
// ordering at 1/2/4 worker threads, and the out-of-band guarantee
// (tracing never changes simulated results).
#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "sim/domain.hpp"
#include "trace/export.hpp"
#include "workload/scenario.hpp"

namespace flextoe::trace {
namespace {

using sim::Domain;
using sim::DomainScheduler;
using sim::TimePs;

// Process-global tracer state: isolate every test.
struct TraceTest : ::testing::Test {
  void SetUp() override {
    Tracer::instance().reset();
    set_enabled(false);
  }
  void TearDown() override {
    set_enabled(false);
    Tracer::instance().reset();
  }
};

// ------------------------------------------------------------- Ring

TEST_F(TraceTest, RingCapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(Ring(0, 1, 0).capacity(), 8u);
  EXPECT_EQ(Ring(0, 1, 5).capacity(), 8u);
  EXPECT_EQ(Ring(0, 1, 8).capacity(), 8u);
  EXPECT_EQ(Ring(0, 1, 9).capacity(), 16u);
  EXPECT_EQ(Ring(0, 1, 1024).capacity(), 1024u);
}

TEST_F(TraceTest, RingOverwritesOldestOnWraparound) {
  Ring r(0, 1, 8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    r.record(static_cast<TimePs>(100 * i), Phase::kInstant, 1, 2, 0, i);
  }
  EXPECT_EQ(r.size(), 8u);         // bounded
  EXPECT_EQ(r.overwritten(), 12u); // flight-recorder loss is visible
  // Retained window is the newest 8, oldest first.
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_EQ(r.at(i).arg, 12u + i) << i;
    EXPECT_EQ(r.at(i).t, static_cast<TimePs>(100 * (12 + i)));
  }
}

TEST_F(TraceTest, RingBelowCapacityKeepsEverything) {
  Ring r(0, 1, 16);
  for (std::uint64_t i = 0; i < 5; ++i) {
    r.record(static_cast<TimePs>(i), Phase::kInstant, 0, 0, 0, i);
  }
  EXPECT_EQ(r.size(), 5u);
  EXPECT_EQ(r.overwritten(), 0u);
  EXPECT_EQ(r.at(0).arg, 0u);
  EXPECT_EQ(r.at(4).arg, 4u);
}

TEST_F(TraceTest, CausalIdsAreNonZeroAndPartitionByActor) {
  if (!kCompiledIn) GTEST_SKIP() << "tracing compiled out";
  auto r1 = Tracer::instance().attach_ring(0);
  auto r2 = Tracer::instance().attach_ring(0);  // same domain id is fine
  const std::uint64_t base = Tracer::instance().next_actor_base();
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 100; ++i) {
    ids.insert(r1->make_cid());
    ids.insert(r2->make_cid());
  }
  ids.insert(base | 1);
  EXPECT_EQ(ids.size(), 201u);  // all distinct across namespaces
  EXPECT_EQ(ids.count(0), 0u);  // never 0 (0 = untraced)
}

TEST_F(TraceTest, InternIsStableAndZeroIsEmpty) {
  if (!kCompiledIn) GTEST_SKIP() << "tracing compiled out";
  auto& tr = Tracer::instance();
  const std::uint16_t a = tr.intern("stage/pre_rx");
  EXPECT_NE(a, 0u);
  EXPECT_EQ(tr.intern("stage/pre_rx"), a);
  EXPECT_EQ(tr.string(a), "stage/pre_rx");
  EXPECT_EQ(tr.intern(""), 0u);
  EXPECT_EQ(tr.string(0), "");
}

// ------------------------------------------------- runtime/compile gates

TEST_F(TraceTest, DomainRingIsGatedByRuntimeEnable) {
  Domain d;
  EXPECT_EQ(d.trace_ring(), nullptr);  // default: off, zero overhead
  set_enabled(true);
  if (!kCompiledIn) {
    EXPECT_EQ(d.trace_ring(), nullptr);  // OFF build: folds away
    return;
  }
  Ring* r = d.trace_ring();
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(d.trace_ring(), r);  // stable once attached
  set_enabled(false);
  EXPECT_EQ(d.trace_ring(), nullptr);  // gate re-closes
}

TEST_F(TraceTest, CompileTimeContract) {
#ifdef FLEXTOE_TRACE_DISABLED
  EXPECT_FALSE(kCompiledIn);
  set_enabled(true);
  EXPECT_FALSE(enabled());  // constexpr false regardless
  EXPECT_EQ(Tracer::instance().attach_ring(0), nullptr);
  EXPECT_EQ(Tracer::instance().intern("x"), 0u);
  EXPECT_TRUE(export_chrome_json().find("\"traceEvents\":[]") !=
              std::string::npos);
#else
  EXPECT_TRUE(kCompiledIn);
  set_enabled(true);
  EXPECT_TRUE(enabled());
  set_enabled(false);
  EXPECT_FALSE(enabled());
#endif
}

// ------------------------------------- multi-domain ordering & flows

// A deterministic 3-domain mesh: every domain records local instants on
// its own clock and posts work around the ring of domains (recording
// flow arrows via the instrumented Domain::post).
struct MeshResult {
  // (t, name, track, phase, domain) — labels/cids excluded: ring attach
  // order is thread-timing dependent, event content must not be. Kept
  // as a sorted multiset: same-time events from different rings (epoch
  // windows open at every boundary in all domains at once) merge in
  // attach-label order, which is thread-timing dependent too.
  using Key = std::tuple<TimePs, std::string, std::string, int, unsigned>;
  std::vector<Key> keys;
  std::size_t flow_begins = 0;
  std::size_t flow_ends = 0;
  bool merged_sorted_by_time = true;
};

MeshResult run_mesh(unsigned threads) {
  Tracer::instance().reset();
  set_enabled(true);

  DomainScheduler::Params sp;
  sp.threads = threads;
  sp.lookahead = sim::us(5);
  DomainScheduler sched(3, 7, sp);

  const std::uint16_t tick = Tracer::instance().intern("tick");
  const std::uint16_t track = Tracer::instance().intern("test/mesh");

  struct Hop {
    DomainScheduler* sched;
    TimePs lookahead;
    std::uint16_t tick, track;
    int left;
    void fire(unsigned at) {
      Domain& d = sched->domain(at);
      if (Ring* r = d.trace_ring()) {
        r->record(d.now(), Phase::kInstant, tick, track, 0,
                  static_cast<std::uint64_t>(left));
      }
      if (left-- == 0) return;
      Domain& next = sched->domain((at + 1) % 3);
      d.post(next, d.now() + lookahead + sim::us(1),
             [this, to = (at + 1) % 3] { fire(to); });
    }
  };
  std::vector<Hop> hops;
  hops.reserve(3);
  for (unsigned i = 0; i < 3; ++i) {
    hops.push_back(Hop{&sched, sp.lookahead, tick, track, 20});
    Hop* h = &hops.back();
    sched.domain(i).schedule_at(sim::us(i + 1), [h, i] { h->fire(i); });
  }
  sched.run_all();

  MeshResult res;
  auto& tr = Tracer::instance();
  for (const MergedEvent& me : merged_events()) {
    res.keys.emplace_back(me.e.t, tr.string(me.e.name),
                          tr.string(me.e.track),
                          static_cast<int>(me.e.phase), me.domain_id);
    if (me.e.phase == Phase::kFlowBegin) ++res.flow_begins;
    if (me.e.phase == Phase::kFlowEnd) ++res.flow_ends;
  }
  for (std::size_t i = 1; i < res.keys.size(); ++i) {
    if (std::get<0>(res.keys[i]) < std::get<0>(res.keys[i - 1])) {
      res.merged_sorted_by_time = false;
    }
  }
  std::sort(res.keys.begin(), res.keys.end());
  set_enabled(false);
  return res;
}

TEST_F(TraceTest, PerDomainTimestampsAreMonotonic) {
  if (!kCompiledIn) GTEST_SKIP() << "tracing compiled out";
  (void)run_mesh(2);
  for (const auto& ring : Tracer::instance().rings()) {
    for (std::size_t i = 1; i < ring->size(); ++i) {
      EXPECT_LE(ring->at(i - 1).t, ring->at(i).t)
          << "ring " << ring->label() << " event " << i;
    }
  }
}

TEST_F(TraceTest, MergedExportIsGloballyOrderedAtAnyThreadCount) {
  if (!kCompiledIn) GTEST_SKIP() << "tracing compiled out";
  MeshResult t1 = run_mesh(1);
  MeshResult t2 = run_mesh(2);
  MeshResult t4 = run_mesh(4);
  ASSERT_FALSE(t1.keys.empty());
  EXPECT_TRUE(t1.merged_sorted_by_time);
  EXPECT_TRUE(t2.merged_sorted_by_time);
  EXPECT_TRUE(t4.merged_sorted_by_time);
  // Identical event content regardless of worker threads — determinism
  // extends to the observability layer.
  EXPECT_EQ(t1.keys, t2.keys);
  EXPECT_EQ(t1.keys, t4.keys);
  // Every cross-domain hop drew a paired flow arrow.
  EXPECT_GT(t1.flow_begins, 0u);
  EXPECT_EQ(t1.flow_begins, t1.flow_ends);
  EXPECT_EQ(t2.flow_begins, t1.flow_begins);
  EXPECT_EQ(t4.flow_begins, t1.flow_begins);
}

// -------------------------------------------------- out-of-band check

TEST_F(TraceTest, TracingDoesNotPerturbSimulatedResults) {
  if (!kCompiledIn) GTEST_SKIP() << "tracing compiled out";
  workload::ScenarioSpec spec;
  spec.name = "trace_probe";
  spec.client_nodes = 1;
  spec.conns_per_node = 2;
  spec.warm = sim::ms(1);
  spec.span = sim::ms(2);
  spec.seed = 9;

  const workload::ScenarioResult off = workload::run_scenario(spec);
  set_enabled(true);
  const workload::ScenarioResult on = workload::run_scenario(spec);
  set_enabled(false);

  EXPECT_EQ(on.completed, off.completed);
  EXPECT_DOUBLE_EQ(on.throughput_rps, off.throughput_rps);
  EXPECT_DOUBLE_EQ(on.p99_us, off.p99_us);
  EXPECT_DOUBLE_EQ(on.client_rx_gbps, off.client_rx_gbps);
  // And the traced run actually recorded something.
  std::size_t total = 0;
  for (const auto& ring : Tracer::instance().rings()) total += ring->size();
  EXPECT_GT(total, 0u);
}

// The export shape itself (span subsystems, flow pairing, monotonic
// per-track timestamps) is validated end-to-end by tools/check_trace.py
// against --trace output: ctest targets trace_scenario_check and
// trace_parallel_check in bench/CMakeLists.txt.

}  // namespace
}  // namespace flextoe::trace
