// PCIe DMA engine model: FPCs can issue up to 256 asynchronous DMA
// transactions (paper §2.3). Transactions share PCIe Gen3 x8 bandwidth
// and each pays the round-trip PCIe latency. MMIO doorbells are small
// posted writes that pay latency but negligible bandwidth.
//
// Completion closures routinely capture pooled net::PacketPtr payloads
// (RX landing writes out of the packet, TX materialization resizes its
// payload into retained capacity). Two lifetime rules make that safe:
// the engine's alive-sentinel gates completions scheduled past
// ~DmaEngine, and a pooled packet's control block owns its pool core —
// so a completion may run, and release the packet, after both the
// engine and the pool's owner are gone (see net/packet_pool.hpp).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "sim/domain.hpp"
#include "sim/small_fn.hpp"
#include "sim/time.hpp"
#include "telemetry/registry.hpp"

namespace flextoe::nfp {

struct DmaParams {
  double gbps = 52.0;                       // usable PCIe Gen3 x8 bandwidth
  sim::TimePs latency = sim::ns(900);       // per-transaction round trip
  unsigned max_outstanding = 256;
  sim::TimePs mmio_latency = sim::ns(400);  // posted MMIO write
};

class DmaEngine {
 public:
  // Completion closures carry up to a packet pointer, buffer cursor and a
  // nested finish handler inline (the data-path payload-landing lambdas).
  using DoneFn = sim::SmallFn<64>;

  DmaEngine(sim::Domain& ev, DmaParams params = {})
      : ev_(ev), params_(params) {}
  ~DmaEngine() { *alive_ = false; }
  DmaEngine(const DmaEngine&) = delete;
  DmaEngine& operator=(const DmaEngine&) = delete;

  // Issues an asynchronous DMA of `bytes`; `done` fires on completion.
  // If all transaction slots are busy, the request waits in a queue.
  // `trace_cid` ties the transaction's trace span to a segment's causal
  // id (0 = untraced segment; the span is still recorded).
  void issue(std::uint32_t bytes, DoneFn done, std::uint64_t trace_cid = 0);

  // Posted MMIO write (doorbell): fire-and-forget with latency.
  void mmio(DoneFn done, std::uint64_t trace_cid = 0);

  unsigned outstanding() const { return outstanding_; }
  std::uint64_t transactions() const { return transactions_; }
  std::uint64_t bytes_moved() const { return bytes_moved_; }
  const DmaParams& params() const { return params_; }

  // Registers transaction/byte/MMIO counters and an outstanding-slot
  // occupancy histogram under `prefix` (e.g. "dma").
  void bind_telemetry(telemetry::Registry& reg, const std::string& prefix);

 private:
  struct Pending {
    std::uint32_t bytes;
    DoneFn done;
  };

  void start(Pending p);
  sim::TimePs xfer_time(std::uint32_t bytes) const {
    const double bits = static_cast<double>(bytes) * 8.0;
    return static_cast<sim::TimePs>(bits * 1000.0 / params_.gbps);
  }

  sim::Domain& ev_;
  DmaParams params_;
  // Destruction sentinel (see nfp::Fpc::alive_): completions already on
  // the EventQueue must not re-enter a freed engine.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  std::deque<Pending> waiting_;
  unsigned outstanding_ = 0;
  sim::TimePs bus_free_ = 0;
  std::uint64_t transactions_ = 0;
  std::uint64_t bytes_moved_ = 0;

  telemetry::Binding telem_;
  telemetry::Counter* t_txn_ = nullptr;
  telemetry::Counter* t_bytes_ = nullptr;
  telemetry::Counter* t_mmio_ = nullptr;
  telemetry::Histogram* t_outstanding_ = nullptr;
  telemetry::Histogram* t_wait_depth_ = nullptr;

  // Trace span pairing without growing the completion closure (the
  // CompletionClosureProbe static_assert in dma.cpp): transactions
  // start in issue order and complete in start order (bus_free_ is
  // monotonic, per-txn latency constant), so begin ids (issue seq) and
  // end ids (done seq) pair FIFO through engine members reached via the
  // already-captured `this`.
  std::uint64_t trace_base_ = 0;       // Tracer::next_actor_base()
  std::uint64_t trace_issue_seq_ = 0;
  std::uint64_t trace_done_seq_ = 0;
  std::uint16_t trace_track_ = 0;      // "dma/pcie"
  std::uint16_t trace_name_xfer_ = 0;  // "xfer"
  std::uint16_t trace_name_mmio_ = 0;  // "mmio"
};

}  // namespace flextoe::nfp
