// Length-prefixed message framing over the byte-stream socket API.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace flextoe::app {

// Accumulates stream bytes and yields complete [u32 len][payload] frames.
class FrameReader {
 public:
  void feed(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  // Returns true and fills `frame` if a complete frame is available.
  bool next(std::vector<std::uint8_t>& frame) {
    if (buf_.size() < 4) return false;
    const std::uint32_t len = static_cast<std::uint32_t>(buf_[0]) |
                              (static_cast<std::uint32_t>(buf_[1]) << 8) |
                              (static_cast<std::uint32_t>(buf_[2]) << 16) |
                              (static_cast<std::uint32_t>(buf_[3]) << 24);
    if (buf_.size() < 4 + static_cast<std::size_t>(len)) return false;
    frame.assign(buf_.begin() + 4, buf_.begin() + 4 + len);
    buf_.erase(buf_.begin(), buf_.begin() + 4 + len);
    return true;
  }

  // Consumes exactly `len` frame bytes without copying them out; returns
  // false until the full frame has arrived. For sink servers.
  bool skip_frame(std::uint32_t& len_out) {
    if (buf_.size() < 4) return false;
    const std::uint32_t len = static_cast<std::uint32_t>(buf_[0]) |
                              (static_cast<std::uint32_t>(buf_[1]) << 8) |
                              (static_cast<std::uint32_t>(buf_[2]) << 16) |
                              (static_cast<std::uint32_t>(buf_[3]) << 24);
    if (buf_.size() < 4 + static_cast<std::size_t>(len)) return false;
    buf_.erase(buf_.begin(), buf_.begin() + 4 + len);
    len_out = len;
    return true;
  }

  std::size_t buffered() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

// Appends a [u32 len][payload_len fill bytes] frame to `out` in place —
// the allocation-free form for hot request loops (workload::TrafficGen
// reuses its per-connection pending_tx capacity across requests).
inline void append_frame(std::vector<std::uint8_t>& out,
                         std::uint32_t payload_len,
                         std::uint8_t fill = 0xA5) {
  // No exact-size reserve here: a backlogged buffer must keep vector's
  // geometric growth (exact reserves would make repeated appends
  // quadratic); a drained buffer reuses its retained capacity anyway.
  out.push_back(static_cast<std::uint8_t>(payload_len));
  out.push_back(static_cast<std::uint8_t>(payload_len >> 8));
  out.push_back(static_cast<std::uint8_t>(payload_len >> 16));
  out.push_back(static_cast<std::uint8_t>(payload_len >> 24));
  out.insert(out.end(), payload_len, fill);
}

inline std::vector<std::uint8_t> make_frame(std::uint32_t payload_len,
                                            std::uint8_t fill = 0xA5) {
  std::vector<std::uint8_t> f;
  f.reserve(4 + payload_len);  // fresh vector: one sized allocation
  append_frame(f, payload_len, fill);
  return f;
}

}  // namespace flextoe::app
