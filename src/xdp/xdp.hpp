// XDP module API (paper §3.3).
//
// FlexTOE supports eXpress Data Path modules that operate on raw packets
// in the pre-processing stage and return one of four action codes. In the
// real system these are eBPF programs compiled to NFP assembly; here they
// are C++ callables with the same semantics and a per-packet cycle cost
// charged to the hosting FPC (Table 2 measures exactly this overhead).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/packet.hpp"

namespace flextoe::xdp {

enum class XdpAction : std::uint8_t {
  Pass,      // XDP_PASS: forward to the next pipeline stage
  Drop,      // XDP_DROP: drop the packet
  Tx,        // XDP_TX: send the packet out the MAC immediately
  Redirect,  // XDP_REDIRECT: redirect to the control plane
};

// Mutable packet view handed to XDP programs (typed accessors replace the
// raw byte view; all header fields the paper's examples touch are here).
struct XdpMd {
  net::Packet& pkt;
  std::uint64_t rx_timestamp_ps = 0;
};

class XdpProgram {
 public:
  virtual ~XdpProgram() = default;

  virtual XdpAction run(XdpMd& md) = 0;
  virtual std::string name() const = 0;

  // FPC cycles charged per invocation (models eBPF instruction count).
  virtual std::uint32_t cycles_per_packet() const { return 30; }
};

using XdpProgramPtr = std::shared_ptr<XdpProgram>;

}  // namespace flextoe::xdp
