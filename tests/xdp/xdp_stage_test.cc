// XDP programs as first-class pipeline stages: verdict ordering (the
// first terminal verdict wins and later programs never execute), cost
// accounting charged per program actually executed (regression for the
// whole-chain up-front billing bug), the one-clock-read-per-segment
// timestamp shared across the chain, and per-item vs burst delivery
// producing identical egress, drop accounting, and telemetry.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/datapath.hpp"
#include "host/payload_buf.hpp"
#include "net/packet.hpp"
#include "pipeline/graph.hpp"
#include "sim/domain.hpp"
#include "xdp/xdp.hpp"

namespace flextoe::xdp {
namespace {

// Test program: fixed action + cycle cost, records every invocation's
// shared rx timestamp.
class Recorder : public XdpProgram {
 public:
  Recorder(XdpAction action, std::uint32_t cycles)
      : action_(action), cycles_(cycles) {}

  XdpAction run(XdpMd& md) override {
    ++runs_;
    stamps_.push_back(md.rx_timestamp_ps);
    return action_;
  }
  std::string name() const override { return "recorder"; }
  std::uint32_t cycles_per_packet() const override { return cycles_; }

  std::uint64_t runs() const { return runs_; }
  const std::vector<std::uint64_t>& stamps() const { return stamps_; }

 private:
  XdpAction action_;
  std::uint32_t cycles_;
  std::uint64_t runs_ = 0;
  std::vector<std::uint64_t> stamps_;
};

struct CountingSink : net::PacketSink {
  std::uint64_t delivered = 0;
  void deliver(const net::PacketPtr&) override { ++delivered; }
};

struct Rig {
  sim::Domain ev;
  host::PayloadBuf rx{1 << 16}, tx{1 << 16};
  std::optional<core::Datapath> dp;
  CountingSink sink;
  int notifies = 0;
  int to_controls = 0;

  explicit Rig(core::DatapathConfig cfg) {
    core::Datapath::HostIface host;
    host.notify = [this](const host::CtxDesc&) { ++notifies; };
    host.to_control = [this](const net::PacketPtr&) { ++to_controls; };
    host.peer_fin = [](tcp::ConnId) {};
    dp.emplace(ev, cfg, host);
    dp->set_local(net::MacAddr::from_u64(0x02AA), net::make_ip(10, 0, 0, 1));
    dp->set_mac_sink(&sink);

    core::FlowInstall ins;
    ins.tuple = {net::make_ip(10, 0, 0, 1), net::make_ip(10, 0, 0, 2), 80,
                 9999};
    ins.local_mac = net::MacAddr::from_u64(0x02AA);
    ins.peer_mac = net::MacAddr::from_u64(0x02BB);
    ins.iss = 1000;
    ins.irs = 2000;
    ins.rx_buf = &rx;
    ins.tx_buf = &tx;
    dp->install_flow(ins);
  }

  net::PacketPtr data_segment(std::uint32_t seq_off, std::uint32_t len) {
    return net::make_tcp_packet(
        net::MacAddr::from_u64(0x02BB), net::MacAddr::from_u64(0x02AA),
        net::make_ip(10, 0, 0, 2), net::make_ip(10, 0, 0, 1), 9999, 80,
        2001 + seq_off, 1001, net::tcpflag::kAck | net::tcpflag::kPsh,
        std::vector<std::uint8_t>(len, 0x42));
  }
};

core::DatapathConfig one_replica_config() {
  core::DatapathConfig cfg = core::agilio_cx40_config();
  cfg.xdp_replicas = 1;  // single FPC per XDP node: exact busy accounting
  return cfg;
}

// ------------------------------------------------------ verdict ordering

// The first terminal verdict ends the chain: programs after a Drop never
// execute and the segment is accounted as an XDP drop (never reaching
// the protocol stage, so no ACKs).
TEST(XdpVerdictOrdering, DropEndsChainAndLaterProgramsNeverRun) {
  Rig r(one_replica_config());
  auto pass = std::make_shared<Recorder>(XdpAction::Pass, 10);
  auto drop = std::make_shared<Recorder>(XdpAction::Drop, 10);
  auto after = std::make_shared<Recorder>(XdpAction::Pass, 10);
  r.dp->add_xdp_program(pass);
  r.dp->add_xdp_program(drop);
  r.dp->add_xdp_program(after);
  ASSERT_EQ(r.dp->graph().xdp_stage_count(), 3u);

  for (std::uint32_t i = 0; i < 3; ++i) {
    r.dp->deliver(r.data_segment(i * 64, 64));
  }
  r.ev.run_all();

  EXPECT_EQ(pass->runs(), 3u);
  EXPECT_EQ(drop->runs(), 3u);
  EXPECT_EQ(after->runs(), 0u);  // terminal verdict won
  EXPECT_EQ(r.dp->rx_segments(), 3u);
  EXPECT_EQ(r.dp->drops(), 3u);     // accounted, not vanished
  EXPECT_EQ(r.dp->acks_sent(), 0u);  // never reached the protocol stage
  EXPECT_EQ(r.sink.delivered, 0u);
}

// XDP_TX re-emits on the MAC and ends the chain.
TEST(XdpVerdictOrdering, TxEmitsAndEndsChain) {
  Rig r(one_replica_config());
  auto tx = std::make_shared<Recorder>(XdpAction::Tx, 10);
  auto after = std::make_shared<Recorder>(XdpAction::Pass, 10);
  r.dp->add_xdp_program(tx);
  r.dp->add_xdp_program(after);

  r.dp->deliver(r.data_segment(0, 64));
  r.ev.run_all();

  EXPECT_EQ(tx->runs(), 1u);
  EXPECT_EQ(after->runs(), 0u);
  EXPECT_EQ(r.sink.delivered, 1u);  // the XDP_TX emission
  EXPECT_EQ(r.dp->acks_sent(), 0u);
}

// XDP_REDIRECT hands the packet to the control plane and ends the chain.
TEST(XdpVerdictOrdering, RedirectGoesToControlAndEndsChain) {
  Rig r(one_replica_config());
  auto redirect = std::make_shared<Recorder>(XdpAction::Redirect, 10);
  auto after = std::make_shared<Recorder>(XdpAction::Pass, 10);
  r.dp->add_xdp_program(redirect);
  r.dp->add_xdp_program(after);

  r.dp->deliver(r.data_segment(0, 64));
  r.ev.run_all();

  EXPECT_EQ(redirect->runs(), 1u);
  EXPECT_EQ(after->runs(), 0u);
  EXPECT_EQ(r.to_controls, 1);
  EXPECT_EQ(r.dp->acks_sent(), 0u);
}

// An all-Pass chain is transparent: the segment traverses the full
// pipeline and is ACKed exactly as without the chain.
TEST(XdpVerdictOrdering, AllPassChainIsTransparent) {
  Rig r(one_replica_config());
  auto a = std::make_shared<Recorder>(XdpAction::Pass, 10);
  auto b = std::make_shared<Recorder>(XdpAction::Pass, 10);
  r.dp->add_xdp_program(a);
  r.dp->add_xdp_program(b);

  for (std::uint32_t i = 0; i < 4; ++i) {
    r.dp->deliver(r.data_segment(i * 64, 64));
  }
  r.ev.run_all();

  EXPECT_EQ(a->runs(), 4u);
  EXPECT_EQ(b->runs(), 4u);
  EXPECT_EQ(r.dp->rx_segments(), 4u);
  EXPECT_EQ(r.dp->acks_sent(), 4u);
  EXPECT_EQ(r.dp->drops(), 0u);
}

// --------------------------------------------------------- cost billing

// Regression for the whole-chain up-front billing bug: with a Drop-first
// chain, programs after the drop must never be charged. The head node's
// billed busy time is independent of what sits behind it, and the
// never-reached node's FPC stays idle — under the old accounting, a
// 100k-cycle second program inflated every dropped segment's cost.
TEST(XdpBilling, DropFirstChainChargesOnlyExecutedPrograms) {
  const std::uint32_t kSegs = 8;

  Rig short_chain(one_replica_config());
  short_chain.dp->add_xdp_program(
      std::make_shared<Recorder>(XdpAction::Drop, 10));

  Rig long_chain(one_replica_config());
  long_chain.dp->add_xdp_program(
      std::make_shared<Recorder>(XdpAction::Drop, 10));
  long_chain.dp->add_xdp_program(
      std::make_shared<Recorder>(XdpAction::Pass, 100'000));

  for (std::uint32_t i = 0; i < kSegs; ++i) {
    short_chain.dp->deliver(short_chain.data_segment(i * 64, 64));
    long_chain.dp->deliver(long_chain.data_segment(i * 64, 64));
  }
  short_chain.ev.run_all();
  long_chain.ev.run_all();

  pipeline::Graph& gs = short_chain.dp->graph();
  pipeline::Graph& gl = long_chain.dp->graph();
  ASSERT_EQ(gs.xdp_stage_count(), 1u);
  ASSERT_EQ(gl.xdp_stage_count(), 2u);

  // Head node: same traffic, same billed time — the expensive program
  // behind the drop contributes nothing.
  EXPECT_EQ(gs.xdp_stage(0).fpc(0).items_done(), kSegs);
  EXPECT_EQ(gl.xdp_stage(0).fpc(0).items_done(), kSegs);
  EXPECT_GT(gl.xdp_stage(0).fpc(0).busy_time(), 0);
  EXPECT_EQ(gl.xdp_stage(0).fpc(0).busy_time(),
            gs.xdp_stage(0).fpc(0).busy_time());

  // Never-reached node: zero items, zero billed time.
  EXPECT_EQ(gl.xdp_stage(1).fpc(0).items_done(), 0u);
  EXPECT_EQ(gl.xdp_stage(1).fpc(0).busy_time(), 0);

  EXPECT_EQ(short_chain.dp->drops(), kSegs);
  EXPECT_EQ(long_chain.dp->drops(), kSegs);
}

// A passed segment is charged per node as it traverses: each chain
// node's FPC bills its own program's cycles (head additionally carries
// the sequencer cost), visible as monotone per-node busy time.
TEST(XdpBilling, PassChainBillsEachNode) {
  Rig r(one_replica_config());
  r.dp->add_xdp_program(std::make_shared<Recorder>(XdpAction::Pass, 50));
  r.dp->add_xdp_program(std::make_shared<Recorder>(XdpAction::Pass, 500));

  for (std::uint32_t i = 0; i < 4; ++i) {
    r.dp->deliver(r.data_segment(i * 64, 64));
  }
  r.ev.run_all();

  pipeline::Graph& g = r.dp->graph();
  EXPECT_EQ(g.xdp_stage(0).fpc(0).items_done(), 4u);
  EXPECT_EQ(g.xdp_stage(1).fpc(0).items_done(), 4u);
  EXPECT_GT(g.xdp_stage(0).fpc(0).busy_time(), 0);
  // 500-cycle node bills more than the 50-cycle (+seq) head.
  EXPECT_GT(g.xdp_stage(1).fpc(0).busy_time(),
            g.xdp_stage(0).fpc(0).busy_time());
  EXPECT_EQ(r.dp->acks_sent(), 4u);
}

// ----------------------------------------------------------- timestamps

// One clock read per segment: every program in the chain observes the
// same rx_timestamp_ps — the MAC arrival time — even though the chain
// nodes execute at later simulated times.
TEST(XdpTimestamp, SingleClockReadSharedAcrossChain) {
  Rig r(one_replica_config());
  auto a = std::make_shared<Recorder>(XdpAction::Pass, 200);
  auto b = std::make_shared<Recorder>(XdpAction::Pass, 200);
  auto c = std::make_shared<Recorder>(XdpAction::Pass, 200);
  r.dp->add_xdp_program(a);
  r.dp->add_xdp_program(b);
  r.dp->add_xdp_program(c);

  const sim::TimePs at = sim::us(5);
  r.ev.schedule_at(at, [&r] { r.dp->deliver(r.data_segment(0, 64)); });
  r.ev.run_all();

  ASSERT_EQ(a->stamps().size(), 1u);
  ASSERT_EQ(b->stamps().size(), 1u);
  ASSERT_EQ(c->stamps().size(), 1u);
  EXPECT_EQ(a->stamps()[0], static_cast<std::uint64_t>(at));
  EXPECT_EQ(b->stamps()[0], a->stamps()[0]);
  EXPECT_EQ(c->stamps()[0], a->stamps()[0]);
}

// Burst delivery shares one clock read per chunk: every segment of the
// burst carries the same arrival timestamp through the whole chain.
TEST(XdpTimestamp, BurstSharesOneClockRead) {
  core::DatapathConfig cfg = one_replica_config();
  cfg.batch_size = 16;
  Rig r(cfg);
  auto a = std::make_shared<Recorder>(XdpAction::Pass, 200);
  auto b = std::make_shared<Recorder>(XdpAction::Pass, 200);
  r.dp->add_xdp_program(a);
  r.dp->add_xdp_program(b);

  const sim::TimePs at = sim::us(7);
  r.ev.schedule_at(at, [&r] {
    std::vector<net::PacketPtr> pkts;
    for (std::uint32_t i = 0; i < 4; ++i) {
      pkts.push_back(r.data_segment(i * 64, 64));
    }
    r.dp->deliver_burst(std::span<const net::PacketPtr>(pkts));
  });
  r.ev.run_all();

  ASSERT_EQ(a->stamps().size(), 4u);
  ASSERT_EQ(b->stamps().size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(a->stamps()[i], static_cast<std::uint64_t>(at));
    EXPECT_EQ(b->stamps()[i], static_cast<std::uint64_t>(at));
  }
}

// ------------------------------------------- per-item vs burst parity

net::PacketPtr foreign_ip_segment() {
  return net::make_tcp_packet(
      net::MacAddr::from_u64(0x02BB), net::MacAddr::from_u64(0x02AA),
      net::make_ip(10, 0, 0, 2), net::make_ip(10, 9, 9, 9), 9999, 80, 5000,
      1001, net::tcpflag::kAck, std::vector<std::uint8_t>(32, 0x01));
}

net::PacketPtr non_tcp_packet() {
  auto p = net::make_tcp_packet(
      net::MacAddr::from_u64(0x02BB), net::MacAddr::from_u64(0x02AA),
      net::make_ip(10, 0, 0, 2), net::make_ip(10, 0, 0, 1), 53, 53, 0, 0, 0,
      std::vector<std::uint8_t>(32, 0x02));
  p->ip.proto = 17;  // UDP -> kernel path
  return p;
}

std::vector<net::PacketPtr> mixed_traffic(Rig& r) {
  std::vector<net::PacketPtr> pkts;
  for (std::uint32_t i = 0; i < 16; ++i) {
    pkts.push_back(r.data_segment(i * 64, 64));
    if (i % 5 == 1) pkts.push_back(non_tcp_packet());
    if (i % 5 == 3) pkts.push_back(foreign_ip_segment());
  }
  return pkts;
}

// Differential: the same mixed packet sequence (data-path segments,
// non-TCP, foreign-IP) delivered per-item vs as NIC bursts of 64 must
// produce identical egress, identical drop and filter accounting, and a
// byte-equal telemetry snapshot.
TEST(XdpBurstParity, PerItemAndBatch64AreIdentical) {
  core::DatapathConfig cfg_item = one_replica_config();
  cfg_item.batch_size = 1;
  core::DatapathConfig cfg_burst = one_replica_config();
  cfg_burst.batch_size = 64;

  Rig item(cfg_item);
  Rig burst(cfg_burst);
  for (Rig* r : {&item, &burst}) {
    r->dp->add_xdp_program(std::make_shared<Recorder>(XdpAction::Pass, 30));
  }

  const auto pkts_item = mixed_traffic(item);
  const auto pkts_burst = mixed_traffic(burst);
  ASSERT_EQ(pkts_item.size(), pkts_burst.size());

  for (const auto& p : pkts_item) item.dp->deliver(p);
  burst.dp->deliver_burst(std::span<const net::PacketPtr>(pkts_burst));
  item.ev.run_all();
  burst.ev.run_all();

  EXPECT_EQ(item.dp->rx_segments(), burst.dp->rx_segments());
  EXPECT_EQ(item.dp->acks_sent(), burst.dp->acks_sent());
  EXPECT_EQ(item.dp->drops(), burst.dp->drops());
  EXPECT_EQ(item.sink.delivered, burst.sink.delivered);
  EXPECT_EQ(item.notifies, burst.notifies);
  EXPECT_EQ(item.to_controls, burst.to_controls);

  // MAC filter accounting parity (the silently-vanishing-packets fix).
  EXPECT_EQ(item.dp->kernel_path_count(), 3u);
  EXPECT_EQ(item.dp->not_local_count(), 3u);
  EXPECT_EQ(burst.dp->kernel_path_count(), item.dp->kernel_path_count());
  EXPECT_EQ(burst.dp->not_local_count(), item.dp->not_local_count());

  // Byte-equal introspection: every counter, gauge and histogram.
  EXPECT_EQ(item.dp->telem().snapshot().to_json(),
            burst.dp->telem().snapshot().to_json());
}

// Filtered packets are counted, not silently dropped, on both delivery
// paths — and they are *not* drops (they were never data-path traffic).
TEST(XdpBurstParity, MacFilterCountsAreNotDrops) {
  Rig r(one_replica_config());
  r.dp->deliver(non_tcp_packet());
  r.dp->deliver(foreign_ip_segment());
  r.dp->deliver(r.data_segment(0, 64));
  r.ev.run_all();

  EXPECT_EQ(r.dp->kernel_path_count(), 1u);
  EXPECT_EQ(r.dp->not_local_count(), 1u);
  EXPECT_EQ(r.dp->rx_segments(), 1u);
  EXPECT_EQ(r.dp->drops(), 0u);
}

}  // namespace
}  // namespace flextoe::xdp
