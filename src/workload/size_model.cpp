// Size-model implementations (see size_model.hpp): fixed/uniform draws,
// lognormal via Box-Muller on the deterministic Rng, bounded Pareto by
// inverse-CDF, and piecewise-linear empirical CDFs — including the
// in-tree web-search (DCTCP) and data-mining (VL2) flow-size tables the
// datacenter workload scenarios sample from.
#include "workload/size_model.hpp"

#include <algorithm>
#include <cmath>

namespace flextoe::workload {

namespace {

std::uint32_t clamp_u32(double x, std::uint32_t lo, std::uint32_t hi) {
  if (x < lo) return lo;
  if (x > hi) return hi;
  return static_cast<std::uint32_t>(x);
}

class FixedSize final : public SizeModel {
 public:
  explicit FixedSize(std::uint32_t b) : bytes_(b ? b : 1) {}
  std::uint32_t sample(sim::Rng&) override { return bytes_; }
  double mean_bytes() const override { return bytes_; }

 private:
  std::uint32_t bytes_;
};

class UniformSize final : public SizeModel {
 public:
  UniformSize(std::uint32_t lo, std::uint32_t hi)
      : lo_(std::min(lo, hi)), hi_(std::max(lo, hi)) {}
  std::uint32_t sample(sim::Rng& rng) override {
    return static_cast<std::uint32_t>(rng.next_range(lo_, hi_));
  }
  double mean_bytes() const override { return (double(lo_) + hi_) / 2.0; }

 private:
  std::uint32_t lo_, hi_;
};

class LognormalSize final : public SizeModel {
 public:
  LognormalSize(double mu, double sigma, std::uint32_t lo, std::uint32_t hi)
      : mu_(mu), sigma_(sigma), lo_(std::max<std::uint32_t>(lo, 1)),
        hi_(std::max(hi, lo_)) {}
  std::uint32_t sample(sim::Rng& rng) override {
    // Box-Muller; two uniforms per sample keeps the model stateless.
    double u1 = rng.next_double();
    if (u1 <= 0.0) u1 = 1e-18;
    const double u2 = rng.next_double();
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
    return clamp_u32(std::exp(mu_ + sigma_ * z), lo_, hi_);
  }
  double mean_bytes() const override {
    return std::exp(mu_ + sigma_ * sigma_ / 2.0);
  }

 private:
  double mu_, sigma_;
  std::uint32_t lo_, hi_;
};

class BoundedParetoSize final : public SizeModel {
 public:
  BoundedParetoSize(double alpha, std::uint32_t lo, std::uint32_t hi)
      : alpha_(alpha), lo_(std::max<std::uint32_t>(lo, 1)),
        hi_(std::max(hi, lo_)) {}
  std::uint32_t sample(sim::Rng& rng) override {
    const double u = rng.next_double();
    const double la = std::pow(double(lo_), alpha_);
    const double ha = std::pow(double(hi_), alpha_);
    // Inverse CDF of the bounded Pareto.
    const double x =
        std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha_);
    return clamp_u32(x, lo_, hi_);
  }
  double mean_bytes() const override {
    const double l = lo_, h = hi_, a = alpha_;
    if (a == 1.0) {
      return (std::log(h) - std::log(l)) / (1.0 / l - 1.0 / h);
    }
    const double la = std::pow(l, a);
    return (la / (1.0 - std::pow(l / h, a))) * (a / (a - 1.0)) *
           (std::pow(l, 1.0 - a) - std::pow(h, 1.0 - a));
  }

 private:
  double alpha_;
  std::uint32_t lo_, hi_;
};

class EmpiricalSize final : public SizeModel {
 public:
  EmpiricalSize(std::vector<CdfPoint> cdf, std::uint32_t cap)
      : cdf_(std::move(cdf)), cap_(cap) {
    // Normalize a slightly-off final probability so inversion always
    // lands inside the table.
    if (!cdf_.empty() && cdf_.back().cum_prob > 0) {
      const double scale = 1.0 / cdf_.back().cum_prob;
      for (auto& p : cdf_) p.cum_prob *= scale;
    }
  }

  std::uint32_t sample(sim::Rng& rng) override {
    if (cdf_.empty()) return 1;
    const double u = rng.next_double();
    // First point at or above u; interpolate linearly from the previous.
    std::size_t i = 0;
    while (i + 1 < cdf_.size() && cdf_[i].cum_prob < u) ++i;
    double x;
    if (i == 0) {
      const double p = cdf_[0].cum_prob;
      x = p > 0 ? double(cdf_[0].bytes) * (u / p) : double(cdf_[0].bytes);
      if (x < 1) x = 1;
    } else {
      const auto& a = cdf_[i - 1];
      const auto& b = cdf_[i];
      const double dp = b.cum_prob - a.cum_prob;
      const double t = dp > 0 ? (u - a.cum_prob) / dp : 0.0;
      x = double(a.bytes) + t * (double(b.bytes) - double(a.bytes));
    }
    auto bytes = static_cast<std::uint32_t>(std::max(1.0, x));
    if (cap_ > 0) bytes = std::min(bytes, cap_);
    return bytes;
  }

  double mean_bytes() const override {
    // Trapezoid over the piecewise-linear inverse CDF, cap-aware.
    double mean = 0, prev_p = 0, prev_b = 0;
    for (const auto& pt : cdf_) {
      double b = pt.bytes;
      double pb = prev_b;
      if (cap_ > 0) {
        b = std::min(b, double(cap_));
        pb = std::min(pb, double(cap_));
      }
      mean += (pt.cum_prob - prev_p) * (pb + b) / 2.0;
      prev_p = pt.cum_prob;
      prev_b = pt.bytes;
    }
    return mean;
  }

 private:
  std::vector<CdfPoint> cdf_;
  std::uint32_t cap_;
};

}  // namespace

std::unique_ptr<SizeModel> fixed_size(std::uint32_t bytes) {
  return std::make_unique<FixedSize>(bytes);
}

std::unique_ptr<SizeModel> uniform_size(std::uint32_t lo, std::uint32_t hi) {
  return std::make_unique<UniformSize>(lo, hi);
}

std::unique_ptr<SizeModel> lognormal_size(double mu, double sigma,
                                          std::uint32_t min_bytes,
                                          std::uint32_t max_bytes) {
  return std::make_unique<LognormalSize>(mu, sigma, min_bytes, max_bytes);
}

std::unique_ptr<SizeModel> bounded_pareto_size(double alpha,
                                               std::uint32_t lo,
                                               std::uint32_t hi) {
  return std::make_unique<BoundedParetoSize>(alpha, lo, hi);
}

std::unique_ptr<SizeModel> empirical_size(std::vector<CdfPoint> cdf,
                                          std::uint32_t cap_bytes) {
  return std::make_unique<EmpiricalSize>(std::move(cdf), cap_bytes);
}

// Approximation of the web-search flow-size distribution (DCTCP §2.3 /
// pFabric evaluations): mostly short queries with a heavy tail of
// multi-megabyte responses.
const std::vector<CdfPoint>& websearch_flow_cdf() {
  static const std::vector<CdfPoint> t{
      {1 * 1024, 0.15},        {2 * 1024, 0.20},
      {3 * 1024, 0.30},        {5 * 1024, 0.40},
      {7 * 1024, 0.53},        {10 * 1024, 0.60},
      {30 * 1024, 0.70},       {100 * 1024, 0.80},
      {300 * 1024, 0.90},      {1024 * 1024, 0.97},
      {3 * 1024 * 1024, 0.99}, {30 * 1024 * 1024, 1.0},
  };
  return t;
}

// Approximation of the data-mining flow-size distribution (VL2 / pFabric
// evaluations): over half the flows are tiny control messages, but most
// bytes live in rare giant transfers.
const std::vector<CdfPoint>& datamining_flow_cdf() {
  static const std::vector<CdfPoint> t{
      {100, 0.50},          {1 * 1024, 0.60},
      {2 * 1024, 0.70},     {10 * 1024, 0.80},
      {100 * 1024, 0.90},   {1024 * 1024, 0.95},
      {10240 * 1024, 0.98}, {102400 * 1024, 0.999},
      {1048576 * 1024u, 1.0},
  };
  return t;
}

}  // namespace flextoe::workload
