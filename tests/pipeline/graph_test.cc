// Stage-graph construction: the pipeline::Graph a Datapath builds must
// mirror its DatapathConfig across the Table 3 ablation configurations —
// stage and replica counts, run-to-completion as a one-FPC graph
// configuration (not a parallel code path), pass-through reorder points
// for the no-reorder ablation, and the typed port wiring.
#include "pipeline/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "core/config.hpp"
#include "core/datapath.hpp"
#include "host/payload_buf.hpp"
#include "net/packet.hpp"
#include "sim/domain.hpp"

namespace flextoe::pipeline {
namespace {

using core::DatapathConfig;

struct BuiltGraph {
  sim::Domain ev;
  std::optional<core::Datapath> dp;

  explicit BuiltGraph(const DatapathConfig& cfg) {
    core::Datapath::HostIface host;
    host.notify = [](const host::CtxDesc&) {};
    host.to_control = [](const net::PacketPtr&) {};
    host.peer_fin = [](tcp::ConnId) {};
    dp.emplace(ev, cfg, host);
  }
  Graph& graph() { return dp->graph(); }
};

void expect_counts(Graph& g, const DatapathConfig& cfg) {
  const auto exp = [](unsigned n) { return std::max(1u, n); };
  ASSERT_EQ(g.group_count(), exp(cfg.flow_groups));
  for (std::size_t i = 0; i < g.group_count(); ++i) {
    EXPECT_EQ(g.pre(i).replicas(), exp(cfg.pre_replicas));
    EXPECT_EQ(g.proto(i).replicas(), exp(cfg.proto_fpcs_per_group));
    EXPECT_EQ(g.post(i).replicas(), exp(cfg.post_replicas));
  }
  EXPECT_EQ(g.dma_stage().replicas(), exp(cfg.dma_fpcs));
  EXPECT_EQ(g.ctx_stage().replicas(), exp(cfg.ctx_fpcs));
  EXPECT_EQ(g.total_fpcs(),
            exp(cfg.flow_groups) *
                    (exp(cfg.pre_replicas) + exp(cfg.proto_fpcs_per_group) +
                     exp(cfg.post_replicas)) +
                exp(cfg.dma_fpcs) + exp(cfg.ctx_fpcs));
  EXPECT_EQ(g.run_to_completion(), !cfg.pipelined);
}

// Every Table 3 ablation step (plus the no-reorder variant) builds a
// graph whose stage/replica counts match its DatapathConfig.
TEST(GraphConstruction, AblationSweepMatchesConfig) {
  const std::vector<DatapathConfig> configs = {
      core::ablation_baseline(),    core::ablation_pipelined(),
      core::ablation_threads(),     core::ablation_replicated(),
      core::ablation_flow_groups(), core::ablation_no_reorder(),
      core::agilio_cx40_config(),   core::x86_config(),
  };
  for (const auto& cfg : configs) {
    BuiltGraph b(cfg);
    expect_counts(b.graph(), cfg);
  }
}

// Replication sweep: pre/post replica counts track the knobs exactly.
TEST(GraphConstruction, ReplicationSweep) {
  for (unsigned r = 1; r <= 6; ++r) {
    DatapathConfig cfg = core::ablation_threads();
    cfg.pre_replicas = r;
    cfg.post_replicas = r + 1;
    cfg.dma_fpcs = r;
    cfg.ctx_fpcs = r;
    BuiltGraph b(cfg);
    expect_counts(b.graph(), cfg);
  }
}

// Run-to-completion is a one-FPC configuration: every stage of every
// island (and the service stages) shares the single "rtc" core, and the
// admission gate is armed.
TEST(GraphConstruction, RtcSharesOneFpc) {
  BuiltGraph b(core::ablation_baseline());
  Graph& g = b.graph();
  ASSERT_TRUE(g.run_to_completion());
  const nfp::Fpc* rtc = &g.pre(0).fpc(0);
  EXPECT_EQ(rtc->name(), "rtc");
  for (std::size_t i = 0; i < g.group_count(); ++i) {
    for (std::size_t r = 0; r < g.pre(i).replicas(); ++r) {
      EXPECT_EQ(&g.pre(i).fpc(r), rtc);
    }
    for (std::size_t r = 0; r < g.proto(i).replicas(); ++r) {
      EXPECT_EQ(&g.proto(i).fpc(r), rtc);
    }
    for (std::size_t r = 0; r < g.post(i).replicas(); ++r) {
      EXPECT_EQ(&g.post(i).fpc(r), rtc);
    }
  }
  EXPECT_EQ(&g.dma_stage().fpc(0), rtc);
  EXPECT_EQ(&g.ctx_stage().fpc(0), rtc);

  // Pipelined graphs give every replica its own core and no gate.
  BuiltGraph p(core::ablation_flow_groups());
  EXPECT_FALSE(p.graph().run_to_completion());
  EXPECT_NE(&p.graph().pre(0).fpc(0), &p.graph().proto(0).fpc(0));
}

// The no-reorder ablation builds pass-through reorder points; the
// default enforces ordering at both the protocol and NBI points.
TEST(GraphConstruction, NoReorderAblation) {
  BuiltGraph def(core::ablation_flow_groups());
  EXPECT_TRUE(def.graph().proto_rob(0).enforcing());
  EXPECT_TRUE(def.graph().nbi_rob(0).enforcing());

  BuiltGraph nr(core::ablation_no_reorder());
  for (std::size_t g = 0; g < nr.graph().group_count(); ++g) {
    EXPECT_FALSE(nr.graph().proto_rob(g).enforcing());
    EXPECT_FALSE(nr.graph().nbi_rob(g).enforcing());
  }
}

// Typed port wiring: the graph's edges are explicit and introspectable,
// and the bound Send callbacks route through the same machinery as the
// direct dispatch paths (sending through a port has real effects).
TEST(GraphConstruction, PortWiring) {
  BuiltGraph b(core::agilio_cx40_config());
  Graph& g = b.graph();
  for (std::size_t i = 0; i < g.group_count(); ++i) {
    const std::string gs = std::to_string(i);
    EXPECT_EQ(g.pre(i).out("steer").target(), "proto" + gs);
    EXPECT_EQ(g.proto(i).out("post").target(), "post" + gs);
    EXPECT_EQ(g.post(i).out("dma").target(), "dma");
    EXPECT_EQ(g.post(i).out("notify").target(), "ctx");
  }
  EXPECT_EQ(g.dma_stage().out("nbi").target(), "mac_tx");
  EXPECT_EQ(g.dma_stage().out("notify").target(), "ctx");
  EXPECT_TRUE(static_cast<bool>(g.pre(0).out("steer")));

  // Sending through the pre "steer" port reaches the protocol reorder
  // point: an unknown-connection context is released and consumed there
  // (next_expected advances past its ordering number).
  auto ctx = std::make_shared<core::SegCtx>();
  ctx->flow_group = 0;
  ctx->pipe_seq = 0;
  EXPECT_EQ(g.proto_rob(0).next_expected(), 0u);
  g.pre(0).out("steer")(ctx);
  EXPECT_EQ(g.proto_rob(0).next_expected(), 1u);

  // Sending a materialized segment through the dma "nbi" port egresses
  // it in its snap's slot order, same as the direct to_nbi path.
  struct CountingSink : net::PacketSink {
    int delivered = 0;
    void deliver(const net::PacketPtr&) override { ++delivered; }
  } sink;
  b.dp->set_mac_sink(&sink);
  auto seg = std::make_shared<core::SegCtx>();
  seg->flow_group = 0;
  seg->pkt = std::make_shared<net::Packet>();
  seg->snap.send_ack = true;
  seg->snap.egress_seq = g.next_egress(0);
  g.dma_stage().out("nbi")(seg);
  EXPECT_EQ(sink.delivered, 1);
  EXPECT_EQ(g.nbi_rob(0).next_expected(), 1u);
}

// Stage metadata: roles, policies and traits carried by the graph match
// the paper's structure (pre droppable+sequenced, proto conn-sharded).
TEST(GraphConstruction, StageTraitsAndPolicies) {
  BuiltGraph b(core::agilio_cx40_config());
  Graph& g = b.graph();
  EXPECT_EQ(g.pre(0).policy(), PickPolicy::RoundRobin);
  EXPECT_TRUE(g.pre(0).traits().sequenced);
  EXPECT_TRUE(g.pre(0).traits().droppable);
  EXPECT_EQ(g.pre(0).state_access(), StateAccess::LookupCache);
  EXPECT_EQ(g.proto(0).policy(), PickPolicy::ConnShard);
  EXPECT_EQ(g.proto(0).state_access(), StateAccess::ReadModifyWrite);
  EXPECT_FALSE(g.proto(0).traits().droppable);
  EXPECT_EQ(g.post(0).state_access(), StateAccess::Read);
  EXPECT_EQ(g.dma_stage().role(), StageRole::Dma);
  EXPECT_EQ(g.ctx_stage().role(), StageRole::CtxQueue);
}

// A context that dies after the protocol stage assigned it an NBI
// egress slot (flow removed mid-flight, post/DMA work shed) must release
// the slot, or the egress reorder point stalls the whole flow group.
TEST(GraphConstruction, SkipNbiReleasesEgressSlot) {
  BuiltGraph b(core::agilio_cx40_config());
  Graph& g = b.graph();

  struct CountingSink : net::PacketSink {
    int delivered = 0;
    void deliver(const net::PacketPtr&) override { ++delivered; }
  } sink;
  b.dp->set_mac_sink(&sink);

  // Slot 0 is assigned to a context that then dies; slot 1 arrives
  // first and parks behind it.
  auto dead = std::make_shared<core::SegCtx>();
  dead->flow_group = 0;
  dead->snap.send_ack = true;  // proto assigned it egress slot...
  dead->snap.egress_seq = g.next_egress(0);

  auto late = std::make_shared<core::SegCtx>();
  late->flow_group = 0;
  late->pkt = std::make_shared<net::Packet>();
  const std::uint64_t late_seq = g.next_egress(0);

  g.to_nbi(0, late_seq, late);
  EXPECT_EQ(sink.delivered, 0);  // parked behind the dead slot

  g.skip_nbi(dead);  // the dead context releases its slot...
  EXPECT_EQ(sink.delivered, 1);  // ...and the parked segment egresses

  // Contexts that never took a slot are no-ops.
  auto none = std::make_shared<core::SegCtx>();
  none->flow_group = 0;
  g.skip_nbi(none);
  EXPECT_EQ(g.nbi_rob(0).next_expected(), 2u);
}

// Functional smoke for the no-reorder configuration: segments still
// traverse the full pipeline (deliver -> proto -> post -> DMA -> ACK).
TEST(GraphConstruction, NoReorderStillCarriesTraffic) {
  BuiltGraph b(core::ablation_no_reorder());
  core::Datapath& dp = *b.dp;
  dp.set_local(net::MacAddr::from_u64(0x02AA), net::make_ip(10, 0, 0, 1));
  host::PayloadBuf rx(1 << 16), tx(1 << 16);
  core::FlowInstall ins;
  ins.tuple = {net::make_ip(10, 0, 0, 1), net::make_ip(10, 0, 0, 2), 80,
               9999};
  ins.local_mac = net::MacAddr::from_u64(0x02AA);
  ins.peer_mac = net::MacAddr::from_u64(0x02BB);
  ins.iss = 1000;
  ins.irs = 2000;
  ins.rx_buf = &rx;
  ins.tx_buf = &tx;
  dp.install_flow(ins);

  for (std::uint32_t i = 0; i < 4; ++i) {
    dp.deliver(net::make_tcp_packet(
        net::MacAddr::from_u64(0x02BB), net::MacAddr::from_u64(0x02AA),
        net::make_ip(10, 0, 0, 2), net::make_ip(10, 0, 0, 1), 9999, 80,
        2001 + i * 128, 1001, net::tcpflag::kAck | net::tcpflag::kPsh,
        std::vector<std::uint8_t>(128, 0x55)));
    b.ev.run_until(b.ev.now() + sim::us(20));
  }
  b.ev.run_all();
  EXPECT_EQ(dp.rx_segments(), 4u);
  EXPECT_EQ(dp.acks_sent(), 4u);
  EXPECT_EQ(dp.drops(), 0u);
}

}  // namespace
}  // namespace flextoe::pipeline
