// Inter-arrival statistics for the workload arrival processes: Poisson
// mean and coefficient of variation, deterministic pacing, ON-OFF
// burstiness, and the closed-loop flag.
#include "workload/arrival.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/rng.hpp"

namespace flextoe::workload {
namespace {

struct GapStats {
  double mean_ps = 0;
  double cv = 0;  // stddev / mean
};

GapStats collect(ArrivalModel& m, sim::Rng& rng, int n = 50'000) {
  std::vector<double> gaps;
  gaps.reserve(n);
  double sum = 0;
  for (int i = 0; i < n; ++i) {
    const double g = static_cast<double>(m.next_gap(rng));
    gaps.push_back(g);
    sum += g;
  }
  GapStats st;
  st.mean_ps = sum / n;
  double var = 0;
  for (double g : gaps) var += (g - st.mean_ps) * (g - st.mean_ps);
  st.cv = std::sqrt(var / n) / st.mean_ps;
  return st;
}

TEST(Arrival, ClosedLoopFlag) {
  auto m = closed_loop_arrival();
  EXPECT_TRUE(m->closed_loop());
  EXPECT_FALSE(poisson_arrival(1000)->closed_loop());
  EXPECT_FALSE(paced_arrival(1000)->closed_loop());
  EXPECT_FALSE(on_off_arrival(1000, sim::ms(1), sim::ms(1))->closed_loop());
}

TEST(Arrival, PoissonMeanAndCv) {
  const double rate = 250'000.0;  // per second
  auto m = poisson_arrival(rate);
  EXPECT_DOUBLE_EQ(m->rate_per_sec(), rate);
  sim::Rng rng(11);
  const GapStats st = collect(*m, rng);
  const double expect_mean = double(sim::kPsPerSec) / rate;
  EXPECT_NEAR(st.mean_ps, expect_mean, 0.03 * expect_mean);
  // Exponential gaps: coefficient of variation 1.
  EXPECT_NEAR(st.cv, 1.0, 0.05);
}

TEST(Arrival, PacedIsDeterministic) {
  auto m = paced_arrival(1'000'000.0);
  sim::Rng rng(12);
  const auto g0 = m->next_gap(rng);
  EXPECT_EQ(g0, sim::us(1));
  for (int i = 0; i < 100; ++i) EXPECT_EQ(m->next_gap(rng), g0);
}

TEST(Arrival, OnOffIsBurstierThanPoissonAndSlowerOnAverage) {
  const double burst_rate = 400'000.0;
  auto m = on_off_arrival(burst_rate, sim::ms(1), sim::ms(1));
  // 50% duty cycle -> half the burst rate on average.
  EXPECT_NEAR(m->rate_per_sec(), burst_rate / 2, 1.0);
  sim::Rng rng(13);
  const GapStats st = collect(*m, rng);
  const double burst_gap = double(sim::kPsPerSec) / burst_rate;
  // Average gap is dragged up by OFF periods...
  EXPECT_GT(st.mean_ps, 1.5 * burst_gap);
  // ...and the process is burstier than Poisson.
  EXPECT_GT(st.cv, 1.5);
}

TEST(Arrival, DeterministicPerSeed) {
  auto a = poisson_arrival(100'000.0);
  auto b = poisson_arrival(100'000.0);
  sim::Rng ra(77), rb(77);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a->next_gap(ra), b->next_gap(rb));
  }
}

}  // namespace
}  // namespace flextoe::workload
