#include "sim/cpu.hpp"

#include <algorithm>

namespace flextoe::sim {

TimePs CpuPool::run(std::uint64_t cycles, CpuCat cat, TimePs not_before,
                    std::function<void()> cb) {
  cycles_[static_cast<std::size_t>(cat)] += cycles;

  // Earliest-available core.
  auto it = std::min_element(core_free_.begin(), core_free_.end());
  TimePs start = std::max({ev_.now(), not_before, *it});

  const TimePs work = clock_.cycles(cycles);
  TimePs end;
  if (serial_frac_ > 0.0) {
    const auto serial = static_cast<TimePs>(static_cast<double>(work) *
                                            serial_frac_);
    const TimePs parallel = work - serial;
    // The serial share must hold the global lock.
    const TimePs lock_at = std::max(start, lock_free_);
    lock_free_ = lock_at + serial;
    end = lock_free_ + parallel;
  } else {
    end = start + work;
  }
  *it = end;
  busy_ += end - start;

  if (cb) {
    ev_.schedule_at(end, std::move(cb));
  }
  return end;
}

}  // namespace flextoe::sim
