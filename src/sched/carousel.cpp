// Carousel implementation (see carousel.hpp): ready-queue round-robin
// for uncongested flows, time-wheel insertion keyed by the next pacing
// deadline for rate-limited ones, one trigger per SCH service interval,
// and lazy removal (dead flows are skipped at dequeue, as a wheel walk
// on the NFP would be unaffordable).
#include "sched/carousel.hpp"

#include <algorithm>

#include "trace/trace.hpp"

namespace flextoe::sched {

Carousel::Carousel(sim::Domain& ev, CarouselParams params)
    : ev_(ev), params_(params), wheel_(params.num_slots) {}

void Carousel::bind_telemetry(telemetry::Registry& reg,
                              const std::string& prefix) {
  if (!telem_.bind(reg)) return;
  t_triggers_ = reg.counter(prefix + "/triggers");
  t_tx_bytes_ = reg.counter(prefix + "/tx_bytes");
  t_parked_ = reg.counter(prefix + "/parked");
  t_ready_depth_ = reg.histogram(prefix + "/ready_depth");
  t_wheel_flows_ = reg.histogram(prefix + "/wheel_flows");
  t_flows_ = reg.gauge(prefix + "/flows");
}

std::size_t Carousel::footprint_bytes() const {
  // unordered_map nodes (pair + chain pointer) + bucket array, plus the
  // ready deque and wheel slot vectors.
  std::size_t bytes = sizeof(Carousel);
  bytes += flows_.size() *
           (sizeof(std::pair<const FlowId, FlowState>) + 2 * sizeof(void*));
  bytes += flows_.bucket_count() * sizeof(void*);
  bytes += ready_.size() * sizeof(FlowId);
  for (const auto& slot : wheel_) bytes += slot.capacity() * sizeof(FlowId);
  return bytes;
}

void Carousel::set_rate(FlowId flow, std::uint64_t bytes_per_sec) {
  auto& st = flows_[flow];
  st.dead = false;
  if (bytes_per_sec == 0 || bytes_per_sec >= params_.uncongested_rate) {
    st.ps_per_byte = 0;
  } else {
    st.ps_per_byte = sim::kPsPerSec / bytes_per_sec;
    if (st.ps_per_byte == 0) st.ps_per_byte = 1;
  }
}

void Carousel::update_avail(FlowId flow, std::uint64_t avail) {
  auto& st = flows_[flow];
  st.dead = false;
  st.avail = avail;
  st.parked = false;
  if (st.avail > 0 && !st.queued) enqueue_ready(flow);
}

void Carousel::add_avail(FlowId flow, std::uint64_t delta) {
  auto& st = flows_[flow];
  st.dead = false;
  st.avail += delta;
  st.parked = false;
  if (st.avail > 0 && !st.queued) enqueue_ready(flow);
}

void Carousel::kick(FlowId flow) {
  auto& st = flows_[flow];
  if (st.dead) return;
  st.parked = false;
  if (st.avail > 0 && !st.queued) enqueue_ready(flow);
}

void Carousel::remove_flow(FlowId flow) {
  auto it = flows_.find(flow);
  if (it == flows_.end()) return;
  // Mark dead; lazily skipped when dequeued from ready/wheel.
  it->second.dead = true;
  it->second.avail = 0;
}

void Carousel::enqueue_ready(FlowId flow) {
  auto& st = flows_[flow];
  st.queued = true;
  ready_.push_back(flow);
  // Queued-residency span: opens here (or at wheel insertion), closes
  // when service_one pops the flow.
  if (trace::Ring* r = ev_.trace_ring()) {
    if (trace_base_ == 0) {
      trace_base_ = trace::Tracer::instance().next_actor_base();
      trace_track_ = trace::Tracer::instance().intern("sched/carousel");
      trace_name_queued_ = trace::Tracer::instance().intern("queued");
      trace_name_trigger_ = trace::Tracer::instance().intern("trigger");
      trace_name_tick_ = trace::Tracer::instance().intern("wheel_tick");
    }
    r->record(ev_.now(), trace::Phase::kAsyncBegin, trace_name_queued_,
              trace_track_, trace_base_ | flow, ready_.size());
  }
  pump();
}

void Carousel::enqueue_wheel(FlowId flow, sim::TimePs deadline) {
  auto& st = flows_[flow];
  st.queued = true;

  if (wheel_count_ == 0) {
    // (Re)anchor the wheel at the current time.
    wheel_time_ = ev_.now();
    wheel_pos_ = 0;
  }
  const sim::TimePs horizon =
      params_.slot_granularity * static_cast<sim::TimePs>(wheel_.size() - 1);
  sim::TimePs delta = deadline > ev_.now() ? deadline - ev_.now() : 0;
  delta = std::min(delta, horizon);
  // Slot offset relative to current wheel position. A deadline inside the
  // current slot is due now: it goes straight to the ready queue (the
  // current slot is only serviced again after a full rotation).
  const std::size_t off =
      static_cast<std::size_t>(delta / params_.slot_granularity);
  if (off == 0) {
    st.queued = false;  // enqueue_ready re-marks it
    enqueue_ready(flow);
    return;
  }
  const std::size_t slot = (wheel_pos_ + off) % wheel_.size();
  wheel_[slot].push_back(flow);
  ++wheel_count_;
  if (telem_.on()) t_wheel_flows_->record(wheel_count_);
  if (trace::Ring* r = ev_.trace_ring()) {
    if (trace_base_ == 0) {
      trace_base_ = trace::Tracer::instance().next_actor_base();
      trace_track_ = trace::Tracer::instance().intern("sched/carousel");
      trace_name_queued_ = trace::Tracer::instance().intern("queued");
      trace_name_trigger_ = trace::Tracer::instance().intern("trigger");
      trace_name_tick_ = trace::Tracer::instance().intern("wheel_tick");
    }
    r->record(ev_.now(), trace::Phase::kAsyncBegin, trace_name_queued_,
              trace_track_, trace_base_ | flow, wheel_count_);
  }

  if (!wheel_tick_scheduled_) {
    wheel_tick_scheduled_ = true;
    ev_.schedule_in(params_.slot_granularity, [this, alive = alive_] {
      if (*alive) wheel_tick();
    });
  }
}

void Carousel::wheel_tick() {
  wheel_tick_scheduled_ = false;
  // Advance one slot; expire its flows into the ready queue.
  wheel_pos_ = (wheel_pos_ + 1) % wheel_.size();
  wheel_time_ += params_.slot_granularity;
  auto& slot = wheel_[wheel_pos_];
  for (FlowId f : slot) {
    ready_.push_back(f);
    --wheel_count_;
  }
  slot.clear();
  if (trace::Ring* r = ev_.trace_ring()) {
    if (trace_name_tick_ != 0) {
      r->record(ev_.now(), trace::Phase::kInstant, trace_name_tick_,
                trace_track_, 0, wheel_count_);
    }
  }
  pump();
  if (wheel_count_ > 0 && !wheel_tick_scheduled_) {
    wheel_tick_scheduled_ = true;
    ev_.schedule_in(params_.slot_granularity, [this, alive = alive_] {
      if (*alive) wheel_tick();
    });
  }
}

void Carousel::pump() {
  if (service_scheduled_ || ready_.empty()) return;
  service_scheduled_ = true;
  const sim::TimePs at = std::max(ev_.now(), next_service_);
  next_service_ = at + params_.service_interval;
  ev_.schedule_at(at, [this, alive = alive_] {
    if (!*alive) return;
    service_scheduled_ = false;
    service_one();
    pump();
  });
}

void Carousel::service_one() {
  if (telem_.on()) {
    t_ready_depth_->record(ready_.size());
    t_flows_->set(static_cast<std::int64_t>(flows_.size()));
  }
  while (!ready_.empty()) {
    const FlowId flow = ready_.front();
    ready_.pop_front();
    auto& st = flows_[flow];
    st.queued = false;
    // Close the queued-residency span (also for lazily-removed dead
    // flows, so every begin pairs).
    if (trace::Ring* r = ev_.trace_ring()) {
      if (trace_base_ != 0) {
        r->record(ev_.now(), trace::Phase::kAsyncEnd, trace_name_queued_,
                  trace_track_, trace_base_ | flow, ready_.size());
      }
    }
    if (st.dead || st.avail == 0) continue;

    ++trigger_count_;
    if (telem_.on()) t_triggers_->inc();
    const std::uint32_t sent = trigger_ ? trigger_(flow) : 0;
    if (trace::Ring* r = ev_.trace_ring()) {
      if (trace_base_ != 0) {
        r->record(ev_.now(), trace::Phase::kInstant, trace_name_trigger_,
                  trace_track_, trace_base_ | flow, sent);
      }
    }
    if (sent == 0) {
      // Blocked (window closed / pipeline full): park until the data-path
      // kicks us (window opened, data appended, reset).
      st.parked = true;
      if (telem_.on()) t_parked_->inc();
      return;
    }
    if (telem_.on()) t_tx_bytes_->inc(sent);
    st.avail -= std::min<std::uint64_t>(st.avail, sent);
    if (st.avail > 0) {
      if (st.ps_per_byte == 0) {
        enqueue_ready(flow);  // uncongested: round-robin
      } else {
        enqueue_wheel(flow, ev_.now() + st.ps_per_byte * sent);
      }
    }
    return;  // one trigger per service interval
  }
}

}  // namespace flextoe::sched
