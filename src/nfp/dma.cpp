#include "nfp/dma.hpp"

#include <utility>

#include "trace/trace.hpp"

namespace flextoe::nfp {

namespace {
// Layout stand-in for the completion lambda in DmaEngine::start — the
// largest hot closure in the simulator. If this stops fitting inline in
// an EventQueue callback, every DMA completion silently pays a heap
// allocation; fail the build instead.
struct CompletionClosureProbe {
  void* engine;
  std::shared_ptr<bool> alive;
  DmaEngine::DoneFn done;
  void operator()() {}
};
static_assert(
    sim::EventQueue::Callback::fits_inline<CompletionClosureProbe>(),
    "DMA completion closures must stay inline in EventQueue callbacks");
}  // namespace

void DmaEngine::bind_telemetry(telemetry::Registry& reg,
                               const std::string& prefix) {
  if (!telem_.bind(reg)) return;
  t_txn_ = reg.counter(prefix + "/transactions");
  t_bytes_ = reg.counter(prefix + "/bytes");
  t_mmio_ = reg.counter(prefix + "/mmio");
  t_outstanding_ = reg.histogram(prefix + "/outstanding");
  t_wait_depth_ = reg.histogram(prefix + "/wait_depth");
}

void DmaEngine::issue(std::uint32_t bytes, DoneFn done,
                      std::uint64_t trace_cid) {
  // Span opens at issue so slot-wait time is inside it; the matching
  // end id is derived FIFO at completion (see trace_base_ in dma.hpp).
  if (trace::Ring* r = ev_.trace_ring()) {
    if (trace_base_ == 0) {
      trace_base_ = trace::Tracer::instance().next_actor_base();
      trace_track_ = trace::Tracer::instance().intern("dma/pcie");
      trace_name_xfer_ = trace::Tracer::instance().intern("xfer");
      trace_name_mmio_ = trace::Tracer::instance().intern("mmio");
    }
    r->record(ev_.now(), trace::Phase::kAsyncBegin, trace_name_xfer_,
              trace_track_, trace_base_ | ++trace_issue_seq_, trace_cid);
  }
  if (outstanding_ >= params_.max_outstanding) {
    waiting_.push_back(Pending{bytes, std::move(done)});
    if (telem_.on()) t_wait_depth_->record(waiting_.size());
    return;
  }
  start(Pending{bytes, std::move(done)});
}

void DmaEngine::start(Pending p) {
  ++outstanding_;
  ++transactions_;
  bytes_moved_ += p.bytes;
  if (telem_.on()) {
    t_txn_->inc();
    t_bytes_->inc(p.bytes);
    t_outstanding_->record(outstanding_);
  }

  const sim::TimePs begin = std::max(ev_.now(), bus_free_);
  bus_free_ = begin + xfer_time(p.bytes);
  const sim::TimePs completion = bus_free_ + params_.latency;

  ev_.schedule_at(completion, [this, alive = alive_,
                               done = std::move(p.done)]() mutable {
    if (!*alive) return;  // engine destroyed with this DMA in flight
    --outstanding_;
    if (trace::Ring* r = ev_.trace_ring()) {
      r->record(ev_.now(), trace::Phase::kAsyncEnd, trace_name_xfer_,
                trace_track_, trace_base_ | ++trace_done_seq_, 0);
    }
    if (done) done();
    if (!waiting_.empty() && outstanding_ < params_.max_outstanding) {
      Pending next = std::move(waiting_.front());
      waiting_.pop_front();
      start(std::move(next));
    }
  });
}

void DmaEngine::mmio(DoneFn done, std::uint64_t trace_cid) {
  if (telem_.on()) t_mmio_->inc();
  if (trace::Ring* r = ev_.trace_ring()) {
    if (trace_base_ == 0) {
      trace_base_ = trace::Tracer::instance().next_actor_base();
      trace_track_ = trace::Tracer::instance().intern("dma/pcie");
      trace_name_xfer_ = trace::Tracer::instance().intern("xfer");
      trace_name_mmio_ = trace::Tracer::instance().intern("mmio");
    }
    r->record(ev_.now(), trace::Phase::kInstant, trace_name_mmio_,
              trace_track_, trace_cid, 0);
  }
  ev_.schedule_in(params_.mmio_latency, std::move(done));
}

}  // namespace flextoe::nfp
