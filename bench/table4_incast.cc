// Table 4: FlexTOE congestion control under incast. A FlexTOE machine
// sends 64 KB RPCs over many connections toward a server behind a shaped
// switch port (incast degree d -> 40/d Gbps) with WRED tail drops and ECN
// marking. Control-plane-driven DCTCP paces the offloaded flows through
// Carousel; the ablation turns that off (scheduler runs unpaced). Two
// series (cc_on / cc_off); rows are "<degree>/<conns>" cases.
#include <cstdio>

#include "common.hpp"

using namespace flextoe;
using namespace flextoe::benchx;

namespace {

struct Res {
  double gbps;
  double p9999_ms;
  double jfi;
};

Res run_case(unsigned degree, unsigned conns, bool cc_on, sim::TimePs warm,
             sim::TimePs span) {
  Testbed tb(73);
  // Node 0: FlexTOE sender (the system under test).
  auto& sender = tb.add_flextoe_node({.cores = 8});
  sender.toe->control_plane().set_cc_enabled(cc_on);
  // Node 1: receiver running a 32 B-response echo service.
  auto& receiver = tb.add_client_node();
  app::EchoServer srv(tb.ev(), *receiver.stack,
                      {.port = 7, .response_size = 32});

  // Shaped port toward the receiver: incast degree d -> 40/d Gbps, with
  // a shallow WRED buffer.
  tb.the_switch().port_params(1).gbps = 40.0 / degree;
  tb.the_switch().port_params(1).queue_bytes = 256 * 1024;
  tb.the_switch().port_params(1).ecn_threshold = 64 * 1024;

  app::ClosedLoopClient::Params cp;
  cp.connections = conns;
  cp.pipeline = 1;
  cp.request_size = 64 * 1024;
  cp.response_size = 32;
  app::ClosedLoopClient cli(tb.ev(), *sender.stack, receiver.ip, cp);
  cli.start();

  tb.run_for(warm);
  cli.clear_stats();
  const std::uint64_t base = srv.bytes_rx();
  tb.run_for(span);

  Res r;
  r.gbps = static_cast<double>(srv.bytes_rx() - base) * 8.0 /
           sim::to_sec(span) / 1e9;
  r.p9999_ms = cli.latency().percentile(99.99) / 1000.0;
  r.jfi = sim::jains_fairness_index(cli.per_conn_completed());
  return r;
}

}  // namespace

BENCH_SCENARIO(table4, "congestion control under incast") {
  const auto warm = ctx.pick(sim::ms(60), sim::ms(10));
  const auto span = ctx.pick(sim::ms(250), sim::ms(30));

  struct Case {
    unsigned deg, conns;
  };
  const auto cases = ctx.pick<std::vector<Case>>(
      {{4, 16}, {4, 64}, {4, 128}, {10, 10}, {20, 20}}, {{4, 16}});

  for (Case c : cases) {
    char label[32];
    std::snprintf(label, sizeof label, "%u/%u", c.deg, c.conns);
    for (bool cc_on : {true, false}) {
      const Res res = run_case(c.deg, c.conns, cc_on, warm, span);
      auto& row =
          ctx.report().series(cc_on ? "cc_on" : "cc_off").row(label);
      row.set("gbps", res.gbps);
      row.set("p99.99_ms", res.p9999_ms);
      row.set("jfi", res.jfi);
    }
  }
  ctx.report().note(
      "Paper shape: CC achieves the shaped line rate with low tail and "
      "high JFI; disabling it causes excessive drops — tail latency\n"
      "inflated up to ~18x and fairness skewed (JFI down to ~0.46), worst "
      "at higher incast degrees.");
}
