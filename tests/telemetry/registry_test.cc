// Unit tests for the telemetry registry: counter/gauge/histogram
// semantics, stable handles, runtime enable inheritance, snapshot
// sorting/merging, and the JSON round-trip contract behind the
// `telemetry` section of BENCH_<name>.json.
#include "telemetry/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

namespace flextoe::telemetry {
namespace {

TEST(Counter, MonotonicInc) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.set(7);
  g.add(-10);
  EXPECT_EQ(g.value(), -3);
}

TEST(Gauge, PeakTracksHighWaterMark) {
  Gauge g;
  EXPECT_EQ(g.peak(), 0);
  g.set(7);
  g.add(5);        // 12: new high-water mark
  g.add(-10);      // 2: current drops, peak must not
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.peak(), 12);
  g.set(3);
  EXPECT_EQ(g.peak(), 12);
  g.reset();
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.peak(), 0);
}

TEST(Histogram, Log2BucketBoundaries) {
  // Bucket 0 holds only zeros; bucket i holds [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(7), 3u);
  EXPECT_EQ(Histogram::bucket_of(8), 4u);
  EXPECT_EQ(Histogram::bucket_of(~0ull), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::bucket_floor(0), 0u);
  EXPECT_EQ(Histogram::bucket_floor(1), 1u);
  EXPECT_EQ(Histogram::bucket_floor(4), 8u);
}

TEST(Histogram, RecordAccumulatesCountSumMax) {
  Histogram h;
  for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 100ull}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 106u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 106.0 / 5.0);
  EXPECT_EQ(h.buckets()[0], 1u);  // the zero
  EXPECT_EQ(h.buckets()[1], 1u);  // 1
  EXPECT_EQ(h.buckets()[2], 2u);  // 2, 3
  EXPECT_EQ(h.buckets()[7], 1u);  // 100 in [64, 128)
}

TEST(Registry, StableFindOrCreateHandles) {
  Registry reg;
  Counter* a = reg.counter("x/a");
  Gauge* g = reg.gauge("x/g");
  Histogram* h = reg.histogram("x/h");
  // Force deque growth; handles must stay valid and deduplicated.
  for (int i = 0; i < 1000; ++i) {
    reg.counter("bulk/" + std::to_string(i));
  }
  EXPECT_EQ(reg.counter("x/a"), a);
  EXPECT_EQ(reg.gauge("x/g"), g);
  EXPECT_EQ(reg.histogram("x/h"), h);
  EXPECT_EQ(reg.num_metrics(), 1003u);
  a->inc();
  reg.clear();
  EXPECT_EQ(a->value(), 0u);
}

TEST(Registry, NewRegistriesInheritTheProcessDefault) {
  ASSERT_TRUE(default_enabled());
  set_default_enabled(false);
  Registry off;
  set_default_enabled(true);
  Registry on;
  if (kCompiledIn) {
    EXPECT_FALSE(off.enabled());
    EXPECT_TRUE(on.enabled());
    off.set_enabled(true);
    EXPECT_TRUE(off.enabled());
  } else {
    EXPECT_FALSE(off.enabled());
    EXPECT_FALSE(on.enabled());
  }
}

// HistogramData equivalent of a live Histogram (what snapshot() emits),
// computable in every build mode — Histogram::record itself is ungated.
HistogramData data_of(const Histogram& h) {
  HistogramData d;
  d.count = h.count();
  d.sum = h.sum();
  d.max = h.max();
  const auto& b = h.buckets();
  std::size_t last = b.size();
  while (last > 0 && b[last - 1] == 0) --last;
  d.buckets.assign(b.begin(), b.begin() + last);
  return d;
}

// Hand-built (not via Registry::snapshot(), which rightly exports
// nothing in -DFLEXTOE_TELEMETRY=OFF builds — these Snapshot tests
// must pass in the reference build too).
Snapshot sample_snapshot() {
  Snapshot s;
  s.enabled = true;
  s.counters = {{"a/one", 1}, {"b/two", 2}};
  // Every gauge snapshot carries its high-water companion; the peak of
  // a gauge only ever set negative is its initial 0.
  s.gauges = {{"g/level", -5}, {"g/level_peak", 0}};
  Histogram h;
  h.record(0);
  h.record(3);
  h.record(300);
  s.histograms = {{"h/lat", data_of(h)}};
  return s;
}

TEST(Snapshot, RegistrySnapshotSortsAndTrims) {
  if (!kCompiledIn) {
    GTEST_SKIP() << "snapshot() exports nothing when compiled out";
  }
  Registry reg;
  reg.counter("b/two")->inc(2);
  reg.counter("a/one")->inc(1);
  reg.gauge("g/level")->set(-5);
  Histogram* h = reg.histogram("h/lat");
  h->record(0);
  h->record(3);
  h->record(300);
  Snapshot s = reg.snapshot();
  s.enabled = true;
  // Registration order was b-then-a; the snapshot sorts, trims
  // histogram buckets, and matches the hand-built equivalent.
  ASSERT_EQ(s.counters.size(), 2u);
  EXPECT_EQ(s.counters[0].first, "a/one");
  const Snapshot expect = sample_snapshot();
  EXPECT_EQ(s.to_json(), expect.to_json());
}

TEST(Snapshot, DisabledRegistryExportsNothing) {
  Registry reg;
  reg.counter("x")->inc(3);
  reg.set_enabled(false);
  const Snapshot s = reg.snapshot();
  EXPECT_FALSE(s.enabled);
  EXPECT_TRUE(s.empty());
}

TEST(Snapshot, SortedLookupAndBucketTrim) {
  const Snapshot s = sample_snapshot();
  ASSERT_EQ(s.counters.size(), 2u);
  EXPECT_EQ(s.counters[0].first, "a/one");  // sorted by path
  EXPECT_EQ(s.counters[1].first, "b/two");
  ASSERT_NE(s.counter("b/two"), nullptr);
  EXPECT_EQ(*s.counter("b/two"), 2u);
  EXPECT_EQ(s.counter("missing"), nullptr);
  ASSERT_NE(s.gauge("g/level"), nullptr);
  EXPECT_EQ(*s.gauge("g/level"), -5);
  const HistogramData* h = s.histogram("h/lat");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 3u);
  EXPECT_EQ(h->sum, 303u);
  EXPECT_EQ(h->max, 300u);
  // 300 lands in bucket 9 ([256, 512)); trailing zero buckets trimmed.
  ASSERT_EQ(h->buckets.size(), 10u);
  EXPECT_EQ(h->buckets[9], 1u);
}

TEST(Snapshot, MergeSumsAndKeepsDeterministicOrder) {
  Snapshot a = sample_snapshot();
  Snapshot b = sample_snapshot();
  b.counters.emplace_back("z/extra", 7);
  a.merge(b);
  EXPECT_EQ(*a.counter("a/one"), 2u);
  EXPECT_EQ(*a.counter("z/extra"), 7u);
  EXPECT_EQ(*a.gauge("g/level"), -5);  // gauges merge by max (levels)
  const HistogramData* h = a.histogram("h/lat");
  EXPECT_EQ(h->count, 6u);
  EXPECT_EQ(h->sum, 606u);
  EXPECT_EQ(h->max, 300u);
  EXPECT_EQ(h->buckets[9], 2u);
  // Still sorted after the merge.
  for (std::size_t i = 1; i < a.counters.size(); ++i) {
    EXPECT_LT(a.counters[i - 1].first, a.counters[i].first);
  }
}

TEST(Snapshot, JsonRoundTrip) {
  Snapshot s = sample_snapshot();
  s.counters.emplace_back("weird \"path\"\n", 3);  // exercise escaping
  std::sort(s.counters.begin(), s.counters.end());

  Snapshot back;
  std::string err;
  ASSERT_TRUE(Snapshot::from_json(s.to_json(), &back, &err)) << err;
  EXPECT_EQ(back.enabled, s.enabled);
  ASSERT_EQ(back.counters.size(), s.counters.size());
  for (std::size_t i = 0; i < s.counters.size(); ++i) {
    EXPECT_EQ(back.counters[i], s.counters[i]);
  }
  ASSERT_EQ(back.gauges.size(), s.gauges.size());
  EXPECT_EQ(*back.gauge("g/level"), -5);
  const HistogramData* h = back.histogram("h/lat");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 3u);
  EXPECT_EQ(h->sum, 303u);
  EXPECT_EQ(h->max, 300u);
  EXPECT_EQ(h->buckets, s.histogram("h/lat")->buckets);
  // The round-trip is a fixed point: re-serializing parses identically.
  EXPECT_EQ(back.to_json(), s.to_json());
}

TEST(Snapshot, FromJsonRejectsMalformedInput) {
  Snapshot out;
  std::string err;
  for (const char* bad :
       {"", "{", "{\"enabled\": maybe}", "{\"counters\": [1]}",
        "{\"histograms\": {\"x\": {\"frob\": 1}}}", "{} trailing"}) {
    EXPECT_FALSE(Snapshot::from_json(bad, &out, &err)) << bad;
    EXPECT_FALSE(err.empty());
  }
  EXPECT_TRUE(Snapshot::from_json("{}", &out, &err)) << err;
  EXPECT_TRUE(out.empty());
}

TEST(HistogramData, ApproximateQuantiles) {
  Histogram h;
  for (int i = 0; i < 99; ++i) h.record(10);  // bucket 4: [8, 16)
  h.record(1000);                             // bucket 10: [512, 1024)
  const HistogramData d = data_of(h);
  // p50 within bucket [8,16) -> upper bound 15; p999 hits the outlier.
  EXPECT_EQ(d.quantile(0.50), 15u);
  EXPECT_GE(d.quantile(0.999), 512u);
  EXPECT_LE(d.quantile(0.999), 1000u);  // clamped to observed max
  EXPECT_EQ(d.quantile(0.0), 15u);      // lowest non-empty bucket
}

TEST(Accumulator, MergesAndResets) {
  reset_accumulator();
  EXPECT_TRUE(accumulator().empty());
  accumulate(sample_snapshot());
  accumulate(sample_snapshot());
  EXPECT_EQ(*accumulator().counter("a/one"), 2u);
  reset_accumulator();
  EXPECT_TRUE(accumulator().empty());
}

}  // namespace
}  // namespace flextoe::telemetry
