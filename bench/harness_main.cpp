// Entry point shared by all bench binaries. Kept out of harness.cpp so
// harness_test can link the harness (and scenario files) next to
// gtest_main without a duplicate main().
#include "harness.hpp"

int main(int argc, char** argv) {
  return flextoe::benchx::bench_main(argc, argv);
}
