// Figure 8: Memcached throughput scalability — MOps vs server cores for
// Linux, Chelsio, TAS, FlexTOE. One series per stack; rows are core
// counts.
#include "common.hpp"

using namespace flextoe;
using namespace flextoe::benchx;

namespace {

double run_point(Stack s, unsigned nc, unsigned seed, sim::TimePs warm,
                 sim::TimePs span) {
  Testbed tb(seed);
  auto& server = add_server(tb, s, nc);
  // Several client machines, as in the paper's testbed.
  std::vector<std::unique_ptr<app::KvClient>> clients;
  const unsigned nclients = 3;
  for (unsigned i = 0; i < nclients; ++i) {
    auto& cn = tb.add_client_node();
    app::KvClient::Params cp;
    cp.connections = 8 + 4 * nc;  // enough load to saturate
    cp.pipeline = 4;
    cp.seed = 100 + i;
    clients.push_back(std::make_unique<app::KvClient>(
        tb.ev(), *cn.stack, server.ip, cp));
  }
  app::KvServer srv(tb.ev(), *server.stack,
                    {.port = 11211, .app_cycles = app_cycles(s)},
                    server.cpu.get());
  for (auto& c : clients) c->start();

  tb.run_for(warm);
  std::uint64_t base = 0;
  for (auto& c : clients) base += c->completed();
  tb.run_for(span);
  std::uint64_t done = 0;
  for (auto& c : clients) done += c->completed();
  done -= base;
  return static_cast<double>(done) / sim::to_sec(span) / 1e6;
}

}  // namespace

BENCH_SCENARIO(fig08, "memcached throughput (MOps) vs server cores") {
  const auto cores = ctx.pick<std::vector<unsigned>>(
      {1, 2, 4, 6, 8, 10, 12, 14, 16}, {1, 4});
  const auto warm = ctx.pick(sim::ms(15), sim::ms(3));
  const auto span = ctx.pick(sim::ms(30), sim::ms(5));
  for (unsigned nc : cores) {
    for (Stack s : all_stacks()) {
      const double mops = ctx.measure([&](int rep) {
        return run_point(s, nc, 17 + static_cast<unsigned>(rep), warm, span);
      });
      ctx.report().series(stack_name(s)).set(std::to_string(nc), "mops",
                                             mops);
    }
  }
  ctx.report().note(
      "Paper shape: FlexTOE ~1.6x TAS, ~4.9x Chelsio, ~5.5x Linux at "
      "saturation; FlexTOE NIC compute-bound around 12 cores;\n"
      "Linux/Chelsio plateau early (in-kernel locking).");
}
