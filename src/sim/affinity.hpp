// Debug-build domain-affinity contract for pooled allocators.
//
// The parallel domain scheduler (sim/domain.hpp) runs each island's
// simulation on one worker thread. The recycling pools on the segment
// hot path — net::PacketPool and pipeline::SharedPool — use plain-int
// reference counts and unlocked free lists on purpose: within a domain
// the simulator is single-threaded, and the pools sit on the per-packet
// and per-segment fast paths. That is only sound under the affinity
// contract: every acquire and release of a pooled object happens on the
// thread that owns the pool's domain. Objects may cross domains only
// through the epoch mailbox hand-off, where the scheduler barrier
// quiesces both sides; code performing such a hand-off must move the
// object's ownership (and, for a migrating pool, call rebind()).
//
// ThreadAffinity enforces the contract where assertions are live
// (Debug, Sanitize, and TSan builds; RelWithDebInfo/Release define
// NDEBUG and compile the check away to an empty struct): the pool binds
// to the first thread that touches it and every later pooled operation
// must come from that thread.
#pragma once

#include <cassert>

#if !defined(NDEBUG)
#include <thread>
#define FLEXTOE_AFFINITY_CHECKS 1
#else
#define FLEXTOE_AFFINITY_CHECKS 0
#endif

namespace flextoe::sim {

#if FLEXTOE_AFFINITY_CHECKS

class ThreadAffinity {
 public:
  // Binds on first use; asserts on any use from another thread.
  void check() {
    if (bound_ == std::thread::id{}) {
      bound_ = std::this_thread::get_id();
      return;
    }
    assert(bound_ == std::this_thread::get_id() &&
           "pooled object used off its owning domain's thread "
           "(domain-affinity contract, sim/affinity.hpp)");
  }

  // Legitimate ownership hand-off (epoch mailbox transfer between
  // quiesced threads): rebind to the next thread that calls check().
  void rebind() { bound_ = std::thread::id{}; }

 private:
  std::thread::id bound_{};
};

#else

class ThreadAffinity {
 public:
  void check() {}
  void rebind() {}
};

#endif

}  // namespace flextoe::sim
