// Application + testbed integration: the same app binaries (KV server,
// echo, producers) running over FlexTOE and every baseline personality.
#include "app/testbed.hpp"

#include <gtest/gtest.h>

#include "app/kv.hpp"
#include "app/rpc_app.hpp"

namespace flextoe::app {
namespace {

TEST(Testbed, KvOverFlexToe) {
  Testbed tb(1);
  auto& server = tb.add_flextoe_node({.cores = 2});
  auto& client = tb.add_client_node();

  KvServer srv(tb.ev(), *server.stack, {}, server.cpu.get());
  KvClient::Params cp;
  cp.connections = 4;
  cp.pipeline = 2;
  cp.get_ratio = 0.5;
  KvClient cli(tb.ev(), *client.stack, server.ip, cp);
  cli.start();

  tb.run_for(sim::ms(50));
  EXPECT_GT(cli.completed(), 500u);
  EXPECT_GT(srv.sets(), 100u);
  EXPECT_GT(srv.gets(), 100u);
  EXPECT_GT(srv.store().size(), 10u);
  // Some GETs hit values previously SET.
  EXPECT_LT(srv.misses(), srv.gets());
}

struct PersonalityCase {
  const char* name;
};

class KvOverBaselines : public ::testing::TestWithParam<const char*> {};

TEST_P(KvOverBaselines, CompletesTransactions) {
  const std::string which = GetParam();
  Testbed tb(2);
  baseline::Personality pers = which == "linux"   ? baseline::linux_personality()
                               : which == "chelsio" ? baseline::chelsio_personality()
                                                    : baseline::tas_personality();
  auto& server = tb.add_sw_node({.cores = 2}, pers);
  auto& client = tb.add_client_node();

  KvServer srv(tb.ev(), *server.stack, {.port = 11211, .app_cycles = pers.app_cycles_per_req},
               server.cpu.get());
  KvClient::Params cp;
  cp.connections = 4;
  cp.pipeline = 2;
  KvClient cli(tb.ev(), *client.stack, server.ip, cp);
  cli.start();

  tb.run_for(sim::ms(50));
  EXPECT_GT(cli.completed(), 200u) << which;
  EXPECT_GT(srv.gets() + srv.sets(), 200u) << which;
  // Host CPU cycles were actually charged.
  EXPECT_GT(server.cpu->total_cycles(), 0u) << which;
}

INSTANTIATE_TEST_SUITE_P(Stacks, KvOverBaselines,
                         ::testing::Values("linux", "chelsio", "tas"));

TEST(Testbed, EchoRpcOverFlexToeSaturates) {
  Testbed tb(3);
  auto& server = tb.add_flextoe_node({.cores = 4});
  auto& client = tb.add_client_node();

  EchoServer srv(tb.ev(), *server.stack, {.port = 7}, nullptr);
  ClosedLoopClient::Params cp;
  cp.connections = 16;
  cp.pipeline = 4;
  cp.request_size = 64;
  ClosedLoopClient cli(tb.ev(), *client.stack, server.ip, cp);
  cli.start();

  tb.run_for(sim::ms(20));
  cli.clear_stats();
  tb.run_for(sim::ms(50));
  const double mops = static_cast<double>(cli.completed()) / 50e3;
  EXPECT_GT(mops, 0.2) << "echo RPC rate too low: " << mops << " MOps";
  EXPECT_GT(cli.latency().median(), 0.0);
}

TEST(Testbed, ProducerStreamsToDrainClients) {
  Testbed tb(4);
  auto& server = tb.add_flextoe_node({.cores = 2});
  auto& client = tb.add_client_node();

  ProducerServer srv(tb.ev(), *server.stack, {.port = 9, .frame_size = 4096});
  DrainClient::Params dp;
  dp.connections = 4;
  dp.port = 9;
  DrainClient cli(tb.ev(), *client.stack, server.ip, dp);
  cli.start();

  tb.run_for(sim::ms(50));
  // Should move serious volume (tens of Mbit in 50 ms).
  EXPECT_GT(cli.bytes_rx(), 5u * 1024 * 1024);
  const auto per_conn = cli.per_conn_bytes();
  for (double b : per_conn) EXPECT_GT(b, 0.0);
}

TEST(Testbed, MultipleServersShareSwitch) {
  Testbed tb(5);
  auto& s1 = tb.add_flextoe_node({.cores = 1});
  auto& s2 = tb.add_sw_node({.cores = 1}, baseline::tas_personality());
  auto& client = tb.add_client_node();

  EchoServer e1(tb.ev(), *s1.stack, {.port = 7});
  EchoServer e2(tb.ev(), *s2.stack, {.port = 7});

  ClosedLoopClient::Params cp;
  cp.connections = 2;
  cp.request_size = 128;
  // One client stack can only hold one callback set; use two client nodes.
  auto& client2 = tb.add_client_node();
  ClosedLoopClient c1(tb.ev(), *client.stack, s1.ip, cp);
  ClosedLoopClient c2(tb.ev(), *client2.stack, s2.ip, cp);
  c1.start();
  c2.start();

  tb.run_for(sim::ms(30));
  EXPECT_GT(c1.completed(), 100u);
  EXPECT_GT(c2.completed(), 100u);
}

}  // namespace
}  // namespace flextoe::app
