// A memcached-like KV service offloaded with FlexTOE, driven by a
// memtier-like closed-loop client — the paper's flagship workload (§2.1,
// §5.1). Prints throughput, latency percentiles, and the host-CPU cycle
// breakdown that motivates offload (Table 1).
#include <cstdio>

#include "app/kv.hpp"
#include "app/testbed.hpp"

using namespace flextoe;

int main() {
  app::Testbed tb(7);
  auto& server = tb.add_flextoe_node({.cores = 4});
  auto& client = tb.add_client_node();

  app::KvServer srv(tb.ev(), *server.stack,
                    {.port = 11211, .app_cycles = 890}, server.cpu.get());

  app::KvClient::Params cp;
  cp.connections = 16;
  cp.pipeline = 4;
  cp.key_size = 32;
  cp.value_size = 32;
  cp.get_ratio = 0.9;
  app::KvClient cli(tb.ev(), *client.stack, server.ip, cp);
  cli.start();

  std::printf("warming up...\n");
  tb.run_for(sim::ms(20));
  cli.clear_stats();
  server.cpu->clear_accounting();

  const sim::TimePs span = sim::ms(100);
  tb.run_for(span);

  const double secs = sim::to_sec(span);
  std::printf("\n--- results (%.0f ms simulated) ---\n", sim::to_ms(span));
  std::printf("throughput : %.2f MOps\n",
              static_cast<double>(cli.completed()) / secs / 1e6);
  std::printf("GET/SET    : %llu / %llu (misses %llu)\n",
              static_cast<unsigned long long>(srv.gets()),
              static_cast<unsigned long long>(srv.sets()),
              static_cast<unsigned long long>(srv.misses()));
  std::printf("latency    : p50 %.1f us, p99 %.1f us, p99.99 %.1f us\n",
              cli.latency().percentile(50), cli.latency().percentile(99),
              cli.latency().percentile(99.99));

  const double reqs = static_cast<double>(cli.completed());
  std::printf("\n--- host CPU per request (the offload win) ---\n");
  auto row = [&](const char* name, sim::CpuCat cat) {
    std::printf("%-12s %.2f kc\n", name,
                static_cast<double>(server.cpu->cycles(cat)) / reqs / 1000.0);
  };
  row("driver", sim::CpuCat::Driver);
  row("tcp stack", sim::CpuCat::Stack);
  row("sockets", sim::CpuCat::Sockets);
  row("app", sim::CpuCat::App);
  row("other", sim::CpuCat::Other);
  std::printf(
      "\nTCP processing runs on the SmartNIC: driver and stack rows are "
      "zero,\nhost cycles go to the application (paper Table 1).\n");
  return 0;
}
