// Distribution sanity for the workload size models: empirical-CDF
// inversion, Pareto/lognormal moments within tolerance, and the
// bias-free Rng::next_below underneath them all.
#include "workload/size_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "sim/rng.hpp"

namespace flextoe::workload {
namespace {

constexpr int kSamples = 50'000;

// ---------------------------------------------------------------- Rng

TEST(Rng, NextBelowIsUniformWithoutModuloBias) {
  // n = 3 would show heavy modulo bias on a biased generator only for
  // tiny ranges of the raw space; instead check a large-ish n and the
  // exactness of bucket frequencies.
  sim::Rng rng(123);
  const std::uint64_t n = 5;
  std::vector<int> buckets(n, 0);
  const int draws = 100'000;
  for (int i = 0; i < draws; ++i) ++buckets[rng.next_below(n)];
  for (std::uint64_t b = 0; b < n; ++b) {
    const double freq = double(buckets[b]) / draws;
    EXPECT_NEAR(freq, 1.0 / double(n), 0.01) << "bucket " << b;
  }
}

TEST(Rng, NextBelowDeterministicPerSeed) {
  sim::Rng a(42), b(42), c(43);
  bool diverged_from_c = false;
  for (int i = 0; i < 1000; ++i) {
    const auto va = a.next_below(1000);
    EXPECT_EQ(va, b.next_below(1000));
    if (va != c.next_below(1000)) diverged_from_c = true;
  }
  EXPECT_TRUE(diverged_from_c);
}

TEST(Rng, NextBelowStaysInRange) {
  sim::Rng rng(7);
  for (std::uint64_t n : {1ull, 2ull, 3ull, 1000ull, (1ull << 62) + 3}) {
    for (int i = 0; i < 100; ++i) EXPECT_LT(rng.next_below(n), n);
  }
}

// --------------------------------------------------------- Size models

TEST(SizeModels, FixedIsConstant) {
  sim::Rng rng(1);
  auto m = fixed_size(777);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(m->sample(rng), 777u);
  EXPECT_DOUBLE_EQ(m->mean_bytes(), 777.0);
}

TEST(SizeModels, UniformBoundsAndMean) {
  sim::Rng rng(2);
  auto m = uniform_size(100, 200);
  std::uint32_t lo = ~0u, hi = 0;
  double sum = 0;
  for (int i = 0; i < kSamples; ++i) {
    const auto v = m->sample(rng);
    ASSERT_GE(v, 100u);
    ASSERT_LE(v, 200u);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    sum += v;
  }
  EXPECT_EQ(lo, 100u);  // endpoints are reachable
  EXPECT_EQ(hi, 200u);
  EXPECT_NEAR(sum / kSamples, m->mean_bytes(), 2.0);
}

TEST(SizeModels, LognormalMomentsWithinTolerance) {
  sim::Rng rng(3);
  const double mu = std::log(1000.0), sigma = 0.5;
  auto m = lognormal_size(mu, sigma, 1, 1'000'000);
  std::vector<double> xs;
  xs.reserve(kSamples);
  for (int i = 0; i < kSamples; ++i) xs.push_back(m->sample(rng));
  const double mean =
      std::accumulate(xs.begin(), xs.end(), 0.0) / xs.size();
  // Analytic mean exp(mu + sigma^2/2) ~ 1133; clamping is negligible
  // at these parameters.
  EXPECT_NEAR(mean, m->mean_bytes(), 0.05 * m->mean_bytes());
  // Median of a lognormal is exp(mu).
  std::nth_element(xs.begin(), xs.begin() + xs.size() / 2, xs.end());
  EXPECT_NEAR(xs[xs.size() / 2], std::exp(mu), 0.05 * std::exp(mu));
}

TEST(SizeModels, BoundedParetoBoundsAndMean) {
  sim::Rng rng(4);
  auto m = bounded_pareto_size(1.5, 100, 100'000);
  double sum = 0;
  for (int i = 0; i < kSamples; ++i) {
    const auto v = m->sample(rng);
    ASSERT_GE(v, 100u);
    ASSERT_LE(v, 100'000u);
    sum += v;
  }
  EXPECT_NEAR(sum / kSamples, m->mean_bytes(), 0.1 * m->mean_bytes());
  // Heavy tail: mean well above the lower bound.
  EXPECT_GT(m->mean_bytes(), 250.0);
}

TEST(SizeModels, EmpiricalCdfInversionMatchesTable) {
  const std::vector<CdfPoint> table{
      {100, 0.25}, {1000, 0.50}, {10000, 0.75}, {100000, 1.0}};
  sim::Rng rng(5);
  auto m = empirical_size(table);
  int below_1000 = 0, below_10000 = 0;
  for (int i = 0; i < kSamples; ++i) {
    const auto v = m->sample(rng);
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, 100000u);
    if (v <= 1000) ++below_1000;
    if (v <= 10000) ++below_10000;
  }
  // Quantiles of the samples track the table's cumulative probabilities.
  EXPECT_NEAR(double(below_1000) / kSamples, 0.50, 0.02);
  EXPECT_NEAR(double(below_10000) / kSamples, 0.75, 0.02);
}

TEST(SizeModels, EmpiricalCapClampsTailAndMean) {
  sim::Rng rng(6);
  auto capped = empirical_size(websearch_flow_cdf(), 64 * 1024);
  for (int i = 0; i < kSamples; ++i) {
    ASSERT_LE(capped->sample(rng), 64u * 1024);
  }
  auto uncapped = empirical_size(websearch_flow_cdf());
  EXPECT_LT(capped->mean_bytes(), uncapped->mean_bytes());
}

TEST(SizeModels, ShippedTablesAreWellFormed) {
  for (const auto* table : {&websearch_flow_cdf(), &datamining_flow_cdf()}) {
    ASSERT_FALSE(table->empty());
    double prev_p = 0;
    std::uint32_t prev_b = 0;
    for (const auto& pt : *table) {
      EXPECT_GT(pt.bytes, prev_b);
      EXPECT_GT(pt.cum_prob, prev_p);
      prev_b = pt.bytes;
      prev_p = pt.cum_prob;
    }
    EXPECT_DOUBLE_EQ(table->back().cum_prob, 1.0);
  }
}

TEST(SizeModels, SamplingIsDeterministicPerSeed) {
  auto a = empirical_size(datamining_flow_cdf());
  auto b = empirical_size(datamining_flow_cdf());
  sim::Rng ra(99), rb(99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a->sample(ra), b->sample(rb));
}

}  // namespace
}  // namespace flextoe::workload
