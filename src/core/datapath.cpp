#include "core/datapath.hpp"

#include <algorithm>
#include <cassert>

namespace flextoe::core {

using tcp::ConnId;
using tcp::SeqNum;
using tcp::seq_diff;
using tcp::seq_ge;
using tcp::seq_gt;
using tcp::seq_le;
using tcp::seq_lt;
namespace flag = net::tcpflag;

namespace {

std::uint32_t now_us_of(sim::EventQueue& ev) {
  return static_cast<std::uint32_t>(ev.now() / sim::kPsPerUs);
}

}  // namespace

Datapath::Datapath(sim::EventQueue& ev, DatapathConfig cfg, HostIface host)
    : ev_(ev),
      cfg_(cfg),
      host_(std::move(host)),
      dma_(ev, cfg.dma),
      carousel_(ev) {
  // Build flow-group islands.
  const unsigned ngroups = std::max(1u, cfg_.flow_groups);
  nfp::FpcParams fp;
  fp.clock = cfg_.clock;
  fp.threads = std::max(1u, cfg_.threads_per_fpc);
  fp.queue_capacity = cfg_.fpc_queue_depth;

  // Run-to-completion mode: every module shares one FPC, so all work —
  // including PCIe waits — serializes on a single core (Table 3 baseline).
  std::shared_ptr<nfp::Fpc> rtc_fpc;
  if (!cfg_.pipelined) {
    rtc_fpc = std::make_shared<nfp::Fpc>(ev_, fp, "rtc");
  }

  for (unsigned g = 0; g < ngroups; ++g) {
    auto grp = std::make_unique<Group>();
    grp->island_mem = std::make_unique<nfp::IslandMemory>(512);
    auto make_fpcs = [&](std::vector<std::shared_ptr<nfp::Fpc>>& v,
                         unsigned n, const char* tag) {
      for (unsigned i = 0; i < n; ++i) {
        if (rtc_fpc) {
          v.push_back(rtc_fpc);
          continue;
        }
        v.push_back(std::make_shared<nfp::Fpc>(
            ev_, fp, tag + std::to_string(g) + "." + std::to_string(i)));
      }
    };
    make_fpcs(grp->pre, std::max(1u, cfg_.pre_replicas), "pre");
    make_fpcs(grp->proto, std::max(1u, cfg_.proto_fpcs_per_group), "proto");
    make_fpcs(grp->post, std::max(1u, cfg_.post_replicas), "post");
    for (std::size_t i = 0; i < grp->proto.size(); ++i) {
      grp->proto_mem.push_back(std::make_unique<nfp::StateAccessModel>(
          cfg_.mem, grp->island_mem.get(), &nic_mem_, 16));
    }
    for (std::size_t i = 0; i < grp->post.size(); ++i) {
      grp->post_mem.push_back(std::make_unique<nfp::StateAccessModel>(
          cfg_.mem, grp->island_mem.get(), &nic_mem_, 16));
    }
    for (std::size_t i = 0; i < grp->pre.size(); ++i) {
      grp->pre_lookup_cache.push_back(
          std::make_unique<nfp::DirectMappedCache>(128));
    }
    grp->proto_rob = std::make_unique<ReorderBuffer<SegCtxPtr>>(
        [this](SegCtxPtr ctx) { stage_proto(ctx); });
    grp->nbi_rob = std::make_unique<ReorderBuffer<SegCtxPtr>>(
        [this](SegCtxPtr ctx) {
          if (ctx->pkt) nbi_transmit(ctx->pkt);
        });
    groups_.push_back(std::move(grp));
  }

  // Service island: DMA managers + context-queue FPCs.
  for (unsigned i = 0; i < std::max(1u, cfg_.dma_fpcs); ++i) {
    dma_fpcs_.push_back(
        rtc_fpc ? rtc_fpc
                : std::make_shared<nfp::Fpc>(ev_, fp,
                                             "dma." + std::to_string(i)));
  }
  for (unsigned i = 0; i < std::max(1u, cfg_.ctx_fpcs); ++i) {
    ctx_fpcs_.push_back(
        rtc_fpc ? rtc_fpc
                : std::make_shared<nfp::Fpc>(ev_, fp,
                                             "ctx." + std::to_string(i)));
  }

  carousel_.set_trigger([this](std::uint32_t conn) {
    return tx_trigger(conn);
  });

  // The paper's 48 tracepoints (§5.1): transport events, inter-module
  // queue occupancies, critical-section lengths.
  static const char* kEvents[] = {"drop", "ooo", "retx", "fretx", "ack",
                                  "rx", "tx", "hc", "notify", "dma",
                                  "winupd", "fin"};
  for (const char* e : kEvents) {
    trace_.register_point(std::string("event/") + e);
  }
  for (const char* s : {"pre", "proto", "post", "dma", "ctx", "sch"}) {
    trace_.register_point(std::string("queue/") + s);
    trace_.register_point(std::string("crit/") + s);
  }
  for (const char* s : {"rx", "tx", "hc", "ack", "win", "pos"}) {
    trace_.register_point(std::string("proto/") + s);
    trace_.register_point(std::string("lat/") + s);
    trace_.register_point(std::string("cnt/") + s);
    trace_.register_point(std::string("err/") + s);
  }
  tp_rx_ = trace_.register_point("event/rx");
  tp_tx_ = trace_.register_point("event/tx");
  tp_ooo_ = trace_.register_point("event/ooo");
  tp_drop_ = trace_.register_point("event/drop");
  tp_fretx_ = trace_.register_point("event/fretx");
  tp_ack_ = trace_.register_point("event/ack");

  setup_telemetry();
}

// ------------------------------------------------------------ telemetry

const char* Datapath::drop_reason_name(DropReason r) {
  switch (r) {
    case DropReason::RtcOverload:
      return "rtc_overload";
    case DropReason::FpcQueueFull:
      return "fpc_queue_full";
    case DropReason::XdpDrop:
      return "xdp_drop";
  }
  return "unknown";
}

void Datapath::setup_telemetry() {
  static const char* kStageName[kStageCount] = {
      "seq",      "pre_rx",   "pre_tx", "pre_hc", "proto_rx",
      "proto_tx", "proto_hc", "post",   "dma",    "ctx_notify"};
  for (std::size_t s = 0; s < kStageCount; ++s) {
    const std::string base = std::string("stage/") + kStageName[s];
    stage_telem_[s].visits = telem_.counter(base + "/visits");
    stage_telem_[s].lat_ns = telem_.histogram(base + "/lat_ns");
  }
  for (std::size_t r = 0; r < kDropReasons; ++r) {
    drop_telem_[r] = telem_.counter(
        std::string("drop/") + drop_reason_name(static_cast<DropReason>(r)));
  }
  pipe_total_ns_[static_cast<std::size_t>(SegCtx::Kind::Rx)] =
      telem_.histogram("pipe/rx_total_ns");
  pipe_total_ns_[static_cast<std::size_t>(SegCtx::Kind::Tx)] =
      telem_.histogram("pipe/tx_total_ns");
  pipe_total_ns_[static_cast<std::size_t>(SegCtx::Kind::Hc)] =
      telem_.histogram("pipe/hc_total_ns");
  group_telem_.resize(groups_.size());
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    const std::string p = "group/" + std::to_string(g);
    group_telem_[g].rx = telem_.counter(p + "/rx");
    group_telem_[g].tx = telem_.counter(p + "/tx");
    group_telem_[g].hc = telem_.counter(p + "/hc");
    group_telem_[g].rob_depth = telem_.histogram(p + "/rob_depth");
  }
  t_host_notify_ = telem_.counter("hostq/notify");

  for (auto& g : groups_) {
    for (auto& f : g->pre) f->bind_telemetry(telem_, "fpc/" + f->name());
    for (auto& f : g->proto) f->bind_telemetry(telem_, "fpc/" + f->name());
    for (auto& f : g->post) f->bind_telemetry(telem_, "fpc/" + f->name());
  }
  for (auto& f : dma_fpcs_) f->bind_telemetry(telem_, "fpc/" + f->name());
  for (auto& f : ctx_fpcs_) f->bind_telemetry(telem_, "fpc/" + f->name());
  dma_.bind_telemetry(telem_, "dma");
  carousel_.bind_telemetry(telem_, "sched");
}

void Datapath::stamp_birth(SegCtx& ctx) {
  if (!telem_.enabled()) return;
  ctx.t_born_ps = ctx.t_stage_ps = ev_.now();
}

void Datapath::stage_mark(Stage s, SegCtx& ctx) {
  if (!telem_.enabled()) return;
  StageTelem& st = stage_telem_[s];
  st.visits->inc();
  const sim::TimePs now = ev_.now();
  if (ctx.t_stage_ps != SegCtx::kNoTimestamp) {
    st.lat_ns->record((now - ctx.t_stage_ps) / sim::kPsPerNs);
  }
  ctx.t_stage_ps = now;
}

void Datapath::record_pipe_total(SegCtx& ctx) {
  if (!telem_.enabled() || ctx.t_born_ps == SegCtx::kNoTimestamp) return;
  pipe_total_ns_[static_cast<std::size_t>(ctx.kind)]->record(
      (ev_.now() - ctx.t_born_ps) / sim::kPsPerNs);
  ctx.t_born_ps = SegCtx::kNoTimestamp;  // totals recorded once per ctx
}

void Datapath::count_drop(DropReason r) {
  ++drops_;
  trace_.hit(tp_drop_);
  if (telem_.enabled()) drop_telem_[static_cast<std::size_t>(r)]->inc();
}

Datapath::~Datapath() { *alive_ = false; }

unsigned Datapath::total_fpcs() const {
  unsigned n = static_cast<unsigned>(dma_fpcs_.size() + ctx_fpcs_.size());
  for (const auto& g : groups_) {
    n += static_cast<unsigned>(g->pre.size() + g->proto.size() +
                               g->post.size());
  }
  return n;
}

double Datapath::fpc_utilization() const {
  sim::TimePs busy = 0;
  for (const auto& g : groups_) {
    for (const auto& f : g->pre) busy += f->busy_time();
    for (const auto& f : g->proto) busy += f->busy_time();
    for (const auto& f : g->post) busy += f->busy_time();
  }
  for (const auto& f : dma_fpcs_) busy += f->busy_time();
  for (const auto& f : ctx_fpcs_) busy += f->busy_time();
  const double elapsed = static_cast<double>(ev_.now()) * total_fpcs();
  return elapsed > 0 ? static_cast<double>(busy) / elapsed : 0.0;
}

nfp::Fpc& Datapath::pick(std::vector<std::shared_ptr<nfp::Fpc>>& v,
                         std::uint64_t key) {
  return *v[key % v.size()];
}

// ------------------------------------------------------------- RTC gate

// Run-to-completion token: when the last reference to the segment
// context (and thus every callback in its chain) dies, the pipeline is
// free to admit the next segment.
std::shared_ptr<void> Datapath::make_rtc_token() {
  if (cfg_.pipelined) return nullptr;
  return std::shared_ptr<void>(nullptr,
                               [this, alive = alive_](void*) {
                                 if (*alive) rtc_done();
                               });
}

bool Datapath::rtc_admit(std::function<void()> fn, bool droppable) {
  if (cfg_.pipelined) {
    fn();
    return true;
  }
  if (rtc_busy_) {
    if (droppable && rtc_pending_.size() >= cfg_.fpc_queue_depth) {
      count_drop(DropReason::RtcOverload);
      return false;  // no NIC-side buffering: shed the segment
    }
    rtc_pending_.push_back(std::move(fn));
    return true;
  }
  rtc_busy_ = true;
  fn();
  return true;
}

void Datapath::rtc_done() {
  rtc_busy_ = false;
  if (!rtc_pending_.empty()) {
    auto fn = std::move(rtc_pending_.front());
    rtc_pending_.pop_front();
    rtc_busy_ = true;
    // Defer to avoid unbounded recursion through completion chains.
    ev_.schedule_in(0, std::move(fn));
  }
}

// --------------------------------------------------------- flow install

ConnId Datapath::install_flow(const FlowInstall& ins) {
  const ConnId conn =
      ins.conn_id != tcp::kInvalidConn ? ins.conn_id : next_conn_++;
  if (ins.conn_id != tcp::kInvalidConn && next_conn_ <= ins.conn_id) {
    next_conn_ = ins.conn_id + 1;
  }
  if (flows_.size() <= conn) {
    flows_.resize(conn + 1);
    rx_bufs_.resize(conn + 1, nullptr);
    tx_bufs_.resize(conn + 1, nullptr);
    snd_max_.resize(conn + 1, 0);
    high_rtx_.resize(conn + 1, 0);
    pending_planned_.resize(conn + 1, 0);
    cc_accum_.resize(conn + 1);
  }
  FlowState& fs = flows_[conn];
  fs.valid = true;
  fs.tuple = ins.tuple;
  fs.pre.peer_mac = ins.peer_mac;
  fs.pre.peer_ip = ins.tuple.remote_ip;
  fs.pre.local_port = ins.tuple.local_port;
  fs.pre.remote_port = ins.tuple.remote_port;
  fs.pre.flow_group = static_cast<std::uint8_t>(
      ins.tuple.flow_group(static_cast<std::uint32_t>(groups_.size())));
  fs.proto = ProtoState{};
  fs.proto.seq = ins.iss + 1;
  fs.proto.ack = ins.irs + 1;
  fs.proto.remote_win = ins.remote_win;
  fs.proto.rx_avail =
      static_cast<std::uint32_t>(ins.rx_buf ? ins.rx_buf->size() : 0);
  fs.post = PostState{};
  fs.post.context_id = ins.context_id;
  fs.post.opaque = ins.opaque;
  fs.post.rx_size =
      static_cast<std::uint32_t>(ins.rx_buf ? ins.rx_buf->size() : 0);
  fs.post.tx_size =
      static_cast<std::uint32_t>(ins.tx_buf ? ins.tx_buf->size() : 0);
  rx_bufs_[conn] = ins.rx_buf;
  tx_bufs_[conn] = ins.tx_buf;
  snd_max_[conn] = fs.proto.seq;
  high_rtx_[conn] = fs.proto.seq;
  conn_db_[ins.tuple] = conn;
  if (local_mac_.to_u64() == 0) local_mac_ = ins.local_mac;
  carousel_.set_rate(conn, 0);  // uncongested until the CC loop speaks
  return conn;
}

void Datapath::remove_flow(ConnId conn) {
  if (conn >= flows_.size() || !flows_[conn].valid) return;
  conn_db_.erase(flows_[conn].tuple);
  flows_[conn].valid = false;
  carousel_.remove_flow(conn);
}

bool Datapath::flow_valid(ConnId conn) const {
  return conn < flows_.size() && flows_[conn].valid;
}

const ProtoState* Datapath::proto_state(ConnId conn) const {
  if (conn >= flows_.size() || !flows_[conn].valid) return nullptr;
  return &flows_[conn].proto;
}

Datapath::CcSnapshot Datapath::read_cc_stats(ConnId conn, bool clear) {
  CcSnapshot s;
  if (conn >= flows_.size() || !flows_[conn].valid) return s;
  CcAccum& a = cc_accum_[conn];
  s.acked_bytes = a.acked;
  s.ecn_bytes = a.ecn;
  s.fast_retx = a.fretx;
  s.rtt_us = flows_[conn].post.rtt_est;
  s.tx_sent = flows_[conn].proto.tx_sent;
  s.snd_una = flows_[conn].proto.seq - flows_[conn].proto.tx_sent;
  if (clear) a = CcAccum{};
  return s;
}

void Datapath::set_rate(ConnId conn, std::uint64_t bytes_per_sec) {
  if (conn < flows_.size() && flows_[conn].valid) {
    flows_[conn].post.rate = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(bytes_per_sec, 0xFFFFFFFF));
  }
  carousel_.set_rate(conn, bytes_per_sec);
}

host::CtxQueue& Datapath::hc_queue(std::uint16_t ctx_id) {
  while (hc_queues_.size() <= ctx_id) {
    auto q = std::make_unique<host::CtxQueue>();
    q->bind_telemetry(telem_,
                      "hostq/hc" + std::to_string(hc_queues_.size()));
    hc_queues_.push_back(std::move(q));
  }
  return *hc_queues_[ctx_id];
}

void Datapath::add_xdp_program(xdp::XdpProgramPtr prog) {
  xdp_programs_.push_back(std::move(prog));
}

void Datapath::clear_xdp_programs() { xdp_programs_.clear(); }

void Datapath::set_profiling(bool on) {
  cfg_.profiling = on;
  trace_.set_enabled(on);
}

// ------------------------------------------------------------- submit

void Datapath::submit(nfp::Fpc& fpc, std::uint32_t compute,
                      std::uint32_t mem, std::function<void()> fn,
                      std::uint64_t skip_seq, std::uint8_t group,
                      bool sequenced) {
  nfp::Work w;
  w.compute_cycles = compute + profile_overhead();
  w.mem_cycles = mem;
  w.done = std::move(fn);
  if (!fpc.submit(std::move(w))) {
    count_drop(DropReason::FpcQueueFull);
    if (sequenced) groups_[group]->proto_rob->skip(skip_seq);
  }
}

// --------------------------------------------------------------- MAC RX

void Datapath::deliver(const net::PacketPtr& pkt) {
  if (pkt->ip.proto != net::kProtoTcp) return;  // non-TCP -> kernel path
  if (local_ip_ != 0 && pkt->ip.dst != local_ip_) return;  // not for us
  ++rx_segments_;
  trace_.hit(tp_rx_);

  auto ctx = std::make_shared<SegCtx>();
  ctx->kind = SegCtx::Kind::Rx;
  ctx->pkt = pkt;
  stamp_birth(*ctx);

  rtc_admit(
      [this, ctx] {
    ctx->rtc_token = make_rtc_token();
    // Sequencer: compute the flow group (CRC on the 4-tuple, hardware
    // accelerated) and assign the pipeline sequence number.
    tcp::FlowTuple t{ctx->pkt->ip.dst, ctx->pkt->ip.src,
                     ctx->pkt->tcp.dport, ctx->pkt->tcp.sport};
    const std::uint8_t g = static_cast<std::uint8_t>(
        t.flow_group(static_cast<std::uint32_t>(groups_.size())));
    ctx->flow_group = g;
    ctx->pipe_seq = groups_[g]->sequencer.assign();
    stage_mark(kStSeq, *ctx);
    Group& grp = *groups_[g];
    nfp::Fpc& fpc = pick(grp.pre, grp.rr_pre++);
    // XDP programs execute in the pre-processing stage; their per-packet
    // instruction cost is charged to the hosting FPC (Table 2).
    std::uint32_t xdp_cost = 0;
    for (const auto& prog : xdp_programs_) {
      xdp_cost += prog->cycles_per_packet();
    }
    // Flow lookup: IMEM lookup engine, front-cached per pre-processor.
    const std::size_t pre_idx = (grp.rr_pre - 1) % grp.pre.size();
    tcp::FlowTuple lt{ctx->pkt->ip.dst, ctx->pkt->ip.src,
                      ctx->pkt->tcp.dport, ctx->pkt->tcp.sport};
    std::uint32_t lookup_mem = cfg_.flat_mem_cycles;
    if (cfg_.nfp_memory) {
      lookup_mem = grp.pre_lookup_cache[pre_idx]->access(lt.hash())
                       ? cfg_.mem.local
                       : cfg_.mem.imem;
    }
    submit(fpc, cfg_.costs.seq + cfg_.costs.pre_rx + xdp_cost, lookup_mem,
           [this, ctx] { stage_pre_rx(ctx); }, ctx->pipe_seq, g, true);
      },
      /*droppable=*/true);
}

void Datapath::stage_pre_rx(const SegCtxPtr& ctx) {
  stage_mark(kStPreRx, *ctx);
  Group& grp = *groups_[ctx->flow_group];
  net::Packet& pkt = *ctx->pkt;

  // --- XDP ingress hooks (paper §3.3) ---
  for (const auto& prog : xdp_programs_) {
    xdp::XdpMd md{pkt, ev_.now()};
    switch (prog->run(md)) {
      case xdp::XdpAction::Pass:
        continue;
      case xdp::XdpAction::Drop:
        count_drop(DropReason::XdpDrop);
        grp.proto_rob->skip(ctx->pipe_seq);
        return;
      case xdp::XdpAction::Tx:
        nbi_transmit(ctx->pkt);
        grp.proto_rob->skip(ctx->pipe_seq);
        return;
      case xdp::XdpAction::Redirect:
        ++to_control_count_;
        host_.to_control(ctx->pkt);
        grp.proto_rob->skip(ctx->pipe_seq);
        return;
    }
  }

  // --- Val: filter non-data-path segments to the control plane ---
  if (!pkt.tcp.is_datapath_segment()) {
    ++to_control_count_;
    host_.to_control(ctx->pkt);
    grp.proto_rob->skip(ctx->pipe_seq);
    return;
  }

  // --- Id: active-connection DB lookup (IMEM lookup engine + cache) ---
  tcp::FlowTuple t{pkt.ip.dst, pkt.ip.src, pkt.tcp.dport, pkt.tcp.sport};
  auto it = conn_db_.find(t);
  if (it == conn_db_.end() || !flows_[it->second].valid) {
    // Not an established data-path flow (e.g. final handshake ACK).
    ++to_control_count_;
    host_.to_control(ctx->pkt);
    grp.proto_rob->skip(ctx->pipe_seq);
    return;
  }
  ctx->conn_idx = it->second;
  ctx->conn_known = true;

  // --- Sum: header summary for later stages ---
  HeaderSummary& s = ctx->sum;
  s.seq = pkt.tcp.seq;
  s.ack = pkt.tcp.ack;
  s.flags = pkt.tcp.flags;
  s.window = static_cast<std::uint32_t>(pkt.tcp.window) << tcp::kWindowShift;
  s.payload_len = pkt.payload_len();
  if (pkt.tcp.ts) {
    s.ts_val = pkt.tcp.ts->val;
    s.ts_ecr = pkt.tcp.ts->ecr;
  }
  s.ecn_ce = pkt.ip.ecn == net::Ecn::Ce;

  // --- Steer: in-order admission to the flow-group's protocol stage ---
  grp.proto_rob->push(ctx->pipe_seq, ctx);
}

// ----------------------------------------------------------- TX trigger

std::uint32_t Datapath::tx_trigger(std::uint32_t conn) {
  if (conn >= flows_.size() || !flows_[conn].valid) return 0;
  FlowState& fs = flows_[conn];
  // Admission estimate (authoritative check happens in the protocol
  // stage; the scheduler tracks appended-but-untriggered bytes itself).
  const std::uint32_t outstanding =
      fs.proto.tx_sent + pending_planned_[conn];
  if (fs.proto.remote_win <= outstanding) return 0;  // window closed
  const std::uint32_t room = fs.proto.remote_win - outstanding;
  const std::uint32_t planned = std::min(cfg_.mss, room);

  auto ctx = std::make_shared<SegCtx>();
  ctx->kind = SegCtx::Kind::Tx;
  ctx->conn_idx = conn;
  ctx->conn_known = true;
  ctx->flow_group = fs.pre.flow_group;
  ctx->hc_len = planned;
  stamp_birth(*ctx);

  Group& grp = *groups_[ctx->flow_group];
  nfp::Fpc& fpc = pick(grp.pre, grp.rr_pre++);
  if (fpc.queue_len() >= cfg_.fpc_queue_depth) return 0;  // back-pressure

  pending_planned_[conn] += planned;
  rtc_admit([this, ctx, &grp, &fpc] {
    ctx->rtc_token = make_rtc_token();
    ctx->pipe_seq = grp.sequencer.assign();
    stage_mark(kStSeq, *ctx);
    submit(fpc, cfg_.costs.seq + cfg_.costs.pre_tx, 0,
           [this, ctx] { stage_pre_tx(ctx); }, ctx->pipe_seq,
           ctx->flow_group, true);
  });
  return planned;
}

void Datapath::stage_pre_tx(const SegCtxPtr& ctx) {
  stage_mark(kStPreTx, *ctx);
  // Alloc + Head happen here in the real pipeline; the packet itself is
  // materialized in post-processing once the protocol stage has assigned
  // the sequence number. Steer:
  groups_[ctx->flow_group]->proto_rob->push(ctx->pipe_seq, ctx);
}

// ------------------------------------------------------------- HC path

void Datapath::doorbell(std::uint16_t ctx_id) {
  // MMIO doorbell -> context-queue FPC polls and fetches descriptors.
  dma_.mmio([this, ctx_id] {
    {
      host::CtxQueue& q = hc_queue(ctx_id);
      host::CtxDesc d;
      while (q.pop(d)) {
        auto ctx = std::make_shared<SegCtx>();
        ctx->kind = SegCtx::Kind::Hc;
        ctx->conn_idx = d.conn;
        ctx->conn_known = true;
        ctx->hc_len = d.a;
        switch (d.type) {
          case host::CtxDescType::TxDoorbell:
            ctx->hc_op = HcOp::TxDoorbell;
            break;
          case host::CtxDescType::RxFreed:
            ctx->hc_op = HcOp::RxFreed;
            break;
          case host::CtxDescType::Fin:
            ctx->hc_op = HcOp::Fin;
            break;
          case host::CtxDescType::Retransmit:
            ctx->hc_op = HcOp::Retransmit;
            break;
          default:
            continue;
        }
        if (ctx->conn_idx >= flows_.size() || !flows_[ctx->conn_idx].valid) {
          continue;
        }
        ctx->flow_group = flows_[ctx->conn_idx].pre.flow_group;
        stamp_birth(*ctx);
        rtc_admit([this, ctx] {
          ctx->rtc_token = make_rtc_token();
          // Fetch descriptor via DMA, then steer through the pipeline.
          nfp::Fpc& cfpc = pick(ctx_fpcs_, rr_ctx_++);
          submit(cfpc, cfg_.costs.ctx_op, 0,
                 [this, ctx] {
                   dma_.issue(32, [this, ctx] {
                     Group& grp = *groups_[ctx->flow_group];
                     ctx->pipe_seq = grp.sequencer.assign();
                     stage_mark(kStSeq, *ctx);
                     nfp::Fpc& fpc = pick(grp.pre, grp.rr_pre++);
                     submit(fpc, cfg_.costs.pre_hc, 0,
                            [this, ctx] {
                              stage_mark(kStPreHc, *ctx);
                              groups_[ctx->flow_group]->proto_rob->push(
                                  ctx->pipe_seq, ctx);
                            },
                            ctx->pipe_seq, ctx->flow_group, true);
                   });
                 },
                 0, 0, false);
        });
      }
    }
  });
}

// Re-synchronizes the flow scheduler with the protocol stage's
// authoritative view: untriggered bytes = appended-but-unsent minus
// segments already in flight through the pipeline.
void Datapath::sched_resync(ConnId conn, const ProtoState& p) {
  const std::uint64_t pend = pending_planned_[conn];
  const std::uint64_t untrig = p.tx_avail > pend ? p.tx_avail - pend : 0;
  carousel_.update_avail(conn, untrig);
}

// --------------------------------------------------------- protocol stage

std::uint32_t Datapath::state_mem_cycles(Group& g,
                                         nfp::StateAccessModel& model,
                                         std::uint32_t conn) {
  (void)g;
  if (!cfg_.nfp_memory) return cfg_.flat_mem_cycles;
  // Protocol state is read-modify-write: fetch + write-back both pay the
  // hierarchy (this is what strains the EMEM SRAM cache at high
  // connection counts, Fig 13).
  return 2 * model.access_cycles(conn);
}

void Datapath::stage_proto(const SegCtxPtr& ctx) {
  if (!ctx->conn_known || ctx->conn_idx >= flows_.size() ||
      !flows_[ctx->conn_idx].valid) {
    return;
  }
  Group& grp = *groups_[ctx->flow_group];
  if (telem_.enabled()) {
    GroupTelem& gt = group_telem_[ctx->flow_group];
    switch (ctx->kind) {
      case SegCtx::Kind::Rx:
        gt.rx->inc();
        break;
      case SegCtx::Kind::Tx:
        gt.tx->inc();
        break;
      case SegCtx::Kind::Hc:
        gt.hc->inc();
        break;
    }
    gt.rob_depth->record(grp.proto_rob->pending());
  }
  // Connections are sharded across the group's protocol FPCs; atomicity
  // per connection is preserved because a connection always maps to the
  // same FPC (FIFO work queue).
  const std::size_t shard = ctx->conn_idx % grp.proto.size();
  nfp::Fpc& fpc = *grp.proto[shard];
  nfp::StateAccessModel& mem = *grp.proto_mem[shard];

  std::uint32_t compute = 0;
  switch (ctx->kind) {
    case SegCtx::Kind::Rx:
      compute = cfg_.costs.proto_rx;
      break;
    case SegCtx::Kind::Tx:
      compute = cfg_.costs.proto_tx;
      break;
    case SegCtx::Kind::Hc:
      compute = cfg_.costs.proto_hc;
      break;
  }
  const std::uint32_t memc = state_mem_cycles(grp, mem, ctx->conn_idx);

  submit(fpc, compute, memc,
         [this, ctx] {
           if (ctx->conn_idx >= flows_.size() ||
               !flows_[ctx->conn_idx].valid) {
             return;
           }
           FlowState& fs = flows_[ctx->conn_idx];
           switch (ctx->kind) {
             case SegCtx::Kind::Rx:
               proto_rx(fs, ctx);
               break;
             case SegCtx::Kind::Tx:
               proto_tx(fs, ctx);
               break;
             case SegCtx::Kind::Hc:
               proto_hc(fs, ctx);
               break;
           }
         },
         0, 0, false);
}

void Datapath::proto_rx(FlowState& fs, const SegCtxPtr& ctx) {
  stage_mark(kStProtoRx, *ctx);
  ProtoState& p = fs.proto;
  const HeaderSummary& s = ctx->sum;
  ProtoSnapshot& snap = ctx->snap;
  const ConnId conn = ctx->conn_idx;

  p.remote_win = s.window;

  // ---- ACK processing (Win) ----
  if (s.flags & flag::kAck) {
    const SeqNum snd_una = p.seq - p.tx_sent;
    if (seq_gt(s.ack, snd_una) && seq_le(s.ack, snd_max_[conn])) {
      const std::uint32_t acked = seq_diff(s.ack, snd_una);
      const std::uint32_t from_sent =
          std::min<std::uint32_t>(acked, p.tx_sent);
      p.tx_sent -= from_sent;
      const std::uint32_t leap = acked - from_sent;
      if (leap > 0) {
        // Receiver merged its OOO interval past our rewound position:
        // those bytes are delivered; skip ahead.
        p.seq += leap;
        p.tx_pos += leap;
        p.tx_avail -= std::min(p.tx_avail, leap);
      }
      p.dupack_cnt = 0;
      snap.tx_freed = acked;
      snap.window_opened = true;
      // CC statistics (collected by post-processing, paper §3.1.3).
      snap.ecn_bytes = (s.flags & flag::kEce) ? acked : 0;
      if (s.ts_ecr != 0) {
        const std::uint32_t now_us32 = now_us_of(ev_);
        const std::uint32_t sample = now_us32 - s.ts_ecr;
        if (sample < 10'000'000) {
          snap.rtt_sample_us = sample == 0 ? 1 : sample;
        }
      }
    } else if (s.ack == snd_una && p.tx_sent > 0 && s.payload_len == 0 &&
               !(s.flags & flag::kFin)) {
      // Duplicate ACK tracking; fast retransmit via go-back-N reset.
      if (++p.dupack_cnt == 3 && seq_ge(snd_una, high_rtx_[conn])) {
        p.dupack_cnt = 0;
        high_rtx_[conn] = snd_max_[conn];
        snap.fast_retransmit = true;
        ++fast_retransmits_;
        trace_.hit(tp_fretx_);
        // Reset transmission state to the last ACKed position.
        p.seq = snd_una;
        p.tx_pos -= p.tx_sent;
        p.tx_avail += p.tx_sent;
        p.tx_sent = 0;
      }
    }
  }

  // ---- Payload reassembly (Win/Pos) ----
  bool ack_needed = false;
  if (s.payload_len > 0) {
    const auto r = p.ooo.on_segment(p.ack, s.seq, s.payload_len, p.rx_avail);
    if (r.buf_offset > 0) {
      ++ooo_segments_;
      trace_.hit(tp_ooo_);
    }
    if (r.accept && r.accept_len > 0) {
      snap.accept_payload = true;
      snap.payload_trim =
          seq_lt(s.seq, p.ack) ? seq_diff(p.ack, s.seq) : 0;
      snap.rx_write_pos = p.rx_pos + r.buf_offset;
      snap.rx_write_len = r.accept_len;
    }
    if (r.advance > 0) {
      p.ack += r.advance;
      p.rx_pos += r.advance;
      p.rx_avail -= std::min(p.rx_avail, r.advance);
      snap.rx_advance = r.advance;
      ctx->notify_host = true;
    }
    ack_needed = true;  // FlexTOE acknowledges every data segment (§5.2)
  }

  // ---- FIN ----
  if (s.flags & flag::kFin) {
    const SeqNum fin_seq = s.seq + s.payload_len;
    if (fin_seq == p.ack && !p.peer_fin) {
      p.ack += 1;
      p.peer_fin = true;
      snap.fin_consumed = true;
    }
    ack_needed = true;
  }

  if (ack_needed) {
    snap.send_ack = true;
    snap.ack_seq = p.ack;
    snap.self_seq = p.seq;
    snap.rx_window = p.rx_avail;
    snap.echo_ecn = s.ecn_ce;  // precise per-segment DCTCP ECN echo
    snap.ts_echo = s.ts_val;
    p.next_ts = s.ts_val;
    snap.egress_seq = groups_[ctx->flow_group]->egress_next++;
  }

  // ACKs can open the send window or re-expose bytes (go-back-N reset):
  // re-sync the flow scheduler with the authoritative protocol view.
  if (s.flags & flag::kAck) {
    const std::uint32_t room =
        p.remote_win > p.tx_sent ? p.remote_win - p.tx_sent : 0;
    if (p.tx_avail > 0 && room > 0) sched_resync(conn, p);
  }

  // Forward snapshot to post-processing.
  Group& grp = *groups_[ctx->flow_group];
  const std::size_t pidx = grp.rr_post++ % grp.post.size();
  submit(*grp.post[pidx], cfg_.costs.post_rx,
         cfg_.nfp_memory ? grp.post_mem[pidx]->access_cycles(conn)
                         : cfg_.flat_mem_cycles,
         [this, ctx] { stage_post(ctx); }, 0, 0, false);
}

void Datapath::proto_tx(FlowState& fs, const SegCtxPtr& ctx) {
  stage_mark(kStProtoTx, *ctx);
  ProtoState& p = fs.proto;
  ProtoSnapshot& snap = ctx->snap;
  const ConnId conn = ctx->conn_idx;
  const std::uint32_t planned = ctx->hc_len;
  pending_planned_[conn] -= std::min(pending_planned_[conn], planned);

  // Authoritative admission: window and available data.
  const std::uint32_t room =
      p.remote_win > p.tx_sent ? p.remote_win - p.tx_sent : 0;
  std::uint32_t len = std::min({planned, p.tx_avail, room});

  if (len == 0 && !(p.fin_pending && !p.fin_sent && p.tx_avail == 0)) {
    // Abort: window closed or no data. The flow parks in the scheduler;
    // an ACK (window open) or doorbell (new data) re-syncs and unparks.
    sched_resync(conn, p);
    return;
  }

  snap.tx_valid = len > 0;
  snap.tx_seq = p.seq;
  snap.tx_read_pos = p.tx_pos;
  snap.tx_len = len;
  snap.ack_seq = p.ack;
  snap.rx_window = p.rx_avail;
  snap.ts_echo = p.next_ts;
  p.seq += len;
  p.tx_pos += len;
  p.tx_avail -= len;
  p.tx_sent += len;

  // Piggyback / emit FIN once the transmit buffer is fully drained.
  if (p.fin_pending && !p.fin_sent && p.tx_avail == 0) {
    snap.tx_fin = true;
    p.fin_seq = p.seq;
    p.seq += 1;
    p.tx_sent += 1;
    p.fin_sent = true;
  }
  if (!snap.tx_valid && !snap.tx_fin) return;

  snd_max_[conn] = seq_ge(p.seq, snd_max_[conn]) ? p.seq : snd_max_[conn];
  if (planned != len) sched_resync(conn, p);
  snap.egress_seq = groups_[ctx->flow_group]->egress_next++;
  trace_.hit(tp_tx_);

  Group& grp = *groups_[ctx->flow_group];
  const std::size_t pidx = grp.rr_post++ % grp.post.size();
  submit(*grp.post[pidx], cfg_.costs.post_tx,
         cfg_.nfp_memory ? grp.post_mem[pidx]->access_cycles(conn)
                         : cfg_.flat_mem_cycles,
         [this, ctx] { stage_post(ctx); }, 0, 0, false);
}

void Datapath::proto_hc(FlowState& fs, const SegCtxPtr& ctx) {
  stage_mark(kStProtoHc, *ctx);
  ProtoState& p = fs.proto;
  ProtoSnapshot& snap = ctx->snap;
  const ConnId conn = ctx->conn_idx;

  switch (ctx->hc_op) {
    case HcOp::TxDoorbell:
      p.tx_avail += ctx->hc_len;
      sched_resync(conn, p);
      break;
    case HcOp::RxFreed: {
      const bool was_closed = p.rx_avail < cfg_.mss;
      p.rx_avail += ctx->hc_len;
      if (was_closed && p.rx_avail >= cfg_.mss) {
        // Window-update ACK so the peer resumes.
        snap.send_ack = true;
        snap.ack_seq = p.ack;
        snap.self_seq = p.seq;
        snap.rx_window = p.rx_avail;
        snap.ts_echo = p.next_ts;
        snap.egress_seq = groups_[ctx->flow_group]->egress_next++;
      }
      break;
    }
    case HcOp::Fin:
      p.fin_pending = true;
      break;
    case HcOp::Retransmit: {
      // Control-plane timeout: go-back-N reset (paper §3.1.1).
      const SeqNum snd_una = p.seq - p.tx_sent;
      if (p.tx_sent > 0 || (p.fin_sent && seq_lt(snd_una, snd_max_[conn]))) {
        p.seq = snd_una;
        p.tx_pos -= p.tx_sent;
        p.tx_avail += p.tx_sent;
        p.tx_sent = 0;
        if (p.fin_sent) {
          p.fin_sent = false;  // FIN will be re-emitted after data
        }
        p.dupack_cnt = 0;
        high_rtx_[conn] = snd_max_[conn];
        sched_resync(conn, p);
      }
      break;
    }
  }

  // FIN with an already-empty transmit buffer: emit it now.
  const bool want_fin_now =
      p.fin_pending && !p.fin_sent && p.tx_avail == 0;

  Group& grp = *groups_[ctx->flow_group];
  const std::size_t pidx = grp.rr_post++ % grp.post.size();
  submit(*grp.post[pidx], cfg_.costs.post_hc,
         cfg_.nfp_memory ? grp.post_mem[pidx]->access_cycles(conn)
                         : cfg_.flat_mem_cycles,
         [this, ctx] { stage_post(ctx); }, 0, 0, false);

  if (want_fin_now) spawn_fin_segment(conn);
}

void Datapath::spawn_fin_segment(ConnId conn) {
  auto ctx = std::make_shared<SegCtx>();
  ctx->kind = SegCtx::Kind::Tx;
  ctx->conn_idx = conn;
  ctx->conn_known = true;
  ctx->flow_group = flows_[conn].pre.flow_group;
  ctx->hc_len = 0;  // pure FIN
  stamp_birth(*ctx);
  Group& grp = *groups_[ctx->flow_group];
  ctx->pipe_seq = grp.sequencer.assign();
  stage_mark(kStSeq, *ctx);
  submit(pick(grp.pre, grp.rr_pre++), cfg_.costs.pre_tx, 0,
         [this, ctx] { stage_pre_tx(ctx); }, ctx->pipe_seq, ctx->flow_group,
         true);
}

// ------------------------------------------------------------ post stage

void Datapath::stage_post(const SegCtxPtr& ctx) {
  if (ctx->conn_idx >= flows_.size() || !flows_[ctx->conn_idx].valid) return;
  stage_mark(kStPost, *ctx);
  FlowState& fs = flows_[ctx->conn_idx];
  ProtoSnapshot& snap = ctx->snap;

  // ---- Stats: CC counters (commutative, out-of-order safe) ----
  CcAccum& acc = cc_accum_[ctx->conn_idx];
  acc.acked += snap.tx_freed;
  acc.ecn += snap.ecn_bytes;
  if (snap.fast_retransmit) {
    ++acc.fretx;
    fs.post.cnt_fretx++;
  }
  fs.post.cnt_ackb += snap.tx_freed;
  fs.post.cnt_ecnb += snap.ecn_bytes;
  if (snap.rtt_sample_us > 0) {
    // EWMA in integer arithmetic (FPCs lack floating point).
    fs.post.rtt_est = fs.post.rtt_est == 0
                          ? snap.rtt_sample_us
                          : (7 * fs.post.rtt_est + snap.rtt_sample_us) / 8;
  }

  // ---- Ack preparation (+ ECN feedback, timestamps) ----
  if (snap.send_ack) emit_ack_packet(ctx);

  // ---- TX packet materialization ----
  if (snap.tx_valid || snap.tx_fin) {
    ctx->pkt = build_tx_packet(fs, snap);
  }

  // ---- Route onward ----
  const bool needs_payload_dma =
      (snap.accept_payload && snap.rx_write_len > 0) || snap.tx_valid;
  if (needs_payload_dma || ctx->ack_pkt || (snap.tx_fin && ctx->pkt)) {
    submit(pick(dma_fpcs_, rr_dma_++), cfg_.costs.dma_issue, 0,
           [this, ctx] { stage_dma(ctx); }, 0, 0, false);
  } else if (ctx->notify_host || snap.tx_freed > 0 || snap.fin_consumed) {
    submit(pick(ctx_fpcs_, rr_ctx_++), cfg_.costs.ctx_op, 0,
           [this, ctx] { stage_ctx_notify(ctx); }, 0, 0, false);
  }
}

void Datapath::emit_ack_packet(const SegCtxPtr& ctx) {
  FlowState& fs = flows_[ctx->conn_idx];
  const ProtoSnapshot& snap = ctx->snap;
  auto ack = std::make_shared<net::Packet>();
  ack->eth.src = local_mac_;
  ack->eth.dst = fs.pre.peer_mac;
  ack->ip.src = fs.tuple.local_ip;
  ack->ip.dst = fs.tuple.remote_ip;
  ack->tcp.sport = fs.pre.local_port;
  ack->tcp.dport = fs.pre.remote_port;
  ack->tcp.seq = snap.self_seq;
  ack->tcp.ack = snap.ack_seq;
  ack->tcp.flags = static_cast<std::uint8_t>(
      flag::kAck | (snap.echo_ecn ? flag::kEce : 0));
  ack->tcp.window = static_cast<std::uint16_t>(std::min<std::uint32_t>(
      snap.rx_window >> tcp::kWindowShift, 0xFFFF));
  ack->tcp.ts = net::TcpTsOpt{now_us_of(ev_), snap.ts_echo};
  ctx->ack_pkt = std::move(ack);
}

net::PacketPtr Datapath::build_tx_packet(const FlowState& fs,
                                         const ProtoSnapshot& snap) {
  auto pkt = std::make_shared<net::Packet>();
  pkt->eth.src = local_mac_;
  pkt->eth.dst = fs.pre.peer_mac;
  pkt->ip.src = fs.tuple.local_ip;
  pkt->ip.dst = fs.tuple.remote_ip;
  pkt->ip.ecn = net::Ecn::Ect0;  // DCTCP ECT marking
  pkt->tcp.sport = fs.pre.local_port;
  pkt->tcp.dport = fs.pre.remote_port;
  pkt->tcp.seq = snap.tx_seq;
  pkt->tcp.ack = snap.ack_seq;
  pkt->tcp.flags = static_cast<std::uint8_t>(
      flag::kAck | (snap.tx_len > 0 ? flag::kPsh : 0) |
      (snap.tx_fin ? flag::kFin : 0));
  pkt->tcp.window = static_cast<std::uint16_t>(std::min<std::uint32_t>(
      snap.rx_window >> tcp::kWindowShift, 0xFFFF));
  pkt->tcp.ts = net::TcpTsOpt{now_us_of(ev_), snap.ts_echo};
  return pkt;
}

// ------------------------------------------------------------- DMA stage

void Datapath::stage_dma(const SegCtxPtr& ctx) {
  stage_mark(kStDma, *ctx);
  const ProtoSnapshot& snap = ctx->snap;

  if (ctx->kind == SegCtx::Kind::Rx) {
    // RX: payload DMA to the host socket buffer, then (a) ACK to NBI and
    // (b) notification to the context-queue stage. Ordering matters: the
    // host and the peer must not learn of data before it has landed
    // (paper §3.1.3, DMA stage).
    const std::uint32_t len = snap.accept_payload ? snap.rx_write_len : 0;
    auto finish = [this, ctx] {
      record_pipe_total(*ctx);  // payload (if any) has landed in the host
      if (ctx->ack_pkt) {
        ++acks_sent_;
        trace_.hit(tp_ack_);
        auto ack_ctx = std::make_shared<SegCtx>();
        ack_ctx->kind = SegCtx::Kind::Rx;
        ack_ctx->pkt = ctx->ack_pkt;
        ack_ctx->rtc_token = ctx->rtc_token;
        groups_[ctx->flow_group]->nbi_rob->push(ctx->snap.egress_seq,
                                                std::move(ack_ctx));
      }
      if (ctx->notify_host || ctx->snap.tx_freed > 0 ||
          ctx->snap.fin_consumed) {
        submit(pick(ctx_fpcs_, rr_ctx_++), cfg_.costs.ctx_op, 0,
               [this, ctx] { stage_ctx_notify(ctx); }, 0, 0, false);
      }
    };
    if (len > 0) {
      host::PayloadBuf* buf = rx_bufs_[ctx->conn_idx];
      const std::uint64_t pos = snap.rx_write_pos;
      const std::uint32_t trim = snap.payload_trim;
      auto pkt = ctx->pkt;
      const std::uint32_t copy_cost =
          cfg_.shared_memory_ctx
              ? cfg_.copy_cycles_per_kb * (len / 1024 + 1)
              : 0;
      if (copy_cost > 0) {
        // Software copy on the DMA-module core (x86/BlueField ports).
        nfp::Fpc& f = pick(dma_fpcs_, rr_dma_++);
        submit(f, copy_cost, 0, [] {}, 0, 0, false);
      }
      dma_.issue(len + 64, [buf, pos, trim, len, pkt, finish] {
        if (buf != nullptr) {
          buf->write(pos, std::span<const std::uint8_t>(
                              pkt->payload.data() + trim, len));
        }
        finish();
      });
    } else {
      finish();
    }
    return;
  }

  // TX: fetch payload from the host socket buffer into the segment, then
  // hand to the NBI (in egress order).
  if (ctx->kind == SegCtx::Kind::Tx && ctx->pkt) {
    const std::uint32_t len = snap.tx_len;
    host::PayloadBuf* buf = tx_bufs_[ctx->conn_idx];
    auto pkt = ctx->pkt;
    const std::uint64_t pos = snap.tx_read_pos;
    const std::uint32_t copy_cost =
        cfg_.shared_memory_ctx ? cfg_.copy_cycles_per_kb * (len / 1024 + 1)
                               : 0;
    if (copy_cost > 0) {
      nfp::Fpc& f = pick(dma_fpcs_, rr_dma_++);
      submit(f, copy_cost, 0, [] {}, 0, 0, false);
    }
    dma_.issue(len + 64, [this, ctx, buf, pkt, pos, len] {
      if (len > 0 && buf != nullptr) {
        pkt->payload.resize(len);
        buf->read(pos, pkt->payload);
      }
      ++tx_segments_;
      record_pipe_total(*ctx);  // segment fully materialized for the NBI
      groups_[ctx->flow_group]->nbi_rob->push(ctx->snap.egress_seq, ctx);
    });
    return;
  }

  // HC with a window-update ACK.
  if (ctx->ack_pkt) {
    ++acks_sent_;
    auto ack_ctx = std::make_shared<SegCtx>();
    ack_ctx->kind = SegCtx::Kind::Hc;
    ack_ctx->pkt = ctx->ack_pkt;
    ack_ctx->rtc_token = ctx->rtc_token;
    groups_[ctx->flow_group]->nbi_rob->push(ctx->snap.egress_seq,
                                            std::move(ack_ctx));
  }
}

// ----------------------------------------------------- context-queue stage

void Datapath::stage_ctx_notify(const SegCtxPtr& ctx) {
  stage_mark(kStCtxNotify, *ctx);
  record_pipe_total(*ctx);
  const FlowState& fs = flows_[ctx->conn_idx];
  const ProtoSnapshot& snap = ctx->snap;
  const ConnId conn = ctx->conn_idx;

  // Notification descriptors DMA'd to the host context queue.
  auto send = [this, conn](host::CtxDescType type, std::uint32_t a) {
    host::CtxDesc d;
    d.type = type;
    d.conn = conn;
    d.a = a;
    host_notify(d);
  };
  if (snap.rx_advance > 0) send(host::CtxDescType::RxNotify, snap.rx_advance);
  if (snap.tx_freed > 0) send(host::CtxDescType::TxFreed, snap.tx_freed);
  if (snap.fin_consumed) {
    send(host::CtxDescType::RxEof, 0);
    if (host_.peer_fin) host_.peer_fin(conn);
  }
  (void)fs;
}

void Datapath::host_notify(const host::CtxDesc& desc) {
  if (telem_.enabled()) t_host_notify_->inc();
  // 32-byte descriptor DMA + interrupt/eventfd (or polling) delay.
  dma_.issue(32, [this, desc] {
    ev_.schedule_in(cfg_.notify_latency, [this, desc] {
      if (host_.notify) host_.notify(desc);
    });
  });
}

// ------------------------------------------------------------------ NBI

void Datapath::nbi_transmit(const net::PacketPtr& pkt) {
  if (mac_sink_ != nullptr) mac_sink_->deliver(pkt);
}

void Datapath::control_tx(const net::PacketPtr& pkt) {
  // Control-plane segments bypass the data pipeline (separate queue into
  // the NBI).
  nbi_transmit(pkt);
}

}  // namespace flextoe::core
