// Figure 12: large-RPC goodput vs message size; (a) unidirectional
// (32 B response), (b) bidirectional (echo).
#include "common.hpp"

using namespace flextoe;
using namespace flextoe::benchx;

namespace {

double run_case(Stack s, std::uint32_t msg, bool echo) {
  Testbed tb(37);
  auto& server = add_server(tb, s, with_stack_cores(s, 2));
  auto& client = tb.add_client_node();

  app::EchoServer srv(
      tb.ev(), *server.stack,
      {.port = 7, .response_size = echo ? 0u : 32u}, server.cpu.get());
  app::ClosedLoopClient::Params cp;
  cp.connections = 1;
  cp.pipeline = 1;
  cp.request_size = msg;
  cp.response_size = echo ? 0 : 32;
  app::ClosedLoopClient cli(tb.ev(), *client.stack, server.ip, cp);
  cli.start();

  // Warm up at least one full RPC, then measure several.
  tb.run_for(sim::ms(30));
  const std::uint64_t base = cli.completed();
  const sim::TimePs span = sim::ms(120);
  tb.run_for(span);
  const double rpcs = static_cast<double>(cli.completed() - base);
  const double dir_bytes = echo ? 2.0 * msg : 1.0 * msg;
  return rpcs * dir_bytes * 8.0 / sim::to_sec(span) / 1e9;
}

}  // namespace

int main() {
  const std::vector<std::uint32_t> sizes = {128 * 1024, 512 * 1024,
                                            2 * 1024 * 1024,
                                            8 * 1024 * 1024,
                                            32 * 1024 * 1024};
  for (bool echo : {false, true}) {
    print_header(echo ? "Figure 12b: bidirectional goodput (Gbps)"
                      : "Figure 12a: unidirectional goodput (Gbps)",
                 {"MsgSize", "Linux", "Chelsio", "TAS", "FlexTOE"});
    for (std::uint32_t msg : sizes) {
      print_cell(static_cast<double>(msg), 0);
      for (Stack s : all_stacks()) print_cell(run_case(s, msg, echo), 2);
      end_row();
    }
  }
  std::printf(
      "\nPaper shape: (a) all within ~20%%, Chelsio slightly ahead "
      "(streaming ASIC); (b) FlexTOE ~27%% above Chelsio — per-connection\n"
      "pipeline parallelism pays off for bidirectional flows.\n");
  return 0;
}
