// Software-managed caches built on NFP near-memory primitives
// (paper §4.1): per-FPC 16-entry fully-associative CAM caches with LRU
// eviction, a 512-entry direct-mapped second-level cache in CLS, and the
// EMEM SRAM front cache.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace flextoe::nfp {

// Fully-associative cache keyed by a 32-bit id, LRU eviction.
// Models the FPC-local CAM (16 entries on the NFP-4000).
class CamCache {
 public:
  explicit CamCache(std::size_t entries = 16) : capacity_(entries) {}

  // Returns true on hit. On miss the key is inserted (LRU evicted).
  bool access(std::uint32_t key) {
    auto it = std::find(keys_.begin(), keys_.end(), key);
    if (it != keys_.end()) {
      // Move to MRU position.
      keys_.erase(it);
      keys_.push_back(key);
      ++hits_;
      return true;
    }
    if (keys_.size() >= capacity_) keys_.erase(keys_.begin());
    keys_.push_back(key);
    ++misses_;
    return false;
  }

  bool contains(std::uint32_t key) const {
    return std::find(keys_.begin(), keys_.end(), key) != keys_.end();
  }
  void invalidate(std::uint32_t key) {
    auto it = std::find(keys_.begin(), keys_.end(), key);
    if (it != keys_.end()) keys_.erase(it);
  }
  void clear() { keys_.clear(); }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::size_t size() const { return keys_.size(); }
  std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  std::vector<std::uint32_t> keys_;  // LRU order: front = oldest
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

// Direct-mapped cache indexed by key % size (connection identifiers are
// allocated to minimize collisions, paper §4.1).
class DirectMappedCache {
 public:
  explicit DirectMappedCache(std::size_t entries)
      : slots_(entries, std::nullopt) {}

  bool access(std::uint32_t key) {
    auto& slot = slots_[key % slots_.size()];
    if (slot && *slot == key) {
      ++hits_;
      return true;
    }
    slot = key;
    ++misses_;
    return false;
  }

  void invalidate(std::uint32_t key) {
    auto& slot = slots_[key % slots_.size()];
    if (slot && *slot == key) slot.reset();
  }
  void clear() { std::fill(slots_.begin(), slots_.end(), std::nullopt); }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::size_t capacity() const { return slots_.size(); }

 private:
  std::vector<std::optional<std::uint32_t>> slots_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace flextoe::nfp
