// Data-path telemetry: a low-overhead counter/gauge/histogram registry
// for introspecting the *simulator's* pipeline — per-stage visit counts
// and latencies, per-FPC ring occupancy, per-flow-group traffic, DMA and
// scheduler activity, host context-queue depths, and a drop-reason
// taxonomy. Unlike sim::TraceRegistry (which models the paper's in-band
// profiling extension and charges simulated FPC cycles per hit, Table 2),
// telemetry is out-of-band: recording costs zero simulated time, so an
// instrumented run is bit-identical to an uninstrumented one.
//
// Two toggles gate every record site:
//   * compile time — configure with -DFLEXTOE_TELEMETRY=OFF and
//     Registry::enabled() becomes constexpr false, letting the compiler
//     delete the instrumentation entirely;
//   * run time — Registry::set_enabled(false) (or the harness flag
//     --no-telemetry, which flips the process-wide default that new
//     registries inherit) short-circuits record sites to one branch.
//
// Handles returned by counter()/gauge()/histogram() are stable for the
// registry's lifetime (deque-backed), so instrumented code pays a name
// lookup once at bind time and a pointer bump per event thereafter.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace flextoe::telemetry {

// True when instrumentation is compiled in (FLEXTOE_TELEMETRY=ON, the
// default). The CMake OFF switch defines FLEXTOE_TELEMETRY_DISABLED.
#ifdef FLEXTOE_TELEMETRY_DISABLED
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

// Monotonic event counter.
class Counter {
 public:
  void inc(std::uint64_t d = 1) { v_ += d; }
  std::uint64_t value() const { return v_; }
  void reset() { v_ = 0; }

 private:
  std::uint64_t v_ = 0;
};

// Instantaneous level (may go negative transiently, e.g. merge deltas).
// Tracks its high-water mark: snapshots surface it as "<path>_peak", the
// honest companion to a level sampled only at snapshot time.
class Gauge {
 public:
  void set(std::int64_t v) {
    v_ = v;
    if (v > peak_) peak_ = v;
  }
  void add(std::int64_t d) { set(v_ + d); }
  std::int64_t value() const { return v_; }
  std::int64_t peak() const { return peak_; }
  void reset() { v_ = peak_ = 0; }

 private:
  std::int64_t v_ = 0;
  std::int64_t peak_ = 0;
};

// Fixed-bucket log2 histogram: bucket 0 counts zeros, bucket i >= 1
// counts values in [2^(i-1), 2^i). 48 buckets cover the full range of
// nanosecond latencies and queue depths the simulator produces; FPCs
// lack floating point, and so does this histogram — everything is
// integer adds, the FlexTOE-idiomatic cost model for always-on stats.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 48;

  void record(std::uint64_t v) {
    ++buckets_[bucket_of(v)];
    ++count_;
    sum_ += v;
    if (v > max_) max_ = v;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }
  const std::array<std::uint64_t, kBuckets>& buckets() const {
    return buckets_;
  }
  void reset() {
    buckets_.fill(0);
    count_ = sum_ = max_ = 0;
  }

  // Bucket index for a value: 0 for 0, else 1 + floor(log2 v), clamped.
  static std::size_t bucket_of(std::uint64_t v);
  // Inclusive lower bound of a bucket (0, 1, 2, 4, 8, ...).
  static std::uint64_t bucket_floor(std::size_t b);

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

// ---------------------------------------------------------------------
// Snapshots: a registry's values frozen into plain data that can be
// merged across runs/nodes, serialized to JSON (the `telemetry` section
// of BENCH_<name>.json), and parsed back for diffing.

struct HistogramData {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::vector<std::uint64_t> buckets;  // trailing zero buckets trimmed

  double mean() const {
    return count ? static_cast<double>(sum) / static_cast<double>(count)
                 : 0.0;
  }
  // Approximate quantile (q in [0,1]) from the log2 buckets: the upper
  // bound of the bucket where the cumulative count crosses q.
  std::uint64_t quantile(double q) const;
};

struct Snapshot {
  bool enabled = false;  // was the source registry recording?
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramData>> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  // Lookup by exact path; nullptr when absent.
  const std::uint64_t* counter(std::string_view path) const;
  const std::int64_t* gauge(std::string_view path) const;
  const HistogramData* histogram(std::string_view path) const;

  // Merge: counters and histogram buckets sum; gauges (levels, not
  // totals) and histogram max take the maximum; enabled ORs — so a
  // gauge like sched/flows reads as the peak across merged runs, not a
  // meaningless multiple. Both snapshots must
  // be sorted by path (every producer — snapshot(), from_json(),
  // merge() itself — maintains this), and the merged result stays
  // sorted, so output is deterministic and merging is linear.
  void merge(const Snapshot& other);

  // JSON object: {"enabled", "counters": {path: n}, "gauges": {...},
  // "histograms": {path: {"count","sum","max","buckets":[...]}}}.
  std::string to_json() const;
  // Parses exactly the shape to_json() emits (key order free). Returns
  // false and sets *err on malformed input.
  static bool from_json(std::string_view text, Snapshot* out,
                        std::string* err = nullptr);
};

// ---------------------------------------------------------------------
// Registry: named metrics with stable handles.

class Registry {
 public:
  Registry();  // starts enabled per default_enabled()

  // Finds or creates; the returned pointer is stable for the registry's
  // lifetime. Paths are '/'-separated taxonomies, e.g.
  // "stage/proto_rx/visits" or "drop/fpc_queue_full".
  Counter* counter(std::string_view path);
  Gauge* gauge(std::string_view path);
  Histogram* histogram(std::string_view path);

#ifdef FLEXTOE_TELEMETRY_DISABLED
  static constexpr bool enabled() { return false; }
#else
  bool enabled() const { return enabled_; }
#endif
  void set_enabled(bool on) { enabled_ = on; }

  std::size_t num_metrics() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  // Zeroes every value (registrations stay).
  void clear();

  // Freezes current values, sorted by path.
  Snapshot snapshot() const;

 private:
  template <typename T>
  struct Entry {
    std::string path;
    T metric;
  };

  std::deque<Entry<Counter>> counters_;
  std::deque<Entry<Gauge>> gauges_;
  std::deque<Entry<Histogram>> histograms_;
  std::unordered_map<std::string, Counter*> counter_by_name_;
  std::unordered_map<std::string, Gauge*> gauge_by_name_;
  std::unordered_map<std::string, Histogram*> histogram_by_name_;
  bool enabled_ = true;
};

// A component's handle to the registry it is bound to: idempotent
// bind-once (components shared between roles — e.g. the run-to-
// completion mode's single FPC — register their metrics exactly once)
// plus the cheap per-event enabled check.
class Binding {
 public:
  // True on first bind (the caller should register its metrics now);
  // false when already bound.
  bool bind(Registry& reg) {
    if (reg_ != nullptr) return false;
    reg_ = &reg;
    return true;
  }
  bool on() const { return reg_ != nullptr && reg_->enabled(); }

 private:
  Registry* reg_ = nullptr;
};

// Appends `s` as a quoted, escaped JSON string to `out` (shared by the
// snapshot serializer and the bench harness's report emitter).
void json_escape(std::string_view s, std::string* out);

// ---------------------------------------------------------------------
// Process-wide plumbing used by the bench harness.

// Default enabled state inherited by newly constructed registries (the
// harness flag --no-telemetry flips this before any testbed exists).
bool default_enabled();
void set_default_enabled(bool on);

// Global accumulator: app::Testbed merges every FlexTOE node's registry
// snapshot here on teardown, and benchx::bench_main() attaches the total
// to the report, so every BENCH_<name>.json carries the telemetry of all
// the data-paths the bench ran. Single-threaded, like the simulator.
const Snapshot& accumulator();
void accumulate(const Snapshot& s);
void reset_accumulator();

}  // namespace flextoe::telemetry
