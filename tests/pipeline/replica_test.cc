// ReplicaPicker: the one source of round-robin replica state (replaces
// the Datapath's four hand-rolled counters). Distribution must be even
// under any replication factor, and the grant must be consumed even when
// the caller then rejects the pick (back-pressure semantics).
#include "pipeline/replica.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "pipeline/stage.hpp"

namespace flextoe::pipeline {
namespace {

TEST(ReplicaPicker, EvenDistributionUnderReplication) {
  for (std::size_t n : {2u, 3u, 4u, 8u}) {
    ReplicaPicker p;
    const std::uint64_t rounds = 1000;
    std::vector<std::uint64_t> hits(n, 0);
    for (std::uint64_t i = 0; i < rounds * n; ++i) {
      const std::size_t idx = p.next(n);
      ASSERT_LT(idx, n);
      ++hits[idx];
    }
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i], rounds) << "replica " << i << " of " << n;
    }
    EXPECT_EQ(p.issued(), rounds * n);
  }
}

TEST(ReplicaPicker, SequentialRoundRobinOrder) {
  ReplicaPicker p;
  for (int round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_EQ(p.next(4), i);
    }
  }
}

// Consuming a grant without using it (ring-full rejection) still
// advances the rotation — the next pick goes to the next replica.
TEST(ReplicaPicker, GrantConsumedOnRejection) {
  ReplicaPicker p;
  EXPECT_EQ(p.next(2), 0u);  // caller rejects this pick
  EXPECT_EQ(p.next(2), 1u);  // rotation advanced anyway
  EXPECT_EQ(p.next(2), 0u);
}

// Stage::pick honors the policy: ConnShard pins a connection to one
// replica; RoundRobin ignores the key.
TEST(StagePick, PolicyRouting) {
  Stage shard("proto0", StageRole::Proto, PickPolicy::ConnShard,
              StateAccess::ReadModifyWrite, StageTraits{});
  Stage rr("post0", StageRole::Post, PickPolicy::RoundRobin,
           StateAccess::Read, StageTraits{});
  // Three replica slots each (FPC pointers unused by pick()).
  for (int i = 0; i < 3; ++i) {
    shard.add_replica(nullptr);
    rr.add_replica(nullptr);
  }
  for (std::uint64_t conn = 0; conn < 9; ++conn) {
    const std::size_t first = shard.pick(conn);
    EXPECT_EQ(first, conn % 3);
    EXPECT_EQ(shard.pick(conn), first);  // sticky per connection
  }
  EXPECT_EQ(rr.pick(7), 0u);  // key ignored
  EXPECT_EQ(rr.pick(7), 1u);
  EXPECT_EQ(rr.pick(7), 2u);
}

}  // namespace
}  // namespace flextoe::pipeline
