// Tracepoint registry (paper §5.1: "48 different tracepoints ... tracking
// transport events such as per-connection drops, out-of-order packets and
// retransmissions, inter-module queue occupancies, and critical section
// lengths").
//
// Tracepoints are named counters that modules hit on the data path. When
// profiling is enabled, each hit additionally charges the owning stage a
// configurable cycle cost — this is how Table 2's "Statistics and
// profiling" row is regenerated.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace flextoe::sim {

class TraceRegistry {
 public:
  // Registers (or finds) a tracepoint and returns its id.
  std::uint32_t register_point(std::string_view name);

  // Hit a tracepoint; `value` accumulates (e.g. queue occupancy).
  void hit(std::uint32_t id, std::uint64_t value = 1);

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  // Extra per-hit cycles charged to the hitting stage when enabled.
  std::uint32_t per_hit_cycles() const { return enabled_ ? per_hit_cycles_ : 0; }
  void set_per_hit_cycles(std::uint32_t c) { per_hit_cycles_ = c; }

  std::uint64_t hits(std::uint32_t id) const;
  std::uint64_t hits(std::string_view name) const;
  std::uint64_t accumulated(std::uint32_t id) const;
  std::size_t num_points() const { return points_.size(); }
  std::vector<std::string> names() const;

  void clear_counts();

 private:
  struct Point {
    std::string name;
    std::uint64_t hits = 0;
    std::uint64_t accum = 0;
  };
  std::vector<Point> points_;
  std::unordered_map<std::string, std::uint32_t> by_name_;
  bool enabled_ = false;
  std::uint32_t per_hit_cycles_ = 30;
};

}  // namespace flextoe::sim
