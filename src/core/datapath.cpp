// Datapath implementation: TCP stage bodies (pre/protocol/post/DMA/
// notify) bound into the pipeline::Graph that owns all structure —
// stage dispatch, replica selection, sequencing/reorder, the RTC gate,
// drop taxonomy and stage telemetry live in src/pipeline/graph.cpp.
#include "core/datapath.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "core/batch.hpp"
#include "sched/carousel.hpp"
#include "sched/timing_wheel.hpp"

namespace flextoe::core {

using tcp::ConnId;
using tcp::SeqNum;
using tcp::seq_diff;
using tcp::seq_ge;
using tcp::seq_gt;
using tcp::seq_le;
using tcp::seq_lt;
namespace flag = net::tcpflag;

namespace {

std::uint32_t now_us_of(sim::Domain& ev) {
  return static_cast<std::uint32_t>(ev.now() / sim::kPsPerUs);
}

}  // namespace

pipeline::Graph::Handlers Datapath::make_handlers() {
  pipeline::Graph::Handlers h;
  h.pre_rx = [this](const SegCtxPtr& ctx) { stage_pre_rx(ctx); };
  h.pre_tx = [this](const SegCtxPtr& ctx) { stage_pre_tx(ctx); };
  h.proto = [this](const SegCtxPtr& ctx) { stage_proto(ctx); };
  h.post = [this](const SegCtxPtr& ctx) { stage_post(ctx); };
  h.dma = [this](const SegCtxPtr& ctx) { stage_dma(ctx); };
  h.ctx_notify = [this](const SegCtxPtr& ctx) { stage_ctx_notify(ctx); };
  h.conn_valid = [this](const SegCtxPtr& ctx) {
    return table_.valid(ctx->conn_idx);
  };
  h.nbi_tx = [this](const net::PacketPtr& pkt) { nbi_transmit(pkt); };
  h.redirect = [this](const SegCtxPtr& ctx) {
    ++to_control_count_;
    host_.to_control(ctx->pkt);
  };
  h.on_drop = [this](DropReason r) { count_drop_legacy(r); };
  return h;
}

std::unique_ptr<sched::TimerService> Datapath::make_scheduler(
    sim::Domain& ev, const DatapathConfig& cfg) {
  const bool wheel =
      cfg.timer == TimerImpl::kWheel ||
      (cfg.timer == TimerImpl::kAuto &&
       cfg.max_conns >= cfg.timer_wheel_threshold);
  if (wheel) return std::make_unique<sched::TimingWheel>(ev);
  return std::make_unique<sched::Carousel>(ev);
}

Datapath::Datapath(sim::Domain& ev, DatapathConfig cfg, HostIface host)
    : ev_(ev),
      cfg_(cfg),
      host_(std::move(host)),
      dma_(ev, cfg.dma),
      sched_(make_scheduler(ev, cfg)),
      table_(std::max(1u, cfg.flow_groups), cfg.max_conns) {
  batch_ = resolve_batch(cfg_.batch_size);
  graph_ = std::make_unique<pipeline::Graph>(ev_, cfg_, dma_,
                                             make_handlers());

  sched_->set_trigger([this](std::uint32_t conn) {
    return tx_trigger(conn);
  });

  // The paper's 48 tracepoints (§5.1): transport events, inter-module
  // queue occupancies, critical-section lengths.
  static const char* kEvents[] = {"drop", "ooo", "retx", "fretx", "ack",
                                  "rx", "tx", "hc", "notify", "dma",
                                  "winupd", "fin"};
  for (const char* e : kEvents) {
    trace_.register_point(std::string("event/") + e);
  }
  for (const char* s : {"pre", "proto", "post", "dma", "ctx", "sch"}) {
    trace_.register_point(std::string("queue/") + s);
    trace_.register_point(std::string("crit/") + s);
  }
  for (const char* s : {"rx", "tx", "hc", "ack", "win", "pos"}) {
    trace_.register_point(std::string("proto/") + s);
    trace_.register_point(std::string("lat/") + s);
    trace_.register_point(std::string("cnt/") + s);
    trace_.register_point(std::string("err/") + s);
  }
  tp_rx_ = trace_.register_point("event/rx");
  tp_tx_ = trace_.register_point("event/tx");
  tp_ooo_ = trace_.register_point("event/ooo");
  tp_drop_ = trace_.register_point("event/drop");
  tp_fretx_ = trace_.register_point("event/fretx");
  tp_ack_ = trace_.register_point("event/ack");

  graph_->bind_telemetry(telem_);
  t_host_notify_ = telem_.counter("hostq/notify");
  dma_.bind_telemetry(telem_, "dma");
  sched_->bind_telemetry(telem_, "sched");
  table_.bind_telemetry(telem_, "flowtab");
  pkt_pool_.bind_telemetry(telem_, "pool/pkt");
}

Datapath::~Datapath() { *alive_ = false; }

// ------------------------------------------------------------ telemetry

void Datapath::count_drop_legacy(DropReason r) {
  (void)r;  // taxonomy counters live in the graph
  ++drops_;
  trace_.hit(tp_drop_);
}

unsigned Datapath::total_fpcs() const { return graph_->total_fpcs(); }

double Datapath::fpc_utilization() const {
  const double elapsed = static_cast<double>(ev_.now()) * total_fpcs();
  return elapsed > 0 ? static_cast<double>(graph_->total_busy()) / elapsed
                     : 0.0;
}

// --------------------------------------------------------- flow install

ConnId Datapath::install_flow(const FlowInstall& ins) {
  const ConnId conn = table_.insert(ins.tuple, ins.conn_id);
  ConnRecord& rec = *table_.get(conn);
  FlowState& fs = rec.fs;
  fs.pre.peer_mac = ins.peer_mac;
  fs.pre.peer_ip = ins.tuple.remote_ip;
  fs.pre.local_port = ins.tuple.local_port;
  fs.pre.remote_port = ins.tuple.remote_port;
  fs.pre.flow_group = static_cast<std::uint8_t>(ins.tuple.flow_group(
      static_cast<std::uint32_t>(graph_->group_count())));
  fs.proto = ProtoState{};
  fs.proto.seq = ins.iss + 1;
  fs.proto.ack = ins.irs + 1;
  fs.proto.remote_win = ins.remote_win;
  fs.proto.rx_avail =
      static_cast<std::uint32_t>(ins.rx_buf ? ins.rx_buf->size() : 0);
  fs.post = PostState{};
  fs.post.context_id = ins.context_id;
  fs.post.opaque = ins.opaque;
  fs.post.rx_size =
      static_cast<std::uint32_t>(ins.rx_buf ? ins.rx_buf->size() : 0);
  fs.post.tx_size =
      static_cast<std::uint32_t>(ins.tx_buf ? ins.tx_buf->size() : 0);
  rec.rx_buf = ins.rx_buf;
  rec.tx_buf = ins.tx_buf;
  rec.snd_max = fs.proto.seq;
  rec.high_rtx = fs.proto.seq;
  if (local_mac_.to_u64() == 0) local_mac_ = ins.local_mac;
  sched_->set_rate(conn, 0);  // uncongested until the CC loop speaks
  return conn;
}

void Datapath::remove_flow(ConnId conn) {
  if (!table_.erase(conn)) return;
  sched_->remove_flow(conn);
}

bool Datapath::flow_valid(ConnId conn) const { return table_.valid(conn); }

const ProtoState* Datapath::proto_state(ConnId conn) const {
  const ConnRecord* rec = table_.get(conn);
  return rec != nullptr ? &rec->fs.proto : nullptr;
}

Datapath::CcSnapshot Datapath::read_cc_stats(ConnId conn, bool clear) {
  CcSnapshot s;
  ConnRecord* rec = table_.get(conn);
  if (rec == nullptr) return s;
  s.acked_bytes = rec->cc.acked;
  s.ecn_bytes = rec->cc.ecn;
  s.fast_retx = rec->cc.fretx;
  s.rtt_us = rec->fs.post.rtt_est;
  s.tx_sent = rec->fs.proto.tx_sent;
  s.snd_una = rec->fs.proto.seq - rec->fs.proto.tx_sent;
  if (clear) rec->cc = CcAccum{};
  return s;
}

void Datapath::set_rate(ConnId conn, std::uint64_t bytes_per_sec) {
  if (ConnRecord* rec = table_.get(conn)) {
    rec->fs.post.rate = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(bytes_per_sec, 0xFFFFFFFF));
  }
  sched_->set_rate(conn, bytes_per_sec);
}

std::size_t Datapath::conn_bytes_reserved() const {
  return table_.bytes_reserved() + sched_->footprint_bytes();
}

host::CtxQueue& Datapath::hc_queue(std::uint16_t ctx_id) {
  while (hc_queues_.size() <= ctx_id) {
    auto q = std::make_unique<host::CtxQueue>();
    q->bind_telemetry(telem_,
                      "hostq/hc" + std::to_string(hc_queues_.size()));
    hc_queues_.push_back(std::move(q));
  }
  return *hc_queues_[ctx_id];
}

void Datapath::add_xdp_program(xdp::XdpProgramPtr prog) {
  // Each program becomes a first-class stage node chained ahead of
  // pre-processing (paper §3.3): its own replica FPCs, burst striping,
  // and per-stage cost/drop accounting. The adapter keeps pipeline/
  // ignorant of src/xdp: it maps XdpAction onto the graph's verdict
  // enum, with the MAC arrival timestamp read once per segment at
  // delivery (ctx->rx_time_ps) — not once per program.
  pipeline::XdpStageDesc d;
  d.name = prog->name();
  d.cycles = prog->cycles_per_packet();
  d.run = [p = prog](const SegCtxPtr& ctx) {
    xdp::XdpMd md{*ctx->pkt, ctx->rx_time_ps};
    switch (p->run(md)) {
      case xdp::XdpAction::Drop:
        return pipeline::XdpVerdict::Drop;
      case xdp::XdpAction::Tx:
        return pipeline::XdpVerdict::Tx;
      case xdp::XdpAction::Redirect:
        return pipeline::XdpVerdict::Redirect;
      case xdp::XdpAction::Pass:
        break;
    }
    return pipeline::XdpVerdict::Pass;
  };
  graph_->attach_xdp_stage(std::move(d));
  xdp_programs_.push_back(std::move(prog));
}

void Datapath::clear_xdp_programs() {
  graph_->clear_xdp_stages();
  xdp_programs_.clear();
}

void Datapath::set_profiling(bool on) {
  cfg_.profiling = on;  // the graph reads the live config
  trace_.set_enabled(on);
}

// --------------------------------------------------------------- MAC RX

// MAC RX filter accounting: these packets were never the offload's
// (non-TCP traffic goes to the kernel stack; foreign-IP frames belong
// to another host), so they are counted apart from the drop taxonomy —
// which must keep summing to drops() — but never vanish silently.
// Telemetry keys register lazily on the first hit so default scenario
// snapshots (which never exercise the filter) stay byte-identical.
void Datapath::count_kernel_path() {
  ++kernel_path_;
  if (telem_.enabled()) {
    if (t_kernel_path_ == nullptr) {
      t_kernel_path_ = telem_.counter("mac/kernel_path");
    }
    t_kernel_path_->inc();
  }
}

void Datapath::count_not_local() {
  ++not_local_;
  if (telem_.enabled()) {
    if (t_not_local_ == nullptr) {
      t_not_local_ = telem_.counter("mac/not_local");
    }
    t_not_local_->inc();
  }
}

void Datapath::deliver(const net::PacketPtr& pkt) {
  if (pkt->ip.proto != net::kProtoTcp) {  // non-TCP -> kernel path
    count_kernel_path();
    return;
  }
  if (local_ip_ != 0 && pkt->ip.dst != local_ip_) {  // not for us
    count_not_local();
    return;
  }
  ++rx_segments_;
  trace_.hit(tp_rx_);

  auto ctx = ctx_pool_.acquire();
  ctx->kind = SegCtx::Kind::Rx;
  ctx->pkt = pkt;
  // Sequencer: compute the flow group (CRC on the 4-tuple, hardware
  // accelerated); the graph assigns the pipeline sequence number at
  // admission.
  tcp::FlowTuple t{pkt->ip.dst, pkt->ip.src, pkt->tcp.dport,
                   pkt->tcp.sport};
  ctx->flow_group = static_cast<std::uint8_t>(t.flow_group(
      static_cast<std::uint32_t>(graph_->group_count())));
  ctx->lookup_key = t.hash();
  // One clock read per segment, shared by the telemetry birth stamp and
  // every XDP program in the chain (xdp::XdpMd::rx_timestamp_ps).
  const sim::TimePs now = ev_.now();
  ctx->rx_time_ps = now;
  graph_->stamp_birth_at(*ctx, now);
  graph_->ingress_rx(ctx);
}

void Datapath::deliver_burst(std::span<const net::PacketPtr> pkts) {
  // Same admission steps as deliver(), amortized per chunk: one clock
  // read, one graph ingress call. No events run inside a chunk, so the
  // shared timestamp and the span-ordered dispatch are exactly what
  // per-packet delivery would produce.
  const auto ngroups = static_cast<std::uint32_t>(graph_->group_count());
  std::array<SegCtxPtr, kMaxBurst> burst;
  std::size_t i = 0;
  while (i < pkts.size()) {
    const std::size_t lim = std::min(pkts.size() - i, batch_);
    const sim::TimePs now = ev_.now();
    std::size_t n = 0;
    for (std::size_t k = 0; k < lim; ++k) {
      const net::PacketPtr& pkt = pkts[i + k];
      if (pkt->ip.proto != net::kProtoTcp) {  // kernel path
        count_kernel_path();
        continue;
      }
      if (local_ip_ != 0 && pkt->ip.dst != local_ip_) {
        count_not_local();
        continue;
      }
      ++rx_segments_;
      trace_.hit(tp_rx_);
      auto ctx = ctx_pool_.acquire();
      ctx->kind = SegCtx::Kind::Rx;
      ctx->pkt = pkt;
      tcp::FlowTuple t{pkt->ip.dst, pkt->ip.src, pkt->tcp.dport,
                       pkt->tcp.sport};
      ctx->flow_group = static_cast<std::uint8_t>(t.flow_group(ngroups));
      ctx->lookup_key = t.hash();
      ctx->rx_time_ps = now;
      graph_->stamp_birth_at(*ctx, now);
      burst[n++] = std::move(ctx);
    }
    graph_->ingress_rx_burst(burst.data(), n);
    for (std::size_t k = 0; k < n; ++k) burst[k].reset();
    i += lim;
  }
}

void Datapath::stage_pre_rx(const SegCtxPtr& ctx) {
  // XDP programs no longer run inline here: the graph dispatches them as
  // first-class stage nodes between the sequencer and this stage
  // (Graph::attach_xdp_stage), so a segment only reaches pre-processing
  // with a Pass verdict from the whole chain.
  net::Packet& pkt = *ctx->pkt;

  // --- Val: filter non-data-path segments to the control plane ---
  if (!pkt.tcp.is_datapath_segment()) {
    ++to_control_count_;
    host_.to_control(ctx->pkt);
    graph_->skip_proto(ctx);
    return;
  }

  // --- Id: active-connection DB lookup (IMEM lookup engine + cache) ---
  // Probes the owning island's shard with the sequencer's precomputed
  // CRC (ctx->lookup_key): no re-hash, no directory access.
  tcp::FlowTuple t{pkt.ip.dst, pkt.ip.src, pkt.tcp.dport, pkt.tcp.sport};
  tcp::ConnId conn = tcp::kInvalidConn;
  if (table_.lookup(
          tcp::FlowKey{t, static_cast<std::uint32_t>(ctx->lookup_key)},
          &conn) == nullptr) {
    // Not an established data-path flow (e.g. final handshake ACK).
    ++to_control_count_;
    host_.to_control(ctx->pkt);
    graph_->skip_proto(ctx);
    return;
  }
  ctx->conn_idx = conn;
  ctx->conn_known = true;

  // --- Sum: header summary for later stages ---
  HeaderSummary& s = ctx->sum;
  s.seq = pkt.tcp.seq;
  s.ack = pkt.tcp.ack;
  s.flags = pkt.tcp.flags;
  s.window = static_cast<std::uint32_t>(pkt.tcp.window) << tcp::kWindowShift;
  s.payload_len = pkt.payload_len();
  if (pkt.tcp.ts) {
    s.ts_val = pkt.tcp.ts->val;
    s.ts_ecr = pkt.tcp.ts->ecr;
  }
  s.ecn_ce = pkt.ip.ecn == net::Ecn::Ce;

  // --- Steer: in-order admission to the flow-group's protocol stage ---
  graph_->to_proto(ctx);
}

// ----------------------------------------------------------- TX trigger

std::uint32_t Datapath::tx_trigger(std::uint32_t conn) {
  ConnRecord* rec = table_.get(conn);
  if (rec == nullptr) return 0;
  FlowState& fs = rec->fs;
  // Admission estimate (authoritative check happens in the protocol
  // stage; the scheduler tracks appended-but-untriggered bytes itself).
  const std::uint32_t outstanding = fs.proto.tx_sent + rec->pending_planned;
  if (fs.proto.remote_win <= outstanding) return 0;  // window closed
  const std::uint32_t room = fs.proto.remote_win - outstanding;
  const std::uint32_t planned = std::min(cfg_.mss, room);

  auto ctx = ctx_pool_.acquire();
  ctx->kind = SegCtx::Kind::Tx;
  ctx->conn_idx = conn;
  ctx->conn_known = true;
  ctx->flow_group = fs.pre.flow_group;
  ctx->hc_len = planned;
  graph_->stamp_birth(*ctx);

  if (!graph_->ingress_tx(ctx)) return 0;  // inter-stage back-pressure
  rec->pending_planned += planned;
  return planned;
}

void Datapath::stage_pre_tx(const SegCtxPtr& ctx) {
  // Alloc + Head happen here in the real pipeline; the packet itself is
  // materialized in post-processing once the protocol stage has assigned
  // the sequence number. Steer:
  graph_->to_proto(ctx);
}

// ------------------------------------------------------------- HC path

void Datapath::doorbell(std::uint16_t ctx_id) {
  // MMIO doorbell -> context-queue FPC polls and fetches descriptors in
  // batch_-sized bursts (one clock read and one graph ingress call per
  // burst; descriptor order and per-descriptor semantics unchanged —
  // the whole drain runs in one event turn either way).
  dma_.mmio([this, alive = alive_, ctx_id] {
    if (!*alive) return;
    host::CtxQueue& q = hc_queue(ctx_id);
    host::CtxDesc d;
    std::array<SegCtxPtr, kMaxBurst> burst;
    bool more = true;
    while (more) {
      const sim::TimePs now = ev_.now();
      std::size_t n = 0;
      while (n < batch_ && (more = q.pop(d))) {
        auto ctx = ctx_pool_.acquire();
        ctx->kind = SegCtx::Kind::Hc;
        ctx->conn_idx = d.conn;
        ctx->conn_known = true;
        ctx->hc_len = d.a;
        switch (d.type) {
          case host::CtxDescType::TxDoorbell:
            ctx->hc_op = HcOp::TxDoorbell;
            break;
          case host::CtxDescType::RxFreed:
            ctx->hc_op = HcOp::RxFreed;
            break;
          case host::CtxDescType::Fin:
            ctx->hc_op = HcOp::Fin;
            break;
          case host::CtxDescType::Retransmit:
            ctx->hc_op = HcOp::Retransmit;
            break;
          default:
            continue;
        }
        const ConnRecord* rec = table_.get(ctx->conn_idx);
        if (rec == nullptr) continue;
        ctx->flow_group = rec->fs.pre.flow_group;
        graph_->stamp_birth_at(*ctx, now);
        burst[n++] = std::move(ctx);
      }
      graph_->ingress_hc_burst(burst.data(), n);
      for (std::size_t k = 0; k < n; ++k) burst[k].reset();
    }
  });
}

// Re-synchronizes the flow scheduler with the protocol stage's
// authoritative view: untriggered bytes = appended-but-unsent minus
// segments already in flight through the pipeline.
void Datapath::sched_resync(ConnId conn, const ConnRecord& rec) {
  const std::uint64_t pend = rec.pending_planned;
  const std::uint64_t avail = rec.fs.proto.tx_avail;
  const std::uint64_t untrig = avail > pend ? avail - pend : 0;
  sched_->update_avail(conn, untrig);
}

// --------------------------------------------------------- protocol stage

void Datapath::stage_proto(const SegCtxPtr& ctx) {
  ConnRecord* rec = table_.get(ctx->conn_idx);
  if (rec == nullptr) return;
  switch (ctx->kind) {
    case SegCtx::Kind::Rx:
      proto_rx(*rec, ctx);
      break;
    case SegCtx::Kind::Tx:
      proto_tx(*rec, ctx);
      break;
    case SegCtx::Kind::Hc:
      proto_hc(*rec, ctx);
      break;
  }
}

void Datapath::proto_rx(ConnRecord& rec, const SegCtxPtr& ctx) {
  graph_->mark(pipeline::StageId::ProtoRx, *ctx);
  FlowState& fs = rec.fs;
  ProtoState& p = fs.proto;
  const HeaderSummary& s = ctx->sum;
  ProtoSnapshot& snap = ctx->snap;
  const ConnId conn = ctx->conn_idx;

  p.remote_win = s.window;

  // ---- ACK processing (Win) ----
  if (s.flags & flag::kAck) {
    const SeqNum snd_una = p.seq - p.tx_sent;
    if (seq_gt(s.ack, snd_una) && seq_le(s.ack, rec.snd_max)) {
      const std::uint32_t acked = seq_diff(s.ack, snd_una);
      const std::uint32_t from_sent =
          std::min<std::uint32_t>(acked, p.tx_sent);
      p.tx_sent -= from_sent;
      const std::uint32_t leap = acked - from_sent;
      if (leap > 0) {
        // Receiver merged its OOO interval past our rewound position:
        // those bytes are delivered; skip ahead.
        p.seq += leap;
        p.tx_pos += leap;
        p.tx_avail -= std::min(p.tx_avail, leap);
      }
      p.dupack_cnt = 0;
      snap.tx_freed = acked;
      snap.window_opened = true;
      // CC statistics (collected by post-processing, paper §3.1.3).
      snap.ecn_bytes = (s.flags & flag::kEce) ? acked : 0;
      if (s.ts_ecr != 0) {
        const std::uint32_t now_us32 = now_us_of(ev_);
        const std::uint32_t sample = now_us32 - s.ts_ecr;
        if (sample < 10'000'000) {
          snap.rtt_sample_us = sample == 0 ? 1 : sample;
        }
      }
    } else if (s.ack == snd_una && p.tx_sent > 0 && s.payload_len == 0 &&
               !(s.flags & flag::kFin)) {
      // Duplicate ACK tracking; fast retransmit via go-back-N reset.
      if (++p.dupack_cnt == 3 && seq_ge(snd_una, rec.high_rtx)) {
        p.dupack_cnt = 0;
        rec.high_rtx = rec.snd_max;
        snap.fast_retransmit = true;
        ++fast_retransmits_;
        trace_.hit(tp_fretx_);
        // Reset transmission state to the last ACKed position.
        p.seq = snd_una;
        p.tx_pos -= p.tx_sent;
        p.tx_avail += p.tx_sent;
        p.tx_sent = 0;
      }
    }
  }

  // ---- Payload reassembly (Win/Pos) ----
  bool ack_needed = false;
  if (s.payload_len > 0) {
    const auto r = p.ooo.on_segment(p.ack, s.seq, s.payload_len, p.rx_avail);
    if (r.buf_offset > 0) {
      ++ooo_segments_;
      trace_.hit(tp_ooo_);
    }
    if (r.accept && r.accept_len > 0) {
      snap.accept_payload = true;
      snap.payload_trim =
          seq_lt(s.seq, p.ack) ? seq_diff(p.ack, s.seq) : 0;
      snap.rx_write_pos = p.rx_pos + r.buf_offset;
      snap.rx_write_len = r.accept_len;
    }
    if (r.advance > 0) {
      p.ack += r.advance;
      p.rx_pos += r.advance;
      p.rx_avail -= std::min(p.rx_avail, r.advance);
      snap.rx_advance = r.advance;
      ctx->notify_host = true;
    }
    ack_needed = true;  // FlexTOE acknowledges every data segment (§5.2)
  }

  // ---- FIN ----
  if (s.flags & flag::kFin) {
    const SeqNum fin_seq = s.seq + s.payload_len;
    if (fin_seq == p.ack && !p.peer_fin) {
      p.ack += 1;
      p.peer_fin = true;
      snap.fin_consumed = true;
    }
    ack_needed = true;
  }

  if (ack_needed) {
    snap.send_ack = true;
    snap.ack_seq = p.ack;
    snap.self_seq = p.seq;
    snap.rx_window = p.rx_avail;
    snap.echo_ecn = s.ecn_ce;  // precise per-segment DCTCP ECN echo
    snap.ts_echo = s.ts_val;
    p.next_ts = s.ts_val;
    snap.egress_seq = graph_->next_egress(ctx->flow_group);
  }

  // ACKs can open the send window or re-expose bytes (go-back-N reset):
  // re-sync the flow scheduler with the authoritative protocol view.
  if (s.flags & flag::kAck) {
    const std::uint32_t room =
        p.remote_win > p.tx_sent ? p.remote_win - p.tx_sent : 0;
    if (p.tx_avail > 0 && room > 0) sched_resync(conn, rec);
  }

  // Forward snapshot to post-processing.
  graph_->to_post(ctx);
}

void Datapath::proto_tx(ConnRecord& rec, const SegCtxPtr& ctx) {
  graph_->mark(pipeline::StageId::ProtoTx, *ctx);
  ProtoState& p = rec.fs.proto;
  ProtoSnapshot& snap = ctx->snap;
  const ConnId conn = ctx->conn_idx;
  const std::uint32_t planned = ctx->hc_len;
  rec.pending_planned -= std::min(rec.pending_planned, planned);

  // Authoritative admission: window and available data.
  const std::uint32_t room =
      p.remote_win > p.tx_sent ? p.remote_win - p.tx_sent : 0;
  std::uint32_t len = std::min({planned, p.tx_avail, room});

  if (len == 0 && !(p.fin_pending && !p.fin_sent && p.tx_avail == 0)) {
    // Abort: window closed or no data. The flow parks in the scheduler;
    // an ACK (window open) or doorbell (new data) re-syncs and unparks.
    sched_resync(conn, rec);
    return;
  }

  snap.tx_valid = len > 0;
  snap.tx_seq = p.seq;
  snap.tx_read_pos = p.tx_pos;
  snap.tx_len = len;
  snap.ack_seq = p.ack;
  snap.rx_window = p.rx_avail;
  snap.ts_echo = p.next_ts;
  p.seq += len;
  p.tx_pos += len;
  p.tx_avail -= len;
  p.tx_sent += len;

  // Piggyback / emit FIN once the transmit buffer is fully drained.
  if (p.fin_pending && !p.fin_sent && p.tx_avail == 0) {
    snap.tx_fin = true;
    p.fin_seq = p.seq;
    p.seq += 1;
    p.tx_sent += 1;
    p.fin_sent = true;
  }
  if (!snap.tx_valid && !snap.tx_fin) return;

  rec.snd_max = seq_ge(p.seq, rec.snd_max) ? p.seq : rec.snd_max;
  if (planned != len) sched_resync(conn, rec);
  snap.egress_seq = graph_->next_egress(ctx->flow_group);
  trace_.hit(tp_tx_);

  graph_->to_post(ctx);
}

void Datapath::proto_hc(ConnRecord& rec, const SegCtxPtr& ctx) {
  graph_->mark(pipeline::StageId::ProtoHc, *ctx);
  ProtoState& p = rec.fs.proto;
  ProtoSnapshot& snap = ctx->snap;
  const ConnId conn = ctx->conn_idx;

  switch (ctx->hc_op) {
    case HcOp::TxDoorbell:
      p.tx_avail += ctx->hc_len;
      sched_resync(conn, rec);
      break;
    case HcOp::RxFreed: {
      const bool was_closed = p.rx_avail < cfg_.mss;
      p.rx_avail += ctx->hc_len;
      if (was_closed && p.rx_avail >= cfg_.mss) {
        // Window-update ACK so the peer resumes.
        snap.send_ack = true;
        snap.ack_seq = p.ack;
        snap.self_seq = p.seq;
        snap.rx_window = p.rx_avail;
        snap.ts_echo = p.next_ts;
        snap.egress_seq = graph_->next_egress(ctx->flow_group);
      }
      break;
    }
    case HcOp::Fin:
      p.fin_pending = true;
      break;
    case HcOp::Retransmit: {
      // Control-plane timeout: go-back-N reset (paper §3.1.1).
      const SeqNum snd_una = p.seq - p.tx_sent;
      if (p.tx_sent > 0 || (p.fin_sent && seq_lt(snd_una, rec.snd_max))) {
        p.seq = snd_una;
        p.tx_pos -= p.tx_sent;
        p.tx_avail += p.tx_sent;
        p.tx_sent = 0;
        if (p.fin_sent) {
          p.fin_sent = false;  // FIN will be re-emitted after data
        }
        p.dupack_cnt = 0;
        rec.high_rtx = rec.snd_max;
        sched_resync(conn, rec);
      }
      break;
    }
  }

  // FIN with an already-empty transmit buffer: emit it now.
  const bool want_fin_now =
      p.fin_pending && !p.fin_sent && p.tx_avail == 0;

  graph_->to_post(ctx);

  if (want_fin_now) spawn_fin_segment(conn);
}

void Datapath::spawn_fin_segment(ConnId conn) {
  auto ctx = ctx_pool_.acquire();
  ctx->kind = SegCtx::Kind::Tx;
  ctx->conn_idx = conn;
  ctx->conn_known = true;
  ctx->flow_group = table_.get(conn)->fs.pre.flow_group;
  ctx->hc_len = 0;  // pure FIN
  graph_->stamp_birth(*ctx);
  graph_->spawn_tx(ctx);
}

// ------------------------------------------------------------ post stage

void Datapath::stage_post(const SegCtxPtr& ctx) {
  ConnRecord* rec = table_.get(ctx->conn_idx);
  if (rec == nullptr) {
    // Flow removed mid-flight: release any NBI egress slot the protocol
    // stage assigned so the egress reorder point cannot stall.
    graph_->skip_nbi(ctx);
    return;
  }
  graph_->mark(pipeline::StageId::Post, *ctx);
  FlowState& fs = rec->fs;
  ProtoSnapshot& snap = ctx->snap;

  // ---- Stats: CC counters (commutative, out-of-order safe) ----
  CcAccum& acc = rec->cc;
  acc.acked += snap.tx_freed;
  acc.ecn += snap.ecn_bytes;
  if (snap.fast_retransmit) {
    ++acc.fretx;
    fs.post.cnt_fretx++;
  }
  fs.post.cnt_ackb += snap.tx_freed;
  fs.post.cnt_ecnb += snap.ecn_bytes;
  if (snap.rtt_sample_us > 0) {
    // EWMA in integer arithmetic (FPCs lack floating point).
    fs.post.rtt_est = fs.post.rtt_est == 0
                          ? snap.rtt_sample_us
                          : (7 * fs.post.rtt_est + snap.rtt_sample_us) / 8;
  }

  // ---- Ack preparation (+ ECN feedback, timestamps) ----
  if (snap.send_ack) emit_ack_packet(ctx);

  // ---- TX packet materialization ----
  if (snap.tx_valid || snap.tx_fin) {
    ctx->pkt = build_tx_packet(fs, snap);
  }

  // ---- Route onward ----
  const bool needs_payload_dma =
      (snap.accept_payload && snap.rx_write_len > 0) || snap.tx_valid;
  if (needs_payload_dma || ctx->ack_pkt || (snap.tx_fin && ctx->pkt)) {
    graph_->to_dma(ctx);
  } else if (ctx->notify_host || snap.tx_freed > 0 || snap.fin_consumed) {
    graph_->to_ctx_notify(ctx);
  }
}

void Datapath::emit_ack_packet(const SegCtxPtr& ctx) {
  FlowState& fs = table_.get(ctx->conn_idx)->fs;
  const ProtoSnapshot& snap = ctx->snap;
  auto ack = pkt_pool_.acquire();
  ack->eth.src = local_mac_;
  ack->eth.dst = fs.pre.peer_mac;
  ack->ip.src = fs.tuple.local_ip;
  ack->ip.dst = fs.tuple.remote_ip;
  ack->tcp.sport = fs.pre.local_port;
  ack->tcp.dport = fs.pre.remote_port;
  ack->tcp.seq = snap.self_seq;
  ack->tcp.ack = snap.ack_seq;
  ack->tcp.flags = static_cast<std::uint8_t>(
      flag::kAck | (snap.echo_ecn ? flag::kEce : 0));
  ack->tcp.window = static_cast<std::uint16_t>(std::min<std::uint32_t>(
      snap.rx_window >> tcp::kWindowShift, 0xFFFF));
  ack->tcp.ts = net::TcpTsOpt{now_us_of(ev_), snap.ts_echo};
  ctx->ack_pkt = std::move(ack);
}

net::PacketPtr Datapath::build_tx_packet(const FlowState& fs,
                                         const ProtoSnapshot& snap) {
  auto pkt = pkt_pool_.acquire();
  pkt->eth.src = local_mac_;
  pkt->eth.dst = fs.pre.peer_mac;
  pkt->ip.src = fs.tuple.local_ip;
  pkt->ip.dst = fs.tuple.remote_ip;
  pkt->ip.ecn = net::Ecn::Ect0;  // DCTCP ECT marking
  pkt->tcp.sport = fs.pre.local_port;
  pkt->tcp.dport = fs.pre.remote_port;
  pkt->tcp.seq = snap.tx_seq;
  pkt->tcp.ack = snap.ack_seq;
  pkt->tcp.flags = static_cast<std::uint8_t>(
      flag::kAck | (snap.tx_len > 0 ? flag::kPsh : 0) |
      (snap.tx_fin ? flag::kFin : 0));
  pkt->tcp.window = static_cast<std::uint16_t>(std::min<std::uint32_t>(
      snap.rx_window >> tcp::kWindowShift, 0xFFFF));
  pkt->tcp.ts = net::TcpTsOpt{now_us_of(ev_), snap.ts_echo};
  return pkt;
}

// ------------------------------------------------------------- DMA stage

void Datapath::stage_dma(const SegCtxPtr& ctx) {
  const ProtoSnapshot& snap = ctx->snap;

  if (ctx->kind == SegCtx::Kind::Rx) {
    // RX: payload DMA to the host socket buffer, then (a) ACK to NBI and
    // (b) notification to the context-queue stage. Ordering matters: the
    // host and the peer must not learn of data before it has landed
    // (paper §3.1.3, DMA stage).
    const std::uint32_t len = snap.accept_payload ? snap.rx_write_len : 0;
    ConnRecord* rec = table_.get(ctx->conn_idx);
    auto finish = [this, ctx] {
      graph_->record_pipe_total(*ctx);  // payload has landed in the host
      if (ctx->ack_pkt) {
        ++acks_sent_;
        trace_.hit(tp_ack_);
        auto ack_ctx = ctx_pool_.acquire();
        ack_ctx->kind = SegCtx::Kind::Rx;
        ack_ctx->pkt = ctx->ack_pkt;
        ack_ctx->trace_id = ctx->trace_id;
        ack_ctx->flow_group = ctx->flow_group;
        ack_ctx->snap.egress_seq = ctx->snap.egress_seq;
        ack_ctx->rtc_token = ctx->rtc_token;
        graph_->to_nbi(ctx->flow_group, ctx->snap.egress_seq,
                       std::move(ack_ctx));
      }
      if (ctx->notify_host || ctx->snap.tx_freed > 0 ||
          ctx->snap.fin_consumed) {
        graph_->to_ctx_notify(ctx);
      }
    };
    if (len > 0) {
      host::PayloadBuf* buf = rec != nullptr ? rec->rx_buf : nullptr;
      const std::uint64_t pos = snap.rx_write_pos;
      const std::uint32_t trim = snap.payload_trim;
      auto pkt = ctx->pkt;
      const std::uint32_t copy_cost =
          cfg_.shared_memory_ctx
              ? cfg_.copy_cycles_per_kb * (len / 1024 + 1)
              : 0;
      if (copy_cost > 0) {
        // Software copy on the DMA-module core (x86/BlueField ports).
        graph_->charge_dma_copy(copy_cost);
      }
      dma_.issue(len + 64, [buf, pos, trim, len, pkt, finish] {
        if (buf != nullptr) {
          buf->write(pos, std::span<const std::uint8_t>(
                              pkt->payload.data() + trim, len));
        }
        finish();
      });
    } else {
      finish();
    }
    return;
  }

  // TX: fetch payload from the host socket buffer into the segment, then
  // hand to the NBI (in egress order).
  if (ctx->kind == SegCtx::Kind::Tx && ctx->pkt) {
    const std::uint32_t len = snap.tx_len;
    ConnRecord* rec = table_.get(ctx->conn_idx);
    host::PayloadBuf* buf = rec != nullptr ? rec->tx_buf : nullptr;
    auto pkt = ctx->pkt;
    const std::uint64_t pos = snap.tx_read_pos;
    const std::uint32_t copy_cost =
        cfg_.shared_memory_ctx ? cfg_.copy_cycles_per_kb * (len / 1024 + 1)
                               : 0;
    if (copy_cost > 0) {
      graph_->charge_dma_copy(copy_cost);
    }
    dma_.issue(len + 64, [this, ctx, buf, pkt, pos, len] {
      if (len > 0 && buf != nullptr) {
        pkt->payload.resize(len);
        buf->read(pos, pkt->payload);
      }
      ++tx_segments_;
      graph_->record_pipe_total(*ctx);  // fully materialized for the NBI
      graph_->to_nbi(ctx->flow_group, ctx->snap.egress_seq, ctx);
    });
    return;
  }

  // HC with a window-update ACK.
  if (ctx->ack_pkt) {
    ++acks_sent_;
    auto ack_ctx = ctx_pool_.acquire();
    ack_ctx->kind = SegCtx::Kind::Hc;
    ack_ctx->pkt = ctx->ack_pkt;
    ack_ctx->trace_id = ctx->trace_id;
    ack_ctx->flow_group = ctx->flow_group;
    ack_ctx->snap.egress_seq = ctx->snap.egress_seq;
    ack_ctx->rtc_token = ctx->rtc_token;
    graph_->to_nbi(ctx->flow_group, ctx->snap.egress_seq,
                   std::move(ack_ctx));
  }
}

// ----------------------------------------------------- context-queue stage

void Datapath::stage_ctx_notify(const SegCtxPtr& ctx) {
  graph_->record_pipe_total(*ctx);
  const ProtoSnapshot& snap = ctx->snap;
  const ConnId conn = ctx->conn_idx;

  // Notification descriptors DMA'd to the host context queue.
  auto send = [this, conn](host::CtxDescType type, std::uint32_t a) {
    host::CtxDesc d;
    d.type = type;
    d.conn = conn;
    d.a = a;
    host_notify(d);
  };
  if (snap.rx_advance > 0) send(host::CtxDescType::RxNotify, snap.rx_advance);
  if (snap.tx_freed > 0) send(host::CtxDescType::TxFreed, snap.tx_freed);
  if (snap.fin_consumed) {
    send(host::CtxDescType::RxEof, 0);
    if (host_.peer_fin) host_.peer_fin(conn);
  }
}

void Datapath::host_notify(const host::CtxDesc& desc) {
  if (telem_.enabled()) t_host_notify_->inc();
  // 32-byte descriptor DMA + interrupt/eventfd (or polling) delay.
  dma_.issue(32, [this, alive = alive_, desc] {
    if (!*alive) return;
    ev_.schedule_in(cfg_.notify_latency, [this, alive, desc] {
      if (!*alive) return;
      if (host_.notify) host_.notify(desc);
    });
  });
}

// ------------------------------------------------------------------ NBI

void Datapath::nbi_transmit(const net::PacketPtr& pkt) {
  if (mac_sink_ != nullptr) mac_sink_->deliver(pkt);
}

void Datapath::control_tx(const net::PacketPtr& pkt) {
  // Control-plane segments bypass the data pipeline (separate queue into
  // the NBI).
  nbi_transmit(pkt);
}

}  // namespace flextoe::core
