// Google-benchmark microbenchmarks for the hot substrate components:
// packet serialization/parsing, checksums, flow hashing, reorder buffers,
// OOO trackers, byte rings, and the Carousel time wheel. These guard
// simulator performance (host-side) rather than reproducing paper rows.
#include <benchmark/benchmark.h>

#include "core/reorder.hpp"
#include "net/checksum.hpp"
#include "net/packet.hpp"
#include "sched/carousel.hpp"
#include "sim/event_queue.hpp"
#include "tcp/byte_ring.hpp"
#include "tcp/flow.hpp"
#include "tcp/ooo.hpp"

namespace {

using namespace flextoe;

void BM_PacketSerialize(benchmark::State& state) {
  net::Packet p;
  p.eth.src = net::MacAddr::from_u64(1);
  p.eth.dst = net::MacAddr::from_u64(2);
  p.ip.src = net::make_ip(10, 0, 0, 1);
  p.ip.dst = net::make_ip(10, 0, 0, 2);
  p.tcp.flags = net::tcpflag::kAck | net::tcpflag::kPsh;
  p.tcp.ts = net::TcpTsOpt{1, 2};
  p.payload.assign(static_cast<std::size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.serialize());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          p.frame_size());
}
BENCHMARK(BM_PacketSerialize)->Arg(64)->Arg(1448);

void BM_PacketParse(benchmark::State& state) {
  net::Packet p;
  p.tcp.ts = net::TcpTsOpt{1, 2};
  p.payload.assign(static_cast<std::size_t>(state.range(0)), 0xAB);
  const auto bytes = p.serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::Packet::parse(bytes));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_PacketParse)->Arg(64)->Arg(1448);

void BM_Crc32FlowHash(benchmark::State& state) {
  tcp::FlowTuple t{net::make_ip(10, 0, 0, 1), net::make_ip(10, 0, 0, 2),
                   12345, 80};
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.hash());
    t.local_port++;
  }
}
BENCHMARK(BM_Crc32FlowHash);

void BM_InternetChecksum(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)),
                                 0x55);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::internet_checksum(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_InternetChecksum)->Arg(64)->Arg(1448);

void BM_SingleIntervalTracker(benchmark::State& state) {
  tcp::SingleIntervalTracker t;
  tcp::SeqNum rcv = 0;
  for (auto _ : state) {
    auto r = t.on_segment(rcv, rcv, 1448, 1 << 20);
    rcv += r.advance;
  }
}
BENCHMARK(BM_SingleIntervalTracker);

void BM_ByteRingWriteRead(benchmark::State& state) {
  tcp::ByteRing ring(1 << 20);
  std::vector<std::uint8_t> chunk(4096, 0xCD);
  std::vector<std::uint8_t> out(4096);
  for (auto _ : state) {
    ring.write(chunk);
    ring.read(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          4096);
}
BENCHMARK(BM_ByteRingWriteRead);

void BM_ReorderBufferInOrder(benchmark::State& state) {
  std::uint64_t released = 0;
  core::ReorderBuffer<int> rob([&released](int) { ++released; });
  std::uint64_t seq = 0;
  for (auto _ : state) {
    rob.push(seq++, 1);
  }
  benchmark::DoNotOptimize(released);
}
BENCHMARK(BM_ReorderBufferInOrder);

void BM_CarouselTrigger(benchmark::State& state) {
  sim::EventQueue ev;
  sched::Carousel car(ev);
  std::uint64_t sent = 0;
  car.set_trigger([&sent](std::uint32_t) -> std::uint32_t {
    ++sent;
    return 1448;
  });
  car.set_rate(1, 0);
  car.update_avail(1, 1ull << 40);
  for (auto _ : state) {
    // Each step services pending scheduler events.
    if (!ev.step()) car.kick(1);
  }
  benchmark::DoNotOptimize(sent);
}
BENCHMARK(BM_CarouselTrigger);

void BM_EventQueueChurn(benchmark::State& state) {
  sim::EventQueue ev;
  int fired = 0;
  for (auto _ : state) {
    ev.schedule_in(sim::ns(10), [&fired] { ++fired; });
    ev.step();
  }
  benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_EventQueueChurn);

}  // namespace

BENCHMARK_MAIN();
