// Arrival-model implementations (see arrival.hpp): closed-loop issue,
// open-loop Poisson via exponential gaps from the deterministic Rng,
// fixed-rate pacing, and the two-state ON-OFF burst source. All state
// lives per instance so factories can hand independent streams to each
// scenario repetition.
#include "workload/arrival.hpp"

#include <algorithm>

namespace flextoe::workload {

namespace {

class ClosedLoop final : public ArrivalModel {
 public:
  bool closed_loop() const override { return true; }
  sim::TimePs next_gap(sim::Rng&) override { return 0; }
};

class Poisson final : public ArrivalModel {
 public:
  explicit Poisson(double rate) : rate_(rate) {}
  sim::TimePs next_gap(sim::Rng& rng) override {
    const double mean_ps = double(sim::kPsPerSec) / rate_;
    return static_cast<sim::TimePs>(std::max(1.0, rng.next_exp(mean_ps)));
  }
  double rate_per_sec() const override { return rate_; }

 private:
  double rate_;
};

class Paced final : public ArrivalModel {
 public:
  explicit Paced(double rate) : rate_(rate) {}
  sim::TimePs next_gap(sim::Rng&) override {
    return static_cast<sim::TimePs>(
        std::max(1.0, double(sim::kPsPerSec) / rate_));
  }
  double rate_per_sec() const override { return rate_; }

 private:
  double rate_;
};

class OnOff final : public ArrivalModel {
 public:
  OnOff(double on_rate, sim::TimePs mean_on, sim::TimePs mean_off)
      : on_rate_(on_rate), mean_on_(mean_on), mean_off_(mean_off) {}

  sim::TimePs next_gap(sim::Rng& rng) override {
    const double gap_mean_ps = double(sim::kPsPerSec) / on_rate_;
    auto gap = static_cast<sim::TimePs>(
        std::max(1.0, rng.next_exp(gap_mean_ps)));
    if (on_remaining_ <= gap) {
      // The ON period ends before this arrival: insert an OFF silence
      // and start a fresh ON burst.
      gap += static_cast<sim::TimePs>(
          std::max(1.0, rng.next_exp(double(mean_off_))));
      on_remaining_ = static_cast<sim::TimePs>(
          std::max(1.0, rng.next_exp(double(mean_on_))));
    } else {
      on_remaining_ -= gap;
    }
    return gap;
  }

  double rate_per_sec() const override {
    // Long-run average rate: ON fraction times the burst rate.
    const double on = double(mean_on_), off = double(mean_off_);
    return on_rate_ * (on / (on + off));
  }

 private:
  double on_rate_;
  sim::TimePs mean_on_, mean_off_;
  sim::TimePs on_remaining_ = 0;  // first call draws an OFF + ON period
};

}  // namespace

std::unique_ptr<ArrivalModel> closed_loop_arrival() {
  return std::make_unique<ClosedLoop>();
}

std::unique_ptr<ArrivalModel> poisson_arrival(double rate_per_sec) {
  return std::make_unique<Poisson>(rate_per_sec);
}

std::unique_ptr<ArrivalModel> paced_arrival(double rate_per_sec) {
  return std::make_unique<Paced>(rate_per_sec);
}

std::unique_ptr<ArrivalModel> on_off_arrival(double on_rate_per_sec,
                                             sim::TimePs mean_on,
                                             sim::TimePs mean_off) {
  return std::make_unique<OnOff>(on_rate_per_sec, mean_on, mean_off);
}

}  // namespace flextoe::workload
