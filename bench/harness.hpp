// Benchmark harness shared by every bench binary. A bench file defines
// one or more scenarios with BENCH_SCENARIO(); the harness supplies the
// main() driver (harness_main.cpp), command-line handling, warmup/repeat
// loops, and output:
//
//   fig10_rpc_throughput [--list] [--filter <substr>] [--quick]
//                        [--repeats N] [--json <path>] [--no-telemetry]
//
// Results accumulate in a Report as named series of labeled rows; the
// report prints fixed-width tables and, with --json, emits
// BENCH_<name>.json (series name -> rows of labeled doubles, plus a
// `telemetry` section aggregating the data-path introspection counters
// of every testbed the bench ran — see EXPERIMENTS.md for the schema)
// so the perf trajectory of later PRs can be recorded and diffed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/registry.hpp"

namespace flextoe::benchx {

// ---------------------------------------------------------------------
// Command line.

struct Options {
  bool quick = false;   // shrink sweeps/spans for smoke runs
  int repeats = 1;      // measurement repetitions per data point
  bool list_only = false;
  std::string filter;     // substring match on scenario id
  std::string json_path;  // empty = no JSON emission
  // --trace: enable the segment-lifecycle flight recorders for the run
  // and export the merged Chrome/Perfetto trace JSON here afterwards.
  std::string trace_path;  // empty = tracing stays off
  // Base seed offset mixed into every scenario's simulation seeds
  // (--seed); 0 reproduces the default run, other values measure
  // seed-to-seed variance.
  std::uint64_t seed = 0;
  // --no-telemetry: disable data-path introspection recording at run
  // time (the registry stays registered; counters just stop moving).
  bool telemetry = true;
  // --threads: worker-thread budget for parallel simulation (the
  // DomainScheduler and workload::run_scenario_batch). 1 = fully
  // sequential, the deterministic baseline; results are identical at
  // any setting (see sim/domain.hpp).
  int threads = 1;
  // --batch: burst size for batched stage dispatch (core/batch.hpp).
  // 0 = the built-in default (32). A host-side dispatch knob: simulated
  // results are identical at any setting.
  int batch = 0;
  // --tap: attach a named monitor tap to every scenario SUT's stage
  // graph ("sketch" = the count-min flow monitor on the Steer edge).
  // Empty = no tap (the default; taps are runtime-off like tracing).
  std::string tap;
};

// Parses argv. Returns false and sets *err on bad usage.
bool parse_args(int argc, const char* const* argv, Options* opts,
                std::string* err);

// Usage string for --help / errors.
std::string usage(const std::string& prog);

// ---------------------------------------------------------------------
// Repeat/percentile helpers (built on sim::Percentiles).

struct RepeatStats {
  double mean = 0, p50 = 0, p99 = 0, min = 0, max = 0;
  std::size_t n = 0;
};

// Runs `fn(rep)` `warmup` times discarding the result, then `repeats`
// times collecting them. `rep` counts 0..warmup+repeats-1 so scenarios
// can derandomize per-repetition seeds.
RepeatStats run_repeated(int repeats, const std::function<double(int rep)>& fn,
                         int warmup = 0);

// Exact percentile of a sample set (p in [0, 100]); 0 when empty.
double percentile(const std::vector<double>& xs, double p);

// ---------------------------------------------------------------------
// Results model: Report -> Series -> Row.

// One labeled row of named doubles, e.g. label "32" with
// {"gbps": 12.3}. Value order is preserved for printing.
struct Row {
  std::string label;
  std::vector<std::pair<std::string, double>> values;

  void set(const std::string& key, double v);
  // Returns nullptr when absent.
  const double* find(const std::string& key) const;
};

// One series of a figure (a plotted line, e.g. "Linux") or one block of
// a table. Rows live in a deque so references from row() stay valid as
// more rows are added.
class Series {
 public:
  explicit Series(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  const std::deque<Row>& rows() const { return rows_; }

  // Finds or creates the row with this label (insertion order kept).
  // The reference stays valid for the lifetime of the Series.
  Row& row(const std::string& label);
  // Shorthand: row(label).set(key, v).
  void set(const std::string& label, const std::string& key, double v);

 private:
  std::string name_;
  std::deque<Row> rows_;
};

class Report {
 public:
  Report(std::string bench, Options opts)
      : bench_(std::move(bench)), opts_(std::move(opts)) {}

  const std::string& bench() const { return bench_; }
  const Options& options() const { return opts_; }

  // Finds or creates a series by name. The reference stays valid for
  // the lifetime of the Report (series are deque-backed).
  Series& series(const std::string& name);
  const std::deque<Series>& all_series() const { return series_; }
  const Series* find_series(const std::string& name) const;

  // Free-form footnotes ("Paper shape: ..."). Exact duplicates are
  // dropped so scenarios sharing a note can each attach it and remain
  // individually runnable under --filter.
  void note(std::string text);
  const std::vector<std::string>& notes() const { return notes_; }

  // Telemetry attached to the report (additively merged; bench_main
  // merges the process-wide accumulator here after all scenarios ran).
  void merge_telemetry(const telemetry::Snapshot& s) { telem_.merge(s); }
  const telemetry::Snapshot& telemetry() const { return telem_; }

  // Fixed-width tables on stdout. Series that share row labels and have
  // single-valued rows are pivoted into one table (rows x series), the
  // layout of the paper's figures; everything else prints per series.
  void print_text() const;

  // JSON document: {"bench", "quick", "repeats", "seed", "threads",
  // "config": {...}, "series": [...], "telemetry": {...}, "notes":
  // [...]}. The "config" block is the reproducibility header (git SHA,
  // build type, compiled-in instrumentation); tools/check_golden.py
  // excises it before diffing, so it never breaks golden comparisons.
  std::string to_json() const;
  // Returns false if the file cannot be written.
  bool write_json(const std::string& path) const;

 private:
  std::string bench_;
  Options opts_;
  std::deque<Series> series_;
  std::vector<std::string> notes_;
  telemetry::Snapshot telem_;
};

// ---------------------------------------------------------------------
// Scenario registry.

class ScenarioCtx {
 public:
  ScenarioCtx(const Options& opts, Report& report)
      : opts_(opts), report_(report) {}

  const Options& opts() const { return opts_; }
  bool quick() const { return opts_.quick; }
  Report& report() { return report_; }

  // Full-size or quick-mode variant of a sweep parameter.
  template <typename T>
  T pick(T full, T quick_v) const {
    return opts_.quick ? quick_v : full;
  }

  // Simulation seed for a data point: the scenario's base constant
  // shifted by --seed, so perf runs are reproducible by default and
  // variance is measurable across harness seeds.
  std::uint64_t seed(std::uint64_t base) const { return base + opts_.seed; }

  // Worker-thread budget (--threads) for scenarios that run parallel
  // simulations or batches.
  int threads() const { return opts_.threads; }

  // Effective dispatch burst size (--batch, resolved through
  // core/batch.hpp's process default).
  unsigned batch() const;

  // Mean over `--repeats` runs of a scalar measurement; `rep` feeds
  // per-repetition seeds.
  double measure(const std::function<double(int rep)>& run) const {
    return run_repeated(opts_.repeats, run).mean;
  }

 private:
  const Options& opts_;
  Report& report_;
};

using ScenarioFn = std::function<void(ScenarioCtx&)>;

struct Scenario {
  std::string id;     // selection key for --filter
  std::string title;  // human description
  ScenarioFn fn;
};

class Registry {
 public:
  static Registry& instance();
  void add(Scenario s) { scenarios_.push_back(std::move(s)); }
  const std::vector<Scenario>& scenarios() const { return scenarios_; }

 private:
  std::vector<Scenario> scenarios_;
};

struct ScenarioRegistrar {
  ScenarioRegistrar(const char* id, const char* title, ScenarioFn fn) {
    Registry::instance().add({id, title, std::move(fn)});
  }
};

#define BENCH_SCENARIO(ident, title)                                       \
  static void bench_scenario_##ident(::flextoe::benchx::ScenarioCtx& ctx); \
  static const ::flextoe::benchx::ScenarioRegistrar bench_reg_##ident(     \
      #ident, title, &bench_scenario_##ident);                             \
  static void bench_scenario_##ident(::flextoe::benchx::ScenarioCtx& ctx)

// Runs every registered scenario whose id contains `opts.filter` into
// `report`. Returns the number of scenarios run.
int run_scenarios(const Options& opts, Report& report);

// Full driver used by harness_main.cpp: parse args, run, print,
// optionally write BENCH_<name>.json (name = basename of argv[0]).
int bench_main(int argc, const char* const* argv);

}  // namespace flextoe::benchx
