// Congestion control algorithms run by the FlexTOE control plane
// (paper Appendix D): the control loop periodically reads per-flow
// statistics from the data-path (ACKed bytes, ECN-marked bytes, fast
// retransmits, RTT estimate) and programs a new transmission rate into
// the flow scheduler. DCTCP and TIMELY are implemented, as in the paper.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>

#include "sim/time.hpp"
#include "tcp/seq.hpp"

namespace flextoe::tcp {

// Per-control-interval statistics snapshot for one flow.
struct CcInput {
  std::uint64_t acked_bytes = 0;  // newly acknowledged bytes
  std::uint64_t ecn_bytes = 0;    // of which were ECN-marked
  std::uint32_t fast_retx = 0;    // fast retransmits triggered
  std::uint32_t timeouts = 0;     // RTO retransmits triggered
  sim::TimePs rtt = 0;            // latest RTT estimate (0 = none)
};

class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  // Consumes one interval of statistics, returns the new rate (bytes/s).
  virtual std::uint64_t update(const CcInput& in) = 0;

  virtual std::uint64_t rate() const = 0;
  virtual std::string name() const = 0;
};

struct DctcpParams {
  std::uint32_t mss = kDefaultMss;
  std::uint64_t init_cwnd_bytes = 10 * kDefaultMss;
  std::uint64_t max_cwnd_bytes = 8 * 1024 * 1024;
  std::uint64_t min_rate_bps = 10'000;  // bytes/s floor
  std::uint64_t max_rate_bps = 5'000'000'000;  // 40 Gbps in bytes/s
  double gain = 1.0 / 16.0;  // DCTCP g
};

// DCTCP: window-based; the window is converted to a pacing rate
// (cwnd / RTT) for enforcement by the Carousel scheduler, as TAS does.
class Dctcp final : public CongestionControl {
 public:
  explicit Dctcp(DctcpParams p = {});

  std::uint64_t update(const CcInput& in) override;
  std::uint64_t rate() const override { return rate_; }
  std::string name() const override { return "dctcp"; }

  double alpha() const { return alpha_; }
  std::uint64_t cwnd() const { return cwnd_; }

 private:
  DctcpParams p_;
  double alpha_ = 0.0;
  std::uint64_t cwnd_;
  std::uint64_t ssthresh_;
  std::uint64_t rate_;
};

struct TimelyParams {
  sim::TimePs t_low = sim::us(50);
  sim::TimePs t_high = sim::us(500);
  sim::TimePs min_rtt = sim::us(10);
  double beta = 0.8;
  double add_step = 10.0 * 1024 * 1024;  // additive increase, bytes/s
  std::uint64_t min_rate_bps = 10'000;
  std::uint64_t max_rate_bps = 5'000'000'000;
  int hai_threshold = 5;  // gradient-negative rounds before HAI mode
};

// TIMELY: RTT-gradient rate control.
class Timely final : public CongestionControl {
 public:
  explicit Timely(TimelyParams p = {});

  std::uint64_t update(const CcInput& in) override;
  std::uint64_t rate() const override { return rate_; }
  std::string name() const override { return "timely"; }

 private:
  TimelyParams p_;
  std::uint64_t rate_;
  sim::TimePs prev_rtt_ = 0;
  double rtt_diff_ = 0;  // EWMA of RTT differences
  int neg_gradient_rounds_ = 0;
};

std::unique_ptr<CongestionControl> make_cc(const std::string& name);

}  // namespace flextoe::tcp
