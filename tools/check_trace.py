#!/usr/bin/env python3
"""Validator for the Chrome trace-event JSON the simulator's flight
recorders export (--trace / Testbed::dump_trace, src/trace/export.cpp).

Checks, in order:
  * the file is well-formed JSON with a `traceEvents` list;
  * every event carries the required keys for its phase, and the phase
    is one the exporter emits (B E b e i s f M);
  * timestamps are monotonically non-decreasing per (pid, tid) track
    (metadata "M" events are exempt) — per-domain rings are merged by
    a stable timestamp sort, so any inversion is an exporter bug;
  * async spans (ph b/e) pair by (cat, id) and flow events (s/f) pair
    by id. Orphan halves are WARNINGS by default: a flight recorder is
    a bounded ring, so the oldest begin of a long run is legitimately
    overwritten while its end survives (and runtime enable/disable
    mid-run truncates spans too). --strict promotes orphans to errors
    for tests that control the run length;
  * the optional `postMortems` array (drop forensics) has the expected
    shape.

Usage:
    check_trace.py TRACE.json [--strict] [--min-span-cats N]
                   [--expect-flows] [--run CMD ARGS...]
    check_trace.py --nm LIBRARY

--min-span-cats N  require span (b/B) events from >= N distinct
                   categories — the "spans from >= 5 subsystems" smoke
                   assertion.
--expect-flows     require at least one matched flow begin/end pair
                   (cross-domain Domain::post hand-off).
--run CMD ...      run CMD first (e.g. the bench that writes TRACE.json);
                   its failure fails the check.
--nm LIBRARY       instead of validating a trace: nm the library and
                   fail if any strong definition in flextoe::trace::
                   survives — the -DFLEXTOE_TRACE=OFF build must fold
                   the subsystem away (inline stubs may appear as weak
                   'W' symbols; those are fine).

Exit status: 0 = valid, 1 = validation errors, 2 = usage/IO errors.
"""

import argparse
import json
import pathlib
import subprocess
import sys

ALLOWED_PHASES = {"B", "E", "b", "e", "i", "s", "f", "M"}
# Keys every non-metadata event must carry.
BASE_KEYS = ("name", "ph", "pid", "tid", "ts")


def err(errors, msg, limit=25):
    if len(errors) < limit:
        errors.append(msg)
    elif len(errors) == limit:
        errors.append("... (further errors suppressed)")


def check_events(events, strict, min_span_cats, expect_flows):
    errors = []
    warnings = []
    last_ts = {}          # (pid, tid) -> float ts
    open_async = {}       # (cat, id) -> count of unmatched 'b'
    open_flows = {}       # id -> count of unmatched 's'
    matched_flows = 0
    span_cats = set()

    for n, ev in enumerate(events):
        if not isinstance(ev, dict):
            err(errors, f"event {n}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ALLOWED_PHASES:
            err(errors, f"event {n}: unknown phase {ph!r}")
            continue
        if ph == "M":
            continue  # metadata: names processes/threads, no timestamp
        missing = [k for k in BASE_KEYS if k not in ev]
        if missing:
            err(errors, f"event {n} (ph={ph}): missing keys {missing}")
            continue
        try:
            ts = float(ev["ts"])
        except (TypeError, ValueError):
            err(errors, f"event {n}: non-numeric ts {ev['ts']!r}")
            continue

        track = (ev["pid"], ev["tid"])
        if track in last_ts and ts < last_ts[track]:
            err(errors,
                f"event {n}: ts {ts} < {last_ts[track]} on track {track}"
                " (per-track timestamps must be monotonic)")
        last_ts[track] = ts

        if ph in ("b", "e", "s", "f") and "id" not in ev:
            err(errors, f"event {n} (ph={ph}): missing 'id'")
            continue
        if ph in ("b", "B"):
            span_cats.add(ev.get("cat", ""))
        if ph == "b":
            key = (ev.get("cat", ""), ev["id"])
            open_async[key] = open_async.get(key, 0) + 1
        elif ph == "e":
            key = (ev.get("cat", ""), ev["id"])
            if open_async.get(key, 0) > 0:
                open_async[key] -= 1
            else:
                warnings.append(
                    f"event {n}: async end without begin {key}"
                    " (begin likely overwritten in the ring)")
        elif ph == "s":
            open_flows[ev["id"]] = open_flows.get(ev["id"], 0) + 1
        elif ph == "f":
            if open_flows.get(ev["id"], 0) > 0:
                open_flows[ev["id"]] -= 1
                matched_flows += 1
            else:
                warnings.append(
                    f"event {n}: flow end without begin id={ev['id']}")

    for key, c in open_async.items():
        if c > 0:
            warnings.append(f"{c} unclosed async span(s) {key}")
    for fid, c in open_flows.items():
        if c > 0:
            warnings.append(f"{c} unfinished flow(s) id={fid}")

    if min_span_cats is not None and len(span_cats) < min_span_cats:
        err(errors,
            f"only {len(span_cats)} span categories {sorted(span_cats)};"
            f" need >= {min_span_cats}")
    if expect_flows and matched_flows == 0:
        err(errors, "no matched flow begin/end pair (expected cross-domain"
                    " post hand-offs)")
    if strict:
        errors.extend(warnings)
        warnings = []
    return errors, warnings, span_cats, matched_flows


def check_postmortems(pms):
    errors = []
    if not isinstance(pms, list):
        return [f"postMortems: expected list, got {type(pms).__name__}"]
    for n, pm in enumerate(pms):
        if not isinstance(pm, dict):
            err(errors, f"postMortems[{n}]: not an object")
            continue
        for k in ("reason", "victim", "t_ps", "domain", "events"):
            if k not in pm:
                err(errors, f"postMortems[{n}]: missing key {k!r}")
        evs = pm.get("events", [])
        if not isinstance(evs, list):
            err(errors, f"postMortems[{n}]: events is not a list")
            continue
        for m, e in enumerate(evs):
            if not isinstance(e, dict) or "ph" not in e or "ts" not in e:
                err(errors, f"postMortems[{n}].events[{m}]: malformed")
    return errors


def validate(path, strict, min_span_cats, expect_flows):
    try:
        doc = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as e:
        sys.stderr.write(f"check_trace: {path}: {e}\n")
        return 2
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        sys.stderr.write(f"check_trace: {path}: no traceEvents list\n")
        return 1
    errors, warnings, span_cats, flows = check_events(
        events, strict, min_span_cats, expect_flows)
    errors += check_postmortems(doc.get("postMortems", []))
    for w in warnings[:10]:
        sys.stderr.write(f"check_trace: warning: {w}\n")
    if len(warnings) > 10:
        sys.stderr.write(
            f"check_trace: ... {len(warnings) - 10} more warnings\n")
    if errors:
        for e in errors:
            sys.stderr.write(f"check_trace: ERROR: {e}\n")
        return 1
    print(f"check_trace: OK ({len(events)} events, "
          f"{len(span_cats)} span categories, {flows} flow pairs, "
          f"{len(doc.get('postMortems', []))} post-mortems)")
    return 0


def check_nm(library):
    try:
        out = subprocess.run(["nm", "-C", library], capture_output=True,
                             text=True, check=True).stdout
    except (OSError, subprocess.CalledProcessError) as e:
        sys.stderr.write(f"check_trace: nm {library} failed: {e}\n")
        return 2
    bad = []
    for line in out.splitlines():
        parts = line.split(None, 2)
        if len(parts) != 3:
            continue
        _, kind, name = parts
        # Strong definitions only: T/t (text), D/d (data), B/b (bss).
        # Weak (W/V) symbols are inline stubs the OFF build keeps.
        if kind in "TtDdBb" and "flextoe::trace::" in name:
            bad.append(line)
    if bad:
        sys.stderr.write(
            "check_trace: FLEXTOE_TRACE=OFF build still defines trace "
            "symbols:\n")
        for line in bad[:20]:
            sys.stderr.write(f"  {line}\n")
        return 1
    print(f"check_trace: OK (no strong flextoe::trace:: symbols in "
          f"{pathlib.Path(library).name})")
    return 0


def main():
    ap = argparse.ArgumentParser(add_help=True)
    ap.add_argument("trace", nargs="?", help="trace JSON to validate")
    ap.add_argument("--strict", action="store_true",
                    help="orphan span/flow halves are errors, not warnings")
    ap.add_argument("--min-span-cats", type=int, default=None)
    ap.add_argument("--expect-flows", action="store_true")
    ap.add_argument("--nm", metavar="LIBRARY",
                    help="assert no strong flextoe::trace:: symbols")
    ap.add_argument("--run", nargs=argparse.REMAINDER, default=None,
                    help="command to run before validating the trace")
    args = ap.parse_args()

    if args.nm:
        return check_nm(args.nm)
    if args.trace is None:
        ap.print_usage(sys.stderr)
        return 2
    if args.run:
        proc = subprocess.run(args.run)
        if proc.returncode != 0:
            sys.stderr.write(
                f"check_trace: command failed (exit {proc.returncode}): "
                f"{' '.join(args.run)}\n")
            return 2
    return validate(args.trace, args.strict, args.min_span_cats,
                    args.expect_flows)


if __name__ == "__main__":
    sys.exit(main())
