// Figure 15: robustness under packet loss — (a) 100 connections of 64 B
// echo with 8 pipelined requests each; (b) 8 unidirectional large flows.
// The switch drops packets uniformly at random. One series per stack;
// rows are "<small|large>/<loss-label>".
#include "common.hpp"

using namespace flextoe;
using namespace flextoe::benchx;

namespace {

struct Spans {
  sim::TimePs warm, span;
};

double run_small(Stack s, double loss, std::uint64_t seed, Spans t) {
  Testbed tb(seed);
  tb.the_switch().set_drop_prob(loss);
  auto& server = add_server(tb, s, 16);  // multi-threaded echo server
  app::EchoServer srv(tb.ev(), *server.stack, {.port = 7},
                      server.cpu.get());

  std::vector<std::unique_ptr<app::ClosedLoopClient>> clients;
  for (unsigned i = 0; i < 2; ++i) {
    auto& cn = tb.add_client_node();
    app::ClosedLoopClient::Params cp;
    cp.connections = 50;
    cp.pipeline = 8;
    cp.request_size = 64;
    clients.push_back(std::make_unique<app::ClosedLoopClient>(
        tb.ev(), *cn.stack, server.ip, cp));
    clients.back()->start();
  }

  tb.run_for(t.warm);
  std::uint64_t base = 0;
  for (auto& c : clients) base += c->completed();
  tb.run_for(t.span);
  std::uint64_t done = 0;
  for (auto& c : clients) done += c->completed();
  done -= base;
  // Goodput counts request+response payload bytes.
  return static_cast<double>(done) * (64.0 * 2) * 8.0 /
         sim::to_sec(t.span) / 1e9;
}

double run_large(Stack s, double loss, std::uint64_t seed, Spans t) {
  Testbed tb(seed);
  tb.the_switch().set_drop_prob(loss);
  auto& server = add_server(tb, s, 4);
  // 8 unidirectional bulk flows toward the server.
  app::EchoServer srv(tb.ev(), *server.stack,
                      {.port = 7, .response_size = 32},
                      server.cpu.get());
  auto& cn = tb.add_client_node();
  app::ClosedLoopClient::Params cp;
  cp.connections = 8;
  cp.pipeline = 2;
  cp.request_size = 512 * 1024;
  cp.response_size = 32;
  app::ClosedLoopClient cli(tb.ev(), *cn.stack, server.ip, cp);
  cli.start();

  tb.run_for(t.warm);
  const std::uint64_t base = srv.bytes_rx();
  tb.run_for(t.span);
  return static_cast<double>(srv.bytes_rx() - base) * 8.0 /
         sim::to_sec(t.span) / 1e9;
}

}  // namespace

BENCH_SCENARIO(fig15, "goodput (Gbps) vs uniform loss rate") {
  using LossCase = std::pair<const char*, double>;
  const auto losses = ctx.pick<std::vector<LossCase>>(
      {{"0", 0.0},
       {"1e-4%", 1e-6},
       {"1e-3%", 1e-5},
       {"1e-2%", 1e-4},
       {"1e-1%", 1e-3},
       {"2%", 0.02}},
      {{"0", 0.0}, {"2%", 0.02}});
  const Spans small_t{ctx.pick(sim::ms(20), sim::ms(5)),
                      ctx.pick(sim::ms(60), sim::ms(8))};
  const Spans large_t{ctx.pick(sim::ms(30), sim::ms(8)),
                      ctx.pick(sim::ms(100), sim::ms(15))};

  for (auto [name, p] : losses) {
    for (Stack s : all_stacks()) {
      auto& series = ctx.report().series(stack_name(s));
      series.set(std::string("small/") + name, "gbps",
                 ctx.measure([&, p](int rep) {
                   return run_small(s, p, ctx.seed(53 + static_cast<unsigned>(rep)),
                                    small_t);
                 }));
      series.set(std::string("large/") + name, "gbps",
                 ctx.measure([&, p](int rep) {
                   return run_large(s, p, ctx.seed(59 + static_cast<unsigned>(rep)),
                                    large_t);
                 }));
    }
  }
  ctx.report().note(
      "Paper shape: at 2% loss FlexTOE >=2x TAS and ~10x the rest on "
      "small RPCs; Chelsio collapses on large flows even at 1e-4% loss\n"
      "(no receiver OOO buffering); Linux most robust per-flow (SACK) but "
      "lower absolute goodput.");
}
