// Figure 12: large-RPC goodput vs message size; (a) unidirectional
// (32 B response), (b) bidirectional (echo). One series per stack; rows
// are "<uni|bidir>/<msg-size>". A single-connection RpcEcho scenario on
// the shared workload engine.
#include <cstdio>

#include "common.hpp"

using namespace flextoe;
using namespace flextoe::benchx;

namespace {

double run_case(Stack s, std::uint32_t msg, bool echo, std::uint64_t seed,
                sim::TimePs warm, sim::TimePs span) {
  workload::ScenarioSpec spec;
  spec.app = workload::AppKind::RpcEcho;
  spec.stack = s;
  spec.server_cores = 2;
  spec.grant_stack_cores = true;
  spec.client_nodes = 1;
  spec.conns_per_node = 1;
  spec.pipeline = 1;
  spec.response_size = echo ? 0 : 32;
  spec.request_sizes = [msg] { return workload::fixed_size(msg); };
  spec.seed = seed;
  workload::RunOptions ro;
  ro.warm_override = warm;  // warm up at least one full RPC
  ro.span_override = span;
  const auto res = workload::run_scenario(spec, ro);
  const double dir_bytes = echo ? 2.0 * msg : 1.0 * msg;
  return static_cast<double>(res.completed) * dir_bytes * 8.0 /
         sim::to_sec(span) / 1e9;
}

}  // namespace

BENCH_SCENARIO(fig12, "large-RPC goodput (Gbps), uni- and bidirectional") {
  const auto sizes = ctx.pick<std::vector<std::uint32_t>>(
      {128 * 1024, 512 * 1024, 2 * 1024 * 1024, 8 * 1024 * 1024,
       32 * 1024 * 1024},
      {128 * 1024, 2 * 1024 * 1024});
  const auto warm = ctx.pick(sim::ms(30), sim::ms(8));
  const auto span = ctx.pick(sim::ms(120), sim::ms(20));

  for (bool echo : {false, true}) {
    for (std::uint32_t msg : sizes) {
      char label[48];
      std::snprintf(label, sizeof label, "%s/%u", echo ? "bidir" : "uni",
                    msg);
      for (Stack s : all_stacks()) {
        const double gbps = ctx.measure([&](int rep) {
          return run_case(s, msg, echo,
                          ctx.seed(37 + static_cast<unsigned>(rep)), warm,
                          span);
        });
        ctx.report().series(stack_name(s)).set(label, "gbps", gbps);
      }
    }
  }
  ctx.report().note(
      "Paper shape: (a) all within ~20%, Chelsio slightly ahead "
      "(streaming ASIC); (b) FlexTOE ~27% above Chelsio — per-connection\n"
      "pipeline parallelism pays off for bidirectional flows.");
}
