// TimingWheel implementation (see timing_wheel.hpp): flat per-flow
// storage, intrusive per-slot doubly-linked lists, cascading levels.
// The pump/service machinery is a faithful transcription of
// Carousel's, so the two engines are fire-order equivalent within the
// Carousel's horizon (differential-tested).
#include "sched/timing_wheel.hpp"

#include <algorithm>
#include <cassert>

#include "trace/trace.hpp"

namespace flextoe::sched {

TimingWheel::TimingWheel(sim::Domain& ev, TimingWheelParams params)
    : ev_(ev), params_(params) {
  assert(params_.levels >= 1);
  assert(params_.slots_per_level >= 2);
  assert((params_.slots_per_level & (params_.slots_per_level - 1)) == 0 &&
         "slots_per_level must be a power of two");
  slots_.assign(static_cast<std::size_t>(params_.levels) *
                    params_.slots_per_level,
                SlotList{});
  stride_.resize(params_.levels + 1);
  stride_[0] = 1;
  for (std::uint32_t k = 1; k <= params_.levels; ++k) {
    stride_[k] = stride_[k - 1] * params_.slots_per_level;
  }
}

void TimingWheel::bind_telemetry(telemetry::Registry& reg,
                                 const std::string& prefix) {
  if (!telem_.bind(reg)) return;
  t_triggers_ = reg.counter(prefix + "/triggers");
  t_tx_bytes_ = reg.counter(prefix + "/tx_bytes");
  t_parked_ = reg.counter(prefix + "/parked");
  t_cascades_ = reg.counter(prefix + "/cascades");
  t_ready_depth_ = reg.histogram(prefix + "/ready_depth");
  t_wheel_flows_ = reg.histogram(prefix + "/wheel_flows");
  t_flows_ = reg.gauge(prefix + "/flows");
}

std::size_t TimingWheel::footprint_bytes() const {
  // Flat flow vector + slot-list heads + ready deque. No per-flow heap
  // nodes: the slot lists live inside the Flow entries themselves.
  std::size_t bytes = sizeof(TimingWheel);
  bytes += flows_.capacity() * sizeof(Flow);
  bytes += slots_.capacity() * sizeof(SlotList);
  bytes += stride_.capacity() * sizeof(std::uint64_t);
  bytes += ready_.size() * sizeof(FlowId);
  return bytes;
}

TimingWheel::Flow& TimingWheel::touch(FlowId flow) {
  if (flow >= flows_.size()) flows_.resize(flow + 1);
  Flow& fl = flows_[flow];
  if (!fl.touched) {
    fl.touched = true;
    ++tracked_;
  }
  return fl;
}

void TimingWheel::set_rate(FlowId flow, std::uint64_t bytes_per_sec) {
  Flow& st = touch(flow);
  st.dead = false;
  if (bytes_per_sec == 0 || bytes_per_sec >= params_.uncongested_rate) {
    st.ps_per_byte = 0;
  } else {
    st.ps_per_byte = sim::kPsPerSec / bytes_per_sec;
    if (st.ps_per_byte == 0) st.ps_per_byte = 1;
  }
}

void TimingWheel::update_avail(FlowId flow, std::uint64_t avail) {
  Flow& st = touch(flow);
  st.dead = false;
  st.avail = avail;
  st.parked = false;
  if (st.avail > 0 && !st.queued) enqueue_ready(flow);
}

void TimingWheel::add_avail(FlowId flow, std::uint64_t delta) {
  Flow& st = touch(flow);
  st.dead = false;
  st.avail += delta;
  st.parked = false;
  if (st.avail > 0 && !st.queued) enqueue_ready(flow);
}

void TimingWheel::kick(FlowId flow) {
  Flow& st = touch(flow);
  if (st.dead) return;
  st.parked = false;
  if (st.avail > 0 && !st.queued) enqueue_ready(flow);
}

void TimingWheel::remove_flow(FlowId flow) {
  if (flow >= flows_.size() || !flows_[flow].touched) return;
  Flow& st = flows_[flow];
  if (st.in_wheel) {
    // O(1) cancel — the Carousel's lazy-skip equivalent, minus the dead
    // residency. Close the queued span so every begin pairs.
    unlink(flow);
    st.queued = false;
    if (trace::Ring* r = ev_.trace_ring()) {
      if (trace_base_ != 0) {
        r->record(ev_.now(), trace::Phase::kAsyncEnd, trace_name_queued_,
                  trace_track_, trace_base_ | flow, wheel_count_);
      }
    }
  }
  // If the flow sits in the ready deque it is skipped lazily at
  // service_one, exactly as in Carousel.
  st.dead = true;
  st.avail = 0;
}

void TimingWheel::trace_queued(FlowId flow, std::uint64_t arg) {
  trace::Ring* r = ev_.trace_ring();
  if (r == nullptr) return;
  if (trace_base_ == 0) {
    trace_base_ = trace::Tracer::instance().next_actor_base();
    trace_track_ = trace::Tracer::instance().intern("sched/wheel");
    trace_name_queued_ = trace::Tracer::instance().intern("queued");
    trace_name_trigger_ = trace::Tracer::instance().intern("trigger");
    trace_name_tick_ = trace::Tracer::instance().intern("wheel_tick");
  }
  r->record(ev_.now(), trace::Phase::kAsyncBegin, trace_name_queued_,
            trace_track_, trace_base_ | flow, arg);
}

void TimingWheel::enqueue_ready(FlowId flow) {
  Flow& st = flows_[flow];
  st.queued = true;
  ready_.push_back(flow);
  trace_queued(flow, ready_.size());
  pump();
}

void TimingWheel::file(FlowId flow, std::uint64_t off) {
  // Level k covers offsets [S^k, S^(k+1)). Offsets beyond the total
  // horizon park at most horizon - 1 ahead in the top level and re-file
  // at each cascade by the flow's stored due tick until the remaining
  // delta fits: unlike Carousel's single-level clamp, far deadlines
  // fire at their true time, never early.
  std::uint32_t level = 0;
  while (level + 1 < params_.levels && off >= stride_[level + 1]) ++level;
  const std::uint64_t target =
      ticks_ + std::min<std::uint64_t>(off, stride_[params_.levels] - 1);
  const std::uint32_t slot = static_cast<std::uint32_t>(
      (target / stride_[level]) & (params_.slots_per_level - 1));
  const std::uint32_t idx = level * params_.slots_per_level + slot;

  Flow& st = flows_[flow];
  st.in_wheel = true;
  st.slot = idx;
  st.next = kNil;
  SlotList& list = slots_[idx];
  st.prev = list.tail;
  if (list.tail == kNil) {
    list.head = flow;
  } else {
    flows_[list.tail].next = flow;
  }
  list.tail = flow;
  ++wheel_count_;
}

void TimingWheel::unlink(FlowId flow) {
  Flow& st = flows_[flow];
  assert(st.in_wheel);
  SlotList& list = slots_[st.slot];
  if (st.prev == kNil) {
    list.head = st.next;
  } else {
    flows_[st.prev].next = st.next;
  }
  if (st.next == kNil) {
    list.tail = st.prev;
  } else {
    flows_[st.next].prev = st.prev;
  }
  st.prev = kNil;
  st.next = kNil;
  st.slot = kNil;
  st.in_wheel = false;
  --wheel_count_;
}

void TimingWheel::enqueue_wheel(FlowId flow, sim::TimePs deadline) {
  Flow& st = flows_[flow];
  st.queued = true;

  if (wheel_count_ == 0 && !wheel_tick_scheduled_) {
    // (Re)anchor the tick grid at the current time. Skipped while a
    // stale tick is still pending (possible after an O(1) cancel
    // drained the wheel): that tick will advance ticks_/wheel_time_,
    // and slot math is relative to ticks_, so staying on the old grid
    // is both simpler and correct.
    wheel_time_ = ev_.now();
    ticks_ = 0;
  }
  const sim::TimePs delta = deadline > ev_.now() ? deadline - ev_.now() : 0;
  const std::uint64_t off =
      static_cast<std::uint64_t>(delta / params_.slot_granularity);
  if (off == 0) {
    st.queued = false;  // enqueue_ready re-marks it
    enqueue_ready(flow);
    return;
  }
  // The due tick is quantized once, here — cascades re-file by the
  // stored tick, never re-quantize, so the fire tick is exact (and
  // matches Carousel's single-computation slot within its horizon).
  st.target = ticks_ + off;
  file(flow, off);
  if (telem_.on()) t_wheel_flows_->record(wheel_count_);
  trace_queued(flow, wheel_count_);

  if (!wheel_tick_scheduled_) {
    wheel_tick_scheduled_ = true;
    ev_.schedule_in(params_.slot_granularity, [this, alive = alive_] {
      if (*alive) wheel_tick();
    });
  }
}

void TimingWheel::expire_or_cascade(std::uint32_t level, std::uint32_t slot) {
  const std::uint32_t idx = level * params_.slots_per_level + slot;
  // Detach the whole list first: re-filing during a cascade must not
  // walk flows it just re-inserted into this same slot.
  std::uint32_t f = slots_[idx].head;
  slots_[idx] = SlotList{};
  while (f != kNil) {
    Flow& st = flows_[f];
    const std::uint32_t next = st.next;
    st.prev = kNil;
    st.next = kNil;
    st.slot = kNil;
    st.in_wheel = false;
    --wheel_count_;
    if (level == 0) {
      ready_.push_back(f);  // queued stays true; due this tick
    } else {
      ++cascade_count_;
      if (telem_.on()) t_cascades_->inc();
      const std::uint64_t off = st.target > ticks_ ? st.target - ticks_ : 0;
      if (off == 0) {
        ready_.push_back(f);  // due at this very tick
      } else {
        file(f, off);
      }
    }
    f = next;
  }
}

void TimingWheel::wheel_tick() {
  wheel_tick_scheduled_ = false;
  ++ticks_;
  wheel_time_ += params_.slot_granularity;
  // Expire the level-0 slot that just came due, then cascade every
  // higher level whose period divides this tick. Cascaded flows whose
  // remaining delta is below a granule join the ready queue now — same
  // fire tick as the level-0 natives ahead of them.
  expire_or_cascade(
      0, static_cast<std::uint32_t>(ticks_ & (params_.slots_per_level - 1)));
  for (std::uint32_t k = 1; k < params_.levels; ++k) {
    if (ticks_ % stride_[k] != 0) break;
    expire_or_cascade(k, static_cast<std::uint32_t>(
                             (ticks_ / stride_[k]) &
                             (params_.slots_per_level - 1)));
  }
  if (trace::Ring* r = ev_.trace_ring()) {
    if (trace_name_tick_ != 0) {
      r->record(ev_.now(), trace::Phase::kInstant, trace_name_tick_,
                trace_track_, 0, wheel_count_);
    }
  }
  pump();
  if (wheel_count_ > 0 && !wheel_tick_scheduled_) {
    wheel_tick_scheduled_ = true;
    ev_.schedule_in(params_.slot_granularity, [this, alive = alive_] {
      if (*alive) wheel_tick();
    });
  }
}

void TimingWheel::pump() {
  if (service_scheduled_ || ready_.empty()) return;
  service_scheduled_ = true;
  const sim::TimePs at = std::max(ev_.now(), next_service_);
  next_service_ = at + params_.service_interval;
  ev_.schedule_at(at, [this, alive = alive_] {
    if (!*alive) return;
    service_scheduled_ = false;
    service_one();
    pump();
  });
}

void TimingWheel::service_one() {
  if (telem_.on()) {
    t_ready_depth_->record(ready_.size());
    t_flows_->set(static_cast<std::int64_t>(tracked_));
  }
  while (!ready_.empty()) {
    const FlowId flow = ready_.front();
    ready_.pop_front();
    Flow& st = flows_[flow];
    st.queued = false;
    // Close the queued-residency span (also for lazily-removed dead
    // flows, so every begin pairs).
    if (trace::Ring* r = ev_.trace_ring()) {
      if (trace_base_ != 0) {
        r->record(ev_.now(), trace::Phase::kAsyncEnd, trace_name_queued_,
                  trace_track_, trace_base_ | flow, ready_.size());
      }
    }
    if (st.dead || st.avail == 0) continue;

    ++trigger_count_;
    if (telem_.on()) t_triggers_->inc();
    const std::uint32_t sent = trigger_ ? trigger_(flow) : 0;
    if (trace::Ring* r = ev_.trace_ring()) {
      if (trace_base_ != 0) {
        r->record(ev_.now(), trace::Phase::kInstant, trace_name_trigger_,
                  trace_track_, trace_base_ | flow, sent);
      }
    }
    if (sent == 0) {
      // Blocked (window closed / pipeline full): park until the data-path
      // kicks us (window opened, data appended, reset).
      st.parked = true;
      if (telem_.on()) t_parked_->inc();
      return;
    }
    if (telem_.on()) t_tx_bytes_->inc(sent);
    st.avail -= std::min<std::uint64_t>(st.avail, sent);
    if (st.avail > 0) {
      if (st.ps_per_byte == 0) {
        enqueue_ready(flow);  // uncongested: round-robin
      } else {
        enqueue_wheel(flow, ev_.now() + st.ps_per_byte * sent);
      }
    }
    return;  // one trigger per service interval
  }
}

}  // namespace flextoe::sched
