// Sketch flow monitor: the first production tap (paper §3.3 fits
// monitoring extensions at the splice points; the PAPERS.md sketch line
// gives the data structure). A count-min sketch with conservative
// update tracks per-flow byte/segment totals in memory bounded by the
// configured depth x width — independent of flow count — and a bounded
// candidate table surfaces the heavy hitters. Attached to the stage
// graph's Steer edge as a pipeline::TapObserver, it observes every
// segment admitted to the protocol stage without touching stage bodies
// or charging simulated cycles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "pipeline/tap.hpp"
#include "telemetry/registry.hpp"

namespace flextoe::monitor {

// Count-min sketch over 64-bit flow keys, counting bytes (or any
// monotonic quantity). Conservative update: only the rows holding the
// current minimum are incremented, which tightens the one-sided error
// (estimates never under-count, and over-count less than the classic
// update rule).
class CountMinSketch {
 public:
  CountMinSketch(std::size_t depth, std::size_t width, std::uint64_t seed);

  // Adds `delta` to `key`'s row cells (conservative) and returns the
  // new estimate.
  std::uint64_t update(std::uint64_t key, std::uint64_t delta);
  // Point query: min over the key's row cells. Never under-estimates
  // the true total.
  std::uint64_t estimate(std::uint64_t key) const;

  void clear();
  std::size_t depth() const { return depth_; }
  std::size_t width() const { return width_; }
  // Counter-table footprint: the monitor's bounded-memory claim.
  std::size_t memory_bytes() const {
    return cells_.size() * sizeof(std::uint64_t);
  }

 private:
  std::size_t row_index(std::size_t row, std::uint64_t key) const;

  std::size_t depth_;
  std::size_t width_;  // rounded up to a power of two (mask indexing)
  std::uint64_t mask_;
  std::vector<std::uint64_t> row_seed_;
  std::vector<std::uint64_t> cells_;  // depth_ x width_, row-major
};

struct SketchParams {
  std::size_t depth = 4;
  std::size_t width = 2048;
  std::size_t top_k = 16;  // heavy-hitter candidate table bound
  std::uint64_t seed = 0x5ce7c4f1u;
};

// The tap observer: byte and segment sketches plus a bounded top-K
// candidate table (min-eviction by estimated bytes). Total memory is
// the two sketches + top_k entries, regardless of how many flows cross
// the tapped edge.
class SketchFlowMonitor : public pipeline::TapObserver {
 public:
  // The edge this monitor is built for: attach with
  // graph.attach_tap(&mon, SketchFlowMonitor::kEdgeMask).
  static constexpr std::uint32_t kEdgeMask =
      pipeline::tap_bit(pipeline::TapEdge::Steer);

  explicit SketchFlowMonitor(const SketchParams& p = SketchParams{});

  // TapObserver: counts RX segments entering the protocol stage, keyed
  // by the sequencer's flow-tuple hash.
  void on_tap(const pipeline::TapEvent& ev) override;

  // Direct recording (tests, oracle comparisons).
  void record(std::uint64_t key, std::uint64_t bytes);

  struct HeavyHitter {
    std::uint64_t key = 0;
    std::uint64_t bytes = 0;  // sketch estimate (never under-counts)
    std::uint64_t segments = 0;
  };
  // Top heavy hitters by estimated bytes (descending; key ascending on
  // ties), at most min(k, top_k) entries.
  std::vector<HeavyHitter> top(std::size_t k) const;

  std::uint64_t estimate_bytes(std::uint64_t key) const {
    return bytes_.estimate(key);
  }
  std::uint64_t estimate_segments(std::uint64_t key) const {
    return segs_.estimate(key);
  }
  std::uint64_t events() const { return events_; }
  std::uint64_t total_bytes() const { return total_bytes_; }
  std::size_t memory_bytes() const;

  // Surfaces the monitor through the telemetry registry under `prefix`
  // (tap/sketch/{events,bytes,heavy_flows,top_bytes}). Registration
  // happens here — attach-time, never in the default graph — so
  // default-config snapshots stay byte-identical.
  void bind_telemetry(telemetry::Registry& reg,
                      const std::string& prefix = "tap/sketch");

  void clear();

 private:
  void update_gauges();

  SketchParams params_;
  CountMinSketch bytes_;
  CountMinSketch segs_;
  std::vector<HeavyHitter> heavy_;  // bounded by params_.top_k
  std::uint64_t events_ = 0;
  std::uint64_t total_bytes_ = 0;

  telemetry::Counter* t_events_ = nullptr;
  telemetry::Counter* t_bytes_ = nullptr;
  telemetry::Gauge* t_heavy_flows_ = nullptr;
  telemetry::Gauge* t_top_bytes_ = nullptr;
};

}  // namespace flextoe::monitor
