// Table 2: data-path performance with flexible extensions enabled —
// statistics/profiling (48 tracepoints), tcpdump-style logging, XDP null,
// XDP vlan-strip — plus the connection-splicing rate (§5.1).
#include "common.hpp"
#include "monitor/sketch.hpp"
#include "sim/domain.hpp"
#include "xdp/modules.hpp"

using namespace flextoe;
using namespace flextoe::benchx;

namespace {

// Saturated small-RPC data path throughput in MOps.
double run_datapath(const std::function<void(core::Datapath&)>& prep,
                    std::uint64_t seed, sim::TimePs warm, sim::TimePs span) {
  Testbed tb(seed);
  auto& server = tb.add_flextoe_node({.cores = 16});
  prep(server.toe->datapath());
  app::EchoServer srv(tb.ev(), *server.stack, {.port = 7});

  std::vector<std::unique_ptr<app::ClosedLoopClient>> clients;
  for (unsigned i = 0; i < 4; ++i) {
    auto& cn = tb.add_client_node();
    app::ClosedLoopClient::Params cp;
    cp.connections = 32;
    cp.pipeline = 8;
    cp.request_size = 32;
    clients.push_back(std::make_unique<app::ClosedLoopClient>(
        tb.ev(), *cn.stack, server.ip, cp));
    clients.back()->start();
  }

  tb.run_for(warm);
  std::uint64_t base = 0;
  for (auto& c : clients) base += c->completed();
  tb.run_for(span);
  std::uint64_t done = 0;
  for (auto& c : clients) done += c->completed();
  done -= base;
  return static_cast<double>(done) / sim::to_sec(span) / 1e6;
}

// Maximum splicing rate: synthetic spliced-flow segments injected at the
// MAC; every XDP_TX emission counts (paper: 6.4 Mpps on idle FPCs).
double run_splice_mpps(sim::TimePs span) {
  sim::Domain ev;
  core::DatapathConfig cfg;  // Agilio topology
  core::Datapath::HostIface host;
  host.notify = [](const host::CtxDesc&) {};
  host.to_control = [](const net::PacketPtr&) {};
  host.peer_fin = [](tcp::ConnId) {};
  core::Datapath dp(ev, cfg, host);
  dp.set_local(net::MacAddr::from_u64(0x02AA), net::make_ip(10, 0, 0, 9));

  auto splice = std::make_shared<xdp::SpliceProgram>();
  splice->set_local_mac(dp.local_mac());
  tcp::FlowTuple key{net::make_ip(10, 0, 0, 9), net::make_ip(10, 0, 0, 1),
                     80, 12345};
  xdp::TcpSplice st;
  st.remote_mac = net::MacAddr::from_u64(0x02BB);
  st.remote_ip = net::make_ip(10, 0, 0, 2);
  st.local_port = 443;
  st.remote_port = 999;
  st.seq_delta = 1000;
  st.ack_delta = 2000;
  splice->add(key, st);
  dp.add_xdp_program(splice);

  std::uint64_t emitted = 0;
  class CountSink : public net::PacketSink {
   public:
    explicit CountSink(std::uint64_t& n) : n_(n) {}
    void deliver(const net::PacketPtr&) override { ++n_; }

   private:
    std::uint64_t& n_;
  } sink(emitted);
  dp.set_mac_sink(&sink);

  // Inject back-to-back MTU-sized spliced segments.
  const auto gap = sim::ns(120);  // ~8 Mpps offered
  for (sim::TimePs t = 0; t < span; t += gap) {
    ev.schedule_at(t, [&dp] {
      auto pkt = net::make_tcp_packet(
          net::MacAddr::from_u64(0x02CC), net::MacAddr::from_u64(0x02AA),
          net::make_ip(10, 0, 0, 1), net::make_ip(10, 0, 0, 9), 12345, 80,
          7777, 8888, net::tcpflag::kAck | net::tcpflag::kPsh,
          std::vector<std::uint8_t>(1400, 0x5A));
      dp.deliver(pkt);
    });
  }
  ev.run_until(span + sim::us(100));
  return static_cast<double>(emitted) / sim::to_sec(span) / 1e6;
}

}  // namespace

BENCH_SCENARIO(table2, "data-path performance with flexible extensions") {
  const auto warm = ctx.pick(sim::ms(10), sim::ms(2));
  const auto span = ctx.pick(sim::ms(25), sim::ms(4));

  struct Build {
    const char* name;
    std::function<void(core::Datapath&)> prep;
  };
  const std::vector<Build> builds = {
      {"Baseline", [](core::Datapath&) {}},
      {"Stats+profiling",
       [](core::Datapath& dp) { dp.set_profiling(true); }},
      {"tcpdump(nofilt)",
       [](core::Datapath& dp) {
         dp.add_xdp_program(std::make_shared<xdp::CaptureProgram>());
       }},
      {"XDP (null)",
       [](core::Datapath& dp) {
         dp.add_xdp_program(std::make_shared<xdp::NullProgram>());
       }},
      {"XDP(vlan-strip)",
       [](core::Datapath& dp) {
         dp.add_xdp_program(std::make_shared<xdp::VlanStripProgram>());
       }},
      // Firewall with an empty blacklist: prices the per-packet map
      // lookup at the splice point without perturbing traffic.
      {"XDP (firewall)",
       [](core::Datapath& dp) {
         dp.add_xdp_program(std::make_shared<xdp::FirewallProgram>());
       }},
      // Sketch tap on the Steer edge: out-of-band, so this row is the
      // "taps cost nothing simulated" claim priced like the others.
      {"Tap (sketch)",
       [mon = std::make_shared<monitor::SketchFlowMonitor>()](
           core::Datapath& dp) {
         dp.graph().attach_tap(mon.get(),
                               monitor::SketchFlowMonitor::kEdgeMask);
       }},
  };

  auto& series = ctx.report().series("extensions");
  for (const auto& b : builds) {
    series.set(b.name, "mops", ctx.measure([&](int rep) {
      return run_datapath(b.prep, ctx.seed(67 + static_cast<unsigned>(rep)), warm,
                          span);
    }));
  }

  ctx.report().series("splicing").set(
      "rate", "mpps", run_splice_mpps(ctx.pick(sim::ms(5), sim::ms(1))));

  ctx.report().note(
      "Paper shape: profiling costs up to ~24%, tcpdump ~43%, XDP null "
      "~4%, vlan-strip negligible; splicing rate paper: 6.4 Mpps. Here "
      "tcpdump runs as a first-class XDP stage, so its 1100-cycle "
      "capture bottlenecks on xdp_replicas instead of being amortized "
      "across every pre-processor — a steeper hit than the paper's "
      "inline figure, by design.");
}
