// Replica selection for replicated pipeline stages.
//
// FlexTOE replicates stateless stages (pre/post processors, DMA and
// context-queue modules) and fans work across the replicas round-robin
// (paper §3.2). This picker is the one source of that state — it
// replaces the four hand-rolled counters (`rr_pre`/`rr_post` per
// flow-group plus the top-level `rr_dma_`/`rr_ctx_`) the Datapath
// monolith used to interleave by hand.
//
// The counter advances on every pick, including picks whose work is then
// rejected by back-pressure — matching hardware arbitration, where the
// grant is consumed even if the target ring refuses the item.
#pragma once

#include <cstddef>
#include <cstdint>

namespace flextoe::pipeline {

class ReplicaPicker {
 public:
  // Returns the replica index for the next unit of work.
  std::size_t next(std::size_t n_replicas) {
    return static_cast<std::size_t>(rr_++ % n_replicas);
  }

  // Burst pick: consume `n_items` grants in one arbitration step and
  // return the base replica; item i of the burst goes to
  // `(base + i) % n_replicas`. Exactly equivalent to `n_items` calls to
  // next() — the stripe is just the closed form of the modular walk —
  // so burst and per-item dispatch land every segment on the same
  // replica.
  std::size_t next_burst(std::size_t n_items, std::size_t n_replicas) {
    const std::size_t base = static_cast<std::size_t>(rr_ % n_replicas);
    rr_ += n_items;
    return base;
  }

  // Total picks made (distribution testing / introspection).
  std::uint64_t issued() const { return rr_; }

 private:
  std::uint64_t rr_ = 0;
};

}  // namespace flextoe::pipeline
