#include "pipeline/graph.hpp"

#include <algorithm>
#include <utility>

#include "core/batch.hpp"
#include "trace/trace.hpp"

namespace flextoe::pipeline {

const char* stage_name(StageId s) {
  static const char* kNames[kStageCount] = {
      "seq",      "xdp",      "pre_rx",   "pre_tx", "pre_hc",
      "proto_rx", "proto_tx", "proto_hc", "post",   "dma",
      "ctx_notify"};
  return kNames[static_cast<std::size_t>(s)];
}

const char* drop_reason_name(DropReason r) {
  switch (r) {
    case DropReason::RtcOverload:
      return "rtc_overload";
    case DropReason::FpcQueueFull:
      return "fpc_queue_full";
    case DropReason::XdpDrop:
      return "xdp_drop";
  }
  return "unknown";
}

// ------------------------------------------------------------ building

Graph::Island::Island(std::size_t g)
    : pre("pre" + std::to_string(g), StageRole::Pre, PickPolicy::RoundRobin,
          StateAccess::LookupCache,
          StageTraits{/*sequenced=*/true, /*droppable=*/true}),
      proto("proto" + std::to_string(g), StageRole::Proto,
            PickPolicy::ConnShard, StateAccess::ReadModifyWrite,
            StageTraits{}),
      post("post" + std::to_string(g), StageRole::Post,
           PickPolicy::RoundRobin, StateAccess::Read, StageTraits{}) {}

Graph::Graph(sim::Domain& ev, const core::DatapathConfig& cfg,
             nfp::DmaEngine& dma, Handlers handlers)
    : ev_(ev),
      cfg_(&cfg),
      dma_(&dma),
      handlers_(std::move(handlers)),
      dma_stage_("dma", StageRole::Dma, PickPolicy::RoundRobin,
                 StateAccess::None, StageTraits{}),
      ctx_stage_("ctx", StageRole::CtxQueue, PickPolicy::RoundRobin,
                 StateAccess::None, StageTraits{}) {
  const unsigned ngroups = std::max(1u, cfg.flow_groups);
  fp_.clock = cfg.clock;
  fp_.threads = std::max(1u, cfg.threads_per_fpc);
  fp_.queue_capacity = cfg.fpc_queue_depth;
  fp_.burst = core::resolve_batch(cfg.batch_size);

  // Run-to-completion configuration: every stage shares one FPC, so all
  // work — including PCIe waits — serializes on a single core (Table 3
  // baseline), and the admission gate below serializes whole segments.
  // fp_/rtc_fpc_ are kept as members so late splices (attach_xdp_stage)
  // build replicas under the same parameters.
  if (!cfg.pipelined) {
    rtc_fpc_ = std::make_shared<nfp::Fpc>(ev_, fp_, "rtc");
    gate_ = std::make_shared<GateState>(ev_, cfg.fpc_queue_depth);
  }

  auto populate = [&](Stage& st, unsigned n, const char* tag,
                      std::size_t g) {
    for (unsigned i = 0; i < n; ++i) {
      if (rtc_fpc_) {
        st.add_replica(rtc_fpc_);
        continue;
      }
      st.add_replica(std::make_shared<nfp::Fpc>(
          ev_, fp_, tag + std::to_string(g) + "." + std::to_string(i)));
    }
  };

  for (unsigned g = 0; g < ngroups; ++g) {
    auto isl = std::make_unique<Island>(g);
    isl->mem = std::make_unique<nfp::IslandMemory>(512);
    populate(isl->pre, std::max(1u, cfg.pre_replicas), "pre", g);
    populate(isl->proto, std::max(1u, cfg.proto_fpcs_per_group), "proto", g);
    populate(isl->post, std::max(1u, cfg.post_replicas), "post", g);
    for (std::size_t i = 0; i < isl->proto.replicas(); ++i) {
      isl->proto.mem().push_back(std::make_unique<nfp::StateAccessModel>(
          cfg.mem, isl->mem.get(), &nic_mem_, 16));
    }
    for (std::size_t i = 0; i < isl->post.replicas(); ++i) {
      isl->post.mem().push_back(std::make_unique<nfp::StateAccessModel>(
          cfg.mem, isl->mem.get(), &nic_mem_, 16));
    }
    for (std::size_t i = 0; i < isl->pre.replicas(); ++i) {
      isl->pre.lookup().push_back(
          std::make_unique<nfp::DirectMappedCache>(128));
    }
    isl->proto_rob = std::make_unique<ReorderBuffer<core::SegCtxPtr>>(
        [this](core::SegCtxPtr ctx) { dispatch_proto(ctx); }, cfg.reorder);
    isl->nbi_rob = std::make_unique<ReorderBuffer<core::SegCtxPtr>>(
        [this](core::SegCtxPtr ctx) {
          if (ctx->trace_id != 0) {
            if (trace::Ring* r = ev_.trace_ring()) {
              const TraceIds& ids = trace_ids();
              r->record(ev_.now(), trace::Phase::kAsyncEnd, ids.nbi_name,
                        ids.nbi_track, ctx->trace_id, 0);
            }
            // NIC-side egress stamp: the switch forwards this PacketPtr,
            // so the receiving datapath adopts the same causal id and the
            // segment is traceable NIC-to-NIC.
            if (ctx->pkt) ctx->pkt->trace_id = ctx->trace_id;
          }
          if (ctx->pkt) handlers_.nbi_tx(ctx->pkt);
        },
        cfg.reorder);
    islands_.push_back(std::move(isl));
  }

  // Service island: DMA managers + context-queue FPCs.
  for (unsigned i = 0; i < std::max(1u, cfg.dma_fpcs); ++i) {
    dma_stage_.add_replica(
        rtc_fpc_ ? rtc_fpc_
                 : std::make_shared<nfp::Fpc>(ev_, fp_,
                                              "dma." + std::to_string(i)));
  }
  for (unsigned i = 0; i < std::max(1u, cfg.ctx_fpcs); ++i) {
    ctx_stage_.add_replica(
        rtc_fpc_ ? rtc_fpc_
                 : std::make_shared<nfp::Fpc>(ev_, fp_,
                                              "ctx." + std::to_string(i)));
  }

  wire_ports();
}

Graph::~Graph() = default;

// Binds every stage's typed output ports to the framework's routing.
// The ports are the graph's declarative edge list — named, typed, and
// asserted by the construction tests; the hot dispatch paths call the
// same routing methods directly to avoid an indirection per segment.
void Graph::wire_ports() {
  for (std::size_t g = 0; g < islands_.size(); ++g) {
    Island& isl = *islands_[g];
    isl.pre.out("steer").bind(
        "proto" + std::to_string(g),
        [this](const core::SegCtxPtr& c) { to_proto(c); });
    isl.proto.out("post").bind(
        "post" + std::to_string(g),
        [this](const core::SegCtxPtr& c) { to_post(c); });
    isl.post.out("dma").bind(
        "dma", [this](const core::SegCtxPtr& c) { to_dma(c); });
    isl.post.out("notify").bind(
        "ctx", [this](const core::SegCtxPtr& c) { to_ctx_notify(c); });
  }
  dma_stage_.out("notify").bind(
      "ctx", [this](const core::SegCtxPtr& c) { to_ctx_notify(c); });
  dma_stage_.out("nbi").bind("mac_tx", [this](const core::SegCtxPtr& c) {
    to_nbi(c->flow_group, c->snap.egress_seq, c);
  });
}

// ----------------------------------------------------------- telemetry

void Graph::bind_telemetry(telemetry::Registry& reg) {
  reg_ = &reg;
  for (std::size_t s = 0; s < kStageCount; ++s) {
    // The XDP slot registers lazily on attach_xdp_stage(): snapshots of
    // the default no-XDP graph must not grow stage/xdp/* keys (golden
    // byte-identity), and Registry::snapshot() emits every registered
    // metric even at zero.
    if (static_cast<StageId>(s) == StageId::Xdp && xdp_chain_.empty()) {
      continue;
    }
    const std::string base =
        std::string("stage/") + stage_name(static_cast<StageId>(s));
    stage_telem_[s].visits = reg.counter(base + "/visits");
    stage_telem_[s].lat_ns = reg.histogram(base + "/lat_ns");
  }
  for (std::size_t r = 0; r < kDropReasons; ++r) {
    drop_telem_[r] = reg.counter(
        std::string("drop/") + drop_reason_name(static_cast<DropReason>(r)));
  }
  pipe_total_ns_[static_cast<std::size_t>(core::SegCtx::Kind::Rx)] =
      reg.histogram("pipe/rx_total_ns");
  pipe_total_ns_[static_cast<std::size_t>(core::SegCtx::Kind::Tx)] =
      reg.histogram("pipe/tx_total_ns");
  pipe_total_ns_[static_cast<std::size_t>(core::SegCtx::Kind::Hc)] =
      reg.histogram("pipe/hc_total_ns");
  group_telem_.resize(islands_.size());
  for (std::size_t g = 0; g < islands_.size(); ++g) {
    const std::string p = "group/" + std::to_string(g);
    group_telem_[g].rx = reg.counter(p + "/rx");
    group_telem_[g].tx = reg.counter(p + "/tx");
    group_telem_[g].hc = reg.counter(p + "/hc");
    group_telem_[g].rob_depth = reg.histogram(p + "/rob_depth");
    group_telem_[g].rob_depth_now = reg.gauge(p + "/rob_depth");
  }
  for (auto& isl : islands_) {
    for (auto& f : isl->pre.all_fpcs()) {
      f->bind_telemetry(reg, "fpc/" + f->name());
    }
    for (auto& f : isl->proto.all_fpcs()) {
      f->bind_telemetry(reg, "fpc/" + f->name());
    }
    for (auto& f : isl->post.all_fpcs()) {
      f->bind_telemetry(reg, "fpc/" + f->name());
    }
  }
  for (auto& f : dma_stage_.all_fpcs()) {
    f->bind_telemetry(reg, "fpc/" + f->name());
  }
  for (auto& f : ctx_stage_.all_fpcs()) {
    f->bind_telemetry(reg, "fpc/" + f->name());
  }
  for (auto& nd : xdp_chain_) {
    for (auto& f : nd.stage->all_fpcs()) {
      f->bind_telemetry(reg, "fpc/" + f->name());
    }
  }
}

const Graph::TraceIds& Graph::trace_ids() {
  if (!trace_ids_.ready) {
    auto& tr = trace::Tracer::instance();
    for (std::size_t s = 0; s < kStageCount; ++s) {
      const char* n = stage_name(static_cast<StageId>(s));
      trace_ids_.stage_name[s] = tr.intern(n);
      trace_ids_.stage_track[s] = tr.intern(std::string("stage/") + n);
    }
    trace_ids_.pipe_track = tr.intern("pipe/segments");
    trace_ids_.pipe_name[static_cast<std::size_t>(core::SegCtx::Kind::Rx)] =
        tr.intern("pipe_rx");
    trace_ids_.pipe_name[static_cast<std::size_t>(core::SegCtx::Kind::Tx)] =
        tr.intern("pipe_tx");
    trace_ids_.pipe_name[static_cast<std::size_t>(core::SegCtx::Kind::Hc)] =
        tr.intern("pipe_hc");
    trace_ids_.rob_track = tr.intern("rob/proto");
    trace_ids_.rob_name = tr.intern("reorder");
    trace_ids_.nbi_track = tr.intern("rob/nbi");
    trace_ids_.nbi_name = tr.intern("egress");
    trace_ids_.skip_name = tr.intern("skip");
    trace_ids_.drop_track = tr.intern("drop/pipeline");
    for (std::size_t r = 0; r < kDropReasons; ++r) {
      trace_ids_.drop_name[r] =
          tr.intern(drop_reason_name(static_cast<DropReason>(r)));
    }
    trace_ids_.ready = true;
  }
  return trace_ids_;
}

void Graph::stamp_birth(core::SegCtx& ctx) {
  // Single clock read shared by the trace-admission record and the
  // telemetry stamps (this used to query the domain twice).
  stamp_birth_at(ctx, ev_.now());
}

void Graph::stamp_birth_at(core::SegCtx& ctx, sim::TimePs now) {
  // Trace admission: mint (or adopt from the arriving packet — egress
  // stamps it NIC-side, so a traced segment keeps one causal id across
  // the simulated fabric) the causal id and open the end-to-end "pipe"
  // span. Independent of telemetry enablement.
  if (trace::Ring* r = ev_.trace_ring()) {
    const TraceIds& ids = trace_ids();
    if (ctx.trace_id == 0) {
      ctx.trace_id = (ctx.pkt && ctx.pkt->trace_id != 0)
                         ? ctx.pkt->trace_id
                         : r->make_cid();
    }
    if (!ctx.trace_open) {
      ctx.trace_open = true;
      r->record(now, trace::Phase::kAsyncBegin,
                ids.pipe_name[static_cast<std::size_t>(ctx.kind)],
                ids.pipe_track, ctx.trace_id, ctx.flow_group);
    }
  }
  if (reg_ == nullptr || !reg_->enabled()) return;
  ctx.t_born_ps = ctx.t_stage_ps = now;
}

void Graph::mark(StageId s, core::SegCtx& ctx) {
  if (reg_ == nullptr || !reg_->enabled()) return;
  mark(s, ctx, ev_.now());
}

void Graph::mark(StageId s, core::SegCtx& ctx, sim::TimePs now) {
  if (reg_ == nullptr || !reg_->enabled()) return;
  StageTelem& st = stage_telem_[static_cast<std::size_t>(s)];
  if (st.visits == nullptr) return;  // lazily-registered slot (Xdp)
  st.visits->inc();
  if (ctx.t_stage_ps != core::SegCtx::kNoTimestamp) {
    st.lat_ns->record((now - ctx.t_stage_ps) / sim::kPsPerNs);
  }
  ctx.t_stage_ps = now;
}

void Graph::mark_burst(StageId s, const core::SegCtxPtr* ctxs, std::size_t n,
                       sim::TimePs now) {
  if (n == 0 || reg_ == nullptr || !reg_->enabled()) return;
  StageTelem& st = stage_telem_[static_cast<std::size_t>(s)];
  if (st.visits == nullptr) return;  // lazily-registered slot (Xdp)
  // One counter add for the span; per-segment latency samples are kept
  // (histogram contents are order-insensitive, so this is
  // snapshot-identical to n x mark() at the same instant).
  st.visits->inc(n);
  for (std::size_t i = 0; i < n; ++i) {
    core::SegCtx& ctx = *ctxs[i];
    if (ctx.t_stage_ps != core::SegCtx::kNoTimestamp) {
      st.lat_ns->record((now - ctx.t_stage_ps) / sim::kPsPerNs);
    }
    ctx.t_stage_ps = now;
  }
}

void Graph::record_pipe_total(core::SegCtx& ctx) {
  if (ctx.trace_open) {
    ctx.trace_open = false;  // closed once per ctx
    if (trace::Ring* r = ev_.trace_ring()) {
      const TraceIds& ids = trace_ids();
      r->record(ev_.now(), trace::Phase::kAsyncEnd,
                ids.pipe_name[static_cast<std::size_t>(ctx.kind)],
                ids.pipe_track, ctx.trace_id, 0);
    }
  }
  if (reg_ == nullptr || !reg_->enabled() ||
      ctx.t_born_ps == core::SegCtx::kNoTimestamp) {
    return;
  }
  pipe_total_ns_[static_cast<std::size_t>(ctx.kind)]->record(
      (ev_.now() - ctx.t_born_ps) / sim::kPsPerNs);
  ctx.t_born_ps = core::SegCtx::kNoTimestamp;  // recorded once per ctx
}

void Graph::count_drop(DropReason r, std::uint64_t trace_cid) {
  if (handlers_.on_drop) handlers_.on_drop(r);
  if (reg_ != nullptr && reg_->enabled()) {
    drop_telem_[static_cast<std::size_t>(r)]->inc();
  }
  if (trace::Ring* ring = ev_.trace_ring()) {
    const TraceIds& ids = trace_ids();
    // Record the drop itself first so the post-mortem slice includes it,
    // then freeze the victim's last-K events out of this ring.
    ring->record(ev_.now(), trace::Phase::kInstant,
                 ids.drop_name[static_cast<std::size_t>(r)], ids.drop_track,
                 trace_cid, 0);
    if (trace_cid != 0) {
      trace::Tracer::instance().report_drop(*ring, trace_cid,
                                            drop_reason_name(r), ev_.now());
    }
  }
}

// ------------------------------------------------------------ RTC gate

bool Graph::admit(GateTask fn, bool droppable, std::uint64_t trace_cid) {
  if (!gate_) {
    fn();
    return true;
  }
  if (gate_->busy) {
    if (droppable && gate_->pending.size() >= gate_->limit) {
      count_drop(DropReason::RtcOverload, trace_cid);
      return false;  // no NIC-side buffering: shed the segment
    }
    gate_->pending.push_back(std::move(fn));
    return true;
  }
  gate_->busy = true;
  fn();
  return true;
}

// Run-to-completion token: when the last reference to the segment
// context (and thus every callback in its chain) dies, the pipeline is
// free to admit the next segment. The weak reference makes tokens inert
// once the graph is gone (contexts may outlive it in a draining
// EventQueue).
std::shared_ptr<void> Graph::gate_token() {
  if (!gate_) return nullptr;
  return std::shared_ptr<void>(
      nullptr, [w = std::weak_ptr<GateState>(gate_)](void*) {
        if (auto g = w.lock()) gate_done(g);
      });
}

void Graph::gate_done(const std::shared_ptr<GateState>& g) {
  g->busy = false;
  if (g->pending.empty()) return;
  GateTask fn = std::move(g->pending.front());
  g->pending.pop_front();
  g->busy = true;
  // Defer to avoid unbounded recursion through completion chains. The
  // continuation holds graph-owned state, so it re-checks liveness.
  g->ev.schedule_in(0, [w = std::weak_ptr<GateState>(g),
                        fn = std::move(fn)]() mutable {
    if (w.lock()) fn();
  });
}

// ------------------------------------------------------------- dispatch

bool Graph::submit(StageId sid, std::uint64_t trace_cid, nfp::Fpc& fpc,
                   std::uint32_t compute, std::uint32_t mem,
                   nfp::Work::DoneFn fn, std::uint64_t skip_seq,
                   std::uint8_t group, bool sequenced) {
  // Stage span: submit -> handler completion (queue wait + service). The
  // wrapped done-fn may heap-allocate in SmallFn; that only happens while
  // tracing is live, which is out-of-band by contract.
  const std::size_t s = static_cast<std::size_t>(sid);
  if (trace_cid != 0) {
    if (trace::Ring* r = ev_.trace_ring()) {
      const TraceIds& ids = trace_ids();
      r->record(ev_.now(), trace::Phase::kAsyncBegin, ids.stage_name[s],
                ids.stage_track[s], trace_cid, group);
      fn = [this, s, trace_cid, inner = std::move(fn)]() mutable {
        inner();
        if (trace::Ring* rr = ev_.trace_ring()) {
          rr->record(ev_.now(), trace::Phase::kAsyncEnd,
                     trace_ids_.stage_name[s], trace_ids_.stage_track[s],
                     trace_cid, 0);
        }
      };
    }
  }
  nfp::Work w;
  w.compute_cycles = compute + profile_overhead();
  w.mem_cycles = mem;
  w.done = std::move(fn);
  w.trace_cid = trace_cid;
  if (!fpc.submit(std::move(w))) {
    // Close the stage span immediately (arg=1 flags the rejection) so the
    // begin above never orphans, then attribute the drop.
    if (trace_cid != 0) {
      if (trace::Ring* r = ev_.trace_ring()) {
        r->record(ev_.now(), trace::Phase::kAsyncEnd,
                  trace_ids_.stage_name[s], trace_ids_.stage_track[s],
                  trace_cid, 1);
      }
    }
    count_drop(DropReason::FpcQueueFull, trace_cid);
    if (sequenced) islands_[group]->proto_rob->skip(skip_seq);
    return false;
  }
  return true;
}

std::uint32_t Graph::state_cycles(Stage& st, std::size_t replica,
                                  std::uint32_t conn) const {
  if (!cfg_->nfp_memory) return cfg_->flat_mem_cycles;
  const std::uint32_t once = st.mem()[replica]->access_cycles(conn);
  // Protocol state is read-modify-write: fetch + write-back both pay the
  // hierarchy (this is what strains the EMEM SRAM cache at high
  // connection counts, Fig 13).
  return st.state_access() == StateAccess::ReadModifyWrite ? 2 * once
                                                           : once;
}

void Graph::ingress_rx(const core::SegCtxPtr& ctx) {
  admit(
      [this, ctx] {
        ctx->rtc_token = gate_token();
        Island& isl = *islands_[ctx->flow_group];
        ctx->pipe_seq = isl.sequencer.assign();
        mark(StageId::Seq, *ctx);
        tap_emit(TapEdge::Admit, *ctx);
        if (!xdp_chain_.empty()) {
          xdp_dispatch(ctx, 0, xdp_chain_[0].stage->pick());
          return;
        }
        xdp_to_pre(ctx);
      },
      islands_[ctx->flow_group]->pre.traits().droppable, ctx->trace_id);
}

void Graph::ingress_rx_burst(const core::SegCtxPtr* ctxs, std::size_t n) {
  if (n == 0) return;
  if (gate_) {
    // RTC mode serializes whole segments through the gate; burst
    // dispatch buys nothing there. Fall back to the per-item path so
    // gate admission/shed decisions are made one segment at a time,
    // exactly as before.
    for (std::size_t i = 0; i < n; ++i) ingress_rx(ctxs[i]);
    return;
  }
  // Pipelined mode: admit() is a straight call and gate_token() is
  // null, so the per-item body inlines here. One clock read and one
  // replica arbitration per contiguous same-flow-group run; submits
  // stay in span order (burst boundaries must never reorder the global
  // event schedule).
  const sim::TimePs now = ev_.now();
  if (!xdp_chain_.empty()) {
    // XDP chain attached: sequence + stripe the burst over the chain
    // head's replicas; verdict routing continues per item.
    Stage& head = *xdp_chain_[0].stage;
    const std::size_t nrep = head.replicas();
    std::size_t i = 0;
    while (i < n) {
      const std::uint8_t g = ctxs[i]->flow_group;
      std::size_t j = i + 1;
      while (j < n && ctxs[j]->flow_group == g) ++j;
      const std::size_t run = j - i;
      Island& isl = *islands_[g];
      const std::size_t base = head.pick_burst(run);
      for (std::size_t k = 0; k < run; ++k) {
        ctxs[i + k]->pipe_seq = isl.sequencer.assign();
      }
      mark_burst(StageId::Seq, ctxs + i, run, now);
      for (std::size_t k = 0; k < run; ++k) {
        if (i + k + 1 < n) core::seg_prefetch(ctxs[i + k + 1].get());
        tap_emit(TapEdge::Admit, *ctxs[i + k]);
        xdp_dispatch(ctxs[i + k], 0, (base + k) % nrep);
      }
      i = j;
    }
    return;
  }
  const std::uint32_t compute = cfg_->costs.seq + cfg_->costs.pre_rx;
  std::size_t i = 0;
  while (i < n) {
    const std::uint8_t g = ctxs[i]->flow_group;
    std::size_t j = i + 1;
    while (j < n && ctxs[j]->flow_group == g) ++j;
    const std::size_t run = j - i;
    Island& isl = *islands_[g];
    const std::size_t nrep = isl.pre.replicas();
    const std::size_t base = isl.pre.pick_burst(run);
    for (std::size_t k = 0; k < run; ++k) {
      ctxs[i + k]->pipe_seq = isl.sequencer.assign();
    }
    mark_burst(StageId::Seq, ctxs + i, run, now);
    for (std::size_t k = 0; k < run; ++k) {
      const core::SegCtxPtr& ctx = ctxs[i + k];
      if (i + k + 1 < n) core::seg_prefetch(ctxs[i + k + 1].get());
      tap_emit(TapEdge::Admit, *ctx);
      const std::size_t idx = (base + k) % nrep;
      // Flow lookup: IMEM lookup engine, front-cached per pre-processor.
      std::uint32_t lookup_mem = cfg_->flat_mem_cycles;
      if (cfg_->nfp_memory &&
          isl.pre.state_access() == StateAccess::LookupCache) {
        lookup_mem = isl.pre.lookup()[idx]->access(ctx->lookup_key)
                         ? cfg_->mem.local
                         : cfg_->mem.imem;
      }
      submit(StageId::PreRx, ctx->trace_id, isl.pre.fpc(idx), compute,
             lookup_mem,
             [this, ctx] {
               mark(StageId::PreRx, *ctx);
               handlers_.pre_rx(ctx);
             },
             ctx->pipe_seq, ctx->flow_group, isl.pre.traits().sequenced);
    }
    i = j;
  }
}

// ------------------------------------------------------- XDP stage chain

Stage& Graph::attach_xdp_stage(XdpStageDesc desc) {
  const std::size_t i = xdp_chain_.size();
  XdpNode nd;
  nd.cycles = desc.cycles;
  nd.run = std::move(desc.run);
  nd.stage = std::make_unique<Stage>(
      "xdp" + std::to_string(i) + "." + desc.name, StageRole::Pre,
      PickPolicy::RoundRobin, StateAccess::None,
      StageTraits{/*sequenced=*/true, /*droppable=*/true});
  const unsigned nrep = std::max(1u, cfg_->xdp_replicas);
  for (unsigned r = 0; r < nrep; ++r) {
    nd.stage->add_replica(
        rtc_fpc_ ? rtc_fpc_
                 : std::make_shared<nfp::Fpc>(
                       ev_, fp_,
                       nd.stage->name() + "." + std::to_string(r)));
  }
  // Declarative edge list: each node's "pass" port names its successor
  // (the next chain node, or pre-processing at the tail).
  if (i > 0) {
    xdp_chain_[i - 1].stage->out("pass").bind(
        nd.stage->name(),
        [this, i](const core::SegCtxPtr& c) {
          xdp_dispatch(c, i, xdp_chain_[i].stage->pick());
        });
  }
  nd.stage->out("pass").bind(
      "pre", [this](const core::SegCtxPtr& c) { xdp_to_pre(c); });
  if (reg_ != nullptr) {
    // Late registration (the graph's telemetry was bound before the
    // splice): materialize the stage/xdp/* slots and bind the new FPCs.
    StageTelem& st = stage_telem_[static_cast<std::size_t>(StageId::Xdp)];
    if (st.visits == nullptr) {
      st.visits = reg_->counter("stage/xdp/visits");
      st.lat_ns = reg_->histogram("stage/xdp/lat_ns");
    }
    for (auto& f : nd.stage->all_fpcs()) {
      f->bind_telemetry(*reg_, "fpc/" + f->name());
    }
  }
  xdp_chain_.push_back(std::move(nd));
  return *xdp_chain_.back().stage;
}

void Graph::clear_xdp_stages() { xdp_chain_.clear(); }

void Graph::xdp_dispatch(const core::SegCtxPtr& ctx, std::size_t node,
                         std::size_t idx) {
  XdpNode& nd = xdp_chain_[node];
  // The chain head is the first work after admission, so it carries the
  // sequencer cost exactly like pre-RX does on the no-XDP path; each
  // node bills only its own cycles — a terminal verdict upstream means
  // later programs never run and are never charged (the cost-accounting
  // fix over the old wholesale sum).
  const std::uint32_t compute =
      (node == 0 ? cfg_->costs.seq : 0) + nd.cycles;
  submit(StageId::Xdp, ctx->trace_id, nd.stage->fpc(idx), compute, 0,
         [this, ctx, node] { xdp_run(ctx, node); }, ctx->pipe_seq,
         ctx->flow_group, nd.stage->traits().sequenced);
}

void Graph::xdp_run(const core::SegCtxPtr& ctx, std::size_t node) {
  mark(StageId::Xdp, *ctx);
  if (node >= xdp_chain_.size()) {
    // Chain cleared while this segment was in flight: fall through to
    // pre-processing as if the program chain were empty.
    xdp_to_pre(ctx);
    return;
  }
  XdpNode& nd = xdp_chain_[node];
  switch (nd.run(ctx)) {
    case XdpVerdict::Pass:
      if (node + 1 < xdp_chain_.size()) {
        xdp_dispatch(ctx, node + 1, xdp_chain_[node + 1].stage->pick());
      } else {
        xdp_to_pre(ctx);
      }
      return;
    case XdpVerdict::Drop:
      count_drop(DropReason::XdpDrop, ctx->trace_id);
      skip_proto(ctx);
      return;
    case XdpVerdict::Tx:
      if (ctx->pkt) handlers_.nbi_tx(ctx->pkt);
      skip_proto(ctx);
      return;
    case XdpVerdict::Redirect:
      if (handlers_.redirect) handlers_.redirect(ctx);
      skip_proto(ctx);
      return;
  }
}

void Graph::xdp_to_pre(const core::SegCtxPtr& ctx) {
  Island& isl = *islands_[ctx->flow_group];
  const std::size_t idx = isl.pre.pick();
  // Flow lookup: IMEM lookup engine, front-cached per pre-processor.
  std::uint32_t lookup_mem = cfg_->flat_mem_cycles;
  if (cfg_->nfp_memory &&
      isl.pre.state_access() == StateAccess::LookupCache) {
    lookup_mem = isl.pre.lookup()[idx]->access(ctx->lookup_key)
                     ? cfg_->mem.local
                     : cfg_->mem.imem;
  }
  // No chain: the sequencer cost rides on pre-RX (the classic path).
  // With a chain, the head already paid it.
  const std::uint32_t compute =
      (xdp_chain_.empty() ? cfg_->costs.seq : 0) + cfg_->costs.pre_rx;
  submit(StageId::PreRx, ctx->trace_id, isl.pre.fpc(idx), compute,
         lookup_mem,
         [this, ctx] {
           mark(StageId::PreRx, *ctx);
           handlers_.pre_rx(ctx);
         },
         ctx->pipe_seq, ctx->flow_group, isl.pre.traits().sequenced);
}

// -------------------------------------------------------------- tap ports

void Graph::tap_emit_slow(TapEdge e, const core::SegCtx& ctx) {
  if ((tap_mask_ & tap_bit(e)) == 0) return;
  tap_->on_tap(TapEvent{e, ev_.now(), ctx, ctx.pkt.get()});
}

bool Graph::ingress_tx(const core::SegCtxPtr& ctx) {
  Island& isl = *islands_[ctx->flow_group];
  // The replica grant is consumed even under back-pressure (hardware
  // arbitration semantics).
  const std::size_t idx = isl.pre.pick();
  if (isl.pre.fpc(idx).queue_len() >= cfg_->fpc_queue_depth) return false;
  admit(
      [this, ctx, idx] {
        ctx->rtc_token = gate_token();
        Island& isl2 = *islands_[ctx->flow_group];
        ctx->pipe_seq = isl2.sequencer.assign();
        mark(StageId::Seq, *ctx);
        tap_emit(TapEdge::Admit, *ctx);
        submit(StageId::PreTx, ctx->trace_id, isl2.pre.fpc(idx),
               cfg_->costs.seq + cfg_->costs.pre_tx, 0,
               [this, ctx] {
                 mark(StageId::PreTx, *ctx);
                 handlers_.pre_tx(ctx);
               },
               ctx->pipe_seq, ctx->flow_group, isl2.pre.traits().sequenced);
      },
      /*droppable=*/false);  // TX/HC work is never lost, only RX sheds
  return true;
}

void Graph::hc_after_fetch(const core::SegCtxPtr& ctx) {
  Island& isl = *islands_[ctx->flow_group];
  ctx->pipe_seq = isl.sequencer.assign();
  mark(StageId::Seq, *ctx);
  tap_emit(TapEdge::Admit, *ctx);
  const std::size_t idx = isl.pre.pick();
  submit(StageId::PreHc, ctx->trace_id, isl.pre.fpc(idx),
         cfg_->costs.pre_hc, 0,
         [this, ctx] {
           mark(StageId::PreHc, *ctx);
           to_proto(ctx);
         },
         ctx->pipe_seq, ctx->flow_group, isl.pre.traits().sequenced);
}

void Graph::ingress_hc(const core::SegCtxPtr& ctx) {
  admit(
      [this, ctx] {
        ctx->rtc_token = gate_token();
        // Fetch the descriptor via DMA, then steer through the pipeline.
        const std::size_t cidx = ctx_stage_.pick();
        submit(StageId::CtxNotify, ctx->trace_id, ctx_stage_.fpc(cidx),
               cfg_->costs.ctx_op, 0,
               [this, ctx] {
                 dma_->issue(32, [this, ctx] { hc_after_fetch(ctx); },
                             ctx->trace_id);
               },
               0, 0, false);
      },
      /*droppable=*/false);
}

void Graph::ingress_hc_burst(const core::SegCtxPtr* ctxs, std::size_t n) {
  if (n == 0) return;
  if (gate_) {
    // RTC mode: one descriptor at a time through the gate, as before.
    for (std::size_t i = 0; i < n; ++i) ingress_hc(ctxs[i]);
    return;
  }
  // One context-stage arbitration for the span; submits in span order.
  const std::size_t nrep = ctx_stage_.replicas();
  const std::size_t base = ctx_stage_.pick_burst(n);
  for (std::size_t k = 0; k < n; ++k) {
    const core::SegCtxPtr& ctx = ctxs[k];
    if (k + 1 < n) core::seg_prefetch(ctxs[k + 1].get());
    const std::size_t cidx = (base + k) % nrep;
    submit(StageId::CtxNotify, ctx->trace_id, ctx_stage_.fpc(cidx),
           cfg_->costs.ctx_op, 0,
           [this, ctx] {
             dma_->issue(32, [this, ctx] { hc_after_fetch(ctx); },
                         ctx->trace_id);
           },
           0, 0, false);
  }
}

void Graph::spawn_tx(const core::SegCtxPtr& ctx) {
  Island& isl = *islands_[ctx->flow_group];
  ctx->pipe_seq = isl.sequencer.assign();
  mark(StageId::Seq, *ctx);
  tap_emit(TapEdge::Admit, *ctx);
  const std::size_t idx = isl.pre.pick();
  submit(StageId::PreTx, ctx->trace_id, isl.pre.fpc(idx),
         cfg_->costs.pre_tx, 0,
         [this, ctx] {
           mark(StageId::PreTx, *ctx);
           handlers_.pre_tx(ctx);
         },
         ctx->pipe_seq, ctx->flow_group, isl.pre.traits().sequenced);
}

void Graph::to_proto(const core::SegCtxPtr& ctx) {
  tap_emit(TapEdge::Steer, *ctx);
  // Proto-ROB residency span: push -> in-order release (dispatch_proto).
  if (ctx->trace_id != 0) {
    if (trace::Ring* r = ev_.trace_ring()) {
      const TraceIds& ids = trace_ids();
      r->record(ev_.now(), trace::Phase::kAsyncBegin, ids.rob_name,
                ids.rob_track, ctx->trace_id, ctx->pipe_seq);
    }
  }
  islands_[ctx->flow_group]->proto_rob->push(ctx->pipe_seq, ctx);
}

void Graph::skip_proto(const core::SegCtxPtr& ctx) {
  if (ctx->trace_id != 0) {
    if (trace::Ring* r = ev_.trace_ring()) {
      const TraceIds& ids = trace_ids();
      r->record(ev_.now(), trace::Phase::kInstant, ids.skip_name,
                ids.rob_track, ctx->trace_id, ctx->pipe_seq);
    }
  }
  islands_[ctx->flow_group]->proto_rob->skip(ctx->pipe_seq);
}

void Graph::skip_nbi(const core::SegCtxPtr& ctx) {
  if (!holds_egress_slot(*ctx)) return;
  if (ctx->trace_id != 0) {
    if (trace::Ring* r = ev_.trace_ring()) {
      const TraceIds& ids = trace_ids();
      r->record(ev_.now(), trace::Phase::kInstant, ids.skip_name,
                ids.nbi_track, ctx->trace_id, ctx->snap.egress_seq);
    }
  }
  islands_[ctx->flow_group]->nbi_rob->skip(ctx->snap.egress_seq);
}

void Graph::dispatch_proto(const core::SegCtxPtr& ctx) {
  // Close the proto-ROB residency span before any early return: the
  // reorder point released the segment either way.
  if (ctx->trace_id != 0) {
    if (trace::Ring* r = ev_.trace_ring()) {
      const TraceIds& ids = trace_ids();
      r->record(ev_.now(), trace::Phase::kAsyncEnd, ids.rob_name,
                ids.rob_track, ctx->trace_id, ctx->pipe_seq);
    }
  }
  if (!ctx->conn_known || !handlers_.conn_valid(ctx)) return;
  Island& isl = *islands_[ctx->flow_group];
  if (reg_ != nullptr && reg_->enabled()) {
    GroupTelem& gt = group_telem_[ctx->flow_group];
    switch (ctx->kind) {
      case core::SegCtx::Kind::Rx:
        gt.rx->inc();
        break;
      case core::SegCtx::Kind::Tx:
        gt.tx->inc();
        break;
      case core::SegCtx::Kind::Hc:
        gt.hc->inc();
        break;
    }
    gt.rob_depth->record(isl.proto_rob->pending());
    gt.rob_depth_now->set(
        static_cast<std::int64_t>(isl.proto_rob->pending()));
  }
  // Connections are sharded across the group's protocol FPCs; atomicity
  // per connection is preserved because a connection always maps to the
  // same FPC (FIFO work queue).
  const std::size_t shard = isl.proto.pick(ctx->conn_idx);

  std::uint32_t compute = 0;
  StageId sid = StageId::ProtoRx;
  switch (ctx->kind) {
    case core::SegCtx::Kind::Rx:
      compute = cfg_->costs.proto_rx;
      sid = StageId::ProtoRx;
      break;
    case core::SegCtx::Kind::Tx:
      compute = cfg_->costs.proto_tx;
      sid = StageId::ProtoTx;
      break;
    case core::SegCtx::Kind::Hc:
      compute = cfg_->costs.proto_hc;
      sid = StageId::ProtoHc;
      break;
  }
  const std::uint32_t memc =
      state_cycles(isl.proto, shard, ctx->conn_idx);

  submit(sid, ctx->trace_id, isl.proto.fpc(shard), compute, memc,
         [this, ctx] { handlers_.proto(ctx); }, 0, 0,
         isl.proto.traits().sequenced);
}

void Graph::to_post(const core::SegCtxPtr& ctx) {
  tap_emit(TapEdge::Post, *ctx);
  Island& isl = *islands_[ctx->flow_group];
  const std::size_t idx = isl.post.pick();
  std::uint32_t compute = 0;
  switch (ctx->kind) {
    case core::SegCtx::Kind::Rx:
      compute = cfg_->costs.post_rx;
      break;
    case core::SegCtx::Kind::Tx:
      compute = cfg_->costs.post_tx;
      break;
    case core::SegCtx::Kind::Hc:
      compute = cfg_->costs.post_hc;
      break;
  }
  const std::uint32_t memc = state_cycles(isl.post, idx, ctx->conn_idx);
  if (!submit(StageId::Post, ctx->trace_id, isl.post.fpc(idx), compute,
              memc, [this, ctx] { handlers_.post(ctx); }, 0, 0,
              isl.post.traits().sequenced)) {
    skip_nbi(ctx);  // shed after an egress slot was assigned
  }
}

void Graph::to_dma(const core::SegCtxPtr& ctx) {
  tap_emit(TapEdge::Dma, *ctx);
  const std::size_t idx = dma_stage_.pick();
  if (!submit(StageId::Dma, ctx->trace_id, dma_stage_.fpc(idx),
              cfg_->costs.dma_issue, 0,
              [this, ctx] {
                mark(StageId::Dma, *ctx);
                handlers_.dma(ctx);
              },
              0, 0, dma_stage_.traits().sequenced)) {
    skip_nbi(ctx);  // shed after an egress slot was assigned
  }
}

void Graph::to_ctx_notify(const core::SegCtxPtr& ctx) {
  tap_emit(TapEdge::Notify, *ctx);
  const std::size_t idx = ctx_stage_.pick();
  submit(StageId::CtxNotify, ctx->trace_id, ctx_stage_.fpc(idx),
         cfg_->costs.ctx_op, 0,
         [this, ctx] {
           mark(StageId::CtxNotify, *ctx);
           handlers_.ctx_notify(ctx);
         },
         0, 0, false);
}

void Graph::to_nbi(std::uint8_t group, std::uint64_t egress_seq,
                   core::SegCtxPtr ctx) {
  tap_emit(TapEdge::Egress, *ctx);
  // NBI-ROB residency span: push -> in-order egress (flush lambda).
  if (ctx->trace_id != 0) {
    if (trace::Ring* r = ev_.trace_ring()) {
      const TraceIds& ids = trace_ids();
      r->record(ev_.now(), trace::Phase::kAsyncBegin, ids.nbi_name,
                ids.nbi_track, ctx->trace_id, egress_seq);
    }
  }
  islands_[group]->nbi_rob->push(egress_seq, std::move(ctx));
}

void Graph::charge_dma_copy(std::uint32_t cycles) {
  // Software copy on a DMA-module core (x86/BlueField ports).
  const std::size_t idx = dma_stage_.pick();
  submit(StageId::Dma, 0, dma_stage_.fpc(idx), cycles, 0, [] {}, 0, 0,
         false);
}

// -------------------------------------------------------- introspection

unsigned Graph::total_fpcs() const {
  unsigned n = static_cast<unsigned>(dma_stage_.replicas() +
                                     ctx_stage_.replicas());
  for (const auto& isl : islands_) {
    n += static_cast<unsigned>(isl->pre.replicas() + isl->proto.replicas() +
                               isl->post.replicas());
  }
  for (const auto& nd : xdp_chain_) {
    n += static_cast<unsigned>(nd.stage->replicas());
  }
  return n;
}

sim::TimePs Graph::total_busy() const {
  sim::TimePs busy = 0;
  for (const auto& isl : islands_) {
    for (const auto& f : isl->pre.all_fpcs()) busy += f->busy_time();
    for (const auto& f : isl->proto.all_fpcs()) busy += f->busy_time();
    for (const auto& f : isl->post.all_fpcs()) busy += f->busy_time();
  }
  for (const auto& f : dma_stage_.all_fpcs()) busy += f->busy_time();
  for (const auto& f : ctx_stage_.all_fpcs()) busy += f->busy_time();
  for (const auto& nd : xdp_chain_) {
    for (const auto& f : nd.stage->all_fpcs()) busy += f->busy_time();
  }
  return busy;
}

}  // namespace flextoe::pipeline
