// Figure 14: does FlexTOE's data-path parallelism generalize? Single
// connection throughput of pipelined RPCs vs MSS on the BlueField and x86
// ports: TAS (core-per-connection), TAS-nocopy, FlexTOE (2x replicated
// pre/post, 9 cores), FlexTOE-scalar (no replication, 7 cores).
#include "common.hpp"

using namespace flextoe;
using namespace flextoe::benchx;

namespace {

double run_flextoe(const core::DatapathConfig& dp_cfg, std::uint32_t mss) {
  Testbed tb(43);
  host::FlexToeNicConfig cfg;
  cfg.datapath = dp_cfg;
  cfg.datapath.mss = mss;
  cfg.control.mss = mss;
  auto& server = tb.add_flextoe_node(
      {.cores = 2, .nic_gbps = cfg.datapath.mac_gbps}, cfg);
  auto& client = tb.add_client_node();

  // RPC sink: client streams, server consumes (no per-request response —
  // a large pipelined transfer measures the data-path, not the app).
  app::EchoServer srv(tb.ev(), *server.stack,
                      {.port = 7, .response_size = 32});
  app::ClosedLoopClient::Params cp;
  cp.connections = 1;
  cp.pipeline = 16;  // deep pipelining on one connection
  cp.request_size = 16 * 1024;
  cp.response_size = 32;
  app::ClosedLoopClient cli(tb.ev(), *client.stack, server.ip, cp);
  cli.start();

  tb.run_for(sim::ms(10));
  const std::uint64_t base = srv.bytes_rx();
  const sim::TimePs span = sim::ms(30);
  tb.run_for(span);
  return static_cast<double>(srv.bytes_rx() - base) * 8.0 /
         sim::to_sec(span) / 1e9;
}

double run_tas(sim::ClockDomain clock, std::uint32_t mss, bool nocopy) {
  Testbed tb(47);
  auto pers = baseline::tas_personality();
  if (nocopy) pers.costs.copy_per_kb = 0;
  app::NodeParams np;
  np.cores = 1;  // core-per-connection: one connection -> one core
  np.cpu_clock = clock;
  baseline::SwTcpConfig overrides;
  overrides.mss = mss;
  auto& server = tb.add_sw_node(np, pers, overrides);
  auto& client = tb.add_client_node();

  app::EchoServer srv(tb.ev(), *server.stack,
                      {.port = 7, .response_size = 32});
  app::ClosedLoopClient::Params cp;
  cp.connections = 1;
  cp.pipeline = 16;
  cp.request_size = 16 * 1024;
  cp.response_size = 32;
  app::ClosedLoopClient cli(tb.ev(), *client.stack, server.ip, cp);
  cli.start();

  tb.run_for(sim::ms(10));
  const std::uint64_t base = srv.bytes_rx();
  const sim::TimePs span = sim::ms(30);
  tb.run_for(span);
  return static_cast<double>(srv.bytes_rx() - base) * 8.0 /
         sim::to_sec(span) / 1e9;
}

void platform(const char* name, sim::ClockDomain clock,
              core::DatapathConfig repl, core::DatapathConfig scalar) {
  char title[96];
  std::snprintf(title, sizeof title,
                "Figure 14 (%s): single-conn throughput (Gbps) vs MSS",
                name);
  print_header(title, {"MSS", "TAS", "TAS-nocopy", "FlexTOE-scalar",
                       "FlexTOE"});
  for (std::uint32_t mss : {1448u, 1024u, 512u, 256u, 128u, 64u}) {
    print_cell(static_cast<double>(mss), 0);
    print_cell(run_tas(clock, mss, false), 3);
    print_cell(run_tas(clock, mss, true), 3);
    print_cell(run_flextoe(scalar, mss), 3);
    print_cell(run_flextoe(repl, mss), 3);
    end_row();
  }
}

}  // namespace

int main() {
  platform("BlueField", sim::kBlueFieldClock, core::bluefield_config(true),
           core::bluefield_config(false));
  platform("x86", sim::kX86Clock, core::x86_config(true),
           core::x86_config(false));
  std::printf(
      "\nPaper shape: FlexTOE up to 4x TAS on BlueField (2.4x on x86); "
      "TAS-nocopy closes much of the gap at large MSS (copy-bound),\n"
      "less at small MSS (packet-rate-bound); FlexTOE-scalar captures only "
      "part of the win (pipelining without replication).\n");
  return 0;
}
