#!/usr/bin/env python3
"""Documentation checks for CI (the `docs` job).

1. Markdown link resolution: every relative link target in the repo's
   *.md files must exist on disk (http/mailto/#anchor links are skipped;
   a trailing #anchor on a file link is stripped).
2. Source anchors: `src/...`, `bench/...`, `tests/...`, `tools/...`
   paths mentioned in the docs (the ARCHITECTURE.md `file:line` style)
   must name existing files. Line numbers are not checked — they drift;
   the file must not.
3. Scenario catalog sync: the table in EXPERIMENTS.md under
   "### Scenario catalog" must list exactly the scenarios that
   `scenario_runner --list` prints (pass its output via
   --scenario-list, or the binary itself via --scenario-runner and the
   check runs it; omit both to skip the sync, e.g. when no build is
   available).

Exit status 0 = all checks pass; 1 = problems (each printed on stderr).
"""

import argparse
import pathlib
import re
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

LINK_RE = re.compile(r"\[[^\]]*\]\(([^()\s]+)\)")
ANCHOR_RE = re.compile(
    r"`((?:src|bench|tests|tools|examples)/[A-Za-z0-9_./-]+"
    r"\.(?:hpp|cpp|cc|h|py|md|txt))(?::\d+)?`"
)
CATALOG_HEADING = "### Scenario catalog"
CATALOG_ROW_RE = re.compile(r"^\|\s*`([A-Za-z0-9_]+)`\s*\|")


def md_files():
    return sorted(p for p in REPO.glob("*.md"))


def check_links(problems):
    for md in md_files():
        text = md.read_text(encoding="utf-8")
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            if not (md.parent / path).exists():
                problems.append(f"{md.name}: broken link -> {target}")


def check_source_anchors(problems):
    for md in md_files():
        text = md.read_text(encoding="utf-8")
        for path in set(ANCHOR_RE.findall(text)):
            if not (REPO / path).exists():
                problems.append(f"{md.name}: source anchor -> missing file {path}")


def documented_scenarios(problems):
    text = (REPO / "EXPERIMENTS.md").read_text(encoding="utf-8")
    if CATALOG_HEADING not in text:
        problems.append(f"EXPERIMENTS.md: missing '{CATALOG_HEADING}' section")
        return set()
    section = text.split(CATALOG_HEADING, 1)[1]
    # Section ends at the next heading (any level).
    end = re.search(r"\n#{1,6} ", section)
    if end:
        section = section[: end.start()]
    names = set()
    for line in section.splitlines():
        m = CATALOG_ROW_RE.match(line.strip())
        if m:
            names.add(m.group(1))
    if not names:
        problems.append("EXPERIMENTS.md: scenario catalog table has no rows")
    return names


def check_scenarios(problems, listing_text):
    documented = documented_scenarios(problems)
    listed = set()
    for line in listing_text.splitlines():
        parts = line.split()
        if parts:
            listed.add(parts[0])
    for missing in sorted(listed - documented):
        problems.append(
            f"EXPERIMENTS.md: scenario '{missing}' is registered but undocumented"
        )
    for stale in sorted(documented - listed):
        problems.append(
            f"EXPERIMENTS.md: scenario '{stale}' is documented but not registered"
        )


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--scenario-list",
        metavar="FILE",
        help="output of `scenario_runner --list` to sync EXPERIMENTS.md against",
    )
    ap.add_argument(
        "--scenario-runner",
        metavar="BINARY",
        help="scenario_runner binary; runs `--list` itself (ctest mode)",
    )
    args = ap.parse_args()

    problems = []
    check_links(problems)
    check_source_anchors(problems)
    if args.scenario_runner:
        listing = subprocess.run(
            [args.scenario_runner, "--list"], capture_output=True, text=True
        )
        if listing.returncode != 0:
            problems.append(
                f"scenario_runner --list failed (exit {listing.returncode})"
            )
        else:
            check_scenarios(problems, listing.stdout)
    elif args.scenario_list:
        check_scenarios(
            problems,
            pathlib.Path(args.scenario_list).read_text(encoding="utf-8"),
        )
    else:
        documented_scenarios(problems)  # the section must at least exist

    if problems:
        for p in problems:
            print(f"check_docs: {p}", file=sys.stderr)
        return 1
    n = len(md_files())
    print(f"check_docs: OK ({n} markdown files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
