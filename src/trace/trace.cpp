#include "trace/trace.hpp"

#include <algorithm>

namespace flextoe::trace {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

Tracer& Tracer::instance() {
  static Tracer t;
  return t;
}

Tracer::Tracer() {
  strings_.emplace_back();  // id 0 = ""
}

std::shared_ptr<Ring> Tracer::attach_ring(std::uint32_t domain_id) {
  std::lock_guard<std::mutex> lk(mu_);
  auto ring =
      std::make_shared<Ring>(domain_id, ++next_label_, ring_capacity_);
  rings_.push_back(ring);
  return ring;
}

std::uint16_t Tracer::intern(std::string_view s) {
  if (s.empty()) return 0;  // id 0 is pre-seeded as "" and not indexed
  std::lock_guard<std::mutex> lk(mu_);
  auto it = index_.find(std::string(s));
  if (it != index_.end()) return it->second;
  if (strings_.size() > 0xFFFF) return 0;  // table full: degrade to ""
  std::uint16_t id = static_cast<std::uint16_t>(strings_.size());
  strings_.emplace_back(s);
  index_.emplace(strings_.back(), id);
  return id;
}

std::string Tracer::string(std::uint16_t id) const {
  std::lock_guard<std::mutex> lk(mu_);
  return id < strings_.size() ? strings_[id] : std::string{};
}

std::vector<std::string> Tracer::strings() const {
  std::lock_guard<std::mutex> lk(mu_);
  return strings_;
}

std::uint64_t Tracer::next_actor_base() {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<std::uint64_t>(++next_label_) << Ring::kSeqBits;
}

void Tracer::set_ring_capacity(std::size_t events) {
  std::lock_guard<std::mutex> lk(mu_);
  ring_capacity_ = events < 8 ? 8 : events;
}

std::size_t Tracer::ring_capacity() const {
  std::lock_guard<std::mutex> lk(mu_);
  return ring_capacity_;
}

void Tracer::report_drop(const Ring& ring, std::uint64_t victim,
                         std::string_view reason, sim::TimePs t) {
  if (victim == 0) return;
  // Scan the (quiesced-for-us: we run on its writer thread) ring
  // backward for the last K events touching the victim. arg-matching
  // picks up actor-paired sites (DMA, carousel) that stash the segment
  // id in the payload slot.
  std::vector<Event> hits;
  std::size_t k;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (pms_.size() >= pm_max_reports_) return;
    k = pm_depth_;
  }
  const std::size_t n = ring.size();
  for (std::size_t i = n; i-- > 0 && hits.size() < k;) {
    const Event& e = ring.at(i);
    if (e.cid == victim || e.arg == victim) hits.push_back(e);
  }
  std::reverse(hits.begin(), hits.end());  // oldest first
  PostMortem pm;
  pm.reason.assign(reason.data(), reason.size());
  pm.victim = victim;
  pm.t = t;
  pm.domain_id = ring.domain_id();
  pm.ring_label = ring.label();
  pm.events = std::move(hits);
  std::lock_guard<std::mutex> lk(mu_);
  if (pms_.size() >= pm_max_reports_) return;
  pms_.push_back(std::move(pm));
}

void Tracer::set_postmortem_depth(std::size_t k) {
  std::lock_guard<std::mutex> lk(mu_);
  pm_depth_ = k;
}

std::size_t Tracer::postmortem_depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return pm_depth_;
}

void Tracer::set_postmortem_max_reports(std::size_t n) {
  std::lock_guard<std::mutex> lk(mu_);
  pm_max_reports_ = n;
}

std::vector<Tracer::PostMortem> Tracer::postmortems() const {
  std::lock_guard<std::mutex> lk(mu_);
  return pms_;
}

std::vector<std::shared_ptr<Ring>> Tracer::rings() const {
  std::lock_guard<std::mutex> lk(mu_);
  return rings_;
}

void Tracer::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  rings_.clear();
  pms_.clear();
  next_label_ = 0;
  // A fresh capture starts from the default post-mortem policy; a cap
  // tuned for one run must not silently truncate the next.
  pm_depth_ = 16;
  pm_max_reports_ = 64;
}

}  // namespace flextoe::trace
