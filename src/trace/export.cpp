#include "trace/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <map>
#include <utility>

namespace flextoe::trace {

namespace {

const char* phase_letter(Phase p) {
  switch (p) {
    case Phase::kBegin: return "B";
    case Phase::kEnd: return "E";
    case Phase::kAsyncBegin: return "b";
    case Phase::kAsyncEnd: return "e";
    case Phase::kInstant: return "i";
    case Phase::kFlowBegin: return "s";
    case Phase::kFlowEnd: return "f";
  }
  return "i";
}

// Minimal JSON string escape — trace names are our own identifiers, but
// stay safe against quotes/backslashes/control bytes anyway.
void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

// Simulated picoseconds -> trace-event microseconds, printed exactly
// (six fractional digits), so export is deterministic bit-for-bit.
void append_ts_us(std::string& out, sim::TimePs t) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%" PRIu64 ".%06" PRIu64,
                static_cast<std::uint64_t>(t) / 1000000u,
                static_cast<std::uint64_t>(t) % 1000000u);
  out += buf;
}

// Span/flow pairing category: the track prefix up to the first '/'
// ("stage/pre_rx" -> "stage"). check_trace.py counts span subsystems by
// this category.
std::string category_of(const std::string& track) {
  auto slash = track.find('/');
  return slash == std::string::npos ? track : track.substr(0, slash);
}

}  // namespace

std::vector<MergedEvent> merged_events() {
  std::vector<MergedEvent> out;
  for (const auto& ring : Tracer::instance().rings()) {
    const std::size_t n = ring->size();
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back({ring->at(i), ring->domain_id(), ring->label()});
    }
  }
  // Stable: equal timestamps keep ring-label order, then each ring's
  // own record order (per-ring timestamps are already monotonic).
  std::stable_sort(out.begin(), out.end(),
                   [](const MergedEvent& a, const MergedEvent& b) {
                     if (a.e.t != b.e.t) return a.e.t < b.e.t;
                     return a.label < b.label;
                   });
  return out;
}

std::string export_chrome_json() {
  Tracer& tracer = Tracer::instance();
  const std::vector<std::string> strings = tracer.strings();
  auto str_of = [&](std::uint16_t id) -> const std::string& {
    static const std::string empty;
    return id < strings.size() ? strings[id] : empty;
  };

  const std::vector<MergedEvent> events = merged_events();

  std::string out;
  out.reserve(events.size() * 96 + 4096);
  out += "{\n\"traceEvents\": [\n";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",\n";
    first = false;
  };

  // Process metadata: one Chrome "process" per ring.
  for (const auto& ring : tracer.rings()) {
    sep();
    char buf[96];
    std::snprintf(buf, sizeof buf,
                  "{\"ph\":\"M\",\"pid\":%u,\"tid\":0,"
                  "\"name\":\"process_name\",\"args\":{\"name\":"
                  "\"domain%u/%u\"}}",
                  ring->label(), ring->domain_id(), ring->label());
    out += buf;
  }

  // Thread metadata: one named track per (ring, track string), emitted
  // on first use.
  std::map<std::pair<std::uint32_t, std::uint16_t>, bool> seen_track;
  for (const MergedEvent& me : events) {
    auto key = std::make_pair(me.label, me.e.track);
    if (seen_track.emplace(key, true).second) {
      sep();
      char buf[96];
      std::snprintf(buf, sizeof buf,
                    "{\"ph\":\"M\",\"pid\":%u,\"tid\":%u,"
                    "\"name\":\"thread_name\",\"args\":{\"name\":\"",
                    me.label, me.e.track);
      out += buf;
      append_escaped(out, str_of(me.e.track));
      out += "\"}}";
    }
  }

  for (const MergedEvent& me : events) {
    const Event& e = me.e;
    const std::string& track = str_of(e.track);
    sep();
    out += "{\"ph\":\"";
    out += phase_letter(e.phase);
    out += "\",\"pid\":";
    out += std::to_string(me.label);
    out += ",\"tid\":";
    out += std::to_string(e.track);
    out += ",\"ts\":";
    append_ts_us(out, e.t);
    out += ",\"name\":\"";
    append_escaped(out, str_of(e.name));
    out += "\",\"cat\":\"";
    append_escaped(out, category_of(track));
    out += "\"";
    switch (e.phase) {
      case Phase::kAsyncBegin:
      case Phase::kAsyncEnd:
      case Phase::kFlowBegin:
      case Phase::kFlowEnd: {
        char buf[32];
        std::snprintf(buf, sizeof buf, ",\"id\":\"0x%" PRIx64 "\"", e.cid);
        out += buf;
        if (e.phase == Phase::kFlowEnd) out += ",\"bp\":\"e\"";
        break;
      }
      case Phase::kInstant:
        out += ",\"s\":\"t\"";
        break;
      case Phase::kBegin:
      case Phase::kEnd:
        break;
    }
    out += ",\"args\":{\"arg\":";
    out += std::to_string(e.arg);
    if (e.cid != 0 && e.phase != Phase::kAsyncBegin &&
        e.phase != Phase::kAsyncEnd && e.phase != Phase::kFlowBegin &&
        e.phase != Phase::kFlowEnd) {
      char buf[32];
      std::snprintf(buf, sizeof buf, ",\"cid\":\"0x%" PRIx64 "\"", e.cid);
      out += buf;
    }
    out += "}}";
  }
  out += "\n],\n";

  // Drop post-mortems: custom key, ignored by Perfetto, consumed by
  // tools/check_trace.py and the post-mortem tests.
  out += "\"postMortems\": [\n";
  first = true;
  for (const auto& pm : tracer.postmortems()) {
    sep();
    out += "{\"reason\":\"";
    append_escaped(out, pm.reason);
    char buf[128];  // sized for 16-hex victim + 20-digit t_ps
    std::snprintf(buf, sizeof buf,
                  "\",\"victim\":\"0x%" PRIx64 "\",\"t_ps\":%" PRIu64
                  ",\"domain\":%u,\"pid\":%u,\"events\":[",
                  pm.victim, static_cast<std::uint64_t>(pm.t),
                  pm.domain_id, pm.ring_label);
    out += buf;
    bool efirst = true;
    for (const Event& e : pm.events) {
      if (!efirst) out += ",";
      efirst = false;
      out += "{\"ph\":\"";
      out += phase_letter(e.phase);
      out += "\",\"ts\":";
      append_ts_us(out, e.t);
      out += ",\"name\":\"";
      append_escaped(out, str_of(e.name));
      out += "\",\"track\":\"";
      append_escaped(out, str_of(e.track));
      std::snprintf(buf, sizeof buf,
                    "\",\"cid\":\"0x%" PRIx64 "\",\"arg\":%" PRIu64 "}",
                    e.cid, e.arg);
      out += buf;
    }
    out += "]}";
  }
  out += "\n],\n\"displayTimeUnit\": \"ns\"\n}\n";
  return out;
}

bool write_chrome_trace(const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  const std::string doc = export_chrome_json();
  f.write(doc.data(), static_cast<std::streamsize>(doc.size()));
  return static_cast<bool>(f);
}

}  // namespace flextoe::trace
