// Deterministic pseudo-random number generation for the simulator.
//
// SplitMix64 is tiny, fast, and statistically solid for simulation use.
// Every stochastic component takes its own seeded Rng so results are
// reproducible and independent of event interleaving elsewhere.
#pragma once

#include <cmath>
#include <cstdint>

namespace flextoe::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, n) without modulo bias (Lemire's multiply-shift with
  // rejection). n must be > 0. Deterministic per seed: the rejection
  // loop consumes a seed-determined number of raw draws.
  std::uint64_t next_below(std::uint64_t n) {
    std::uint64_t x = next_u64();
    unsigned __int128 m = static_cast<unsigned __int128>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      // 2^64 mod n, computed without 128-bit division.
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<unsigned __int128>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform in [lo, hi] inclusive.
  std::uint64_t next_range(std::uint64_t lo, std::uint64_t hi) {
    return lo + next_below(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Bernoulli trial with probability p.
  bool chance(double p) { return next_double() < p; }

  // Exponential with mean `mean` (for Poisson arrival processes).
  double next_exp(double mean) {
    double u = next_double();
    if (u <= 0.0) u = 1e-18;
    return -mean * std::log(u);
  }

  // Derives an independent stream (for seeding sub-components).
  Rng fork() { return Rng(next_u64()); }

 private:
  std::uint64_t state_;
};

}  // namespace flextoe::sim
