// Chrome trace-event export: merge every attached flight-recorder ring
// by timestamp into a Perfetto-loadable JSON document.
//
// Mapping: each ring (≈ one sim::Domain) is a Chrome *process* (pid =
// ring label, named "domain<id>/<label>"), each track string is a
// *thread* within it, async spans pair by (category, causal id) where
// the category is the track prefix up to the first '/', and
// cross-domain Domain::post hand-offs become flow arrows. Drop
// post-mortems ride along under a custom top-level "postMortems" key
// (Perfetto ignores unknown keys). tools/check_trace.py validates the
// schema.
#pragma once

#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace flextoe::trace {

// One event tagged with its source ring, in global (t, ring, record
// order) merged order.
struct MergedEvent {
  Event e;
  std::uint32_t domain_id = 0;
  std::uint32_t label = 0;
};

#ifndef FLEXTOE_TRACE_DISABLED

// All retained events from all rings, merged by timestamp (stable:
// ties keep ring-label then record order). Call only when writers are
// quiesced (after the run / scheduler join).
std::vector<MergedEvent> merged_events();

// The full Chrome trace-event JSON document.
std::string export_chrome_json();

// Write export_chrome_json() to `path`. Returns false on I/O error.
bool write_chrome_trace(const std::string& path);

#else

inline std::vector<MergedEvent> merged_events() { return {}; }
inline std::string export_chrome_json() {
  return "{\"traceEvents\":[]}\n";
}
inline bool write_chrome_trace(const std::string&) { return false; }

#endif  // FLEXTOE_TRACE_DISABLED

}  // namespace flextoe::trace
