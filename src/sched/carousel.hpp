// Carousel-based flow scheduler (paper §3.4, Fig 5): the SCH module
// that decides which flow transmits next.
//
//   FS updates (data appended, window opened, rate programmed)
//     -> {avail, ps_per_byte} -> uncongested? -> [ready queue] -+
//                             -> rate-limited? -> [time wheel] -+
//                                 (slot = next deadline; expires  |
//                                  back into the ready queue)    v
//                    trigger(flow) -> pre-TX, one per service interval
//
// Flows with data available are scheduled for transmission. Rate-limited
// flows are enqueued into a time wheel slot computed from their next
// transmission deadline; uncongested flows bypass the rate limiter and are
// served round-robin (work conserving). A flow whose trigger reports
// blocked (window closed, pipeline back-pressure) parks until the
// data-path kicks it. Rates are programmed by the control plane as
// picoseconds-per-byte *intervals* — the NFP-4000 has no division, so the
// control plane performs the rate→interval division and the scheduler
// only multiplies (paper §4). Activity is observable through
// bind_telemetry (sched/* taxonomy, see ARCHITECTURE.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sched/timer_service.hpp"
#include "sim/domain.hpp"
#include "sim/time.hpp"
#include "telemetry/registry.hpp"

namespace flextoe::sched {

struct CarouselParams {
  sim::TimePs slot_granularity = sim::us(1);
  std::size_t num_slots = 4096;  // horizon = granularity * slots
  // Service interval of the SCH module (one TX trigger per interval),
  // modeling the scheduler FPC's processing rate.
  sim::TimePs service_interval = sim::ns(45);
  // Rates at or above this (bytes/s) bypass the rate limiter.
  std::uint64_t uncongested_rate = 100'000'000'000ull / 8;
};

class Carousel : public TimerService {
 public:
  using FlowId = TimerService::FlowId;
  using TxTrigger = TimerService::TxTrigger;

  Carousel(sim::Domain& ev, CarouselParams params = {});
  ~Carousel() override { *alive_ = false; }
  Carousel(const Carousel&) = delete;
  Carousel& operator=(const Carousel&) = delete;

  void set_trigger(TxTrigger t) override { trigger_ = std::move(t); }

  // Programs the pacing interval for a flow. `bytes_per_sec` is converted
  // once here (control-plane division); 0 or >= uncongested_rate selects
  // the round-robin bypass.
  void set_rate(FlowId flow, std::uint64_t bytes_per_sec) override;

  // Data-path FS updates: flow has (at least) `avail` bytes ready to send.
  void update_avail(FlowId flow, std::uint64_t avail) override;
  void add_avail(FlowId flow, std::uint64_t delta) override;

  // Re-arms a flow that previously reported blocked (e.g. window opened).
  void kick(FlowId flow) override;

  void remove_flow(FlowId flow) override;

  std::uint64_t triggers() const override { return trigger_count_; }
  std::size_t flows_tracked() const override { return flows_.size(); }

  // Per-flow map entries plus queue/wheel storage (bytes-per-conn audit).
  std::size_t footprint_bytes() const override;

  const char* impl_name() const override { return "carousel"; }

  // Registers trigger/byte counters, ready-queue and wheel occupancy
  // histograms, and a tracked-flow gauge under `prefix` (e.g. "sched").
  void bind_telemetry(telemetry::Registry& reg,
                      const std::string& prefix) override;

 private:
  struct FlowState {
    std::uint64_t avail = 0;
    sim::TimePs ps_per_byte = 0;  // 0 = uncongested (round-robin)
    bool queued = false;          // in ready queue or wheel
    bool parked = false;          // blocked (window closed); needs a kick
    bool dead = false;
  };

  void enqueue_ready(FlowId flow);
  void enqueue_wheel(FlowId flow, sim::TimePs deadline);
  void pump();
  void service_one();
  void wheel_tick();

  sim::Domain& ev_;
  CarouselParams params_;
  // Destruction sentinel: wheel-tick/service events already scheduled on
  // the EventQueue must become no-ops once the scheduler is gone.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  TxTrigger trigger_;
  std::unordered_map<FlowId, FlowState> flows_;
  std::deque<FlowId> ready_;
  std::vector<std::vector<FlowId>> wheel_;
  std::size_t wheel_pos_ = 0;
  sim::TimePs wheel_time_ = 0;  // time corresponding to wheel_pos_
  std::size_t wheel_count_ = 0;
  bool wheel_tick_scheduled_ = false;
  bool service_scheduled_ = false;
  sim::TimePs next_service_ = 0;
  std::uint64_t trigger_count_ = 0;

  telemetry::Binding telem_;
  telemetry::Counter* t_triggers_ = nullptr;
  telemetry::Counter* t_tx_bytes_ = nullptr;
  telemetry::Counter* t_parked_ = nullptr;
  telemetry::Histogram* t_ready_depth_ = nullptr;
  telemetry::Histogram* t_wheel_flows_ = nullptr;
  telemetry::Gauge* t_flows_ = nullptr;

  // Trace ids (trace/trace.hpp), resolved on first traced event. A
  // flow's queued-residency span pairs by trace_base_ | flow — valid
  // because `queued` guarantees at most one residency at a time.
  std::uint64_t trace_base_ = 0;
  std::uint16_t trace_track_ = 0;       // "sched/carousel"
  std::uint16_t trace_name_queued_ = 0;
  std::uint16_t trace_name_trigger_ = 0;
  std::uint16_t trace_name_tick_ = 0;
};

}  // namespace flextoe::sched
