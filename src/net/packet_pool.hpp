// Recycled Packet allocation for an allocation-free segment path.
//
// After PR 4 pooled SegCtx blocks, `make_shared<net::Packet>` plus
// payload-vector growth became the largest remaining allocation sink on
// the data path (bench/micro_pipeline, `datapath_rx` series). PacketPool
// closes it: Packet objects round-trip through a free list *without
// being destroyed* — release resets header fields but keeps
// `payload.capacity()`, so a warm pool serves MSS-sized segments with
// zero heap traffic — and the shared_ptr control block round-trips
// through a SharedPool-style recycling allocator, so an acquire is two
// free-list pops steady-state.
//
// Lifetime: the custom deleter and the control-block allocator each
// hold a shared_ptr to the pool core. In-flight packets (queued in a
// switch port, captured by a DMA completion, parked in the event queue)
// therefore safely outlive a destroyed PacketPool: their slots return
// to the core's free list and the core dies only after the last
// outstanding packet does — the same discipline pipeline::SharedPool
// established for SegCtx.
//
// Telemetry (optional, owner-bound): pool/pkt/in_use (gauge),
// pool/pkt/recycled and pool/pkt/fresh (counters). ~PacketPool unbinds,
// so late releases from in-flight packets never touch a dead registry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "net/packet.hpp"
#include "sim/affinity.hpp"
#include "sim/block_pool.hpp"
#include "telemetry/registry.hpp"

namespace flextoe::net {

class PacketPool {
 public:
  PacketPool() : core_(new Core()) {}
  ~PacketPool() {
    // The core may outlive this owner via in-flight packets; make sure
    // it stops touching the owner's telemetry registry.
    core_->reg = nullptr;
    core_->unref();
  }

  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  // A reset packet in a recycled slot (or a fresh one on a cold pool).
  //
  // Domain affinity (sim/affinity.hpp): the free list and the plain-int
  // core refcount are unsynchronized, so every acquire and release must
  // come from the pool's owning domain thread. Packets never cross
  // domains outside the epoch mailbox hand-off; a pool handed to
  // another domain wholesale re-binds with rebind_owner().
  PacketPtr acquire() {
    Core& c = *core_;
    c.affinity.check();
    Packet* slot;
    if (!c.free.empty()) {
      slot = c.free.back();
      c.free.pop_back();
      ++c.recycled;
      if (c.on() && c.c_recycled) c.c_recycled->inc();
    } else {
      slot = new Packet();
      ++c.fresh;
      if (c.on() && c.c_fresh) c.c_fresh->inc();
    }
    ++c.in_use;
    if (c.on() && c.g_in_use) c.g_in_use->set(c.in_use);
    // The deleter holds the core unowned: the control block stores an
    // owning CbAlloc copy, and shared_ptr destruction runs the deleter
    // strictly before deallocating the block through that copy — the
    // core is alive for the whole release path with one (plain-integer)
    // refcount round-trip per packet.
    return PacketPtr(slot, Deleter{&c}, CbAlloc<Packet>(&c));
  }

  // Pooled copy of an existing packet (copy-assignment into the slot
  // reuses the retained payload capacity).
  PacketPtr clone(const Packet& src) {
    PacketPtr p = acquire();
    *p = src;
    return p;
  }

  // Pool-aware variant of net::make_tcp_packet (same field defaults via
  // the shared init_tcp_packet; payload copied into the slot's retained
  // buffer instead of moving a caller-built vector in).
  PacketPtr make_tcp(const MacAddr& src_mac, const MacAddr& dst_mac,
                     Ipv4Addr src_ip, Ipv4Addr dst_ip, std::uint16_t sport,
                     std::uint16_t dport, std::uint32_t seq,
                     std::uint32_t ack, std::uint8_t flags,
                     std::span<const std::uint8_t> payload = {}) {
    PacketPtr p = acquire();
    init_tcp_packet(*p, src_mac, dst_mac, src_ip, dst_ip, sport, dport,
                    seq, ack, flags);
    p->payload.assign(payload.begin(), payload.end());
    return p;
  }

  // Registers pool/… metrics under `prefix` (idempotent via Binding
  // semantics is not needed — pools bind at construction time, once).
  void bind_telemetry(telemetry::Registry& reg,
                      const std::string& prefix = "pool/pkt") {
    Core& c = *core_;
    c.reg = &reg;
    c.g_in_use = reg.gauge(prefix + "/in_use");
    c.c_recycled = reg.counter(prefix + "/recycled");
    c.c_fresh = reg.counter(prefix + "/fresh");
  }

  // Domain hand-off: re-bind the affinity check to the next thread that
  // uses the pool (both threads must be quiesced — an epoch boundary).
  void rebind_owner() { core_->affinity.rebind(); }

  // ---- Introspection (tests, benches) ----
  // Packet slots currently parked on the free list.
  std::size_t free_slots() const { return core_->free.size(); }
  // Control-block allocations parked for reuse.
  std::size_t free_blocks() const { return core_->cb.parked(); }
  // Heap allocations ever made (cold misses).
  std::uint64_t fresh() const { return core_->fresh; }
  // Free-list hits.
  std::uint64_t recycled() const { return core_->recycled; }
  // Packets currently handed out and alive.
  std::int64_t in_use() const { return core_->in_use; }

 private:
  struct Core {
    std::vector<Packet*> free;  // reset slots, payload capacity kept
    // shared_ptr control-block allocations, recycled by learned size
    // (sim::BlockRecycler — shared with pipeline::SharedPool).
    sim::BlockRecycler cb;
    std::uint64_t fresh = 0;
    std::uint64_t recycled = 0;
    std::int64_t in_use = 0;
    // Intrusive refcount (the pool owner + one per live control block).
    // Plain integer on purpose: each domain's simulation is single-
    // threaded, and this sits on the per-packet hot path. The affinity
    // guard (debug builds) enforces that single-threadedness.
    std::uint64_t refs = 1;
    sim::ThreadAffinity affinity;

    // Owner-bound telemetry; reg is nulled by ~PacketPool so releases
    // after the owner's death stay silent (the counters above keep
    // counting — they are plain members, always safe).
    telemetry::Registry* reg = nullptr;
    telemetry::Gauge* g_in_use = nullptr;
    telemetry::Counter* c_recycled = nullptr;
    telemetry::Counter* c_fresh = nullptr;
    bool on() const { return reg != nullptr && reg->enabled(); }

    void ref() { ++refs; }
    // GCC's -Wuse-after-free cannot see that the temporary CbAlloc
    // copies made during shared_ptr construction each hold their own
    // reference on top of the pool's — it flags the second unref of an
    // inlined sequence as touching a potentially-deleted core. The
    // refcounts are balanced by construction (every unref pairs with a
    // ref taken earlier on the same path, and the pool owner's
    // reference pins the core while acquire() runs), so the warning is
    // a false positive.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuse-after-free"
#endif
    void unref() {
      if (--refs == 0) delete this;
    }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

    ~Core() {
      for (Packet* p : free) delete p;
    }
  };

  struct Deleter {
    Core* core;  // kept alive by the CbAlloc copy in the control block
    void operator()(Packet* p) const {
      p->reset();  // headers to defaults; payload capacity retained
      Core& c = *core;
      c.affinity.check();
      c.free.push_back(p);
      --c.in_use;
      if (c.on() && c.g_in_use) c.g_in_use->set(c.in_use);
    }
  };

  // Recycling allocator for the shared_ptr control block (the library
  // rebinds it to its internal counted-deleter type; only blocks of
  // that one learned size are pooled). Owns its core reference — this
  // is the copy, stored inside each control block, that keeps the core
  // alive for in-flight packets after the pool dies.
  template <typename U>
  struct CbAlloc {
    using value_type = U;

    Core* core;

    explicit CbAlloc(Core* c) : core(c) { core->ref(); }
    CbAlloc(const CbAlloc& o) : core(o.core) { core->ref(); }
    template <typename V>
    explicit CbAlloc(const CbAlloc<V>& o) : core(o.core) {
      core->ref();
    }
    CbAlloc& operator=(const CbAlloc& o) {
      o.core->ref();
      core->unref();
      core = o.core;
      return *this;
    }
    ~CbAlloc() { core->unref(); }

    U* allocate(std::size_t n) {
      if (void* b = core->cb.take(sizeof(U), alignof(U), n)) {
        return static_cast<U*>(b);
      }
      return static_cast<U*>(::operator new(n * sizeof(U)));
    }

    void deallocate(U* p, std::size_t n) {
      if (core->cb.give(p, sizeof(U), alignof(U), n)) return;
      ::operator delete(p);
    }

    template <typename V>
    bool operator==(const CbAlloc<V>& o) const {
      return core == o.core;
    }
    template <typename V>
    bool operator!=(const CbAlloc<V>& o) const {
      return core != o.core;
    }
  };

  Core* core_;  // owning ref; released (not necessarily freed) in dtor
};

}  // namespace flextoe::net
