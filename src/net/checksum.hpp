// Internet checksum (RFC 1071) and CRC-32 (used by the NFP lookup engine
// for flow hashing; FPCs have CRC acceleration, paper §2.3).
#pragma once

#include <cstdint>
#include <span>

namespace flextoe::net {

// One's-complement sum; returns the checksum field value (already inverted).
std::uint16_t internet_checksum(std::span<const std::uint8_t> data,
                                std::uint32_t initial = 0);

// Partial sum for composing pseudo-header + payload checksums.
std::uint32_t checksum_partial(std::span<const std::uint8_t> data,
                               std::uint32_t sum = 0);
std::uint16_t checksum_finish(std::uint32_t sum);

// CRC-32 (IEEE 802.3 polynomial, reflected).
std::uint32_t crc32(std::span<const std::uint8_t> data,
                    std::uint32_t seed = 0xFFFFFFFFu);

}  // namespace flextoe::net
