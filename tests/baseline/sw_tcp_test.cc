// End-to-end tests of the software TCP stack over the simulated fabric:
// handshake, data transfer, loss recovery, flow control, teardown.
#include "baseline/sw_tcp.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "net/switch.hpp"
#include "sim/domain.hpp"

namespace flextoe::baseline {
namespace {

using tcp::ConnId;

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t seed = 7) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>(i * 31 + seed);
  }
  return v;
}

// Two stacks joined through a 2-port switch.
struct Pair {
  sim::Domain ev;
  net::Switch sw;
  net::Link link_a, link_b;
  SwTcpStack a, b;

  explicit Pair(SwTcpConfig ca = {}, SwTcpConfig cb = {},
                double link_loss = 0.0)
      : sw(ev, sim::Rng(1), 2),
        link_a(ev, sim::Rng(2), {40.0, sim::ns(500), link_loss}),
        link_b(ev, sim::Rng(3), {40.0, sim::ns(500), link_loss}),
        a(ev, sim::Rng(4), fill(ca, 1)),
        b(ev, sim::Rng(5), fill(cb, 2)) {
    link_a.set_sink(sw.ingress_sink(0));
    link_b.set_sink(sw.ingress_sink(1));
    a.set_tx_sink(&link_a);
    b.set_tx_sink(&link_b);
    sw.attach(0, &a);
    sw.attach(1, &b);
    a.set_gateway_mac(b.mac());
    b.set_gateway_mac(a.mac());
  }

  static SwTcpConfig fill(SwTcpConfig c, int idx) {
    c.mac = net::MacAddr::from_u64(0x020000000000ull + idx);
    c.ip = net::make_ip(10, 0, 0, static_cast<std::uint8_t>(idx));
    return c;
  }

  void run_for(sim::TimePs t) { ev.run_until(ev.now() + t); }
};

TEST(SwTcp, HandshakeEstablishes) {
  Pair p;
  bool accepted = false, connected = false;
  ConnId server_conn = tcp::kInvalidConn;
  tcp::StackCallbacks scb;
  scb.on_accept = [&](ConnId c) {
    accepted = true;
    server_conn = c;
  };
  p.b.set_callbacks(scb);
  p.b.listen(7777);

  tcp::StackCallbacks ccb;
  ccb.on_connected = [&](ConnId, bool ok) { connected = ok; };
  p.a.set_callbacks(ccb);
  const ConnId c = p.a.connect(p.b.local_ip(), 7777);

  p.run_for(sim::ms(10));
  EXPECT_TRUE(connected);
  EXPECT_TRUE(accepted);
  EXPECT_EQ(p.a.conn_state(c), SwTcpStack::State::Established);
  EXPECT_EQ(p.b.conn_state(server_conn), SwTcpStack::State::Established);
}

TEST(SwTcp, ConnectToClosedPortFails) {
  Pair p;
  bool ok = true, called = false;
  tcp::StackCallbacks ccb;
  ccb.on_connected = [&](ConnId, bool o) {
    ok = o;
    called = true;
  };
  p.a.set_callbacks(ccb);
  p.a.connect(p.b.local_ip(), 9999);
  p.run_for(sim::ms(10));
  EXPECT_TRUE(called);
  EXPECT_FALSE(ok);
}

TEST(SwTcp, SmallTransferDeliversIntact) {
  Pair p;
  const auto data = pattern(1000);
  std::vector<std::uint8_t> rxed;
  ConnId server_conn = tcp::kInvalidConn;

  tcp::StackCallbacks scb;
  scb.on_accept = [&](ConnId c) { server_conn = c; };
  scb.on_data = [&](ConnId c) {
    std::uint8_t buf[4096];
    std::size_t n;
    while ((n = p.b.recv(c, buf)) > 0) {
      rxed.insert(rxed.end(), buf, buf + n);
    }
  };
  p.b.set_callbacks(scb);
  p.b.listen(80);

  tcp::StackCallbacks ccb;
  ccb.on_connected = [&](ConnId c, bool) { p.a.send(c, data); };
  p.a.set_callbacks(ccb);
  p.a.connect(p.b.local_ip(), 80);

  p.run_for(sim::ms(50));
  EXPECT_EQ(rxed, data);
}

TEST(SwTcp, MultiSegmentTransfer) {
  Pair p;
  const auto data = pattern(100 * 1024);  // ~70 segments
  std::vector<std::uint8_t> rxed;
  std::size_t sent = 0;
  ConnId client_conn = tcp::kInvalidConn;

  tcp::StackCallbacks scb;
  scb.on_data = [&](ConnId c) {
    std::uint8_t buf[8192];
    std::size_t n;
    while ((n = p.b.recv(c, buf)) > 0) rxed.insert(rxed.end(), buf, buf + n);
  };
  p.b.set_callbacks(scb);
  p.b.listen(80);

  auto push = [&] {
    if (sent < data.size()) {
      sent += p.a.send(client_conn,
                       std::span(data.data() + sent, data.size() - sent));
    }
  };
  tcp::StackCallbacks ccb;
  ccb.on_connected = [&](ConnId c, bool) {
    client_conn = c;
    push();
  };
  ccb.on_sendable = [&](ConnId) { push(); };
  p.a.set_callbacks(ccb);
  p.a.connect(p.b.local_ip(), 80);

  p.run_for(sim::ms(200));
  EXPECT_EQ(rxed.size(), data.size());
  EXPECT_EQ(rxed, data);
}

TEST(SwTcp, EchoRoundTrip) {
  Pair p;
  const auto data = pattern(4000, 3);
  std::vector<std::uint8_t> echoed;

  tcp::StackCallbacks scb;
  scb.on_data = [&](ConnId c) {
    std::uint8_t buf[8192];
    std::size_t n;
    while ((n = p.b.recv(c, buf)) > 0) {
      p.b.send(c, std::span(buf, n));  // echo back
    }
  };
  p.b.set_callbacks(scb);
  p.b.listen(7);

  tcp::StackCallbacks ccb;
  ccb.on_connected = [&](ConnId c, bool) { p.a.send(c, data); };
  ccb.on_data = [&](ConnId c) {
    std::uint8_t buf[8192];
    std::size_t n;
    while ((n = p.a.recv(c, buf)) > 0) {
      echoed.insert(echoed.end(), buf, buf + n);
    }
  };
  p.a.set_callbacks(ccb);
  p.a.connect(p.b.local_ip(), 7);

  p.run_for(sim::ms(100));
  EXPECT_EQ(echoed, data);
}

TEST(SwTcp, GracefulCloseBothSides) {
  Pair p;
  ConnId server_conn = tcp::kInvalidConn;
  ConnId client_conn = tcp::kInvalidConn;
  bool server_closed = false;

  tcp::StackCallbacks scb;
  scb.on_accept = [&](ConnId c) { server_conn = c; };
  scb.on_close = [&](ConnId c) {
    server_closed = true;
    p.b.close(c);  // passive close
  };
  p.b.set_callbacks(scb);
  p.b.listen(80);

  tcp::StackCallbacks ccb;
  ccb.on_connected = [&](ConnId c, bool) {
    client_conn = c;
    p.a.close(c);  // active close right away
  };
  p.a.set_callbacks(ccb);
  p.a.connect(p.b.local_ip(), 80);

  p.run_for(sim::ms(50));
  EXPECT_TRUE(server_closed);
  // Server side fully freed (LastAck -> Closed); client in TimeWait or
  // already recycled.
  EXPECT_EQ(p.b.conn_state(server_conn), SwTcpStack::State::Closed);
  const auto cs = p.a.conn_state(client_conn);
  EXPECT_TRUE(cs == SwTcpStack::State::TimeWait ||
              cs == SwTcpStack::State::Closed);
}

TEST(SwTcp, FlowControlBlocksAndResumes) {
  SwTcpConfig small;
  small.sockbuf_bytes = 16 * 1024;  // tiny server RX buffer
  Pair p({}, small);
  const auto data = pattern(64 * 1024);
  std::vector<std::uint8_t> rxed;
  ConnId server_conn = tcp::kInvalidConn;
  ConnId client_conn = tcp::kInvalidConn;
  std::size_t sent = 0;

  tcp::StackCallbacks scb;
  scb.on_accept = [&](ConnId c) { server_conn = c; };
  p.b.set_callbacks(scb);  // note: no on_data drain — receiver stalls
  p.b.listen(80);

  auto push = [&] {
    if (sent < data.size()) {
      sent += p.a.send(client_conn,
                       std::span(data.data() + sent, data.size() - sent));
    }
  };
  tcp::StackCallbacks ccb;
  ccb.on_connected = [&](ConnId c, bool) {
    client_conn = c;
    push();
  };
  ccb.on_sendable = [&](ConnId) { push(); };
  p.a.set_callbacks(ccb);
  p.a.connect(p.b.local_ip(), 80);

  p.run_for(sim::ms(100));
  // Receiver never read: at most the RX buffer worth of data can have
  // been delivered; the rest is held back by the advertised window.
  EXPECT_LE(p.b.rx_available(server_conn), 16 * 1024u);
  EXPECT_GT(p.b.rx_available(server_conn), 0u);

  // Now drain the server; transfer should complete.
  std::uint8_t buf[4096];
  for (int i = 0; i < 20000 && rxed.size() < data.size(); ++i) {
    std::size_t n = p.b.recv(server_conn, buf);
    if (n > 0) {
      rxed.insert(rxed.end(), buf, buf + n);
    } else {
      p.run_for(sim::us(200));
    }
  }
  EXPECT_EQ(rxed, data);
}

TEST(SwTcp, BidirectionalSimultaneousTransfer) {
  Pair p;
  const auto da = pattern(50 * 1024, 1);
  const auto db = pattern(50 * 1024, 2);
  std::vector<std::uint8_t> rx_at_b, rx_at_a;
  ConnId sc = tcp::kInvalidConn;

  tcp::StackCallbacks scb;
  scb.on_accept = [&](ConnId c) {
    sc = c;
    p.b.send(c, db);
  };
  scb.on_data = [&](ConnId c) {
    std::uint8_t buf[8192];
    std::size_t n;
    while ((n = p.b.recv(c, buf)) > 0) {
      rx_at_b.insert(rx_at_b.end(), buf, buf + n);
    }
  };
  p.b.set_callbacks(scb);
  p.b.listen(80);

  tcp::StackCallbacks ccb;
  ccb.on_connected = [&](ConnId c, bool) { p.a.send(c, da); };
  ccb.on_data = [&](ConnId c) {
    std::uint8_t buf[8192];
    std::size_t n;
    while ((n = p.a.recv(c, buf)) > 0) {
      rx_at_a.insert(rx_at_a.end(), buf, buf + n);
    }
  };
  p.a.set_callbacks(ccb);
  p.a.connect(p.b.local_ip(), 80);

  p.run_for(sim::ms(200));
  EXPECT_EQ(rx_at_b, da);
  EXPECT_EQ(rx_at_a, db);
}

// Property sweep: transfers complete intact across loss rates, OOO modes
// and seeds (go-back-N + single interval / multi interval / none).
struct LossCase {
  double loss;
  tcp::OooMode ooo;
  bool go_back_n;
  int seed;
};

class SwTcpLossTest : public ::testing::TestWithParam<LossCase> {};

TEST_P(SwTcpLossTest, TransferSurvivesLoss) {
  const auto c = GetParam();
  SwTcpConfig receiver;
  receiver.ooo = c.ooo;
  SwTcpConfig sender;
  sender.go_back_n = c.go_back_n;
  Pair p(sender, receiver, c.loss);

  const auto data = pattern(120 * 1024, static_cast<std::uint8_t>(c.seed));
  std::vector<std::uint8_t> rxed;
  ConnId client_conn = tcp::kInvalidConn;
  std::size_t sent = 0;

  tcp::StackCallbacks scb;
  scb.on_data = [&](ConnId cc) {
    std::uint8_t buf[8192];
    std::size_t n;
    while ((n = p.b.recv(cc, buf)) > 0) rxed.insert(rxed.end(), buf, buf + n);
  };
  p.b.set_callbacks(scb);
  p.b.listen(80);

  auto push = [&] {
    if (sent < data.size()) {
      sent += p.a.send(client_conn,
                       std::span(data.data() + sent, data.size() - sent));
    }
  };
  tcp::StackCallbacks ccb;
  ccb.on_connected = [&](ConnId cc, bool) {
    client_conn = cc;
    push();
  };
  ccb.on_sendable = [&](ConnId) { push(); };
  p.a.set_callbacks(ccb);
  p.a.connect(p.b.local_ip(), 80);

  // Generous budget: heavy loss needs many RTOs.
  for (int i = 0; i < 600 && rxed.size() < data.size(); ++i) {
    p.run_for(sim::ms(10));
  }
  ASSERT_EQ(rxed.size(), data.size());
  EXPECT_EQ(rxed, data);
  if (c.loss >= 0.01) {
    EXPECT_GT(p.a.retransmits(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    LossMatrix, SwTcpLossTest,
    ::testing::Values(
        LossCase{0.0, tcp::OooMode::Single, true, 1},
        LossCase{0.001, tcp::OooMode::Single, true, 2},
        LossCase{0.01, tcp::OooMode::Single, true, 3},
        LossCase{0.05, tcp::OooMode::Single, true, 4},
        LossCase{0.01, tcp::OooMode::Multi, false, 5},
        LossCase{0.05, tcp::OooMode::Multi, false, 6},
        LossCase{0.01, tcp::OooMode::None, true, 7},
        LossCase{0.001, tcp::OooMode::None, true, 8}));

TEST(SwTcp, RetransmitsOnLossAndCountsThem) {
  Pair p({}, {}, 0.02);
  const auto data = pattern(200 * 1024);
  std::vector<std::uint8_t> rxed;
  ConnId client_conn = tcp::kInvalidConn;
  std::size_t sent = 0;

  tcp::StackCallbacks scb;
  scb.on_data = [&](ConnId c) {
    std::uint8_t buf[8192];
    std::size_t n;
    while ((n = p.b.recv(c, buf)) > 0) rxed.insert(rxed.end(), buf, buf + n);
  };
  p.b.set_callbacks(scb);
  p.b.listen(80);

  auto push = [&] {
    if (sent < data.size()) {
      sent += p.a.send(client_conn,
                       std::span(data.data() + sent, data.size() - sent));
    }
  };
  tcp::StackCallbacks ccb;
  ccb.on_connected = [&](ConnId c, bool) {
    client_conn = c;
    push();
  };
  ccb.on_sendable = [&](ConnId) { push(); };
  p.a.set_callbacks(ccb);
  p.a.connect(p.b.local_ip(), 80);

  for (int i = 0; i < 500 && rxed.size() < data.size(); ++i) {
    p.run_for(sim::ms(10));
  }
  EXPECT_EQ(rxed, data);
  EXPECT_GT(p.a.retransmits(), 0u);
}

TEST(SwTcp, CwndGrowsDuringSlowStart) {
  Pair p;
  ConnId client_conn = tcp::kInvalidConn;
  const auto data = pattern(256 * 1024);
  std::size_t sent = 0;

  tcp::StackCallbacks scb;
  scb.on_data = [&](ConnId c) {
    std::uint8_t buf[16384];
    while (p.b.recv(c, buf) > 0) {
    }
  };
  p.b.set_callbacks(scb);
  p.b.listen(80);

  std::uint64_t cwnd_at_start = 0;
  tcp::StackCallbacks ccb;
  ccb.on_connected = [&](ConnId c, bool) {
    client_conn = c;
    cwnd_at_start = p.a.cwnd_bytes(c);
    sent += p.a.send(c, data);
  };
  ccb.on_sendable = [&](ConnId c) {
    if (sent < data.size()) {
      sent += p.a.send(c, std::span(data.data() + sent, data.size() - sent));
    }
  };
  p.a.set_callbacks(ccb);
  p.a.connect(p.b.local_ip(), 80);

  p.run_for(sim::ms(100));
  EXPECT_GT(p.a.cwnd_bytes(client_conn), cwnd_at_start);
}

}  // namespace
}  // namespace flextoe::baseline
