// Flow Processing Core (FPC) model.
//
// An NFP-4000 FPC is a wimpy 32-bit core at 800 MHz with 8 hardware
// threads (paper §2.3). Threads hide memory latency: while one thread
// waits on CLS/IMEM/EMEM, another executes. We model each work item as
// `compute_cycles` that serialize on the core plus `mem_cycles` that
// overlap with other threads' compute. In-flight items are limited to the
// number of hardware threads; beyond that, items wait in the work queue.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>

#include "sim/domain.hpp"
#include "sim/small_fn.hpp"
#include "sim/time.hpp"
#include "telemetry/registry.hpp"

namespace flextoe::nfp {

struct FpcParams {
  sim::ClockDomain clock = sim::kFpcClock;
  unsigned threads = 8;
  std::size_t queue_capacity = 128;  // inter-stage ring buffer depth
  // Max ready items one drain pass harvests from the work ring (host-side
  // dispatch bound; see core/batch.hpp). Never affects simulated timing.
  unsigned burst = 32;
};

struct Work {
  // Inline capacity covers the data-path stage closures (a component
  // pointer plus a shared segment context); anything bigger transparently
  // falls back to the heap.
  using DoneFn = sim::SmallFn<48>;

  std::uint32_t compute_cycles = 0;
  std::uint32_t mem_cycles = 0;
  DoneFn done;
  // Causal id of the segment this item serves (trace/trace.hpp); the
  // FPC records ring enqueue/dequeue spans against it. 0 = untraced.
  std::uint64_t trace_cid = 0;
};

class Fpc {
 public:
  Fpc(sim::Domain& ev, FpcParams params, std::string name)
      : ev_(ev), params_(params), name_(std::move(name)) {}
  ~Fpc() { *alive_ = false; }
  Fpc(const Fpc&) = delete;
  Fpc& operator=(const Fpc&) = delete;

  // Enqueues a work item. Returns false (and drops it) if the work queue
  // is full — FlexTOE's one-shot data-path never buffers segments, so
  // back-pressure manifests as drops that TCP recovers from.
  bool submit(Work w);

  // Enqueues a span of work items and returns how many were accepted
  // (rejected items are dropped and counted, same as submit). Per-item
  // capacity checks, depth records, and dispatch interleaving are kept
  // call-for-call identical to n x submit() — the burst form only hoists
  // the telemetry/trace enabled checks and prefetches the next item.
  std::size_t submit_burst(Work* ws, std::size_t n);

  std::size_t queue_len() const { return queue_.size(); }
  unsigned inflight() const { return inflight_; }
  const std::string& name() const { return name_; }
  const FpcParams& params() const { return params_; }

  std::uint64_t items_done() const { return items_done_; }
  std::uint64_t items_dropped() const { return items_dropped_; }
  // Total core-occupied time (for utilization accounting).
  sim::TimePs busy_time() const { return busy_time_; }

  // Registers this core's counters (done/dropped) and work-queue depth
  // histogram under `prefix` (e.g. "fpc/proto0.1"). Idempotent: FPCs
  // shared between roles (run-to-completion mode) bind once.
  void bind_telemetry(telemetry::Registry& reg, const std::string& prefix);

 private:
  // Batched ring drain: harvests up to params_.burst ready items per
  // pass (and keeps passing until threads or ring are exhausted), with
  // the clock read and depth gauge amortized to once per call.
  void drain();
  void trace_enqueue(std::uint64_t cid);

  sim::Domain& ev_;
  FpcParams params_;
  std::string name_;
  // Destruction sentinel: completion events scheduled on the EventQueue
  // may outlive this core (e.g. a Datapath torn down with events still
  // pending); they check the flag before touching freed state.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  std::deque<Work> queue_;
  unsigned inflight_ = 0;
  sim::TimePs core_free_ = 0;
  std::uint64_t items_done_ = 0;
  std::uint64_t items_dropped_ = 0;
  sim::TimePs busy_time_ = 0;

  telemetry::Binding telem_;
  telemetry::Counter* t_done_ = nullptr;
  telemetry::Counter* t_dropped_ = nullptr;
  telemetry::Histogram* t_depth_ = nullptr;
  telemetry::Gauge* t_depth_now_ = nullptr;  // current + high-water depth

  // Interned trace names ("fpc/<name>" track), resolved on first
  // traced event.
  std::uint16_t trace_track_ = 0;
  std::uint16_t trace_name_ = 0;
};

}  // namespace flextoe::nfp
